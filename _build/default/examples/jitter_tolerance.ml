(* Jitter-tolerance study (the paper's Figure 4 experiment, extended).

   Sweep the eye-opening jitter sigma_w and watch the BER climb from
   "unmeasurable by any simulation" (1e-17 and below) to "visible on a
   scope" (1e-3) — then do the same for different drift models, including
   the sinusoidal-jitter equivalent the paper mentions.

   Run with: dune exec examples/jitter_tolerance.exe *)

let () =
  let base = Cdr.Config.default in
  Format.printf "=== BER vs eye-opening jitter sigma_w ===@.@.";
  let sigmas = [ 0.04; 0.05; 0.0625; 0.08; 0.10; 0.125 ] in
  let points = Cdr.Sweep.sigma_w_values base sigmas in
  Format.printf "%a@." Cdr.Sweep.pp_points points;
  Format.printf "Note the double-exponential sensitivity: halving the eye-opening jitter@.";
  Format.printf "moves the BER by many orders of magnitude. This is why the paper's@.";
  Format.printf "industrial design missed its 1e-10 specification by 'more than an order@.";
  Format.printf "of magnitude' from interference noise alone.@.@.";

  Format.printf "=== BER vs drift model (sigma_w fixed at %g) ===@.@." base.Cdr.Config.sigma_w;
  let drift_cases =
    [
      ("no drift", Prob.Pmf.point 0);
      ("peaked drift, mean 0.1 bins", Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.1 ());
      ("uniform drift, mean 0.1 bins", Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.1 ~shape:`Uniform ());
      ("strong drift, mean 0.3 bins", Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.3 ());
      ("zero-mean wander, rms 0.5 bins", Prob.Jitter.symmetric_wander ~max_steps:2 ~rms_steps:0.5);
      ("sinusoidal equivalent, amp 2 bins", Prob.Jitter.sinusoidal_equivalent ~amplitude_steps:2);
    ]
  in
  Format.printf "%-36s %-12s %-14s@." "drift model" "BER" "slips MTBF";
  List.iter
    (fun (name, nr) ->
      let cfg = Cdr.Config.create_exn { base with Cdr.Config.nr } in
      let model = Cdr.Model.build cfg in
      let result, solution = Cdr.Ber.analyze model in
      let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:solution.Markov.Solution.pi in
      Format.printf "%-36s %-12.3e %-14.3e@." name result.Cdr.Ber.ber mtbf)
    drift_cases

(* Lock acquisition and recovered-clock jitter across loop bandwidths.

   The counter length trades BER (Figure 5), acquisition speed, and
   recovered-clock jitter against each other; this example puts all three on
   one table — the kind of architecture comparison the paper's introduction
   says designers could not do without an analysis capability.

   Run with: dune exec examples/acquisition_study.exe *)

let () =
  let base = { Cdr.Config.default with Cdr.Config.grid_points = 64 } in
  Format.printf "%-8s %-12s %-16s %-18s %-14s@." "counter" "BER" "acquisition(bits)"
    "rms jitter (UI)" "corr time";
  List.iter
    (fun counter_length ->
      let cfg = Cdr.Config.create_exn { base with Cdr.Config.counter_length } in
      let model = Cdr.Model.build cfg in
      let result, solution = Cdr.Ber.analyze model in
      let acq = Cdr.Acquisition.analyze model in
      let jitter = Cdr.Clock_jitter.analyze model ~pi:solution.Markov.Solution.pi in
      Format.printf "%-8d %-12.3e %-18.1f %-16.5f %-14g@." counter_length result.Cdr.Ber.ber
        acq.Cdr.Acquisition.mean_from_worst_phase jitter.Cdr.Clock_jitter.rms_ui
        jitter.Cdr.Clock_jitter.correlation_time)
    [ 2; 4; 8; 16 ];
  Format.printf
    "@.short counters lock fast but dither (rms jitter, BER); long counters average@.";
  Format.printf "the noise but acquire slowly and track drift poorly. The spectral view:@.@.";
  (* the autocorrelation decay is the loop's noise-shaping signature *)
  let cfg = Cdr.Config.create_exn { base with Cdr.Config.counter_length = 8 } in
  let model = Cdr.Model.build cfg in
  let solution = Cdr.Model.solve model in
  let jitter = Cdr.Clock_jitter.analyze ~lags:32 model ~pi:solution.Markov.Solution.pi in
  Format.printf "phase-error autocorrelation (K = 8):@.";
  Array.iteri
    (fun k r -> if k mod 4 = 0 then Format.printf "  lag %3d: %+.4f@." k r)
    jitter.Cdr.Clock_jitter.autocorrelation

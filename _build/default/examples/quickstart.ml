(* Quickstart: build the CDR model from the default configuration, solve for
   the stationary phase-error distribution with the multigrid solver, and
   print the BER — the paper's headline computation in a dozen lines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let cfg = Cdr.Config.default in
  Format.printf "Configuration:@.%a@.@." Cdr.Config.pp cfg;

  (* 1. compose the four FSMs + noise sources into a Markov chain *)
  let model = Cdr.Model.build cfg in
  Format.printf "Composed Markov chain: %d states (built in %.2fs)@."
    model.Cdr.Model.n_states model.Cdr.Model.build_seconds;

  (* 2. stationary distribution via the structured multigrid solver *)
  let result, solution = Cdr.Ber.analyze model in
  Format.printf "Solver: %a@.@." Markov.Solution.pp solution;

  (* 3. the performance measures the paper reports *)
  Format.printf "BER = %.3e@." result.Cdr.Ber.ber;
  let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:solution.Markov.Solution.pi in
  Format.printf "Mean time between cycle slips = %.3e bit intervals@.@." mtbf;

  (* 4. the paper-style figure annotations and density sketch *)
  let report = Cdr.Report.run cfg in
  Format.printf "%a@." Cdr.Report.pp report

(* Solver comparison on the CDR chain: the paper's numerical-methods story.

   Plain iterative methods slow down as the chain stiffens (finer phase
   grids, smaller noise -> subdominant eigenvalue closer to 1), while the
   structured multilevel method converges in a nearly grid-independent
   number of cycles. This example prints iteration counts and timings per
   solver over a grid sweep.

   Run with: dune exec examples/solver_comparison.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let tol = 1e-10 in
  Format.printf "tolerance: l1 stationarity residual <= %g@.@." tol;
  Format.printf "%-6s %-8s | %-22s | %-22s | %-22s@." "grid" "states" "multigrid (cyc, s)"
    "gauss-seidel (it, s)" "power (it, s)";
  List.iter
    (fun grid_points ->
      let cfg =
        Cdr.Config.create_exn
          { Cdr.Config.default with Cdr.Config.grid_points; sigma_w = 0.04 }
      in
      let model = Cdr.Model.build cfg in
      let mg, mg_t = time (fun () -> Cdr.Model.solve ~tol model) in
      let gs, gs_t = time (fun () -> Cdr.Model.solve ~solver:`Gauss_seidel ~tol model) in
      let pw, pw_t = time (fun () -> Cdr.Model.solve ~solver:`Power ~tol model) in
      Format.printf "%-6d %-8d | %6d cycles %8.2fs | %6d sweeps %8.2fs | %6d iters %8.2fs@."
        grid_points model.Cdr.Model.n_states mg.Markov.Solution.iterations mg_t
        gs.Markov.Solution.iterations gs_t pw.Markov.Solution.iterations pw_t;
      (* all three must agree *)
      let d1 = Linalg.Vec.dist_l1 mg.Markov.Solution.pi gs.Markov.Solution.pi in
      let d2 = Linalg.Vec.dist_l1 mg.Markov.Solution.pi pw.Markov.Solution.pi in
      if d1 > 1e-6 || d2 > 1e-6 then
        Format.printf "  WARNING: solvers disagree (%.2e, %.2e)@." d1 d2)
    [ 64; 128; 256 ];
  Format.printf
    "@.The point of the dedicated multigrid method: its cycle count stays flat as the@.";
  Format.printf "grid refines, while the per-iteration convergence of the one-level methods@.";
  Format.printf "degrades with the subdominant eigenvalue of the stiffening chain.@."

(* Cycle-slip study: mean time between loss-of-synchronization events.

   A cycle slip — the phase error escaping across half a bit interval — is a
   catastrophic event (a whole bit gained or lost); its mean recurrence time
   is a first-passage computation on the same Markov chain that yields the
   BER. The experiment sweeps the drift strength and cross-checks the
   analytic slip rate against a Monte-Carlo run where slips are frequent
   enough to count.

   Run with: dune exec examples/cycle_slip.exe *)

let () =
  let base =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 64;
      n_phases = 16;
      counter_length = 4;
      sigma_w = 0.12;
    }
  in
  Format.printf "=== mean time between cycle slips vs drift ===@.@.";
  Format.printf "%-12s %-14s %-14s %-16s@." "drift mean" "slip rate" "MTBF (bits)" "first-slip time";
  List.iter
    (fun mean_steps ->
      let cfg =
        Cdr.Config.create_exn
          { base with Cdr.Config.nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps () }
      in
      let model = Cdr.Model.build cfg in
      let solution = Cdr.Model.solve model in
      let rate = Cdr.Cycle_slip.rate model ~pi:solution.Markov.Solution.pi in
      let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:solution.Markov.Solution.pi in
      let first = Cdr.Cycle_slip.mean_first_slip_time model in
      Format.printf "%-12g %-14.3e %-14.3e %-16.3e@." mean_steps rate mtbf first)
    [ 0.1; 0.2; 0.4; 0.6; 0.8 ];

  Format.printf "@.=== Monte-Carlo cross-check at strong drift ===@.@.";
  let cfg =
    Cdr.Config.create_exn
      { base with Cdr.Config.nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.8 () }
  in
  let model = Cdr.Model.build cfg in
  let solution = Cdr.Model.solve model in
  let predicted = Cdr.Cycle_slip.rate model ~pi:solution.Markov.Solution.pi in
  let bits = 500_000 in
  let o = Sim.Transient.run_discretized ~seed:1234L cfg ~bits in
  let observed = float_of_int o.Sim.Transient.slips /. float_of_int bits in
  Format.printf "analysis : %.4e slips/bit@." predicted;
  Format.printf "simulation: %.4e slips/bit (%d slips in %d bits)@." observed
    o.Sim.Transient.slips bits;
  let iv = Sim.Estimate.wilson ~errors:o.Sim.Transient.slips ~bits () in
  Format.printf "95%% interval: [%.4e, %.4e] %s@." iv.Sim.Estimate.lower iv.Sim.Estimate.upper
    (if predicted >= iv.Sim.Estimate.lower && predicted <= iv.Sim.Estimate.upper then
       "-- analysis inside"
     else "-- analysis OUTSIDE (investigate!)")

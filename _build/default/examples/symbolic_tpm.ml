(* Symbolic transition matrices: the paper's outlook, demonstrated.

   "For solving more complex models, we are looking into using hierarchical
   generalized Kronecker-algebra and/or probability decision diagram
   representations."  This example does both on a product-form system:

   - the matrix-free Kronecker operator applies x*(A1 (x) ... (x) Ak)
     without ever forming the product matrix;
   - the MTBDD stores the same matrix as a shared decision diagram and runs
     power iteration directly on diagrams.

   Run with: dune exec examples/symbolic_tpm.exe *)

let component_chain p q =
  (* a 2-state on/off component: P(on->off) = p, P(off->on) = q *)
  Linalg.Mat.of_arrays [| [| 1.0 -. p; p |]; [| q; 1.0 -. q |] |]

let () =
  (* ten independent on/off components: 2^10 = 1024 joint states *)
  let k = 10 in
  let mats = List.init k (fun i -> component_chain (0.1 +. (0.05 *. float_of_int i)) 0.2) in
  let factors = List.map Sparse.Csr.of_dense mats in

  Format.printf "=== matrix-free Kronecker operator ===@.";
  let op = Sparse.Kron_op.term factors in
  Format.printf "joint dimension: %d states@." (Sparse.Kron_op.dim op);
  (match Sparse.Kron_op.stationary ~tol:1e-12 op with
  | Error msg -> Format.printf "error: %s@." msg
  | Ok (pi, iterations, residual) ->
      Format.printf "power iteration on the operator: %d iterations, residual %.1e@." iterations
        residual;
      (* product-form check: P(component i on) should equal q/(p_i + q) *)
      let p_on_0 =
        (* component 0 is the most significant factor *)
        let acc = ref 0.0 in
        Array.iteri (fun s v -> if s land (1 lsl (k - 1)) = 0 then acc := !acc +. v) pi;
        !acc
      in
      Format.printf "P(component 0 in state 0): %.6f (product form: %.6f)@." p_on_0
        (0.2 /. (0.1 +. 0.2)));

  Format.printf "@.=== the same matrix as a decision diagram ===@.";
  let mgr = Pdd.Mtbdd.manager () in
  let dd =
    List.fold_left
      (fun (acc, levels) m ->
        (Pdd.Mtbdd.kron mgr ~levels_a:levels acc (Pdd.Mtbdd.matrix_of_dense mgr m), levels + 1))
      (Pdd.Mtbdd.matrix_of_dense mgr (List.hd mats), 1)
      (List.tl mats)
    |> fst
  in
  Format.printf "explicit entries: %d;  MTBDD nodes: %d@." (1024 * 1024) (Pdd.Mtbdd.node_count dd);
  (match Pdd.Mtbdd.stationary mgr dd ~levels:k ~tol:1e-12 ~max_iter:20_000 () with
  | Error msg -> Format.printf "error: %s@." msg
  | Ok (pi_dd, iterations) ->
      Format.printf "power iteration on diagrams: %d iterations@." iterations;
      (* cross-check the two symbolic paths against each other *)
      match Sparse.Kron_op.stationary ~tol:1e-12 op with
      | Ok (pi_op, _, _) ->
          Format.printf "l1 difference between the two representations: %.2e@."
            (Linalg.Vec.dist_l1 pi_dd pi_op)
      | Error msg -> Format.printf "error: %s@." msg);
  Format.printf
    "@.both paths avoid the dense 2^k x 2^k matrix entirely - the route to models@.";
  Format.printf "whose explicit state space no longer fits in memory.@."

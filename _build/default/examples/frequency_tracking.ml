(* Second-order loop study: phase selection plus frequency tracking.

   A constant frequency offset between transmitter and receiver appears in
   the model as the non-zero mean of n_r. The first-order loop fights it
   with phase corrections alone; adding a frequency register (two more FSMs
   in the same network) cancels it at the source. This example sweeps the
   drift and compares the two architectures — a design-space exploration
   that exists only because the composed model stays a Markov chain.

   Run with: dune exec examples/frequency_tracking.exe *)

let () =
  let base =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 32;
      n_phases = 8;
      counter_length = 3;
      max_run = 4;
      nw_max_atoms = 17;
      sigma_w = 0.08;
    }
  in
  Format.printf "%-12s | %-26s | %-26s@." "" "first-order loop" "with frequency tracking";
  Format.printf "%-12s | %-12s %-12s | %-12s %-12s %-6s@." "drift mean" "BER" "slips/bit" "BER"
    "slips/bit" "P(f=1)";
  List.iter
    (fun mean_steps ->
      let cfg =
        Cdr.Config.create_exn
          { base with Cdr.Config.nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps () }
      in
      let first = Cdr.Model.build cfg in
      let sol1 = Cdr.Model.solve first in
      let rho1 = Cdr.Model.phase_marginal first ~pi:sol1.Markov.Solution.pi in
      let ber1 = Cdr.Ber.of_marginal cfg ~rho:rho1 in
      let slip1 = Cdr.Cycle_slip.rate first ~pi:sol1.Markov.Solution.pi in
      let second =
        Cdr.Freq_track.build ~params:{ Cdr.Freq_track.max_f = 1; adapt_length = 3 } cfg
      in
      let sol2 = Cdr.Freq_track.solve ~tol:1e-9 second in
      let pi2 = sol2.Markov.Solution.pi in
      let marg = Cdr.Freq_track.freq_marginal second ~pi:pi2 in
      Format.printf "%-12g | %-12.3e %-12.3e | %-12.3e %-12.3e %-6.2f@." mean_steps ber1 slip1
        (Cdr.Freq_track.ber second ~pi:pi2)
        (Cdr.Freq_track.slip_rate second ~pi:pi2)
        (snd marg.(2)))
    [ 0.1; 0.4; 0.8; 1.2 ];
  Format.printf
    "@.as the drift approaches one bin per bit the register locks to f = 1 and removes@.";
  Format.printf "it (orders of magnitude in BER and slips); at weak drift the register dithers@.";
  Format.printf "between 0 and 1 and its whole-bin jumps actually hurt - frequency tracking@.";
  Format.printf "pays off only when the offset is comparable to its quantization step.@."

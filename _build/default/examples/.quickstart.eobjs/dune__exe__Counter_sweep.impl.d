examples/counter_sweep.ml: Cdr Format List Prob

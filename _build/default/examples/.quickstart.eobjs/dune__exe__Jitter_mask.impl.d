examples/jitter_mask.ml: Cdr Format List

examples/solver_comparison.ml: Cdr Format Linalg List Markov Unix

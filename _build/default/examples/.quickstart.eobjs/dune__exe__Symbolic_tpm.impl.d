examples/symbolic_tpm.ml: Array Format Linalg List Pdd Sparse

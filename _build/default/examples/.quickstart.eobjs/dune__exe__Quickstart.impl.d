examples/quickstart.ml: Cdr Format Markov

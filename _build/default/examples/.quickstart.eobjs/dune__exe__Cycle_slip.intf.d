examples/cycle_slip.mli:

examples/counter_sweep.mli:

examples/cycle_slip.ml: Cdr Format List Markov Prob Sim

examples/frequency_tracking.mli:

examples/acquisition_study.ml: Array Cdr Format List Markov

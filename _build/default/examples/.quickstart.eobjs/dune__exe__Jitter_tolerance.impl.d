examples/jitter_tolerance.ml: Cdr Format List Markov Prob

examples/acquisition_study.mli:

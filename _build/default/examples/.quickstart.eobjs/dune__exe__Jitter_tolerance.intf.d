examples/jitter_tolerance.mli:

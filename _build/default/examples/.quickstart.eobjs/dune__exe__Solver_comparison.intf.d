examples/solver_comparison.mli:

examples/quickstart.mli:

examples/jitter_mask.mli:

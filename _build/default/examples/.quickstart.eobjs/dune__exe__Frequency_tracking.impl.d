examples/frequency_tracking.ml: Array Cdr Format List Markov Prob

examples/symbolic_tpm.mli:

(* Jitter-tolerance mask: how much input jitter the receiver absorbs while
   holding a BER target — the characterization jitter specifications are
   written against (cf. the SONET jitter-tolerance mask).

   Each probe of the bisection is a full stationary analysis of the composed
   Markov chain; the same curve by Monte Carlo would need ~1/BER bits per
   probe.

   Run with: dune exec examples/jitter_mask.exe *)

let () =
  let base =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 64;
      n_phases = 16;
      counter_length = 4;
      sigma_w = 0.05;
    }
  in
  Format.printf "base configuration:@.%a@.@." Cdr.Config.pp base;
  List.iter
    (fun ber_target ->
      Format.printf "=== BER target %.0e ===@." ber_target;
      let sinusoidal = Cdr.Tolerance.analyze ~family:Cdr.Tolerance.Sinusoidal ~ber_target base in
      Format.printf "sinusoidal-equivalent jitter: tolerates %.4f UI peak@."
        sinusoidal.Cdr.Tolerance.tolerance_ui;
      let wander =
        Cdr.Tolerance.analyze ~family:(Cdr.Tolerance.Wander 0.5) ~ber_target base
      in
      Format.printf "bounded wander (rms = max/2) : tolerates %.4f UI peak@.@."
        wander.Cdr.Tolerance.tolerance_ui)
    [ 1e-6; 1e-9 ];
  Format.printf "full probe trace at 1e-9, sinusoidal:@.";
  let detail = Cdr.Tolerance.analyze ~ber_target:1e-9 base in
  Format.printf "%a@." Cdr.Tolerance.pp detail

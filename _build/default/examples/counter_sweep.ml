(* Counter-length design study (the paper's Figure 5 experiment).

   The up/down counter length K sets the loop bandwidth: a short counter
   follows the white eye-opening jitter n_w (detection errors from jitter
   amplification), a long counter is too slow to track the n_r drift
   (detection errors from lag). Somewhere in between both noise sources
   contribute equally and the BER has its design optimum — a computation
   that is only practical with the non-Monte-Carlo analysis.

   Run with: dune exec examples/counter_sweep.exe *)

let () =
  let base = Cdr.Config.default in
  let lengths = [ 2; 4; 8; 16; 32 ] in
  Format.printf "Sweeping counter length over %a (sigma_w = %g, drift mean = %g bins)@.@."
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_int)
    lengths base.Cdr.Config.sigma_w
    (Prob.Pmf.mean base.Cdr.Config.nr);
  let points = Cdr.Sweep.counter_lengths base lengths in
  Format.printf "%a@." Cdr.Sweep.pp_points points;
  let best_k, best_ber = Cdr.Sweep.optimal_counter base lengths in
  Format.printf "Optimal counter length: %d (BER %.3e)@." best_k best_ber;
  List.iter
    (fun p ->
      let k = p.Cdr.Sweep.config.Cdr.Config.counter_length in
      let ratio = p.Cdr.Sweep.report.Cdr.Report.ber /. best_ber in
      if k <> best_k then
        Format.printf "  counter %2d is %.2gx worse than the optimum@." k ratio)
    points

(** One deterministic finite state machine inside a stochastic network.

    States, input symbols and output symbols are integer-coded; the optional
    name tables only serve diagnostics. Within one clock cycle the component
    reads its (already resolved) input symbols, emits an output symbol
    computed from the *current* state and the inputs (Mealy convention, which
    is what the combinational feed-forward chain data -> phase detector ->
    counter -> phase selector of the paper's Figure 2 requires), and moves to
    its next state. *)

type t = {
  name : string;
  n_states : int;
  n_inputs : int; (* number of input ports *)
  input_cards : int array; (* alphabet size per port, length n_inputs *)
  n_outputs : int; (* output alphabet size *)
  step : int -> int array -> int * int; (* state -> inputs -> next state, output *)
  state_name : int -> string;
  output_name : int -> string;
}

val create :
  name:string ->
  n_states:int ->
  input_cards:int array ->
  n_outputs:int ->
  step:(int -> int array -> int * int) ->
  ?state_name:(int -> string) ->
  ?output_name:(int -> string) ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive cardinalities. *)

val check_step : t -> unit
(** Exhaustively evaluates [step] on every (state, inputs) combination and
    raises [Failure] if any next state or output falls outside the declared
    ranges. Intended for construction-time validation of small components. *)

val constant : name:string -> output:int -> n_outputs:int -> t
(** A stateless component that always emits [output]. *)

lib/fsm/component.mli:

lib/fsm/network.ml: Array Buffer Component Format Hashtbl List Markov Option Printf Prob Queue Sparse

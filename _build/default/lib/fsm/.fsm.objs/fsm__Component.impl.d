lib/fsm/component.ml: Array Option Printf

lib/fsm/network.mli: Component Format Markov Prob

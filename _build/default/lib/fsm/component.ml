type t = {
  name : string;
  n_states : int;
  n_inputs : int;
  input_cards : int array;
  n_outputs : int;
  step : int -> int array -> int * int;
  state_name : int -> string;
  output_name : int -> string;
}

let create ~name ~n_states ~input_cards ~n_outputs ~step ?state_name ?output_name () =
  if n_states <= 0 then invalid_arg "Component.create: n_states must be positive";
  if n_outputs <= 0 then invalid_arg "Component.create: n_outputs must be positive";
  Array.iter (fun c -> if c <= 0 then invalid_arg "Component.create: input cardinality must be positive") input_cards;
  {
    name;
    n_states;
    n_inputs = Array.length input_cards;
    input_cards = Array.copy input_cards;
    n_outputs;
    step;
    state_name = Option.value state_name ~default:string_of_int;
    output_name = Option.value output_name ~default:string_of_int;
  }

let check_step t =
  let inputs = Array.make t.n_inputs 0 in
  let rec enumerate port k =
    if port = t.n_inputs then k ()
    else
      for v = 0 to t.input_cards.(port) - 1 do
        inputs.(port) <- v;
        enumerate (port + 1) k
      done
  in
  for s = 0 to t.n_states - 1 do
    enumerate 0 (fun () ->
        let s', out = t.step s inputs in
        if s' < 0 || s' >= t.n_states then
          failwith
            (Printf.sprintf "Component %s: step from state %d yields out-of-range state %d" t.name s s');
        if out < 0 || out >= t.n_outputs then
          failwith
            (Printf.sprintf "Component %s: step from state %d yields out-of-range output %d" t.name s out))
  done

let constant ~name ~output ~n_outputs =
  if output < 0 || output >= n_outputs then invalid_arg "Component.constant: output out of range";
  create ~name ~n_states:1 ~input_cards:[||] ~n_outputs ~step:(fun _ _ -> (0, output)) ()

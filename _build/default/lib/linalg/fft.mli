(** Radix-2 fast Fourier transform.

    Used to turn phase-error autocorrelations into jitter power spectral
    densities (recovered-clock jitter specifications are often spectral
    masks). Self-contained: complex values are (re, im) array pairs. *)

val transform : re:float array -> im:float array -> unit
(** In-place forward DFT of a power-of-two-length signal:
    [X_k = sum_n x_n exp(-2 pi i k n / N)]. Raises [Invalid_argument] when
    lengths differ or are not a power of two. *)

val inverse : re:float array -> im:float array -> unit
(** In-place inverse DFT (normalized by [1/N]). *)

val power_spectrum : float array -> float array
(** [power_spectrum x] for a real signal of power-of-two length [N]:
    [|X_k|^2 / N] for [k = 0 .. N/2] (one-sided). *)

val next_power_of_two : int -> int

val is_power_of_two : int -> bool

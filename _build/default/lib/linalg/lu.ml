type t = {
  lu : Mat.t; (* L below diagonal (unit diagonal implicit), U on and above *)
  perm : int array; (* row permutation: factored row i came from input row perm.(i) *)
  sign : float; (* permutation sign, for the determinant *)
}

exception Singular of int

let factorize a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.factorize: matrix not square";
  let lu = Mat.copy a in
  let perm = Array.init n Fun.id in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* partial pivoting: bring the largest |entry| of column k to the diagonal *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if abs_float (Mat.get lu i k) > abs_float (Mat.get lu !pivot k) then pivot := i
    done;
    if Mat.get lu !pivot k = 0.0 then raise (Singular k);
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !pivot j);
        Mat.set lu !pivot j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp;
      sign := -. !sign
    end;
    let pkk = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pkk in
      Mat.set lu i k factor;
      for j = k + 1 to n - 1 do
        Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let solve { lu; perm; _ } b =
  let n = Mat.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit lower-triangular L *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Mat.get lu i j *. x.(j))
    done
  done;
  (* back substitution with U *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Mat.get lu i i
  done;
  x

let solve_mat a b = solve (factorize a) b

let determinant { lu; sign; _ } =
  let n = Mat.rows lu in
  let det = ref sign in
  for i = 0 to n - 1 do
    det := !det *. Mat.get lu i i
  done;
  !det

let inverse t =
  let n = Mat.rows t.lu in
  let inv = Mat.create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let col = solve t e in
    for i = 0 to n - 1 do
      Mat.set inv i j col.(i)
    done
  done;
  inv

(** Dense vectors of floats.

    A vector is a plain [float array]; this module collects the numerical
    kernels used throughout the repository so that accumulation strategies
    (compensated sums) live in one place. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val fill : t -> float -> unit

val dim : t -> int

val scale : float -> t -> t
(** [scale a x] is a fresh vector [a * x]. *)

val scale_in_place : float -> t -> unit

val axpy : alpha:float -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] updates [y <- alpha * x + y]. *)

val add : t -> t -> t

val sub : t -> t -> t

val dot : t -> t -> float

val sum : t -> float
(** Compensated (Kahan) sum of all entries. *)

val asum : t -> float
(** Sum of absolute values (l1 norm), compensated. *)

val nrm2 : t -> float
(** Euclidean norm, with scaling to avoid overflow. *)

val norm_inf : t -> float

val dist_l1 : t -> t -> float
(** [dist_l1 x y] is [asum (x - y)] without allocating the difference. *)

val normalize_l1 : t -> unit
(** Scale in place so entries sum to one. Raises [Invalid_argument] if the
    entry sum is zero or not finite. *)

val max_index : t -> int
(** Index of the first maximal entry. Raises [Invalid_argument] on the empty
    vector. *)

val map2 : (float -> float -> float) -> t -> t -> t

val for_all : (float -> bool) -> t -> bool

val pp : Format.formatter -> t -> unit

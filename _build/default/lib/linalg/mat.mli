(** Dense row-major matrices.

    Used for small systems only (direct solves at the coarsest multigrid
    level, reference computations in tests); large transition matrices live in
    {!Sparse.Csr}. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Copies its input. Raises [Invalid_argument] on ragged rows. *)

val to_arrays : t -> float array array

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val transpose : t -> t

val mul : t -> t -> t

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [a * x]. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul x a] is the row vector [x * a]. *)

val row : t -> int -> Vec.t
(** Copy of a row. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val max_abs : t -> float

val equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

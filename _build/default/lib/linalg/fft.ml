let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  if n <= 1 then 1
  else begin
    let p = ref 1 in
    while !p < n do
      p := !p * 2
    done;
    !p
  end

(* iterative Cooley-Tukey with bit-reversal permutation *)
let fft_in_place ~re ~im ~sign =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_power_of_two n) then invalid_arg "Fft: length must be a power of two";
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* butterflies *)
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wr = cos theta and wi = sin theta in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = 0 to half - 1 do
        let a = !i + k and b = !i + k + half in
        let tr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
        let ti = (re.(b) *. !ci) +. (im.(b) *. !cr) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti;
        let ncr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := ncr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let transform ~re ~im = fft_in_place ~re ~im ~sign:(-1.0)

let inverse ~re ~im =
  fft_in_place ~re ~im ~sign:1.0;
  let n = float_of_int (Array.length re) in
  for i = 0 to Array.length re - 1 do
    re.(i) <- re.(i) /. n;
    im.(i) <- im.(i) /. n
  done

let power_spectrum x =
  let n = Array.length x in
  if not (is_power_of_two n) then invalid_arg "Fft.power_spectrum: length must be a power of two";
  let re = Array.copy x and im = Array.make n 0.0 in
  transform ~re ~im;
  Array.init ((n / 2) + 1) (fun k -> ((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) /. float_of_int n)

type t = { rows : int; cols : int; data : float array (* row-major *) }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init ~rows ~cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays a =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows") a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let rows m = m.rows
let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }

let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let c = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (get a i j *. x.(j))
      done;
      !acc)

let vec_mul x a =
  if a.rows <> Array.length x then invalid_arg "Mat.vec_mul: dimension mismatch";
  Array.init a.cols (fun j ->
      let acc = ref 0.0 in
      for i = 0 to a.rows - 1 do
        acc := !acc +. (x.(i) *. get a i j)
      done;
      !acc)

let row m i = Array.init m.cols (fun j -> get m i j)

let map2 name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg ("Mat." ^ name ^ ": dimension mismatch");
  { a with data = Array.mapi (fun k v -> f v b.data.(k)) a.data }

let add a b = map2 "add" ( +. ) a b
let sub a b = map2 "sub" ( -. ) a b

let scale s a = { a with data = Array.map (fun v -> s *. v) a.data }

let max_abs m = Array.fold_left (fun acc v -> Float.max acc (abs_float v)) 0.0 m.data

let equal ?(tol = 0.0) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> abs_float (x -. y) <= tol) a.data b.data

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%10.6f " (get m i j)
    done;
    Format.fprintf ppf "@]@\n"
  done

type t = float array

let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let fill x v = Array.fill x 0 (Array.length x) v

let dim = Array.length

let scale a x = Array.map (fun v -> a *. v) x

let scale_in_place a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length x) (Array.length y))

let axpy ~alpha ~x ~y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let add x y =
  check_same_dim "add" x y;
  Array.mapi (fun i v -> v +. y.(i)) x

let sub x y =
  check_same_dim "sub" x y;
  Array.mapi (fun i v -> v -. y.(i)) x

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

(* Kahan compensated summation: the correction term [c] recovers the low-order
   bits lost when adding a small term to a large running sum. *)
let kahan_fold f x =
  let sum = ref 0.0 and c = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let v = f x.(i) -. !c in
    let t = !sum +. v in
    c := t -. !sum -. v;
    sum := t
  done;
  !sum

let sum x = kahan_fold Fun.id x

let asum x = kahan_fold abs_float x

let nrm2 x =
  let scale = ref 0.0 and ssq = ref 1.0 in
  for i = 0 to Array.length x - 1 do
    let v = abs_float x.(i) in
    if v > 0.0 then
      if !scale < v then begin
        ssq := 1.0 +. (!ssq *. (!scale /. v) *. (!scale /. v));
        scale := v
      end
      else ssq := !ssq +. ((v /. !scale) *. (v /. !scale))
  done;
  !scale *. sqrt !ssq

let norm_inf x = Array.fold_left (fun m v -> Float.max m (abs_float v)) 0.0 x

let dist_l1 x y =
  check_same_dim "dist_l1" x y;
  let sum = ref 0.0 and c = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let v = abs_float (x.(i) -. y.(i)) -. !c in
    let t = !sum +. v in
    c := t -. !sum -. v;
    sum := t
  done;
  !sum

let normalize_l1 x =
  let s = sum x in
  if not (Float.is_finite s) || s = 0.0 then
    invalid_arg "Vec.normalize_l1: zero or non-finite entry sum";
  scale_in_place (1.0 /. s) x

let max_index x =
  if Array.length x = 0 then invalid_arg "Vec.max_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) > x.(!best) then best := i
  done;
  !best

let map2 f x y =
  check_same_dim "map2" x y;
  Array.mapi (fun i v -> f v y.(i)) x

let for_all p x = Array.for_all p x

let pp ppf x =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") (fun ppf v -> Format.fprintf ppf "%g" v))
    (Array.to_list x)

lib/linalg/mat.ml: Array Float Format

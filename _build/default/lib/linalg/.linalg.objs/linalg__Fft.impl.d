lib/linalg/fft.ml: Array Float

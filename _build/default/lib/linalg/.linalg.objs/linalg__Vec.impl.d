lib/linalg/vec.ml: Array Float Format Fun Printf

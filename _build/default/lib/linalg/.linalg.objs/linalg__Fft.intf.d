lib/linalg/fft.mli:

lib/linalg/lu.ml: Array Fun Mat

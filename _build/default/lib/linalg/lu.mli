(** LU factorization with partial pivoting and the linear solves built on it.

    Meant for the small dense systems appearing at the coarsest multigrid
    level and in reference computations; complexity is the classic O(n^3). *)

type t
(** A factorization [P*A = L*U] of a square matrix [A]. *)

exception Singular of int
(** Raised with the offending elimination column when the matrix is exactly
    singular (zero pivot column). *)

val factorize : Mat.t -> t
(** Raises [Invalid_argument] if the matrix is not square and {!Singular} if
    it is singular. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] returns [x] with [A x = b]. *)

val solve_mat : Mat.t -> Vec.t -> Vec.t
(** One-shot [factorize] + [solve]. *)

val determinant : t -> float

val inverse : t -> Mat.t

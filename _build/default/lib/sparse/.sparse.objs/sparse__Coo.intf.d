lib/sparse/coo.mli: Csr

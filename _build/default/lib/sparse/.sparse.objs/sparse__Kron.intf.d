lib/sparse/kron.mli: Csr

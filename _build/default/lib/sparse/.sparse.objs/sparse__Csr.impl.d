lib/sparse/csr.ml: Array Format Fun Linalg List

lib/sparse/csr.mli: Format Linalg

lib/sparse/spy.mli: Csr Format

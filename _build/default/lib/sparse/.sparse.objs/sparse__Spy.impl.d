lib/sparse/spy.ml: Array Buffer Csr Float Format

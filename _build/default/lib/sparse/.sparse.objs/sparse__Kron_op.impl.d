lib/sparse/kron_op.ml: Array Csr Float Kron Linalg List

lib/sparse/kron_op.mli: Csr Linalg

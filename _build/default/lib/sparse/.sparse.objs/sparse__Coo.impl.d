lib/sparse/coo.ml: Array Csr Printf

lib/sparse/kron.ml: Coo Csr List

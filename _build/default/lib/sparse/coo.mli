(** Mutable coordinate-format accumulator used to assemble sparse matrices.

    Duplicate [(row, col)] entries are summed when the matrix is converted to
    {!Csr.t}, which is the natural behaviour when accumulating transition
    probabilities from several noise outcomes leading to the same successor
    state. *)

type t

val create : rows:int -> cols:int -> t

val add : t -> row:int -> col:int -> float -> unit
(** Appends an entry. Raises [Invalid_argument] when the indices are out of
    bounds. Zero values are kept (they disappear on conversion). *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int
(** Number of stored triplets, duplicates included. *)

val to_csr : t -> Csr.t
(** Sorts, merges duplicates, drops exact zeros. *)

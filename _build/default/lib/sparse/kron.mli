(** Kronecker products of sparse matrices.

    The paper represents the transition matrix of a network of FSMs as a
    composition of small component matrices ("hierarchical Kronecker
    algebra-like techniques"). [product a b] realizes the basic building
    block: for independent chains with TPMs [a] and [b], the joint chain on
    the product space has TPM [a ⊗ b], with the row index
    [i_joint = i_a * rows(b) + i_b]. *)

val product : Csr.t -> Csr.t -> Csr.t

val product_list : Csr.t list -> Csr.t
(** Left fold of {!product}; the singleton list is the identity case.
    Raises [Invalid_argument] on the empty list. *)

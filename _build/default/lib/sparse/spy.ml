let render ?(width = 64) ?(height = 32) m =
  if width <= 0 || height <= 0 then invalid_arg "Spy.render: non-positive grid";
  let rows = max 1 (Csr.rows m) and cols = max 1 (Csr.cols m) in
  let width = min width cols and height = min height rows in
  let cells = Array.make_matrix height width 0 in
  Csr.iter m (fun i j _ ->
      let r = i * height / rows and c = j * width / cols in
      cells.(r).(c) <- cells.(r).(c) + 1);
  (* occupancy thresholds relative to the number of matrix entries per cell *)
  let per_cell =
    float_of_int rows /. float_of_int height *. (float_of_int cols /. float_of_int width)
  in
  let glyph n =
    if n = 0 then ' '
    else
      let occ = float_of_int n /. Float.max per_cell 1.0 in
      if occ > 0.5 then '#' else if occ > 0.1 then ':' else '.'
  in
  let buf = Buffer.create (height * (width + 1)) in
  for r = 0 to height - 1 do
    for c = 0 to width - 1 do
      Buffer.add_char buf (glyph cells.(r).(c))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pp ppf m = Format.fprintf ppf "%s%a" (render m) Csr.pp_stats m

(** Matrix-free Kronecker-structured operators.

    The paper's outlook for "more complex models" is to represent the
    transition matrix with hierarchical generalized Kronecker algebra instead
    of explicit sparse storage. This module provides the core primitive: the
    vector-Kronecker-product ("shuffle") algorithm computing
    [x (A_1 (x) A_2 (x) ... (x) A_k)] without ever forming the product
    matrix — O(n * sum_i nnz_i / n_i) per application instead of
    O(prod_i nnz_i). Sums of such terms model synchronizing events as in
    stochastic automata networks (Plateau). *)

type t
(** A sum of scaled Kronecker terms, all with the same product dimensions. *)

val term : ?coeff:float -> Csr.t list -> t
(** One Kronecker term [coeff * A_1 (x) ... (x) A_k]. All factors must be
    square; raises [Invalid_argument] otherwise or on the empty list. *)

val sum : t list -> t
(** Raises [Invalid_argument] on dimension mismatch or the empty list. *)

val dim : t -> int

val apply : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [apply op x = x * M] where [M] is the represented matrix. *)

val to_csr : t -> Csr.t
(** Materialize (for tests and small operators). *)

val stationary :
  ?tol:float -> ?max_iter:int -> t -> (Linalg.Vec.t * int * float, string) result
(** Power iteration directly on the matrix-free operator: the stationary
    distribution of a chain whose TPM is the represented matrix, without
    storing it. Returns [(pi, iterations, residual)], or [Error] when the
    operator is not stochastic (row sums must be 1) or iteration fails to
    converge. *)

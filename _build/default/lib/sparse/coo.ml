type t = {
  rows : int;
  cols : int;
  mutable len : int;
  mutable ri : int array;
  mutable ci : int array;
  mutable vs : float array;
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Coo.create: negative dimension";
  { rows; cols; len = 0; ri = Array.make 16 0; ci = Array.make 16 0; vs = Array.make 16 0.0 }

let grow t =
  let cap = Array.length t.ri in
  if t.len = cap then begin
    let ncap = 2 * cap in
    let ri = Array.make ncap 0 and ci = Array.make ncap 0 and vs = Array.make ncap 0.0 in
    Array.blit t.ri 0 ri 0 t.len;
    Array.blit t.ci 0 ci 0 t.len;
    Array.blit t.vs 0 vs 0 t.len;
    t.ri <- ri;
    t.ci <- ci;
    t.vs <- vs
  end

let add t ~row ~col v =
  if row < 0 || row >= t.rows || col < 0 || col >= t.cols then
    invalid_arg (Printf.sprintf "Coo.add: (%d,%d) out of %dx%d" row col t.rows t.cols);
  grow t;
  t.ri.(t.len) <- row;
  t.ci.(t.len) <- col;
  t.vs.(t.len) <- v;
  t.len <- t.len + 1

let rows t = t.rows
let cols t = t.cols
let nnz t = t.len

let to_csr t =
  (* counting sort by row, then sort-and-merge each row by column *)
  let row_counts = Array.make t.rows 0 in
  for k = 0 to t.len - 1 do
    row_counts.(t.ri.(k)) <- row_counts.(t.ri.(k)) + 1
  done;
  let starts = Array.make (t.rows + 1) 0 in
  for i = 0 to t.rows - 1 do
    starts.(i + 1) <- starts.(i) + row_counts.(i)
  done;
  let pos = Array.copy starts in
  let ci = Array.make t.len 0 and vs = Array.make t.len 0.0 in
  for k = 0 to t.len - 1 do
    let i = t.ri.(k) in
    ci.(pos.(i)) <- t.ci.(k);
    vs.(pos.(i)) <- t.vs.(k);
    pos.(i) <- pos.(i) + 1
  done;
  let row_ptr = Array.make (t.rows + 1) 0 in
  let out_ci = Array.make t.len 0 and out_vs = Array.make t.len 0.0 in
  let out = ref 0 in
  for i = 0 to t.rows - 1 do
    let lo = starts.(i) and hi = starts.(i + 1) in
    let order = Array.init (hi - lo) (fun k -> lo + k) in
    Array.sort (fun a b -> compare ci.(a) ci.(b)) order;
    let k = ref 0 in
    let len = Array.length order in
    while !k < len do
      let j = ci.(order.(!k)) in
      let acc = ref 0.0 in
      while !k < len && ci.(order.(!k)) = j do
        acc := !acc +. vs.(order.(!k));
        incr k
      done;
      if !acc <> 0.0 then begin
        out_ci.(!out) <- j;
        out_vs.(!out) <- !acc;
        incr out
      end
    done;
    row_ptr.(i + 1) <- !out
  done;
  Csr.unsafe_make ~rows:t.rows ~cols:t.cols ~row_ptr
    ~col_idx:(Array.sub out_ci 0 !out)
    ~values:(Array.sub out_vs 0 !out)

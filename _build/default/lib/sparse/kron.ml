let product a b =
  let ra = Csr.rows a and ca = Csr.cols a in
  let rb = Csr.rows b and cb = Csr.cols b in
  let acc = Coo.create ~rows:(ra * rb) ~cols:(ca * cb) in
  Csr.iter a (fun ia ja va ->
      Csr.iter b (fun ib jb vb ->
          Coo.add acc ~row:((ia * rb) + ib) ~col:((ja * cb) + jb) (va *. vb)));
  Coo.to_csr acc

let product_list = function
  | [] -> invalid_arg "Kron.product_list: empty list"
  | m :: rest -> List.fold_left product m rest

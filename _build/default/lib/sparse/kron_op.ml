type term = { coeff : float; factors : Csr.t list }

type t = { n : int; terms : term list }

let term ?(coeff = 1.0) factors =
  if factors = [] then invalid_arg "Kron_op.term: empty factor list";
  List.iter
    (fun f -> if Csr.rows f <> Csr.cols f then invalid_arg "Kron_op.term: factors must be square")
    factors;
  let n = List.fold_left (fun acc f -> acc * Csr.rows f) 1 factors in
  { n; terms = [ { coeff; factors } ] }

let sum = function
  | [] -> invalid_arg "Kron_op.sum: empty list"
  | first :: rest ->
      List.fold_left
        (fun acc op ->
          if op.n <> acc.n then invalid_arg "Kron_op.sum: dimension mismatch";
          { acc with terms = acc.terms @ op.terms })
        first rest

let dim op = op.n

(* x * (I_l (x) A (x) I_r): view x as an (l, n, r) tensor and contract the
   middle index against A's rows. *)
let apply_middle ~l ~r a x y =
  let n = Csr.rows a in
  Array.fill y 0 (Array.length y) 0.0;
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j v ->
        for blk = 0 to l - 1 do
          let x_base = ((blk * n) + i) * r in
          let y_base = ((blk * n) + j) * r in
          for c = 0 to r - 1 do
            y.(y_base + c) <- y.(y_base + c) +. (x.(x_base + c) *. v)
          done
        done)
  done

let apply_term t x =
  let sizes = List.map Csr.rows t.factors in
  let total = List.fold_left ( * ) 1 sizes in
  if Array.length x <> total then invalid_arg "Kron_op.apply: dimension mismatch";
  let cur = ref (Array.copy x) in
  let scratch = ref (Array.make total 0.0) in
  let left = ref 1 in
  let right = ref total in
  List.iter
    (fun a ->
      let n = Csr.rows a in
      right := !right / n;
      apply_middle ~l:!left ~r:!right a !cur !scratch;
      let tmp = !cur in
      cur := !scratch;
      scratch := tmp;
      left := !left * n)
    t.factors;
  if t.coeff <> 1.0 then Linalg.Vec.scale_in_place t.coeff !cur;
  !cur

let apply op x =
  match op.terms with
  | [] -> invalid_arg "Kron_op.apply: empty operator"
  | first :: rest ->
      let acc = apply_term first x in
      List.iter
        (fun t ->
          let y = apply_term t x in
          Linalg.Vec.axpy ~alpha:1.0 ~x:y ~y:acc)
        rest;
      acc

let to_csr op =
  let materialize_term t =
    let k = Kron.product_list t.factors in
    Csr.map (fun v -> t.coeff *. v) k
  in
  match op.terms with
  | [] -> invalid_arg "Kron_op.to_csr: empty operator"
  | first :: rest ->
      List.fold_left (fun acc t -> Csr.add acc (materialize_term t)) (materialize_term first) rest

let stationary ?(tol = 1e-12) ?(max_iter = 100_000) op =
  let n = dim op in
  if n = 0 then Error "empty operator"
  else begin
    (* stochasticity check through one application to the all-ones vector:
       row sums of M are (M 1)^T; we only have x -> x M, so check 1 M = 1^T
       is wrong (that is column sums). Instead apply to basis-free test:
       row sums via the transpose trick is unavailable matrix-free, so check
       that the all-ones *row* vector is preserved under the transpose
       operator... we settle for checking mass preservation of a probe
       distribution, which for non-negative operators characterizes row
       sums 1 on the reachable support. *)
    let probe = Array.make n (1.0 /. float_of_int n) in
    let image = apply op probe in
    if Array.exists (fun v -> v < -1e-12) image then Error "operator has negative entries"
    else if abs_float (Linalg.Vec.sum image -. 1.0) > 1e-6 then
      Error "operator does not preserve probability mass (not row-stochastic)"
    else begin
      let x = ref probe in
      let iterations = ref 0 in
      let residual = ref Float.infinity in
      while !residual > tol && !iterations < max_iter do
        let y = apply op !x in
        Linalg.Vec.normalize_l1 y;
        residual := Linalg.Vec.dist_l1 y !x;
        x := y;
        incr iterations
      done;
      Ok (!x, !iterations, !residual)
    end
  end

(** ASCII rendering of sparse-matrix nonzero patterns (Figure 3 of the
    paper). The matrix is down-sampled onto a character grid; each cell shows
    how much of it is occupied. *)

val render : ?width:int -> ?height:int -> Csr.t -> string
(** [render m] is a multi-line string; [' '] empty, ['.'] sparse, [':']
    denser, ['#'] dense cells. Default grid 64x32. *)

val pp : Format.formatter -> Csr.t -> unit
(** [render] with defaults, plus the {!Csr.pp_stats} summary line. *)

(* Row i's distribution over coarse blocks. *)
let row_block_sums chain partition i =
  let out = Array.make partition.Partition.n_coarse 0.0 in
  Sparse.Csr.iter_row (Chain.tpm chain) i (fun j v ->
      let b = Partition.block partition j in
      out.(b) <- out.(b) +. v);
  out

let find_violation ~tol chain partition =
  let members = Partition.blocks partition in
  let violation = ref None in
  Array.iteri
    (fun b states ->
      if !violation = None then
        match states with
        | [] | [ _ ] -> ()
        | first :: rest ->
            let reference = row_block_sums chain partition first in
            List.iter
              (fun i ->
                if !violation = None then begin
                  let sums = row_block_sums chain partition i in
                  Array.iteri
                    (fun target v ->
                      if !violation = None && abs_float (v -. reference.(target)) > tol then
                        violation :=
                          Some
                            (Printf.sprintf
                               "block %d: states %d and %d send %.6g vs %.6g to block %d" b first
                               i reference.(target) v target))
                    sums
                end)
              rest)
    members;
  !violation

let is_lumpable ?(tol = 1e-12) chain partition = find_violation ~tol chain partition = None

let lump_unchecked chain partition =
  let weights = Array.make (Chain.n_states chain) 1.0 in
  Aggregation.coarsen chain partition ~weights

let lump ?(tol = 1e-12) chain partition =
  match find_violation ~tol chain partition with
  | Some msg -> Error msg
  | None -> Ok (lump_unchecked chain partition)

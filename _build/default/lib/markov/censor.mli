(** Censored chains (stochastic complementation).

    The exact counterpart of the lumping discussion: watching the chain only
    while it is inside a set [A] yields another Markov chain on [A] whose
    transition matrix is the *stochastic complement*

    [S = P_AA + P_AB (I - P_BB)^{-1} P_BA]

    and whose stationary distribution is the conditional distribution
    [pi(. | A)]. Unlike lumping, censoring is always exact — at the price of
    a linear solve against the complement block. Used to extract exact
    sub-models (e.g. the loop conditioned on a data pattern) and as the
    theoretical reference for aggregation error. Dense in the complement
    block, so intended for moderate [|B|]. *)

val stochastic_complement : Chain.t -> keep:(int -> bool) -> Chain.t * int array
(** [(censored, kept_states)] where [kept_states.(k)] is the original index
    of censored state [k]. Raises [Invalid_argument] when [keep] selects
    nothing or everything is absorbing inside the complement (the chain must
    leave [B] with probability 1, which irreducibility guarantees). *)

val conditional_stationary : Chain.t -> pi:Linalg.Vec.t -> keep:(int -> bool) -> Linalg.Vec.t
(** [pi(. | A)] by restriction and renormalization — the vector the censored
    chain's stationary distribution must equal (tested). *)

lib/markov/stat.mli: Chain Linalg

lib/markov/solution.ml: Chain Format Linalg

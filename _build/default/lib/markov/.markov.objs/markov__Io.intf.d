lib/markov/io.mli: Chain Linalg

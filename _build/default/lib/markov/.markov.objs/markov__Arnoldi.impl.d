lib/markov/arnoldi.ml: Array Chain Float Linalg Solution Sparse

lib/markov/gth.ml: Array Chain Linalg Sparse

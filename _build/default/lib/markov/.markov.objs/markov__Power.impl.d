lib/markov/power.ml: Chain Linalg Solution

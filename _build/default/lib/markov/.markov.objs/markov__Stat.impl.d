lib/markov/stat.ml: Array Chain Sparse

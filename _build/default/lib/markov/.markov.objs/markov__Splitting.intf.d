lib/markov/splitting.mli: Chain Linalg Solution Sparse

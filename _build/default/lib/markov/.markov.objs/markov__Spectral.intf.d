lib/markov/spectral.mli: Chain Linalg

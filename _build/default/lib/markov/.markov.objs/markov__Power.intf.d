lib/markov/power.mli: Chain Linalg Solution

lib/markov/aggregation.ml: Array Chain Gth Linalg Partition Solution Sparse Splitting

lib/markov/multigrid.mli: Chain Linalg Partition Solution

lib/markov/reward.mli: Chain Linalg

lib/markov/gth.mli: Chain Linalg

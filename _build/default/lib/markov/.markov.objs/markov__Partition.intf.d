lib/markov/partition.mli: Linalg

lib/markov/spectral.ml: Array Chain Float Linalg Power Solution Sparse

lib/markov/arnoldi.mli: Chain Linalg Solution

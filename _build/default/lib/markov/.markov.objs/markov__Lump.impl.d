lib/markov/lump.ml: Aggregation Array Chain List Partition Printf Sparse

lib/markov/reward.ml: Array Chain Float Sparse Stat

lib/markov/multigrid.ml: Array Chain Gth Hashtbl Linalg List Option Partition Printf Solution Sparse

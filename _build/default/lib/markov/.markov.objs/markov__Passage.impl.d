lib/markov/passage.ml: Array Chain Float Sparse

lib/markov/io.ml: Array Chain Fun Printf Sparse String

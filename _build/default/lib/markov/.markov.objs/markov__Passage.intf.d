lib/markov/passage.mli: Chain Linalg

lib/markov/splitting.ml: Array Chain Linalg Solution Sparse

lib/markov/lump.mli: Chain Partition

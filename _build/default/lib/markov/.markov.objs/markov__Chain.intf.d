lib/markov/chain.mli: Format Linalg Sparse

lib/markov/censor.mli: Chain Linalg

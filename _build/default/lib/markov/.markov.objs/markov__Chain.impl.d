lib/markov/chain.ml: Array Float Format Linalg Printf Sparse

lib/markov/partition.ml: Array Fun

lib/markov/evolution.mli: Chain Linalg

lib/markov/solution.mli: Chain Format Linalg

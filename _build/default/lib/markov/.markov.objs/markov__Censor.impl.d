lib/markov/censor.ml: Array Chain Hashtbl Linalg Sparse

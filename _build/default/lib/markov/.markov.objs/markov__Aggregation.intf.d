lib/markov/aggregation.mli: Chain Linalg Partition Solution

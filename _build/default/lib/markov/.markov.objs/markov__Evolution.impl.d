lib/markov/evolution.ml: Array Chain Linalg

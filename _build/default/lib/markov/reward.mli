(** Reward (cost) models on Markov chains.

    The general form of "system performance measures" the paper derives from
    the stationary vector: attach a per-step reward to states (or
    transitions) and compute long-run averages, accumulated expectations to
    absorption, and discounted sums. BER is the special case
    [reward i = P(error | state i)]; power, activity factors, or correction
    counts are others. *)

val long_run_average : pi:Linalg.Vec.t -> reward:(int -> float) -> float
(** [sum_i pi_i r_i] — the steady-state reward rate per step. *)

val transition_rate : Chain.t -> pi:Linalg.Vec.t -> reward:(int -> int -> float) -> float
(** Long-run average of a per-transition reward:
    [sum_ij pi_i P_ij r_ij] (e.g. counting phase corrections: [r = 1] on
    correction edges). *)

val accumulated_before :
  ?tol:float -> ?max_iter:int -> Chain.t -> target:(int -> bool) -> reward:(int -> float) -> Linalg.Vec.t
(** [v.(i)] = expected total reward collected before first reaching the
    target set, starting from [i] ([0.] on target states). Generalizes
    {!Passage.mean_hitting_times}, which is the [reward = 1] case; solved by
    the same accelerated Gauss-Seidel. *)

val discounted :
  ?tol:float -> ?max_iter:int -> Chain.t -> gamma:float -> reward:(int -> float) -> Linalg.Vec.t
(** [v = r + gamma P v]: expected discounted total reward, [0 <= gamma < 1].
    Raises [Invalid_argument] for gamma outside [0, 1). *)

let chain_magic = "cdr-markov chain v1"
let vector_magic = "cdr-markov vector v1"

let write_chain oc chain =
  let tpm = Chain.tpm chain in
  Printf.fprintf oc "%s\n%d %d\n" chain_magic (Chain.n_states chain) (Sparse.Csr.nnz tpm);
  Sparse.Csr.iter tpm (fun i j v -> Printf.fprintf oc "%d %d %h\n" i j v)

let read_line_opt ic = try Some (input_line ic) with End_of_file -> None

let read_chain ic =
  match read_line_opt ic with
  | Some magic when magic = chain_magic -> (
      match read_line_opt ic with
      | None -> Error "missing dimension line"
      | Some dims -> (
          match String.split_on_char ' ' (String.trim dims) with
          | [ n_str; nnz_str ] -> (
              match (int_of_string_opt n_str, int_of_string_opt nnz_str) with
              | Some n, Some nnz when n >= 0 && nnz >= 0 -> (
                  let acc = Sparse.Coo.create ~rows:n ~cols:n in
                  let rec load k =
                    if k = nnz then Ok ()
                    else
                      match read_line_opt ic with
                      | None -> Error (Printf.sprintf "unexpected end of file at entry %d" k)
                      | Some line -> (
                          match String.split_on_char ' ' (String.trim line) with
                          | [ i_str; j_str; v_str ] -> (
                              match
                                ( int_of_string_opt i_str,
                                  int_of_string_opt j_str,
                                  float_of_string_opt v_str )
                              with
                              | Some i, Some j, Some v -> (
                                  match Sparse.Coo.add acc ~row:i ~col:j v with
                                  | () -> load (k + 1)
                                  | exception Invalid_argument msg -> Error msg)
                              | _ -> Error (Printf.sprintf "malformed entry %d: %S" k line))
                          | _ -> Error (Printf.sprintf "malformed entry %d: %S" k line))
                  in
                  match load 0 with
                  | Error _ as e -> e
                  | Ok () -> (
                      match Chain.of_csr (Sparse.Coo.to_csr acc) with
                      | chain -> Ok chain
                      | exception Chain.Not_stochastic msg -> Error ("not stochastic: " ^ msg)))
              | _ -> Error "malformed dimension line")
          | _ -> Error "malformed dimension line"))
  | Some magic -> Error (Printf.sprintf "bad header %S" magic)
  | None -> Error "empty file"

let write_vector oc x =
  Printf.fprintf oc "%s\n%d\n" vector_magic (Array.length x);
  Array.iter (fun v -> Printf.fprintf oc "%h\n" v) x

let read_vector ic =
  match read_line_opt ic with
  | Some magic when magic = vector_magic -> (
      match read_line_opt ic with
      | None -> Error "missing length line"
      | Some n_str -> (
          match int_of_string_opt (String.trim n_str) with
          | Some n when n >= 0 -> (
              let out = Array.make n 0.0 in
              let rec load k =
                if k = n then Ok out
                else
                  match read_line_opt ic with
                  | None -> Error (Printf.sprintf "unexpected end of file at entry %d" k)
                  | Some line -> (
                      match float_of_string_opt (String.trim line) with
                      | Some v ->
                          out.(k) <- v;
                          load (k + 1)
                      | None -> Error (Printf.sprintf "malformed entry %d: %S" k line))
              in
              load 0)
          | _ -> Error "malformed length line"))
  | Some magic -> Error (Printf.sprintf "bad header %S" magic)
  | None -> Error "empty file"

let save_chain path chain =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_chain oc chain)

let load_chain path =
  match open_in path with
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_chain ic)
  | exception Sys_error msg -> Error msg

(** Power iteration: [pi <- pi P] until stationary.

    Converges at the rate of the subdominant eigenvalue modulus; slow on the
    stiff CDR chains (that is the point of the multigrid method) but simple,
    robust, and the smoother used inside the multilevel cycles. *)

val solve : ?tol:float -> ?max_iter:int -> ?init:Linalg.Vec.t -> Chain.t -> Solution.t
(** Defaults: [tol = 1e-12], [max_iter = 100_000], [init = uniform]. *)

val sweeps : Chain.t -> Linalg.Vec.t -> int -> Linalg.Vec.t
(** [sweeps c pi n] applies [n] normalized power steps (used as multigrid
    smoothing); returns a fresh vector. *)

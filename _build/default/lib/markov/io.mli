(** Plain-text persistence for chains and stationary vectors.

    Building a large composed chain can take longer than solving it; these
    functions let a workflow cache the TPM and results between runs. The
    format is a tagged MatrixMarket-style coordinate listing:

    {v
    cdr-markov chain v1
    <n> <nnz>
    <row> <col> <probability>   (nnz lines, 0-based indices)
    v}

    Floats are written in full hexadecimal precision ([%h]) so the file
    round-trip is exact; {!Chain.of_csr}'s row re-normalization on load may
    still move entries by one ulp when a row's compensated sum is not
    bitwise [1.0]. *)

val write_chain : out_channel -> Chain.t -> unit

val read_chain : in_channel -> (Chain.t, string) result
(** Validates the header, the dimensions, and stochasticity. *)

val write_vector : out_channel -> Linalg.Vec.t -> unit

val read_vector : in_channel -> (Linalg.Vec.t, string) result

val save_chain : string -> Chain.t -> unit
(** [save_chain path chain]; truncates an existing file. *)

val load_chain : string -> (Chain.t, string) result

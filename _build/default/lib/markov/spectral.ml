type estimate = { modulus : float; iterations : int; converged : bool; mixing_time : float }

(* Deflated power iteration on A = P^T: the dominant eigenpair of A is
   (1, pi) with left eigenvector 1 (the all-ones vector); projecting the
   iterate onto the complement of span(pi) with the oblique projector
   [x <- x - (1^T x) pi] removes the lambda = 1 component exactly (since
   1^T pi = 1), leaving the subdominant mode to dominate. *)
let subdominant ?(tol = 1e-8) ?(max_iter = 50_000) ?pi chain =
  let n = Chain.n_states chain in
  if n < 2 then { modulus = 0.0; iterations = 0; converged = true; mixing_time = 0.0 }
  else begin
    let pi = match pi with Some p -> p | None -> (Power.solve ~tol:1e-13 chain).Solution.pi in
    let pt = Sparse.Csr.transpose (Chain.tpm chain) in
    let deflate x =
      let mass = Linalg.Vec.sum x in
      Linalg.Vec.axpy ~alpha:(-.mass) ~x:pi ~y:x
    in
    (* deterministic non-trivial start: alternate signs, deflated *)
    let x = ref (Array.init n (fun i -> if i mod 2 = 0 then 1.0 else -1.0)) in
    deflate !x;
    let norm0 = Linalg.Vec.nrm2 !x in
    if norm0 = 0.0 then { modulus = 0.0; iterations = 0; converged = true; mixing_time = 0.0 }
    else begin
      Linalg.Vec.scale_in_place (1.0 /. norm0) !x;
      let modulus = ref 0.0 in
      let iterations = ref 0 in
      let converged = ref false in
      while (not !converged) && !iterations < max_iter do
        let y = Sparse.Csr.mul_vec pt !x in
        deflate y;
        let norm = Linalg.Vec.nrm2 y in
        incr iterations;
        if norm = 0.0 || not (Float.is_finite norm) then begin
          modulus := 0.0;
          converged := true
        end
        else begin
          Linalg.Vec.scale_in_place (1.0 /. norm) y;
          x := y;
          if abs_float (norm -. !modulus) <= tol *. Float.max 1.0 norm then converged := true;
          modulus := norm
        end
      done;
      let modulus = Float.min !modulus 1.0 in
      let mixing_time =
        if modulus <= 0.0 then 0.0
        else if modulus >= 1.0 then Float.infinity
        else -1.0 /. log modulus
      in
      { modulus; iterations = !iterations; converged = !converged; mixing_time }
    end
  end

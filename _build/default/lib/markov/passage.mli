(** First-passage computations: the machinery behind the paper's "mean time
    between cycle slips", which is a mean transition time between sets of
    Markov-chain states (a linear system with the modified TPM). *)

val mean_hitting_times :
  ?tol:float -> ?max_iter:int -> Chain.t -> target:(int -> bool) -> Linalg.Vec.t
(** [mean_hitting_times c ~target] returns [m] with [m.(i)] the expected
    number of steps to first reach the target set starting from [i]
    ([0.] on target states, [infinity] where the target is unreachable).
    Solved by Gauss-Seidel on [(I - Q) m = 1] over the complement of the
    target. Plain sweeps converge at the event rate — hopeless for rare
    events — so the solver also forms out-of-place Aitken extrapolates of
    the geometrically decaying iterates and stops when successive
    extrapolation windows agree to [tol] (relative, default [1e-6]; rare-
    event accuracy is limited by the dominance-ratio estimate, so demanding
    much tighter tolerances mostly costs sweeps). [max_iter = 500_000]
    sweeps bounds the worst case. Raises [Invalid_argument] when the target
    is empty. *)

val absorption_probabilities :
  ?tol:float -> ?max_iter:int -> Chain.t -> a:(int -> bool) -> b:(int -> bool) -> Linalg.Vec.t
(** Probability of hitting set [a] before set [b], per start state. The two
    sets must be disjoint and non-empty. *)

val flux : Chain.t -> pi:Linalg.Vec.t -> crossing:(int -> int -> bool) -> float
(** Stationary probability flux through the marked transitions:
    [sum pi_i P_ij] over pairs with [crossing i j]. Events per step; its
    inverse is a mean time between events. *)

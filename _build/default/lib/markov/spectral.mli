(** Spectral diagnostics: the subdominant eigenvalue modulus of the TPM.

    The convergence rate of every one-level iterative method — and the
    mixing time of the chain itself — is governed by the magnitude of the
    second-largest eigenvalue; it is what makes fine-grid low-noise CDR
    chains "stiff" and motivates the multigrid solver. Estimated by power
    iteration on [P^T] deflated against the known dominant pair
    (right eigenvector 1, left eigenvector pi). *)

type estimate = {
  modulus : float; (* |lambda_2| *)
  iterations : int;
  converged : bool;
  mixing_time : float; (* -1 / ln |lambda_2|, steps to contract by e *)
}

val subdominant : ?tol:float -> ?max_iter:int -> ?pi:Linalg.Vec.t -> Chain.t -> estimate
(** [pi] defaults to a fresh {!Power.solve}. Defaults: [tol = 1e-8] on the
    successive-modulus difference, [max_iter = 50_000]. *)

(** Iterate-weighted lumping and the two-level aggregation/disaggregation
    (Koury–McAllister–Stewart) stationary solver.

    The coarse chain depends on the current iterate [x]: block [I] maps to
    block [J] with probability [sum_{i in I} (x_i / X_I) sum_{j in J} P_ij],
    i.e. the exact transition probabilities of the lumped process *if* [x]
    were the true stationary vector restricted to each block (the "weak
    lumpability with respect to the current guess" the paper describes). *)

val coarsen : Chain.t -> Partition.t -> weights:Linalg.Vec.t -> Chain.t
(** Blocks with zero weight use uniform intra-block weights so the coarse
    chain stays stochastic. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?smooth:int ->
  ?init:Linalg.Vec.t ->
  partition:Partition.t ->
  Chain.t ->
  Solution.t
(** Two-level A/D cycle: [smooth] Gauss-Seidel sweeps (default 2), coarsen
    with the smoothed iterate, solve the coarse chain exactly (GTH),
    disaggregate multiplicatively, repeat. [max_iter] counts cycles
    (default 1000), [tol] is the l1 stationarity residual (default 1e-12). *)

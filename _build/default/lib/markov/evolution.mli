(** Transient (finite-horizon) behaviour: distribution evolution and
    convergence to stationarity.

    Complements the stationary analyses: where {!Power}/{!Multigrid} answer
    "where does the loop live eventually", these answer "how does it get
    there" — e.g. the distribution of the phase error [k] bits after
    power-up, or how many bits it takes before steady-state BER figures
    apply. *)

val distribution_at : Chain.t -> initial:Linalg.Vec.t -> steps:int -> Linalg.Vec.t
(** [steps] forward steps of the chain ([initial * P^steps]). *)

val trajectory :
  Chain.t -> initial:Linalg.Vec.t -> steps:int -> f:(int -> Linalg.Vec.t -> unit) -> unit
(** Calls [f k dist_k] for [k = 0 .. steps]; the array passed to [f] is
    reused between calls — copy it to keep it. *)

val distance_to_stationarity :
  Chain.t -> initial:Linalg.Vec.t -> pi:Linalg.Vec.t -> steps:int -> float array
(** Total-variation distance [d(k) = (1/2) ||initial P^k - pi||_1] for
    [k = 0 .. steps]; monotone non-increasing. *)

val settling_time :
  ?epsilon:float -> ?max_steps:int -> Chain.t -> initial:Linalg.Vec.t -> pi:Linalg.Vec.t -> int option
(** First [k] with [d(k) <= epsilon] (default [1e-3]), or [None] within
    [max_steps] (default [100_000]). *)

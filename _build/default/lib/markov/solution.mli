(** Common result type for the stationary-distribution solvers. *)

type t = {
  pi : Linalg.Vec.t; (* l1-normalized stationary iterate *)
  iterations : int; (* sweeps / cycles performed *)
  residual : float; (* ||pi P - pi||_1 at exit *)
  converged : bool;
}

val make : chain:Chain.t -> pi:Linalg.Vec.t -> iterations:int -> tol:float -> t
(** Normalizes [pi], measures the residual against [chain] and fills in the
    convergence flag. *)

val pp : Format.formatter -> t -> unit

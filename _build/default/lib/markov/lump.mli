(** Exact (ordinary) lumpability.

    A partition is lumpable when every state of a block has the same total
    transition probability into each other block; then the lumped process is
    Markov for *every* initial distribution and the chain truly reduces (the
    paper notes this rarely holds for interesting models — hence weak
    lumpability and iterate-weighted aggregation). *)

val is_lumpable : ?tol:float -> Chain.t -> Partition.t -> bool
(** Default [tol = 1e-12]. *)

val lump : ?tol:float -> Chain.t -> Partition.t -> (Chain.t, string) result
(** The exactly lumped chain, or [Error] describing the first violating
    block pair. *)

val lump_unchecked : Chain.t -> Partition.t -> Chain.t
(** Uniform-weight lumping regardless of lumpability (used for tests and
    rough previews; coincides with {!lump} when the partition is lumpable). *)

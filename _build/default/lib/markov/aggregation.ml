let coarsen chain partition ~weights =
  let n = Chain.n_states chain in
  if Array.length weights <> n then invalid_arg "Aggregation.coarsen: weights dimension";
  let nc = partition.Partition.n_coarse in
  let block_weight = Partition.restrict partition weights in
  let sizes = Array.make nc 0 in
  Array.iter (fun b -> sizes.(b) <- sizes.(b) + 1) partition.Partition.map;
  let normalized_weight i =
    let b = Partition.block partition i in
    if block_weight.(b) > 0.0 then weights.(i) /. block_weight.(b)
    else 1.0 /. float_of_int sizes.(b)
  in
  let acc = Sparse.Coo.create ~rows:nc ~cols:nc in
  Sparse.Csr.iter (Chain.tpm chain) (fun i j v ->
      let wi = normalized_weight i in
      if wi > 0.0 then
        Sparse.Coo.add acc ~row:(Partition.block partition i) ~col:(Partition.block partition j)
          (wi *. v));
  Chain.of_csr ~tol:1e-6 (Sparse.Coo.to_csr acc)

let solve ?(tol = 1e-12) ?(max_iter = 1000) ?(smooth = 2) ?init ~partition chain =
  let n = Chain.n_states chain in
  let pt = Sparse.Csr.transpose (Chain.tpm chain) in
  let x = match init with Some v -> Linalg.Vec.copy v | None -> Chain.uniform chain in
  Linalg.Vec.normalize_l1 x;
  let iterations = ref 0 in
  let continue_ = ref (n > 0) in
  while !continue_ && !iterations < max_iter do
    Splitting.sweeps_gauss_seidel ~transposed:pt x smooth;
    let coarse_chain = coarsen chain partition ~weights:x in
    let coarse_pi = Gth.solve coarse_chain in
    let x' = Partition.prolong partition ~coarse:coarse_pi ~weights:x in
    Array.blit x' 0 x 0 n;
    Linalg.Vec.normalize_l1 x;
    incr iterations;
    if Chain.residual chain x <= tol then continue_ := false
  done;
  Solution.make ~chain ~pi:x ~iterations:!iterations ~tol

let check_initial chain initial =
  if Array.length initial <> Chain.n_states chain then
    invalid_arg "Evolution: initial distribution dimension mismatch"

let trajectory chain ~initial ~steps ~f =
  check_initial chain initial;
  if steps < 0 then invalid_arg "Evolution.trajectory: negative steps";
  let cur = ref (Linalg.Vec.copy initial) in
  let next = ref (Linalg.Vec.create (Chain.n_states chain)) in
  f 0 !cur;
  for k = 1 to steps do
    Chain.step_into chain !cur !next;
    let tmp = !cur in
    cur := !next;
    next := tmp;
    f k !cur
  done

let distribution_at chain ~initial ~steps =
  let result = ref (Linalg.Vec.copy initial) in
  trajectory chain ~initial ~steps ~f:(fun k dist -> if k = steps then result := Linalg.Vec.copy dist);
  !result

let distance_to_stationarity chain ~initial ~pi ~steps =
  check_initial chain initial;
  if Array.length pi <> Chain.n_states chain then invalid_arg "Evolution: pi dimension mismatch";
  let out = Array.make (steps + 1) 0.0 in
  trajectory chain ~initial ~steps ~f:(fun k dist -> out.(k) <- 0.5 *. Linalg.Vec.dist_l1 dist pi);
  out

let settling_time ?(epsilon = 1e-3) ?(max_steps = 100_000) chain ~initial ~pi =
  check_initial chain initial;
  let cur = ref (Linalg.Vec.copy initial) in
  let next = ref (Linalg.Vec.create (Chain.n_states chain)) in
  let rec loop k =
    if 0.5 *. Linalg.Vec.dist_l1 !cur pi <= epsilon then Some k
    else if k >= max_steps then None
    else begin
      Chain.step_into chain !cur !next;
      let tmp = !cur in
      cur := !next;
      next := tmp;
      loop (k + 1)
    end
  in
  loop 0

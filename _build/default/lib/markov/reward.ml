let long_run_average ~pi ~reward = Stat.expectation ~pi ~f:reward

let transition_rate chain ~pi ~reward =
  if Array.length pi <> Chain.n_states chain then invalid_arg "Reward: pi dimension mismatch";
  Sparse.Csr.fold (Chain.tpm chain) ~init:0.0 ~f:(fun acc i j v -> acc +. (pi.(i) *. v *. reward i j))

(* v = r + Q v on the complement of the target: the same fixed point as
   mean_hitting_times up to the source term, so reuse its accelerated
   Gauss-Seidel by rescaling? The acceleration logic is the same; here we
   re-implement the sweep with a general source to keep Passage's hot loop
   unburdened. *)
let accumulated_before ?(tol = 1e-6) ?(max_iter = 500_000) chain ~target ~reward =
  let n = Chain.n_states chain in
  let found = ref false in
  for i = 0 to n - 1 do
    if target i then found := true
  done;
  if not !found then invalid_arg "Reward.accumulated_before: empty target set";
  let p = Chain.tpm chain in
  let is_target = Array.init n target in
  let source = Array.init n (fun i -> if is_target.(i) then 0.0 else reward i) in
  let v = Array.make n 0.0 in
  let prev = Array.make n 0.0 in
  let sweep () =
    for i = 0 to n - 1 do
      if not is_target.(i) then begin
        let acc = ref source.(i) and self = ref 0.0 in
        Sparse.Csr.iter_row p i (fun j w ->
            if j = i then self := w else if not is_target.(j) then acc := !acc +. (w *. v.(j)));
        let denom = 1.0 -. !self in
        v.(i) <- (if denom <= 0.0 then Float.infinity else !acc /. denom)
      end
    done
  in
  let max_delta () =
    let d = ref 0.0 in
    for i = 0 to n - 1 do
      let di = abs_float (v.(i) -. prev.(i)) in
      if Float.is_finite di then d := Float.max !d di else d := Float.infinity
    done;
    !d
  in
  (* same windowed out-of-place Aitken acceleration as Passage *)
  let window = 50 in
  let candidate = Array.make n 0.0 in
  let previous_candidate = Array.make n Float.nan in
  let have_candidate = ref false in
  let agreements = ref 0 in
  let finished = ref false in
  let k = ref 0 in
  while (not !finished) && !k < max_iter do
    Array.blit v 0 prev 0 n;
    sweep ();
    incr k;
    let delta = max_delta () in
    if delta <= tol then finished := true
    else if !k mod window = 0 && Float.is_finite delta && delta > 0.0 then begin
      Array.blit v 0 candidate 0 n;
      Array.blit v 0 prev 0 n;
      sweep ();
      incr k;
      let delta2 = max_delta () in
      let r = if delta > 0.0 then delta2 /. delta else 1.0 in
      if r > 0.0 && r < 1.0 then begin
        let factor = r /. (1.0 -. r) in
        let worst = ref 0.0 in
        for i = 0 to n - 1 do
          if not is_target.(i) then begin
            let extrapolated =
              if Float.is_finite v.(i) then v.(i) +. ((v.(i) -. prev.(i)) *. factor) else v.(i)
            in
            if !have_candidate && Float.is_finite extrapolated then
              worst :=
                Float.max !worst
                  (abs_float (extrapolated -. previous_candidate.(i))
                  /. (1.0 +. abs_float extrapolated));
            candidate.(i) <- extrapolated
          end
          else candidate.(i) <- 0.0
        done;
        if !have_candidate && !worst <= tol then begin
          incr agreements;
          if !agreements >= 2 then begin
            Array.blit candidate 0 v 0 n;
            finished := true
          end
          else begin
            Array.blit candidate 0 previous_candidate 0 n;
            have_candidate := true
          end
        end
        else begin
          agreements := 0;
          Array.blit candidate 0 previous_candidate 0 n;
          have_candidate := true
        end
      end
    end
  done;
  v

let discounted ?(tol = 1e-12) ?(max_iter = 1_000_000) chain ~gamma ~reward =
  if gamma < 0.0 || gamma >= 1.0 then invalid_arg "Reward.discounted: gamma must lie in [0, 1)";
  let n = Chain.n_states chain in
  let p = Chain.tpm chain in
  let r = Array.init n reward in
  let v = Array.copy r in
  let rec loop k =
    if k >= max_iter then ()
    else begin
      (* Gauss-Seidel sweep on v = r + gamma P v: contraction with modulus
         gamma, so convergence is geometric *)
      let delta = ref 0.0 in
      for i = 0 to n - 1 do
        let acc = ref 0.0 in
        Sparse.Csr.iter_row p i (fun j w -> acc := !acc +. (w *. v.(j)));
        let nv = r.(i) +. (gamma *. !acc) in
        delta := Float.max !delta (abs_float (nv -. v.(i)));
        v.(i) <- nv
      done;
      if !delta > tol then loop (k + 1)
    end
  in
  loop 0;
  v

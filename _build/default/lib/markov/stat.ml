let expectation ~pi ~f =
  let acc = ref 0.0 and c = ref 0.0 in
  Array.iteri
    (fun i p ->
      let v = (p *. f i) -. !c in
      let t = !acc +. v in
      c := t -. !acc -. v;
      acc := t)
    pi;
  !acc

let variance ~pi ~f =
  let mean = expectation ~pi ~f in
  expectation ~pi ~f:(fun i ->
      let d = f i -. mean in
      d *. d)

let autocovariance chain ~pi ~f ~lags =
  if lags < 0 then invalid_arg "Stat.autocovariance: negative lags";
  let n = Chain.n_states chain in
  if Array.length pi <> n then invalid_arg "Stat.autocovariance: dimension mismatch";
  let mean = expectation ~pi ~f in
  let fvec = Array.init n f in
  let r = Array.make (lags + 1) 0.0 in
  (* g_k = P^k f (column vector): E[f(X_0) f(X_k)] = sum_i pi_i f_i g_k(i) *)
  let g = ref (Array.copy fvec) in
  for k = 0 to lags do
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (pi.(i) *. fvec.(i) *. !g.(i))
    done;
    r.(k) <- !acc -. (mean *. mean);
    if k < lags then g := Sparse.Csr.mul_vec (Chain.tpm chain) !g
  done;
  r

let autocorrelation chain ~pi ~f ~lags =
  let r = autocovariance chain ~pi ~f ~lags in
  if r.(0) <= 0.0 then Array.map (fun _ -> 0.0) r else Array.map (fun v -> v /. r.(0)) r

let marginal ~pi ~label ~n_labels =
  let out = Array.make n_labels 0.0 in
  Array.iteri
    (fun i p ->
      let b = label i in
      if b < 0 || b >= n_labels then invalid_arg "Stat.marginal: label out of range";
      out.(b) <- out.(b) +. p)
    pi;
  out

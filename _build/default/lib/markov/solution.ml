type t = { pi : Linalg.Vec.t; iterations : int; residual : float; converged : bool }

let make ~chain ~pi ~iterations ~tol =
  Linalg.Vec.normalize_l1 pi;
  let residual = Chain.residual chain pi in
  { pi; iterations; residual; converged = residual <= tol }

let pp ppf t =
  Format.fprintf ppf "iterations=%d residual=%.3e converged=%b" t.iterations t.residual t.converged

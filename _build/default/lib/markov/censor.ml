let partition_states chain keep =
  let n = Chain.n_states chain in
  let kept = ref [] and dropped = ref [] in
  for i = n - 1 downto 0 do
    if keep i then kept := i :: !kept else dropped := i :: !dropped
  done;
  (Array.of_list !kept, Array.of_list !dropped)

(* S = P_AA + P_AB (I - P_BB)^{-1} P_BA, built densely over the blocks. *)
let stochastic_complement chain ~keep =
  let kept, dropped = partition_states chain keep in
  let na = Array.length kept and nb = Array.length dropped in
  if na = 0 then invalid_arg "Censor: keep selects no states";
  let tpm = Chain.tpm chain in
  if nb = 0 then (chain, kept)
  else begin
    let index_in_a = Hashtbl.create na and index_in_b = Hashtbl.create (max nb 1) in
    Array.iteri (fun k i -> Hashtbl.add index_in_a i k) kept;
    Array.iteri (fun k i -> Hashtbl.add index_in_b i k) dropped;
    let p_aa = Linalg.Mat.create ~rows:na ~cols:na in
    let p_ab = Linalg.Mat.create ~rows:na ~cols:nb in
    let p_ba = Linalg.Mat.create ~rows:nb ~cols:na in
    let i_minus_p_bb = Linalg.Mat.identity nb in
    Sparse.Csr.iter tpm (fun i j v ->
        match (Hashtbl.find_opt index_in_a i, Hashtbl.find_opt index_in_a j) with
        | Some a_i, Some a_j -> Linalg.Mat.set p_aa a_i a_j v
        | Some a_i, None -> Linalg.Mat.set p_ab a_i (Hashtbl.find index_in_b j) v
        | None, Some a_j -> Linalg.Mat.set p_ba (Hashtbl.find index_in_b i) a_j v
        | None, None ->
            let b_i = Hashtbl.find index_in_b i and b_j = Hashtbl.find index_in_b j in
            Linalg.Mat.set i_minus_p_bb b_i b_j (Linalg.Mat.get i_minus_p_bb b_i b_j -. v));
    (* X = (I - P_BB)^{-1} P_BA, column by column through the LU *)
    let lu =
      try Linalg.Lu.factorize i_minus_p_bb
      with Linalg.Lu.Singular _ ->
        invalid_arg "Censor: the complement block traps the chain (I - P_BB singular)"
    in
    let x = Linalg.Mat.create ~rows:nb ~cols:na in
    for col = 0 to na - 1 do
      let rhs = Array.init nb (fun r -> Linalg.Mat.get p_ba r col) in
      let sol = Linalg.Lu.solve lu rhs in
      for r = 0 to nb - 1 do
        Linalg.Mat.set x r col sol.(r)
      done
    done;
    let s = Linalg.Mat.add p_aa (Linalg.Mat.mul p_ab x) in
    (Chain.of_dense ~tol:1e-6 s, kept)
  end

let conditional_stationary chain ~pi ~keep =
  let n = Chain.n_states chain in
  if Array.length pi <> n then invalid_arg "Censor: pi dimension mismatch";
  let kept, _ = partition_states chain keep in
  if Array.length kept = 0 then invalid_arg "Censor: keep selects no states";
  let restricted = Array.map (fun i -> pi.(i)) kept in
  Linalg.Vec.normalize_l1 restricted;
  restricted

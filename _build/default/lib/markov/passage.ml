let check_nonempty name pred n =
  let found = ref false in
  for i = 0 to n - 1 do
    if pred i then found := true
  done;
  if not !found then invalid_arg ("Passage: empty " ^ name ^ " set")

(* Gauss-Seidel for m = 1 + Q m restricted to non-target states, accelerated
   with per-state Aitken extrapolation: when the event is rare the iteration
   matrix has spectral radius 1 - rate, so plain sweeps need ~1/rate
   iterations; once the dominant mode has purified, the corrections decay
   geometrically with a ratio r that is cheap to estimate, so the remaining
   correction is (m_k - m_{k-1}) r / (1 - r) per state. *)
let mean_hitting_times ?(tol = 1e-6) ?(max_iter = 500_000) chain ~target =
  let n = Chain.n_states chain in
  check_nonempty "target" target n;
  let p = Chain.tpm chain in
  let m = Array.make n 0.0 in
  let prev = Array.make n 0.0 in
  let is_target = Array.init n target in
  let sweep () =
    for i = 0 to n - 1 do
      if not is_target.(i) then begin
        let acc = ref 1.0 and self = ref 0.0 in
        Sparse.Csr.iter_row p i (fun j v ->
            if j = i then self := v else if not is_target.(j) then acc := !acc +. (v *. m.(j)));
        let denom = 1.0 -. !self in
        m.(i) <- (if denom <= 0.0 then Float.infinity else !acc /. denom)
      end
    done
  in
  let max_delta () =
    let d = ref 0.0 in
    for i = 0 to n - 1 do
      let di = abs_float (m.(i) -. prev.(i)) in
      if Float.is_finite di then d := Float.max !d di else d := Float.infinity
    done;
    !d
  in
  (* Aitken candidates are formed *out of place*: the Gauss-Seidel iterate
     itself is never touched, so its corrections keep decaying cleanly at the
     dominant rate and the ratio estimate purifies window after window. Two
     successive candidates agreeing (relatively) is the stopping rule — a
     sound one because the candidate error is driven by the ratio estimate,
     which improves geometrically with the spectral gap. *)
  let window = 50 in
  let candidate = Array.make n 0.0 in
  let previous_candidate = Array.make n Float.nan in
  let have_candidate = ref false in
  let agreements = ref 0 in
  let finished = ref false in
  let k = ref 0 in
  while (not !finished) && !k < max_iter do
    Array.blit m 0 prev 0 n;
    sweep ();
    incr k;
    let delta = max_delta () in
    if delta <= tol then finished := true (* plain convergence (fast chains) *)
    else if !k mod window = 0 && Float.is_finite delta && delta > 0.0 then begin
      (* ratio from the freshest pair of sweeps: purest dominant mode *)
      Array.blit m 0 candidate 0 n;
      (* one more sweep to get (m_k, m_{k+1}) *)
      Array.blit m 0 prev 0 n;
      sweep ();
      incr k;
      let delta2 = max_delta () in
      let r = if delta > 0.0 then delta2 /. delta else 1.0 in
      if r > 0.0 && r < 1.0 then begin
        let factor = r /. (1.0 -. r) in
        let worst = ref 0.0 in
        for i = 0 to n - 1 do
          if not is_target.(i) then begin
            let extrapolated =
              if Float.is_finite m.(i) then Float.max 0.0 (m.(i) +. ((m.(i) -. prev.(i)) *. factor))
              else m.(i)
            in
            if !have_candidate && Float.is_finite extrapolated then
              worst :=
                Float.max !worst
                  (abs_float (extrapolated -. previous_candidate.(i))
                  /. (1.0 +. abs_float extrapolated));
            candidate.(i) <- extrapolated
          end
          else candidate.(i) <- 0.0
        done;
        if !have_candidate && !worst <= tol then begin
          incr agreements;
          (* two consecutive agreeing windows guard against a premature match
             while the dominant mode is still contaminated *)
          if !agreements >= 2 then begin
            Array.blit candidate 0 m 0 n;
            finished := true
          end
          else begin
            Array.blit candidate 0 previous_candidate 0 n;
            have_candidate := true
          end
        end
        else begin
          agreements := 0;
          Array.blit candidate 0 previous_candidate 0 n;
          have_candidate := true
        end
      end
    end
  done;
  m

let absorption_probabilities ?(tol = 1e-12) ?(max_iter = 1_000_000) chain ~a ~b =
  let n = Chain.n_states chain in
  check_nonempty "a" a n;
  check_nonempty "b" b n;
  for i = 0 to n - 1 do
    if a i && b i then invalid_arg "Passage.absorption_probabilities: sets not disjoint"
  done;
  let p = Chain.tpm chain in
  let h = Array.init n (fun i -> if a i then 1.0 else 0.0) in
  let in_a = Array.init n a and in_b = Array.init n b in
  let rec loop k =
    if k >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for i = 0 to n - 1 do
        if not (in_a.(i) || in_b.(i)) then begin
          let acc = ref 0.0 and self = ref 0.0 in
          Sparse.Csr.iter_row p i (fun j v -> if j = i then self := v else acc := !acc +. (v *. h.(j)));
          let denom = 1.0 -. !self in
          let v = if denom <= 0.0 then h.(i) else !acc /. denom in
          delta := Float.max !delta (abs_float (v -. h.(i)));
          h.(i) <- v
        end
      done;
      if !delta > tol then loop (k + 1)
    end
  in
  loop 0;
  h

let flux chain ~pi ~crossing =
  let n = Chain.n_states chain in
  if Array.length pi <> n then invalid_arg "Passage.flux: dimension mismatch";
  Sparse.Csr.fold (Chain.tpm chain) ~init:0.0 ~f:(fun acc i j v ->
      if crossing i j then acc +. (pi.(i) *. v) else acc)

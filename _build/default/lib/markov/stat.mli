(** Statistics of functions defined on the states of a chain — the
    "computation of other performance quantities such as the autocorrelation
    of a function defined on the states of the MC" enabled once the
    stationary vector is known. *)

val expectation : pi:Linalg.Vec.t -> f:(int -> float) -> float

val variance : pi:Linalg.Vec.t -> f:(int -> float) -> float

val autocovariance : Chain.t -> pi:Linalg.Vec.t -> f:(int -> float) -> lags:int -> float array
(** [autocovariance c ~pi ~f ~lags] returns [r] of length [lags + 1] with
    [r.(k) = E[f(X_0) f(X_k)] - E[f]^2] under stationarity, computed with [k]
    successive TPM-vector products. *)

val autocorrelation : Chain.t -> pi:Linalg.Vec.t -> f:(int -> float) -> lags:int -> float array
(** Autocovariance normalized by [r.(0)]; all-zero when the variance
    vanishes. *)

val marginal : pi:Linalg.Vec.t -> label:(int -> int) -> n_labels:int -> Linalg.Vec.t
(** Push the stationary distribution through a labeling (e.g. state ->
    discretized phase error) to obtain the marginal pmf the paper plots. *)

type t = { counts : int array; mutable total : int }

let create ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  { counts = Array.make bins 0; total = 0 }

let add t bin =
  if bin < 0 || bin >= Array.length t.counts then invalid_arg "Histogram.add: bin out of range";
  t.counts.(bin) <- t.counts.(bin) + 1;
  t.total <- t.total + 1

let count t bin =
  if bin < 0 || bin >= Array.length t.counts then invalid_arg "Histogram.count: bin out of range";
  t.counts.(bin)

let total t = t.total

let to_pmf t =
  if t.total = 0 then invalid_arg "Histogram.to_pmf: empty histogram";
  let n = float_of_int t.total in
  Array.map (fun c -> float_of_int c /. n) t.counts

let total_variation t reference =
  if Array.length reference <> Array.length t.counts then
    invalid_arg "Histogram.total_variation: dimension mismatch";
  let pmf = to_pmf t in
  0.5 *. Linalg.Vec.dist_l1 pmf reference

let of_phase_trajectory cfg trajectory =
  let t = create ~bins:cfg.Cdr.Config.grid_points in
  Array.iter (fun bin -> add t bin) trajectory;
  t

let collect ?noise_model ?seed cfg ~bits =
  of_phase_trajectory cfg (Transient.trajectory ?noise_model ?seed cfg ~bits)

type interval = { lower : float; upper : float }

let check ~errors ~bits =
  if bits <= 0 then invalid_arg "Estimate: bits must be positive";
  if errors < 0 || errors > bits then invalid_arg "Estimate: errors out of [0, bits]"

let point_estimate ~errors ~bits =
  check ~errors ~bits;
  float_of_int errors /. float_of_int bits

let wilson ?(z = 1.96) ~errors ~bits () =
  check ~errors ~bits;
  let n = float_of_int bits in
  let p = float_of_int errors /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half = z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
  { lower = Float.max 0.0 (center -. half); upper = Float.min 1.0 (center +. half) }

let required_bits ~ber ?(relative_error = 0.1) ?(z = 1.96) () =
  if ber <= 0.0 || ber >= 1.0 then invalid_arg "Estimate.required_bits: ber out of (0, 1)";
  if relative_error <= 0.0 then invalid_arg "Estimate.required_bits: relative_error must be positive";
  z *. z *. (1.0 -. ber) /. (relative_error *. relative_error *. ber)

let observed_vs_expected ~errors ~bits ~ber =
  check ~errors ~bits;
  if ber < 0.0 || ber > 1.0 then invalid_arg "Estimate.observed_vs_expected: ber out of [0, 1]";
  let n = float_of_int bits in
  let mean = n *. ber in
  let sd = sqrt (n *. ber *. (1.0 -. ber)) in
  if sd = 0.0 then if float_of_int errors = mean then 0.0 else Float.infinity
  else abs_float ((float_of_int errors -. mean) /. sd)

type outcome = {
  bits : int;
  errors : int;
  transitions : int;
  slips : int;
  final_phase_bin : int;
}

type nw_model = Continuous | Discretized

(* One simulation loop shared by both n_w models; reuses the Cdr component
   step functions so simulator and chain semantics cannot drift apart. *)
let simulate ~nw_model ?(seed = 0x5EEDL) cfg ~bits ~on_phase =
  let cfg = Cdr.Config.create_exn cfg in
  let rng = Prob.Rng.create ~seed in
  let data_comp = Cdr.Data_source.component cfg in
  let counter_comp = Cdr.Counter.component cfg in
  let nw_pmf, nw_scale = Cdr.Config.nw_pmf cfg in
  let delta = Cdr.Config.delta cfg in
  let nr_pmf = cfg.Cdr.Config.nr in
  let d0, c0, p0 = Cdr.Model.initial_state cfg in
  let d = ref d0 and c = ref c0 and phase = ref p0 in
  let errors = ref 0 and transitions = ref 0 and slips = ref 0 in
  let coin p = if Prob.Rng.float rng < p then 1 else 0 in
  for _ = 1 to bits do
    on_phase !phase;
    (* data bit: same coin wiring as the network *)
    let c01 = coin cfg.Cdr.Config.p01 and c10 = coin cfg.Cdr.Config.p10 in
    let d', data_out = data_comp.Fsm.Component.step !d [| c01; c10 |] in
    let transition = data_out = Cdr.Data_source.output_transition in
    if transition then incr transitions;
    (* per-bit eye-opening jitter *)
    let nw =
      match nw_model with
      | Continuous -> Prob.Rng.gaussian rng ~mean:0.0 ~sigma:cfg.Cdr.Config.sigma_w
      | Discretized -> float_of_int (Prob.Rng.pmf rng nw_pmf * nw_scale) *. delta
    in
    let phi = Cdr.Config.phase_of_bin cfg !phase in
    if abs_float (phi +. nw) > 0.5 then incr errors;
    (* detector decision from the same sample *)
    let pd_out =
      let dz = float_of_int cfg.Cdr.Config.detector_dead_zone *. delta in
      if not transition then Cdr.Phase_detector.Null
      else if phi +. nw > dz then Cdr.Phase_detector.Lead
      else if phi +. nw < -.dz then Cdr.Phase_detector.Lag
      else Cdr.Phase_detector.Null
    in
    let c', cmd_int =
      counter_comp.Fsm.Component.step !c [| Cdr.Phase_detector.output_to_int pd_out |]
    in
    let command = Cdr.Counter.command_of_int cmd_int in
    let nr_bins = Prob.Rng.pmf rng nr_pmf in
    let phase' = Cdr.Phase_error.next_bin cfg ~bin:!phase ~command ~nr_bins in
    if Cdr.Phase_error.crosses_boundary cfg ~src:!phase ~dst:phase' then incr slips;
    d := d';
    c := c';
    phase := phase'
  done;
  { bits; errors = !errors; transitions = !transitions; slips = !slips; final_phase_bin = !phase }

let run ?seed cfg ~bits = simulate ~nw_model:Continuous ?seed cfg ~bits ~on_phase:(fun _ -> ())

let run_discretized ?seed cfg ~bits =
  simulate ~nw_model:Discretized ?seed cfg ~bits ~on_phase:(fun _ -> ())

let trajectory ?(noise_model = `Continuous) ?seed cfg ~bits =
  let nw_model = match noise_model with `Continuous -> Continuous | `Discretized -> Discretized in
  let out = Array.make bits 0 in
  let i = ref 0 in
  let (_ : outcome) =
    simulate ~nw_model ?seed cfg ~bits ~on_phase:(fun p ->
        out.(!i) <- p;
        incr i)
  in
  out

(** Statistical estimation around the Monte-Carlo baseline: how good (or
    hopeless) a simulated BER estimate is — quantifying the paper's opening
    claim that straightforward simulation cannot verify 1e-14 error rates. *)

type interval = { lower : float; upper : float }

val point_estimate : errors:int -> bits:int -> float

val wilson : ?z:float -> errors:int -> bits:int -> unit -> interval
(** Wilson score interval for a binomial proportion (default [z = 1.96],
    i.e. 95%). Well-behaved at zero observed errors, unlike the normal
    approximation. *)

val required_bits : ber:float -> ?relative_error:float -> ?z:float -> unit -> float
(** Bits one must simulate so that the Monte-Carlo estimator of a true error
    rate [ber] has the requested relative half-width (default 0.1 at 95%):
    [n = z^2 (1-p) / (relative_error^2 p)]. For [ber = 1e-14] this is about
    4e16 bits — the paper's infeasibility argument in one number. *)

val observed_vs_expected : errors:int -> bits:int -> ber:float -> float
(** Two-sided tail z-score of the observed error count against a predicted
    BER (normal approximation to the binomial; used by cross-validation
    tests to accept/reject agreement). *)

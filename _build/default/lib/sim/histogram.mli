(** Empirical distributions collected from simulation — the bridge between
    the Monte-Carlo baseline and the analytic stationary densities.

    The headline use: simulate the loop, histogram the visited phase bins,
    and measure the total-variation distance to the Markov chain's stationary
    phase marginal. Agreement here validates the whole modeling chain
    end-to-end. *)

type t

val create : bins:int -> t

val add : t -> int -> unit
(** Raises [Invalid_argument] for a bin out of range. *)

val count : t -> int -> int

val total : t -> int

val to_pmf : t -> Linalg.Vec.t
(** Normalized frequencies; raises [Invalid_argument] on an empty
    histogram. *)

val total_variation : t -> Linalg.Vec.t -> float
(** TV distance between the empirical frequencies and a reference pmf of the
    same length. *)

val of_phase_trajectory : Cdr.Config.t -> int array -> t
(** Histogram a phase-bin trajectory from {!Transient.trajectory}. *)

val collect :
  ?noise_model:[ `Continuous | `Discretized ] -> ?seed:int64 -> Cdr.Config.t -> bits:int -> t
(** Run the simulator and histogram the visited phase bins. Use
    [`Discretized] when comparing against the chain's stationary marginal
    (same [n_w] model, no discretization bias). *)

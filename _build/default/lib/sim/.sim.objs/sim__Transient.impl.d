lib/sim/transient.ml: Array Cdr Fsm Prob

lib/sim/histogram.mli: Cdr Linalg

lib/sim/estimate.ml: Float

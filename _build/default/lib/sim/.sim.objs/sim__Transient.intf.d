lib/sim/transient.mli: Cdr

lib/sim/estimate.mli:

lib/sim/histogram.ml: Array Cdr Linalg Transient

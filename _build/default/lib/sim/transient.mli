(** Monte-Carlo transient simulation of the CDR loop — the "straightforward,
    simulation based" baseline the paper argues cannot verify 1e-14 BERs.

    The simulator runs the *same* behavioural model as the Markov analysis
    but with continuous noise: [n_w] is drawn from the exact Gaussian (not
    its discretization) and the phase error still lives on the grid so that
    agreement with the chain is exact up to the [n_w] discretization. *)

type outcome = {
  bits : int; (* bit intervals simulated *)
  errors : int; (* detection errors: |Phi + n_w| > 1/2 *)
  transitions : int; (* data transitions observed *)
  slips : int; (* cycle slips (phase wrap-arounds) *)
  final_phase_bin : int;
}

val run : ?seed:int64 -> Cdr.Config.t -> bits:int -> outcome

val run_discretized : ?seed:int64 -> Cdr.Config.t -> bits:int -> outcome
(** Same loop but drawing [n_w] from the discretized pmf used by the chain —
    the estimator whose expectation *is* the chain BER, used by the
    cross-validation tests. *)

val trajectory :
  ?noise_model:[ `Continuous | `Discretized ] -> ?seed:int64 -> Cdr.Config.t -> bits:int -> int array
(** Phase-error bin per bit interval (for eye-diagram style plots and
    occupancy histograms). [`Discretized] (default [`Continuous]) draws [n_w]
    from the chain's pmf, making the trajectory's stationary occupancy match
    the chain's exactly. *)

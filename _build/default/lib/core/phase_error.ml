let n_states cfg = cfg.Config.grid_points

let wrap cfg i =
  let m = cfg.Config.grid_points in
  ((i mod m) + m) mod m

let next_bin cfg ~bin ~command ~nr_bins =
  let g = Config.g_steps cfg in
  let correction =
    match command with Counter.Hold -> 0 | Counter.Advance -> g | Counter.Retard -> -g
  in
  wrap cfg (bin + correction + nr_bins)

let crosses_boundary cfg ~src ~dst =
  let m = cfg.Config.grid_points in
  abs (dst - src) > m / 2

let nr_source cfg =
  let nr = cfg.Config.nr in
  let shift = -Prob.Pmf.min_support nr in
  let shifted = Prob.Pmf.map_labels (fun k -> k + shift) nr in
  ({ Fsm.Network.source_name = "n_r"; pmf = shifted }, shift)

let component cfg =
  let m = cfg.Config.grid_points in
  let _, shift = nr_source cfg in
  let nr_card = Prob.Pmf.max_support cfg.Config.nr + shift + 1 in
  let step bin inputs =
    let command = Counter.command_of_int inputs.(0) in
    let nr_bins = inputs.(1) - shift in
    (next_bin cfg ~bin ~command ~nr_bins, 0)
  in
  Fsm.Component.create ~name:"phase-error" ~n_states:m
    ~input_cards:[| Counter.n_commands; max 1 nr_card |]
    ~n_outputs:1 ~step
    ~state_name:(fun bin -> Printf.sprintf "%.4f" (Config.phase_of_bin cfg bin))
    ()

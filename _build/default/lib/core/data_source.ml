type state = { bit : int; run : int }

let n_states cfg = 2 * cfg.Config.max_run

let encode cfg { bit; run } =
  if bit < 0 || bit > 1 then invalid_arg "Data_source.encode: bit must be 0 or 1";
  if run < 1 || run > cfg.Config.max_run then invalid_arg "Data_source.encode: run out of range";
  (bit * cfg.Config.max_run) + (run - 1)

let decode cfg code =
  if code < 0 || code >= n_states cfg then invalid_arg "Data_source.decode: out of range";
  { bit = code / cfg.Config.max_run; run = (code mod cfg.Config.max_run) + 1 }

let output_transition = 1

let component cfg =
  let max_run = cfg.Config.max_run in
  let step code inputs =
    let { bit; run } = decode cfg code in
    let coin = if bit = 0 then inputs.(0) else inputs.(1) in
    let flip = run >= max_run || coin = 1 in
    if flip then (encode cfg { bit = 1 - bit; run = 1 }, output_transition)
    else (encode cfg { bit; run = min max_run (run + 1) }, 0)
  in
  Fsm.Component.create ~name:"data" ~n_states:(n_states cfg) ~input_cards:[| 2; 2 |] ~n_outputs:2
    ~step
    ~state_name:(fun code ->
      let { bit; run } = decode cfg code in
      Printf.sprintf "bit=%d run=%d" bit run)
    ~output_name:(fun o -> if o = output_transition then "TRANSITION" else "HOLD")
    ()

let coin_sources cfg =
  ( { Fsm.Network.source_name = "coin01"; pmf = Prob.Pmf.bernoulli ~p:cfg.Config.p01 1 0 },
    { Fsm.Network.source_name = "coin10"; pmf = Prob.Pmf.bernoulli ~p:cfg.Config.p10 1 0 } )

let transition_probability cfg =
  (* exact stationary analysis of the standalone data chain *)
  let comp = component cfg in
  let c01, c10 = coin_sources cfg in
  let network =
    Fsm.Network.create ~sources:[| c01; c10 |] ~components:[| comp |]
      ~wiring:[| [| Fsm.Network.From_source 0; Fsm.Network.From_source 1 |] |]
  in
  let built = Fsm.Network.build_chain network ~initial:[| encode cfg { bit = 0; run = 1 } |] in
  let pi = Markov.Gth.solve built.Fsm.Network.chain in
  (* transition probability = sum over states of pi(s) * P(flip | s) *)
  let acc = ref 0.0 in
  Array.iteri
    (fun idx s ->
      let { bit; run } = decode cfg s.(0) in
      let p_flip =
        if run >= cfg.Config.max_run then 1.0 else if bit = 0 then cfg.Config.p01 else cfg.Config.p10
      in
      acc := !acc +. (pi.(idx) *. p_flip))
    built.Fsm.Network.states;
  !acc

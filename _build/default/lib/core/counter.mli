(** Up/down counter loop filter.

    The digital filter behind the phase detector: LEAD increments, LAG
    decrements, NULL holds. When the count reaches [+K] the filter emits a
    RETARD command (the phase selector steps the clock phase back by [G])
    and resets; reaching [-K] emits ADVANCE. The counter length [K] sets the
    loop bandwidth and is the design knob studied in the paper's Figure 5. *)

type command = Hold | Advance | Retard

val command_to_int : command -> int

val command_of_int : int -> command

val n_commands : int

val n_states : Config.t -> int
(** [2K - 1] (counts [-(K-1) .. K-1]). *)

val encode : Config.t -> int -> int
(** Encode a count value; raises [Invalid_argument] outside [-(K-1), K-1]. *)

val decode : Config.t -> int -> int

val component : Config.t -> Fsm.Component.t
(** Port 0: the phase-detector output (card 3). *)

(** Loop activity metrics — reward-model computations on the composed chain.

    Beyond the BER, designers budget how *busy* the loop is: every phase-mux
    switch costs power and injects supply noise (the very interference the
    paper's motivating design suffered from), and the phase detector's
    decision density sets the loop's effective gain. All are long-run
    averages of rewards on states or transitions. *)

type t = {
  correction_rate : float; (* phase-select steps per bit interval *)
  mean_bits_between_corrections : float;
  data_transition_density : float; (* data transitions per bit *)
  detector_activity : float; (* LEAD/LAG decisions per bit *)
}

val analyze : Model.t -> pi:Linalg.Vec.t -> t
(** Corrections are identified from the phase movement between states, which
    requires the selector step to exceed twice the largest [n_r] amplitude
    (raises [Invalid_argument] otherwise — the correction would be
    indistinguishable from drift). *)

val pp : Format.formatter -> t -> unit

(** Phase-error state on the wrapped grid.

    Realizes the paper's difference equation
    [Phi_{k+1} = Phi_k - f(.) + n_r(k)] on the discretized circle: ADVANCE
    moves the selected clock phase earlier (phase error increases by [G]),
    RETARD moves it later (decreases by [G]), and the drift [n_r] adds its
    sampled bin offset. Wrap-around across [+-1/2] is a cycle slip. *)

val n_states : Config.t -> int

val wrap : Config.t -> int -> int
(** Wrap an arbitrary (possibly negative) bin index onto [0, grid_points). *)

val next_bin : Config.t -> bin:int -> command:Counter.command -> nr_bins:int -> int

val crosses_boundary : Config.t -> src:int -> dst:int -> bool
(** Whether the one-step move [src -> dst] wrapped around the circle
    (assumes single-step moves are shorter than half the grid, which
    {!Config.validate} plus the [G <= 1/2] geometry guarantee). *)

val component : Config.t -> Fsm.Component.t
(** Port 0: the counter command (card 3); port 1: shifted [n_r] symbol. *)

val nr_source : Config.t -> Fsm.Network.source * int
(** [(source, shift)]: [n_r] with labels shifted by [+shift] into [0..]. *)

lib/core/phase_detector.mli: Config Fsm

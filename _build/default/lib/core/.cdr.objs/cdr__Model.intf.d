lib/core/model.mli: Config Fsm Linalg Markov

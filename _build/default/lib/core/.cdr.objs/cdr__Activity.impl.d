lib/core/activity.ml: Config Data_source Float Format Markov Model Phase_detector Prob

lib/core/clock_jitter.mli: Format Linalg Model

lib/core/acquisition.ml: Array Config Float Format Markov Model

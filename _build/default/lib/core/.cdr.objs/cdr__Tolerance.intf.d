lib/core/tolerance.mli: Config Format

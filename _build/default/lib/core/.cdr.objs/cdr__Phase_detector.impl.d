lib/core/phase_detector.ml: Array Config Data_source Fsm Printf Prob

lib/core/ber.ml: Array Config Float Linalg List Markov Model Prob

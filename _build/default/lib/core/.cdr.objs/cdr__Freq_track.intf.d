lib/core/freq_track.mli: Config Linalg Markov

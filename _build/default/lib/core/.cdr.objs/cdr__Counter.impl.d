lib/core/counter.ml: Array Config Fsm Phase_detector Printf

lib/core/acquisition.mli: Format Model

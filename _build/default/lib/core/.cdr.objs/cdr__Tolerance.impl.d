lib/core/tolerance.ml: Ber Config Format List Markov Model Prob

lib/core/counter.mli: Config Fsm

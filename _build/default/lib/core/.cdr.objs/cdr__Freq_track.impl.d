lib/core/freq_track.ml: Array Ber Config Counter Data_source Fsm Markov Model Phase_detector Phase_error Printf Prob Unix

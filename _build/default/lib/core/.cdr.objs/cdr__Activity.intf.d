lib/core/activity.mli: Format Linalg Model

lib/core/phase_error.mli: Config Counter Fsm

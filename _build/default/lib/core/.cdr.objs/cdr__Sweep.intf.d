lib/core/sweep.mli: Config Format Report

lib/core/report.ml: Array Ber Buffer Config Float Format Linalg Markov Model Printf String Unix

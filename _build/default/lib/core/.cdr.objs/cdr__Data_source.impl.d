lib/core/data_source.ml: Array Config Fsm Markov Printf Prob

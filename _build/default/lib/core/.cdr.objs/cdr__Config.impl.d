lib/core/config.ml: Float Format Prob Result

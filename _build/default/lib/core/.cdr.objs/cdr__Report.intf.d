lib/core/report.mli: Config Format Linalg

lib/core/cycle_slip.ml: Array Float Markov Model Phase_error Sparse

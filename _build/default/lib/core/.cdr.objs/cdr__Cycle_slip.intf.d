lib/core/cycle_slip.mli: Linalg Model

lib/core/scenario.ml: Ber Config Format List Model Prob

lib/core/model.ml: Array Config Counter Data_source Fsm Hashtbl List Markov Option Phase_detector Phase_error Prob Queue Sparse Unix

lib/core/clock_jitter.ml: Array Config Float Format Linalg Markov Model

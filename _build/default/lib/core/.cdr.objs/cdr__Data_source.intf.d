lib/core/data_source.mli: Config Fsm

lib/core/ber.mli: Config Linalg Markov Model

lib/core/phase_error.ml: Array Config Counter Fsm Printf Prob

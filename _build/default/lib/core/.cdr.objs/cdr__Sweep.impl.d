lib/core/sweep.ml: Config Format List Report

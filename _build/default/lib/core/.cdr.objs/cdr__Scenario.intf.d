lib/core/scenario.mli: Config Format

type t = {
  mean_ui : float;
  rms_ui : float;
  peak_to_peak_ui : float;
  autocorrelation : float array;
  correlation_time : float;
}

let analyze ?(lags = 64) model ~pi =
  let cfg = model.Model.config in
  let phase_of_state i = Config.phase_of_bin cfg (model.Model.phase_bin i) in
  let mean_ui = Markov.Stat.expectation ~pi ~f:phase_of_state in
  let rms_ui = sqrt (Markov.Stat.variance ~pi ~f:phase_of_state) in
  (* peak-to-peak over the bins actually carrying mass above double-rounding
     dust *)
  let rho = Model.phase_marginal model ~pi in
  let lo = ref (Array.length rho) and hi = ref (-1) in
  Array.iteri
    (fun b p ->
      if p > 1e-15 then begin
        if b < !lo then lo := b;
        if b > !hi then hi := b
      end)
    rho;
  let peak_to_peak_ui =
    if !hi < !lo then 0.0
    else Config.phase_of_bin cfg !hi -. Config.phase_of_bin cfg !lo
  in
  let autocorrelation = Markov.Stat.autocorrelation model.Model.chain ~pi ~f:phase_of_state ~lags in
  let correlation_time =
    let threshold = exp (-1.0) in
    let rec find k =
      if k > lags then Float.infinity
      else if abs_float autocorrelation.(k) < threshold then float_of_int k
      else find (k + 1)
    in
    find 0
  in
  { mean_ui; rms_ui; peak_to_peak_ui; autocorrelation; correlation_time }

let spectrum ?(lags = 256) model ~pi =
  let cfg = model.Model.config in
  let phase_of_state i = Config.phase_of_bin cfg (model.Model.phase_bin i) in
  let r = Markov.Stat.autocovariance model.Model.chain ~pi ~f:phase_of_state ~lags in
  (* symmetric extension R(-k) = R(k) onto a power-of-two circle, with a Hann
     taper so the truncated tail does not ring *)
  let n = Linalg.Fft.next_power_of_two (2 * (lags + 1)) in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  let taper k = 0.5 *. (1.0 +. cos (Float.pi *. float_of_int k /. float_of_int (lags + 1))) in
  re.(0) <- r.(0);
  for k = 1 to lags do
    let v = r.(k) *. taper k in
    re.(k) <- v;
    re.(n - k) <- v
  done;
  Linalg.Fft.transform ~re ~im;
  Array.init ((n / 2) + 1) (fun k -> (float_of_int k /. float_of_int n, re.(k)))

let pp ppf t =
  Format.fprintf ppf
    "@[<v>recovered-clock jitter:@,\
     \  static offset   : %+.5f UI@,\
     \  rms             : %.5f UI@,\
     \  peak-to-peak    : %.5f UI@,\
     \  correlation time: %g bit intervals@]"
    t.mean_ui t.rms_ui t.peak_to_peak_ui t.correlation_time

(** Parameters of the digital phase-selection loop under analysis.

    Units: one bit interval (unit interval, UI) is [1.0]. The phase error
    [Phi] lives on a wrapped uniform grid of [grid_points] bins covering
    [[-1/2, 1/2)]; bin [i] represents the phase [(i - grid_points/2) * delta]
    with [delta = 1 / grid_points]. *)

type t = {
  grid_points : int;  (** [m]: phase-error bins; must be even and positive. *)
  n_phases : int;
      (** multi-phase VCO outputs; the selector step is [G = 1/n_phases] UI
          and must be a whole number of grid bins ([grid_points mod n_phases
          = 0]). *)
  counter_length : int;  (** [K]: up/down counter overflow threshold, [>= 1]. *)
  sigma_w : float;
      (** std of the zero-mean white Gaussian eye-opening jitter [n_w], UI. *)
  detector_dead_zone : int;
      (** phase-detector dead zone in grid bins: [|Phi + n_w|] at or below
          this threshold yields no correction. [0] is the pure sign detector
          of the paper; a positive value models ternary detectors that trade
          dither for drift sensitivity (an "alternative circuit technique"
          in the paper's motivation). *)
  nw_max_atoms : int;
      (** cap on the number of atoms used when [n_w] is discretized for the
          FSM composition (the BER tail itself is computed analytically). *)
  nr : Prob.Pmf.t;
      (** drift jitter [n_r] pmf; labels are *signed grid-bin offsets*. *)
  p01 : float;  (** data bit transition probability 0 -> 1. *)
  p10 : float;  (** data bit transition probability 1 -> 0. *)
  max_run : int;
      (** longest bit sequence with no transitions (a transition is forced
          after [max_run] identical bits), [>= 1]. *)
}

val default : t
(** The running example of the paper's Section "Examples": a 128-bin grid,
    16-phase VCO, counter length 8, moderate eye-opening jitter and a small
    positive-mean SONET-flavoured drift. *)

val validate : t -> (unit, string) result

val create_exn : t -> t
(** [validate] and return, raising [Invalid_argument] on failure. *)

val delta : t -> float
(** Grid step in UI. *)

val g_steps : t -> int
(** Phase-selector step in grid bins ([grid_points / n_phases]). *)

val phase_of_bin : t -> int -> float
(** Phase value (UI) represented by a grid bin. *)

val bin_of_phase : t -> float -> int
(** Nearest grid bin of a phase in [[-1/2, 1/2)]; raises [Invalid_argument]
    outside that interval. *)

val nw_pmf : t -> Prob.Pmf.t * int
(** Discretized [n_w] as [(pmf, scale)]: labels are offsets in units of
    [scale * delta], the lattice chosen so the support has at most
    [nw_max_atoms] atoms. *)

val max_nr : t -> float
(** Largest |amplitude| of [n_r] in UI (the "MAXnr" of the paper's figure
    annotations). *)

val pp : Format.formatter -> t -> unit

type family = Sinusoidal | Wander of float

type point = { amplitude_bins : int; ber : float }

type result = {
  ber_target : float;
  tolerance_bins : int;
  tolerance_ui : float;
  probes : point list;
}

let nr_of_family family amplitude_bins =
  match family with
  | Sinusoidal -> Prob.Jitter.sinusoidal_equivalent ~amplitude_steps:amplitude_bins
  | Wander ratio ->
      if ratio <= 0.0 || ratio > 1.0 then invalid_arg "Tolerance: wander rms ratio out of (0, 1]";
      (* the ratio is taken of the profile's largest representable rms so
         every amplitude in the bisection is feasible *)
      Prob.Jitter.symmetric_wander ~max_steps:amplitude_bins
        ~rms_steps:(ratio *. Prob.Jitter.max_wander_rms ~max_steps:amplitude_bins)

let ber_at cfg family amplitude_bins =
  let cfg = Config.create_exn { cfg with Config.nr = nr_of_family family amplitude_bins } in
  let model = Model.build cfg in
  let solution = Model.solve ~tol:1e-11 model in
  let rho = Model.phase_marginal model ~pi:solution.Markov.Solution.pi in
  Ber.of_marginal cfg ~rho

let analyze ?(family = Sinusoidal) ?max_amplitude_bins ~ber_target cfg =
  if ber_target <= 0.0 || ber_target >= 1.0 then
    invalid_arg "Tolerance.analyze: ber_target must lie in (0, 1)";
  let max_amp =
    match max_amplitude_bins with
    | Some a -> a
    | None -> max 1 (cfg.Config.grid_points / 4)
  in
  let probes = ref [] in
  let probe amp =
    let ber = ber_at cfg family amp in
    probes := { amplitude_bins = amp; ber } :: !probes;
    ber
  in
  (* bisection on the (monotone in practice) amplitude -> BER map *)
  let rec bisect lo hi =
    (* invariant: amplitude lo meets the target (or lo = 0), hi fails *)
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if probe mid <= ber_target then bisect mid hi else bisect lo mid
    end
  in
  let tolerance_bins =
    if probe max_amp <= ber_target then max_amp
    else if probe 1 > ber_target then 0
    else bisect 1 max_amp
  in
  let probes = List.sort (fun a b -> compare a.amplitude_bins b.amplitude_bins) !probes in
  {
    ber_target;
    tolerance_bins;
    tolerance_ui = float_of_int tolerance_bins *. Config.delta cfg;
    probes;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>jitter tolerance at BER <= %.1e: %d bins (%.4f UI peak)@," t.ber_target
    t.tolerance_bins t.tolerance_ui;
  List.iter
    (fun { amplitude_bins; ber } ->
      Format.fprintf ppf "  amplitude %3d bins -> BER %.3e %s@," amplitude_bins ber
        (if ber <= t.ber_target then "ok" else "FAIL"))
    t.probes;
  Format.fprintf ppf "@]"

(** Parameter sweeps over the CDR design space — the experiments of the
    paper's Figures 4 and 5 and the "evaluation of a number of alternative
    ... architectures ... in a short time" motivation. *)

type point = { config : Config.t; report : Report.t }

val counter_lengths : ?solver:[ `Multigrid | `Power | `Gauss_seidel ] -> Config.t -> int list -> point list
(** BER for each counter length, all other parameters fixed (Figure 5). *)

val sigma_w_values : ?solver:[ `Multigrid | `Power | `Gauss_seidel ] -> Config.t -> float list -> point list
(** BER for each eye-opening jitter level (Figure 4's two panels as the
    endpoints of a continuum). *)

val optimal_counter : ?solver:[ `Multigrid | `Power | `Gauss_seidel ] -> Config.t -> int list -> int * float
(** The counter length with the lowest BER among the candidates (the design
    answer the paper derives: an interior optimum where both noise sources
    contribute). *)

val pp_points : Format.formatter -> point list -> unit
(** One table row per point: the swept value, BER, state count, iterations. *)

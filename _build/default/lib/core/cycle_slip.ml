let crossing model i j =
  Phase_error.crosses_boundary model.Model.config ~src:(model.Model.phase_bin i)
    ~dst:(model.Model.phase_bin j)

let rate model ~pi =
  Markov.Passage.flux model.Model.chain ~pi ~crossing:(crossing model)

let mean_time_between model ~pi =
  let r = rate model ~pi in
  if r <= 0.0 then Float.infinity else 1.0 /. r

(* Build the absorbed chain: every boundary-crossing transition is redirected
   to a fresh absorbing state, then the expected hitting time of that state
   is the mean time to the first slip. *)
let mean_first_slip_time ?tol model =
  let chain = model.Model.chain in
  let n = Markov.Chain.n_states chain in
  let absorbing = n in
  let acc = Sparse.Coo.create ~rows:(n + 1) ~cols:(n + 1) in
  Sparse.Csr.iter (Markov.Chain.tpm chain) (fun i j v ->
      if crossing model i j then Sparse.Coo.add acc ~row:i ~col:absorbing v
      else Sparse.Coo.add acc ~row:i ~col:j v);
  Sparse.Coo.add acc ~row:absorbing ~col:absorbing 1.0;
  let absorbed = Markov.Chain.of_csr ~tol:1e-9 (Sparse.Coo.to_csr acc) in
  let times = Markov.Passage.mean_hitting_times ?tol absorbed ~target:(fun s -> s = absorbing) in
  let cfg = model.Model.config in
  let d0, c0, p0 = Model.initial_state cfg in
  match model.Model.index_of ~data:d0 ~counter:c0 ~phase:p0 with
  | Some idx -> times.(idx)
  | None -> invalid_arg "Cycle_slip.mean_first_slip_time: initial state unreachable"

type t = {
  lock_band_ui : float;
  mean_from_worst_phase : float;
  mean_from_half_ui : float;
  per_phase_bin : (float * float) array;
}

let analyze ?lock_band_ui ?tol model =
  let cfg = model.Model.config in
  let lock_band_ui =
    match lock_band_ui with Some b -> b | None -> 1.0 /. float_of_int cfg.Config.n_phases
  in
  if lock_band_ui <= 0.0 || lock_band_ui >= 0.5 then
    invalid_arg "Acquisition.analyze: lock band must lie in (0, 1/2)";
  let locked i = abs_float (Config.phase_of_bin cfg (model.Model.phase_bin i)) <= lock_band_ui in
  let times = Markov.Passage.mean_hitting_times ?tol model.Model.chain ~target:locked in
  (* average the acquisition time over the FSM coordinates per phase bin *)
  let m = cfg.Config.grid_points in
  let sums = Array.make m 0.0 and counts = Array.make m 0 in
  Array.iteri
    (fun i t ->
      let b = model.Model.phase_bin i in
      sums.(b) <- sums.(b) +. t;
      counts.(b) <- counts.(b) + 1)
    times;
  let per_phase_bin =
    Array.init m (fun b ->
        ( Config.phase_of_bin cfg b,
          if counts.(b) = 0 then Float.nan else sums.(b) /. float_of_int counts.(b) ))
  in
  let mean_from_worst_phase =
    Array.fold_left
      (fun acc (_, t) -> if Float.is_nan t then acc else Float.max acc t)
      0.0 per_phase_bin
  in
  let mean_from_half_ui = snd per_phase_bin.(0) in
  { lock_band_ui; mean_from_worst_phase; mean_from_half_ui; per_phase_bin }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>lock acquisition (band +-%.4f UI):@,\
     \  from worst-case phase: %.1f bits@,\
     \  from the eye edge    : %.1f bits@]"
    t.lock_band_ui t.mean_from_worst_phase t.mean_from_half_ui

(** Incoming-data statistics FSM.

    State: the current bit together with its run length (number of
    consecutive identical bits so far, capped at [max_run]). Per bit interval
    the machine flips with probability [p01] (when at 0) or [p10] (when at 1),
    with a transition *forced* once the run reaches [max_run] — the "longest
    possible bit sequence with no transitions" of the input-data
    specification. Output: whether a transition occurs in this interval,
    which is what gates the phase detector. *)

type state = { bit : int; run : int (* 1 .. max_run *) }

val n_states : Config.t -> int

val encode : Config.t -> state -> int

val decode : Config.t -> int -> state

val output_transition : int
(** Output symbol for "a transition occurred" ([1]; [0] = none). *)

val component : Config.t -> Fsm.Component.t
(** Two Bernoulli coin inputs (port 0: the 0->1 coin, port 1: the 1->0 coin;
    symbol [1] = flip). *)

val coin_sources : Config.t -> Fsm.Network.source * Fsm.Network.source

val transition_probability : Config.t -> float
(** Stationary probability that a bit interval contains a transition, from
    the exact stationary distribution of this small chain (needed by
    back-of-envelope loop-bandwidth estimates in the examples). *)

(** Second-order loop: phase selection plus frequency tracking.

    The first-order loop of the paper leaves any constant frequency offset
    (the mean of [n_r]) to be fought by phase corrections alone — that is
    what breaks the long-counter designs in Figure 5. Practical CDRs add a
    second accumulator: a slow counter watches the *direction bias* of the
    phase corrections and trims a frequency register that cancels the offset
    directly.

    This module builds that architecture as two extra FSMs wired into the
    same network (no new formalism needed — the point of the paper's
    compositional model):

    - a frequency-adaptation counter of length [adapt_length] counting
      RETARD(+1)/ADVANCE(-1) commands, emitting a trim on overflow;
    - a saturating frequency register holding [f] in [-max_f .. max_f] grid
      bins per bit, subtracted from the phase error every bit interval.

    The composed chain has [(2 max_f + 1) * (2 adapt_length - 1)] times more
    states than the first-order model. *)

type params = { max_f : int; adapt_length : int }

val default_params : params
(** [max_f = 1], [adapt_length = 4]. *)

type t = {
  config : Config.t;
  params : params;
  chain : Markov.Chain.t;
  n_states : int;
  phase_bin : int -> int;
  freq_value : int -> int; (* frequency register, bins per bit *)
  build_seconds : float;
}

val build : ?params:params -> Config.t -> t

val solve : ?tol:float -> t -> Markov.Solution.t
(** Gauss-Seidel (the composed chain has no phase-only structured hierarchy
    once the frequency state couples in; the generic solver is used). *)

val phase_marginal : t -> pi:Linalg.Vec.t -> Linalg.Vec.t

val freq_marginal : t -> pi:Linalg.Vec.t -> (int * float) array
(** Stationary distribution of the frequency register value. *)

val ber : t -> pi:Linalg.Vec.t -> float

val slip_rate : t -> pi:Linalg.Vec.t -> float

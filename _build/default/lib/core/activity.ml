type t = {
  correction_rate : float;
  mean_bits_between_corrections : float;
  data_transition_density : float;
  detector_activity : float;
}

(* shortest signed phase move i -> j on the wrapped grid *)
let signed_delta cfg src dst =
  let m = cfg.Config.grid_points in
  let d = ((dst - src + (m / 2)) mod m + m) mod m - (m / 2) in
  d

let analyze model ~pi =
  let cfg = model.Model.config in
  let g = Config.g_steps cfg in
  let max_nr =
    max (abs (Prob.Pmf.min_support cfg.Config.nr)) (abs (Prob.Pmf.max_support cfg.Config.nr))
  in
  if g <= 2 * max_nr then
    invalid_arg
      "Activity.analyze: selector step must exceed twice the n_r amplitude to identify corrections";
  let threshold = g - max_nr in
  let correction_rate =
    Markov.Reward.transition_rate model.Model.chain ~pi ~reward:(fun i j ->
        let d = signed_delta cfg (model.Model.phase_bin i) (model.Model.phase_bin j) in
        if abs d >= threshold then 1.0 else 0.0)
  in
  (* transition probability per data state, exact from the source model *)
  let p_flip data_code =
    let s = Data_source.decode cfg data_code in
    if s.Data_source.run >= cfg.Config.max_run then 1.0
    else if s.Data_source.bit = 0 then cfg.Config.p01
    else cfg.Config.p10
  in
  let data_transition_density =
    Markov.Reward.long_run_average ~pi ~reward:(fun i -> p_flip (model.Model.data_code i))
  in
  (* LEAD/LAG decision density: on a transition, the detector abstains only
     on the tie atom *)
  let detector_activity =
    Markov.Reward.long_run_average ~pi ~reward:(fun i ->
        let bin = model.Model.phase_bin i in
        let p_lead = Phase_detector.lead_probability cfg ~phase_bin:bin in
        (* by symmetry of the construction, P(lag) = lead probability of the
           mirrored phase; compute directly instead *)
        let nw, scale = Config.nw_pmf cfg in
        let phase_bins = bin - (cfg.Config.grid_points / 2) in
        let dz = cfg.Config.detector_dead_zone in
        let p_lag =
          Prob.Pmf.fold nw ~init:0.0 ~f:(fun acc k w ->
              if phase_bins + (k * scale) < -dz then acc +. w else acc)
        in
        p_flip (model.Model.data_code i) *. (p_lead +. p_lag))
  in
  {
    correction_rate;
    mean_bits_between_corrections =
      (if correction_rate > 0.0 then 1.0 /. correction_rate else Float.infinity);
    data_transition_density;
    detector_activity;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>loop activity:@,\
     \  phase corrections : %.5f per bit (every %.1f bits)@,\
     \  data transitions  : %.5f per bit@,\
     \  LEAD/LAG decisions: %.5f per bit@]"
    t.correction_rate t.mean_bits_between_corrections t.data_transition_density
    t.detector_activity

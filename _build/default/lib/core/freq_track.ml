type params = { max_f : int; adapt_length : int }

let default_params = { max_f = 1; adapt_length = 4 }

type t = {
  config : Config.t;
  params : params;
  chain : Markov.Chain.t;
  n_states : int;
  phase_bin : int -> int;
  freq_value : int -> int;
  build_seconds : float;
}

(* trim commands of the adaptation counter *)
let trim_none = 0
let trim_up = 1
let trim_down = 2

let adapt_component params =
  let l = params.adapt_length in
  let n_states = (2 * l) - 1 in
  let encode v = v + l - 1 in
  let decode code = code - l + 1 in
  let step code inputs =
    let v = decode code in
    match Counter.command_of_int inputs.(0) with
    | Counter.Hold -> (code, trim_none)
    | Counter.Retard ->
        (* the loop keeps pulling the phase back: positive frequency bias *)
        if v + 1 >= l then (encode 0, trim_up) else (encode (v + 1), trim_none)
    | Counter.Advance ->
        if v - 1 <= -l then (encode 0, trim_down) else (encode (v - 1), trim_none)
  in
  Fsm.Component.create ~name:"freq-adapt" ~n_states ~input_cards:[| Counter.n_commands |]
    ~n_outputs:3 ~step
    ~state_name:(fun code -> string_of_int (decode code))
    ~output_name:(fun o -> [| "NONE"; "UP"; "DOWN" |].(o))
    ()

let freq_component params =
  let f = params.max_f in
  let n_states = (2 * f) + 1 in
  (* state code = value + f; saturating register *)
  let step code inputs =
    let v = code - f in
    let v' =
      if inputs.(0) = trim_up then min f (v + 1)
      else if inputs.(0) = trim_down then max (-f) (v - 1)
      else v
    in
    (v' + f, 0)
  in
  Fsm.Component.create ~name:"freq-register" ~n_states ~input_cards:[| 3 |] ~n_outputs:1 ~step
    ~state_name:(fun code -> string_of_int (code - f))
    ()

(* phase error with the frequency register's cancellation wired in *)
let phase_component cfg params =
  let m = cfg.Config.grid_points in
  let _, shift = Phase_error.nr_source cfg in
  let nr_card = Prob.Pmf.max_support cfg.Config.nr + shift + 1 in
  let f = params.max_f in
  let step bin inputs =
    let command = Counter.command_of_int inputs.(0) in
    let freq = inputs.(1) - f in
    let nr_bins = inputs.(2) - shift in
    (* the register cancels [freq] bins of drift every bit interval *)
    (Phase_error.wrap cfg (Phase_error.next_bin cfg ~bin ~command ~nr_bins - freq), 0)
  in
  Fsm.Component.create ~name:"phase-error" ~n_states:m
    ~input_cards:[| Counter.n_commands; (2 * f) + 1; max 1 nr_card |]
    ~n_outputs:1 ~step
    ~state_name:(fun bin -> Printf.sprintf "%.4f" (Config.phase_of_bin cfg bin))
    ()

let build ?(params = default_params) cfg =
  let cfg = Config.create_exn cfg in
  if params.max_f < 0 then invalid_arg "Freq_track: max_f must be >= 0";
  if params.adapt_length < 1 then invalid_arg "Freq_track: adapt_length must be >= 1";
  let start = Unix.gettimeofday () in
  let data = Data_source.component cfg in
  let pd = Phase_detector.component cfg in
  let counter = Counter.component cfg in
  let adapt = adapt_component params in
  let freq = freq_component params in
  let phase = phase_component cfg params in
  let coin01, coin10 = Data_source.coin_sources cfg in
  let nw, _, _ = Phase_detector.nw_source cfg in
  let nr, _ = Phase_error.nr_source cfg in
  let open Fsm.Network in
  (* order: data(0), pd(1), counter(2), adapt(3), freq(4), phase(5) *)
  let net =
    create
      ~sources:[| coin01; coin10; nw; nr |]
      ~components:[| data; pd; counter; adapt; freq; phase |]
      ~wiring:
        [|
          [| From_source 0; From_source 1 |];
          [| From_component 0; From_source 2; From_state 5 |];
          [| From_component 1 |];
          [| From_component 2 |];
          [| From_component 3 |];
          [| From_component 2; From_state 4; From_source 3 |];
        |]
  in
  let d0, c0, p0 = Model.initial_state cfg in
  let initial = [| d0; 0; c0; params.adapt_length - 1; params.max_f; p0 |] in
  let built = build_chain net ~initial in
  let states = built.states in
  {
    config = cfg;
    params;
    chain = built.chain;
    n_states = Array.length states;
    phase_bin = (fun i -> states.(i).(5));
    freq_value = (fun i -> states.(i).(4) - params.max_f);
    build_seconds = Unix.gettimeofday () -. start;
  }

let solve ?(tol = 1e-11) t =
  Markov.Splitting.solve ~method_:Markov.Splitting.Gauss_seidel ~tol t.chain

let phase_marginal t ~pi =
  Markov.Stat.marginal ~pi ~label:t.phase_bin ~n_labels:t.config.Config.grid_points

let freq_marginal t ~pi =
  let f = t.params.max_f in
  let marg = Markov.Stat.marginal ~pi ~label:(fun i -> t.freq_value i + f) ~n_labels:((2 * f) + 1) in
  Array.mapi (fun idx p -> (idx - f, p)) marg

let ber t ~pi = Ber.of_marginal t.config ~rho:(phase_marginal t ~pi)

let slip_rate t ~pi =
  Markov.Passage.flux t.chain ~pi ~crossing:(fun i j ->
      Phase_error.crosses_boundary t.config ~src:(t.phase_bin i) ~dst:(t.phase_bin j))

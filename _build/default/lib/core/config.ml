type t = {
  grid_points : int;
  n_phases : int;
  counter_length : int;
  sigma_w : float;
  detector_dead_zone : int;
  nw_max_atoms : int;
  nr : Prob.Pmf.t;
  p01 : float;
  p10 : float;
  max_run : int;
}

let default =
  {
    grid_points = 128;
    n_phases = 16;
    counter_length = 8;
    sigma_w = 0.06;
    detector_dead_zone = 0;
    nw_max_atoms = 65;
    (* a bounded, non-zero-mean, non-Gaussian drift: mostly no movement, a
       thin positive tail out to 2 bins, mean 0.05 bins per bit — tuned so
       the counter-length bathtub of Figure 5 has its optimum at K = 8 *)
    nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.05 ();
    p01 = 0.5;
    p10 = 0.5;
    max_run = 8;
  }

let validate t =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (t.grid_points > 0 && t.grid_points mod 2 = 0) "grid_points must be positive and even" in
  let* () = check (t.n_phases > 0) "n_phases must be positive" in
  let* () =
    check (t.grid_points mod t.n_phases = 0)
      "grid_points must be a multiple of n_phases (the selector step must be a whole number of bins)"
  in
  let* () = check (t.counter_length >= 1) "counter_length must be >= 1" in
  let* () = check (t.sigma_w >= 0.0 && Float.is_finite t.sigma_w) "sigma_w must be finite and >= 0" in
  let* () =
    check
      (t.detector_dead_zone >= 0 && t.detector_dead_zone < t.grid_points / 2)
      "detector_dead_zone must lie in [0, grid_points/2)"
  in
  let* () = check (t.nw_max_atoms >= 3) "nw_max_atoms must be >= 3" in
  let* () = check (t.p01 > 0.0 && t.p01 <= 1.0) "p01 must lie in (0, 1]" in
  let* () = check (t.p10 > 0.0 && t.p10 <= 1.0) "p10 must lie in (0, 1]" in
  let* () = check (t.max_run >= 1) "max_run must be >= 1" in
  let half = t.grid_points / 2 in
  let* () =
    check
      (Prob.Pmf.max_support t.nr < half && Prob.Pmf.min_support t.nr > -half)
      "nr support must stay within half a bit interval"
  in
  Ok ()

let create_exn t =
  match validate t with Ok () -> t | Error msg -> invalid_arg ("Config: " ^ msg)

let delta t = 1.0 /. float_of_int t.grid_points

let g_steps t = t.grid_points / t.n_phases

let phase_of_bin t i =
  if i < 0 || i >= t.grid_points then invalid_arg "Config.phase_of_bin: bin out of range";
  float_of_int (i - (t.grid_points / 2)) *. delta t

let bin_of_phase t phi =
  if phi < -0.5 || phi >= 0.5 then invalid_arg "Config.bin_of_phase: phase outside [-1/2, 1/2)";
  let i = int_of_float (Float.round (phi /. delta t)) + (t.grid_points / 2) in
  max 0 (min (t.grid_points - 1) i)

let nw_pmf t =
  if t.sigma_w = 0.0 then (Prob.Pmf.point 0, 1)
  else begin
    let n_sigmas = 6.0 in
    (* choose the lattice scale so that 2 * ceil(n_sigmas*sigma/step) + 1 <=
       nw_max_atoms, i.e. step >= 2*n_sigmas*sigma/(nw_max_atoms - 1) *)
    let d = delta t in
    let max_half = (t.nw_max_atoms - 1) / 2 in
    let scale =
      max 1 (int_of_float (ceil (n_sigmas *. t.sigma_w /. (float_of_int max_half *. d))))
    in
    let step = float_of_int scale *. d in
    (Prob.Gaussian.discretize ~sigma:t.sigma_w ~step ~n_sigmas (), scale)
  end

let max_nr t =
  let lo = abs (Prob.Pmf.min_support t.nr) and hi = abs (Prob.Pmf.max_support t.nr) in
  float_of_int (max lo hi) *. delta t

let pp ppf t =
  Format.fprintf ppf
    "@[<v>grid_points=%d (delta=%.5f UI)@,n_phases=%d (G=%.5f UI)@,counter_length=%d@,\
     sigma_w=%.5g UI@,max_nr=%.5g UI (mean %.5g bins)@,p01=%.3g p10=%.3g max_run=%d@]"
    t.grid_points (delta t) t.n_phases
    (1.0 /. float_of_int t.n_phases)
    t.counter_length t.sigma_w (max_nr t) (Prob.Pmf.mean t.nr) t.p01 t.p10 t.max_run

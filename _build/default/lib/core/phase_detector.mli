(** Bang-bang (sign) phase detector.

    The memoryless nonlinearity of the paper's equation (1): when the data
    has a transition, output the sign of [Phi + n_w]; with no transition the
    detector cannot observe phase and outputs NULL. The detector is
    implemented at full data rate, hence the trivial one-state machine. *)

type output = Null | Lead | Lag

val output_to_int : output -> int

val output_of_int : int -> output

val n_outputs : int

val decide : ?dead_zone:int -> phase_bins:int -> nw_bins:int -> bool -> output
(** [decide ~phase_bins ~nw_bins transition]: [phase_bins] is the phase
    error and [nw_bins] the jitter sample, both as signed counts of the
    *same* lattice unit; returns [Lead] when their sum exceeds [dead_zone]
    (default [0]), [Lag] when below [-dead_zone], and [Null] inside the dead
    zone (which for the default is just the sign function's zero) or when no
    transition occurred. *)

val component : Config.t -> Fsm.Component.t
(** Ports: 0 = transition flag (card 2), 1 = shifted [n_w] symbol, 2 = the
    phase-error component's current state (registered feedback, card
    [grid_points]). *)

val nw_source : Config.t -> Fsm.Network.source * int * int
(** [(source, shift, scale)]: the discretized [n_w] with labels shifted by
    [+shift] into [0 ..] for the network symbol space; physical offset of
    symbol [s] is [(s - shift) * scale * delta]. *)

val lead_probability : Config.t -> phase_bin:int -> float
(** [P(Phi + n_w > 0)] for a given phase bin under the *discretized* [n_w] —
    the exact quantity the composed chain uses; tests compare it against the
    analytic Gaussian value. *)

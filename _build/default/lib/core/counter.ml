type command = Hold | Advance | Retard

let command_to_int = function Hold -> 0 | Advance -> 1 | Retard -> 2

let command_of_int = function
  | 0 -> Hold
  | 1 -> Advance
  | 2 -> Retard
  | n -> invalid_arg (Printf.sprintf "Counter.command_of_int: %d" n)

let n_commands = 3

let n_states cfg = (2 * cfg.Config.counter_length) - 1

let encode cfg v =
  let k = cfg.Config.counter_length in
  if v <= -k || v >= k then invalid_arg "Counter.encode: count out of range";
  v + k - 1

let decode cfg code =
  let k = cfg.Config.counter_length in
  if code < 0 || code >= n_states cfg then invalid_arg "Counter.decode: out of range";
  code - k + 1

let component cfg =
  let k = cfg.Config.counter_length in
  let step code inputs =
    let v = decode cfg code in
    match Phase_detector.output_of_int inputs.(0) with
    | Phase_detector.Null -> (code, command_to_int Hold)
    | Phase_detector.Lead ->
        if v + 1 >= k then (encode cfg 0, command_to_int Retard)
        else (encode cfg (v + 1), command_to_int Hold)
    | Phase_detector.Lag ->
        if v - 1 <= -k then (encode cfg 0, command_to_int Advance)
        else (encode cfg (v - 1), command_to_int Hold)
  in
  Fsm.Component.create ~name:"counter" ~n_states:(n_states cfg)
    ~input_cards:[| Phase_detector.n_outputs |] ~n_outputs:n_commands ~step
    ~state_name:(fun code -> string_of_int (decode cfg code))
    ~output_name:(fun o ->
      match command_of_int o with Hold -> "HOLD" | Advance -> "ADVANCE" | Retard -> "RETARD")
    ()

(** Lock acquisition: how long the loop takes to pull the phase error into
    the locked region after power-up or a lost-lock event.

    A mean-first-passage computation on the composed chain: from each initial
    phase offset, the expected number of bit intervals until the phase error
    first enters the band [|Phi| <= lock_band] (with the counter and data
    statistics starting anywhere — the reported figure takes the worst and
    average case over those coordinates). *)

type t = {
  lock_band_ui : float;
  mean_from_worst_phase : float; (* worst initial phase, averaged over FSM coords *)
  mean_from_half_ui : float; (* starting at the eye edge, Phi = -1/2 *)
  per_phase_bin : (float * float) array; (* (phase, mean acquisition time) *)
}

val analyze : ?lock_band_ui:float -> ?tol:float -> Model.t -> t
(** Default [lock_band_ui] is one selector step [G]. *)

val pp : Format.formatter -> t -> unit

(** Recovered-clock jitter statistics.

    Systems specifications constrain not only the BER but also the jitter of
    the recovered clock — in this model the selected clock phase is off the
    data eye center by exactly the phase error, so recovered-clock jitter
    statistics are statistics of the stationary [Phi] process: rms and
    peak-to-peak values from the marginal, and the jitter spectrum's shape
    through the autocorrelation of [Phi] (computable once the stationary
    vector is known, as the paper notes). *)

type t = {
  mean_ui : float; (* static phase offset of the loop *)
  rms_ui : float; (* rms jitter about the mean, in unit intervals *)
  peak_to_peak_ui : float; (* support width of the stationary density *)
  autocorrelation : float array; (* normalized, lags 0 .. requested *)
  correlation_time : float;
      (* smallest lag where the autocorrelation falls below 1/e; +inf if it
         never does within the computed window *)
}

val analyze : ?lags:int -> Model.t -> pi:Linalg.Vec.t -> t
(** Default [lags = 64]. The phase is unwrapped to the representative in
    [[-1/2, 1/2)] (no slip correction: at realistic slip rates the wrapped
    and unwrapped moments agree to far beyond double precision). *)

val spectrum : ?lags:int -> Model.t -> pi:Linalg.Vec.t -> (float * float) array
(** One-sided jitter power spectral density by the Wiener-Khinchin theorem:
    the DFT of the stationary phase-error autocovariance (computed to [lags],
    default 256, then symmetrically extended and Hann-windowed against
    truncation leakage). Returns [(frequency, psd)] pairs with frequency in
    cycles per bit interval, [0 .. 1/2]; the psd integrates (over [-1/2,1/2],
    i.e. twice the one-sided sum x bin width) back to the phase variance. *)

val pp : Format.formatter -> t -> unit

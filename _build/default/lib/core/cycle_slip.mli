(** Cycle slips: the phase error wrapping around [+-1/2] — the recovered
    clock slipping a full bit with respect to the data, the synchronization
    failure whose mean recurrence time the paper computes.

    Two independent estimates:
    - {!rate}: stationary probability flux across the wrap boundary
      (slips per bit interval); its inverse is the mean time between slips
      in steady state;
    - {!mean_first_slip_time}: expected number of bit intervals until the
      first slip starting from the locked state, via a first-passage
      computation on the chain with the boundary-crossing transitions
      redirected to an absorbing state. *)

val rate : Model.t -> pi:Linalg.Vec.t -> float

val mean_time_between : Model.t -> pi:Linalg.Vec.t -> float
(** [1 / rate]; [infinity] when no slip transition carries mass. *)

val mean_first_slip_time : ?tol:float -> Model.t -> float
(** From the canonical initial state (counter 0, phase 0). *)

(** Jitter tolerance: the largest input jitter the loop absorbs while still
    meeting a BER target — the receiver characterization that jitter
    specifications (e.g. the SONET jitter-tolerance mask) are written
    against.

    For a given jitter-amplitude family (sinusoidal-equivalent or bounded
    drift), the tolerance is found by bisection on the amplitude, each probe
    being a full stationary analysis. This is exactly the "evaluation of a
    number of alternatives in a short time" workflow the paper motivates:
    every probe replaces weeks of (infeasible) transient simulation. *)

type family =
  | Sinusoidal  (** sinusoidal-equivalent amplitude distribution in [n_r] *)
  | Wander of float
      (** zero-mean bounded wander; the float in (0, 1] is the fraction of
          the profile's largest representable rms at each amplitude *)

type point = {
  amplitude_bins : int;
  ber : float;
}

type result = {
  ber_target : float;
  tolerance_bins : int; (* largest amplitude meeting the target; 0 if none *)
  tolerance_ui : float;
  probes : point list; (* all evaluated amplitudes, ascending *)
}

val analyze :
  ?family:family -> ?max_amplitude_bins:int -> ber_target:float -> Config.t -> result
(** Bisection over integer amplitudes in [[1, max_amplitude_bins]] (default:
    a quarter of the grid). The config's own [nr] is replaced by the family
    under test. Raises [Invalid_argument] for a non-positive target. *)

val pp : Format.formatter -> result -> unit

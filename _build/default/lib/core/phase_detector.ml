type output = Null | Lead | Lag

let output_to_int = function Null -> 0 | Lead -> 1 | Lag -> 2

let output_of_int = function
  | 0 -> Null
  | 1 -> Lead
  | 2 -> Lag
  | n -> invalid_arg (Printf.sprintf "Phase_detector.output_of_int: %d" n)

let n_outputs = 3

let decide ?(dead_zone = 0) ~phase_bins ~nw_bins transition =
  if not transition then Null
  else
    let s = phase_bins + nw_bins in
    if s > dead_zone then Lead else if s < -dead_zone then Lag else Null

let nw_source cfg =
  let pmf, scale = Config.nw_pmf cfg in
  let shift = -Prob.Pmf.min_support pmf in
  let shifted = Prob.Pmf.map_labels (fun k -> k + shift) pmf in
  ({ Fsm.Network.source_name = "n_w"; pmf = shifted }, shift, scale)

let component cfg =
  let m = cfg.Config.grid_points in
  let _, shift, scale = nw_source cfg in
  let nw_card = shift + 1 + shift in
  (* symbols 0 .. 2*shift; symmetric support of the discretized Gaussian *)
  let half = m / 2 in
  let dead_zone = cfg.Config.detector_dead_zone in
  let step _state inputs =
    let transition = inputs.(0) = Data_source.output_transition in
    let nw_bins = (inputs.(1) - shift) * scale in
    let phase_bins = inputs.(2) - half in
    (0, output_to_int (decide ~dead_zone ~phase_bins ~nw_bins transition))
  in
  Fsm.Component.create ~name:"phase-detector" ~n_states:1 ~input_cards:[| 2; max 1 nw_card; m |]
    ~n_outputs ~step
    ~output_name:(fun o -> match output_of_int o with Null -> "NULL" | Lead -> "LEAD" | Lag -> "LAG")
    ()

let lead_probability cfg ~phase_bin =
  let m = cfg.Config.grid_points in
  if phase_bin < 0 || phase_bin >= m then invalid_arg "Phase_detector.lead_probability: bin";
  let pmf, scale = Config.nw_pmf cfg in
  let phase_bins = phase_bin - (m / 2) in
  let dead_zone = cfg.Config.detector_dead_zone in
  Prob.Pmf.fold pmf ~init:0.0 ~f:(fun acc k w ->
      if phase_bins + (k * scale) > dead_zone then acc +. w else acc)

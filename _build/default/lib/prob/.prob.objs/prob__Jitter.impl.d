lib/prob/jitter.ml: Array Float Pmf

lib/prob/gaussian.mli: Pmf

lib/prob/pmf.ml: Array Float Format Hashtbl List Option Printf

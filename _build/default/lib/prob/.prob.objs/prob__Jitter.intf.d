lib/prob/jitter.mli: Pmf

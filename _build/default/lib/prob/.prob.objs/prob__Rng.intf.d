lib/prob/rng.mli: Pmf

lib/prob/rng.ml: Float Int64 Pmf

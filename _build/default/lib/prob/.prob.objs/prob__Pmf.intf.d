lib/prob/pmf.mli: Format

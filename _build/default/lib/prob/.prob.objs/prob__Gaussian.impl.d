lib/prob/gaussian.ml: Float Pmf

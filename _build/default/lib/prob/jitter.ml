type white = { sigma : float }

let eye_opening ~sigma =
  if sigma < 0.0 || not (Float.is_finite sigma) then
    invalid_arg "Jitter.eye_opening: sigma must be finite and non-negative";
  { sigma }

(* Find a two-parameter family with the requested mean: mass [1 - a] at 0 and
   a tail of total mass [a] over [1..max] with the given profile; [a] is
   solved from the mean. *)
let drift ~max_steps ~mean_steps ?(shape = `Peaked) () =
  if max_steps < 0 then invalid_arg "Jitter.drift: negative max_steps";
  if mean_steps < 0.0 || mean_steps > float_of_int max_steps then
    invalid_arg "Jitter.drift: mean_steps out of [0, max_steps]";
  if max_steps = 0 || mean_steps = 0.0 then Pmf.point 0
  else begin
    let profile k =
      match shape with
      | `Peaked -> 1.0 /. (float_of_int k *. float_of_int k)
      | `Uniform -> 1.0
      | `Ramp -> float_of_int (max_steps + 1 - k)
    in
    let weights = Array.init max_steps (fun i -> profile (i + 1)) in
    let mass = Array.fold_left ( +. ) 0.0 weights in
    let first_moment = ref 0.0 in
    Array.iteri (fun i w -> first_moment := !first_moment +. (float_of_int (i + 1) *. w)) weights;
    (* tail scaled to a total a gives mean a * first_moment / mass *)
    let a = mean_steps *. mass /. !first_moment in
    if a > 1.0 then
      invalid_arg "Jitter.drift: mean_steps too large for this shape (tail mass would exceed 1)";
    let entries = ref [ (0, 1.0 -. a) ] in
    Array.iteri (fun i w -> entries := (i + 1, a *. w /. mass) :: !entries) weights;
    Pmf.create !entries
  end

let max_wander_rms ~max_steps =
  if max_steps <= 0 then invalid_arg "Jitter.max_wander_rms: max_steps must be positive";
  let second = ref 0.0 and mass = ref 0.0 in
  for k = 1 to max_steps do
    let w = float_of_int (max_steps - k + 1) in
    second := !second +. (2.0 *. w *. float_of_int (k * k));
    mass := !mass +. (2.0 *. w)
  done;
  sqrt (!second /. !mass)

let symmetric_wander ~max_steps ~rms_steps =
  if max_steps <= 0 then invalid_arg "Jitter.symmetric_wander: max_steps must be positive";
  if rms_steps < 0.0 || rms_steps > float_of_int max_steps then
    invalid_arg "Jitter.symmetric_wander: rms out of range";
  if rms_steps = 0.0 then Pmf.point 0
  else begin
    (* mass a split evenly over +-k for k = 1..max with triangular decay,
       scaled so the second moment matches rms^2 *)
    let weights = Array.init max_steps (fun i -> float_of_int (max_steps - i)) in
    let second_moment = ref 0.0 and mass = ref 0.0 in
    Array.iteri
      (fun i w ->
        let k = float_of_int (i + 1) in
        second_moment := !second_moment +. (2.0 *. w *. k *. k);
        mass := !mass +. (2.0 *. w))
      weights;
    let a = rms_steps *. rms_steps *. !mass /. !second_moment in
    if a > 1.0 then invalid_arg "Jitter.symmetric_wander: rms too large for this support";
    let entries = ref [ (0, 1.0 -. a) ] in
    Array.iteri
      (fun i w ->
        let p = a *. w /. !mass in
        entries := (i + 1, p) :: (-(i + 1), p) :: !entries)
      weights;
    Pmf.create !entries
  end

let sinusoidal_equivalent ~amplitude_steps =
  if amplitude_steps <= 0 then invalid_arg "Jitter.sinusoidal_equivalent: non-positive amplitude";
  let amp = float_of_int amplitude_steps in
  (* P(X in [lo, hi]) for X = amp * sin(U), U uniform: arcsine law *)
  let cdf x =
    let x = Float.max (-.amp) (Float.min amp x) in
    (asin (x /. amp) /. Float.pi) +. 0.5
  in
  let entries = ref [] in
  for k = -amplitude_steps to amplitude_steps do
    let lo = float_of_int k -. 0.5 and hi = float_of_int k +. 0.5 in
    let p = cdf hi -. cdf lo in
    if p > 0.0 then entries := (k, p) :: !entries
  done;
  Pmf.create !entries

(** Deterministic pseudo-random number generation for the Monte-Carlo
    baseline: xoshiro256++ seeded through splitmix64, Box–Muller Gaussian
    variates, and categorical sampling from {!Pmf.t}.

    Self-contained so that simulation results are reproducible across OCaml
    versions (the stdlib [Random] algorithm is not pinned). *)

type t

val create : seed:int64 -> t

val split : t -> t
(** An independent stream derived from (and advancing) the parent. *)

val bits64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> bound:int -> int
(** Uniform in [0, bound). Raises [Invalid_argument] if [bound <= 0]. *)

val bool : t -> bool

val gaussian : t -> mean:float -> sigma:float -> float

val pmf : t -> Pmf.t -> int
(** Sample a label with the pmf's probabilities (inverse-cdf walk). *)

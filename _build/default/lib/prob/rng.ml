type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable cached_gaussian : float option; (* Box-Muller produces pairs *)
}

(* splitmix64: expands one 64-bit seed into well-distributed state words *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = None }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)

let float t =
  (* top 53 bits -> [0,1) *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free for our purposes: modulo bias negligible for bound << 2^64,
     but use rejection anyway for exactness *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.logand (bits64 t) Int64.max_int in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mean ~sigma =
  match t.cached_gaussian with
  | Some z ->
      t.cached_gaussian <- None;
      mean +. (sigma *. z)
  | None ->
      let rec draw_u () =
        let u = float t in
        if u > 0.0 then u else draw_u ()
      in
      let u1 = draw_u () and u2 = float t in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.cached_gaussian <- Some (r *. sin theta);
      mean +. (sigma *. r *. cos theta)

let pmf t d =
  let u = float t in
  let acc = ref 0.0 in
  let chosen = ref None in
  Pmf.iter d (fun label w ->
      if !chosen = None then begin
        acc := !acc +. w;
        if u < !acc then chosen := Some label
      end);
  (* rounding can leave u just above the accumulated total; fall back to the
     last atom *)
  match !chosen with Some label -> label | None -> Pmf.max_support d

(* erfc via the two classic regimes:
   - |x| <= 2.0 : Taylor/Maclaurin series of erf (fast converging there);
   - |x| >  2.0 : Lentz-evaluated continued fraction for erfc, which stays
     accurate in the deep tail where the series cancels catastrophically. *)

let sqrt_pi = 1.7724538509055160273

let erf_series x =
  (* erf(x) = 2/sqrt(pi) * exp(-x^2) * sum_{n>=0} 2^n x^(2n+1) / (1*3*...*(2n+1)) *)
  let x2 = x *. x in
  let rec loop n term acc =
    if abs_float term < 1e-18 *. abs_float acc || n > 200 then acc
    else
      let term = term *. 2.0 *. x2 /. float_of_int ((2 * n) + 1) in
      loop (n + 1) term (acc +. term)
  in
  let first = x in
  2.0 /. sqrt_pi *. exp (-.x2) *. loop 1 first first

let erfc_cf x =
  (* erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...)))) for x > 0,
     evaluated with the modified Lentz algorithm. *)
  let tiny = 1e-300 in
  let b0 = x in
  let f = ref (if b0 = 0.0 then tiny else b0) in
  let c = ref !f and d = ref 0.0 in
  let continue_ = ref true in
  let n = ref 1 in
  while !continue_ && !n < 500 do
    let a = float_of_int !n /. 2.0 in
    let b = x in
    d := b +. (a *. !d);
    if !d = 0.0 then d := tiny;
    c := b +. (a /. !c);
    if !c = 0.0 then c := tiny;
    d := 1.0 /. !d;
    let delta = !c *. !d in
    f := !f *. delta;
    if abs_float (delta -. 1.0) < 1e-17 then continue_ := false;
    incr n
  done;
  exp (-.(x *. x)) /. sqrt_pi /. !f

let erfc x =
  if Float.is_nan x then Float.nan
  else if x > 27.0 then 0.0 (* below the smallest positive double anyway at ~27.2 *)
  else if x < -6.0 then 2.0
  else if x >= 2.0 then erfc_cf x
  else if x <= -2.0 then 2.0 -. erfc_cf (-.x)
  else 1.0 -. erf_series x

let erf x = if abs_float x < 2.0 then erf_series x else 1.0 -. erfc x

let sqrt2 = 1.4142135623730950488

let pdf ~mean ~sigma x =
  if sigma <= 0.0 then invalid_arg "Gaussian.pdf: sigma must be positive";
  let z = (x -. mean) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt2 *. sqrt_pi)

let cdf ~mean ~sigma x =
  if sigma <= 0.0 then invalid_arg "Gaussian.cdf: sigma must be positive";
  0.5 *. erfc (-.(x -. mean) /. (sigma *. sqrt2))

let q x = 0.5 *. erfc (x /. sqrt2)

let tail_beyond ~sigma x =
  if x < 0.0 then invalid_arg "Gaussian.tail_beyond: negative threshold";
  if sigma <= 0.0 then if x > 0.0 then 0.0 else 1.0 else 2.0 *. q (x /. sigma)

let discretize ~sigma ~step ?(n_sigmas = 6.0) () =
  if step <= 0.0 then invalid_arg "Gaussian.discretize: step must be positive";
  if sigma < 0.0 then invalid_arg "Gaussian.discretize: negative sigma";
  if sigma = 0.0 then Pmf.point 0
  else begin
    let kmax = max 1 (int_of_float (ceil (n_sigmas *. sigma /. step))) in
    let mass k =
      let lo = (float_of_int k -. 0.5) *. step and hi = (float_of_int k +. 0.5) *. step in
      cdf ~mean:0.0 ~sigma hi -. cdf ~mean:0.0 ~sigma lo
    in
    let entries = ref [] in
    for k = -kmax to kmax do
      entries := (k, mass k) :: !entries
    done;
    Pmf.create !entries
  end

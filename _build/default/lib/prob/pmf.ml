type t = { atoms : (int * float) array }

let create entries =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (label, w) ->
      if w < 0.0 || not (Float.is_finite w) then
        invalid_arg (Printf.sprintf "Pmf.create: invalid weight %g for label %d" w label);
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl label) in
      Hashtbl.replace tbl label (prev +. w))
    entries;
  let pairs = Hashtbl.fold (fun label w acc -> if w > 0.0 then (label, w) :: acc else acc) tbl [] in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Pmf.create: total weight is zero";
  let atoms = Array.of_list (List.map (fun (label, w) -> (label, w /. total)) pairs) in
  Array.sort (fun (a, _) (b, _) -> compare a b) atoms;
  { atoms }

let point label = { atoms = [| (label, 1.0) |] }

let uniform labels =
  if labels = [] then invalid_arg "Pmf.uniform: empty support";
  create (List.map (fun label -> (label, 1.0)) labels)

let bernoulli ~p a b =
  if p < 0.0 || p > 1.0 then invalid_arg "Pmf.bernoulli: p out of [0,1]";
  if a = b then point a else create [ (a, p); (b, 1.0 -. p) ]

let support t = Array.map fst t.atoms

let prob t label =
  let n = Array.length t.atoms in
  let rec search lo hi =
    if lo > hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      let l, w = t.atoms.(mid) in
      if l = label then w else if l < label then search (mid + 1) hi else search lo (mid - 1)
  in
  search 0 (n - 1)

let cardinal t = Array.length t.atoms

let iter t f = Array.iter (fun (label, w) -> f label w) t.atoms

let fold t ~init ~f = Array.fold_left (fun acc (label, w) -> f acc label w) init t.atoms

let mean t = fold t ~init:0.0 ~f:(fun acc label w -> acc +. (float_of_int label *. w))

let variance t =
  let m = mean t in
  fold t ~init:0.0 ~f:(fun acc label w ->
      let d = float_of_int label -. m in
      acc +. (w *. d *. d))

let min_support t = fst t.atoms.(0)

let max_support t = fst t.atoms.(Array.length t.atoms - 1)

let map_labels f t = create (Array.to_list (Array.map (fun (label, w) -> (f label, w)) t.atoms))

let convolve a b =
  let entries = ref [] in
  iter a (fun la wa -> iter b (fun lb wb -> entries := (la + lb, wa *. wb) :: !entries));
  create !entries

let cdf_le t x = fold t ~init:0.0 ~f:(fun acc label w -> if label <= x then acc +. w else acc)

let prob_gt t x = fold t ~init:0.0 ~f:(fun acc label w -> if label > x then acc +. w else acc)

let total_variation a b =
  let labels = Hashtbl.create 16 in
  iter a (fun label _ -> Hashtbl.replace labels label ());
  iter b (fun label _ -> Hashtbl.replace labels label ());
  let acc = ref 0.0 in
  Hashtbl.iter (fun label () -> acc := !acc +. abs_float (prob a label -. prob b label)) labels;
  0.5 *. !acc

let equal ?(tol = 0.0) a b = total_variation a b <= tol

let pp ppf t =
  Format.fprintf ppf "@[<h>{";
  iter t (fun label w -> Format.fprintf ppf " %d:%.4g" label w);
  Format.fprintf ppf " }@]"

(** Jitter amplitude distributions of the paper, on the phase grid.

    The paper models all incoming-data jitter with two white processes:

    - [n_w]: zero-mean Gaussian "eye opening" jitter, uncorrelated bit to
      bit — never stored in the Markov state, it is integrated out into
      phase-detector decision probabilities and the BER tail integral;
    - [n_r]: bounded, non-zero-mean, non-Gaussian drift whose random part
      accumulates on the phase error (frequency offset / wander / a
      sinusoidal-jitter equivalent). [n_r] lives on the phase grid, which is
      why the grid must resolve its small steps.

    Grid convention: labels are offsets in units of the grid step [delta];
    the physical amplitude of label [k] is [k * delta]. *)

type white = { sigma : float }
(** Specification of [n_w]: the standard deviation in unit-interval units. *)

val eye_opening : sigma:float -> white
(** Raises [Invalid_argument] on negative [sigma]. *)

val drift :
  max_steps:int -> mean_steps:float -> ?shape:[ `Peaked | `Uniform | `Ramp ] -> unit -> Pmf.t
(** [drift ~max_steps ~mean_steps ()] builds an [n_r] pmf supported on
    [0..max_steps] grid offsets with the requested mean. [`Peaked] (default)
    concentrates mass at 0 with a thin positive tail, the SONET-flavoured
    shape of the paper's examples; [`Uniform] spreads the positive mass
    evenly; [`Ramp] makes it linearly decaying. Raises [Invalid_argument]
    when the mean is not representable ([0 <= mean_steps <= max_steps]). *)

val max_wander_rms : max_steps:int -> float
(** Largest rms (in steps) representable by {!symmetric_wander}'s triangular
    profile at the given support bound. *)

val symmetric_wander : max_steps:int -> rms_steps:float -> Pmf.t
(** Zero-mean bounded random-walk increment (cumulative jitter): a discrete
    triangular-ish pmf on [-max_steps..max_steps] with the requested rms. *)

val sinusoidal_equivalent : amplitude_steps:int -> Pmf.t
(** Amplitude distribution of a sampled sinusoid of the given peak amplitude:
    the arcsine law discretized on [-amplitude_steps..amplitude_steps]. The
    paper notes deterministic sinusoidal jitter can be mimicked by assigning
    [n_r]'s amplitude distribution appropriately. *)

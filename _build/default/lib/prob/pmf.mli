(** Finite discrete probability mass functions over integer-indexed atoms.

    Atoms carry an integer label (e.g. a grid offset in units of the phase
    discretization step, or an FSM input symbol) and a probability. All
    constructors normalize and validate; probabilities are strictly positive
    in the stored support. *)

type t = private { atoms : (int * float) array (* sorted by label, probs > 0, sum 1 *) }

val create : (int * float) list -> t
(** Merges duplicate labels, drops zero-probability atoms, normalizes.
    Raises [Invalid_argument] on negative weights or an all-zero list. *)

val point : int -> t
(** Deterministic value. *)

val uniform : int list -> t

val bernoulli : p:float -> int -> int -> t
(** [bernoulli ~p a b] takes value [a] with probability [p], else [b]. *)

val support : t -> int array

val prob : t -> int -> float
(** Probability of a label ([0.] if absent). *)

val cardinal : t -> int

val iter : t -> (int -> float -> unit) -> unit

val fold : t -> init:'a -> f:('a -> int -> float -> 'a) -> 'a

val mean : t -> float

val variance : t -> float

val min_support : t -> int

val max_support : t -> int

val map_labels : (int -> int) -> t -> t
(** Pushforward; colliding labels are merged. *)

val convolve : t -> t -> t
(** Distribution of the sum of independent draws. *)

val cdf_le : t -> int -> float
(** [cdf_le p x] is [P(X <= x)]. *)

val prob_gt : t -> int -> float

val total_variation : t -> t -> float

val equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Gaussian distribution utilities built on a hand-rolled [erfc].

    The zero-mean white noise [n_w] of the paper (data eye-opening jitter)
    is Gaussian; its tails give the bit-error probability and its
    discretization feeds the FSM composition. *)

val erf : float -> float

val erfc : float -> float
(** Complementary error function, accurate to ~1e-15 over the full range
    (series near 0, continued fraction in the tails), so that BERs down to
    1e-300 are representable. *)

val pdf : mean:float -> sigma:float -> float -> float

val cdf : mean:float -> sigma:float -> float -> float

val q : float -> float
(** Standard normal tail [Q(x) = P(N(0,1) > x)]. *)

val tail_beyond : sigma:float -> float -> float
(** [tail_beyond ~sigma x] is [P(|N(0,sigma^2)| > x)] for [x >= 0]. *)

val discretize : sigma:float -> step:float -> ?n_sigmas:float -> unit -> Pmf.t
(** Discretize [N(0, sigma^2)] on the lattice [{k * step}]: atom [k] receives
    the probability mass of the interval [((k-1/2)*step, (k+1/2)*step)],
    truncated at [n_sigmas] (default 6) standard deviations and renormalized.
    [sigma = 0.] yields the point mass at [0]. *)

lib/pdd/mtbdd.ml: Array Hashtbl Int64 Linalg Sparse

lib/pdd/mtbdd.mli: Linalg Sparse

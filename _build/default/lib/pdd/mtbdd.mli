(** Multi-terminal binary decision diagrams over probabilities.

    The paper's outlook cites Bozga–Maler ("On the Representation of
    Probabilities over Structured Domains", CAV'99): represent the huge
    transition probability matrices symbolically, as decision diagrams, so
    that structure (products of components, repeated blocks) is shared
    instead of enumerated. This module implements the core machinery:

    - hash-consed MTBDD nodes with float terminals;
    - pointwise {!apply} with memoization;
    - square matrices of dimension [2^k] encoded over interleaved
      row/column bit variables (row bit [i] = variable [2i], column bit
      [i] = variable [2i+1]), vectors over the row variables;
    - symbolic Kronecker product — a product chain's TPM costs the *sum*,
      not the product, of its factors' node counts;
    - matrix–vector products and power iteration performed directly on the
      diagrams.

    All diagrams live in an explicit {!manager} (the hash-consing arena);
    mixing diagrams from different managers raises. *)

type manager

type t
(** An MTBDD rooted in some manager. *)

val manager : unit -> manager

val terminal : manager -> float -> t

val value : t -> float option
(** [Some v] when the diagram is a single terminal. *)

val node_count : t -> int
(** Distinct reachable nodes (terminals included) — the compression
    metric. *)

val apply : manager -> (float -> float -> float) -> t -> t -> t
(** Pointwise combination; memoized per call. The operator is applied to
    terminal pairs. *)

val scale : manager -> float -> t -> t

val add : manager -> t -> t -> t

(* ----- vectors (over row variables) ----- *)

val vector_of_array : manager -> Linalg.Vec.t -> t
(** Length must be a power of two. *)

val vector_to_array : manager -> t -> levels:int -> Linalg.Vec.t

val vector_sum : manager -> t -> levels:int -> float

(* ----- matrices (over interleaved row/column variables) ----- *)

val matrix_of_dense : manager -> Linalg.Mat.t -> t
(** Square, power-of-two dimension. *)

val matrix_of_csr : manager -> Sparse.Csr.t -> t

val matrix_to_dense : manager -> t -> levels:int -> Linalg.Mat.t

val kron : manager -> levels_a:int -> t -> t -> t
(** [kron mgr ~levels_a a b]: symbolic Kronecker product; [a] uses bit
    levels [0 .. levels_a - 1], [b]'s variables are shifted behind them. *)

val mat_vec_mul : manager -> vec:t -> mat:t -> levels:int -> t
(** [x * M] (row vector times matrix), result again over row variables. *)

val stationary :
  manager -> t -> levels:int -> ?tol:float -> ?max_iter:int -> unit -> (Linalg.Vec.t * int, string) result
(** Power iteration entirely on diagrams; the result is expanded to a dense
    vector at the end. [Error] when the matrix is not stochastic on its
    [2^levels] space or iteration fails to converge. *)

(* Hash-consed MTBDDs. Variable order: row bit i is variable 2i, column bit
   i is variable 2i+1, most significant bit first — the classic interleaved
   order that keeps matrix quadrant structure local. Reduced form: a node
   whose branches coincide is never constructed. *)

type t = { id : int; node : node; mgr_id : int }

and node = Terminal of float | Node of { var : int; low : t; high : t }

type manager = {
  mgr_id : int;
  mutable next_id : int;
  terminals : (int64, t) Hashtbl.t;
  nodes : (int * int * int, t) Hashtbl.t;
}

let mgr_counter = ref 0

let manager () =
  incr mgr_counter;
  { mgr_id = !mgr_counter; next_id = 0; terminals = Hashtbl.create 64; nodes = Hashtbl.create 256 }

let check_mgr (mgr : manager) (t : t) =
  if t.mgr_id <> mgr.mgr_id then invalid_arg "Mtbdd: diagram belongs to a different manager"

let terminal mgr v =
  let key = Int64.bits_of_float v in
  match Hashtbl.find_opt mgr.terminals key with
  | Some t -> t
  | None ->
      let t = { id = mgr.next_id; node = Terminal v; mgr_id = mgr.mgr_id } in
      mgr.next_id <- mgr.next_id + 1;
      Hashtbl.add mgr.terminals key t;
      t

let mk mgr var low high =
  if low.id = high.id then low
  else begin
    let key = (var, low.id, high.id) in
    match Hashtbl.find_opt mgr.nodes key with
    | Some t -> t
    | None ->
        let t = { id = mgr.next_id; node = Node { var; low; high }; mgr_id = mgr.mgr_id } in
        mgr.next_id <- mgr.next_id + 1;
        Hashtbl.add mgr.nodes key t;
        t
  end

let value t = match t.node with Terminal v -> Some v | Node _ -> None

let node_count t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      match t.node with
      | Terminal _ -> ()
      | Node { low; high; _ } ->
          go low;
          go high
    end
  in
  go t;
  Hashtbl.length seen

(* cofactors with respect to variable [var], handling skipped levels *)
let cofactors t var =
  match t.node with
  | Node { var = v; low; high } when v = var -> (low, high)
  | Terminal _ | Node _ -> (t, t)

let top_var t = match t.node with Terminal _ -> max_int | Node { var; _ } -> var

let apply mgr op a b =
  check_mgr mgr a;
  check_mgr mgr b;
  let cache = Hashtbl.create 256 in
  let rec go (a : t) (b : t) =
    match Hashtbl.find_opt cache (a.id, b.id) with
    | Some r -> r
    | None ->
        let r =
          match (a.node, b.node) with
          | Terminal x, Terminal y -> terminal mgr (op x y)
          | _ ->
              let var = min (top_var a) (top_var b) in
              let a0, a1 = cofactors a var in
              let b0, b1 = cofactors b var in
              mk mgr var (go a0 b0) (go a1 b1)
        in
        Hashtbl.add cache (a.id, b.id) r;
        r
  in
  go a b

let scale mgr s t =
  check_mgr mgr t;
  let cache = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt cache t.id with
    | Some r -> r
    | None ->
        let r =
          match t.node with
          | Terminal v -> terminal mgr (s *. v)
          | Node { var; low; high } -> mk mgr var (go low) (go high)
        in
        Hashtbl.add cache t.id r;
        r
  in
  go t

let add mgr a b = apply mgr ( +. ) a b

(* ----- vectors ----- *)

let levels_for_length n =
  if n <= 0 then invalid_arg "Mtbdd: empty vector";
  let rec go levels size = if size >= n then levels else go (levels + 1) (size * 2) in
  let levels = go 0 1 in
  if 1 lsl levels <> n then invalid_arg "Mtbdd: length must be a power of two";
  levels

let vector_of_array mgr x =
  let n = Array.length x in
  let levels = levels_for_length n in
  (* bottom-up over index ranges; row bit for level l is variable 2l,
     most-significant first *)
  let rec build level lo width =
    if level = levels then terminal mgr x.(lo)
    else
      let half = width / 2 in
      mk mgr (2 * level) (build (level + 1) lo half) (build (level + 1) (lo + half) half)
  in
  build 0 0 n

let rec vector_get t levels index =
  match t.node with
  | Terminal v -> v
  | Node { var; low; high } ->
      (* var = 2l; levels skipped by reduction don't constrain the index *)
      let l = var / 2 in
      let bit = (index lsr (levels - 1 - l)) land 1 in
      vector_get (if bit = 1 then high else low) levels index

let vector_to_array mgr t ~levels =
  check_mgr mgr t;
  let n = 1 lsl levels in
  Array.init n (fun i -> vector_get t levels i)

let vector_sum mgr t ~levels =
  check_mgr mgr t;
  let cache = Hashtbl.create 64 in
  (* sum over the subspace below [level], accounting for skipped variables *)
  let rec go t level =
    match Hashtbl.find_opt cache (t.id, level) with
    | Some s -> s
    | None ->
        let s =
          match t.node with
          | Terminal v -> v *. float_of_int (1 lsl (levels - level))
          | Node { var; low; high } ->
              (* levels level .. l-1 are skipped (unconstrained): factor 2 each *)
              let l = var / 2 in
              float_of_int (1 lsl (l - level)) *. (go low (l + 1) +. go high (l + 1))
        in
        Hashtbl.add cache (t.id, level) s;
        s
  in
  go t 0

(* ----- matrices ----- *)

let matrix_of_get mgr get n =
  let levels = levels_for_length n in
  (* recursive quadrant split: at level l, first the row bit (var 2l) then
     the column bit (var 2l+1) *)
  let rec build level rlo clo width =
    if level = levels then terminal mgr (get rlo clo)
    else begin
      let half = width / 2 in
      let quadrant rbit cbit =
        build (level + 1) (rlo + (rbit * half)) (clo + (cbit * half)) half
      in
      let row0 = mk mgr ((2 * level) + 1) (quadrant 0 0) (quadrant 0 1) in
      let row1 = mk mgr ((2 * level) + 1) (quadrant 1 0) (quadrant 1 1) in
      mk mgr (2 * level) row0 row1
    end
  in
  build 0 0 0 n

let matrix_of_dense mgr m =
  if Linalg.Mat.rows m <> Linalg.Mat.cols m then invalid_arg "Mtbdd: matrix not square";
  matrix_of_get mgr (Linalg.Mat.get m) (Linalg.Mat.rows m)

let matrix_of_csr mgr m =
  if Sparse.Csr.rows m <> Sparse.Csr.cols m then invalid_arg "Mtbdd: matrix not square";
  matrix_of_get mgr (Sparse.Csr.get m) (Sparse.Csr.rows m)

let matrix_to_dense mgr t ~levels =
  check_mgr mgr t;
  let n = 1 lsl levels in
  let out = Linalg.Mat.create ~rows:n ~cols:n in
  (* walk by evaluating: variable 2l = row bit l, 2l+1 = col bit l *)
  let rec get t r c =
    match t.node with
    | Terminal v -> v
    | Node { var; low; high } ->
        let l = var / 2 in
        let bit =
          if var mod 2 = 0 then (r lsr (levels - 1 - l)) land 1 else (c lsr (levels - 1 - l)) land 1
        in
        get (if bit = 1 then high else low) r c
  in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      Linalg.Mat.set out r c (get t r c)
    done
  done;
  out

let shift_vars mgr offset t =
  let cache = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt cache t.id with
    | Some r -> r
    | None ->
        let r =
          match t.node with
          | Terminal _ -> t
          | Node { var; low; high } -> mk mgr (var + offset) (go low) (go high)
        in
        Hashtbl.add cache t.id r;
        r
  in
  go t

let kron mgr ~levels_a a b =
  check_mgr mgr a;
  check_mgr mgr b;
  let b_shifted = shift_vars mgr (2 * levels_a) b in
  (* replace each terminal of a with terminal * b_shifted *)
  let cache = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt cache t.id with
    | Some r -> r
    | None ->
        let r =
          match t.node with
          | Terminal v -> scale mgr v b_shifted
          | Node { var; low; high } -> mk mgr var (go low) (go high)
        in
        Hashtbl.add cache t.id r;
        r
  in
  go a

let mat_vec_mul mgr ~vec ~mat ~levels =
  check_mgr mgr vec;
  check_mgr mgr mat;
  let cache = Hashtbl.create 256 in
  (* y_c = sum_r v_r M(r, c); recursion over bit levels, result re-encoded on
     the row variables *)
  let rec go v m level =
    match Hashtbl.find_opt cache (v.id, m.id, level) with
    | Some r -> r
    | None ->
        let r =
          if level = levels then
            match (v.node, m.node) with
            | Terminal a, Terminal b -> terminal mgr (a *. b)
            | _ -> invalid_arg "Mtbdd.mat_vec_mul: diagram deeper than declared levels"
          else begin
            let v0, v1 = cofactors v (2 * level) in
            let m_r0, m_r1 = cofactors m (2 * level) in
            let m00, m01 = cofactors m_r0 ((2 * level) + 1) in
            let m10, m11 = cofactors m_r1 ((2 * level) + 1) in
            let low = add mgr (go v0 m00 (level + 1)) (go v1 m10 (level + 1)) in
            let high = add mgr (go v0 m01 (level + 1)) (go v1 m11 (level + 1)) in
            mk mgr (2 * level) low high
          end
        in
        Hashtbl.add cache (v.id, m.id, level) r;
        r
  in
  go vec mat 0

let stationary mgr mat ~levels ?(tol = 1e-12) ?(max_iter = 10_000) () =
  check_mgr mgr mat;
  let n = 1 lsl levels in
  (* stochasticity check through the all-ones vector: row sums are M 1^T;
     with our row-vector convention compute 1 * M^T... simpler: expand row
     sums by summing the product of the indicator vectors. Cheaper and
     sufficient: check that a uniform distribution keeps total mass 1. *)
  let uniform = terminal mgr (1.0 /. float_of_int n) in
  let probe = mat_vec_mul mgr ~vec:uniform ~mat ~levels in
  if abs_float (vector_sum mgr probe ~levels -. 1.0) > 1e-6 then
    Error "matrix does not preserve probability mass on the 2^levels space"
  else begin
    let x = ref uniform in
    let iterations = ref 0 in
    let converged = ref false in
    while (not !converged) && !iterations < max_iter do
      let y = mat_vec_mul mgr ~vec:!x ~mat ~levels in
      let mass = vector_sum mgr y ~levels in
      let y = if abs_float (mass -. 1.0) > 1e-15 then scale mgr (1.0 /. mass) y else y in
      incr iterations;
      let diff = apply mgr (fun a b -> abs_float (a -. b)) y !x in
      if vector_sum mgr diff ~levels <= tol then converged := true;
      x := y
    done;
    if !converged then Ok (vector_to_array mgr !x ~levels, !iterations)
    else Error "power iteration did not converge"
  end

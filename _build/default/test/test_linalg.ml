(* Unit and property tests for the dense linear-algebra substrate. *)

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ---------- Vec ---------- *)

let test_vec_create_dim () =
  let v = Linalg.Vec.create 5 in
  Alcotest.(check int) "dim" 5 (Linalg.Vec.dim v);
  Alcotest.(check bool) "zeros" true (Array.for_all (fun x -> x = 0.0) v)

let test_vec_scale_axpy () =
  let x = [| 1.0; 2.0; 3.0 |] in
  let y = [| 10.0; 20.0; 30.0 |] in
  let s = Linalg.Vec.scale 2.0 x in
  check_float "scale" 6.0 s.(2);
  Linalg.Vec.axpy ~alpha:(-1.0) ~x ~y;
  check_float "axpy" 9.0 y.(0);
  check_float "axpy keeps x" 1.0 x.(0)

let test_vec_dot () =
  check_float "dot" 32.0 (Linalg.Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |])

let test_vec_dot_mismatch () =
  Alcotest.check_raises "dimension mismatch" (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Linalg.Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_kahan_sum () =
  (* adding 1e-8 a hundred million times to 1.0: naive summation drifts,
     Kahan stays exact to ~1 ulp *)
  let n = 1_000_000 in
  let v = Array.make (n + 1) 1e-8 in
  v.(0) <- 1.0;
  check_float ~eps:1e-12 "compensated" (1.0 +. (float_of_int n *. 1e-8)) (Linalg.Vec.sum v)

let test_asum_nrm2 () =
  let v = [| 3.0; -4.0 |] in
  check_float "asum" 7.0 (Linalg.Vec.asum v);
  check_float "nrm2" 5.0 (Linalg.Vec.nrm2 v);
  check_float "norm_inf" 4.0 (Linalg.Vec.norm_inf v)

let test_nrm2_overflow_safe () =
  let v = [| 1e200; 1e200 |] in
  check_float ~eps:1e186 "no overflow" (1e200 *. sqrt 2.0) (Linalg.Vec.nrm2 v)

let test_normalize_l1 () =
  let v = [| 1.0; 3.0 |] in
  Linalg.Vec.normalize_l1 v;
  check_float "first" 0.25 v.(0);
  check_float "second" 0.75 v.(1);
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec.normalize_l1: zero or non-finite entry sum")
    (fun () -> Linalg.Vec.normalize_l1 [| 0.0; 0.0 |])

let test_dist_l1 () =
  check_float "dist" 3.0 (Linalg.Vec.dist_l1 [| 1.0; 2.0 |] [| 2.0; 0.0 |])

let test_max_index () =
  Alcotest.(check int) "max" 1 (Linalg.Vec.max_index [| 1.0; 5.0; 5.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Vec.max_index: empty vector") (fun () ->
      ignore (Linalg.Vec.max_index [||]))

(* ---------- Mat ---------- *)

let test_mat_identity_mul () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Linalg.Mat.identity 2 in
  Alcotest.(check bool) "A*I = A" true (Linalg.Mat.equal (Linalg.Mat.mul a i) a);
  Alcotest.(check bool) "I*A = A" true (Linalg.Mat.equal (Linalg.Mat.mul i a) a)

let test_mat_mul_known () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Linalg.Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Linalg.Mat.mul a b in
  check_float "c00" 19.0 (Linalg.Mat.get c 0 0);
  check_float "c11" 50.0 (Linalg.Mat.get c 1 1)

let test_mat_transpose () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Linalg.Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Linalg.Mat.rows t);
  check_float "t20" 3.0 (Linalg.Mat.get t 2 0);
  Alcotest.(check bool) "involution" true (Linalg.Mat.equal a (Linalg.Mat.transpose t))

let test_mat_vec () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Linalg.Mat.mul_vec a [| 1.0; 1.0 |] in
  check_float "mul_vec" 3.0 y.(0);
  let z = Linalg.Mat.vec_mul [| 1.0; 1.0 |] a in
  check_float "vec_mul" 4.0 z.(0);
  check_float "vec_mul" 6.0 z.(1)

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged rows") (fun () ->
      ignore (Linalg.Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

(* ---------- Lu ---------- *)

let test_lu_solve_known () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = Linalg.Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linalg.Lu.solve_mat a [| 5.0; 10.0 |] in
  check_float "x" 1.0 x.(0);
  check_float "y" 3.0 x.(1)

let test_lu_needs_pivoting () =
  (* zero leading pivot forces a row swap *)
  let a = Linalg.Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linalg.Lu.solve_mat a [| 2.0; 3.0 |] in
  check_float "x" 3.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_lu_singular () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Linalg.Lu.Singular 1) (fun () ->
      ignore (Linalg.Lu.factorize a))

let test_lu_determinant () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "det" (-2.0) (Linalg.Lu.determinant (Linalg.Lu.factorize a));
  let swapped = Linalg.Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_float "det with swap" (-1.0) (Linalg.Lu.determinant (Linalg.Lu.factorize swapped))

let test_lu_inverse () =
  let a = Linalg.Mat.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Linalg.Lu.inverse (Linalg.Lu.factorize a) in
  let product = Linalg.Mat.mul a inv in
  Alcotest.(check bool) "A * inv(A) = I" true
    (Linalg.Mat.equal ~tol:1e-12 product (Linalg.Mat.identity 2))

(* ---------- Fft ---------- *)

let test_fft_delta () =
  (* DFT of a unit impulse is flat *)
  let re = [| 1.0; 0.0; 0.0; 0.0 |] and im = Array.make 4 0.0 in
  Linalg.Fft.transform ~re ~im;
  Array.iter (fun v -> check_float "flat re" 1.0 v) re;
  Array.iter (fun v -> check_float "flat im" 0.0 v) im

let test_fft_cosine_bin () =
  (* a pure cosine at bin 1 of length 8 transforms to two spikes of N/2 *)
  let n = 8 in
  let re = Array.init n (fun k -> cos (2.0 *. Float.pi *. float_of_int k /. float_of_int n)) in
  let im = Array.make n 0.0 in
  Linalg.Fft.transform ~re ~im;
  check_float ~eps:1e-10 "bin 1" 4.0 re.(1);
  check_float ~eps:1e-10 "bin 7" 4.0 re.(7);
  check_float ~eps:1e-10 "bin 0" 0.0 re.(0);
  check_float ~eps:1e-10 "bin 2" 0.0 re.(2)

let test_fft_roundtrip () =
  let n = 16 in
  let re = Array.init n (fun k -> sin (0.3 *. float_of_int k) +. (0.1 *. float_of_int k)) in
  let im = Array.init n (fun k -> cos (0.7 *. float_of_int k)) in
  let re0 = Array.copy re and im0 = Array.copy im in
  Linalg.Fft.transform ~re ~im;
  Linalg.Fft.inverse ~re ~im;
  check_float ~eps:1e-10 "re roundtrip" 0.0 (Linalg.Vec.dist_l1 re re0);
  check_float ~eps:1e-10 "im roundtrip" 0.0 (Linalg.Vec.dist_l1 im im0)

let test_fft_parseval () =
  let n = 32 in
  let x = Array.init n (fun k -> sin (1.1 *. float_of_int k) *. exp (-0.05 *. float_of_int k)) in
  let time_energy = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x in
  let re = Array.copy x and im = Array.make n 0.0 in
  Linalg.Fft.transform ~re ~im;
  let freq_energy = ref 0.0 in
  for k = 0 to n - 1 do
    freq_energy := !freq_energy +. (((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) /. float_of_int n)
  done;
  check_float ~eps:1e-10 "parseval" time_energy !freq_energy

let test_fft_validation () =
  Alcotest.(check bool) "non power of two" true
    (try
       Linalg.Fft.transform ~re:(Array.make 6 0.0) ~im:(Array.make 6 0.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "next pow2" 16 (Linalg.Fft.next_power_of_two 9);
  Alcotest.(check bool) "pow2 check" true (Linalg.Fft.is_power_of_two 64);
  Alcotest.(check bool) "pow2 check" false (Linalg.Fft.is_power_of_two 48)

(* ---------- properties ---------- *)

let prop_fft_linearity =
  let gen =
    let open QCheck2.Gen in
    let* logn = int_range 1 5 in
    let n = 1 lsl logn in
    let* x = array_size (return n) (float_range (-2.0) 2.0) in
    let* y = array_size (return n) (float_range (-2.0) 2.0) in
    let* a = float_range (-3.0) 3.0 in
    return (x, y, a)
  in
  QCheck2.Test.make ~name:"fft: linearity F(a x + y) = a F(x) + F(y)" ~count:100 gen
    (fun (x, y, a) ->
      let n = Array.length x in
      let combo_re = Array.init n (fun i -> (a *. x.(i)) +. y.(i)) in
      let combo_im = Array.make n 0.0 in
      Linalg.Fft.transform ~re:combo_re ~im:combo_im;
      let xr = Array.copy x and xi = Array.make n 0.0 in
      Linalg.Fft.transform ~re:xr ~im:xi;
      let yr = Array.copy y and yi = Array.make n 0.0 in
      Linalg.Fft.transform ~re:yr ~im:yi;
      let ok = ref true in
      for k = 0 to n - 1 do
        if
          abs_float (combo_re.(k) -. ((a *. xr.(k)) +. yr.(k))) > 1e-8
          || abs_float (combo_im.(k) -. ((a *. xi.(k)) +. yi.(k))) > 1e-8
        then ok := false
      done;
      !ok)

let diag_dominant_gen =
  (* random strictly diagonally dominant systems are safely solvable *)
  let open QCheck2.Gen in
  let* n = int_range 1 12 in
  let* entries = array_size (return (n * n)) (float_range (-1.0) 1.0) in
  let* rhs = array_size (return n) (float_range (-10.0) 10.0) in
  let a =
    Linalg.Mat.init ~rows:n ~cols:n (fun i j ->
        let v = entries.((i * n) + j) in
        if i = j then v +. (if v >= 0.0 then float_of_int n +. 1.0 else -.(float_of_int n +. 1.0))
        else v)
  in
  return (a, rhs)

let prop_lu_residual =
  QCheck2.Test.make ~name:"lu: ||Ax - b|| small on diagonally dominant systems" ~count:200
    diag_dominant_gen (fun (a, b) ->
      let x = Linalg.Lu.solve_mat a b in
      let r = Linalg.Vec.sub (Linalg.Mat.mul_vec a x) b in
      Linalg.Vec.norm_inf r < 1e-9)

let prop_transpose_involution =
  let gen =
    let open QCheck2.Gen in
    let* rows = int_range 1 8 in
    let* cols = int_range 1 8 in
    let* entries = array_size (return (rows * cols)) (float_range (-5.0) 5.0) in
    return (Linalg.Mat.init ~rows ~cols (fun i j -> entries.((i * cols) + j)))
  in
  QCheck2.Test.make ~name:"mat: transpose involution" ~count:200 gen (fun a ->
      Linalg.Mat.equal a (Linalg.Mat.transpose (Linalg.Mat.transpose a)))

let prop_dot_symmetry =
  let gen =
    let open QCheck2.Gen in
    let* n = int_range 0 16 in
    let* x = array_size (return n) (float_range (-3.0) 3.0) in
    let* y = array_size (return n) (float_range (-3.0) 3.0) in
    return (x, y)
  in
  QCheck2.Test.make ~name:"vec: dot symmetric" ~count:200 gen (fun (x, y) ->
      abs_float (Linalg.Vec.dot x y -. Linalg.Vec.dot y x) < 1e-12)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "create/dim" `Quick test_vec_create_dim;
          Alcotest.test_case "scale/axpy" `Quick test_vec_scale_axpy;
          Alcotest.test_case "dot" `Quick test_vec_dot;
          Alcotest.test_case "dot mismatch" `Quick test_vec_dot_mismatch;
          Alcotest.test_case "kahan sum" `Quick test_kahan_sum;
          Alcotest.test_case "asum/nrm2/inf" `Quick test_asum_nrm2;
          Alcotest.test_case "nrm2 overflow safe" `Quick test_nrm2_overflow_safe;
          Alcotest.test_case "normalize_l1" `Quick test_normalize_l1;
          Alcotest.test_case "dist_l1" `Quick test_dist_l1;
          Alcotest.test_case "max_index" `Quick test_max_index;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "mul known" `Quick test_mat_mul_known;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "mat-vec products" `Quick test_mat_vec;
          Alcotest.test_case "ragged rejected" `Quick test_mat_ragged;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve known" `Quick test_lu_solve_known;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "singular detection" `Quick test_lu_singular;
          Alcotest.test_case "determinant" `Quick test_lu_determinant;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
        ] );
      ( "fft",
        [
          Alcotest.test_case "impulse" `Quick test_fft_delta;
          Alcotest.test_case "cosine bin" `Quick test_fft_cosine_bin;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
          Alcotest.test_case "validation" `Quick test_fft_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lu_residual; prop_transpose_involution; prop_dot_symmetry; prop_fft_linearity ]
      );
    ]

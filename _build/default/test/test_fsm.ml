(* Tests for the stochastic FSM-network formalism: component validation,
   wiring rules, compositional chain construction against hand-computed and
   Kronecker references, and agreement between the built chain and direct
   simulation. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* A bare counter mod n driven by a coin: increments when input symbol is 1. *)
let mod_counter ~name n =
  Fsm.Component.create ~name ~n_states:n ~input_cards:[| 2 |] ~n_outputs:n
    ~step:(fun s inputs -> let s' = if inputs.(0) = 1 then (s + 1) mod n else s in (s', s))
    ()

let coin p = { Fsm.Network.source_name = "coin"; pmf = Prob.Pmf.bernoulli ~p 1 0 }

(* ---------- Component ---------- *)

let test_component_validation () =
  Alcotest.(check bool) "bad states" true
    (try
       ignore
         (Fsm.Component.create ~name:"x" ~n_states:0 ~input_cards:[||] ~n_outputs:1
            ~step:(fun _ _ -> (0, 0)) ());
       false
     with Invalid_argument _ -> true)

let test_check_step_catches_bad_range () =
  let bad =
    Fsm.Component.create ~name:"bad" ~n_states:2 ~input_cards:[| 2 |] ~n_outputs:1
      ~step:(fun s inputs -> (s + inputs.(0), 0))
      (* state 1 + input 1 = 2: out of range *) ()
  in
  Alcotest.(check bool) "caught" true
    (try Fsm.Component.check_step bad; false with Failure _ -> true);
  Fsm.Component.check_step (mod_counter ~name:"ok" 4)

let test_constant_component () =
  let c = Fsm.Component.constant ~name:"k" ~output:2 ~n_outputs:3 in
  let s, o = c.Fsm.Component.step 0 [||] in
  Alcotest.(check int) "state" 0 s;
  Alcotest.(check int) "output" 2 o

(* ---------- Network validation ---------- *)

let test_network_feed_forward_enforced () =
  let a = mod_counter ~name:"a" 2 and b = mod_counter ~name:"b" 2 in
  Alcotest.(check bool) "forward read rejected" true
    (try
       ignore
         (Fsm.Network.create ~sources:[| coin 0.5 |] ~components:[| a; b |]
            ~wiring:[| [| Fsm.Network.From_component 1 |]; [| Fsm.Network.From_source 0 |] |]);
       false
     with Invalid_argument _ -> true);
  (* but reading a later component's *state* is fine (registered feedback) *)
  let a2 =
    Fsm.Component.create ~name:"a2" ~n_states:2 ~input_cards:[| 2 |] ~n_outputs:2
      ~step:(fun _ inputs -> (inputs.(0), inputs.(0)))
      ()
  in
  ignore
    (Fsm.Network.create ~sources:[||] ~components:[| a2; mod_counter ~name:"b2" 2 |]
       ~wiring:[| [| Fsm.Network.From_state 1 |]; [| Fsm.Network.From_component 0 |] |])

let test_network_cardinality_checks () =
  let narrow =
    Fsm.Component.create ~name:"narrow" ~n_states:1 ~input_cards:[| 2 |] ~n_outputs:1
      ~step:(fun _ _ -> (0, 0))
      ()
  in
  let wide_source = { Fsm.Network.source_name = "wide"; pmf = Prob.Pmf.uniform [ 0; 1; 2 ] } in
  Alcotest.(check bool) "source too wide" true
    (try
       ignore
         (Fsm.Network.create ~sources:[| wide_source |] ~components:[| narrow |]
            ~wiring:[| [| Fsm.Network.From_source 0 |] |]);
       false
     with Invalid_argument _ -> true)

let test_encode_decode_roundtrip () =
  let net =
    Fsm.Network.create ~sources:[| coin 0.5 |]
      ~components:[| mod_counter ~name:"a" 3; mod_counter ~name:"b" 5 |]
      ~wiring:[| [| Fsm.Network.From_source 0 |]; [| Fsm.Network.From_source 0 |] |]
  in
  Alcotest.(check int) "product size" 15 (Fsm.Network.n_global_states net);
  for a = 0 to 2 do
    for b = 0 to 4 do
      let code = Fsm.Network.encode net [| a; b |] in
      Alcotest.(check (array int)) "roundtrip" [| a; b |] (Fsm.Network.decode net code)
    done
  done

(* ---------- chain construction ---------- *)

let test_single_counter_chain () =
  (* counter mod 3 with increment prob p: explicit 3-cycle chain *)
  let p = 0.3 in
  let net =
    Fsm.Network.create ~sources:[| coin p |] ~components:[| mod_counter ~name:"c" 3 |]
      ~wiring:[| [| Fsm.Network.From_source 0 |] |]
  in
  let built = Fsm.Network.build_chain net ~initial:[| 0 |] in
  let c = built.Fsm.Network.chain in
  Alcotest.(check int) "all states reachable" 3 (Markov.Chain.n_states c);
  (* locate the chain index of component-state s *)
  let idx s = Option.get (built.Fsm.Network.index_of [| s |]) in
  check_float "stay" (1.0 -. p) (Markov.Chain.transition_prob c (idx 0) (idx 0));
  check_float "step" p (Markov.Chain.transition_prob c (idx 0) (idx 1));
  check_float "wrap" p (Markov.Chain.transition_prob c (idx 2) (idx 0));
  (* symmetric cycle: uniform stationary distribution *)
  let pi = Markov.Gth.solve c in
  Array.iter (fun v -> check_float ~eps:1e-12 "uniform" (1.0 /. 3.0) v) pi

let test_independent_components_kronecker () =
  (* two independent coins driving independent counters: the composed TPM is
     the Kronecker product of the component TPMs *)
  let pa = 0.3 and pb = 0.7 in
  let single p n =
    let net =
      Fsm.Network.create ~sources:[| coin p |] ~components:[| mod_counter ~name:"c" n |]
        ~wiring:[| [| Fsm.Network.From_source 0 |] |]
    in
    (Fsm.Network.build_chain net ~initial:[| 0 |]).Fsm.Network.chain
  in
  let chain_a = single pa 2 and chain_b = single pb 3 in
  let expected = Sparse.Kron.product (Markov.Chain.tpm chain_a) (Markov.Chain.tpm chain_b) in
  let joint_net =
    Fsm.Network.create
      ~sources:[| coin pa; coin pb |]
      ~components:[| mod_counter ~name:"a" 2; mod_counter ~name:"b" 3 |]
      ~wiring:[| [| Fsm.Network.From_source 0 |]; [| Fsm.Network.From_source 1 |] |]
  in
  let joint = Fsm.Network.build_chain joint_net ~initial:[| 0; 0 |] in
  (* compare entrywise through the index mapping *)
  let n = Markov.Chain.n_states joint.Fsm.Network.chain in
  Alcotest.(check int) "full product reachable" 6 n;
  let ok = ref true in
  for a = 0 to 1 do
    for b = 0 to 2 do
      for a' = 0 to 1 do
        for b' = 0 to 2 do
          let i = Option.get (joint.Fsm.Network.index_of [| a; b |]) in
          let j = Option.get (joint.Fsm.Network.index_of [| a'; b' |]) in
          let expected_v = Sparse.Csr.get expected ((a * 3) + b) ((a' * 3) + b') in
          let got = Markov.Chain.transition_prob joint.Fsm.Network.chain i j in
          if abs_float (expected_v -. got) > 1e-12 then ok := false
        done
      done
    done
  done;
  Alcotest.(check bool) "matches kronecker product" true !ok

let test_from_state_feedback_semantics () =
  (* component 0 copies component 1's *current* state; component 1 toggles
     every step. Starting from (0, 1): next state of comp0 must be 1 (the
     pre-update state of comp1), while comp1 moves to 0. *)
  let copier =
    Fsm.Component.create ~name:"copier" ~n_states:2 ~input_cards:[| 2 |] ~n_outputs:1
      ~step:(fun _ inputs -> (inputs.(0), 0))
      ()
  in
  let toggler =
    Fsm.Component.create ~name:"toggler" ~n_states:2 ~input_cards:[||] ~n_outputs:1
      ~step:(fun s _ -> (1 - s, 0))
      ()
  in
  let net =
    Fsm.Network.create ~sources:[||] ~components:[| copier; toggler |]
      ~wiring:[| [| Fsm.Network.From_state 1 |]; [||] |]
  in
  let built = Fsm.Network.build_chain net ~initial:[| 0; 1 |] in
  let i = Option.get (built.Fsm.Network.index_of [| 0; 1 |]) in
  let j = Option.get (built.Fsm.Network.index_of [| 1; 0 |]) in
  check_float "deterministic move" 1.0
    (Markov.Chain.transition_prob built.Fsm.Network.chain i j)

let test_chain_rows_stochastic () =
  let net =
    Fsm.Network.create
      ~sources:[| coin 0.4; { Fsm.Network.source_name = "tri"; pmf = Prob.Pmf.uniform [ 0; 1 ] } |]
      ~components:[| mod_counter ~name:"a" 4; mod_counter ~name:"b" 3 |]
      ~wiring:[| [| Fsm.Network.From_source 0 |]; [| Fsm.Network.From_source 1 |] |]
  in
  let built = Fsm.Network.build_chain net ~initial:[| 0; 0 |] in
  Array.iter
    (fun s -> check_float ~eps:1e-12 "row sum" 1.0 s)
    (Sparse.Csr.row_sums (Markov.Chain.tpm built.Fsm.Network.chain))

let test_simulation_matches_chain () =
  (* empirical state frequencies from simulate converge to the stationary
     distribution of the built chain *)
  let p = 0.35 in
  let net =
    Fsm.Network.create ~sources:[| coin p |] ~components:[| mod_counter ~name:"c" 4 |]
      ~wiring:[| [| Fsm.Network.From_source 0 |] |]
  in
  let built = Fsm.Network.build_chain net ~initial:[| 0 |] in
  let pi = Markov.Gth.solve built.Fsm.Network.chain in
  let counts = Array.make 4 0 in
  let steps = 200_000 in
  Fsm.Network.simulate net
    ~rng:(Prob.Rng.create ~seed:99L)
    ~initial:[| 0 |] ~steps
    ~on_step:(fun states _ -> counts.(states.(0)) <- counts.(states.(0)) + 1);
  for s = 0 to 3 do
    let freq = float_of_int counts.(s) /. float_of_int steps in
    let idx = Option.get (built.Fsm.Network.index_of [| s |]) in
    Alcotest.(check bool)
      (Printf.sprintf "freq state %d" s)
      true
      (abs_float (freq -. pi.(idx)) < 0.01)
  done

let test_to_dot () =
  let watcher =
    Fsm.Component.create ~name:"b" ~n_states:5 ~input_cards:[| 3 |] ~n_outputs:1
      ~step:(fun s inputs -> ((s + inputs.(0)) mod 5, 0))
      ()
  in
  let net =
    Fsm.Network.create ~sources:[| coin 0.5 |]
      ~components:[| mod_counter ~name:"a" 3; watcher |]
      ~wiring:[| [| Fsm.Network.From_source 0 |]; [| Fsm.Network.From_state 0 |] |]
  in
  let dot = Fsm.Network.to_dot net in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph fsm_network");
  Alcotest.(check bool) "source node" true (contains "src0");
  Alcotest.(check bool) "component node" true (contains "comp1");
  Alcotest.(check bool) "state feedback dashed" true (contains "style=dashed")

(* ---------- properties ---------- *)

let network_gen =
  (* random two-component feed-forward network: coin -> counter -> counter *)
  let open QCheck2.Gen in
  let* p = float_range 0.05 0.95 in
  let* na = int_range 2 5 in
  let* nb = int_range 2 5 in
  let a = mod_counter ~name:"a" na in
  (* b increments when a's output (its previous state) is 0 *)
  let b =
    Fsm.Component.create ~name:"b" ~n_states:nb ~input_cards:[| na |] ~n_outputs:1
      ~step:(fun s inputs -> (if inputs.(0) = 0 then (s + 1) mod nb else s), 0)
      ()
  in
  return
    (Fsm.Network.create ~sources:[| coin p |] ~components:[| a; b |]
       ~wiring:[| [| Fsm.Network.From_source 0 |]; [| Fsm.Network.From_component 0 |] |])

let prop_chain_stochastic =
  QCheck2.Test.make ~name:"built chains are row-stochastic" ~count:50 network_gen (fun net ->
      let built = Fsm.Network.build_chain net ~initial:[| 0; 0 |] in
      Array.for_all
        (fun s -> abs_float (s -. 1.0) < 1e-12)
        (Sparse.Csr.row_sums (Markov.Chain.tpm built.Fsm.Network.chain)))

let prop_reachable_closed =
  QCheck2.Test.make ~name:"reachable state set is transition-closed" ~count:50 network_gen
    (fun net ->
      let built = Fsm.Network.build_chain net ~initial:[| 0; 0 |] in
      (* every column index referenced must be a registered state *)
      let n = Markov.Chain.n_states built.Fsm.Network.chain in
      let ok = ref true in
      Sparse.Csr.iter (Markov.Chain.tpm built.Fsm.Network.chain) (fun _ j _ ->
          if j < 0 || j >= n then ok := false);
      !ok)

let () =
  Alcotest.run "fsm"
    [
      ( "component",
        [
          Alcotest.test_case "validation" `Quick test_component_validation;
          Alcotest.test_case "check_step range" `Quick test_check_step_catches_bad_range;
          Alcotest.test_case "constant" `Quick test_constant_component;
        ] );
      ( "network",
        [
          Alcotest.test_case "feed-forward enforced" `Quick test_network_feed_forward_enforced;
          Alcotest.test_case "cardinality checks" `Quick test_network_cardinality_checks;
          Alcotest.test_case "encode/decode" `Quick test_encode_decode_roundtrip;
        ] );
      ( "chain-construction",
        [
          Alcotest.test_case "single counter" `Quick test_single_counter_chain;
          Alcotest.test_case "independent = kronecker" `Quick test_independent_components_kronecker;
          Alcotest.test_case "From_state semantics" `Quick test_from_state_feedback_semantics;
          Alcotest.test_case "rows stochastic" `Quick test_chain_rows_stochastic;
          Alcotest.test_case "simulation matches chain" `Slow test_simulation_matches_chain;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_chain_stochastic; prop_reachable_closed ] );
    ]

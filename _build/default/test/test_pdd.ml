(* Tests for the MTBDD (probability decision diagram) substrate: hash-consing
   invariants, vector/matrix encodings, symbolic Kronecker products, and
   stationary analysis performed directly on the diagrams — the paper's
   "probability decision diagram" outlook (Bozga-Maler, CAV'99). *)

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let mgr () = Pdd.Mtbdd.manager ()

(* ---------- hash-consing & structure ---------- *)

let test_terminals_shared () =
  let m = mgr () in
  let a = Pdd.Mtbdd.terminal m 0.5 in
  let b = Pdd.Mtbdd.terminal m 0.5 in
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check (option (float 0.0))) "value" (Some 0.5) (Pdd.Mtbdd.value a)

let test_constant_vector_collapses () =
  let m = mgr () in
  let v = Pdd.Mtbdd.vector_of_array m (Array.make 64 0.25) in
  Alcotest.(check int) "one node" 1 (Pdd.Mtbdd.node_count v);
  check_float "sum" 16.0 (Pdd.Mtbdd.vector_sum m v ~levels:6)

let test_vector_roundtrip () =
  let m = mgr () in
  let x = Array.init 16 (fun i -> float_of_int (i * i) /. 10.0) in
  let v = Pdd.Mtbdd.vector_of_array m x in
  let back = Pdd.Mtbdd.vector_to_array m v ~levels:4 in
  check_float "roundtrip" 0.0 (Linalg.Vec.dist_l1 x back);
  check_float "sum" (Linalg.Vec.sum x) (Pdd.Mtbdd.vector_sum m v ~levels:4)

let test_matrix_roundtrip () =
  let m = mgr () in
  let a =
    Linalg.Mat.init ~rows:8 ~cols:8 (fun i j -> if (i + j) mod 3 = 0 then float_of_int (i - j) else 0.0)
  in
  let d = Pdd.Mtbdd.matrix_of_dense m a in
  Alcotest.(check bool) "roundtrip" true
    (Linalg.Mat.equal a (Pdd.Mtbdd.matrix_to_dense m d ~levels:3))

let test_apply_pointwise () =
  let m = mgr () in
  let x = [| 1.0; 2.0; 3.0; 4.0 |] and y = [| 10.0; 20.0; 30.0; 40.0 |] in
  let vx = Pdd.Mtbdd.vector_of_array m x and vy = Pdd.Mtbdd.vector_of_array m y in
  let s = Pdd.Mtbdd.add m vx vy in
  let back = Pdd.Mtbdd.vector_to_array m s ~levels:2 in
  check_float "sum vector" 0.0 (Linalg.Vec.dist_l1 back [| 11.0; 22.0; 33.0; 44.0 |]);
  let scaled = Pdd.Mtbdd.scale m 2.0 vx in
  check_float "scale" 8.0 (Pdd.Mtbdd.vector_to_array m scaled ~levels:2).(3)

let test_manager_separation () =
  let m1 = mgr () and m2 = mgr () in
  let a = Pdd.Mtbdd.terminal m1 1.0 and b = Pdd.Mtbdd.terminal m2 1.0 in
  Alcotest.(check bool) "cross-manager rejected" true
    (try ignore (Pdd.Mtbdd.add m1 a b); false with Invalid_argument _ -> true)

(* ---------- mat-vec & kron ---------- *)

let random_mat seed n =
  let rng = Prob.Rng.create ~seed in
  Linalg.Mat.init ~rows:n ~cols:n (fun _ _ ->
      if Prob.Rng.float rng < 0.4 then Prob.Rng.float rng else 0.0)

let test_mat_vec_matches_dense () =
  let m = mgr () in
  let a = random_mat 5L 16 in
  let x = Array.init 16 (fun i -> float_of_int (i + 1)) in
  let da = Pdd.Mtbdd.matrix_of_dense m a in
  let dx = Pdd.Mtbdd.vector_of_array m x in
  let dy = Pdd.Mtbdd.mat_vec_mul m ~vec:dx ~mat:da ~levels:4 in
  let y = Pdd.Mtbdd.vector_to_array m dy ~levels:4 in
  let expected = Linalg.Mat.vec_mul x a in
  check_float ~eps:1e-9 "x*M" 0.0 (Linalg.Vec.dist_l1 y expected)

let test_kron_matches_explicit () =
  let m = mgr () in
  let a = random_mat 7L 4 and b = random_mat 11L 8 in
  let da = Pdd.Mtbdd.matrix_of_dense m a and db = Pdd.Mtbdd.matrix_of_dense m b in
  let dk = Pdd.Mtbdd.kron m ~levels_a:2 da db in
  let explicit =
    Sparse.Kron.product (Sparse.Csr.of_dense a) (Sparse.Csr.of_dense b) |> Sparse.Csr.to_dense
  in
  Alcotest.(check bool) "kron" true
    (Linalg.Mat.equal ~tol:1e-12 explicit (Pdd.Mtbdd.matrix_to_dense m dk ~levels:5))

let test_kron_compression () =
  (* the headline property: the DD of a k-fold Kronecker power grows
     polynomially (one subgraph per distinct prefix product) while the
     explicit matrix grows as 4^k *)
  let m = mgr () in
  let base =
    Linalg.Mat.of_arrays [| [| 0.9; 0.1 |]; [| 0.2; 0.8 |] |]
  in
  let d = Pdd.Mtbdd.matrix_of_dense m base in
  let rec power k acc levels =
    if k = 0 then (acc, levels)
    else power (k - 1) (Pdd.Mtbdd.kron m ~levels_a:levels acc d) (levels + 1)
  in
  let d8, levels = power 7 d 1 in
  Alcotest.(check int) "levels" 8 levels;
  let nodes = Pdd.Mtbdd.node_count d8 in
  (* 2^8 x 2^8 = 65536 dense entries; the diagram is ~40x smaller *)
  Alcotest.(check bool) (Printf.sprintf "%d nodes for a 256x256 dense-support matrix" nodes) true
    (nodes < 65536 / 10)

let test_stationary_on_dd () =
  (* two independent 2-state chains, solved symbolically; compare to GTH on
     the explicit product *)
  let m = mgr () in
  let a = Linalg.Mat.of_arrays [| [| 0.7; 0.3 |]; [| 0.4; 0.6 |] |] in
  let b = Linalg.Mat.of_arrays [| [| 0.5; 0.5 |]; [| 0.1; 0.9 |] |] in
  let dd =
    Pdd.Mtbdd.kron m ~levels_a:1 (Pdd.Mtbdd.matrix_of_dense m a) (Pdd.Mtbdd.matrix_of_dense m b)
  in
  match Pdd.Mtbdd.stationary m dd ~levels:2 ~tol:1e-13 () with
  | Error msg -> Alcotest.fail msg
  | Ok (pi, _) ->
      let explicit =
        Markov.Chain.of_csr (Sparse.Kron.product (Sparse.Csr.of_dense a) (Sparse.Csr.of_dense b))
      in
      let reference = Markov.Gth.solve explicit in
      check_float ~eps:1e-9 "matches GTH" 0.0 (Linalg.Vec.dist_l1 pi reference)

let test_stationary_rejects_non_stochastic () =
  let m = mgr () in
  let bad = Pdd.Mtbdd.matrix_of_dense m (Linalg.Mat.of_arrays [| [| 0.5; 0.0 |]; [| 0.0; 0.5 |] |]) in
  match Pdd.Mtbdd.stationary m bad ~levels:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection"

(* ---------- CDR chain on the decision diagram ---------- *)

let test_cdr_chain_on_dd () =
  (* pad the reachable CDR chain to a power of two with absorbing filler and
     check the DD-based power iteration agrees with the sparse solver *)
  let cfg =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 16;
      n_phases = 4;
      counter_length = 2;
      max_run = 2;
      nw_max_atoms = 9;
      sigma_w = 0.12;
    }
  in
  let model = Cdr.Model.build_direct cfg in
  let n = model.Cdr.Model.n_states in
  let levels =
    let rec go l s = if s >= n then l else go (l + 1) (2 * s) in
    go 0 1
  in
  let size = 1 lsl levels in
  let tpm = Markov.Chain.tpm model.Cdr.Model.chain in
  let padded =
    Linalg.Mat.init ~rows:size ~cols:size (fun i j ->
        if i < n && j < n then Sparse.Csr.get tpm i j
        else if i >= n && j = i then 1.0 (* absorbing filler, unreachable *)
        else 0.0)
  in
  let m = mgr () in
  let dd = Pdd.Mtbdd.matrix_of_dense m padded in
  (* start uniform over the reachable block only: emulate by solving the
     full padded chain from uniform; filler states are closed, so mass that
     starts there stays there — instead compare the *reachable-restricted*
     normalized result *)
  match Pdd.Mtbdd.stationary m dd ~levels ~tol:1e-12 ~max_iter:100_000 () with
  | Error msg -> Alcotest.fail msg
  | Ok (pi, _) ->
      let reachable = Array.sub pi 0 n in
      let mass = Linalg.Vec.sum reachable in
      Alcotest.(check bool) "some mass in the reachable block" true (mass > 0.0);
      Linalg.Vec.scale_in_place (1.0 /. mass) reachable;
      let reference = (Markov.Power.solve ~tol:1e-13 model.Cdr.Model.chain).Markov.Solution.pi in
      check_float ~eps:1e-6 "matches sparse solve" 0.0 (Linalg.Vec.dist_l1 reachable reference)

(* ---------- properties ---------- *)

let prop_vector_roundtrip =
  let gen =
    let open QCheck2.Gen in
    let* logn = int_range 0 6 in
    array_size (return (1 lsl logn)) (float_range (-5.0) 5.0)
  in
  QCheck2.Test.make ~name:"mtbdd: vector roundtrip" ~count:100 gen (fun x ->
      let m = mgr () in
      let v = Pdd.Mtbdd.vector_of_array m x in
      let levels =
        let rec go l s = if s >= Array.length x then l else go (l + 1) (2 * s) in
        go 0 1
      in
      Linalg.Vec.dist_l1 x (Pdd.Mtbdd.vector_to_array m v ~levels) < 1e-12)

let prop_matvec_matches =
  let gen =
    let open QCheck2.Gen in
    let* logn = int_range 1 4 in
    let n = 1 lsl logn in
    let* entries =
      array_size (return (n * n)) (frequency [ (2, return 0.0); (1, float_range 0.0 1.0) ])
    in
    let* x = array_size (return n) (float_range (-2.0) 2.0) in
    return (Linalg.Mat.init ~rows:n ~cols:n (fun i j -> entries.((i * n) + j)), x, logn)
  in
  QCheck2.Test.make ~name:"mtbdd: mat_vec matches dense" ~count:100 gen (fun (a, x, levels) ->
      let m = mgr () in
      let dy =
        Pdd.Mtbdd.mat_vec_mul m
          ~vec:(Pdd.Mtbdd.vector_of_array m x)
          ~mat:(Pdd.Mtbdd.matrix_of_dense m a)
          ~levels
      in
      let y = Pdd.Mtbdd.vector_to_array m dy ~levels in
      Linalg.Vec.dist_l1 y (Linalg.Mat.vec_mul x a) < 1e-9)

let () =
  Alcotest.run "pdd"
    [
      ( "structure",
        [
          Alcotest.test_case "terminals shared" `Quick test_terminals_shared;
          Alcotest.test_case "constant vector collapses" `Quick test_constant_vector_collapses;
          Alcotest.test_case "vector roundtrip" `Quick test_vector_roundtrip;
          Alcotest.test_case "matrix roundtrip" `Quick test_matrix_roundtrip;
          Alcotest.test_case "apply pointwise" `Quick test_apply_pointwise;
          Alcotest.test_case "manager separation" `Quick test_manager_separation;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "mat-vec matches dense" `Quick test_mat_vec_matches_dense;
          Alcotest.test_case "kron matches explicit" `Quick test_kron_matches_explicit;
          Alcotest.test_case "kron compression" `Quick test_kron_compression;
          Alcotest.test_case "stationary on DD" `Quick test_stationary_on_dd;
          Alcotest.test_case "rejects non-stochastic" `Quick test_stationary_rejects_non_stochastic;
          Alcotest.test_case "cdr chain on DD" `Slow test_cdr_chain_on_dd;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_vector_roundtrip; prop_matvec_matches ] );
    ]

(* Tests for the Monte-Carlo baseline: estimator mathematics, simulator
   determinism, and cross-validation of simulated error/slip rates against
   the Markov-chain analysis (the key "analysis = simulation" evidence). *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let noisy =
  (* a high-BER configuration so Monte Carlo can actually observe errors *)
  {
    Cdr.Config.default with
    Cdr.Config.grid_points = 32;
    n_phases = 8;
    counter_length = 3;
    max_run = 4;
    nw_max_atoms = 33;
    sigma_w = 0.22;
  }

(* ---------- Estimate ---------- *)

let test_point_estimate () =
  check_float "p" 0.25 (Sim.Estimate.point_estimate ~errors:25 ~bits:100);
  Alcotest.check_raises "bad bits" (Invalid_argument "Estimate: bits must be positive") (fun () ->
      ignore (Sim.Estimate.point_estimate ~errors:0 ~bits:0))

let test_wilson_contains_truth () =
  (* simulate a binomial with p = 0.3 and check coverage on one draw *)
  let iv = Sim.Estimate.wilson ~errors:30 ~bits:100 () in
  Alcotest.(check bool) "contains p-hat" true (iv.Sim.Estimate.lower < 0.3 && iv.Sim.Estimate.upper > 0.3);
  (* zero errors: lower bound 0, upper bound positive *)
  let iv0 = Sim.Estimate.wilson ~errors:0 ~bits:1000 () in
  check_float "lower 0" 0.0 iv0.Sim.Estimate.lower;
  Alcotest.(check bool) "upper positive but small" true
    (iv0.Sim.Estimate.upper > 0.0 && iv0.Sim.Estimate.upper < 0.01)

let test_required_bits_infeasibility () =
  (* the paper's argument: resolving 1e-14 takes ~4e16 bits *)
  let n = Sim.Estimate.required_bits ~ber:1e-14 () in
  Alcotest.(check bool) "astronomical" true (n > 1e16 && n < 1e17);
  (* and 1e-2 is easy *)
  Alcotest.(check bool) "easy case" true (Sim.Estimate.required_bits ~ber:1e-2 () < 1e6)

let test_observed_vs_expected () =
  check_float ~eps:1e-12 "exact" 0.0 (Sim.Estimate.observed_vs_expected ~errors:10 ~bits:100 ~ber:0.1);
  Alcotest.(check bool) "off by a lot" true
    (Sim.Estimate.observed_vs_expected ~errors:100 ~bits:100 ~ber:0.1 > 10.0)

(* ---------- Transient ---------- *)

let test_simulator_deterministic () =
  let a = Sim.Transient.run ~seed:5L noisy ~bits:5000 in
  let b = Sim.Transient.run ~seed:5L noisy ~bits:5000 in
  Alcotest.(check int) "same errors" a.Sim.Transient.errors b.Sim.Transient.errors;
  Alcotest.(check int) "same slips" a.Sim.Transient.slips b.Sim.Transient.slips;
  Alcotest.(check int) "same endpoint" a.Sim.Transient.final_phase_bin b.Sim.Transient.final_phase_bin;
  let c = Sim.Transient.run ~seed:6L noisy ~bits:5000 in
  Alcotest.(check bool) "different seed differs" true
    (c.Sim.Transient.errors <> a.Sim.Transient.errors
    || c.Sim.Transient.final_phase_bin <> a.Sim.Transient.final_phase_bin)

let test_trajectory_shape () =
  let tr = Sim.Transient.trajectory ~seed:1L noisy ~bits:2000 in
  Alcotest.(check int) "length" 2000 (Array.length tr);
  Array.iter
    (fun bin ->
      Alcotest.(check bool) "bin in range" true (bin >= 0 && bin < noisy.Cdr.Config.grid_points))
    tr

let test_transition_count_plausible () =
  let o = Sim.Transient.run ~seed:2L noisy ~bits:100_000 in
  let expected = Cdr.Data_source.transition_probability noisy *. 100_000.0 in
  Alcotest.(check bool) "transition rate" true
    (abs_float (float_of_int o.Sim.Transient.transitions -. expected) < 0.03 *. expected)

let test_mc_matches_chain_ber () =
  (* the discretized-noise simulator is an unbiased estimator of the chain's
     per-bit error probability: compare through a z-score *)
  let model = Cdr.Model.build_direct noisy in
  let sol = Cdr.Model.solve model in
  let rho = Cdr.Model.phase_marginal model ~pi:sol.Markov.Solution.pi in
  (* discretized-noise tail: exactly what run_discretized estimates *)
  let predicted = Cdr.Ber.of_convolution noisy ~rho in
  let bits = 400_000 in
  let o = Sim.Transient.run_discretized ~seed:7L noisy ~bits in
  let z = Sim.Estimate.observed_vs_expected ~errors:o.Sim.Transient.errors ~bits ~ber:predicted in
  Alcotest.(check bool)
    (Printf.sprintf "z-score %.2f acceptable (predicted %.3e, observed %d/%d)" z predicted
       o.Sim.Transient.errors bits)
    true (z < 4.0)

let test_mc_continuous_close_to_chain () =
  (* the continuous-noise simulator should agree with the analytic-tail BER
     to within Monte-Carlo error as well (the discretization is fine) *)
  let model = Cdr.Model.build_direct noisy in
  let sol = Cdr.Model.solve model in
  let rho = Cdr.Model.phase_marginal model ~pi:sol.Markov.Solution.pi in
  let predicted = Cdr.Ber.of_marginal noisy ~rho in
  let bits = 400_000 in
  let o = Sim.Transient.run ~seed:8L noisy ~bits in
  let z = Sim.Estimate.observed_vs_expected ~errors:o.Sim.Transient.errors ~bits ~ber:predicted in
  Alcotest.(check bool)
    (Printf.sprintf "z-score %.2f acceptable (predicted %.3e, observed %d/%d)" z predicted
       o.Sim.Transient.errors bits)
    true (z < 5.0)

let test_mc_slip_rate_matches_chain () =
  let cfg =
    { noisy with Cdr.Config.nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.6 () }
  in
  let model = Cdr.Model.build_direct cfg in
  let sol = Cdr.Model.solve model in
  let predicted = Cdr.Cycle_slip.rate model ~pi:sol.Markov.Solution.pi in
  let bits = 200_000 in
  let o = Sim.Transient.run_discretized ~seed:9L cfg ~bits in
  let z = Sim.Estimate.observed_vs_expected ~errors:o.Sim.Transient.slips ~bits ~ber:predicted in
  Alcotest.(check bool)
    (Printf.sprintf "slip z-score %.2f (predicted rate %.3e, observed %d/%d)" z predicted
       o.Sim.Transient.slips bits)
    true (z < 5.0)

(* ---------- histogram ---------- *)

let test_histogram_basics () =
  let h = Sim.Histogram.create ~bins:4 in
  Sim.Histogram.add h 0;
  Sim.Histogram.add h 0;
  Sim.Histogram.add h 3;
  Alcotest.(check int) "count" 2 (Sim.Histogram.count h 0);
  Alcotest.(check int) "total" 3 (Sim.Histogram.total h);
  let pmf = Sim.Histogram.to_pmf h in
  check_float ~eps:1e-12 "freq" (2.0 /. 3.0) pmf.(0);
  Alcotest.check_raises "out of range" (Invalid_argument "Histogram.add: bin out of range")
    (fun () -> Sim.Histogram.add h 4)

let test_histogram_matches_stationary () =
  (* the whole modeling chain end-to-end: simulated occupancy converges to
     the analytic stationary phase marginal *)
  let model = Cdr.Model.build_direct noisy in
  let sol = Cdr.Model.solve model in
  let rho = Cdr.Model.phase_marginal model ~pi:sol.Markov.Solution.pi in
  let h = Sim.Histogram.collect ~noise_model:`Discretized ~seed:33L noisy ~bits:300_000 in
  let tv = Sim.Histogram.total_variation h rho in
  Alcotest.(check bool) (Printf.sprintf "TV = %.4f small" tv) true (tv < 0.02)

(* ---------- properties ---------- *)

let prop_wilson_brackets_point =
  let gen =
    let open QCheck2.Gen in
    let* bits = int_range 10 10_000 in
    let* errors = int_range 0 bits in
    return (errors, bits)
  in
  QCheck2.Test.make ~name:"wilson interval brackets the point estimate" ~count:200 gen
    (fun (errors, bits) ->
      let p = Sim.Estimate.point_estimate ~errors ~bits in
      let iv = Sim.Estimate.wilson ~errors ~bits () in
      iv.Sim.Estimate.lower <= p +. 1e-12
      && p <= iv.Sim.Estimate.upper +. 1e-12
      && iv.Sim.Estimate.lower >= 0.0
      && iv.Sim.Estimate.upper <= 1.0)

let prop_required_bits_monotone =
  let gen = QCheck2.Gen.(pair (float_range 1e-12 0.15) (float_range 1.01 5.0)) in
  QCheck2.Test.make ~name:"required_bits decreasing in ber" ~count:200 gen (fun (ber, factor) ->
      Sim.Estimate.required_bits ~ber () > Sim.Estimate.required_bits ~ber:(ber *. factor) ())

let () =
  Alcotest.run "sim"
    [
      ( "estimate",
        [
          Alcotest.test_case "point estimate" `Quick test_point_estimate;
          Alcotest.test_case "wilson" `Quick test_wilson_contains_truth;
          Alcotest.test_case "required bits" `Quick test_required_bits_infeasibility;
          Alcotest.test_case "observed vs expected" `Quick test_observed_vs_expected;
        ] );
      ( "transient",
        [
          Alcotest.test_case "deterministic" `Quick test_simulator_deterministic;
          Alcotest.test_case "trajectory" `Quick test_trajectory_shape;
          Alcotest.test_case "transition count" `Slow test_transition_count_plausible;
          Alcotest.test_case "mc matches chain ber (discretized)" `Slow test_mc_matches_chain_ber;
          Alcotest.test_case "mc close to chain ber (continuous)" `Slow test_mc_continuous_close_to_chain;
          Alcotest.test_case "mc slip rate matches chain" `Slow test_mc_slip_rate_matches_chain;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "matches stationary marginal" `Slow test_histogram_matches_stationary;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_wilson_brackets_point; prop_required_bits_monotone ] );
    ]

test/test_linalg.ml: Alcotest Array Float Linalg List QCheck2 QCheck_alcotest

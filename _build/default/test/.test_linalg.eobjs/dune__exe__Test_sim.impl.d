test/test_sim.ml: Alcotest Array Cdr List Markov Printf Prob QCheck2 QCheck_alcotest Sim

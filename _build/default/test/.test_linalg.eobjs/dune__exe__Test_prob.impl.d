test/test_prob.ml: Alcotest Array List Printf Prob QCheck2 QCheck_alcotest

test/test_sparse.ml: Alcotest Array Linalg List QCheck2 QCheck_alcotest Sparse String

test/test_cdr.ml: Alcotest Array Cdr Filename Float Fsm Fun Linalg List Markov Printf Prob QCheck2 QCheck_alcotest Result Sparse String Sys

test/test_markov.ml: Alcotest Array Filename Fun Linalg List Markov Printf QCheck2 QCheck_alcotest Result Sparse Sys

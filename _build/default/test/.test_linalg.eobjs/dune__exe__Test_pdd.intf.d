test/test_pdd.mli:

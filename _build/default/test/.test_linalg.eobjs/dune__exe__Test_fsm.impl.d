test/test_fsm.ml: Alcotest Array Fsm List Markov Option Printf Prob QCheck2 QCheck_alcotest Sparse String

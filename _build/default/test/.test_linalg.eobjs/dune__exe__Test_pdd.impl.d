test/test_pdd.ml: Alcotest Array Cdr Linalg List Markov Pdd Printf Prob QCheck2 QCheck_alcotest Sparse

test/test_cdr.mli:

(* Tests for the CDR core library: configuration validation, the four FSM
   components, agreement of the two chain-construction paths, BER evaluation,
   the structured multigrid hierarchy, and cycle-slip measures. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* Small, fast configuration used across tests. *)
let small =
  {
    Cdr.Config.default with
    Cdr.Config.grid_points = 32;
    n_phases = 8;
    counter_length = 3;
    max_run = 4;
    nw_max_atoms = 17;
    sigma_w = 0.08;
  }

(* ---------- Config ---------- *)

let test_config_default_valid () =
  match Cdr.Config.validate Cdr.Config.default with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_config_rejections () =
  let bad_cases =
    [
      ("odd grid", { small with Cdr.Config.grid_points = 33 });
      ("phase granularity", { small with Cdr.Config.grid_points = 30; n_phases = 8 });
      ("counter", { small with Cdr.Config.counter_length = 0 });
      ("sigma", { small with Cdr.Config.sigma_w = -0.1 });
      ("max_run", { small with Cdr.Config.max_run = 0 });
      ("p01", { small with Cdr.Config.p01 = 0.0 });
      ("nr too wide", { small with Cdr.Config.nr = Prob.Pmf.point 20 });
    ]
  in
  List.iter
    (fun (name, cfg) ->
      Alcotest.(check bool) name true (Result.is_error (Cdr.Config.validate cfg)))
    bad_cases

let test_config_geometry () =
  check_float "delta" (1.0 /. 32.0) (Cdr.Config.delta small);
  Alcotest.(check int) "g_steps" 4 (Cdr.Config.g_steps small);
  check_float "phase of bin 16" 0.0 (Cdr.Config.phase_of_bin small 16);
  check_float "phase of bin 0" (-0.5) (Cdr.Config.phase_of_bin small 0);
  Alcotest.(check int) "bin of 0" 16 (Cdr.Config.bin_of_phase small 0.0);
  Alcotest.(check int) "roundtrip" 5 (Cdr.Config.bin_of_phase small (Cdr.Config.phase_of_bin small 5))

let test_config_nw_pmf_capped () =
  let pmf, scale = Cdr.Config.nw_pmf small in
  Alcotest.(check bool) "atom cap respected" true (Prob.Pmf.cardinal pmf <= small.Cdr.Config.nw_max_atoms);
  Alcotest.(check bool) "scale positive" true (scale >= 1);
  (* zero-sigma degenerates to a point mass *)
  let p0, _ = Cdr.Config.nw_pmf { small with Cdr.Config.sigma_w = 0.0 } in
  check_float "point" 1.0 (Prob.Pmf.prob p0 0)

(* ---------- Data source ---------- *)

let test_data_source_encode_roundtrip () =
  for bit = 0 to 1 do
    for run = 1 to small.Cdr.Config.max_run do
      let code = Cdr.Data_source.encode small { Cdr.Data_source.bit; run } in
      let back = Cdr.Data_source.decode small code in
      Alcotest.(check int) "bit" bit back.Cdr.Data_source.bit;
      Alcotest.(check int) "run" run back.Cdr.Data_source.run
    done
  done

let test_data_source_forced_transition () =
  let comp = Cdr.Data_source.component small in
  let at_limit = Cdr.Data_source.encode small { Cdr.Data_source.bit = 0; run = small.Cdr.Config.max_run } in
  (* even with both coins saying "no flip" the transition is forced *)
  let next, out = comp.Fsm.Component.step at_limit [| 0; 0 |] in
  Alcotest.(check int) "transition emitted" Cdr.Data_source.output_transition out;
  let s = Cdr.Data_source.decode small next in
  Alcotest.(check int) "bit flipped" 1 s.Cdr.Data_source.bit;
  Alcotest.(check int) "run reset" 1 s.Cdr.Data_source.run

let test_data_source_transition_probability () =
  (* with p01 = p10 = p and a generous run limit, transition probability is
     close to p but slightly above because of forced transitions *)
  let cfg = { small with Cdr.Config.p01 = 0.5; p10 = 0.5; max_run = 12 } in
  let pt = Cdr.Data_source.transition_probability cfg in
  Alcotest.(check bool) "close to p" true (abs_float (pt -. 0.5) < 0.01);
  Alcotest.(check bool) "at least p" true (pt >= 0.5);
  (* max_run = 1 means a transition every bit *)
  let always = Cdr.Data_source.transition_probability { cfg with Cdr.Config.max_run = 1 } in
  check_float ~eps:1e-12 "forced every bit" 1.0 always

(* ---------- Phase detector ---------- *)

let test_detector_decisions () =
  Alcotest.(check bool) "no transition -> Null" true
    (Cdr.Phase_detector.decide ~phase_bins:5 ~nw_bins:0 false = Cdr.Phase_detector.Null);
  Alcotest.(check bool) "positive -> Lead" true
    (Cdr.Phase_detector.decide ~phase_bins:1 ~nw_bins:0 true = Cdr.Phase_detector.Lead);
  Alcotest.(check bool) "negative -> Lag" true
    (Cdr.Phase_detector.decide ~phase_bins:(-3) ~nw_bins:2 true = Cdr.Phase_detector.Lag);
  Alcotest.(check bool) "tie -> Null (sgn 0)" true
    (Cdr.Phase_detector.decide ~phase_bins:(-2) ~nw_bins:2 true = Cdr.Phase_detector.Null)

let test_detector_lead_probability_matches_gaussian () =
  (* the discretized decision probability brackets Q(-phi/sigma): the only
     mismatch is the tie atom at exactly 0 (which goes to Null, the sign
     function's zero), whose mass is at most one lattice cell *)
  let cfg = { small with Cdr.Config.nw_max_atoms = 201; grid_points = 64; n_phases = 8 } in
  let m = cfg.Cdr.Config.grid_points in
  let nw, scale = Cdr.Config.nw_pmf cfg in
  let cell_mass =
    Prob.Pmf.fold nw ~init:0.0 ~f:(fun acc _ w -> Float.max acc w)
  in
  ignore scale;
  List.iter
    (fun bin ->
      let phi = Cdr.Config.phase_of_bin cfg bin in
      let analytic = 1.0 -. Prob.Gaussian.cdf ~mean:0.0 ~sigma:cfg.Cdr.Config.sigma_w (-.phi) in
      let discrete = Cdr.Phase_detector.lead_probability cfg ~phase_bin:bin in
      Alcotest.(check bool)
        (Printf.sprintf "bin %d" bin)
        true
        (analytic >= discrete -. 0.02 && analytic <= discrete +. cell_mass +. 0.02))
    [ m / 2; (m / 2) + 2; (m / 2) - 3; (m / 2) + 6 ]

let test_detector_dead_zone () =
  Alcotest.(check bool) "inside dead zone -> Null" true
    (Cdr.Phase_detector.decide ~dead_zone:3 ~phase_bins:2 ~nw_bins:0 true = Cdr.Phase_detector.Null);
  Alcotest.(check bool) "beyond dead zone -> Lead" true
    (Cdr.Phase_detector.decide ~dead_zone:3 ~phase_bins:4 ~nw_bins:0 true = Cdr.Phase_detector.Lead);
  (* a dead zone strictly reduces the lead probability at every phase *)
  let with_dz = { small with Cdr.Config.detector_dead_zone = 2 } in
  for bin = 0 to small.Cdr.Config.grid_points - 1 do
    Alcotest.(check bool) "lead prob shrinks" true
      (Cdr.Phase_detector.lead_probability with_dz ~phase_bin:bin
      <= Cdr.Phase_detector.lead_probability small ~phase_bin:bin +. 1e-15)
  done

let test_dead_zone_model_consistent () =
  (* the dead-zone variant still composes into a valid chain and both
     construction paths agree *)
  let cfg = { small with Cdr.Config.detector_dead_zone = 2 } in
  let direct = Cdr.Model.build_direct cfg in
  let sums = Sparse.Csr.row_sums (Markov.Chain.tpm direct.Cdr.Model.chain) in
  Array.iter (fun s -> check_float ~eps:1e-12 "stochastic" 1.0 s) sums

let test_detector_lead_monotone_in_phase () =
  let m = small.Cdr.Config.grid_points in
  let prev = ref (-1.0) in
  for bin = 0 to m - 1 do
    let p = Cdr.Phase_detector.lead_probability small ~phase_bin:bin in
    Alcotest.(check bool) "monotone" true (p >= !prev -. 1e-12);
    prev := p
  done

(* ---------- Counter ---------- *)

let test_counter_overflow_behaviour () =
  let comp = Cdr.Counter.component small in
  let lead = Cdr.Phase_detector.output_to_int Cdr.Phase_detector.Lead in
  let lag = Cdr.Phase_detector.output_to_int Cdr.Phase_detector.Lag in
  let null = Cdr.Phase_detector.output_to_int Cdr.Phase_detector.Null in
  (* k = 3: from count 2, LEAD overflows to RETARD and resets *)
  let s, out = comp.Fsm.Component.step (Cdr.Counter.encode small 2) [| lead |] in
  Alcotest.(check int) "reset" 0 (Cdr.Counter.decode small s);
  Alcotest.(check bool) "retard" true (Cdr.Counter.command_of_int out = Cdr.Counter.Retard);
  let s, out = comp.Fsm.Component.step (Cdr.Counter.encode small (-2)) [| lag |] in
  Alcotest.(check int) "reset" 0 (Cdr.Counter.decode small s);
  Alcotest.(check bool) "advance" true (Cdr.Counter.command_of_int out = Cdr.Counter.Advance);
  let s, out = comp.Fsm.Component.step (Cdr.Counter.encode small 1) [| null |] in
  Alcotest.(check int) "hold state" 1 (Cdr.Counter.decode small s);
  Alcotest.(check bool) "hold" true (Cdr.Counter.command_of_int out = Cdr.Counter.Hold)

(* ---------- Phase error ---------- *)

let test_phase_wrap_and_crossing () =
  Alcotest.(check int) "wrap negative" 31 (Cdr.Phase_error.wrap small (-1));
  Alcotest.(check int) "wrap over" 0 (Cdr.Phase_error.wrap small 32);
  Alcotest.(check bool) "crossing detected" true
    (Cdr.Phase_error.crosses_boundary small ~src:31 ~dst:0);
  Alcotest.(check bool) "normal move" false (Cdr.Phase_error.crosses_boundary small ~src:10 ~dst:14)

let test_phase_update_directions () =
  let bin = 16 in
  Alcotest.(check int) "advance = +G" (16 + 4)
    (Cdr.Phase_error.next_bin small ~bin ~command:Cdr.Counter.Advance ~nr_bins:0);
  Alcotest.(check int) "retard = -G" (16 - 4)
    (Cdr.Phase_error.next_bin small ~bin ~command:Cdr.Counter.Retard ~nr_bins:0);
  Alcotest.(check int) "drift" 17
    (Cdr.Phase_error.next_bin small ~bin ~command:Cdr.Counter.Hold ~nr_bins:1)

(* ---------- Model: the two construction paths agree ---------- *)

let models_equal a b =
  let n = a.Cdr.Model.n_states in
  n = b.Cdr.Model.n_states
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    let key_i =
      (a.Cdr.Model.data_code i, a.Cdr.Model.counter_code i, a.Cdr.Model.phase_bin i)
    in
    let d, c, p = key_i in
    match b.Cdr.Model.index_of ~data:d ~counter:c ~phase:p with
    | None -> ok := false
    | Some i' ->
        Sparse.Csr.iter_row (Markov.Chain.tpm a.Cdr.Model.chain) i (fun j v ->
            let dj = a.Cdr.Model.data_code j
            and cj = a.Cdr.Model.counter_code j
            and pj = a.Cdr.Model.phase_bin j in
            match b.Cdr.Model.index_of ~data:dj ~counter:cj ~phase:pj with
            | None -> ok := false
            | Some j' ->
                if abs_float (v -. Markov.Chain.transition_prob b.Cdr.Model.chain i' j') > 1e-12
                then ok := false)
  done;
  !ok

let test_direct_equals_network () =
  let direct = Cdr.Model.build_direct small in
  let vianet = Cdr.Model.build_via_network small in
  Alcotest.(check bool) "same chain" true (models_equal direct vianet)

let test_model_chain_is_irreducible () =
  let model = Cdr.Model.build_direct small in
  Alcotest.(check bool) "irreducible" true (Markov.Chain.is_irreducible model.Cdr.Model.chain)

let test_model_state_count () =
  let model = Cdr.Model.build_direct small in
  (* full product: 2*max_run * (2K-1) * m *)
  Alcotest.(check int) "full product reachable" (2 * 4 * 5 * 32) model.Cdr.Model.n_states

(* ---------- hierarchy ---------- *)

let test_hierarchy_well_formed () =
  let model = Cdr.Model.build_direct small in
  let h = Cdr.Model.hierarchy model in
  (* sizes chain up and strictly shrink *)
  let rec walk n = function
    | [] -> n
    | (p : Markov.Partition.t) :: rest ->
        Alcotest.(check int) "level size matches" n p.Markov.Partition.n_fine;
        Alcotest.(check bool) "shrinks" true (p.Markov.Partition.n_coarse < n);
        walk p.Markov.Partition.n_coarse rest
  in
  let final = walk model.Cdr.Model.n_states h in
  Alcotest.(check bool) "ends small enough for direct solve" true
    (final <= Markov.Gth.max_direct_size)

let test_hierarchy_lumps_only_phase () =
  (* fine states in the same first-level block share data and counter codes *)
  let model = Cdr.Model.build_direct small in
  match Cdr.Model.hierarchy model with
  | [] -> Alcotest.fail "expected at least one level"
  | p :: _ ->
      let blocks = Markov.Partition.blocks p in
      Array.iter
        (fun members ->
          match members with
          | [] -> Alcotest.fail "empty block"
          | first :: rest ->
              List.iter
                (fun i ->
                  Alcotest.(check int) "same data" (model.Cdr.Model.data_code first)
                    (model.Cdr.Model.data_code i);
                  Alcotest.(check int) "same counter" (model.Cdr.Model.counter_code first)
                    (model.Cdr.Model.counter_code i);
                  Alcotest.(check int) "adjacent phase" (model.Cdr.Model.phase_bin first / 2)
                    (model.Cdr.Model.phase_bin i / 2))
                rest)
        blocks

(* ---------- solve & BER ---------- *)

let test_solvers_agree_on_model () =
  let model = Cdr.Model.build_direct small in
  let mg = Cdr.Model.solve ~tol:1e-12 model in
  let power = Cdr.Model.solve ~solver:`Power ~tol:1e-12 model in
  let gs = Cdr.Model.solve ~solver:`Gauss_seidel ~tol:1e-12 model in
  Alcotest.(check bool) "mg converged" true mg.Markov.Solution.converged;
  Alcotest.(check bool) "mg-power" true
    (Linalg.Vec.dist_l1 mg.Markov.Solution.pi power.Markov.Solution.pi < 1e-8);
  Alcotest.(check bool) "mg-gs" true
    (Linalg.Vec.dist_l1 mg.Markov.Solution.pi gs.Markov.Solution.pi < 1e-8)

let test_phase_marginal_sums_to_one () =
  let model = Cdr.Model.build_direct small in
  let sol = Cdr.Model.solve model in
  let rho = Cdr.Model.phase_marginal model ~pi:sol.Markov.Solution.pi in
  check_float ~eps:1e-9 "mass" 1.0 (Linalg.Vec.sum rho);
  Alcotest.(check int) "length" small.Cdr.Config.grid_points (Array.length rho)

let test_ber_tail_probability () =
  (* phase at the eye edge: tail = half; phase at center: tiny *)
  let cfg = { small with Cdr.Config.sigma_w = 0.05 } in
  check_float ~eps:1e-6 "center"
    (2.0 *. Prob.Gaussian.q (0.5 /. 0.05))
    (Cdr.Ber.tail_probability cfg ~phase:0.0);
  Alcotest.(check bool) "edge ~ 1/2" true
    (abs_float (Cdr.Ber.tail_probability cfg ~phase:0.5 -. 0.5) < 1e-6);
  (* sigma = 0: no error strictly inside the eye *)
  check_float "deterministic inside" 0.0
    (Cdr.Ber.tail_probability { cfg with Cdr.Config.sigma_w = 0.0 } ~phase:0.49)

let test_ber_marginal_vs_convolution () =
  (* with a fine n_w discretization both estimates agree in the regime where
     the convolution can resolve the tail *)
  let cfg = { small with Cdr.Config.sigma_w = 0.2; nw_max_atoms = 201 } in
  let model = Cdr.Model.build_direct cfg in
  let result, _ = Cdr.Ber.analyze model in
  let conv = Cdr.Ber.of_convolution cfg ~rho:result.Cdr.Ber.phase_density in
  Alcotest.(check bool) "same order of magnitude" true
    (conv > 0.0
    && abs_float (log10 conv -. log10 result.Cdr.Ber.ber) < 0.3)

let test_ber_increases_with_sigma () =
  let ber_at sigma =
    let cfg = { small with Cdr.Config.sigma_w = sigma } in
    let model = Cdr.Model.build_direct cfg in
    let result, _ = Cdr.Ber.analyze model in
    result.Cdr.Ber.ber
  in
  let b1 = ber_at 0.05 and b2 = ber_at 0.1 and b3 = ber_at 0.2 in
  Alcotest.(check bool) "monotone" true (b1 < b2 && b2 < b3);
  Alcotest.(check bool) "orders of magnitude" true (b3 /. b1 > 1e3)

let test_eye_density_mass () =
  let model = Cdr.Model.build_direct small in
  let result, _ = Cdr.Ber.analyze model in
  let mass = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 result.Cdr.Ber.eye_density in
  check_float ~eps:1e-9 "eye density mass" 1.0 mass

(* ---------- cycle slips ---------- *)

let test_cycle_slip_measures () =
  (* crank the drift so slips happen often enough to measure *)
  let cfg =
    {
      small with
      Cdr.Config.sigma_w = 0.15;
      nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.6 ();
    }
  in
  let model = Cdr.Model.build_direct cfg in
  let sol = Cdr.Model.solve model in
  let rate = Cdr.Cycle_slip.rate model ~pi:sol.Markov.Solution.pi in
  Alcotest.(check bool) "positive rate" true (rate > 0.0);
  let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:sol.Markov.Solution.pi in
  check_float ~eps:1e-6 "mtbf = 1/rate" (1.0 /. rate) mtbf;
  let first = Cdr.Cycle_slip.mean_first_slip_time model in
  Alcotest.(check bool) "first slip positive" true (first > 0.0);
  (* the first-passage time from lock and the stationary recurrence time
     agree within an order of magnitude for this strongly-driven loop *)
  Alcotest.(check bool) "same scale" true
    (first /. mtbf > 0.05 && first /. mtbf < 20.0)

let test_slip_rate_increases_with_drift () =
  let rate_for mean_steps =
    let cfg =
      { small with Cdr.Config.nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps () }
    in
    let model = Cdr.Model.build_direct cfg in
    let sol = Cdr.Model.solve model in
    Cdr.Cycle_slip.rate model ~pi:sol.Markov.Solution.pi
  in
  Alcotest.(check bool) "monotone in drift" true (rate_for 0.6 > rate_for 0.3)

(* ---------- clock jitter & acquisition ---------- *)

let test_clock_jitter_statistics () =
  let model = Cdr.Model.build_direct small in
  let sol = Cdr.Model.solve model in
  let jitter = Cdr.Clock_jitter.analyze ~lags:16 model ~pi:sol.Markov.Solution.pi in
  Alcotest.(check bool) "rms positive" true (jitter.Cdr.Clock_jitter.rms_ui > 0.0);
  Alcotest.(check bool) "rms below peak-to-peak" true
    (jitter.Cdr.Clock_jitter.rms_ui < jitter.Cdr.Clock_jitter.peak_to_peak_ui);
  check_float ~eps:1e-9 "autocorrelation starts at 1" 1.0
    jitter.Cdr.Clock_jitter.autocorrelation.(0);
  Alcotest.(check int) "lags" 17 (Array.length jitter.Cdr.Clock_jitter.autocorrelation)

let test_clock_jitter_grows_with_sigma () =
  let rms_at sigma =
    let cfg = { small with Cdr.Config.sigma_w = sigma } in
    let model = Cdr.Model.build_direct cfg in
    let sol = Cdr.Model.solve model in
    (Cdr.Clock_jitter.analyze ~lags:4 model ~pi:sol.Markov.Solution.pi).Cdr.Clock_jitter.rms_ui
  in
  Alcotest.(check bool) "monotone" true (rms_at 0.05 < rms_at 0.2)

let test_jitter_spectrum () =
  let model = Cdr.Model.build_direct small in
  let sol = Cdr.Model.solve model in
  let pi = sol.Markov.Solution.pi in
  let lags = 64 in
  let psd = Cdr.Clock_jitter.spectrum ~lags model ~pi in
  (* frequencies run 0 .. 1/2 *)
  let f0, _ = psd.(0) and fend, _ = psd.(Array.length psd - 1) in
  check_float "dc" 0.0 f0;
  check_float "nyquist" 0.5 fend;
  (* the mean of the two-sided spectrum is exactly the autocovariance at lag
     0, i.e. the stationary phase variance (inverse DFT at 0, taper(0) = 1) *)
  let n = 2 * (Array.length psd - 1) in
  let two_sided_sum =
    snd psd.(0) +. snd psd.(Array.length psd - 1)
    +. (2.0
       *. Array.fold_left ( +. ) 0.0
            (Array.init (Array.length psd - 2) (fun k -> snd psd.(k + 1))))
  in
  let variance =
    Markov.Stat.variance ~pi ~f:(fun i ->
        Cdr.Config.phase_of_bin small (model.Cdr.Model.phase_bin i))
  in
  check_float ~eps:1e-10 "wiener-khinchin closure" variance (two_sided_sum /. float_of_int n);
  (* the loop is a low-pass system: jitter power concentrates at low
     frequency *)
  Alcotest.(check bool) "low-pass" true (snd psd.(1) > snd psd.(Array.length psd - 1))

let test_acquisition_times () =
  let model = Cdr.Model.build_direct small in
  let acq = Cdr.Acquisition.analyze model in
  Alcotest.(check bool) "worst positive" true (acq.Cdr.Acquisition.mean_from_worst_phase > 0.0);
  Alcotest.(check bool) "edge below worst" true
    (acq.Cdr.Acquisition.mean_from_half_ui <= acq.Cdr.Acquisition.mean_from_worst_phase +. 1e-9);
  (* phases already inside the band acquire in 0 *)
  let inside =
    Array.to_list acq.Cdr.Acquisition.per_phase_bin
    |> List.filter (fun (phi, _) -> abs_float phi <= acq.Cdr.Acquisition.lock_band_ui)
  in
  List.iter (fun (_, t) -> check_float ~eps:1e-9 "in band" 0.0 t) inside

let test_acquisition_band_validation () =
  let model = Cdr.Model.build_direct small in
  Alcotest.(check bool) "bad band" true
    (try ignore (Cdr.Acquisition.analyze ~lock_band_ui:0.6 model); false
     with Invalid_argument _ -> true)

(* ---------- cross-subsystem integration ---------- *)

let test_model_persistence_roundtrip () =
  (* a built CDR chain survives save/load exactly, and the reloaded chain
     solves to the same stationary distribution *)
  let model = Cdr.Model.build_direct small in
  let path = Filename.temp_file "cdr_model" ".chain" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Markov.Io.save_chain path model.Cdr.Model.chain;
      match Markov.Io.load_chain path with
      | Error msg -> Alcotest.fail msg
      | Ok reloaded ->
          (* file contents are exact (%h), but Chain.of_csr re-normalizes
             rows on load, which can move entries by one ulp *)
          Alcotest.(check bool) "TPM equal to 1 ulp" true
            (Sparse.Csr.equal ~tol:1e-15 (Markov.Chain.tpm model.Cdr.Model.chain)
               (Markov.Chain.tpm reloaded));
          let sol = Cdr.Model.solve ~solver:`Gauss_seidel ~tol:1e-11 model in
          let sol' =
            Markov.Splitting.solve ~method_:Markov.Splitting.Gauss_seidel ~tol:1e-11 reloaded
          in
          check_float ~eps:1e-9 "same stationary vector" 0.0
            (Linalg.Vec.dist_l1 sol.Markov.Solution.pi sol'.Markov.Solution.pi))

let test_censor_cdr_on_data_pattern () =
  (* condition the loop on "the data bit is 0": censoring the chain to those
     states must reproduce pi( . | bit = 0) exactly *)
  let model = Cdr.Model.build_direct small in
  let keep i =
    (Cdr.Data_source.decode small (model.Cdr.Model.data_code i)).Cdr.Data_source.bit = 0
  in
  let sol = Cdr.Model.solve ~tol:1e-13 model in
  let pi = sol.Markov.Solution.pi in
  let censored, kept = Markov.Censor.stochastic_complement model.Cdr.Model.chain ~keep in
  let censored_pi = Markov.Gth.solve censored in
  let conditional = Markov.Censor.conditional_stationary model.Cdr.Model.chain ~pi ~keep in
  Alcotest.(check int) "half the states kept" (model.Cdr.Model.n_states / 2) (Array.length kept);
  check_float ~eps:1e-8 "conditional stationarity on the CDR chain" 0.0
    (Linalg.Vec.dist_l1 censored_pi conditional)

let test_multigrid_random_block_chain () =
  (* the generic default hierarchy on an unstructured chain large enough to
     recurse: agreement with Gauss-Seidel to solver tolerance *)
  let n = 1200 in
  let rng = Prob.Rng.create ~seed:77L in
  let acc = Sparse.Coo.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    (* a ring backbone keeps it irreducible; a few random shortcuts make it
       unstructured *)
    Sparse.Coo.add acc ~row:i ~col:((i + 1) mod n) 0.5;
    Sparse.Coo.add acc ~row:i ~col:i 0.3;
    Sparse.Coo.add acc ~row:i ~col:(Prob.Rng.int rng ~bound:n) 0.2
  done;
  let chain = Markov.Chain.of_csr (Sparse.Coo.to_csr acc) in
  let hierarchy = Markov.Multigrid.default_hierarchy ~n ~coarsest:Markov.Gth.max_direct_size in
  let mg, stats = Markov.Multigrid.solve ~tol:1e-11 ~hierarchy chain in
  let gs = Markov.Splitting.solve ~method_:Markov.Splitting.Gauss_seidel ~tol:1e-12 chain in
  Alcotest.(check bool) "recursed" true (stats.Markov.Multigrid.levels >= 2);
  Alcotest.(check bool) "converged" true mg.Markov.Solution.converged;
  check_float ~eps:1e-8 "matches gauss-seidel" 0.0
    (Linalg.Vec.dist_l1 mg.Markov.Solution.pi gs.Markov.Solution.pi)

(* ---------- activity ---------- *)

(* activity needs the selector step to dominate n_r: use 4 phases (G = 8 bins) *)
let active = { small with Cdr.Config.n_phases = 4 }

let test_activity_metrics () =
  let model = Cdr.Model.build_direct active in
  let sol = Cdr.Model.solve model in
  let pi = sol.Markov.Solution.pi in
  let a = Cdr.Activity.analyze model ~pi in
  (* data transitions: p = 1/2 with forced transitions at run 4 -> slightly
     above 1/2, and it must match the exact standalone computation *)
  check_float ~eps:1e-9 "transition density"
    (Cdr.Data_source.transition_probability active)
    a.Cdr.Activity.data_transition_density;
  (* decisions happen only on transitions *)
  Alcotest.(check bool) "decisions below transitions" true
    (a.Cdr.Activity.detector_activity <= a.Cdr.Activity.data_transition_density +. 1e-12);
  (* the counter needs at least K same-direction decisions per correction *)
  Alcotest.(check bool) "corrections bounded by decisions / K" true
    (a.Cdr.Activity.correction_rate
    <= (a.Cdr.Activity.detector_activity /. float_of_int active.Cdr.Config.counter_length) +. 1e-9);
  Alcotest.(check bool) "corrections happen" true (a.Cdr.Activity.correction_rate > 0.0);
  check_float ~eps:1e-9 "mtbc inverse" (1.0 /. a.Cdr.Activity.correction_rate)
    a.Cdr.Activity.mean_bits_between_corrections

let test_activity_drift_balance () =
  (* exact stationarity identity on the torus: the mean signed phase motion
     per bit vanishes, i.e. G * (advance rate - retard rate) + E[n_r] = 0 up
     to the (negligible) wrap-around flux *)
  let model = Cdr.Model.build_direct active in
  let sol = Cdr.Model.solve ~tol:1e-12 model in
  let pi = sol.Markov.Solution.pi in
  let cfg = active in
  let m = cfg.Cdr.Config.grid_points in
  let signed_move =
    Markov.Reward.transition_rate model.Cdr.Model.chain ~pi ~reward:(fun i j ->
        let d =
          ((model.Cdr.Model.phase_bin j - model.Cdr.Model.phase_bin i + (m / 2)) mod m + m) mod m
          - (m / 2)
        in
        float_of_int d)
  in
  check_float ~eps:1e-6 "zero net motion" 0.0 signed_move

let test_activity_guard () =
  (* n_r half as wide as the selector step: corrections are not identifiable *)
  let cfg = small in
  let model = Cdr.Model.build_direct cfg in
  let sol = Cdr.Model.solve model in
  Alcotest.(check bool) "guarded" true
    (try ignore (Cdr.Activity.analyze model ~pi:sol.Markov.Solution.pi); false
     with Invalid_argument _ -> true)

(* ---------- second-order (frequency-tracking) loop ---------- *)

let drifty =
  {
    small with
    Cdr.Config.nw_max_atoms = 17;
    sigma_w = 0.08;
    nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.8 ();
  }

let test_freq_track_stochastic () =
  let t = Cdr.Freq_track.build ~params:{ Cdr.Freq_track.max_f = 1; adapt_length = 3 } drifty in
  let sums = Sparse.Csr.row_sums (Markov.Chain.tpm t.Cdr.Freq_track.chain) in
  Array.iter (fun s -> check_float ~eps:1e-12 "stochastic" 1.0 s) sums;
  Alcotest.(check int) "state blow-up factor"
    (Cdr.Model.build_direct drifty).Cdr.Model.n_states
    (t.Cdr.Freq_track.n_states / (3 * 5))

let test_freq_register_cancels_drift () =
  let t = Cdr.Freq_track.build ~params:{ Cdr.Freq_track.max_f = 1; adapt_length = 3 } drifty in
  let sol = Cdr.Freq_track.solve ~tol:1e-8 t in
  let pi = sol.Markov.Solution.pi in
  (* the register spends most of its time at the drift-cancelling value *)
  let marg = Cdr.Freq_track.freq_marginal t ~pi in
  let p_plus_one = snd (Array.get marg 2) in
  Alcotest.(check bool) "register locks near +1" true (p_plus_one > 0.5);
  (* and beats the first-order loop on both metrics *)
  let first = Cdr.Model.build_direct drifty in
  let sol1 = Cdr.Model.solve first in
  let rho1 = Cdr.Model.phase_marginal first ~pi:sol1.Markov.Solution.pi in
  let ber1 = Cdr.Ber.of_marginal drifty ~rho:rho1 in
  let slip1 = Cdr.Cycle_slip.rate first ~pi:sol1.Markov.Solution.pi in
  Alcotest.(check bool) "lower BER" true (Cdr.Freq_track.ber t ~pi < ber1);
  Alcotest.(check bool) "fewer slips" true (Cdr.Freq_track.slip_rate t ~pi < slip1)

let test_freq_track_idle_without_drift () =
  (* with a zero-mean symmetric environment the register stays centered
     (a small symmetric wander keeps the chain irreducible) *)
  let quiet =
    { drifty with Cdr.Config.nr = Prob.Jitter.symmetric_wander ~max_steps:1 ~rms_steps:0.4 }
  in
  let t = Cdr.Freq_track.build ~params:{ Cdr.Freq_track.max_f = 1; adapt_length = 3 } quiet in
  let sol = Cdr.Freq_track.solve ~tol:1e-8 t in
  let marg = Cdr.Freq_track.freq_marginal t ~pi:sol.Markov.Solution.pi in
  let p_zero = snd (Array.get marg 1) in
  Alcotest.(check bool) "register mostly centered" true (p_zero > 0.4);
  (* symmetric noise: +1 and -1 occupancy balance *)
  let p_minus = snd (Array.get marg 0) and p_plus = snd (Array.get marg 2) in
  Alcotest.(check bool) "symmetric occupancy" true (abs_float (p_plus -. p_minus) < 0.05)

let test_freq_track_validation () =
  Alcotest.(check bool) "bad adapt" true
    (try
       ignore (Cdr.Freq_track.build ~params:{ Cdr.Freq_track.max_f = 1; adapt_length = 0 } small);
       false
     with Invalid_argument _ -> true)

(* ---------- scenarios ---------- *)

let test_scenarios_well_formed () =
  List.iter
    (fun s ->
      match Cdr.Config.validate s.Cdr.Scenario.config with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (s.Cdr.Scenario.name ^ ": " ^ msg))
    Cdr.Scenario.all;
  Alcotest.(check bool) "lookup" true (Cdr.Scenario.find "sonet-multiplexer" <> None);
  Alcotest.(check bool) "unknown" true (Cdr.Scenario.find "nope" = None)

let test_scenario_story () =
  (* the paper's narrative: the nominal design meets 1e-10, the
     interference-degraded one misses it *)
  let nominal, _ = Cdr.Scenario.meets_specification Cdr.Scenario.sonet_multiplexer in
  let noisy, noisy_ber = Cdr.Scenario.meets_specification Cdr.Scenario.sonet_multiplexer_noisy in
  Alcotest.(check bool) "nominal passes" true nominal;
  Alcotest.(check bool) "noisy fails" false noisy;
  Alcotest.(check bool) "failure is within a couple of decades" true
    (noisy_ber < 1e-7 && noisy_ber > 1e-10)

(* ---------- jitter tolerance ---------- *)

let test_tolerance_monotone_probes () =
  let cfg = { small with Cdr.Config.sigma_w = 0.05 } in
  let result = Cdr.Tolerance.analyze ~ber_target:1e-9 ~max_amplitude_bins:6 cfg in
  Alcotest.(check bool) "tolerance in range" true
    (result.Cdr.Tolerance.tolerance_bins >= 0 && result.Cdr.Tolerance.tolerance_bins <= 6);
  (* every probe at or below the tolerance meets the target; the first probe
     above it fails (bisection invariant) *)
  List.iter
    (fun p ->
      if p.Cdr.Tolerance.amplitude_bins <= result.Cdr.Tolerance.tolerance_bins then
        Alcotest.(check bool) "meets target" true (p.Cdr.Tolerance.ber <= 1e-9))
    result.Cdr.Tolerance.probes;
  check_float ~eps:1e-12 "ui conversion"
    (float_of_int result.Cdr.Tolerance.tolerance_bins *. Cdr.Config.delta cfg)
    result.Cdr.Tolerance.tolerance_ui

let test_tolerance_shrinks_with_target () =
  let cfg = { small with Cdr.Config.sigma_w = 0.05 } in
  let loose = Cdr.Tolerance.analyze ~ber_target:1e-6 ~max_amplitude_bins:6 cfg in
  let tight = Cdr.Tolerance.analyze ~ber_target:1e-12 ~max_amplitude_bins:6 cfg in
  Alcotest.(check bool) "tighter target, smaller tolerance" true
    (tight.Cdr.Tolerance.tolerance_bins <= loose.Cdr.Tolerance.tolerance_bins)

let test_tolerance_validation () =
  Alcotest.(check bool) "bad target" true
    (try ignore (Cdr.Tolerance.analyze ~ber_target:2.0 small); false
     with Invalid_argument _ -> true)

(* ---------- report & sweep ---------- *)

let test_report_lines () =
  let report = Cdr.Report.run small in
  let header = Cdr.Report.header_line report in
  Alcotest.(check bool) "header mentions counter" true
    (String.length header > 0 && String.sub header 0 8 = "COUNTER:");
  let footer = Cdr.Report.footer_line report in
  Alcotest.(check bool) "footer mentions size" true (String.sub footer 0 5 = "Size:");
  Alcotest.(check bool) "density table non-empty" true
    (String.length (Cdr.Report.density_table report) > 100)

let test_sweep_counter () =
  let points = Cdr.Sweep.counter_lengths small [ 2; 3; 4 ] in
  Alcotest.(check int) "three points" 3 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "ber sane" true
        (p.Cdr.Sweep.report.Cdr.Report.ber >= 0.0 && p.Cdr.Sweep.report.Cdr.Report.ber <= 1.0))
    points

(* ---------- properties ---------- *)

let small_cfg_gen =
  let open QCheck2.Gen in
  let* grid_exp = int_range 4 5 in
  let* n_phases = oneofl [ 4; 8 ] in
  let* counter_length = int_range 2 4 in
  let* max_run = int_range 2 5 in
  let* sigma_w = float_range 0.02 0.25 in
  let* mean_steps = float_range 0.0 0.5 in
  let* detector_dead_zone = int_range 0 2 in
  let grid_points = 1 lsl grid_exp in
  return
    {
      Cdr.Config.default with
      Cdr.Config.grid_points;
      n_phases;
      counter_length;
      max_run;
      sigma_w;
      detector_dead_zone;
      nw_max_atoms = 17;
      nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps ();
    }

let prop_model_stochastic =
  QCheck2.Test.make ~name:"cdr chains are stochastic with full reachability" ~count:20
    small_cfg_gen (fun cfg ->
      let model = Cdr.Model.build_direct cfg in
      let sums = Sparse.Csr.row_sums (Markov.Chain.tpm model.Cdr.Model.chain) in
      Array.for_all (fun s -> abs_float (s -. 1.0) < 1e-12) sums)

let prop_direct_equals_network =
  QCheck2.Test.make ~name:"direct and network constructions agree" ~count:10 small_cfg_gen
    (fun cfg ->
      models_equal (Cdr.Model.build_direct cfg) (Cdr.Model.build_via_network cfg))

let prop_ber_in_range =
  QCheck2.Test.make ~name:"ber lies in [0, 1]" ~count:10 small_cfg_gen (fun cfg ->
      let model = Cdr.Model.build_direct cfg in
      let result, _ = Cdr.Ber.analyze model in
      result.Cdr.Ber.ber >= 0.0 && result.Cdr.Ber.ber <= 1.0)

let () =
  Alcotest.run "cdr"
    [
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_config_default_valid;
          Alcotest.test_case "rejections" `Quick test_config_rejections;
          Alcotest.test_case "geometry" `Quick test_config_geometry;
          Alcotest.test_case "nw pmf capped" `Quick test_config_nw_pmf_capped;
        ] );
      ( "data-source",
        [
          Alcotest.test_case "encode roundtrip" `Quick test_data_source_encode_roundtrip;
          Alcotest.test_case "forced transition" `Quick test_data_source_forced_transition;
          Alcotest.test_case "transition probability" `Quick test_data_source_transition_probability;
        ] );
      ( "phase-detector",
        [
          Alcotest.test_case "decisions" `Quick test_detector_decisions;
          Alcotest.test_case "lead prob vs gaussian" `Quick test_detector_lead_probability_matches_gaussian;
          Alcotest.test_case "lead prob monotone" `Quick test_detector_lead_monotone_in_phase;
          Alcotest.test_case "dead zone" `Quick test_detector_dead_zone;
          Alcotest.test_case "dead-zone model consistent" `Quick test_dead_zone_model_consistent;
        ] );
      ("counter", [ Alcotest.test_case "overflow behaviour" `Quick test_counter_overflow_behaviour ]);
      ( "phase-error",
        [
          Alcotest.test_case "wrap/crossing" `Quick test_phase_wrap_and_crossing;
          Alcotest.test_case "update directions" `Quick test_phase_update_directions;
        ] );
      ( "model",
        [
          Alcotest.test_case "direct = network" `Slow test_direct_equals_network;
          Alcotest.test_case "irreducible" `Quick test_model_chain_is_irreducible;
          Alcotest.test_case "state count" `Quick test_model_state_count;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "well-formed" `Quick test_hierarchy_well_formed;
          Alcotest.test_case "lumps only phase" `Quick test_hierarchy_lumps_only_phase;
        ] );
      ( "ber",
        [
          Alcotest.test_case "solvers agree" `Slow test_solvers_agree_on_model;
          Alcotest.test_case "marginal mass" `Quick test_phase_marginal_sums_to_one;
          Alcotest.test_case "tail probability" `Quick test_ber_tail_probability;
          Alcotest.test_case "marginal vs convolution" `Slow test_ber_marginal_vs_convolution;
          Alcotest.test_case "monotone in sigma" `Slow test_ber_increases_with_sigma;
          Alcotest.test_case "eye density mass" `Quick test_eye_density_mass;
        ] );
      ( "cycle-slip",
        [
          Alcotest.test_case "measures" `Slow test_cycle_slip_measures;
          Alcotest.test_case "monotone in drift" `Slow test_slip_rate_increases_with_drift;
        ] );
      ( "clock-jitter-acquisition",
        [
          Alcotest.test_case "jitter statistics" `Quick test_clock_jitter_statistics;
          Alcotest.test_case "jitter monotone in sigma" `Slow test_clock_jitter_grows_with_sigma;
          Alcotest.test_case "jitter spectrum" `Quick test_jitter_spectrum;
          Alcotest.test_case "acquisition times" `Quick test_acquisition_times;
          Alcotest.test_case "band validation" `Quick test_acquisition_band_validation;
        ] );
      ( "integration",
        [
          Alcotest.test_case "persistence roundtrip" `Quick test_model_persistence_roundtrip;
          Alcotest.test_case "censor on data pattern" `Slow test_censor_cdr_on_data_pattern;
          Alcotest.test_case "multigrid on unstructured chain" `Quick test_multigrid_random_block_chain;
        ] );
      ( "activity",
        [
          Alcotest.test_case "metrics" `Quick test_activity_metrics;
          Alcotest.test_case "drift balance identity" `Slow test_activity_drift_balance;
          Alcotest.test_case "identifiability guard" `Quick test_activity_guard;
        ] );
      ( "freq-track",
        [
          Alcotest.test_case "stochastic" `Quick test_freq_track_stochastic;
          Alcotest.test_case "cancels drift" `Slow test_freq_register_cancels_drift;
          Alcotest.test_case "idle without drift" `Slow test_freq_track_idle_without_drift;
          Alcotest.test_case "validation" `Quick test_freq_track_validation;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "well-formed" `Quick test_scenarios_well_formed;
          Alcotest.test_case "paper narrative" `Slow test_scenario_story;
        ] );
      ( "tolerance",
        [
          Alcotest.test_case "bisection invariant" `Slow test_tolerance_monotone_probes;
          Alcotest.test_case "shrinks with target" `Slow test_tolerance_shrinks_with_target;
          Alcotest.test_case "validation" `Quick test_tolerance_validation;
        ] );
      ( "report-sweep",
        [
          Alcotest.test_case "report lines" `Quick test_report_lines;
          Alcotest.test_case "counter sweep" `Slow test_sweep_counter;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_model_stochastic; prop_direct_equals_network; prop_ber_in_range ] );
    ]

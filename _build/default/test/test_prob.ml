(* Unit and property tests for pmfs, Gaussian utilities, jitter models and
   the PRNG. *)

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ---------- Pmf ---------- *)

let test_pmf_normalizes () =
  let p = Prob.Pmf.create [ (0, 2.0); (1, 2.0) ] in
  check_float "half" 0.5 (Prob.Pmf.prob p 0);
  check_float "absent" 0.0 (Prob.Pmf.prob p 7)

let test_pmf_merges_duplicates () =
  let p = Prob.Pmf.create [ (3, 1.0); (3, 1.0); (5, 2.0) ] in
  Alcotest.(check int) "two atoms" 2 (Prob.Pmf.cardinal p);
  check_float "merged" 0.5 (Prob.Pmf.prob p 3)

let test_pmf_rejects_bad_weights () =
  Alcotest.check_raises "negative" (Invalid_argument "Pmf.create: invalid weight -1 for label 0")
    (fun () -> ignore (Prob.Pmf.create [ (0, -1.0) ]));
  Alcotest.check_raises "all zero" (Invalid_argument "Pmf.create: total weight is zero") (fun () ->
      ignore (Prob.Pmf.create [ (0, 0.0) ]))

let test_pmf_moments () =
  let p = Prob.Pmf.bernoulli ~p:0.25 1 0 in
  check_float "mean" 0.25 (Prob.Pmf.mean p);
  check_float "variance" (0.25 *. 0.75) (Prob.Pmf.variance p)

let test_pmf_convolve () =
  (* sum of two fair coins: binomial(2, 1/2) *)
  let coin = Prob.Pmf.uniform [ 0; 1 ] in
  let s = Prob.Pmf.convolve coin coin in
  check_float "p(0)" 0.25 (Prob.Pmf.prob s 0);
  check_float "p(1)" 0.5 (Prob.Pmf.prob s 1);
  check_float "p(2)" 0.25 (Prob.Pmf.prob s 2)

let test_pmf_map_labels_collision () =
  let p = Prob.Pmf.uniform [ -1; 1 ] in
  let folded = Prob.Pmf.map_labels abs p in
  Alcotest.(check int) "collapsed" 1 (Prob.Pmf.cardinal folded);
  check_float "all mass" 1.0 (Prob.Pmf.prob folded 1)

let test_pmf_cdf_tail () =
  let p = Prob.Pmf.uniform [ 1; 2; 3; 4 ] in
  check_float "cdf" 0.5 (Prob.Pmf.cdf_le p 2);
  check_float "tail" 0.5 (Prob.Pmf.prob_gt p 2)

(* ---------- Gaussian ---------- *)

let test_erf_known_values () =
  (* reference values from Abramowitz & Stegun *)
  check_float ~eps:1e-12 "erf(0)" 0.0 (Prob.Gaussian.erf 0.0);
  check_float ~eps:1e-10 "erf(1)" 0.8427007929497149 (Prob.Gaussian.erf 1.0);
  check_float ~eps:1e-10 "erf(2)" 0.9953222650189527 (Prob.Gaussian.erf 2.0);
  check_float ~eps:1e-10 "erfc(3)" 2.209049699858544e-5 (Prob.Gaussian.erfc 3.0)

let test_erfc_deep_tail () =
  (* deep tail must stay accurate in *relative* terms: Q(10), Q(20) *)
  let q10 = Prob.Gaussian.q 10.0 in
  let reference = 7.619853024160527e-24 in
  Alcotest.(check bool) "Q(10) relative error < 1e-10" true
    (abs_float ((q10 -. reference) /. reference) < 1e-10);
  let q20 = Prob.Gaussian.q 20.0 in
  let reference20 = 2.7536241186062337e-89 in
  Alcotest.(check bool) "Q(20) relative error < 1e-10" true
    (abs_float ((q20 -. reference20) /. reference20) < 1e-10)

let test_erfc_symmetry () =
  check_float ~eps:1e-12 "erfc(-x) = 2 - erfc(x)" 2.0
    (Prob.Gaussian.erfc 1.3 +. Prob.Gaussian.erfc (-1.3))

let test_gaussian_cdf () =
  check_float ~eps:1e-12 "median" 0.5 (Prob.Gaussian.cdf ~mean:2.0 ~sigma:3.0 2.0);
  check_float ~eps:1e-10 "one sigma" 0.8413447460685429 (Prob.Gaussian.cdf ~mean:0.0 ~sigma:1.0 1.0)

let test_tail_beyond () =
  check_float ~eps:1e-10 "two-sided sigma" (2.0 *. Prob.Gaussian.q 1.0)
    (Prob.Gaussian.tail_beyond ~sigma:0.5 0.5);
  check_float "sigma=0 inside" 0.0 (Prob.Gaussian.tail_beyond ~sigma:0.0 0.1)

let test_discretize_mass_and_moments () =
  let pmf = Prob.Gaussian.discretize ~sigma:1.0 ~step:0.05 () in
  let mass = Prob.Pmf.fold pmf ~init:0.0 ~f:(fun a _ w -> a +. w) in
  check_float ~eps:1e-12 "mass 1" 1.0 mass;
  check_float ~eps:1e-9 "mean 0" 0.0 (Prob.Pmf.mean pmf);
  (* variance in physical units: label^2 * step^2 *)
  let var = Prob.Pmf.variance pmf *. 0.05 *. 0.05 in
  Alcotest.(check bool) "variance close to 1" true (abs_float (var -. 1.0) < 0.01)

let test_discretize_zero_sigma () =
  let pmf = Prob.Gaussian.discretize ~sigma:0.0 ~step:0.1 () in
  check_float "point mass" 1.0 (Prob.Pmf.prob pmf 0)

(* ---------- Jitter ---------- *)

let test_drift_mean () =
  let p = Prob.Jitter.drift ~max_steps:3 ~mean_steps:0.2 () in
  check_float ~eps:1e-12 "mean" 0.2 (Prob.Pmf.mean p);
  Alcotest.(check int) "bounded" 3 (Prob.Pmf.max_support p);
  Alcotest.(check int) "non-negative" 0 (Prob.Pmf.min_support p)

let test_drift_shapes () =
  List.iter
    (fun shape ->
      let p = Prob.Jitter.drift ~max_steps:4 ~mean_steps:0.5 ~shape () in
      check_float ~eps:1e-12 "mean preserved" 0.5 (Prob.Pmf.mean p))
    [ `Peaked; `Uniform; `Ramp ]

let test_drift_degenerate () =
  let p = Prob.Jitter.drift ~max_steps:0 ~mean_steps:0.0 () in
  check_float "point" 1.0 (Prob.Pmf.prob p 0)

let test_drift_unreachable_mean () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Prob.Jitter.drift ~max_steps:2 ~mean_steps:1.9 ());
       false
     with Invalid_argument _ -> true)

let test_wander_rms () =
  let p = Prob.Jitter.symmetric_wander ~max_steps:4 ~rms_steps:1.0 in
  check_float ~eps:1e-12 "zero mean" 0.0 (Prob.Pmf.mean p);
  check_float ~eps:1e-9 "rms" 1.0 (sqrt (Prob.Pmf.variance p))

let test_sinusoidal_arcsine () =
  let p = Prob.Jitter.sinusoidal_equivalent ~amplitude_steps:10 in
  check_float ~eps:1e-12 "zero mean" 0.0 (Prob.Pmf.mean p);
  (* arcsine law piles mass at the edges *)
  Alcotest.(check bool) "edges heavier than center" true
    (Prob.Pmf.prob p 10 > Prob.Pmf.prob p 0)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Prob.Rng.create ~seed:42L and b = Prob.Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prob.Rng.bits64 a) (Prob.Rng.bits64 b)
  done

let test_rng_float_range () =
  let rng = Prob.Rng.create ~seed:7L in
  for _ = 1 to 1000 do
    let u = Prob.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_rng_int_bounds () =
  let rng = Prob.Rng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Prob.Rng.int rng ~bound:13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "non-positive" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prob.Rng.int rng ~bound:0))

let test_rng_gaussian_moments () =
  let rng = Prob.Rng.create ~seed:11L in
  let n = 200_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Prob.Rng.gaussian rng ~mean:1.0 ~sigma:2.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 1" true (abs_float (mean -. 1.0) < 0.03);
  Alcotest.(check bool) "var ~ 4" true (abs_float (var -. 4.0) < 0.1)

let test_rng_pmf_frequencies () =
  let rng = Prob.Rng.create ~seed:3L in
  let pmf = Prob.Pmf.create [ (0, 0.5); (1, 0.3); (2, 0.2) ] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Prob.Rng.pmf rng pmf in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun k expected ->
      let freq = float_of_int counts.(k) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "freq of %d" k)
        true
        (abs_float (freq -. expected) < 0.01))
    [| 0.5; 0.3; 0.2 |]

(* ---------- properties ---------- *)

let pmf_gen =
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* entries =
    list_size (return n)
      (pair (int_range (-20) 20) (float_range 0.01 5.0))
  in
  return (Prob.Pmf.create entries)

let prop_convolve_mean_additive =
  let gen = QCheck2.Gen.pair pmf_gen pmf_gen in
  QCheck2.Test.make ~name:"pmf: mean of convolution adds" ~count:200 gen (fun (a, b) ->
      let s = Prob.Pmf.convolve a b in
      abs_float (Prob.Pmf.mean s -. (Prob.Pmf.mean a +. Prob.Pmf.mean b)) < 1e-9)

let prop_convolve_variance_additive =
  let gen = QCheck2.Gen.pair pmf_gen pmf_gen in
  QCheck2.Test.make ~name:"pmf: variance of convolution adds" ~count:200 gen (fun (a, b) ->
      let s = Prob.Pmf.convolve a b in
      abs_float (Prob.Pmf.variance s -. (Prob.Pmf.variance a +. Prob.Pmf.variance b)) < 1e-7)

let prop_cdf_monotone =
  QCheck2.Test.make ~name:"pmf: cdf monotone, ends at 1" ~count:200 pmf_gen (fun p ->
      let lo = Prob.Pmf.min_support p and hi = Prob.Pmf.max_support p in
      let ok = ref (abs_float (Prob.Pmf.cdf_le p hi -. 1.0) < 1e-12) in
      for x = lo to hi - 1 do
        if Prob.Pmf.cdf_le p x > Prob.Pmf.cdf_le p (x + 1) +. 1e-12 then ok := false
      done;
      !ok)

let prop_erfc_decreasing =
  QCheck2.Test.make ~name:"gaussian: erfc decreasing" ~count:200
    QCheck2.Gen.(pair (float_range (-5.0) 5.0) (float_range 0.001 2.0))
    (fun (x, dx) -> Prob.Gaussian.erfc (x +. dx) <= Prob.Gaussian.erfc x +. 1e-15)

let () =
  Alcotest.run "prob"
    [
      ( "pmf",
        [
          Alcotest.test_case "normalizes" `Quick test_pmf_normalizes;
          Alcotest.test_case "merges duplicates" `Quick test_pmf_merges_duplicates;
          Alcotest.test_case "rejects bad weights" `Quick test_pmf_rejects_bad_weights;
          Alcotest.test_case "moments" `Quick test_pmf_moments;
          Alcotest.test_case "convolve" `Quick test_pmf_convolve;
          Alcotest.test_case "map_labels collision" `Quick test_pmf_map_labels_collision;
          Alcotest.test_case "cdf/tail" `Quick test_pmf_cdf_tail;
        ] );
      ( "gaussian",
        [
          Alcotest.test_case "erf known values" `Quick test_erf_known_values;
          Alcotest.test_case "deep tail relative accuracy" `Quick test_erfc_deep_tail;
          Alcotest.test_case "erfc symmetry" `Quick test_erfc_symmetry;
          Alcotest.test_case "cdf" `Quick test_gaussian_cdf;
          Alcotest.test_case "tail_beyond" `Quick test_tail_beyond;
          Alcotest.test_case "discretize mass/moments" `Quick test_discretize_mass_and_moments;
          Alcotest.test_case "discretize sigma=0" `Quick test_discretize_zero_sigma;
        ] );
      ( "jitter",
        [
          Alcotest.test_case "drift mean" `Quick test_drift_mean;
          Alcotest.test_case "drift shapes" `Quick test_drift_shapes;
          Alcotest.test_case "drift degenerate" `Quick test_drift_degenerate;
          Alcotest.test_case "drift unreachable mean" `Quick test_drift_unreachable_mean;
          Alcotest.test_case "wander rms" `Quick test_wander_rms;
          Alcotest.test_case "sinusoidal arcsine" `Quick test_sinusoidal_arcsine;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "pmf frequencies" `Slow test_rng_pmf_frequencies;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_convolve_mean_additive;
            prop_convolve_variance_additive;
            prop_cdf_monotone;
            prop_erfc_decreasing;
          ] );
    ]

(* Unit and property tests for the sparse-matrix substrate. *)

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let dense_of_list rows cols entries =
  let a = Linalg.Mat.create ~rows ~cols in
  List.iter (fun (i, j, v) -> Linalg.Mat.set a i j v) entries;
  a

(* ---------- Coo ---------- *)

let test_coo_duplicates_merge () =
  let acc = Sparse.Coo.create ~rows:2 ~cols:2 in
  Sparse.Coo.add acc ~row:0 ~col:1 0.25;
  Sparse.Coo.add acc ~row:0 ~col:1 0.25;
  Sparse.Coo.add acc ~row:1 ~col:0 1.0;
  let m = Sparse.Coo.to_csr acc in
  Alcotest.(check int) "nnz after merge" 2 (Sparse.Csr.nnz m);
  check_float "merged value" 0.5 (Sparse.Csr.get m 0 1)

let test_coo_zero_cancellation () =
  let acc = Sparse.Coo.create ~rows:1 ~cols:1 in
  Sparse.Coo.add acc ~row:0 ~col:0 1.0;
  Sparse.Coo.add acc ~row:0 ~col:0 (-1.0);
  let m = Sparse.Coo.to_csr acc in
  Alcotest.(check int) "cancelled entry dropped" 0 (Sparse.Csr.nnz m)

let test_coo_bounds () =
  let acc = Sparse.Coo.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "row out of bounds" (Invalid_argument "Coo.add: (2,0) out of 2x2")
    (fun () -> Sparse.Coo.add acc ~row:2 ~col:0 1.0)

let test_coo_growth () =
  let acc = Sparse.Coo.create ~rows:10 ~cols:10 in
  for k = 0 to 99 do
    Sparse.Coo.add acc ~row:(k mod 10) ~col:(k / 10) (float_of_int k)
  done;
  Alcotest.(check int) "kept all" 100 (Sparse.Coo.nnz acc);
  let m = Sparse.Coo.to_csr acc in
  check_float "spot value" 57.0 (Sparse.Csr.get m 7 5)

(* ---------- Csr ---------- *)

let sample_csr () =
  Sparse.Csr.of_dense
    (dense_of_list 3 3 [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0); (2, 0, 4.0); (2, 2, 5.0) ])

let test_csr_roundtrip () =
  let d = dense_of_list 3 4 [ (0, 1, 1.5); (2, 3, -2.0); (1, 0, 7.0) ] in
  let m = Sparse.Csr.of_dense d in
  Alcotest.(check bool) "roundtrip" true (Linalg.Mat.equal d (Sparse.Csr.to_dense m))

let test_csr_get () =
  let m = sample_csr () in
  check_float "present" 2.0 (Sparse.Csr.get m 0 2);
  check_float "absent" 0.0 (Sparse.Csr.get m 0 1);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Csr.get: out of bounds") (fun () ->
      ignore (Sparse.Csr.get m 3 0))

let test_csr_mul_vec () =
  let m = sample_csr () in
  let y = Sparse.Csr.mul_vec m [| 1.0; 1.0; 1.0 |] in
  check_float "row0" 3.0 y.(0);
  check_float "row1" 3.0 y.(1);
  check_float "row2" 9.0 y.(2)

let test_csr_vec_mul () =
  let m = sample_csr () in
  let y = Sparse.Csr.vec_mul [| 1.0; 1.0; 1.0 |] m in
  check_float "col0" 5.0 y.(0);
  check_float "col1" 3.0 y.(1);
  check_float "col2" 7.0 y.(2)

let test_csr_transpose () =
  let m = sample_csr () in
  let t = Sparse.Csr.transpose m in
  check_float "transposed entry" 4.0 (Sparse.Csr.get t 0 2);
  Alcotest.(check bool) "involution" true
    (Sparse.Csr.equal m (Sparse.Csr.transpose t))

let test_csr_row_sums () =
  let sums = Sparse.Csr.row_sums (sample_csr ()) in
  check_float "row2 sum" 9.0 sums.(2)

let test_csr_scale_rows () =
  let m = Sparse.Csr.scale_rows (sample_csr ()) [| 2.0; 0.0; 1.0 |] in
  check_float "scaled" 4.0 (Sparse.Csr.get m 0 2);
  check_float "zeroed (structure kept)" 0.0 (Sparse.Csr.get m 1 1)

let test_csr_add () =
  let a = sample_csr () in
  let b = Sparse.Csr.identity 3 in
  let s = Sparse.Csr.add a b in
  check_float "diag" 2.0 (Sparse.Csr.get s 0 0);
  check_float "new diag" 1.0 (Sparse.Csr.get s 1 1 -. 3.0);
  check_float "off-diag untouched" 2.0 (Sparse.Csr.get s 0 2)

let test_csr_invalid_structure () =
  Alcotest.check_raises "unsorted columns"
    (Invalid_argument "Csr: columns not strictly increasing within a row") (fun () ->
      ignore
        (Sparse.Csr.unsafe_make ~rows:1 ~cols:3 ~row_ptr:[| 0; 2 |] ~col_idx:[| 2; 1 |]
           ~values:[| 1.0; 1.0 |]))

(* ---------- Kron ---------- *)

let test_kron_known () =
  (* [[0 1];[1 0]] (x) I2 = permutation of 4 states swapping blocks *)
  let swap = Sparse.Csr.of_dense (dense_of_list 2 2 [ (0, 1, 1.0); (1, 0, 1.0) ]) in
  let k = Sparse.Kron.product swap (Sparse.Csr.identity 2) in
  Alcotest.(check int) "size" 4 (Sparse.Csr.rows k);
  check_float "block swap" 1.0 (Sparse.Csr.get k 0 2);
  check_float "block swap" 1.0 (Sparse.Csr.get k 3 1)

let test_kron_stochastic_closure () =
  (* kron of two stochastic matrices is stochastic *)
  let a = Sparse.Csr.of_dense (dense_of_list 2 2 [ (0, 0, 0.3); (0, 1, 0.7); (1, 0, 1.0) ]) in
  let b =
    Sparse.Csr.of_dense (dense_of_list 3 3 [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 0.5); (2, 2, 0.5) ])
  in
  let k = Sparse.Kron.product a b in
  Array.iter (fun s -> check_float "row sum" 1.0 s) (Sparse.Csr.row_sums k)

let test_kron_empty_list () =
  Alcotest.check_raises "empty" (Invalid_argument "Kron.product_list: empty list") (fun () ->
      ignore (Sparse.Kron.product_list []))

(* ---------- Kron_op (matrix-free shuffle algorithm) ---------- *)

let stochastic2 p =
  Sparse.Csr.of_dense (dense_of_list 2 2 [ (0, 0, 1.0 -. p); (0, 1, p); (1, 0, p); (1, 1, 1.0 -. p) ])

let test_kron_op_matches_materialized () =
  let a = stochastic2 0.3 and b = stochastic2 0.7 in
  let cyc =
    Sparse.Csr.of_dense (dense_of_list 3 3 [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0) ])
  in
  let op = Sparse.Kron_op.term [ a; b; cyc ] in
  Alcotest.(check int) "dim" 12 (Sparse.Kron_op.dim op);
  let x = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let via_op = Sparse.Kron_op.apply op x in
  let via_matrix = Sparse.Csr.vec_mul x (Sparse.Kron_op.to_csr op) in
  check_float ~eps:1e-10 "same product" 0.0 (Linalg.Vec.dist_l1 via_op via_matrix)

let test_kron_op_sum () =
  let a = stochastic2 0.3 in
  let i2 = Sparse.Csr.identity 2 in
  (* (1/2)(A (x) I) + (1/2)(I (x) A) is again stochastic *)
  let op =
    Sparse.Kron_op.sum
      [ Sparse.Kron_op.term ~coeff:0.5 [ a; i2 ]; Sparse.Kron_op.term ~coeff:0.5 [ i2; a ] ]
  in
  let x = [| 0.4; 0.3; 0.2; 0.1 |] in
  let y = Sparse.Kron_op.apply op x in
  check_float ~eps:1e-12 "mass preserved" 1.0 (Linalg.Vec.sum y);
  let via_matrix = Sparse.Csr.vec_mul x (Sparse.Kron_op.to_csr op) in
  check_float ~eps:1e-12 "matches matrix" 0.0 (Linalg.Vec.dist_l1 y via_matrix)

let test_kron_op_stationary () =
  (* independent product chain: stationary distribution is the product of
     component stationary distributions *)
  let a = stochastic2 0.3 and b = stochastic2 0.2 in
  let op = Sparse.Kron_op.term [ a; b ] in
  match Sparse.Kron_op.stationary ~tol:1e-13 op with
  | Error msg -> Alcotest.fail msg
  | Ok (pi, _, residual) ->
      Alcotest.(check bool) "converged" true (residual <= 1e-13);
      (* both components are symmetric, so the product is uniform *)
      Array.iter (fun v -> check_float ~eps:1e-10 "uniform" 0.25 v) pi

let test_kron_op_rejects_non_stochastic () =
  let bad = Sparse.Csr.of_dense (dense_of_list 2 2 [ (0, 0, 0.9); (1, 1, 0.9) ]) in
  match Sparse.Kron_op.stationary (Sparse.Kron_op.term [ bad ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection of a sub-stochastic operator"

let test_kron_op_validation () =
  Alcotest.(check bool) "empty" true
    (try ignore (Sparse.Kron_op.term []); false with Invalid_argument _ -> true);
  let rect = Sparse.Csr.of_dense (dense_of_list 2 3 [ (0, 0, 1.0) ]) in
  Alcotest.(check bool) "non-square" true
    (try ignore (Sparse.Kron_op.term [ rect ]); false with Invalid_argument _ -> true)

(* ---------- Spy ---------- *)

let test_spy_shapes () =
  let s = Sparse.Spy.render ~width:8 ~height:4 (Sparse.Csr.identity 100) in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "height+trailing" 5 (List.length lines);
  (* identity: diagonal cells non-empty, corners empty *)
  Alcotest.(check bool) "corner empty" true ((List.nth lines 0).[7] = ' ');
  Alcotest.(check bool) "diag marked" true ((List.nth lines 0).[0] <> ' ')

(* ---------- properties ---------- *)

let random_dense_gen =
  let open QCheck2.Gen in
  let* rows = int_range 1 10 in
  let* cols = int_range 1 10 in
  let* entries =
    array_size (return (rows * cols))
      (frequency [ (3, return 0.0); (1, float_range (-5.0) 5.0) ])
  in
  return (Linalg.Mat.init ~rows ~cols (fun i j -> entries.((i * cols) + j)))

let prop_spmv_matches_dense =
  QCheck2.Test.make ~name:"csr: vec_mul/mul_vec match dense" ~count:200 random_dense_gen
    (fun d ->
      let m = Sparse.Csr.of_dense d in
      let x = Array.init (Linalg.Mat.cols d) (fun i -> float_of_int (i + 1)) in
      let xr = Array.init (Linalg.Mat.rows d) (fun i -> float_of_int (i + 1)) in
      let sparse_av = Sparse.Csr.mul_vec m x and dense_av = Linalg.Mat.mul_vec d x in
      let sparse_va = Sparse.Csr.vec_mul xr m and dense_va = Linalg.Mat.vec_mul xr d in
      Linalg.Vec.dist_l1 sparse_av dense_av < 1e-9 && Linalg.Vec.dist_l1 sparse_va dense_va < 1e-9)

let prop_transpose_matches_dense =
  QCheck2.Test.make ~name:"csr: transpose matches dense" ~count:200 random_dense_gen (fun d ->
      let m = Sparse.Csr.of_dense d in
      Linalg.Mat.equal (Linalg.Mat.transpose d) (Sparse.Csr.to_dense (Sparse.Csr.transpose m)))

let prop_kron_op_matches_matrix =
  (* matrix-free shuffle product == materialized Kronecker product *)
  let gen =
    let open QCheck2.Gen in
    let* sizes = list_size (int_range 1 3) (int_range 1 4) in
    let* factors =
      flatten_l
        (List.map
           (fun n ->
             let* entries =
               array_size (return (n * n))
                 (frequency [ (2, return 0.0); (1, float_range (-2.0) 2.0) ])
             in
             return
               (Sparse.Csr.of_dense
                  (Linalg.Mat.init ~rows:n ~cols:n (fun i j -> entries.((i * n) + j)))))
           sizes)
    in
    let* coeff = float_range (-2.0) 2.0 in
    return (coeff, factors)
  in
  QCheck2.Test.make ~name:"kron_op: shuffle apply matches materialized matrix" ~count:100 gen
    (fun (coeff, factors) ->
      let op = Sparse.Kron_op.term ~coeff factors in
      let n = Sparse.Kron_op.dim op in
      let x = Array.init n (fun i -> float_of_int ((i mod 5) - 2)) in
      let via_op = Sparse.Kron_op.apply op x in
      let via_matrix = Sparse.Csr.vec_mul x (Sparse.Kron_op.to_csr op) in
      Linalg.Vec.dist_l1 via_op via_matrix < 1e-9)

let prop_kron_matches_dense =
  let gen =
    let open QCheck2.Gen in
    let* a = random_dense_gen in
    let* b = random_dense_gen in
    return (a, b)
  in
  QCheck2.Test.make ~name:"kron: matches dense definition" ~count:50 gen (fun (da, db) ->
      let k = Sparse.Kron.product (Sparse.Csr.of_dense da) (Sparse.Csr.of_dense db) in
      let expected =
        Linalg.Mat.init
          ~rows:(Linalg.Mat.rows da * Linalg.Mat.rows db)
          ~cols:(Linalg.Mat.cols da * Linalg.Mat.cols db)
          (fun i j ->
            let rb = Linalg.Mat.rows db and cb = Linalg.Mat.cols db in
            Linalg.Mat.get da (i / rb) (j / cb) *. Linalg.Mat.get db (i mod rb) (j mod cb))
      in
      Linalg.Mat.equal ~tol:1e-12 expected (Sparse.Csr.to_dense k))

let () =
  Alcotest.run "sparse"
    [
      ( "coo",
        [
          Alcotest.test_case "duplicates merge" `Quick test_coo_duplicates_merge;
          Alcotest.test_case "zero cancellation" `Quick test_coo_zero_cancellation;
          Alcotest.test_case "bounds" `Quick test_coo_bounds;
          Alcotest.test_case "growth" `Quick test_coo_growth;
        ] );
      ( "csr",
        [
          Alcotest.test_case "dense roundtrip" `Quick test_csr_roundtrip;
          Alcotest.test_case "get" `Quick test_csr_get;
          Alcotest.test_case "mul_vec" `Quick test_csr_mul_vec;
          Alcotest.test_case "vec_mul" `Quick test_csr_vec_mul;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "row_sums" `Quick test_csr_row_sums;
          Alcotest.test_case "scale_rows" `Quick test_csr_scale_rows;
          Alcotest.test_case "add" `Quick test_csr_add;
          Alcotest.test_case "invalid structure rejected" `Quick test_csr_invalid_structure;
        ] );
      ( "kron",
        [
          Alcotest.test_case "known product" `Quick test_kron_known;
          Alcotest.test_case "stochastic closure" `Quick test_kron_stochastic_closure;
          Alcotest.test_case "empty list" `Quick test_kron_empty_list;
        ] );
      ( "kron-op",
        [
          Alcotest.test_case "matches materialized" `Quick test_kron_op_matches_materialized;
          Alcotest.test_case "sum of terms" `Quick test_kron_op_sum;
          Alcotest.test_case "stationary" `Quick test_kron_op_stationary;
          Alcotest.test_case "rejects non-stochastic" `Quick test_kron_op_rejects_non_stochastic;
          Alcotest.test_case "validation" `Quick test_kron_op_validation;
        ] );
      ("spy", [ Alcotest.test_case "render shape" `Quick test_spy_shapes ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_spmv_matches_dense;
            prop_transpose_matches_dense;
            prop_kron_matches_dense;
            prop_kron_op_matches_matrix;
          ] );
    ]

(* Tests for the Markov-chain engine: chain validation, all stationary
   solvers against analytic results and each other, lumping, first-passage
   computations, and statistics of state functions. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let chain_of_rows rows =
  Markov.Chain.of_dense (Linalg.Mat.of_arrays rows)

(* Two-state chain with flip probabilities a, b: pi = (b, a) / (a + b),
   subdominant eigenvalue 1 - a - b. *)
let two_state a b = chain_of_rows [| [| 1.0 -. a; a |]; [| b; 1.0 -. b |] |]

let two_state_pi a b = [| b /. (a +. b); a /. (a +. b) |]

(* Random-walk-with-reflection birth-death chain of n states: detailed
   balance gives pi_i proportional to (p/q)^i. *)
let birth_death ~n ~p =
  let q = 1.0 -. p in
  let acc = Sparse.Coo.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    if i = 0 then begin
      Sparse.Coo.add acc ~row:0 ~col:0 q;
      Sparse.Coo.add acc ~row:0 ~col:1 p
    end
    else if i = n - 1 then begin
      Sparse.Coo.add acc ~row:i ~col:(i - 1) q;
      Sparse.Coo.add acc ~row:i ~col:i p
    end
    else begin
      Sparse.Coo.add acc ~row:i ~col:(i - 1) q;
      Sparse.Coo.add acc ~row:i ~col:(i + 1) p
    end
  done;
  Markov.Chain.of_csr (Sparse.Coo.to_csr acc)

let birth_death_pi ~n ~p =
  let r = p /. (1.0 -. p) in
  let w = Array.init n (fun i -> r ** float_of_int i) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

(* ---------- Chain ---------- *)

let test_chain_rejects_non_square () =
  let m = Sparse.Csr.of_dense (Linalg.Mat.init ~rows:2 ~cols:3 (fun _ _ -> 0.5)) in
  Alcotest.(check bool) "raises" true
    (try ignore (Markov.Chain.of_csr m); false with Markov.Chain.Not_stochastic _ -> true)

let test_chain_rejects_bad_rows () =
  Alcotest.(check bool) "row sum" true
    (try ignore (chain_of_rows [| [| 0.5; 0.4 |]; [| 0.5; 0.5 |] |]); false
     with Markov.Chain.Not_stochastic _ -> true);
  Alcotest.(check bool) "negative" true
    (try ignore (chain_of_rows [| [| 1.5; -0.5 |]; [| 0.5; 0.5 |] |]); false
     with Markov.Chain.Not_stochastic _ -> true)

let test_chain_step_residual () =
  let c = two_state 0.3 0.1 in
  let pi = two_state_pi 0.3 0.1 in
  check_float ~eps:1e-14 "stationary residual" 0.0 (Markov.Chain.residual c pi);
  let next = Markov.Chain.step c [| 1.0; 0.0 |] in
  check_float "step" 0.7 next.(0);
  check_float "step" 0.3 next.(1)

let test_chain_irreducibility () =
  Alcotest.(check bool) "two-state irreducible" true (Markov.Chain.is_irreducible (two_state 0.3 0.1));
  let reducible = chain_of_rows [| [| 1.0; 0.0 |]; [| 0.5; 0.5 |] |] in
  Alcotest.(check bool) "absorbing not irreducible" false (Markov.Chain.is_irreducible reducible)

(* ---------- individual solvers vs analytic stationary vectors ---------- *)

let solver_cases =
  [
    ("power", fun c -> (Markov.Power.solve ~tol:1e-14 c).Markov.Solution.pi);
    ("arnoldi", fun c -> (Markov.Arnoldi.solve ~tol:1e-13 c).Markov.Solution.pi);
    ( "jacobi",
      fun c -> (Markov.Splitting.solve ~method_:Markov.Splitting.Jacobi ~tol:1e-14 c).Markov.Solution.pi );
    ( "gauss-seidel",
      fun c ->
        (Markov.Splitting.solve ~method_:Markov.Splitting.Gauss_seidel ~tol:1e-14 c).Markov.Solution.pi );
    ( "sor(1.2)",
      fun c ->
        (Markov.Splitting.solve ~method_:(Markov.Splitting.Sor 1.2) ~tol:1e-14 c).Markov.Solution.pi );
    ("gth", fun c -> Markov.Gth.solve c);
  ]

let test_solvers_two_state () =
  let c = two_state 0.3 0.1 in
  let expected = two_state_pi 0.3 0.1 in
  List.iter
    (fun (name, solve) ->
      let pi = solve c in
      check_float ~eps:1e-10 (name ^ " pi0") expected.(0) pi.(0);
      check_float ~eps:1e-10 (name ^ " pi1") expected.(1) pi.(1))
    solver_cases

let test_solvers_birth_death () =
  let n = 20 and p = 0.35 in
  let c = birth_death ~n ~p in
  let expected = birth_death_pi ~n ~p in
  List.iter
    (fun (name, solve) ->
      let pi = solve c in
      check_float ~eps:1e-8 (name ^ " l1 error") 0.0 (Linalg.Vec.dist_l1 pi expected))
    solver_cases

let test_sor_omega_validation () =
  Alcotest.check_raises "omega" (Invalid_argument "Splitting.solve: SOR omega must lie in (0, 2)")
    (fun () ->
      ignore (Markov.Splitting.solve ~method_:(Markov.Splitting.Sor 2.5) (two_state 0.1 0.1)))

let test_gth_reducible_detected () =
  let reducible =
    Linalg.Mat.of_arrays [| [| 0.5; 0.5; 0.0 |]; [| 0.5; 0.5; 0.0 |]; [| 0.0; 0.0; 1.0 |] |]
  in
  Alcotest.(check bool) "failure" true
    (try ignore (Markov.Gth.solve_dense reducible); false with Failure _ -> true)

let test_gth_nearly_uncoupled () =
  (* two 2-cliques joined by 1e-12 couplings: GTH keeps full relative
     accuracy where subtraction-based elimination would lose it *)
  let e = 1e-12 in
  let c =
    chain_of_rows
      [|
        [| 0.5 -. e; 0.5; e; 0.0 |];
        [| 0.5; 0.5 -. e; 0.0; e |];
        [| e; 0.0; 0.5 -. e; 0.5 |];
        [| 0.0; e; 0.5; 0.5 -. e |];
      |]
  in
  let pi = Markov.Gth.solve c in
  (* symmetry: all states equal mass *)
  Array.iter (fun v -> check_float ~eps:1e-13 "symmetric mass" 0.25 v) pi

(* ---------- aggregation & multigrid ---------- *)

let test_aggregation_two_level () =
  let n = 30 and p = 0.4 in
  let c = birth_death ~n ~p in
  let partition = Markov.Partition.pair_consecutive n in
  let sol = Markov.Aggregation.solve ~tol:1e-13 ~partition c in
  Alcotest.(check bool) "converged" true sol.Markov.Solution.converged;
  check_float ~eps:1e-9 "matches analytic" 0.0
    (Linalg.Vec.dist_l1 sol.Markov.Solution.pi (birth_death_pi ~n ~p))

let test_partition_validation () =
  Alcotest.(check bool) "non-contiguous rejected" true
    (try ignore (Markov.Partition.create [| 0; 2 |]); false with Invalid_argument _ -> true);
  let p = Markov.Partition.pair_consecutive 5 in
  Alcotest.(check int) "coarse count" 3 p.Markov.Partition.n_coarse;
  Alcotest.(check int) "odd leftover" 1 (Markov.Partition.block_size p 2)

let test_partition_restrict_prolong () =
  let p = Markov.Partition.pair_consecutive 4 in
  let x = [| 0.1; 0.2; 0.3; 0.4 |] in
  let coarse = Markov.Partition.restrict p x in
  check_float "block0" 0.3 coarse.(0);
  check_float "block1" 0.7 coarse.(1);
  let back = Markov.Partition.prolong p ~coarse ~weights:x in
  check_float ~eps:1e-12 "prolong recovers weights" 0.0 (Linalg.Vec.dist_l1 back x)

let test_prolong_zero_weight_block () =
  let p = Markov.Partition.pair_consecutive 4 in
  let back = Markov.Partition.prolong p ~coarse:[| 0.6; 0.4 |] ~weights:[| 0.0; 0.0; 1.0; 3.0 |] in
  check_float "uniform split" 0.3 back.(0);
  check_float "uniform split" 0.3 back.(1);
  check_float "weighted split" 0.1 back.(2)

let test_multigrid_large_birth_death () =
  (* large enough that the V-cycle actually recurses past GTH's direct size *)
  let n = 1500 and p = 0.45 in
  let c = birth_death ~n ~p in
  let hierarchy = Markov.Multigrid.default_hierarchy ~n ~coarsest:128 in
  let sol, stats = Markov.Multigrid.solve ~tol:1e-12 ~hierarchy c in
  Alcotest.(check bool) "converged" true sol.Markov.Solution.converged;
  Alcotest.(check bool) "recursed" true (stats.Markov.Multigrid.levels >= 2);
  Alcotest.(check bool) "coarsest small" true
    (stats.Markov.Multigrid.coarsest_size <= Markov.Gth.max_direct_size);
  check_float ~eps:1e-7 "matches analytic" 0.0
    (Linalg.Vec.dist_l1 sol.Markov.Solution.pi (birth_death_pi ~n ~p))

let test_multigrid_hierarchy_validation () =
  let c = birth_death ~n:10 ~p:0.3 in
  let bad = [ Markov.Partition.pair_consecutive 8 ] in
  Alcotest.(check bool) "size mismatch rejected" true
    (try ignore (Markov.Multigrid.solve ~hierarchy:bad c); false with Invalid_argument _ -> true)

let test_default_hierarchy_shrinks () =
  let h = Markov.Multigrid.default_hierarchy ~n:1000 ~coarsest:100 in
  let sizes =
    List.fold_left (fun acc (p : Markov.Partition.t) -> p.Markov.Partition.n_coarse :: acc) [ 1000 ] h
  in
  (* sizes accumulated in reverse: last computed is head *)
  (match sizes with
  | final :: _ -> Alcotest.(check bool) "reaches coarsest" true (final <= 100)
  | [] -> Alcotest.fail "empty");
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone shrink" true (strictly_decreasing sizes)

let test_arnoldi_faster_than_power_on_stiff_chain () =
  (* slowly mixing chain: Krylov extraction needs ~30x fewer operator
     applications than plain power iteration (600 vs ~20000 here) *)
  let n = 200 and p = 0.48 in
  let c = birth_death ~n ~p in
  let arnoldi = Markov.Arnoldi.solve ~tol:1e-10 ~subspace:30 c in
  let power = Markov.Power.solve ~tol:1e-10 ~max_iter:500_000 c in
  Alcotest.(check bool) "arnoldi converged" true arnoldi.Markov.Solution.converged;
  Alcotest.(check bool) "fewer applications" true
    (arnoldi.Markov.Solution.iterations < power.Markov.Solution.iterations);
  check_float ~eps:1e-6 "same answer" 0.0
    (Linalg.Vec.dist_l1 arnoldi.Markov.Solution.pi power.Markov.Solution.pi)

let test_arnoldi_small_chain () =
  (* subspace larger than the chain dimension must still work *)
  let c = two_state 0.2 0.4 in
  let sol = Markov.Arnoldi.solve ~subspace:50 c in
  check_float ~eps:1e-10 "pi" 0.0 (Linalg.Vec.dist_l1 sol.Markov.Solution.pi (two_state_pi 0.2 0.4))

(* ---------- lumpability ---------- *)

let test_exact_lumping () =
  (* block-symmetric chain: states {0,1} and {2,3} interchangeable *)
  let c =
    chain_of_rows
      [|
        [| 0.1; 0.3; 0.3; 0.3 |];
        [| 0.3; 0.1; 0.3; 0.3 |];
        [| 0.25; 0.25; 0.2; 0.3 |];
        [| 0.25; 0.25; 0.3; 0.2 |];
      |]
  in
  let partition = Markov.Partition.pair_consecutive 4 in
  Alcotest.(check bool) "lumpable" true (Markov.Lump.is_lumpable c partition);
  match Markov.Lump.lump c partition with
  | Error msg -> Alcotest.fail msg
  | Ok lumped ->
      check_float "block self" 0.4 (Markov.Chain.transition_prob lumped 0 0);
      check_float "cross" 0.6 (Markov.Chain.transition_prob lumped 0 1);
      (* lumped stationary distribution = aggregated fine stationary *)
      let fine_pi = Markov.Gth.solve c in
      let coarse_pi = Markov.Gth.solve lumped in
      let restricted = Markov.Partition.restrict partition fine_pi in
      check_float ~eps:1e-12 "pi consistent" 0.0 (Linalg.Vec.dist_l1 coarse_pi restricted)

let test_not_lumpable_detected () =
  let c = birth_death ~n:4 ~p:0.3 in
  let partition = Markov.Partition.pair_consecutive 4 in
  Alcotest.(check bool) "birth-death pairing not lumpable" false
    (Markov.Lump.is_lumpable c partition)

(* ---------- passage ---------- *)

let test_hitting_time_two_state () =
  (* expected time to reach state 1 from state 0 with flip prob a: 1/a *)
  let a = 0.25 in
  let c = two_state a 0.5 in
  let m = Markov.Passage.mean_hitting_times c ~target:(fun i -> i = 1) in
  check_float ~eps:1e-8 "1/a" (1.0 /. a) m.(0);
  check_float "target itself" 0.0 m.(1)

let test_hitting_time_ring () =
  (* deterministic 5-cycle: hitting time of state 0 from state i is 5 - i *)
  let n = 5 in
  let acc = Sparse.Coo.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    Sparse.Coo.add acc ~row:i ~col:((i + 1) mod n) 1.0
  done;
  let c = Markov.Chain.of_csr (Sparse.Coo.to_csr acc) in
  let m = Markov.Passage.mean_hitting_times c ~target:(fun i -> i = 0) in
  for i = 1 to n - 1 do
    check_float ~eps:1e-9 (Printf.sprintf "from %d" i) (float_of_int (n - i)) m.(i)
  done

let test_gamblers_ruin () =
  (* fair gambler's ruin on 0..4 with absorbing ends: P(hit 4 before 0 | start i) = i/4 *)
  let n = 5 in
  let acc = Sparse.Coo.create ~rows:n ~cols:n in
  Sparse.Coo.add acc ~row:0 ~col:0 1.0;
  Sparse.Coo.add acc ~row:(n - 1) ~col:(n - 1) 1.0;
  for i = 1 to n - 2 do
    Sparse.Coo.add acc ~row:i ~col:(i - 1) 0.5;
    Sparse.Coo.add acc ~row:i ~col:(i + 1) 0.5
  done;
  let c = Markov.Chain.of_csr (Sparse.Coo.to_csr acc) in
  let h = Markov.Passage.absorption_probabilities c ~a:(fun i -> i = n - 1) ~b:(fun i -> i = 0) in
  for i = 0 to n - 1 do
    check_float ~eps:1e-9 (Printf.sprintf "ruin from %d" i) (float_of_int i /. 4.0) h.(i)
  done

let test_kac_return_time () =
  (* stationary flux out of a set equals flux in *)
  let c = birth_death ~n:8 ~p:0.4 in
  let pi = Markov.Gth.solve c in
  let in_a i = i < 2 in
  let flux_out = Markov.Passage.flux c ~pi ~crossing:(fun i j -> in_a i && not (in_a j)) in
  let flux_in = Markov.Passage.flux c ~pi ~crossing:(fun i j -> (not (in_a i)) && in_a j) in
  check_float ~eps:1e-12 "flux balance" flux_out flux_in

let test_flux_total () =
  let c = two_state 0.3 0.1 in
  let pi = two_state_pi 0.3 0.1 in
  check_float ~eps:1e-12 "total flux is 1" 1.0 (Markov.Passage.flux c ~pi ~crossing:(fun _ _ -> true))

let test_empty_target_rejected () =
  Alcotest.check_raises "empty target" (Invalid_argument "Passage: empty target set") (fun () ->
      ignore (Markov.Passage.mean_hitting_times (two_state 0.1 0.1) ~target:(fun _ -> false)))

(* ---------- censoring ---------- *)

let test_censor_two_state_identity () =
  (* keeping everything returns the same chain *)
  let c = two_state 0.3 0.1 in
  let censored, kept = Markov.Censor.stochastic_complement c ~keep:(fun _ -> true) in
  Alcotest.(check int) "all kept" 2 (Array.length kept);
  Alcotest.(check bool) "same chain" true
    (Sparse.Csr.equal (Markov.Chain.tpm censored) (Markov.Chain.tpm c))

let test_censor_conditional_stationary () =
  (* the censored chain's stationary distribution equals pi conditioned on
     the kept set — the defining property of stochastic complementation *)
  let c = birth_death ~n:12 ~p:0.4 in
  let pi = Markov.Gth.solve c in
  let keep i = i mod 3 <> 0 in
  let censored, kept = Markov.Censor.stochastic_complement c ~keep in
  let censored_pi = Markov.Gth.solve censored in
  let conditional = Markov.Censor.conditional_stationary c ~pi ~keep in
  Alcotest.(check int) "kept count" 8 (Array.length kept);
  check_float ~eps:1e-10 "conditional stationarity" 0.0
    (Linalg.Vec.dist_l1 censored_pi conditional)

let test_censor_rows_stochastic () =
  let c = birth_death ~n:9 ~p:0.25 in
  let censored, _ = Markov.Censor.stochastic_complement c ~keep:(fun i -> i < 4) in
  Array.iter
    (fun s -> check_float ~eps:1e-10 "stochastic" 1.0 s)
    (Sparse.Csr.row_sums (Markov.Chain.tpm censored))

let test_censor_empty_keep_rejected () =
  Alcotest.(check bool) "rejected" true
    (try ignore (Markov.Censor.stochastic_complement (two_state 0.1 0.1) ~keep:(fun _ -> false)); false
     with Invalid_argument _ -> true)

(* ---------- rewards ---------- *)

let test_reward_long_run_average () =
  let pi = [| 0.25; 0.75 |] in
  check_float "average" 1.75 (Markov.Reward.long_run_average ~pi ~reward:(fun i -> float_of_int (i + 1)))

let test_reward_transition_rate () =
  (* counting every transition gives rate 1; counting only self-loops gives
     the expected self-loop mass *)
  let c = two_state 0.3 0.1 in
  let pi = two_state_pi 0.3 0.1 in
  check_float ~eps:1e-12 "all transitions" 1.0
    (Markov.Reward.transition_rate c ~pi ~reward:(fun _ _ -> 1.0));
  let self_mass =
    Markov.Reward.transition_rate c ~pi ~reward:(fun i j -> if i = j then 1.0 else 0.0)
  in
  check_float ~eps:1e-12 "self loops" ((0.25 *. 0.7) +. (0.75 *. 0.9)) self_mass

let test_reward_accumulated_is_hitting_time () =
  (* reward = 1 reduces to the mean hitting time *)
  let c = birth_death ~n:10 ~p:0.45 in
  let target i = i = 9 in
  let hit = Markov.Passage.mean_hitting_times ~tol:1e-9 c ~target in
  let acc = Markov.Reward.accumulated_before ~tol:1e-9 c ~target ~reward:(fun _ -> 1.0) in
  let rel = abs_float (acc.(0) -. hit.(0)) /. (1.0 +. hit.(0)) in
  Alcotest.(check bool) (Printf.sprintf "agrees (rel %.2e)" rel) true (rel < 1e-5)

let test_reward_discounted_constant () =
  (* constant reward 1: v = 1 / (1 - gamma) in every state *)
  let c = two_state 0.3 0.2 in
  let gamma = 0.9 in
  let v = Markov.Reward.discounted c ~gamma ~reward:(fun _ -> 1.0) in
  Array.iter (fun x -> check_float ~eps:1e-9 "geometric sum" 10.0 x) v;
  Alcotest.(check bool) "gamma validated" true
    (try ignore (Markov.Reward.discounted c ~gamma:1.0 ~reward:(fun _ -> 1.0)); false
     with Invalid_argument _ -> true)

let test_reward_discounted_bellman () =
  (* the result satisfies the Bellman fixed point v = r + gamma P v *)
  let c = birth_death ~n:7 ~p:0.3 in
  let gamma = 0.8 in
  let reward i = float_of_int (i * i) in
  let v = Markov.Reward.discounted c ~gamma ~reward in
  let pv = Sparse.Csr.mul_vec (Markov.Chain.tpm c) v in
  Array.iteri
    (fun i x -> check_float ~eps:1e-9 "fixed point" x (reward i +. (gamma *. pv.(i))))
    v

(* ---------- io ---------- *)

let test_io_chain_roundtrip () =
  let c = birth_death ~n:17 ~p:0.3 in
  let path = Filename.temp_file "cdr_markov_test" ".chain" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Markov.Io.save_chain path c;
      match Markov.Io.load_chain path with
      | Error msg -> Alcotest.fail msg
      | Ok c' ->
          Alcotest.(check int) "size" (Markov.Chain.n_states c) (Markov.Chain.n_states c');
          Alcotest.(check bool) "exact round-trip" true
            (Sparse.Csr.equal (Markov.Chain.tpm c) (Markov.Chain.tpm c')))

let test_io_vector_roundtrip () =
  let x = [| 0.125; 1e-300; 0.875; 3.14159265358979 |] in
  let path = Filename.temp_file "cdr_markov_test" ".vec" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Markov.Io.write_vector oc x;
      close_out oc;
      let ic = open_in path in
      let back = Markov.Io.read_vector ic in
      close_in ic;
      match back with
      | Error msg -> Alcotest.fail msg
      | Ok y -> Alcotest.(check bool) "exact" true (x = y))

let test_io_rejects_garbage () =
  let path = Filename.temp_file "cdr_markov_test" ".chain" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a chain\n";
      close_out oc;
      Alcotest.(check bool) "rejected" true (Result.is_error (Markov.Io.load_chain path)))

(* ---------- evolution ---------- *)

let test_evolution_distribution_at () =
  let c = two_state 0.3 0.1 in
  let one_step = Markov.Evolution.distribution_at c ~initial:[| 1.0; 0.0 |] ~steps:1 in
  check_float "p0" 0.7 one_step.(0);
  check_float "p1" 0.3 one_step.(1);
  let zero_steps = Markov.Evolution.distribution_at c ~initial:[| 1.0; 0.0 |] ~steps:0 in
  check_float "identity at 0 steps" 1.0 zero_steps.(0)

let test_evolution_distance_monotone () =
  let c = birth_death ~n:12 ~p:0.4 in
  let pi = Markov.Gth.solve c in
  let initial = Array.init 12 (fun i -> if i = 0 then 1.0 else 0.0) in
  let d = Markov.Evolution.distance_to_stationarity c ~initial ~pi ~steps:50 in
  for k = 0 to 49 do
    Alcotest.(check bool) "non-increasing" true (d.(k + 1) <= d.(k) +. 1e-12)
  done;
  Alcotest.(check bool) "decays" true (d.(50) < d.(0))

let test_evolution_settling_time () =
  let c = two_state 0.3 0.2 in
  let pi = two_state_pi 0.3 0.2 in
  (match Markov.Evolution.settling_time ~epsilon:1e-6 c ~initial:[| 1.0; 0.0 |] ~pi with
  | Some k ->
      (* the two-state TV distance decays exactly as |1 - a - b|^k * d(0) *)
      let lambda = 0.5 in
      let d0 = 0.5 *. Linalg.Vec.dist_l1 [| 1.0; 0.0 |] pi in
      let expected = int_of_float (ceil (log (1e-6 /. d0) /. log lambda)) in
      Alcotest.(check bool) "close to analytic" true (abs (k - expected) <= 1)
  | None -> Alcotest.fail "did not settle");
  (* starting at stationarity settles immediately *)
  match Markov.Evolution.settling_time c ~initial:(Array.copy pi) ~pi with
  | Some 0 -> ()
  | Some k -> Alcotest.fail (Printf.sprintf "expected 0, got %d" k)
  | None -> Alcotest.fail "did not settle"

(* ---------- spectral ---------- *)

let test_subdominant_two_state () =
  (* the two-state chain has exactly one other eigenvalue: 1 - a - b *)
  let a = 0.3 and b = 0.2 in
  let est = Markov.Spectral.subdominant (two_state a b) in
  Alcotest.(check bool) "converged" true est.Markov.Spectral.converged;
  check_float ~eps:1e-6 "lambda2" (1.0 -. a -. b) est.Markov.Spectral.modulus

let test_subdominant_bounds () =
  let est = Markov.Spectral.subdominant (birth_death ~n:25 ~p:0.45) in
  Alcotest.(check bool) "in (0,1)" true
    (est.Markov.Spectral.modulus > 0.0 && est.Markov.Spectral.modulus < 1.0);
  Alcotest.(check bool) "mixing time positive" true (est.Markov.Spectral.mixing_time > 0.0)

let test_subdominant_stiffer_is_larger () =
  (* slower-mixing chains have subdominant modulus closer to 1 *)
  let fast = Markov.Spectral.subdominant (birth_death ~n:10 ~p:0.45) in
  let slow = Markov.Spectral.subdominant (birth_death ~n:40 ~p:0.45) in
  Alcotest.(check bool) "ordering" true
    (slow.Markov.Spectral.modulus > fast.Markov.Spectral.modulus)

(* ---------- stat ---------- *)

let test_expectation_variance () =
  let pi = [| 0.25; 0.75 |] in
  let f i = float_of_int i in
  check_float "mean" 0.75 (Markov.Stat.expectation ~pi ~f);
  check_float "variance" (0.75 *. 0.25) (Markov.Stat.variance ~pi ~f)

let test_autocovariance_two_state () =
  (* for the two-state chain, corr(f(X_0), f(X_k)) = (1 - a - b)^k exactly *)
  let a = 0.3 and b = 0.2 in
  let c = two_state a b in
  let pi = two_state_pi a b in
  let rho = Markov.Stat.autocorrelation c ~pi ~f:float_of_int ~lags:5 in
  let lambda = 1.0 -. a -. b in
  for k = 0 to 5 do
    check_float ~eps:1e-12 (Printf.sprintf "lag %d" k) (lambda ** float_of_int k) rho.(k)
  done

let test_marginal () =
  let pi = [| 0.1; 0.2; 0.3; 0.4 |] in
  let m = Markov.Stat.marginal ~pi ~label:(fun i -> i mod 2) ~n_labels:2 in
  check_float "even" 0.4 m.(0);
  check_float "odd" 0.6 m.(1)

(* ---------- properties ---------- *)

let random_chain_gen =
  let open QCheck2.Gen in
  let* n = int_range 2 15 in
  let* raw = array_size (return (n * n)) (float_range 0.05 1.0) in
  return
    (Markov.Chain.of_dense ~tol:1.0
       (Linalg.Mat.init ~rows:n ~cols:n (fun i j ->
            let row_sum = ref 0.0 in
            for k = 0 to n - 1 do
              row_sum := !row_sum +. raw.((i * n) + k)
            done;
            raw.((i * n) + j) /. !row_sum)))

let prop_solvers_agree =
  QCheck2.Test.make ~name:"solvers agree on random dense chains" ~count:100 random_chain_gen
    (fun c ->
      let reference = Markov.Gth.solve c in
      List.for_all
        (fun (_, solve) -> Linalg.Vec.dist_l1 (solve c) reference < 1e-7)
        solver_cases)

let prop_stationary_invariance =
  QCheck2.Test.make ~name:"gth output is stationary" ~count:100 random_chain_gen (fun c ->
      Markov.Chain.residual c (Markov.Gth.solve c) < 1e-12)

let prop_aggregation_consistency =
  QCheck2.Test.make ~name:"aggregation with exact weights reproduces restriction" ~count:100
    random_chain_gen (fun c ->
      let n = Markov.Chain.n_states c in
      let pi = Markov.Gth.solve c in
      let partition = Markov.Partition.pair_consecutive n in
      let coarse = Markov.Aggregation.coarsen c partition ~weights:pi in
      let coarse_pi = Markov.Gth.solve coarse in
      Linalg.Vec.dist_l1 coarse_pi (Markov.Partition.restrict partition pi) < 1e-9)

let prop_hitting_times_one_step_consistent =
  QCheck2.Test.make ~name:"hitting times satisfy m = 1 + Qm" ~count:100 random_chain_gen (fun c ->
      let n = Markov.Chain.n_states c in
      let target i = i = 0 in
      let m = Markov.Passage.mean_hitting_times ~tol:1e-12 c ~target in
      let ok = ref true in
      for i = 1 to n - 1 do
        let rhs = ref 1.0 in
        Sparse.Csr.iter_row (Markov.Chain.tpm c) i (fun j v ->
            if not (target j) then rhs := !rhs +. (v *. m.(j)));
        if abs_float (m.(i) -. !rhs) > 1e-6 *. (1.0 +. m.(i)) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "markov"
    [
      ( "chain",
        [
          Alcotest.test_case "rejects non-square" `Quick test_chain_rejects_non_square;
          Alcotest.test_case "rejects bad rows" `Quick test_chain_rejects_bad_rows;
          Alcotest.test_case "step/residual" `Quick test_chain_step_residual;
          Alcotest.test_case "irreducibility" `Quick test_chain_irreducibility;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "two-state analytic" `Quick test_solvers_two_state;
          Alcotest.test_case "birth-death analytic" `Quick test_solvers_birth_death;
          Alcotest.test_case "sor omega validated" `Quick test_sor_omega_validation;
          Alcotest.test_case "gth reducible detected" `Quick test_gth_reducible_detected;
          Alcotest.test_case "gth nearly uncoupled" `Quick test_gth_nearly_uncoupled;
          Alcotest.test_case "arnoldi beats power on stiff chain" `Slow
            test_arnoldi_faster_than_power_on_stiff_chain;
          Alcotest.test_case "arnoldi small chain" `Quick test_arnoldi_small_chain;
        ] );
      ( "aggregation-multigrid",
        [
          Alcotest.test_case "two-level A/D" `Quick test_aggregation_two_level;
          Alcotest.test_case "partition validation" `Quick test_partition_validation;
          Alcotest.test_case "restrict/prolong" `Quick test_partition_restrict_prolong;
          Alcotest.test_case "zero-weight block" `Quick test_prolong_zero_weight_block;
          Alcotest.test_case "multigrid large birth-death" `Slow test_multigrid_large_birth_death;
          Alcotest.test_case "hierarchy validation" `Quick test_multigrid_hierarchy_validation;
          Alcotest.test_case "default hierarchy shrinks" `Quick test_default_hierarchy_shrinks;
        ] );
      ( "lumpability",
        [
          Alcotest.test_case "exact lumping" `Quick test_exact_lumping;
          Alcotest.test_case "violation detected" `Quick test_not_lumpable_detected;
        ] );
      ( "passage",
        [
          Alcotest.test_case "two-state hitting time" `Quick test_hitting_time_two_state;
          Alcotest.test_case "ring hitting time" `Quick test_hitting_time_ring;
          Alcotest.test_case "gambler's ruin" `Quick test_gamblers_ruin;
          Alcotest.test_case "stationary flux balance" `Quick test_kac_return_time;
          Alcotest.test_case "total flux" `Quick test_flux_total;
          Alcotest.test_case "empty target rejected" `Quick test_empty_target_rejected;
        ] );
      ( "censor",
        [
          Alcotest.test_case "identity keep" `Quick test_censor_two_state_identity;
          Alcotest.test_case "conditional stationarity" `Quick test_censor_conditional_stationary;
          Alcotest.test_case "rows stochastic" `Quick test_censor_rows_stochastic;
          Alcotest.test_case "empty keep rejected" `Quick test_censor_empty_keep_rejected;
        ] );
      ( "reward",
        [
          Alcotest.test_case "long-run average" `Quick test_reward_long_run_average;
          Alcotest.test_case "transition rate" `Quick test_reward_transition_rate;
          Alcotest.test_case "accumulated = hitting time" `Quick test_reward_accumulated_is_hitting_time;
          Alcotest.test_case "discounted constant" `Quick test_reward_discounted_constant;
          Alcotest.test_case "bellman fixed point" `Quick test_reward_discounted_bellman;
        ] );
      ( "io",
        [
          Alcotest.test_case "chain roundtrip" `Quick test_io_chain_roundtrip;
          Alcotest.test_case "vector roundtrip" `Quick test_io_vector_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "distribution_at" `Quick test_evolution_distribution_at;
          Alcotest.test_case "distance monotone" `Quick test_evolution_distance_monotone;
          Alcotest.test_case "settling time" `Quick test_evolution_settling_time;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "two-state analytic" `Quick test_subdominant_two_state;
          Alcotest.test_case "bounds" `Quick test_subdominant_bounds;
          Alcotest.test_case "stiffness ordering" `Quick test_subdominant_stiffer_is_larger;
        ] );
      ( "stat",
        [
          Alcotest.test_case "expectation/variance" `Quick test_expectation_variance;
          Alcotest.test_case "two-state autocorrelation" `Quick test_autocovariance_two_state;
          Alcotest.test_case "marginal" `Quick test_marginal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_solvers_agree;
            prop_stationary_invariance;
            prop_aggregation_consistency;
            prop_hitting_times_one_step_consistent;
          ] );
    ]

(* Tests for the parallel V-cycle interior and the flat-state model assembly:
   colored-smoother fixed points agree with lexicographic ones to solver
   tolerance, every pooled kernel (colored smoothing, aggregation /
   restriction / prolongation, CSR value fill, rebuild row refill) is
   bitwise deterministic at jobs=1 vs jobs=4, and the flat assembly path is
   pinned bit-for-bit against the retired hashtable-and-COO construction. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* small enough to solve in milliseconds, large enough for a 4-level
   hierarchy and multi-slot pooled kernels *)
let cfg = { Cdr.Config.default with Cdr.Config.grid_points = 64; max_run = 4 }

let model = lazy (Cdr.Model.build cfg)

let chain () = (Lazy.force model).Cdr.Model.chain

let hierarchy () = Cdr.Model.hierarchy (Lazy.force model)

(* ---------- colored smoother: correctness ---------- *)

let test_colored_vs_lex_fixed_point () =
  let chain = chain () in
  let hierarchy = hierarchy () in
  let lex = Markov.Multigrid.setup ~hierarchy chain in
  let colored = Markov.Multigrid.setup ~smoother:`Colored ~hierarchy chain in
  check_bool "setup remembers lex" true (Markov.Multigrid.smoother lex = `Lex);
  check_bool "setup remembers colored" true (Markov.Multigrid.smoother colored = `Colored);
  let sol_lex, _ = Markov.Multigrid.solve_with ~tol:1e-11 lex chain in
  let sol_col, _ = Markov.Multigrid.solve_with ~tol:1e-11 colored chain in
  (* both are stationary to tolerance... *)
  check_bool "lex residual small" true (Markov.Chain.residual chain sol_lex.Markov.Solution.pi < 1e-10);
  check_bool "colored residual small" true
    (Markov.Chain.residual chain sol_col.Markov.Solution.pi < 1e-10);
  (* ...and agree with each other far below any physical quantity of
     interest; they need NOT agree bitwise (color-major sweep order differs
     from lexicographic), which is exactly why `Lex stays the default. *)
  let dist = ref 0.0 in
  Array.iteri
    (fun i p -> dist := !dist +. abs_float (p -. sol_col.Markov.Solution.pi.(i)))
    sol_lex.Markov.Solution.pi;
  check_bool "L1 distance below 1e-9" true (!dist < 1e-9)

(* ---------- pooled kernels: bitwise determinism ---------- *)

let solve_colored pool =
  let chain = chain () in
  let s = Markov.Multigrid.setup ~smoother:`Colored ~hierarchy:(hierarchy ()) chain in
  let sol, _ = Markov.Multigrid.solve_with ~tol:1e-10 ?pool s chain in
  sol.Markov.Solution.pi

let test_colored_bitwise_across_jobs () =
  let serial = solve_colored None in
  let p1 = Cdr_par.Pool.with_pool ~jobs:1 (fun pool -> solve_colored (Some pool)) in
  let p4 = Cdr_par.Pool.with_pool ~jobs:4 (fun pool -> solve_colored (Some pool)) in
  check_bool "colored: serial = pooled jobs=1" true (bits_equal serial p1);
  check_bool "colored: pooled jobs=1 = jobs=4" true (bits_equal p1 p4)

let test_lex_solve_unchanged_by_pool () =
  (* with the default lex smoother the pooled V-cycle interior (aggregation,
     restriction, prolongation, transpose scatter) must not move a single
     bit relative to the serial solve *)
  let chain = chain () in
  let solve pool =
    let s = Markov.Multigrid.setup ~hierarchy:(hierarchy ()) chain in
    let sol, _ = Markov.Multigrid.solve_with ~tol:1e-10 ?pool s chain in
    sol.Markov.Solution.pi
  in
  let serial = solve None in
  let p4 = Cdr_par.Pool.with_pool ~jobs:4 (fun pool -> solve (Some pool)) in
  check_bool "lex: serial = pooled jobs=4" true (bits_equal serial p4)

(* ---------- flat assembly: pinned against the reference path ---------- *)

let csr_of m = Markov.Chain.tpm m.Cdr.Model.chain

let test_flat_equals_reference () =
  let flat = Cdr.Model.build_direct cfg in
  let reference = Cdr.Model.build_direct_reference cfg in
  check_int "state count" reference.Cdr.Model.n_states flat.Cdr.Model.n_states;
  let a = csr_of flat and b = csr_of reference in
  Alcotest.(check (array int)) "row_ptr" b.Sparse.Csr.row_ptr a.Sparse.Csr.row_ptr;
  Alcotest.(check (array int)) "col_idx" b.Sparse.Csr.col_idx a.Sparse.Csr.col_idx;
  check_bool "values bitwise" true (bits_equal b.Sparse.Csr.values a.Sparse.Csr.values);
  (* same state enumeration order, not just the same matrix *)
  for i = 0 to flat.Cdr.Model.n_states - 1 do
    if
      flat.Cdr.Model.data_code i <> reference.Cdr.Model.data_code i
      || flat.Cdr.Model.counter_code i <> reference.Cdr.Model.counter_code i
      || flat.Cdr.Model.phase_bin i <> reference.Cdr.Model.phase_bin i
    then Alcotest.failf "state %d decodes differently on the two paths" i
  done

let test_value_fill_bitwise_across_jobs () =
  let serial = csr_of (Cdr.Model.build_direct cfg) in
  let p1 =
    Cdr_par.Pool.with_pool ~jobs:1 (fun pool -> csr_of (Cdr.Model.build_direct ~pool cfg))
  in
  let p4 =
    Cdr_par.Pool.with_pool ~jobs:4 (fun pool -> csr_of (Cdr.Model.build_direct ~pool cfg))
  in
  check_bool "value fill: serial = pooled jobs=1" true
    (bits_equal serial.Sparse.Csr.values p1.Sparse.Csr.values);
  check_bool "value fill: pooled jobs=1 = jobs=4" true
    (bits_equal p1.Sparse.Csr.values p4.Sparse.Csr.values)

let test_rebuild_bitwise_across_jobs () =
  let base = Lazy.force model in
  let cfg' = { cfg with Cdr.Config.sigma_w = cfg.Cdr.Config.sigma_w +. 1e-4 } in
  let serial, reused = Cdr.Model.rebuild base cfg' in
  check_bool "pattern reused" true reused;
  let p4, reused4 =
    Cdr_par.Pool.with_pool ~jobs:4 (fun pool -> Cdr.Model.rebuild ~pool base cfg')
  in
  check_bool "pattern reused under pool" true reused4;
  check_bool "rebuild row refill: serial = pooled jobs=4" true
    (bits_equal (csr_of serial).Sparse.Csr.values (csr_of p4).Sparse.Csr.values)

let () =
  Alcotest.run "mg_par"
    [
      ( "colored smoother",
        [
          Alcotest.test_case "fixed point agrees with lex" `Quick test_colored_vs_lex_fixed_point;
          Alcotest.test_case "bitwise across job counts" `Quick test_colored_bitwise_across_jobs;
          Alcotest.test_case "lex solve unchanged by pool" `Quick test_lex_solve_unchanged_by_pool;
        ] );
      ( "flat assembly",
        [
          Alcotest.test_case "bitwise equal to reference path" `Quick test_flat_equals_reference;
          Alcotest.test_case "value fill bitwise across jobs" `Quick
            test_value_fill_bitwise_across_jobs;
          Alcotest.test_case "rebuild refill bitwise across jobs" `Quick
            test_rebuild_bitwise_across_jobs;
        ] );
    ]

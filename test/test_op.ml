(* Tests for the operator-abstraction subsystem: the matrix-free Kronecker
   primitive (Sparse.Kron_op) against materialized products, the Cdr_op
   backends against the exact CSR kernels they wrap (bitwise), the generic
   network factorization (Fsm.Kron_build) against explicitly built chains,
   and the CDR factorization (Cdr.Kron_model) against the direct CSR model —
   transition-by-transition and through the stationary functionals. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

(* ---------- Kron_op vs the materialized product ---------- *)

let csr_factor_gen dim =
  let open QCheck2.Gen in
  let entry = pair (int_range 0 (dim - 1)) (float_range 0.1 1.0) in
  let* rows = list_repeat dim (list_size (int_range 1 3) entry) in
  let coo = Sparse.Coo.create ~rows:dim ~cols:dim in
  List.iteri
    (fun r entries -> List.iter (fun (c, v) -> Sparse.Coo.add coo ~row:r ~col:c v) entries)
    rows;
  return (Sparse.Coo.to_csr coo)

let kron_op_gen =
  let open QCheck2.Gen in
  let* dims = list_size (int_range 2 3) (int_range 2 4) in
  let* n_terms = int_range 1 3 in
  let* terms =
    list_repeat n_terms
      (let* coeff = float_range 0.25 2.0 in
       let* factors = flatten_l (List.map csr_factor_gen dims) in
       return (Sparse.Kron_op.term ~coeff factors))
  in
  return (Sparse.Kron_op.sum terms)

let test_vector n = Array.init n (fun i -> 1.0 +. (float_of_int i /. float_of_int n))

let prop_apply_matches_materialized =
  QCheck2.Test.make ~name:"apply = x * to_csr" ~count:100 kron_op_gen (fun op ->
      let n = Sparse.Kron_op.dim op in
      let x = test_vector n in
      let y = Sparse.Kron_op.apply op x in
      let expected = Sparse.Csr.vec_mul x (Sparse.Kron_op.to_csr op) in
      max_abs_diff y expected < 1e-12)

let prop_row_sums_and_diag =
  QCheck2.Test.make ~name:"row_sums and diag match to_csr" ~count:100 kron_op_gen (fun op ->
      let csr = Sparse.Kron_op.to_csr op in
      let n = Sparse.Kron_op.dim op in
      max_abs_diff (Sparse.Kron_op.row_sums op) (Sparse.Csr.row_sums csr) < 1e-12
      && max_abs_diff (Sparse.Kron_op.diag op)
           (Array.init n (fun i -> Sparse.Csr.get csr i i))
         < 1e-12)

let prop_iter_row_sums_duplicates =
  QCheck2.Test.make ~name:"iter_row entries sum to the csr row" ~count:100 kron_op_gen
    (fun op ->
      let csr = Sparse.Kron_op.to_csr op in
      let n = Sparse.Kron_op.dim op in
      let ok = ref true in
      for i = 0 to n - 1 do
        let row = Array.make n 0.0 in
        Sparse.Kron_op.iter_row op i (fun j v -> row.(j) <- row.(j) +. v);
        for j = 0 to n - 1 do
          if Float.abs (row.(j) -. Sparse.Csr.get csr i j) > 1e-12 then ok := false
        done
      done;
      !ok)

let test_sum_validation () =
  check_bool "empty sum rejected" true
    (try
       ignore (Sparse.Kron_op.sum []);
       false
     with Invalid_argument _ -> true);
  let a = Sparse.Kron_op.term [ Sparse.Csr.identity 2; Sparse.Csr.identity 3 ] in
  let b = Sparse.Kron_op.term [ Sparse.Csr.identity 7 ] in
  check_bool "dimension mismatch rejected" true
    (try
       ignore (Sparse.Kron_op.sum [ a; b ]);
       false
     with Invalid_argument _ -> true);
  check_int "terms concatenate" 2 (Sparse.Kron_op.n_terms (Sparse.Kron_op.sum [ a; a ]))

(* dims 24^3 = 13824: big enough that every middle contraction crosses the
   pooling threshold, covering both the l-block and the r-chunk dispatch *)
let big_random_op () =
  let rng = Random.State.make [| 7; 2026 |] in
  let factor dim =
    let coo = Sparse.Coo.create ~rows:dim ~cols:dim in
    for r = 0 to dim - 1 do
      for _ = 1 to 3 do
        Sparse.Coo.add coo ~row:r ~col:(Random.State.int rng dim)
          (0.1 +. Random.State.float rng 1.0)
      done
    done;
    Sparse.Coo.to_csr coo
  in
  Sparse.Kron_op.sum
    [
      Sparse.Kron_op.term ~coeff:0.75 [ factor 24; factor 24; factor 24 ];
      Sparse.Kron_op.term [ factor 24; factor 24; factor 24 ];
    ]

let test_pooled_apply_bitwise () =
  let op = big_random_op () in
  let n = Sparse.Kron_op.dim op in
  let x = test_vector n in
  let ws = Sparse.Kron_op.workspace op in
  let serial = Array.make n 0.0 in
  Sparse.Kron_op.apply_into op ~ws x serial;
  (* workspace reuse: a second serial apply reproduces the first bitwise *)
  let again = Array.make n 0.0 in
  Sparse.Kron_op.apply_into op ~ws x again;
  check_bool "workspace reuse is bitwise stable" true (bits_equal serial again);
  List.iter
    (fun jobs ->
      Cdr_par.Pool.with_pool ~jobs (fun pool ->
          let y = Array.make n 0.0 in
          Sparse.Kron_op.apply_into ~pool op ~ws x y;
          check_bool
            (Printf.sprintf "jobs=%d bitwise equals serial" jobs)
            true (bits_equal serial y)))
    [ 1; 2; 4 ]

(* ---------- Cdr_op backends vs the exact CSR kernels ---------- *)

let small_chain_cfg =
  Cdr.Config.create_exn
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 32;
      n_phases = 8;
      counter_length = 3;
      max_run = 4;
      nw_max_atoms = 17;
    }

let test_csr_backend_bitwise () =
  let model = Cdr.Model.build small_chain_cfg in
  let tpm = Markov.Chain.tpm model.Cdr.Model.chain in
  let op = Cdr.Model.operator model in
  let n = Cdr_op.dim op in
  check_int "dim" (Markov.Chain.n_states model.Cdr.Model.chain) n;
  check_bool "kind" true (Cdr_op.kind op = `Csr);
  let x = test_vector n in
  let y = Array.make n 0.0 and y' = Array.make n 0.0 in
  Cdr_op.vec_mul_into op x y;
  Sparse.Csr.vec_mul_into x tpm y';
  check_bool "vec_mul_into bitwise" true (bits_equal y y');
  check_bool "mul_vec bitwise (transpose path)" true
    (bits_equal (Cdr_op.mul_vec op x) (Sparse.Csr.mul_vec (Sparse.Csr.transpose tpm) x));
  check_bool "diag exact" true
    (bits_equal (Cdr_op.diag op) (Array.init n (fun i -> Sparse.Csr.get tpm i i)));
  check_bool "row_sums bitwise" true (bits_equal (Cdr_op.row_sums op) (Sparse.Csr.row_sums tpm))

let test_power_solve_delegates_bitwise () =
  let model = Cdr.Model.build small_chain_cfg in
  let chain = model.Cdr.Model.chain in
  let via_chain = Markov.Power.solve ~tol:1e-10 chain in
  let via_op =
    Markov.Power.solve_op ~tol:1e-10 (Cdr_op.Csr_backend.create (Markov.Chain.tpm chain))
  in
  check_bool "pi bitwise" true
    (bits_equal via_chain.Markov.Solution.pi via_op.Markov.Solution.pi);
  check_int "iterations" via_chain.Markov.Solution.iterations via_op.Markov.Solution.iterations

let test_jacobi_solve_delegates_bitwise () =
  let model = Cdr.Model.build small_chain_cfg in
  let chain = model.Cdr.Model.chain in
  let via_chain = Markov.Splitting.solve ~method_:Markov.Splitting.Jacobi ~tol:1e-10 chain in
  let via_op =
    Markov.Splitting.solve_op ~tol:1e-10 (Cdr_op.Csr_backend.create (Markov.Chain.tpm chain))
  in
  check_bool "pi bitwise" true
    (bits_equal via_chain.Markov.Solution.pi via_op.Markov.Solution.pi);
  check_int "iterations" via_chain.Markov.Solution.iterations via_op.Markov.Solution.iterations

let test_check_stochastic () =
  let model = Cdr.Model.build small_chain_cfg in
  (match Cdr_op.check_stochastic (Cdr.Model.operator model) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "CDR chain reported non-stochastic: %s" msg);
  let broken = Cdr_op.Csr_backend.create (Sparse.Csr.identity 4) in
  (match Cdr_op.check_stochastic broken with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "identity is stochastic");
  let half = Sparse.Csr.map (fun v -> v /. 2.0) (Sparse.Csr.identity 4) in
  match Cdr_op.check_stochastic (Cdr_op.Csr_backend.create half) with
  | Ok () -> Alcotest.fail "half rows accepted"
  | Error msg -> check_bool "error names a row" true (String.length msg > 0)

(* ---------- Fsm.Kron_build vs explicitly built chains ---------- *)

let mod_counter ~name n =
  Fsm.Component.create ~name ~n_states:n ~input_cards:[| 2 |] ~n_outputs:n
    ~step:(fun s inputs ->
      let s' = if inputs.(0) = 1 then (s + 1) mod n else s in
      (s', s))
    ()

let coin p = { Fsm.Network.source_name = "coin"; pmf = Prob.Pmf.bernoulli ~p 1 0 }

let network_gen =
  (* random two-component feed-forward network: coin -> a, a's output -> b *)
  let open QCheck2.Gen in
  let* p = float_range 0.05 0.95 in
  let* na = int_range 2 5 in
  let* nb = int_range 2 5 in
  let a = mod_counter ~name:"a" na in
  let b =
    Fsm.Component.create ~name:"b" ~n_states:nb ~input_cards:[| na |] ~n_outputs:1
      ~step:(fun s inputs -> ((if inputs.(0) = 0 then (s + 1) mod nb else s), 0))
      ()
  in
  return
    (Fsm.Network.create ~sources:[| coin p |] ~components:[| a; b |]
       ~wiring:[| [| Fsm.Network.From_source 0 |]; [| Fsm.Network.From_component 0 |] |])

let prop_kron_build_stochastic =
  QCheck2.Test.make ~name:"factorized operator is row-stochastic on the full space" ~count:50
    network_gen (fun net ->
      let op = Fsm.Kron_build.of_network net in
      Sparse.Kron_op.dim op = Fsm.Network.n_global_states net
      && Array.for_all (fun s -> Float.abs (s -. 1.0) < 1e-9) (Sparse.Kron_op.row_sums op))

let prop_kron_build_matches_chain =
  QCheck2.Test.make ~name:"factorized operator matches the built chain" ~count:50 network_gen
    (fun net ->
      (match Fsm.Kron_build.supports net with
      | Ok () -> ()
      | Error msg -> QCheck2.Test.fail_reportf "generated net unsupported: %s" msg);
      let full = Sparse.Kron_op.to_csr (Fsm.Kron_build.of_network net) in
      let built = Fsm.Network.build_chain net ~initial:[| 0; 0 |] in
      let tpm = Markov.Chain.tpm built.Fsm.Network.chain in
      let ok = ref true in
      Array.iteri
        (fun r states ->
          let fi = Fsm.Network.encode net states in
          (* every factorized entry out of a reachable state lands on a
             reachable state with the chain's probability... *)
          Sparse.Csr.iter_row full fi (fun fj v ->
              match built.Fsm.Network.index_of (Fsm.Network.decode net fj) with
              | None -> if Float.abs v > 1e-15 then ok := false
              | Some r' ->
                  if Float.abs (v -. Sparse.Csr.get tpm r r') > 1e-12 then ok := false);
          (* ... and every chain entry appears in the factorization *)
          Sparse.Csr.iter_row tpm r (fun r' v ->
              let fj = Fsm.Network.encode net built.Fsm.Network.states.(r') in
              if Float.abs (v -. Sparse.Csr.get full fi fj) > 1e-12 then ok := false))
        built.Fsm.Network.states;
      !ok)

let test_kron_build_rejections () =
  (* registered state feedback does not factorize *)
  let a2 =
    Fsm.Component.create ~name:"a2" ~n_states:2 ~input_cards:[| 2 |] ~n_outputs:2
      ~step:(fun _ inputs -> (inputs.(0), inputs.(0)))
      ()
  in
  let feedback =
    Fsm.Network.create ~sources:[||]
      ~components:[| a2; mod_counter ~name:"b2" 2 |]
      ~wiring:[| [| Fsm.Network.From_state 1 |]; [| Fsm.Network.From_component 0 |] |]
  in
  (match Fsm.Kron_build.supports feedback with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "state feedback accepted");
  check_bool "of_network raises on feedback" true
    (try
       ignore (Fsm.Kron_build.of_network feedback);
       false
     with Invalid_argument _ -> true);
  (* a source read by two components couples them *)
  let shared =
    Fsm.Network.create ~sources:[| coin 0.5 |]
      ~components:[| mod_counter ~name:"a" 2; mod_counter ~name:"b" 3 |]
      ~wiring:[| [| Fsm.Network.From_source 0 |]; [| Fsm.Network.From_source 0 |] |]
  in
  match Fsm.Kron_build.supports shared with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "shared source accepted"

(* ---------- Cdr.Kron_model vs the direct CSR model ---------- *)

(* sigma_w well above the default so the slip rate is far from the solver
   floor and relative comparisons are meaningful *)
let kron_cfg =
  Cdr.Config.create_exn
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 16;
      n_phases = 8;
      counter_length = 3;
      max_run = 4;
      nw_max_atoms = 17;
      sigma_w = 0.12;
    }

let test_kron_model_structure () =
  let km = Cdr.Kron_model.build kron_cfg in
  check_int "full product space" (8 * 5 * 16) (Cdr.Kron_model.n_states km);
  (* codes round-trip through the packing *)
  for i = 0 to Cdr.Kron_model.n_states km - 1 do
    match
      Cdr.Kron_model.index_of km ~data:(Cdr.Kron_model.data_code km i)
        ~counter:(Cdr.Kron_model.counter_code km i) ~phase:(Cdr.Kron_model.phase_bin km i)
    with
    | Some j when j = i -> ()
    | _ -> Alcotest.failf "code roundtrip failed at %d" i
  done

let test_kron_model_matches_direct () =
  let km = Cdr.Kron_model.build kron_cfg in
  let full = Cdr_op.to_csr (Cdr.Kron_model.operator km) in
  let model = Cdr.Model.build kron_cfg in
  let tpm = Markov.Chain.tpm model.Cdr.Model.chain in
  for r = 0 to model.Cdr.Model.n_states - 1 do
    let fi =
      match
        Cdr.Kron_model.index_of km ~data:(model.Cdr.Model.data_code r)
          ~counter:(model.Cdr.Model.counter_code r) ~phase:(model.Cdr.Model.phase_bin r)
      with
      | Some fi -> fi
      | None -> Alcotest.failf "reachable state %d has no full-space index" r
    in
    (* factorized row on the full space = direct row on the reachable set *)
    Sparse.Csr.iter_row full fi (fun fj v ->
        match
          model.Cdr.Model.index_of
            ~data:(Cdr.Kron_model.data_code km fj)
            ~counter:(Cdr.Kron_model.counter_code km fj)
            ~phase:(Cdr.Kron_model.phase_bin km fj)
        with
        | None ->
            if Float.abs v > 1e-15 then
              Alcotest.failf "row %d: mass %g on unreachable successor %d" r v fj
        | Some r' ->
            if Float.abs (v -. Sparse.Csr.get tpm r r') > 1e-12 then
              Alcotest.failf "row %d: %g <> %g" r v (Sparse.Csr.get tpm r r'));
    Sparse.Csr.iter_row tpm r (fun r' v ->
        let fj =
          match
            Cdr.Kron_model.index_of km ~data:(model.Cdr.Model.data_code r')
              ~counter:(model.Cdr.Model.counter_code r')
              ~phase:(model.Cdr.Model.phase_bin r')
          with
          | Some fj -> fj
          | None -> Alcotest.failf "reachable state %d has no full-space index" r'
        in
        if Float.abs (v -. Sparse.Csr.get full fi fj) > 1e-12 then
          Alcotest.failf "row %d: direct %g missing from factorization" r v)
  done

let test_kron_model_stationary_parity () =
  let km = Cdr.Kron_model.build kron_cfg in
  let model = Cdr.Model.build kron_cfg in
  let sol_k = Cdr.Kron_model.solve ~solver:`Power km in
  let sol_c = Cdr.Model.solve ~solver:`Power model in
  check_bool "kron power converged" true sol_k.Markov.Solution.converged;
  let rho_k = Cdr.Kron_model.phase_marginal km ~pi:sol_k.Markov.Solution.pi in
  let rho_c = Cdr.Model.phase_marginal model ~pi:sol_c.Markov.Solution.pi in
  check_bool "phase marginals agree" true (max_abs_diff rho_k rho_c < 1e-8);
  let ber_k = Cdr.Ber.of_marginal kron_cfg ~rho:rho_k in
  let ber_c = Cdr.Ber.of_marginal kron_cfg ~rho:rho_c in
  check_bool "BER agrees" true (Float.abs (ber_k -. ber_c) /. Float.max ber_c 1e-300 < 1e-6);
  let slip_k = Cdr.Kron_model.slip_rate km ~pi:sol_k.Markov.Solution.pi in
  let slip_c = Cdr.Cycle_slip.rate model ~pi:sol_c.Markov.Solution.pi in
  check_bool "slip rate agrees" true
    (Float.abs (slip_k -. slip_c) /. Float.max slip_c 1e-300 < 1e-6);
  let mtbs = Cdr.Kron_model.mean_time_between_slips km ~pi:sol_k.Markov.Solution.pi in
  check_bool "mtbs is 1/rate" true (Float.abs ((1.0 /. mtbs) -. slip_k) < 1e-15)

let test_kron_model_solvers_agree () =
  (* grid 32: 1280 full states, above the direct-solve cutoff, so the IAD
     multigrid path really aggregates *)
  let cfg =
    Cdr.Config.create_exn
      {
        Cdr.Config.default with
        Cdr.Config.grid_points = 32;
        n_phases = 8;
        counter_length = 3;
        max_run = 4;
        nw_max_atoms = 17;
        sigma_w = 0.12;
      }
  in
  let km = Cdr.Kron_model.build cfg in
  check_bool "hierarchy is non-trivial" true (Cdr.Kron_model.hierarchy km <> []);
  let power = Cdr.Kron_model.solve ~solver:`Power km in
  let mg = Cdr.Kron_model.solve ~solver:`Multigrid km in
  let jac = Cdr.Kron_model.solve ~solver:`Jacobi km in
  check_bool "multigrid converged" true mg.Markov.Solution.converged;
  (* Jacobi stagnates just above the default tolerance on this chain; the
     matrix-free run must mirror the materialized solver exactly rather than
     claim convergence it doesn't have *)
  let jac_csr =
    Markov.Splitting.solve ~method_:Markov.Splitting.Jacobi ~tol:Cdr.Context.default.Cdr.Context.tol
      (Cdr.Model.build cfg).Cdr.Model.chain
  in
  check_int "jacobi iteration count matches csr" jac_csr.Markov.Solution.iterations
    jac.Markov.Solution.iterations;
  let rho s = Cdr.Kron_model.phase_marginal km ~pi:s.Markov.Solution.pi in
  check_bool "multigrid matches power" true (max_abs_diff (rho mg) (rho power) < 1e-8);
  check_bool "jacobi matches power" true (max_abs_diff (rho jac) (rho power) < 1e-8)

let () =
  Alcotest.run "op"
    [
      ( "kron-op",
        Alcotest.test_case "sum validation" `Quick test_sum_validation
        :: Alcotest.test_case "pooled apply bitwise" `Quick test_pooled_apply_bitwise
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_apply_matches_materialized; prop_row_sums_and_diag;
               prop_iter_row_sums_duplicates;
             ] );
      ( "backends",
        [
          Alcotest.test_case "csr backend bitwise" `Quick test_csr_backend_bitwise;
          Alcotest.test_case "power delegates bitwise" `Quick test_power_solve_delegates_bitwise;
          Alcotest.test_case "jacobi delegates bitwise" `Quick test_jacobi_solve_delegates_bitwise;
          Alcotest.test_case "check_stochastic" `Quick test_check_stochastic;
        ] );
      ( "kron-build",
        Alcotest.test_case "unsupported shapes rejected" `Quick test_kron_build_rejections
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_kron_build_stochastic; prop_kron_build_matches_chain ] );
      ( "kron-model",
        [
          Alcotest.test_case "structure" `Quick test_kron_model_structure;
          Alcotest.test_case "matches direct model" `Quick test_kron_model_matches_direct;
          Alcotest.test_case "stationary parity" `Quick test_kron_model_stationary_parity;
          Alcotest.test_case "solvers agree matrix-free" `Quick test_kron_model_solvers_agree;
        ] );
    ]

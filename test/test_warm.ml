(* Tests for the setup/solve split and the warm-started continuation sweeps
   (PR 3): Csr.refill / same_pattern against fresh constructions, bitwise
   reuse of one Multigrid.setup across chains sharing a pattern,
   Model.rebuild equivalence with a from-scratch build, solver-cache
   hit/miss accounting (both per-cache and through the metrics registry),
   and agreement of warm-started sweeps with cold ones. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* a small, noisy configuration: fast to build, BER far from underflow *)
let small =
  {
    Cdr.Config.default with
    Cdr.Config.grid_points = 32;
    n_phases = 8;
    counter_length = 3;
    max_run = 4;
    nw_max_atoms = 17;
    sigma_w = 0.08;
  }

(* ---------- Csr.refill / same_pattern ---------- *)

let test_csr_refill () =
  let n = 7 in
  let dense f =
    let d = Linalg.Mat.create ~rows:n ~cols:n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if (i + j) mod 3 = 0 then Linalg.Mat.set d i j (f i j)
      done
    done;
    d
  in
  let a = Sparse.Csr.of_dense (dense (fun i j -> float_of_int ((i * n) + j + 1))) in
  let fresh = Sparse.Csr.of_dense (dense (fun i j -> 2.0 *. float_of_int ((i * n) + j + 1))) in
  let refilled = Sparse.Csr.refill a (Array.map (fun v -> 2.0 *. v) a.Sparse.Csr.values) in
  check_bool "refill equals fresh of_dense" true (Sparse.Csr.equal ~tol:0.0 refilled fresh);
  check_bool "refill shares the pattern" true (Sparse.Csr.same_pattern a refilled);
  check_bool "refill shares row_ptr physically" true
    (a.Sparse.Csr.row_ptr == refilled.Sparse.Csr.row_ptr);
  check_bool "structurally equal strangers share a pattern" true
    (Sparse.Csr.same_pattern a fresh);
  check_bool "different structures do not" false
    (Sparse.Csr.same_pattern a (Sparse.Csr.identity n));
  Alcotest.check_raises "wrong length rejected"
    (Invalid_argument "Csr.refill: values length must equal nnz") (fun () ->
      ignore (Sparse.Csr.refill a [| 1.0 |]));
  Alcotest.check_raises "non-finite rejected"
    (Invalid_argument "Csr.refill: non-finite value") (fun () ->
      ignore (Sparse.Csr.refill a (Array.map (fun _ -> Float.nan) a.Sparse.Csr.values)))

(* ---------- Multigrid.setup reuse across same-pattern chains ---------- *)

let test_setup_reuse () =
  let model = Cdr.Model.build small in
  let chain = model.Cdr.Model.chain in
  let hierarchy = Cdr.Model.hierarchy model in
  let s = Markov.Multigrid.setup ~hierarchy chain in
  check_bool "setup matches its own chain" true (Markov.Multigrid.matches s chain);
  (* solve_with on a shared setup is bitwise the one-shot solve *)
  let sol_oneshot, stats_oneshot = Markov.Multigrid.solve ~tol:1e-11 ~hierarchy chain in
  let sol_with, stats_with = Markov.Multigrid.solve_with ~tol:1e-11 s chain in
  check_bool "solve_with bitwise equals solve" true
    (bits_equal sol_oneshot.Markov.Solution.pi sol_with.Markov.Solution.pi);
  check_int "same cycles" stats_oneshot.Markov.Multigrid.cycles stats_with.Markov.Multigrid.cycles;
  check_int "levels accessor" stats_with.Markov.Multigrid.levels (Markov.Multigrid.levels s);
  (* a second chain with the same pattern (noise parameters moved): the same
     setup must match in O(1) and reproduce a fresh solve bitwise *)
  let model2, reused = Cdr.Model.rebuild model { small with Cdr.Config.p01 = 0.45; p10 = 0.45 } in
  check_bool "rebuild reused the pattern" true reused;
  let chain2 = model2.Cdr.Model.chain in
  check_bool "setup matches the refilled chain" true (Markov.Multigrid.matches s chain2);
  let sol2_fresh, _ = Markov.Multigrid.solve ~tol:1e-11 ~hierarchy chain2 in
  let sol2_reused, _ = Markov.Multigrid.solve_with ~tol:1e-11 s chain2 in
  check_bool "reused setup bitwise equals fresh solve on second chain" true
    (bits_equal sol2_fresh.Markov.Solution.pi sol2_reused.Markov.Solution.pi);
  (* a chain with another structure is rejected *)
  let other = Cdr.Model.build { small with Cdr.Config.counter_length = 4 } in
  check_bool "different structure does not match" false
    (Markov.Multigrid.matches s other.Cdr.Model.chain);
  check_bool "solve_with rejects a mismatched chain" true
    (match Markov.Multigrid.solve_with s other.Cdr.Model.chain with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- Model.rebuild ---------- *)

let test_model_rebuild () =
  let model = Cdr.Model.build small in
  (* noise-only change on the same pattern: bitwise the from-scratch build *)
  let cfg' = { small with Cdr.Config.p01 = 0.45; p10 = 0.45 } in
  let rebuilt, reused = Cdr.Model.rebuild model cfg' in
  check_bool "pattern reused" true reused;
  let fresh = Cdr.Model.build cfg' in
  let tr = Markov.Chain.tpm rebuilt.Cdr.Model.chain in
  let tf = Markov.Chain.tpm fresh.Cdr.Model.chain in
  check_bool "same pattern as fresh build" true (Sparse.Csr.same_pattern tr tf);
  check_bool "bitwise same values as fresh build" true
    (bits_equal tr.Sparse.Csr.values tf.Sparse.Csr.values);
  check_bool "pattern shared physically with the old chain" true
    (tr.Sparse.Csr.row_ptr == (Markov.Chain.tpm model.Cdr.Model.chain).Sparse.Csr.row_ptr);
  (* a state-space change falls back to the full build *)
  let cfg_k = { small with Cdr.Config.counter_length = 5 } in
  let rebuilt_k, reused_k = Cdr.Model.rebuild model cfg_k in
  check_bool "state-space change is a fresh build" false reused_k;
  check_int "fallback state count" (Cdr.Model.build cfg_k).Cdr.Model.n_states
    rebuilt_k.Cdr.Model.n_states

(* ---------- Solver_cache ---------- *)

let test_solver_cache () =
  Cdr_obs.Metrics.reset ();
  let cache = Cdr.Solver_cache.create () in
  let model = Cdr.Model.build small in
  let hierarchy () = Cdr.Model.hierarchy model in
  let s1 = Cdr.Solver_cache.setup cache ~hierarchy model.Cdr.Model.chain in
  check_int "first lookup misses" 1 (Cdr.Solver_cache.misses cache);
  let s2 = Cdr.Solver_cache.setup cache ~hierarchy model.Cdr.Model.chain in
  check_int "second lookup hits" 1 (Cdr.Solver_cache.hits cache);
  check_bool "hit returns the same setup" true (s1 == s2);
  (* a refilled chain (same structure, new values) hits *)
  let model2, _ = Cdr.Model.rebuild model { small with Cdr.Config.p01 = 0.48; p10 = 0.48 } in
  let s3 = Cdr.Solver_cache.setup cache ~hierarchy model2.Cdr.Model.chain in
  check_bool "refilled chain hits" true (s1 == s3);
  check_int "hits after refill" 2 (Cdr.Solver_cache.hits cache);
  (* a different structure misses and is inserted *)
  let other = Cdr.Model.build { small with Cdr.Config.counter_length = 4 } in
  ignore
    (Cdr.Solver_cache.setup cache
       ~hierarchy:(fun () -> Cdr.Model.hierarchy other)
       other.Cdr.Model.chain);
  check_int "new structure misses" 2 (Cdr.Solver_cache.misses cache);
  check_int "two structures cached" 2 (Cdr.Solver_cache.length cache);
  (* the global registry saw the same counts *)
  let counter name =
    List.fold_left
      (fun acc (s : Cdr_obs.Metrics.series) ->
        match s.Cdr_obs.Metrics.kind with
        | Cdr_obs.Metrics.Counter n when s.Cdr_obs.Metrics.name = name -> acc + n
        | _ -> acc)
      0 (Cdr_obs.Metrics.dump ())
  in
  check_int "metrics hits" 2 (counter "solver_cache.hits");
  check_int "metrics misses" 2 (counter "solver_cache.misses")

(* ---------- warm vs cold sweeps ---------- *)

let sigmas = [ 0.06; 0.07; 0.08; 0.09; 0.11 ]

let bers points = List.map (fun p -> p.Cdr.Sweep.report.Cdr.Report.ber) points

let test_warm_matches_cold () =
  let cold_points = Cdr.Sweep.sigma_w_values small sigmas in
  let warm_points = Cdr.Sweep.sigma_w_values ~strategy:Cdr.Sweep.warm small sigmas in
  check_int "same number of points" (List.length cold_points) (List.length warm_points);
  List.iter2
    (fun c w ->
      check_bool "same config order" true
        (c.Cdr.Sweep.config.Cdr.Config.sigma_w = w.Cdr.Sweep.config.Cdr.Config.sigma_w);
      let bc = c.Cdr.Sweep.report.Cdr.Report.ber
      and bw = w.Cdr.Sweep.report.Cdr.Report.ber in
      let rel = abs_float (bc -. bw) /. Float.max bc 1e-300 in
      if rel > 1e-6 then
        Alcotest.failf "warm BER diverges at sigma %g: cold %.17e warm %.17e (rel %g)"
          c.Cdr.Sweep.config.Cdr.Config.sigma_w bc bw rel)
    cold_points warm_points;
  (* determinism: the warm continuation reproduces itself bitwise *)
  let warm_again = Cdr.Sweep.sigma_w_values ~strategy:Cdr.Sweep.warm small sigmas in
  check_bool "warm sweep is deterministic" true
    (List.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       (bers warm_points) (bers warm_again))

let test_setup_reuse_is_bitwise_cold () =
  (* structure caching alone (no warm start) must not change a single bit:
     the symbolic phase carries no values *)
  let cache_only = { Cdr.Sweep.warm_start = false; reuse_setup = true } in
  let cold_points = Cdr.Sweep.sigma_w_values small sigmas in
  let cached_points = Cdr.Sweep.sigma_w_values ~strategy:cache_only small sigmas in
  check_bool "cache-only sweep bitwise equals cold" true
    (List.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       (bers cold_points) (bers cached_points))

let test_warm_under_pool () =
  (* chunked continuation under a pool: same points, same order, still within
     tolerance of cold, and fewer than one structure miss per point *)
  Cdr_obs.Metrics.reset ();
  let cold_points = Cdr.Sweep.sigma_w_values small sigmas in
  let warm_points =
    Cdr_par.Pool.with_pool ~jobs:2 (fun pool ->
        Cdr.Sweep.sigma_w_values ~pool ~strategy:Cdr.Sweep.warm small sigmas)
  in
  List.iter2
    (fun c w ->
      let bc = c.Cdr.Sweep.report.Cdr.Report.ber
      and bw = w.Cdr.Sweep.report.Cdr.Report.ber in
      check_bool "pooled warm point within tolerance" true
        (abs_float (bc -. bw) /. Float.max bc 1e-300 <= 1e-6))
    cold_points warm_points;
  (* counter sweeps warm-start too: every length is its own structure, so
     the cache cannot hit across points, but results must still agree *)
  let lengths = [ 2; 3; 4 ] in
  let cold_k = Cdr.Sweep.counter_lengths small lengths in
  let warm_k = Cdr.Sweep.counter_lengths ~strategy:Cdr.Sweep.warm small lengths in
  List.iter2
    (fun c w ->
      check_int "counter order preserved" c.Cdr.Sweep.config.Cdr.Config.counter_length
        w.Cdr.Sweep.config.Cdr.Config.counter_length;
      let bc = c.Cdr.Sweep.report.Cdr.Report.ber
      and bw = w.Cdr.Sweep.report.Cdr.Report.ber in
      check_bool "warm counter point within tolerance" true
        (abs_float (bc -. bw) /. Float.max bc 1e-300 <= 1e-6))
    cold_k warm_k

let () =
  Alcotest.run "cdr_warm"
    [
      ( "pattern",
        [
          Alcotest.test_case "csr refill / same_pattern" `Quick test_csr_refill;
          Alcotest.test_case "multigrid setup reuse" `Quick test_setup_reuse;
          Alcotest.test_case "model rebuild" `Quick test_model_rebuild;
        ] );
      ( "cache",
        [ Alcotest.test_case "solver cache hits and misses" `Quick test_solver_cache ] );
      ( "sweeps",
        [
          Alcotest.test_case "warm matches cold" `Quick test_warm_matches_cold;
          Alcotest.test_case "cache-only is bitwise cold" `Quick test_setup_reuse_is_bitwise_cold;
          Alcotest.test_case "warm under a pool" `Quick test_warm_under_pool;
        ] );
    ]

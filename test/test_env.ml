(* Tests for the Markov-modulated jitter environments (Cdr_env) and the
   versioned request schema that carries them: identity composition bitwise
   against the base chain, CSR/Kron backend parity, the slow-switching
   mixture limit, the environment JSON codec, v1/v2 params equivalence
   (shared cache keys, p_transition alias, scenario seeding, deprecation
   counting), protocol-level env-field placement, and golden v1 request
   fixtures replayed byte-identically through the result cache. *)

module Env = Cdr_env.Env
module Composed = Cdr_env.Composed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

let rel_close ~tol a b = Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)

let tiny_params =
  { Cdr_svc.Params.default with Cdr_svc.Params.grid = 32; phases = 16; counter = 2 }

let tiny_cfg =
  match Cdr_svc.Params.to_config tiny_params with
  | Ok cfg -> cfg
  | Error msg -> failwith ("tiny config invalid: " ^ msg)

(* ---------- composition ---------- *)

let test_identity_bitwise () =
  let base = Cdr.Model.build_direct tiny_cfg in
  let composed = Composed.build Env.identity tiny_cfg in
  check_int "same state count" base.Cdr.Model.n_states composed.Composed.n_states;
  match composed.Composed.repr with
  | Composed.Kron _ -> Alcotest.fail "identity composition built kron on the csr backend"
  | Composed.Chain chain ->
      let a = Markov.Chain.tpm base.Cdr.Model.chain and b = Markov.Chain.tpm chain in
      check_bool "row pointers equal" true (a.Sparse.Csr.row_ptr = b.Sparse.Csr.row_ptr);
      check_bool "column indices equal" true (a.Sparse.Csr.col_idx = b.Sparse.Csr.col_idx);
      check_bool "values bitwise equal" true (bits_equal a.Sparse.Csr.values b.Sparse.Csr.values)

let test_backend_parity () =
  let env = Env.bursty () in
  let c = Composed.build ~backend:`Csr env tiny_cfg in
  let k = Composed.build ~backend:`Kron env tiny_cfg in
  check_int "state counts agree" c.Composed.n_states k.Composed.n_states;
  let pc = (Composed.solve c).Markov.Solution.pi in
  let pk = (Composed.solve k).Markov.Solution.pi in
  check_bool "ber parity" true
    (rel_close ~tol:1e-6 (Composed.ber c ~pi:pc) (Composed.ber k ~pi:pk));
  check_bool "slip parity" true
    (rel_close ~tol:1e-6 (Composed.slip_rate c ~pi:pc) (Composed.slip_rate k ~pi:pk));
  let qc = Composed.regime_probs c ~pi:pc and qk = Composed.regime_probs k ~pi:pk in
  Array.iteri
    (fun e p -> check_bool "regime marginal parity" true (rel_close ~tol:1e-6 p qk.(e)))
    qc;
  (* both must match the switching chain's own stationary law *)
  let exact = Env.stationary env in
  Array.iteri
    (fun e p -> check_bool "regime marginal exact" true (rel_close ~tol:1e-6 p exact.(e)))
    qc

let test_slow_switching_mixture_limit () =
  (* dwell times ~1e5 bits: the loop re-equilibrates within each regime, so
     the exact composed BER approaches the stationary-weighted mixture *)
  let env = Env.bursty ~p_enter:2e-6 ~p_exit:1e-5 () in
  let composed = Composed.build env tiny_cfg in
  let pi = (Composed.solve composed).Markov.Solution.pi in
  let exact = Composed.ber composed ~pi in
  let _, mixture = Composed.mixture_ber composed in
  check_bool "slow switching approaches the mixture" true (rel_close ~tol:0.02 exact mixture);
  (* and fast switching must NOT be mixture-like: the gap is the point *)
  let fast = Composed.build (Env.bursty ()) tiny_cfg in
  let pi_f = (Composed.solve fast).Markov.Solution.pi in
  let exact_f = Composed.ber fast ~pi:pi_f in
  let _, mixture_f = Composed.mixture_ber fast in
  check_bool "fast switching diverges from the mixture" true
    (not (rel_close ~tol:0.02 exact_f mixture_f))

let test_env_json_roundtrip () =
  List.iter
    (fun (name, e) ->
      match Env.of_json (Env.to_json e) with
      | Error msg -> Alcotest.failf "%s roundtrip rejected: %s" name msg
      | Ok e' -> check_bool (name ^ " roundtrips") true (Env.equal e e'))
    Env.presets;
  (match Env.of_json (Cdr_obs.Jsonl.Str "bursty") with
  | Ok e -> check_bool "bare preset name accepted" true (Env.equal e (Env.bursty ()))
  | Error msg -> Alcotest.failf "preset name rejected: %s" msg);
  (match Env.of_json (Cdr_obs.Jsonl.Str "frobnicate") with
  | Ok _ -> Alcotest.fail "unknown preset accepted"
  | Error _ -> ());
  match
    Env.of_json
      (match Env.to_json (Env.bursty ()) with
      | Cdr_obs.Jsonl.Obj fields -> Cdr_obs.Jsonl.Obj (("frob", Cdr_obs.Jsonl.Num 1.) :: fields)
      | j -> j)
  with
  | Ok _ -> Alcotest.fail "unknown env field accepted"
  | Error _ -> ()

(* ---------- versioned params codec ---------- *)

let parse = Cdr_svc.Protocol.parse_request

let parse_ok line =
  match parse line with
  | Ok req -> req
  | Error (_, msg) -> Alcotest.failf "rejected: %s (%s)" msg line

let test_v1_v2_equivalence () =
  let v1 =
    parse_ok
      "{\"id\":\"a\",\"kind\":\"analyze\",\"params\":{\"grid\":32,\"phases\":16,\"counter\":2,\"sigma_w\":0.07,\"p_transition\":0.4}}"
  in
  let v2 =
    parse_ok
      "{\"id\":\"b\",\"kind\":\"analyze\",\"params\":{\"version\":2,\"grid\":32,\"loop\":{\"phases\":16,\"counter\":2},\"noise\":{\"sigma_w\":0.07},\"p01\":0.4,\"p10\":0.4}}"
  in
  check_bool "decoded records equal" true (v1.Cdr_svc.Protocol.params = v2.Cdr_svc.Protocol.params);
  check_bool "p_transition alias set both directions" true
    (v1.Cdr_svc.Protocol.params.Cdr_svc.Params.p01 = 0.4
    && v1.Cdr_svc.Protocol.params.Cdr_svc.Params.p10 = 0.4);
  (* equivalent spellings share one result-cache entry *)
  check_bool "cache keys equal" true
    (Cdr_svc.Protocol.cache_key v1 = Cdr_svc.Protocol.cache_key v2
    && Cdr_svc.Protocol.cache_key v1 <> None)

let test_version_fences () =
  let reject line =
    match parse line with
    | Ok _ -> Alcotest.failf "accepted: %s" line
    | Error (_, msg) -> check_bool "has message" true (String.length msg > 0)
  in
  (* v2-only syntax in a v1 request *)
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"params\":{\"noise\":{\"sigma_w\":0.07}}}";
  reject "{\"id\":\"x\",\"kind\":\"env\",\"params\":{\"env\":\"bursty\"}}";
  (* v1 flat noise fields in a v2 request *)
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"params\":{\"version\":2,\"sigma_w\":0.07}}";
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"params\":{\"version\":2,\"phases\":16}}";
  (* unsupported version *)
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"params\":{\"version\":3}}";
  (* canonical re-encode is v2 and round-trips with env present *)
  let p = { tiny_params with Cdr_svc.Params.env = Some (Env.crosstalk ()) } in
  match Cdr_svc.Params.of_json (Cdr_svc.Params.to_json p) with
  | Error msg -> Alcotest.failf "v2 env roundtrip rejected: %s" msg
  | Ok p' -> check_bool "env params roundtrip" true (p = p')

let deprecated_count () =
  List.fold_left
    (fun acc (s : Cdr_obs.Metrics.series) ->
      match s.Cdr_obs.Metrics.kind with
      | Cdr_obs.Metrics.Counter n when s.Cdr_obs.Metrics.name = "serve.deprecated_params" ->
          acc + n
      | _ -> acc)
    0 (Cdr_obs.Metrics.dump ())

let test_deprecation_counter () =
  let before = deprecated_count () in
  ignore (parse_ok "{\"id\":\"d\",\"kind\":\"analyze\",\"params\":{\"sigma_w\":0.07}}");
  ignore
    (parse_ok "{\"id\":\"d\",\"kind\":\"analyze\",\"params\":{\"version\":2,\"p_transition\":0.4}}");
  check_int "each deprecated request counted once" (before + 2) (deprecated_count ());
  (* v2-only spellings are not deprecated *)
  ignore
    (parse_ok
       "{\"id\":\"d\",\"kind\":\"analyze\",\"params\":{\"version\":2,\"noise\":{\"sigma_w\":0.07}}}");
  check_int "v2 requests not counted" (before + 2) (deprecated_count ())

let test_scenario_seeding () =
  let req =
    parse_ok
      "{\"id\":\"s\",\"kind\":\"analyze\",\"params\":{\"scenario\":\"burst-mode-retimer\",\"sigma_w\":0.08}}"
  in
  let s =
    match Cdr.Scenario.find "burst-mode-retimer" with Some s -> s | None -> Alcotest.fail "preset"
  in
  let p = req.Cdr_svc.Protocol.params in
  check_int "scenario seeds the counter" s.Cdr.Scenario.config.Cdr.Config.counter_length
    p.Cdr_svc.Params.counter;
  check_bool "scenario seeds the transition densities" true
    (p.Cdr_svc.Params.p01 = s.Cdr.Scenario.config.Cdr.Config.p01
    && p.Cdr_svc.Params.p10 = s.Cdr.Scenario.config.Cdr.Config.p10);
  check_bool "explicit field overrides the seed" true (p.Cdr_svc.Params.sigma_w = 0.08);
  (match parse "{\"id\":\"s\",\"kind\":\"analyze\",\"params\":{\"scenario\":\"frobnicate\"}}" with
  | Ok _ -> Alcotest.fail "unknown scenario accepted"
  | Error _ -> ());
  (* of_scenario rebuilds the preset's config exactly *)
  List.iter
    (fun (s : Cdr.Scenario.t) ->
      match Cdr_svc.Params.to_config (Cdr_svc.Params.of_scenario s) with
      | Error msg -> Alcotest.failf "%s: %s" s.Cdr.Scenario.name msg
      | Ok cfg ->
          check_bool (s.Cdr.Scenario.name ^ " config reproduced") true
            (cfg = s.Cdr.Scenario.config))
    Cdr.Scenario.all

(* ---------- protocol placement of the env field ---------- *)

let test_protocol_env_placement () =
  (match parse "{\"id\":\"x\",\"kind\":\"env\",\"params\":{\"version\":2}}" with
  | Ok _ -> Alcotest.fail "env request without params.env accepted"
  | Error (_, msg) -> check_bool "names the missing field" true (String.length msg > 0));
  (match
     parse
       "{\"id\":\"x\",\"kind\":\"analyze\",\"params\":{\"version\":2,\"env\":\"bursty\"}}"
   with
  | Ok _ -> Alcotest.fail "params.env accepted outside env requests"
  | Error _ -> ());
  let req =
    parse_ok "{\"id\":\"x\",\"kind\":\"env\",\"params\":{\"version\":2,\"env\":\"bursty\"}}"
  in
  check_bool "env kind decoded" true (req.Cdr_svc.Protocol.kind = Cdr_svc.Protocol.Env);
  (* forwarding re-encode round-trips the env request exactly *)
  (match parse (Cdr_obs.Jsonl.to_string (Cdr_svc.Protocol.request_json req)) with
  | Ok req' -> check_bool "request_json roundtrips env" true (req = req')
  | Error (_, msg) -> Alcotest.failf "re-encode rejected: %s" msg);
  let sc = parse_ok "{\"id\":\"x\",\"kind\":\"scenarios\"}" in
  check_bool "scenarios kind decoded" true
    (sc.Cdr_svc.Protocol.kind = Cdr_svc.Protocol.Scenarios)

(* ---------- engine ---------- *)

let reply_capture () =
  let captured = ref [] in
  ((fun json -> captured := json :: !captured), fun () -> List.rev !captured)

let is_ok json = Cdr_obs.Jsonl.member "ok" json = Some (Cdr_obs.Jsonl.Bool true)

let job req reply =
  { Cdr_svc.Engine.request = req; deadline = None; admitted = Cdr_obs.Clock.monotonic (); reply }

let env_req ?(id = "e") ?(backend = `Csr) ?(solver = `Multigrid) env =
  {
    Cdr_svc.Protocol.id;
    kind = Cdr_svc.Protocol.Env;
    params = { tiny_params with Cdr_svc.Params.env = Some env; backend; solver };
    deadline_ms = None;
    hold_ms = None;
  }

let result_field name r =
  match Cdr_obs.Jsonl.member "result" r with
  | Some res -> Cdr_obs.Jsonl.member name res
  | None -> None

let test_engine_env_kind () =
  let engine = Cdr_svc.Engine.create () in
  let reply, replies = reply_capture () in
  Cdr_svc.Engine.handle engine (job (env_req ~id:"csr" (Env.bursty ())) reply);
  Cdr_svc.Engine.handle engine (job (env_req ~id:"kron" ~backend:`Kron (Env.bursty ())) reply);
  match replies () with
  | [ csr; kron ] ->
      check_bool "csr env served" true (is_ok csr);
      check_bool "kron env served" true (is_ok kron);
      let ber r =
        match result_field "ber" r with
        | Some (Cdr_obs.Jsonl.Num b) -> b
        | _ -> Alcotest.fail "no ber in env result"
      in
      check_bool "backends agree through the service" true
        (rel_close ~tol:1e-6 (ber csr) (ber kron));
      let regimes r =
        match result_field "regimes" r with
        | Some (Cdr_obs.Jsonl.List l) -> List.length l
        | _ -> Alcotest.fail "no regimes in env result"
      in
      check_int "per-regime stats present" 2 (regimes csr);
      check_int "per-regime stats present (kron)" 2 (regimes kron)
  | rs -> Alcotest.failf "expected 2 replies, got %d" (List.length rs)

let test_engine_scenarios_kind () =
  let engine = Cdr_svc.Engine.create () in
  let reply, replies = reply_capture () in
  Cdr_svc.Engine.handle engine
    (job
       {
         Cdr_svc.Protocol.id = "sc";
         kind = Cdr_svc.Protocol.Scenarios;
         params = Cdr_svc.Params.default;
         deadline_ms = None;
         hold_ms = None;
       }
       reply);
  match replies () with
  | [ r ] -> (
      check_bool "served" true (is_ok r);
      match result_field "scenarios" r with
      | Some (Cdr_obs.Jsonl.List l) ->
          check_int "all presets listed" (List.length Cdr.Scenario.all) (List.length l)
      | _ -> Alcotest.fail "no scenarios list")
  | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs)

(* ---------- golden v1 fixtures ---------- *)

let test_golden_v1_replay () =
  let lines =
    In_channel.with_open_text "fixtures/v1_requests.jsonl" In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  check_bool "fixture file non-empty" true (lines <> []);
  let rc = Cdr_svc.Result_cache.create () in
  let engine = Cdr_svc.Engine.create ~results:rc () in
  let serve line =
    let req =
      match parse line with
      | Ok r -> r
      | Error (_, msg) -> Alcotest.failf "golden v1 request rejected: %s (%s)" msg line
    in
    let reply, replies = reply_capture () in
    Cdr_svc.Engine.handle engine (job req reply);
    match replies () with
    | [ r ] ->
        check_bool ("served: " ^ line) true (is_ok r);
        Cdr_obs.Jsonl.to_string r
    | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs)
  in
  let cold = List.map serve lines in
  let hits0 = Cdr_svc.Result_cache.hits rc in
  let warm = List.map serve lines in
  List.iter2 (fun c w -> check_string "replayed byte-identically" c w) cold warm;
  check_int "every replay came from the result cache"
    (hits0 + List.length lines)
    (Cdr_svc.Result_cache.hits rc)

let () =
  Alcotest.run "env"
    [
      ( "composition",
        [
          Alcotest.test_case "identity is bitwise the base chain" `Quick test_identity_bitwise;
          Alcotest.test_case "csr and kron backends agree" `Quick test_backend_parity;
          Alcotest.test_case "slow switching converges to the mixture" `Slow
            test_slow_switching_mixture_limit;
          Alcotest.test_case "env json roundtrip" `Quick test_env_json_roundtrip;
        ] );
      ( "schema",
        [
          Alcotest.test_case "v1 and v2 decode alike and share cache keys" `Quick
            test_v1_v2_equivalence;
          Alcotest.test_case "version fences" `Quick test_version_fences;
          Alcotest.test_case "deprecation counter" `Quick test_deprecation_counter;
          Alcotest.test_case "scenario seeding" `Quick test_scenario_seeding;
          Alcotest.test_case "env field placement" `Quick test_protocol_env_placement;
        ] );
      ( "engine",
        [
          Alcotest.test_case "env requests serve on both backends" `Slow test_engine_env_kind;
          Alcotest.test_case "scenarios request lists presets" `Quick test_engine_scenarios_kind;
          Alcotest.test_case "golden v1 fixtures replay byte-identically" `Slow
            test_golden_v1_replay;
        ] );
    ]

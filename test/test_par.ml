(* Tests for the Cdr_par domain-pool subsystem: pool combinator semantics
   (order preservation, chunking edge cases, nesting, exceptions), bitwise
   determinism of the parallel sparse kernels and solvers at jobs=1 vs
   jobs=4, parallel sweep determinism, and domain-safety hammers for the
   Cdr_obs metrics registry and JSONL sinks. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* bitwise float-array equality: determinism means the same bits, not "close" *)
let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* ---------- Pool combinators ---------- *)

let test_parallel_map_order () =
  Cdr_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let input = Array.init 257 (fun i -> i) in
  let out = Cdr_par.Pool.parallel_map pool (fun i -> i * i) input in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun i -> i * i) input) out;
  check_int "empty map" 0 (Array.length (Cdr_par.Pool.parallel_map pool (fun i -> i) [||]));
  Alcotest.(check (list int))
    "list map order" [ 0; 2; 4; 6; 8 ]
    (Cdr_par.Pool.map_list pool (fun i -> 2 * i) [ 0; 1; 2; 3; 4 ])

let test_parallel_for_edges () =
  Cdr_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  (* empty range *)
  Cdr_par.Pool.parallel_for pool 0 (fun _ -> Alcotest.fail "f called on empty range");
  (* range smaller than the pool / jobs > elements *)
  let hits = Array.make 3 0 in
  Cdr_par.Pool.parallel_for pool 3 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index exactly once" [| 1; 1; 1 |] hits;
  (* explicit chunk of 1, more chunks than workers *)
  let hits = Array.make 19 0 in
  Cdr_par.Pool.parallel_for pool ~chunk:1 19 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "chunk=1 covers all" (Array.make 19 1) hits;
  check_int "jobs" 4 (Cdr_par.Pool.jobs pool)

let test_parallel_reduce_deterministic () =
  (* a non-associative combine (float addition) must still give identical
     bits at any job count because combination is in index order *)
  let n = 10_000 in
  let map i = 1.0 /. float_of_int (i + 1) in
  let run jobs =
    Cdr_par.Pool.with_pool ~jobs @@ fun pool ->
    Cdr_par.Pool.parallel_reduce pool ~map ~combine:( +. ) ~init:0.0 n
  in
  let serial = ref 0.0 in
  for i = 0 to n - 1 do
    serial := !serial +. map i
  done;
  let r1 = run 1 and r4 = run 4 in
  check_bool "jobs=1 matches serial bits" true (Int64.bits_of_float !serial = Int64.bits_of_float r1);
  check_bool "jobs=4 matches jobs=1 bits" true (Int64.bits_of_float r1 = Int64.bits_of_float r4)

let test_pool_nesting_and_exceptions () =
  Cdr_par.Pool.with_pool ~jobs:4 @@ fun pool ->
  (* a nested batch on the same pool degrades to serial instead of deadlocking *)
  let out = Array.make 16 0 in
  Cdr_par.Pool.parallel_for pool 4 (fun i ->
      Cdr_par.Pool.parallel_for pool 4 (fun j -> out.((4 * i) + j) <- (4 * i) + j));
  Alcotest.(check (array int)) "nested batches complete" (Array.init 16 Fun.id) out;
  (* slot exceptions surface in the caller, and the pool still works after *)
  (match Cdr_par.Pool.parallel_for pool 8 (fun i -> if i = 5 then failwith "slot 5") with
  | () -> Alcotest.fail "expected the slot exception to propagate"
  | exception Failure msg -> Alcotest.(check string) "slot exception" "slot 5" msg);
  let hits = Array.make 8 0 in
  Cdr_par.Pool.parallel_for pool 8 (fun i -> hits.(i) <- 1);
  Alcotest.(check (array int)) "pool usable after exception" (Array.make 8 1) hits

let test_default_jobs_env () =
  let with_env v f =
    let old = Sys.getenv_opt "CDR_JOBS" in
    Unix.putenv "CDR_JOBS" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "CDR_JOBS" (Option.value ~default:"" old)) f
  in
  with_env "3" (fun () -> check_int "CDR_JOBS=3" 3 (Cdr_par.Pool.default_jobs ()));
  with_env "0" (fun () ->
      check_int "CDR_JOBS=0 falls back" (Domain.recommended_domain_count ())
        (Cdr_par.Pool.default_jobs ()));
  with_env "junk" (fun () ->
      check_int "malformed falls back" (Domain.recommended_domain_count ())
        (Cdr_par.Pool.default_jobs ()))

(* ---------- parallel sparse kernels ---------- *)

(* a deterministic pseudo-random row-stochastic CSR large enough (nnz over
   the parallel threshold) that the pooled kernels actually split into slots *)
let synthetic_chain_csr n =
  let state = ref 123456789 in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  let per_row = 8 in
  let row_ptr = Array.init (n + 1) (fun i -> i * per_row) in
  let col_idx = Array.make (n * per_row) 0 in
  let values = Array.make (n * per_row) 0.0 in
  for i = 0 to n - 1 do
    (* distinct sorted columns: a window of 8 starting at a random offset *)
    let start = rand (n - per_row) in
    let weights = Array.init per_row (fun _ -> float_of_int (1 + rand 100)) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    for k = 0 to per_row - 1 do
      col_idx.((i * per_row) + k) <- start + k;
      values.((i * per_row) + k) <- weights.(k) /. total
    done
  done;
  Sparse.Csr.unsafe_make ~rows:n ~cols:n ~row_ptr ~col_idx ~values

let test_csr_kernels_deterministic () =
  let n = 3000 in
  let m = synthetic_chain_csr n in
  check_bool "matrix exceeds the parallel threshold" true (Sparse.Csr.nnz m >= 16384);
  let x = Array.init n (fun i -> 1.0 /. float_of_int (i + 7)) in
  let serial_mv = Sparse.Csr.mul_vec m x in
  let pooled jobs f = Cdr_par.Pool.with_pool ~jobs f in
  let mv1 = pooled 1 (fun pool -> Sparse.Csr.mul_vec ~pool m x) in
  let mv4 = pooled 4 (fun pool -> Sparse.Csr.mul_vec ~pool m x) in
  check_bool "mul_vec pooled jobs=1 == serial (bits)" true (bits_equal serial_mv mv1);
  check_bool "mul_vec jobs=4 == jobs=1 (bits)" true (bits_equal mv1 mv4);
  let vm1 = pooled 1 (fun pool -> Sparse.Csr.vec_mul ~pool x m) in
  let vm4 = pooled 4 (fun pool -> Sparse.Csr.vec_mul ~pool x m) in
  check_bool "vec_mul jobs=4 == jobs=1 (bits)" true (bits_equal vm1 vm4);
  (* the pooled partial-merge grouping differs from the serial scatter only
     in float association: same values up to roundoff *)
  let serial_vm = Sparse.Csr.vec_mul x m in
  Array.iteri
    (fun j v ->
      if Float.abs (v -. serial_vm.(j)) > 1e-15 *. (1.0 +. Float.abs serial_vm.(j)) then
        Alcotest.failf "vec_mul pooled vs serial at %d: %.17g vs %.17g" j v serial_vm.(j))
    vm1

let test_power_solve_deterministic () =
  let chain = Markov.Chain.of_csr (synthetic_chain_csr 3000) in
  let solve jobs =
    Cdr_par.Pool.with_pool ~jobs @@ fun pool ->
    Markov.Power.solve ~tol:1e-10 ~max_iter:300 ~pool chain
  in
  let s1 = solve 1 and s4 = solve 4 in
  check_int "same iteration count" s1.Markov.Solution.iterations s4.Markov.Solution.iterations;
  check_bool "stationary vector bits equal" true
    (bits_equal s1.Markov.Solution.pi s4.Markov.Solution.pi)

(* ---------- parallel sweeps ---------- *)

let sweep_base =
  {
    Cdr.Config.default with
    Cdr.Config.grid_points = 32;
    n_phases = 8;
    max_run = 4;
    nw_max_atoms = 17;
    sigma_w = 0.08;
  }

let test_sweep_deterministic () =
  let lengths = [ 2; 3; 4; 5 ] in
  let run jobs =
    Cdr_par.Pool.with_pool ~jobs @@ fun pool ->
    Cdr.Sweep.counter_lengths ~pool sweep_base lengths
  in
  let p1 = run 1 and p4 = run 4 in
  check_int "same point count" (List.length p1) (List.length p4);
  List.iter2
    (fun a b ->
      check_int "order: counter" a.Cdr.Sweep.config.Cdr.Config.counter_length
        b.Cdr.Sweep.config.Cdr.Config.counter_length;
      check_bool "BER bits equal" true
        (Int64.bits_of_float a.Cdr.Sweep.report.Cdr.Report.ber
        = Int64.bits_of_float b.Cdr.Sweep.report.Cdr.Report.ber);
      check_int "size equal" a.Cdr.Sweep.report.Cdr.Report.size b.Cdr.Sweep.report.Cdr.Report.size;
      check_int "iterations equal" a.Cdr.Sweep.report.Cdr.Report.iterations
        b.Cdr.Sweep.report.Cdr.Report.iterations;
      check_bool "density bits equal" true
        (bits_equal a.Cdr.Sweep.report.Cdr.Report.phase_density
           b.Cdr.Sweep.report.Cdr.Report.phase_density))
    p1 p4;
  (* the lengths arrive back in request order *)
  Alcotest.(check (list int))
    "request order" lengths
    (List.map (fun p -> p.Cdr.Sweep.config.Cdr.Config.counter_length) p4)

let test_optimal_of_points () =
  let points = Cdr.Sweep.counter_lengths sweep_base [ 2; 3; 4 ] in
  let k, ber = Cdr.Sweep.optimal_of_points points in
  let best =
    List.fold_left
      (fun acc p -> Float.min acc p.Cdr.Sweep.report.Cdr.Report.ber)
      Float.infinity points
  in
  check_bool "optimal BER is the minimum" true (ber = best);
  check_bool "optimal k is one of the candidates" true (List.mem k [ 2; 3; 4 ]);
  (match Cdr.Sweep.optimal_of_points [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "optimal_of_points [] must raise")

(* ---------- Cdr_obs domain safety ---------- *)

let test_metrics_hammer () =
  Cdr_obs.Metrics.reset ();
  let domains = 4 and per_domain = 25_000 in
  let worker () =
    for i = 1 to per_domain do
      Cdr_obs.Metrics.incr "par.hammer";
      if i mod 100 = 0 then Cdr_obs.Metrics.observe "par.hammer.obs" (float_of_int i)
    done
  in
  let spawned = Array.init domains (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join spawned;
  let series = Cdr_obs.Metrics.dump () in
  let counter =
    List.find_map
      (fun s ->
        match (s.Cdr_obs.Metrics.name, s.Cdr_obs.Metrics.kind) with
        | "par.hammer", Cdr_obs.Metrics.Counter n -> Some n
        | _ -> None)
      series
  in
  check_int "no lost increments" (domains * per_domain) (Option.get counter);
  let histogram_count =
    List.find_map
      (fun s ->
        match (s.Cdr_obs.Metrics.name, s.Cdr_obs.Metrics.kind) with
        | "par.hammer.obs", Cdr_obs.Metrics.Histogram h -> Some h.Cdr_obs.Metrics.count
        | _ -> None)
      series
  in
  check_int "no torn histogram updates" (domains * (per_domain / 100)) (Option.get histogram_count);
  Cdr_obs.Metrics.reset ()

let test_sink_hammer () =
  let path = Filename.temp_file "cdr_par_sink" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let _sink = Cdr_obs.Sink.install_file path in
  let domains = 4 and per_domain = 500 in
  let worker d () =
    for i = 1 to per_domain do
      Cdr_obs.Span.with_ ~name:(Printf.sprintf "hammer.d%d" d)
        ~attrs:[ ("i", string_of_int i) ]
        (fun () -> ())
    done
  in
  let spawned = Array.init domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join spawned;
  Cdr_obs.Sink.close_all ();
  Cdr_obs.Span.reset ();
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       (* every line must be complete, parseable JSON: no torn writes *)
       (match Cdr_obs.Jsonl.of_string line with
       | Cdr_obs.Jsonl.Obj fields ->
           if not (List.mem_assoc "domain" fields) then
             Alcotest.fail "span event lacks a domain attribute"
       | _ -> Alcotest.fail "expected a JSON object per line");
       incr lines
     done
   with End_of_file -> close_in ic);
  check_int "one intact line per span" (domains * per_domain) !lines

(* ---------- Pool profiler ---------- *)

(* Concurrent per-slot busy accounting must not lose time across domains:
   with profiling on, the busy total for a phase must cover the spin time
   every task provably burned, and every batch and task must be counted
   exactly once whether it was dispatched to the pool or ran serially. *)
let test_profiler_accounting () =
  Cdr_obs.Metrics.reset ();
  Cdr_par.Pool.set_profiling true;
  Fun.protect ~finally:(fun () ->
      Cdr_par.Pool.set_profiling false;
      Cdr_obs.Metrics.reset ())
  @@ fun () ->
  let spin_s = 0.002 in
  let spin () =
    let t0 = Cdr_obs.Clock.monotonic () in
    while Cdr_obs.Clock.monotonic () -. t0 < spin_s do
      ()
    done
  in
  let slots = 8 and batches = 3 in
  let before = Cdr_obs.Profile.collect () in
  Cdr_par.Pool.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to batches do
        Cdr_par.Pool.with_phase ~labels:[ ("level", "0") ] "proftest" (fun () ->
            Cdr_par.Pool.run_slots pool ~slots (fun _ -> spin ()))
      done);
  let prof = Cdr_obs.Profile.sub (Cdr_obs.Profile.collect ()) before in
  let row =
    match List.find_opt (fun r -> Cdr_obs.Profile.phase r = "proftest") prof with
    | Some r -> r
    | None -> Alcotest.fail "no proftest row in the profile"
  in
  (* every task spun for at least spin_s on whichever domain ran it; the
     per-slot accounting must add up to at least that much busy time *)
  let expected_busy = float_of_int (slots * batches) *. spin_s in
  check_bool "no lost busy time across domains" true
    (row.Cdr_obs.Profile.busy >= 0.99 *. expected_busy);
  check_int "every task accounted once" (slots * batches) row.Cdr_obs.Profile.tasks;
  check_int "every batch accounted once" batches
    (row.Cdr_obs.Profile.dispatches + row.Cdr_obs.Profile.serial);
  check_bool "idle clamped non-negative" true (row.Cdr_obs.Profile.idle >= 0.0);
  check_bool "phase wall covers at least one task" true
    (row.Cdr_obs.Profile.wall >= spin_s);
  check_bool "with_phase extra labels retained" true
    (List.assoc_opt "level" row.Cdr_obs.Profile.labels = Some "0");
  (* with profiling off again, pool runs must not create new series *)
  Cdr_par.Pool.set_profiling false;
  let series_off = List.length (Cdr_obs.Metrics.dump ()) in
  Cdr_par.Pool.with_pool ~jobs:4 (fun pool ->
      Cdr_par.Pool.with_phase "offphase" (fun () ->
          Cdr_par.Pool.run_slots pool ~slots (fun _ -> ())));
  check_int "profiling off records nothing" series_off
    (List.length (Cdr_obs.Metrics.dump ()))

let () =
  Alcotest.run "cdr_par"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map order" `Quick test_parallel_map_order;
          Alcotest.test_case "parallel_for edge cases" `Quick test_parallel_for_edges;
          Alcotest.test_case "deterministic reduce" `Quick test_parallel_reduce_deterministic;
          Alcotest.test_case "nesting and exceptions" `Quick test_pool_nesting_and_exceptions;
          Alcotest.test_case "CDR_JOBS parsing" `Quick test_default_jobs_env;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "csr kernels bitwise deterministic" `Quick
            test_csr_kernels_deterministic;
          Alcotest.test_case "power solve bitwise deterministic" `Quick
            test_power_solve_deterministic;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 bitwise" `Quick test_sweep_deterministic;
          Alcotest.test_case "optimal_of_points" `Quick test_optimal_of_points;
        ] );
      ( "profiler",
        [ Alcotest.test_case "no lost busy time" `Quick test_profiler_accounting ] );
      ( "obs-domain-safety",
        [
          Alcotest.test_case "metrics hammer" `Quick test_metrics_hammer;
          Alcotest.test_case "sink hammer" `Quick test_sink_hammer;
        ] );
    ]

(* Tests for the Cdr_obs telemetry library: JSON encode/parse round-trips,
   log-scale histogram bucketing at exact boundaries, span nesting and
   ordering, convergence traces, JSONL sinks, and the Report.run iteration
   counts that are now derived from the trace. *)

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---------- Jsonl ---------- *)

let rec json_equal a b =
  match (a, b) with
  | Cdr_obs.Jsonl.Null, Cdr_obs.Jsonl.Null -> true
  | Cdr_obs.Jsonl.Bool x, Cdr_obs.Jsonl.Bool y -> x = y
  | Cdr_obs.Jsonl.Num x, Cdr_obs.Jsonl.Num y -> x = y || Float.abs (x -. y) < 1e-12 *. Float.abs x
  | Cdr_obs.Jsonl.Str x, Cdr_obs.Jsonl.Str y -> x = y
  | Cdr_obs.Jsonl.List x, Cdr_obs.Jsonl.List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Cdr_obs.Jsonl.Obj x, Cdr_obs.Jsonl.Obj y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2) x y
  | _ -> false

let test_jsonl_roundtrip () =
  let open Cdr_obs.Jsonl in
  let v =
    Obj
      [
        ("type", Str "span");
        ("ok", Bool true);
        ("nothing", Null);
        ("n", Num 42.0);
        ("pi", Num 3.14159);
        ("tiny", Num 2.5e-13);
        ("text", Str "line1\nline2 \"quoted\" back\\slash\ttab");
        ("list", List [ Num 1.0; Str "two"; Bool false; Null ]);
        ("nested", Obj [ ("k", List [ Obj [ ("deep", Num (-7.0)) ] ]) ]);
      ]
  in
  let s = to_string v in
  Alcotest.(check bool) "single line" false (String.contains s '\n');
  Alcotest.(check bool) "round-trip" true (json_equal v (of_string s))

let test_jsonl_encoding () =
  let open Cdr_obs.Jsonl in
  check_str "integral float" "42" (to_string (Num 42.0));
  check_str "negative integral" "-3" (to_string (Num (-3.0)));
  check_str "non-finite is null" "null" (to_string (Num Float.nan));
  check_str "infinite is null" "null" (to_string (Num Float.infinity));
  check_str "escapes" "\"a\\\"b\\\\c\\n\"" (to_string (Str "a\"b\\c\n"));
  (match of_string "\"\\u0041\\u00e9\"" with
  | Str s -> check_str "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "expected string");
  (match of_string "  [1, 2.5e3, true, null]  " with
  | List [ Num a; Num b; Bool true; Null ] ->
      Alcotest.(check (float 0.0)) "1" 1.0 a;
      Alcotest.(check (float 0.0)) "2.5e3" 2500.0 b
  | _ -> Alcotest.fail "expected list");
  (match of_string "{\"a\": 1} trailing" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "trailing garbage must be rejected")

let test_jsonl_member () =
  let open Cdr_obs.Jsonl in
  let v = of_string "{\"name\":\"mg\",\"iter\":7}" in
  check_str "member str" "mg" (Option.get (Option.bind (member "name" v) to_str));
  Alcotest.(check (float 0.0))
    "member num" 7.0
    (Option.get (Option.bind (member "iter" v) to_float));
  Alcotest.(check bool) "missing member" true (member "absent" v = None)

(* ---------- Metrics: log-scale bucketing ---------- *)

let test_bucket_boundaries () =
  let b10 = Cdr_obs.Metrics.bucket_of ~base:10.0 in
  (* exact powers land in their own bucket: base^e <= v < base^(e+1) *)
  check_int "1.0 -> 0" 0 (b10 1.0);
  check_int "10 -> 1" 1 (b10 10.0);
  check_int "100 -> 2" 2 (b10 100.0);
  check_int "1000 -> 3" 3 (b10 1000.0);
  check_int "1e6 -> 6" 6 (b10 1e6);
  check_int "0.1 -> -1" (-1) (b10 0.1);
  check_int "0.01 -> -2" (-2) (b10 0.01);
  check_int "1e-12 -> -12" (-12) (b10 1e-12);
  (* interior values *)
  check_int "999.9 -> 2" 2 (b10 999.9);
  check_int "1000.1 -> 3" 3 (b10 1000.1);
  check_int "0.0999 -> -2" (-2) (b10 0.0999);
  (* non-positive / non-finite -> underflow bucket *)
  check_int "zero" min_int (b10 0.0);
  check_int "negative" min_int (b10 (-5.0));
  check_int "nan" min_int (b10 Float.nan);
  (* base 2 *)
  let b2 = Cdr_obs.Metrics.bucket_of ~base:2.0 in
  check_int "8 -> 3 (base 2)" 3 (b2 8.0);
  check_int "7.99 -> 2 (base 2)" 2 (b2 7.99);
  check_int "0.5 -> -1 (base 2)" (-1) (b2 0.5);
  (* bounds are consistent with bucket_of *)
  let lo, hi = Cdr_obs.Metrics.bucket_bounds ~base:10.0 3 in
  Alcotest.(check (float 1e-9)) "lower bound" 1000.0 lo;
  Alcotest.(check (float 1e-6)) "upper bound" 10000.0 hi

let test_metrics_registry () =
  Cdr_obs.Metrics.reset ();
  Cdr_obs.Metrics.incr "solves" ~labels:[ ("solver", "mg") ];
  Cdr_obs.Metrics.incr "solves" ~labels:[ ("solver", "mg") ];
  (* label order must not create a distinct series *)
  Cdr_obs.Metrics.add "builds" ~labels:[ ("a", "1"); ("b", "2") ] 3;
  Cdr_obs.Metrics.add "builds" ~labels:[ ("b", "2"); ("a", "1") ] 4;
  Cdr_obs.Metrics.set_gauge "residual" 1e-13;
  Cdr_obs.Metrics.observe "seconds" 0.5;
  Cdr_obs.Metrics.observe "seconds" 5.0;
  Cdr_obs.Metrics.observe "seconds" 5000.0;
  let find name =
    List.find (fun s -> s.Cdr_obs.Metrics.name = name) (Cdr_obs.Metrics.dump ())
  in
  (match (find "solves").Cdr_obs.Metrics.kind with
  | Cdr_obs.Metrics.Counter n -> check_int "counter" 2 n
  | _ -> Alcotest.fail "expected counter");
  (match (find "builds").Cdr_obs.Metrics.kind with
  | Cdr_obs.Metrics.Counter n -> check_int "label order merged" 7 n
  | _ -> Alcotest.fail "expected counter");
  (match (find "seconds").Cdr_obs.Metrics.kind with
  | Cdr_obs.Metrics.Histogram h ->
      check_int "histogram count" 3 h.Cdr_obs.Metrics.count;
      check_int "bucket -1" 1 (Hashtbl.find h.Cdr_obs.Metrics.buckets (-1));
      check_int "bucket 0" 1 (Hashtbl.find h.Cdr_obs.Metrics.buckets 0);
      check_int "bucket 3" 1 (Hashtbl.find h.Cdr_obs.Metrics.buckets 3);
      Alcotest.(check (float 1e-9)) "min" 0.5 h.Cdr_obs.Metrics.min_v;
      Alcotest.(check (float 1e-9)) "max" 5000.0 h.Cdr_obs.Metrics.max_v
  | _ -> Alcotest.fail "expected histogram");
  Cdr_obs.Metrics.reset ();
  check_int "reset empties registry" 0 (List.length (Cdr_obs.Metrics.dump ()))

(* Quantile estimates from the log-bucketed histogram, validated against the
   exact quantiles of the raw sample. Because the estimate interpolates inside
   the bucket that contains the exact order statistic, the two can never
   disagree by more than one bucket ratio (here base 2). *)
let test_metrics_quantiles () =
  Cdr_obs.Metrics.reset ();
  Fun.protect ~finally:Cdr_obs.Metrics.reset @@ fun () ->
  (* deterministic multiplicative-congruential sample spanning ~3 decades *)
  let n = 500 in
  let state = ref 123457 in
  let rand () =
    state := (1103515245 * !state + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x3FFFFFFF
  in
  let samples = Array.init n (fun _ -> 1e-3 *. (1000.0 ** rand ())) in
  Array.iter (fun v -> Cdr_obs.Metrics.observe ~base:2.0 "q.latency" v) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let exact q =
    let k = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(min (n - 1) (max 0 k))
  in
  List.iter
    (fun q ->
      let est =
        match Cdr_obs.Metrics.quantile_of "q.latency" q with
        | Some v -> v
        | None -> Alcotest.fail "series missing"
      in
      let ex = exact q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f within one base-2 bucket of exact" q)
        true
        (est >= ex /. 2.0 && est <= ex *. 2.0))
    [ 0.0; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ];
  (* estimates are clamped to the observed range *)
  (match Cdr_obs.Metrics.quantile_of "q.latency" 0.0 with
  | Some v -> Alcotest.(check (float 1e-12)) "q=0 is the min" sorted.(0) v
  | None -> Alcotest.fail "series missing");
  (match Cdr_obs.Metrics.quantile_of "q.latency" 1.0 with
  | Some v -> Alcotest.(check (float 1e-12)) "q=1 is the max" sorted.(n - 1) v
  | None -> Alcotest.fail "series missing");
  (* a single observation answers every quantile exactly *)
  Cdr_obs.Metrics.observe ~base:2.0 "q.single" 5.0;
  List.iter
    (fun q ->
      match Cdr_obs.Metrics.quantile_of "q.single" q with
      | Some v -> Alcotest.(check (float 1e-12)) "single sample" 5.0 v
      | None -> Alcotest.fail "series missing")
    [ 0.0; 0.5; 1.0 ];
  (* non-positive values land in the underflow bucket and report min_v *)
  List.iter (Cdr_obs.Metrics.observe ~base:2.0 "q.under") [ -1.0; 0.0; 3.0 ];
  (match Cdr_obs.Metrics.quantile_of "q.under" 0.1 with
  | Some v -> Alcotest.(check (float 1e-12)) "underflow reports min" (-1.0) v
  | None -> Alcotest.fail "series missing");
  (* unknown series and counters have no quantiles *)
  Cdr_obs.Metrics.incr "q.counter";
  check_bool "missing series" true (Cdr_obs.Metrics.quantile_of "q.absent" 0.5 = None);
  check_bool "counter has no quantiles" true
    (Cdr_obs.Metrics.quantile_of "q.counter" 0.5 = None);
  (* an empty histogram record answers nan *)
  let empty =
    {
      Cdr_obs.Metrics.count = 0;
      sum = 0.0;
      min_v = Float.infinity;
      max_v = Float.neg_infinity;
      base = 10.0;
      buckets = Hashtbl.create 1;
    }
  in
  check_bool "empty histogram is nan" true
    (Float.is_nan (Cdr_obs.Metrics.quantile empty 0.5))

(* ---------- Spans ---------- *)

let test_span_nesting () =
  Cdr_obs.Span.reset ();
  Cdr_obs.Span.set_forced true;
  Fun.protect ~finally:(fun () ->
      Cdr_obs.Span.set_forced false;
      Cdr_obs.Span.reset ())
  @@ fun () ->
  let r =
    Cdr_obs.Span.with_ ~name:"outer" (fun () ->
        Cdr_obs.Span.with_ ~name:"a" (fun () -> ());
        Cdr_obs.Span.with_ ~name:"b" ~attrs:[ ("k", "v") ] (fun () ->
            Cdr_obs.Span.with_ ~name:"b1" (fun () -> ()));
        17)
  in
  check_int "with_ returns f ()" 17 r;
  match Cdr_obs.Span.roots () with
  | [ outer ] ->
      check_str "root name" "outer" outer.Cdr_obs.Span.name;
      check_int "two children" 2 (List.length outer.Cdr_obs.Span.children);
      let names = List.map (fun s -> s.Cdr_obs.Span.name) outer.Cdr_obs.Span.children in
      Alcotest.(check (list string)) "children in start order" [ "a"; "b" ] names;
      let b = List.nth outer.Cdr_obs.Span.children 1 in
      check_str "attrs preserved" "v" (List.assoc "k" b.Cdr_obs.Span.attrs);
      (match b.Cdr_obs.Span.children with
      | [ b1 ] -> check_str "grandchild" "b1" b1.Cdr_obs.Span.name
      | _ -> Alcotest.fail "expected one grandchild");
      Alcotest.(check bool) "durations set" true (outer.Cdr_obs.Span.dur >= 0.0)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_disabled_and_exceptions () =
  Cdr_obs.Span.reset ();
  (* recording off: with_ is transparent and retains nothing *)
  check_int "transparent when off" 5 (Cdr_obs.Span.with_ ~name:"x" (fun () -> 5));
  check_int "nothing retained" 0 (List.length (Cdr_obs.Span.roots ()));
  (* timed still times when recording is off *)
  let v, dt = Cdr_obs.Span.timed ~name:"t" (fun () -> 9) in
  check_int "timed value" 9 v;
  Alcotest.(check bool) "timed elapsed >= 0" true (dt >= 0.0);
  (* spans close on exceptions, so later spans still nest correctly *)
  Cdr_obs.Span.set_forced true;
  Fun.protect ~finally:(fun () ->
      Cdr_obs.Span.set_forced false;
      Cdr_obs.Span.reset ())
  @@ fun () ->
  (try Cdr_obs.Span.with_ ~name:"boom" (fun () -> failwith "expected") with Failure _ -> ());
  Cdr_obs.Span.with_ ~name:"after" (fun () -> ());
  let names = List.map (fun s -> s.Cdr_obs.Span.name) (Cdr_obs.Span.roots ()) in
  Alcotest.(check (list string)) "both roots closed" [ "boom"; "after" ] names

(* ---------- Trace ---------- *)

let test_trace () =
  let t = Cdr_obs.Trace.create ~name:"mg" () in
  check_str "name" "mg" (Cdr_obs.Trace.name t);
  check_int "empty last_iter" 0 (Cdr_obs.Trace.last_iter t);
  Cdr_obs.Trace.record t ~iter:1 ~residual:1e-2;
  Cdr_obs.Trace.record t ~iter:2 ~residual:1e-5;
  Cdr_obs.Trace.record t ~iter:3 ~residual:1e-9;
  check_int "length" 3 (Cdr_obs.Trace.length t);
  check_int "last_iter" 3 (Cdr_obs.Trace.last_iter t);
  let s = Cdr_obs.Trace.samples t in
  check_int "chronological" 1 s.(0).Cdr_obs.Trace.iter;
  Alcotest.(check bool)
    "elapsed monotone" true
    (s.(0).Cdr_obs.Trace.elapsed <= s.(2).Cdr_obs.Trace.elapsed);
  Alcotest.(check bool) "rate >= 0" true (Cdr_obs.Trace.decades_per_second t >= 0.0);
  Cdr_obs.Trace.record_sweeps t ~level:0 ~sweeps:4;
  Cdr_obs.Trace.record_sweeps t ~level:1 ~sweeps:4;
  Cdr_obs.Trace.record_sweeps t ~level:0 ~sweeps:4;
  Alcotest.(check (list (pair int int)))
    "sweeps by level" [ (0, 8); (1, 4) ] (Cdr_obs.Trace.sweeps_by_level t);
  check_int "total sweeps" 12 (Cdr_obs.Trace.total_sweeps t);
  let csv = Cdr_obs.Trace.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "csv rows" 4 (List.length lines);
  check_str "csv header" "iter,residual,elapsed_s" (List.hd lines);
  (match String.split_on_char ',' (List.nth lines 1) with
  | [ it; res; _el ] ->
      check_int "csv iter" 1 (int_of_string it);
      Alcotest.(check (float 1e-15)) "csv residual" 1e-2 (float_of_string res)
  | _ -> Alcotest.fail "csv row shape")

(* ---------- Sink: JSONL file round-trip ---------- *)

let test_sink_jsonl_file () =
  let path = Filename.temp_file "cdr_obs_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
  @@ fun () ->
  Alcotest.(check bool) "disabled initially" false (Cdr_obs.Sink.enabled ());
  let _sink = Cdr_obs.Sink.install_file path in
  Alcotest.(check bool) "enabled after install" true (Cdr_obs.Sink.enabled ());
  let t = Cdr_obs.Trace.create ~name:"power" () in
  Cdr_obs.Trace.record t ~iter:1 ~residual:0.5;
  Cdr_obs.Trace.record t ~iter:2 ~residual:0.25;
  Cdr_obs.Span.with_ ~name:"scope" (fun () -> ());
  Cdr_obs.Sink.close_all ();
  Alcotest.(check bool) "disabled after close" false (Cdr_obs.Sink.enabled ());
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let events = List.rev_map Cdr_obs.Jsonl.of_string !lines in
  check_int "three events" 3 (List.length events);
  let typ e = Option.get (Option.bind (Cdr_obs.Jsonl.member "type" e) Cdr_obs.Jsonl.to_str) in
  Alcotest.(check (list string))
    "event types" [ "sample"; "sample"; "span" ] (List.map typ events);
  let first = List.hd events in
  check_str "trace name on event" "power"
    (Option.get (Option.bind (Cdr_obs.Jsonl.member "trace" first) Cdr_obs.Jsonl.to_str));
  Alcotest.(check (float 0.0))
    "residual on event" 0.5
    (Option.get (Option.bind (Cdr_obs.Jsonl.member "residual" first) Cdr_obs.Jsonl.to_float))

(* ---------- Report.run populates iterations from the trace ---------- *)

let small =
  {
    Cdr.Config.default with
    Cdr.Config.grid_points = 32;
    n_phases = 8;
    counter_length = 3;
    max_run = 4;
    nw_max_atoms = 17;
    sigma_w = 0.08;
  }

let test_report_iterations () =
  let cfg = Cdr.Config.create_exn small in
  List.iter
    (fun (name, solver) ->
      let report = Cdr.Report.run ~solver cfg in
      let trace = report.Cdr.Report.trace in
      Alcotest.(check bool) (name ^ ": trace non-empty") true (Cdr_obs.Trace.length trace > 0);
      Alcotest.(check bool) (name ^ ": iterations > 0") true (report.Cdr.Report.iterations > 0);
      check_int
        (name ^ ": iterations match trace")
        (Cdr_obs.Trace.last_iter trace) report.Cdr.Report.iterations;
      (match Cdr_obs.Trace.last trace with
      | Some s ->
          Alcotest.(check bool)
            (name ^ ": final residual below tol")
            true
            (s.Cdr_obs.Trace.residual < 1e-10)
      | None -> Alcotest.fail "trace empty");
      if solver = `Multigrid then
        Alcotest.(check bool)
          "multigrid records sweeps on every level" true
          (List.length (Cdr_obs.Trace.sweeps_by_level trace) > 1))
    [ ("multigrid", `Multigrid); ("power", `Power); ("gauss-seidel", `Gauss_seidel) ]

let () =
  Alcotest.run "cdr_obs"
    [
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "encoding" `Quick test_jsonl_encoding;
          Alcotest.test_case "member access" `Quick test_jsonl_member;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "quantiles vs exact" `Quick test_metrics_quantiles;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "disabled / exceptions" `Quick test_span_disabled_and_exceptions;
        ] );
      ("trace", [ Alcotest.test_case "samples, sweeps, csv" `Quick test_trace ]);
      ("sink", [ Alcotest.test_case "jsonl file round-trip" `Quick test_sink_jsonl_file ]);
      ( "report",
        [ Alcotest.test_case "iterations from trace" `Quick test_report_iterations ] );
    ]

(* Tests for the serving layer (Cdr_svc) and the unified Context API:
   request parsing and strict rejection of unknown fields, admission-queue
   backpressure at the bound, deadline timeouts that leave the engine
   serving, structure batching hitting the shared solver cache, cache
   eviction accounting, and bitwise equivalence of Context-carried options
   against the historical per-call optional arguments. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* small enough that an analyze request runs in well under a second *)
let tiny_params =
  { Cdr_svc.Params.default with Cdr_svc.Params.grid = 32; phases = 16; counter = 2 }

let tiny_json extra =
  Cdr_obs.Jsonl.to_string
    (Cdr_obs.Jsonl.Obj
       ([ ("grid", Cdr_obs.Jsonl.Num 32.); ("phases", Num 16.); ("counter", Num 2.) ] @ extra))

(* ---------- Params ---------- *)

let test_params_roundtrip () =
  let p = { tiny_params with Cdr_svc.Params.sigma_w = 0.07; solver = `Power } in
  match Cdr_svc.Params.of_json (Cdr_svc.Params.to_json p) with
  | Error msg -> Alcotest.failf "roundtrip rejected: %s" msg
  | Ok p' -> check_bool "to_json/of_json roundtrips" true (p = p')

let test_params_unknown_field () =
  match Cdr_svc.Params.of_json (Cdr_obs.Jsonl.Obj [ ("gird", Num 64.) ]) with
  | Ok _ -> Alcotest.fail "typo'd field accepted"
  | Error msg -> check_bool "message names the field" true (String.length msg > 0)

let test_params_keys () =
  let p = tiny_params in
  let q = { p with Cdr_svc.Params.sigma_w = p.Cdr_svc.Params.sigma_w *. 2. } in
  check_string "noise delta keeps the structure key" (Cdr_svc.Params.structure_key p)
    (Cdr_svc.Params.structure_key q);
  let r = { p with Cdr_svc.Params.counter = 4 } in
  check_bool "counter change splits the structure key" true
    (Cdr_svc.Params.structure_key p <> Cdr_svc.Params.structure_key r);
  let s = { p with Cdr_svc.Params.smoother = `Colored } in
  check_bool "smoother is part of the structure key" true
    (Cdr_svc.Params.structure_key p <> Cdr_svc.Params.structure_key s);
  check_string "smoother does not split the model key" (Cdr_svc.Params.model_key p)
    (Cdr_svc.Params.model_key s);
  let k = { p with Cdr_svc.Params.backend = `Kron } in
  check_bool "backend is part of the structure key" true
    (Cdr_svc.Params.structure_key p <> Cdr_svc.Params.structure_key k);
  check_string "backend does not split the model key" (Cdr_svc.Params.model_key p)
    (Cdr_svc.Params.model_key k)

let test_params_backend_codec () =
  let p = { tiny_params with Cdr_svc.Params.backend = `Kron } in
  (match Cdr_svc.Params.of_json (Cdr_svc.Params.to_json p) with
  | Error msg -> Alcotest.failf "kron roundtrip rejected: %s" msg
  | Ok p' -> check_bool "backend survives the roundtrip" true (p = p'));
  match
    Cdr_svc.Params.of_json
      (Cdr_obs.Jsonl.Obj [ ("backend", Cdr_obs.Jsonl.Str "dense") ])
  with
  | Ok _ -> Alcotest.fail "unknown backend accepted"
  | Error msg -> check_bool "message mentions the value" true (String.length msg > 0)

(* ---------- Protocol.parse_request ---------- *)

let parse = Cdr_svc.Protocol.parse_request

let test_parse_ok () =
  match parse ("{\"id\":\"r1\",\"kind\":\"analyze\",\"params\":" ^ tiny_json [] ^ "}") with
  | exception _ -> Alcotest.fail "raised"
  | Error (_, msg) -> Alcotest.failf "rejected: %s" msg
  | Ok req ->
      check_string "id" "r1" req.Cdr_svc.Protocol.id;
      check_bool "kind" true (req.Cdr_svc.Protocol.kind = Cdr_svc.Protocol.Analyze);
      check_int "grid decoded" 32 req.Cdr_svc.Protocol.params.Cdr_svc.Params.grid

let test_parse_ok_defaults () =
  (match parse "{\"id\":\"r2\",\"kind\":\"sweep\"}" with
  | Error (_, msg) -> Alcotest.failf "rejected: %s" msg
  | Ok req ->
      check_bool "default lengths" true
        (req.Cdr_svc.Protocol.kind = Cdr_svc.Protocol.Sweep Cdr_svc.Protocol.default_lengths);
      check_bool "default params" true
        (req.Cdr_svc.Protocol.params = Cdr_svc.Params.default));
  match parse "{\"id\":\"r3\",\"kind\":\"sigma\",\"values\":[0.05]}" with
  | Error (_, msg) -> Alcotest.failf "rejected: %s" msg
  | Ok req ->
      check_bool "explicit values" true
        (req.Cdr_svc.Protocol.kind = Cdr_svc.Protocol.Sigma [ 0.05 ])

let reject line expect_id =
  match parse line with
  | Ok _ -> Alcotest.failf "accepted: %s" line
  | Error (id, msg) ->
      check_bool "rejection carries the id when parseable" true (id = expect_id);
      check_bool "rejection has a message" true (String.length msg > 0)

let test_parse_reject () =
  reject "not json" None;
  reject "[1,2]" None;
  reject "{\"kind\":\"analyze\"}" None;
  reject "{\"id\":\"\",\"kind\":\"analyze\"}" None;
  reject "{\"id\":\"x\",\"kind\":\"frobnicate\"}" (Some "x");
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"paramz\":{}}" (Some "x");
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"params\":{\"gird\":64}}" (Some "x");
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"lengths\":[2]}" (Some "x");
  reject "{\"id\":\"x\",\"kind\":\"sweep\",\"values\":[0.05]}" (Some "x");
  reject "{\"id\":\"x\",\"kind\":\"sweep\",\"lengths\":[]}" (Some "x");
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"deadline_ms\":-5}" (Some "x");
  reject "{\"id\":\"x\",\"kind\":\"analyze\",\"params\":{\"grid\":\"many\"}}" (Some "x")

(* ---------- Admission ---------- *)

let test_admission_backpressure () =
  let q = Cdr_svc.Admission.create ~bound:2 () in
  check_bool "push 1" true (Cdr_svc.Admission.push q 1 = `Ok);
  check_bool "push 2" true (Cdr_svc.Admission.push q 2 = `Ok);
  check_bool "push 3 refused at bound 2" true (Cdr_svc.Admission.push q 3 = `Overloaded);
  check_bool "pop returns fifo head" true (Cdr_svc.Admission.pop q = Some 1);
  check_bool "freed capacity admits again" true (Cdr_svc.Admission.push q 4 = `Ok);
  check_bool "drain empties in order" true (Cdr_svc.Admission.drain q = [ 2; 4 ]);
  Cdr_svc.Admission.close q;
  check_bool "push after close" true (Cdr_svc.Admission.push q 5 = `Closed);
  check_bool "pop after close on empty" true (Cdr_svc.Admission.pop q = None);
  (* closed but non-empty queues still drain: shutdown answers what it
     admitted *)
  let q2 = Cdr_svc.Admission.create ~bound:2 () in
  ignore (Cdr_svc.Admission.push q2 7);
  Cdr_svc.Admission.close q2;
  check_bool "pop drains queued work after close" true (Cdr_svc.Admission.pop q2 = Some 7);
  check_bool "then reports closed" true (Cdr_svc.Admission.pop q2 = None)

(* ---------- Engine ---------- *)

let reply_capture () =
  let captured = ref [] in
  ((fun json -> captured := json :: !captured), fun () -> List.rev !captured)

let field name json =
  match Cdr_obs.Jsonl.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" name

let is_ok json = field "ok" json = Cdr_obs.Jsonl.Bool true

let error_code json =
  match Cdr_obs.Jsonl.member "code" (field "error" json) with
  | Some (Cdr_obs.Jsonl.Str s) -> s
  | _ -> Alcotest.fail "error without code"

let analyze_req ?(id = "t") ?(params = tiny_params) () =
  {
    Cdr_svc.Protocol.id;
    kind = Cdr_svc.Protocol.Analyze;
    params;
    deadline_ms = None;
    hold_ms = None;
  }

let test_engine_timeout_then_serve () =
  let engine = Cdr_svc.Engine.create () in
  let reply, replies = reply_capture () in
  (* expired before it starts: queue wait counts against the deadline *)
  Cdr_svc.Engine.handle engine
    {
      Cdr_svc.Engine.request = analyze_req ~id:"late" ();
      deadline = Some (Cdr_obs.Clock.monotonic () -. 1.);
      admitted = Cdr_obs.Clock.monotonic ();
      reply;
    };
  (* the engine must keep serving afterwards *)
  Cdr_svc.Engine.handle engine
    {
      Cdr_svc.Engine.request = analyze_req ~id:"after" ();
      deadline = None;
      admitted = Cdr_obs.Clock.monotonic ();
      reply;
    };
  match replies () with
  | [ timeout; ok ] ->
      check_bool "first timed out" false (is_ok timeout);
      check_string "timeout code" "timeout" (error_code timeout);
      check_bool "second served" true (is_ok ok)
  | rs -> Alcotest.failf "expected 2 replies, got %d" (List.length rs)

let test_engine_batch_cache_hits () =
  let engine = Cdr_svc.Engine.create () in
  let reply, replies = reply_capture () in
  (* vary the transition probability, not sigma_w: a sigma delta can move
     the reachable state set (fresh pattern, no reuse), while p_transition
     keeps every nonzero in place — the noise-only refill path *)
  let ps = [ 0.5; 0.45; 0.4 ] in
  let jobs =
    List.mapi
      (fun i p ->
        {
          Cdr_svc.Engine.request =
            analyze_req
              ~id:(Printf.sprintf "b%d" i)
              ~params:{ tiny_params with Cdr_svc.Params.p01 = p; p10 = p }
              ();
          deadline = None;
          admitted = Cdr_obs.Clock.monotonic ();
          reply;
        })
      ps
  in
  Cdr_svc.Engine.process engine jobs;
  let rs = replies () in
  check_int "every job answered" (List.length ps) (List.length rs);
  List.iter (fun r -> check_bool "answered ok" true (is_ok r)) rs;
  check_bool "same-structure batch hits the shared cache" true
    (Cdr.Solver_cache.hits (Cdr_svc.Engine.cache engine) > 0);
  (* the per-response cache delta reports the hits too *)
  let hits r =
    match Cdr_obs.Jsonl.(member "hits" (field "cache" r)) with
    | Some (Cdr_obs.Jsonl.Num h) -> int_of_float h
    | _ -> Alcotest.fail "no cache.hits"
  in
  check_bool "later responses report hits" true (List.exists (fun r -> hits r > 0) rs)

let test_engine_bad_config () =
  let engine = Cdr_svc.Engine.create () in
  let reply, replies = reply_capture () in
  (* grid not a multiple of phases: Config.validate must reject it *)
  Cdr_svc.Engine.handle engine
    {
      Cdr_svc.Engine.request =
        analyze_req ~id:"bad" ~params:{ tiny_params with Cdr_svc.Params.phases = 7 } ();
      deadline = None;
      admitted = Cdr_obs.Clock.monotonic ();
      reply;
    };
  match replies () with
  | [ r ] ->
      check_bool "rejected" false (is_ok r);
      check_string "bad_request code" "bad_request" (error_code r)
  | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs)

let kron_params = { tiny_params with Cdr_svc.Params.backend = `Kron }

let test_engine_kron_analyze () =
  let engine = Cdr_svc.Engine.create () in
  let reply, replies = reply_capture () in
  let submit id params =
    Cdr_svc.Engine.handle engine
      {
        Cdr_svc.Engine.request = analyze_req ~id ~params ();
        deadline = None;
        admitted = Cdr_obs.Clock.monotonic ();
        reply;
      }
  in
  submit "kron" kron_params;
  submit "csr" tiny_params;
  match replies () with
  | [ kron; csr ] ->
      check_bool "kron analyze served" true (is_ok kron);
      check_bool "csr analyze served" true (is_ok csr);
      let num name r =
        match Cdr_obs.Jsonl.member name (field "result" r) with
        | Some (Cdr_obs.Jsonl.Num v) -> v
        | _ -> Alcotest.failf "result lacks %S" name
      in
      (* same response shape as the csr path, BER at solver tolerance *)
      check_bool "ber agrees across backends" true
        (Float.abs (num "ber" kron -. num "ber" csr)
         /. Float.max (num "ber" csr) 1e-300
        < 1e-6);
      check_bool "kron solves the full product space" true
        (num "size" kron >= num "size" csr);
      check_bool "kron reports slips" true (num "mean_bits_between_slips" kron > 0.0)
  | rs -> Alcotest.failf "expected 2 replies, got %d" (List.length rs)

let test_engine_kron_unsupported_kinds () =
  let engine = Cdr_svc.Engine.create () in
  let reply, replies = reply_capture () in
  let submit id kind =
    Cdr_svc.Engine.handle engine
      {
        Cdr_svc.Engine.request =
          { (analyze_req ~id ~params:kron_params ()) with Cdr_svc.Protocol.kind };
        deadline = None;
        admitted = Cdr_obs.Clock.monotonic ();
        reply;
      }
  in
  submit "slip" Cdr_svc.Protocol.Slip;
  submit "sweep" (Cdr_svc.Protocol.Sweep Cdr_svc.Protocol.default_lengths);
  submit "sigma" (Cdr_svc.Protocol.Sigma [ 0.05 ]);
  (* a client mistake, not an engine failure: the engine keeps serving *)
  submit "after" Cdr_svc.Protocol.Analyze;
  match replies () with
  | [ slip; sweep; sigma; after ] ->
      List.iter
        (fun r ->
          check_bool "rejected" false (is_ok r);
          check_string "bad_request code" "bad_request" (error_code r))
        [ slip; sweep; sigma ];
      check_bool "engine still serves kron analyze" true (is_ok after)
  | rs -> Alcotest.failf "expected 4 replies, got %d" (List.length rs)

(* ---------- Stats round-trip ---------- *)

(* A "stats" request parses off the wire, flows through Engine.handle like a
   solve, and answers with a metrics/uptime snapshot that already reflects
   the requests handled before it. *)
let test_engine_stats_roundtrip () =
  (match parse "{\"id\":\"s1\",\"kind\":\"stats\"}" with
  | Error (_, msg) -> Alcotest.failf "stats request rejected: %s" msg
  | Ok req ->
      check_bool "kind is stats" true (req.Cdr_svc.Protocol.kind = Cdr_svc.Protocol.Stats));
  (* sweep/sigma-only fields stay rejected on a stats request *)
  reject "{\"id\":\"s2\",\"kind\":\"stats\",\"lengths\":[2]}" (Some "s2");
  reject "{\"id\":\"s3\",\"kind\":\"stats\",\"values\":[0.05]}" (Some "s3");
  let engine = Cdr_svc.Engine.create () in
  let reply, replies = reply_capture () in
  let submit req =
    Cdr_svc.Engine.handle engine
      {
        Cdr_svc.Engine.request = req;
        deadline = None;
        admitted = Cdr_obs.Clock.monotonic ();
        reply;
      }
  in
  submit (analyze_req ~id:"warm" ());
  submit { (analyze_req ~id:"snap" ()) with Cdr_svc.Protocol.kind = Cdr_svc.Protocol.Stats };
  match replies () with
  | [ warm; snap ] -> (
      check_bool "analyze ok" true (is_ok warm);
      check_bool "stats ok" true (is_ok snap);
      let result = field "result" snap in
      (match Cdr_obs.Jsonl.member "uptime_s" result with
      | Some (Cdr_obs.Jsonl.Num u) -> check_bool "uptime positive" true (u > 0.0)
      | _ -> Alcotest.fail "stats lacks uptime_s");
      (match Cdr_obs.Jsonl.member "queue_depth" result with
      | Some (Cdr_obs.Jsonl.Num _) -> ()
      | _ -> Alcotest.fail "stats lacks queue_depth");
      (* the warm analyze is already visible in the request counters *)
      (match Cdr_obs.Jsonl.member "requests" result with
      | Some (Cdr_obs.Jsonl.List rows) ->
          check_bool "analyze/ok counted" true
            (List.exists
               (fun row ->
                 Cdr_obs.Jsonl.member "kind" row = Some (Cdr_obs.Jsonl.Str "analyze")
                 && Cdr_obs.Jsonl.member "status" row = Some (Cdr_obs.Jsonl.Str "ok"))
               rows)
      | _ -> Alcotest.fail "stats lacks requests");
      (* ... and in the latency histograms, with interpolated quantiles *)
      (match Cdr_obs.Jsonl.member "latency_seconds" result with
      | Some (Cdr_obs.Jsonl.List (row :: _)) ->
          List.iter
            (fun f ->
              match Cdr_obs.Jsonl.member f row with
              | Some (Cdr_obs.Jsonl.Num v) ->
                  check_bool (f ^ " non-negative") true (v >= 0.0)
              | _ -> Alcotest.failf "latency row lacks %s" f)
            [ "mean"; "p50"; "p95"; "p99" ]
      | _ -> Alcotest.fail "stats lacks latency_seconds rows");
      match Cdr_obs.Jsonl.member "cache" result with
      | Some cache ->
          check_bool "cache entry count reported" true
            (Cdr_obs.Jsonl.member "entries" cache <> None)
      | None -> Alcotest.fail "stats lacks cache")
  | rs -> Alcotest.failf "expected 2 replies, got %d" (List.length rs)

(* ---------- Solver_cache eviction accounting ---------- *)

let test_cache_evictions () =
  let cache = Cdr.Solver_cache.create ~max_entries:1 () in
  let model_of counter =
    Cdr.Model.build
      (match Cdr_svc.Params.to_config { tiny_params with Cdr_svc.Params.counter } with
      | Ok cfg -> cfg
      | Error msg -> Alcotest.failf "config: %s" msg)
  in
  let m2 = model_of 2 and m3 = model_of 3 in
  let setup_of m =
    ignore
      (Cdr.Solver_cache.setup cache
         ~hierarchy:(fun () -> Cdr.Model.hierarchy m)
         m.Cdr.Model.chain)
  in
  setup_of m2;
  check_int "no eviction while capacity lasts" 0 (Cdr.Solver_cache.evictions cache);
  setup_of m3;
  check_int "second structure evicts the first" 1 (Cdr.Solver_cache.evictions cache);
  check_int "size stays at the bound" 1 (Cdr.Solver_cache.length cache);
  setup_of m2;
  check_int "round trip evicts again" 2 (Cdr.Solver_cache.evictions cache)

(* ---------- Context vs per-call optional arguments ---------- *)

let test_context_equivalence () =
  let cfg =
    match Cdr_svc.Params.to_config tiny_params with
    | Ok cfg -> cfg
    | Error msg -> Alcotest.failf "config: %s" msg
  in
  let via_args = Cdr.Report.run ~solver:`Multigrid ~smoother:`Lex cfg in
  let ctx = Cdr.Context.make ~smoother:`Lex () in
  let via_ctx = Cdr.Report.run ~solver:`Multigrid ~ctx cfg in
  check_bool "ber bitwise equal" true
    (Int64.bits_of_float via_args.Cdr.Report.ber = Int64.bits_of_float via_ctx.Cdr.Report.ber);
  check_int "iterations equal" via_args.Cdr.Report.iterations via_ctx.Cdr.Report.iterations;
  check_bool "phase density bitwise equal" true
    (bits_equal via_args.Cdr.Report.phase_density via_ctx.Cdr.Report.phase_density)

let () =
  Alcotest.run "svc"
    [
      ( "params",
        [
          Alcotest.test_case "json roundtrip" `Quick test_params_roundtrip;
          Alcotest.test_case "unknown field rejected" `Quick test_params_unknown_field;
          Alcotest.test_case "backend codec" `Quick test_params_backend_codec;
          Alcotest.test_case "structure and model keys" `Quick test_params_keys;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "well-formed request" `Quick test_parse_ok;
          Alcotest.test_case "defaults fill in" `Quick test_parse_ok_defaults;
          Alcotest.test_case "malformed and unknown-field requests" `Quick test_parse_reject;
        ] );
      ( "admission",
        [ Alcotest.test_case "backpressure at bound 2" `Quick test_admission_backpressure ] );
      ( "engine",
        [
          Alcotest.test_case "timeout then keeps serving" `Quick test_engine_timeout_then_serve;
          Alcotest.test_case "same-structure batch hits cache" `Quick
            test_engine_batch_cache_hits;
          Alcotest.test_case "invalid config is bad_request" `Quick test_engine_bad_config;
          Alcotest.test_case "kron analyze matches csr" `Quick test_engine_kron_analyze;
          Alcotest.test_case "kron-unsupported kinds are bad_request" `Quick
            test_engine_kron_unsupported_kinds;
          Alcotest.test_case "stats round-trip" `Quick test_engine_stats_roundtrip;
        ] );
      ( "cache",
        [ Alcotest.test_case "eviction counter" `Quick test_cache_evictions ] );
      ( "context",
        [ Alcotest.test_case "bitwise equals optional args" `Quick test_context_equivalence ] );
    ]

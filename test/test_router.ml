(* Tests for the multi-replica serving layer: rendezvous routing stability
   and minimal re-routing when a replica dies, the result-memoization
   cache's byte-identical replay through the engine, its LRU accounting,
   disk persistence round-trips, and the request re-encoding the router
   uses to forward a parsed request under its internal correlation id. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tiny_params =
  { Cdr_svc.Params.default with Cdr_svc.Params.grid = 32; phases = 16; counter = 2 }

(* ---------- rendezvous routing ---------- *)

let keys n = List.init n (fun i -> Printf.sprintf "g%d|p16|c%d|mg|lex|csr" (32 + i) (2 + i))

let test_route_deterministic () =
  let ks = keys 64 in
  List.iter
    (fun k ->
      let a = Cdr_svc.Router.route ~replicas:4 k in
      let b = Cdr_svc.Router.route ~replicas:4 k in
      check_bool "same key routes identically" true (a = b && a <> None);
      match a with
      | Some i -> check_bool "replica in range" true (i >= 0 && i < 4)
      | None -> Alcotest.fail "no replica with all live")
    ks;
  (* every replica owns some keys: the hash actually spreads *)
  let owners =
    List.sort_uniq compare (List.filter_map (Cdr_svc.Router.route ~replicas:4) ks)
  in
  check_int "all 4 replicas own keys" 4 (List.length owners);
  (* structure_key is the routing input: same structure, same replica *)
  let p = tiny_params in
  let q = { p with Cdr_svc.Params.sigma_w = p.Cdr_svc.Params.sigma_w *. 2. } in
  check_bool "noise-only param deltas keep the route" true
    (Cdr_svc.Router.route ~replicas:4 (Cdr_svc.Params.structure_key p)
    = Cdr_svc.Router.route ~replicas:4 (Cdr_svc.Params.structure_key q))

let test_route_rerouting_is_minimal () =
  let ks = keys 128 in
  let before = List.map (fun k -> (k, Cdr_svc.Router.route ~replicas:4 k)) ks in
  let victim =
    match snd (List.hd before) with Some i -> i | None -> Alcotest.fail "no route"
  in
  let dead i = i = victim in
  List.iter
    (fun (k, prev) ->
      let now = Cdr_svc.Router.route ~dead ~replicas:4 k in
      match (prev, now) with
      | Some p, Some n when p = victim ->
          check_bool "orphaned key moved to a live replica" true (n <> victim)
      | Some p, Some n ->
          (* the rendezvous property: keys not owned by the victim do not
             move — their highest scorer is still alive *)
          check_int "unaffected key kept its home" p n
      | _ -> Alcotest.fail "route vanished")
    before;
  (* all replicas dead: no route *)
  check_bool "no live replica -> None" true
    (Cdr_svc.Router.route ~dead:(fun _ -> true) ~replicas:4 (List.hd ks) = None)

(* ---------- result memoization through the engine ---------- *)

let reply_capture () =
  let captured = ref [] in
  ((fun json -> captured := json :: !captured), fun () -> List.rev !captured)

let analyze_req ?(id = "t") ?(params = tiny_params) () =
  {
    Cdr_svc.Protocol.id;
    kind = Cdr_svc.Protocol.Analyze;
    params;
    deadline_ms = None;
    hold_ms = None;
  }

let submit engine reply req =
  Cdr_svc.Engine.handle engine
    {
      Cdr_svc.Engine.request = req;
      deadline = None;
      admitted = Cdr_obs.Clock.monotonic ();
      reply;
    }

let test_memo_hit_byte_identical () =
  let rc = Cdr_svc.Result_cache.create ~capacity:8 () in
  let engine = Cdr_svc.Engine.create ~results:rc () in
  let reply, replies = reply_capture () in
  submit engine reply (analyze_req ~id:"cold" ());
  submit engine reply (analyze_req ~id:"hot" ());
  submit engine reply (analyze_req ~id:"cold" ());
  match replies () with
  | [ cold; hot; again ] ->
      check_int "one miss" 1 (Cdr_svc.Result_cache.misses rc);
      check_int "two hits" 2 (Cdr_svc.Result_cache.hits rc);
      (* the replay is byte-identical to the cold solve: stored envelope
         (elapsed_ms, cache deltas) and all — only the id differs *)
      check_string "hit replays the stored bytes under its own id"
        (Cdr_obs.Jsonl.to_string
           (Cdr_svc.Protocol.response_with_id cold "hot"))
        (Cdr_obs.Jsonl.to_string hot);
      check_string "same id replays the exact cold bytes"
        (Cdr_obs.Jsonl.to_string cold)
        (Cdr_obs.Jsonl.to_string again)
  | rs -> Alcotest.failf "expected 3 replies, got %d" (List.length rs)

let test_memo_exclusions () =
  (* stats and hold_ms requests must never be replayed *)
  check_bool "stats has no cache key" true
    (Cdr_svc.Protocol.cache_key
       { (analyze_req ()) with Cdr_svc.Protocol.kind = Cdr_svc.Protocol.Stats }
    = None);
  check_bool "hold_ms has no cache key" true
    (Cdr_svc.Protocol.cache_key { (analyze_req ()) with Cdr_svc.Protocol.hold_ms = Some 5.0 }
    = None);
  (* different params, different key; same params, same key *)
  let k1 = Cdr_svc.Protocol.cache_key (analyze_req ()) in
  let k2 = Cdr_svc.Protocol.cache_key (analyze_req ~id:"other" ()) in
  check_bool "key ignores the request id" true (k1 = k2 && k1 <> None);
  let k3 =
    Cdr_svc.Protocol.cache_key
      (analyze_req ~params:{ tiny_params with Cdr_svc.Params.sigma_w = 0.09 } ())
  in
  check_bool "key depends on params" true (k1 <> k3);
  (* deadline shapes timeliness, not content: same key *)
  let k4 =
    Cdr_svc.Protocol.cache_key
      { (analyze_req ()) with Cdr_svc.Protocol.deadline_ms = Some 500.0 }
  in
  check_bool "key ignores the deadline" true (k1 = k4)

(* ---------- LRU accounting ---------- *)

let resp tag = Cdr_obs.Jsonl.Obj [ ("ok", Bool true); ("tag", Str tag) ]

let test_lru_eviction () =
  let rc = Cdr_svc.Result_cache.create ~capacity:2 () in
  Cdr_svc.Result_cache.store rc "a" (resp "a");
  Cdr_svc.Result_cache.store rc "b" (resp "b");
  check_int "no eviction at capacity" 0 (Cdr_svc.Result_cache.evictions rc);
  (* touch "a": it becomes most recent, so "b" is the victim *)
  check_bool "a found" true (Cdr_svc.Result_cache.find rc "a" <> None);
  Cdr_svc.Result_cache.store rc "c" (resp "c");
  check_int "third entry evicts" 1 (Cdr_svc.Result_cache.evictions rc);
  check_int "size stays at capacity" 2 (Cdr_svc.Result_cache.length rc);
  check_bool "recency refresh saved a" true (Cdr_svc.Result_cache.find rc "a" <> None);
  check_bool "lru b evicted" true (Cdr_svc.Result_cache.find rc "b" = None);
  check_bool "c present" true (Cdr_svc.Result_cache.find rc "c" <> None)

(* ---------- persistence ---------- *)

let test_persistence_roundtrip () =
  let path = Filename.temp_file "cdr_result_cache" ".jsonl" in
  let rc = Cdr_svc.Result_cache.create ~capacity:8 () in
  Cdr_svc.Result_cache.store rc "a" (resp "a");
  Cdr_svc.Result_cache.store rc "b" (resp "b");
  Cdr_svc.Result_cache.store rc "c" (resp "c");
  Cdr_svc.Result_cache.save rc path;
  let rc' = Cdr_svc.Result_cache.load ~capacity:8 path in
  check_int "all entries reloaded" 3 (Cdr_svc.Result_cache.length rc');
  List.iter
    (fun key ->
      match Cdr_svc.Result_cache.find rc' key with
      | Some v ->
          check_string
            ("entry " ^ key ^ " byte-identical")
            (Cdr_obs.Jsonl.to_string (resp key))
            (Cdr_obs.Jsonl.to_string v)
      | None -> Alcotest.failf "entry %s lost in round-trip" key)
    [ "a"; "b"; "c" ];
  (* recency survives: loading into a capacity-2 cache keeps the two most
     recently used entries and evicts the oldest *)
  let rc2 = Cdr_svc.Result_cache.load ~capacity:2 path in
  check_int "tight reload is full" 2 (Cdr_svc.Result_cache.length rc2);
  check_bool "oldest entry evicted on tight reload" true
    (Cdr_svc.Result_cache.find rc2 "a" = None);
  check_bool "newest entry kept" true (Cdr_svc.Result_cache.find rc2 "c" <> None);
  Sys.remove path;
  (* a missing snapshot is an empty cache, not an error *)
  let rc3 = Cdr_svc.Result_cache.load path in
  check_int "missing file loads empty" 0 (Cdr_svc.Result_cache.length rc3)

(* ---------- forwarding re-encoding ---------- *)

let test_request_json_roundtrip () =
  let lines =
    [
      "{\"id\":\"q1\",\"kind\":\"analyze\",\"params\":{\"grid\":32,\"phases\":16}}";
      "{\"id\":\"q2\",\"kind\":\"sweep\",\"lengths\":[2,4,8]}";
      "{\"id\":\"q3\",\"kind\":\"sigma\",\"values\":[0.05,0.0625]}";
      "{\"id\":\"q4\",\"kind\":\"slip\",\"deadline_ms\":250,\"hold_ms\":3}";
      "{\"id\":\"q5\",\"kind\":\"stats\"}";
    ]
  in
  List.iter
    (fun line ->
      match Cdr_svc.Protocol.parse_request line with
      | Error (_, msg) -> Alcotest.failf "seed rejected (%s): %s" line msg
      | Ok req -> (
          (* what the router does: rewrite the id, re-encode, forward *)
          let fwd = { req with Cdr_svc.Protocol.id = "r00000042" } in
          let encoded = Cdr_obs.Jsonl.to_string (Cdr_svc.Protocol.request_json fwd) in
          match Cdr_svc.Protocol.parse_request encoded with
          | Error (_, msg) -> Alcotest.failf "re-encoding rejected (%s): %s" encoded msg
          | Ok req' ->
              check_bool ("round-trips: " ^ line) true (req' = fwd);
              check_bool "cache key survives the hop" true
                (Cdr_svc.Protocol.cache_key req' = Cdr_svc.Protocol.cache_key req)))
    lines

let () =
  Alcotest.run "router"
    [
      ( "rendezvous",
        [
          Alcotest.test_case "deterministic and spread" `Quick test_route_deterministic;
          Alcotest.test_case "re-routing is minimal" `Quick test_route_rerouting_is_minimal;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hit is byte-identical" `Quick test_memo_hit_byte_identical;
          Alcotest.test_case "stats and hold excluded" `Quick test_memo_exclusions;
        ] );
      ( "result_cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "persistence round-trip" `Quick test_persistence_roundtrip;
        ] );
      ( "protocol",
        [ Alcotest.test_case "forwarding re-encodes exactly" `Quick test_request_json_roundtrip ]
      );
    ]

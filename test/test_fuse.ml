(* Tests for the fused/batched execution paths behind ?fuse and the phase
   region dispatcher: fused V-cycles (packed smoothers, fused aggregation,
   restriction-as-copy, one region per solve) must be bitwise identical to
   the unfused reference at every job count; the int32/Bigarray packed CSR
   mirrors must match the float-array kernels bit for bit; the region
   protocol itself (forced cross-domain via CDR_REGION_MEMBERS) must
   preserve batch results, propagate exceptions and tolerate nesting; and
   the reusable Op_multigrid/Kron_model IAD setups must change no bits. *)

let check_bool = Alcotest.(check bool)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* small enough to solve in milliseconds, large enough for a 4-level
   hierarchy, multi-slot kernels and packed (>= 2^14 nnz) matrices *)
let cfg = { Cdr.Config.default with Cdr.Config.grid_points = 64; max_run = 4 }

let model = lazy (Cdr.Model.build cfg)

let chain () = (Lazy.force model).Cdr.Model.chain

let hierarchy () = Cdr.Model.hierarchy (Lazy.force model)

(* run [f] with the region member cap forced to [n], restoring the
   environment after: on a single-core host regions otherwise degenerate to
   the serial fast path and the cross-domain ticket protocol goes untested *)
let with_forced_members n f =
  let saved = Sys.getenv_opt "CDR_REGION_MEMBERS" in
  Unix.putenv "CDR_REGION_MEMBERS" (string_of_int n);
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "CDR_REGION_MEMBERS" (match saved with Some v -> v | None -> ""))
    f

(* ---------- fused V-cycles vs the unfused reference ---------- *)

let solve_mg ~smoother ~fuse pool =
  let chain = chain () in
  let s = Markov.Multigrid.setup ~smoother ~hierarchy:(hierarchy ()) chain in
  let sol, _ = Markov.Multigrid.solve_with ~tol:1e-10 ~fuse ?pool s chain in
  sol.Markov.Solution.pi

let test_fused_bitwise_lex () =
  let reference = solve_mg ~smoother:`Lex ~fuse:false None in
  check_bool "lex: fused serial = unfused serial" true
    (bits_equal reference (solve_mg ~smoother:`Lex ~fuse:true None));
  let p4 =
    Cdr_par.Pool.with_pool ~jobs:4 (fun pool -> solve_mg ~smoother:`Lex ~fuse:true (Some pool))
  in
  check_bool "lex: fused jobs=4 = unfused serial" true (bits_equal reference p4)

let test_fused_bitwise_colored () =
  let reference = solve_mg ~smoother:`Colored ~fuse:false None in
  check_bool "colored: fused serial = unfused serial" true
    (bits_equal reference (solve_mg ~smoother:`Colored ~fuse:true None));
  let fused jobs =
    Cdr_par.Pool.with_pool ~jobs (fun pool -> solve_mg ~smoother:`Colored ~fuse:true (Some pool))
  in
  check_bool "colored: fused jobs=1 = unfused serial" true (bits_equal reference (fused 1));
  check_bool "colored: fused jobs=4 = unfused serial" true (bits_equal reference (fused 4))

let test_w_cycle () =
  let chain = chain () in
  let s = Markov.Multigrid.setup ~hierarchy:(hierarchy ()) chain in
  let solve ~fuse pool =
    let sol, _ = Markov.Multigrid.solve_with ~tol:1e-10 ~cycle:`W ~fuse ?pool s chain in
    sol.Markov.Solution.pi
  in
  let reference = solve ~fuse:false None in
  check_bool "W-cycle solve is stationary" true (Markov.Chain.residual chain reference < 1e-10);
  check_bool "W: fused serial = unfused serial" true (bits_equal reference (solve ~fuse:true None));
  let p4 = Cdr_par.Pool.with_pool ~jobs:4 (fun pool -> solve ~fuse:true (Some pool)) in
  check_bool "W: fused jobs=4 = unfused serial" true (bits_equal reference p4)

(* the strong end of the contract: the ticket protocol actually running
   across domains (forced members, irrespective of the host's core count)
   moves no bits either *)
let test_fused_bitwise_forced_region () =
  let reference = solve_mg ~smoother:`Colored ~fuse:false None in
  let forced =
    with_forced_members 2 (fun () ->
        Cdr_par.Pool.with_pool ~jobs:4 (fun pool ->
            solve_mg ~smoother:`Colored ~fuse:true (Some pool)))
  in
  check_bool "colored: fused cross-domain region = unfused serial" true
    (bits_equal reference forced)

(* ---------- packed CSR mirrors vs the float-array kernels ---------- *)

let test_packed_parity () =
  let tpm = Markov.Chain.tpm (chain ()) in
  let n = Sparse.Csr.rows tpm in
  let x = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let pk = Sparse.Csr.Packed.pack tpm in
  Alcotest.(check int) "nnz preserved" (Sparse.Csr.nnz tpm) (Sparse.Csr.Packed.nnz pk);
  let y_ref = Array.make n 0.0 and y_pk = Array.make n 0.0 in
  Sparse.Csr.vec_mul_into x tpm y_ref;
  Sparse.Csr.Packed.vec_mul_into x pk y_pk;
  check_bool "vec_mul_into bitwise" true (bits_equal y_ref y_pk);
  check_bool "mul_vec bitwise" true
    (bits_equal (Sparse.Csr.mul_vec tpm x) (Sparse.Csr.Packed.mul_vec pk x));
  (* pooled packed kernels ride the same slot grids and merge tree as the
     pooled reference (the pooled path's partial-merge order differs from
     the no-pool scatter by design, so compare pooled to pooled) *)
  Cdr_par.Pool.with_pool ~jobs:4 (fun pool ->
      let r4 = Array.make n 0.0 and y4 = Array.make n 0.0 in
      Sparse.Csr.vec_mul_into ~pool x tpm r4;
      Sparse.Csr.Packed.vec_mul_into ~pool x pk y4;
      check_bool "pooled vec_mul_into bitwise" true (bits_equal r4 y4);
      check_bool "pooled mul_vec bitwise" true
        (bits_equal (Sparse.Csr.mul_vec ~pool tpm x) (Sparse.Csr.Packed.mul_vec ~pool pk x)));
  (* fill is the refill counterpart: new values, same structure *)
  let scaled = Array.map (fun v -> 0.5 *. v) tpm.Sparse.Csr.values in
  let refilled = Sparse.Csr.refill tpm scaled in
  Sparse.Csr.Packed.fill pk scaled;
  let y_ref2 = Array.make n 0.0 and y_pk2 = Array.make n 0.0 in
  Sparse.Csr.vec_mul_into x refilled y_ref2;
  Sparse.Csr.Packed.vec_mul_into x pk y_pk2;
  check_bool "fill + vec_mul_into bitwise" true (bits_equal y_ref2 y_pk2)

(* ---------- the region protocol on raw batches ---------- *)

(* a deterministic multi-batch workload: every batch writes disjoint index
   ranges, so queue dispatch, region dispatch and serial execution must all
   produce the identical array *)
let batch_workload pool out =
  let n = Array.length out in
  Array.fill out 0 n 0.0;
  for round = 1 to 40 do
    Cdr_par.Pool.run_slots_opt pool ~slots:8 (fun s ->
        let lo = n * s / 8 and hi = (n * (s + 1) / 8) - 1 in
        for i = lo to hi do
          out.(i) <- out.(i) +. (1.0 /. float_of_int (round + i))
        done)
  done

let test_region_batches_bitwise () =
  let n = 1000 in
  let reference = Array.make n 0.0 in
  batch_workload None reference;
  let through_region members =
    with_forced_members members (fun () ->
        Cdr_par.Pool.with_pool ~jobs:4 (fun pool ->
            let out = Array.make n 0.0 in
            Cdr_par.Pool.run_phases (Some pool) (fun () -> batch_workload (Some pool) out);
            out))
  in
  (* members=0: the region degenerates to the serial fast path *)
  check_bool "region members=0 bitwise" true (bits_equal reference (through_region 0));
  check_bool "region members=2 bitwise" true (bits_equal reference (through_region 2))

let test_region_exception_and_reuse () =
  with_forced_members 2 (fun () ->
      Cdr_par.Pool.with_pool ~jobs:4 (fun pool ->
          (* an exception from a batch slot inside the region surfaces to the
             dispatching caller... *)
          let raised =
            try
              Cdr_par.Pool.run_phases (Some pool) (fun () ->
                  Cdr_par.Pool.run_slots pool ~slots:8 (fun s ->
                      if s = 5 then failwith "slot boom"));
              false
            with Failure m -> m = "slot boom"
          in
          check_bool "slot exception propagates out of the region" true raised;
          (* ...and the pool is fully reusable afterwards: both for plain
             batches and for a fresh region *)
          let n = 500 in
          let reference = Array.make n 0.0 in
          batch_workload None reference;
          let out = Array.make n 0.0 in
          batch_workload (Some pool) out;
          check_bool "queue batches after a failed region" true (bits_equal reference out);
          Cdr_par.Pool.run_phases (Some pool) (fun () -> batch_workload (Some pool) out);
          check_bool "a fresh region after a failed one" true (bits_equal reference out)))

let test_region_nesting () =
  with_forced_members 2 (fun () ->
      Cdr_par.Pool.with_pool ~jobs:4 (fun pool ->
          let n = 500 in
          let reference = Array.make n 0.0 in
          batch_workload None reference;
          let out = Array.make n 0.0 in
          (* an inner run_phases on a pool already inside a region must run
             its body directly (the region is not re-entered) and still
             produce identical batches; run_phases on no pool is the body *)
          Cdr_par.Pool.run_phases (Some pool) (fun () ->
              Cdr_par.Pool.run_phases (Some pool) (fun () ->
                  Cdr_par.Pool.run_phases None (fun () -> batch_workload (Some pool) out)));
          check_bool "nested regions bitwise" true (bits_equal reference out)))

(* ---------- reusable IAD setups ---------- *)

let test_iad_setup_reuse () =
  let chain = chain () in
  let op = Cdr_op.Csr_backend.create (Markov.Chain.tpm chain) in
  match hierarchy () with
  | [] -> Alcotest.fail "test model unexpectedly fits a direct solve"
  | partition :: coarse_hierarchy ->
      let fresh, _ =
        Markov.Op_multigrid.solve ~tol:1e-10 ~coarse_hierarchy ~partition op
      in
      let setup = Markov.Op_multigrid.prepare ~coarse_hierarchy ~partition op in
      check_bool "setup matches its operator" true (Markov.Op_multigrid.matches setup op);
      let first, _ = Markov.Op_multigrid.solve_with ~tol:1e-10 setup op in
      let second, _ = Markov.Op_multigrid.solve_with ~tol:1e-10 setup op in
      check_bool "prepared solve = fresh solve" true
        (bits_equal fresh.Markov.Solution.pi first.Markov.Solution.pi);
      check_bool "setup reuse changes no bits" true
        (bits_equal first.Markov.Solution.pi second.Markov.Solution.pi);
      let unfused, _ = Markov.Op_multigrid.solve_with ~tol:1e-10 ~fuse:false setup op in
      check_bool "IAD fused = unfused" true
        (bits_equal first.Markov.Solution.pi unfused.Markov.Solution.pi)

let test_kron_iad_memo () =
  let kcfg =
    Cdr.Config.create_exn
      {
        Cdr.Config.default with
        Cdr.Config.grid_points = 32;
        n_phases = 8;
        counter_length = 3;
        max_run = 4;
        nw_max_atoms = 17;
        sigma_w = 0.08;
      }
  in
  let m = Cdr.Kron_model.build kcfg in
  let ctx = Cdr.Context.make ~tol:1e-9 () in
  let first = Cdr.Kron_model.solve ~solver:`Multigrid ~ctx m in
  check_bool "first multigrid solve memoizes the IAD setup" true (m.Cdr.Kron_model.iad <> None);
  let second = Cdr.Kron_model.solve ~solver:`Multigrid ~ctx m in
  check_bool "memoized IAD solve changes no bits" true
    (bits_equal first.Markov.Solution.pi second.Markov.Solution.pi)

let () =
  Alcotest.run "fuse"
    [
      ( "fused V-cycles",
        [
          Alcotest.test_case "lex fused = unfused, serial and jobs=4" `Quick
            test_fused_bitwise_lex;
          Alcotest.test_case "colored fused = unfused across jobs" `Quick
            test_fused_bitwise_colored;
          Alcotest.test_case "W-cycles fused = unfused, stationary" `Quick test_w_cycle;
          Alcotest.test_case "forced cross-domain region moves no bits" `Quick
            test_fused_bitwise_forced_region;
        ] );
      ( "packed csr",
        [ Alcotest.test_case "packed kernels bitwise = float-array" `Quick test_packed_parity ] );
      ( "phase regions",
        [
          Alcotest.test_case "batches bitwise through the region" `Quick
            test_region_batches_bitwise;
          Alcotest.test_case "exceptions propagate, pool reusable" `Quick
            test_region_exception_and_reuse;
          Alcotest.test_case "nesting degrades to the body" `Quick test_region_nesting;
        ] );
      ( "reusable IAD",
        [
          Alcotest.test_case "op_multigrid setup reuse bitwise" `Quick test_iad_setup_reuse;
          Alcotest.test_case "kron model memoizes its setup" `Quick test_kron_iad_memo;
        ] );
    ]

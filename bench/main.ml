(* Benchmark / reproduction harness: one section per paper artifact.

   Sections F2-F5 regenerate the rows/series of the paper's figures; SOLVERS
   and MC regenerate the numerical-methods and infeasibility claims; SLIP
   regenerates the cycle-slip performance measure; SOLVER-TELEMETRY turns
   the "power iteration is hopeless on stiff chains" prose into measured
   residual-per-second traces. A final Bechamel section micro-benchmarks the
   computational kernels.

   Run with: dune exec bench/main.exe
   Run a subset by section-name prefix: dune exec bench/main.exe -- telemetry kernels
   Set CDR_OBS (see Cdr_obs.Sink) to stream JSONL telemetry while it runs. *)

(* which Gauss-Seidel variant(s) a section exercised; reset to "lex" before
   each section, recorded in its BENCH.json entry *)
let section_smoother = ref "lex"

let section name =
  Format.printf "@.============================================================@.";
  Format.printf "== %s@." name;
  Format.printf "============================================================@.@."

let time f = Cdr_obs.Span.timed ~name:"bench.time" f

(* ---------- EXP-F2: the compositional model ---------- *)

let exp_f2 () =
  section "EXP-F2 (Figure 2): compositional model of the CDR loop";
  let cfg = Cdr.Config.default in
  Format.printf "%a@.@." Cdr.Config.pp cfg;
  let net, initial = Cdr.Model.network cfg in
  Format.printf "%a@." Fsm.Network.pp_summary net;
  Format.printf "initial state vector: [%s]@."
    (String.concat "; " (Array.to_list (Array.map string_of_int initial)));
  let model = Cdr.Model.build cfg in
  Format.printf "reachable composed states: %d (matrix formed in %.2fs)@." model.Cdr.Model.n_states
    model.Cdr.Model.build_seconds

(* ---------- EXP-F3: TPM nonzero pattern ---------- *)

let exp_f3 () =
  section "EXP-F3 (Figure 3): nonzero pattern of the transition probability matrix";
  let cfg = { Cdr.Config.default with Cdr.Config.grid_points = 64; max_run = 4 } in
  let model = Cdr.Model.build cfg in
  Format.printf "%a@." Sparse.Spy.pp (Markov.Chain.tpm model.Cdr.Model.chain)

(* ---------- EXP-F4: densities and BER at two noise levels ---------- *)

let exp_f4 () =
  section "EXP-F4 (Figure 4): phase-error density and BER at two noise levels";
  let base = Cdr.Config.default in
  let cases =
    [
      ("low noise (negligible BER)", base);
      ("eye-opening jitter x2.5", { base with Cdr.Config.sigma_w = base.Cdr.Config.sigma_w *. 2.5 });
    ]
  in
  List.iter
    (fun (label, cfg) ->
      Format.printf "--- %s ---@." label;
      let report = Cdr.Report.run cfg in
      Format.printf "%a@." Cdr.Report.pp report;
      Format.printf "%s@." (Cdr.Report.density_table ~max_rows:17 report))
    cases

(* ---------- EXP-F5: counter length sweep ---------- *)

let exp_f5 () =
  section "EXP-F5 (Figure 5): effect of counter length on BER";
  let base = Cdr.Config.default in
  let lengths = [ 2; 4; 8; 16; 32 ] in
  let points = Cdr.Sweep.counter_lengths base lengths in
  Format.printf "%a@." Cdr.Sweep.pp_points points;
  let best_k, best_ber = Cdr.Sweep.optimal_counter base lengths in
  Format.printf "optimal counter length: %d (BER %.3e)@." best_k best_ber;
  List.iter
    (fun p ->
      let k = p.Cdr.Sweep.config.Cdr.Config.counter_length in
      if k <> best_k then
        Format.printf "  counter %2d: %.2gx worse@." k (p.Cdr.Sweep.report.Cdr.Report.ber /. best_ber))
    points;
  Format.printf
    "@.shape check: short counter follows n_w (high-bandwidth jitter amplification),@.";
  Format.printf "long counter cannot track the n_r drift; the optimum sits in between.@."

(* ---------- EXP-SOLVE: solver comparison across grid sizes ---------- *)

let exp_solve () =
  section "EXP-SOLVE: multigrid vs one-level iterations as the chain stiffens";
  let tol = 1e-10 in
  Format.printf "(tolerance: l1 residual <= %g; times in seconds)@.@." tol;
  Format.printf "%-6s %-8s %-22s %-22s %-22s@." "grid" "states" "multigrid" "gauss-seidel" "power";
  List.iter
    (fun grid_points ->
      let cfg =
        Cdr.Config.create_exn { Cdr.Config.default with Cdr.Config.grid_points; sigma_w = 0.04 }
      in
      let model = Cdr.Model.build cfg in
      let mg, mg_t = time (fun () -> Cdr.Model.solve ~tol model) in
      let gs, gs_t = time (fun () -> Cdr.Model.solve ~solver:`Gauss_seidel ~tol model) in
      let pw, pw_t = time (fun () -> Cdr.Model.solve ~solver:`Power ~tol model) in
      Format.printf "%-6d %-8d %6d cyc %9.2fs %6d swp %9.2fs %6d it %10.2fs@." grid_points
        model.Cdr.Model.n_states mg.Markov.Solution.iterations mg_t gs.Markov.Solution.iterations
        gs_t pw.Markov.Solution.iterations pw_t)
    [ 64; 128; 256 ]

(* ---------- EXP-SLIP: mean time between cycle slips ---------- *)

let exp_slip () =
  section "EXP-SLIP: mean time between cycle slips vs drift strength";
  let base =
    { Cdr.Config.default with Cdr.Config.grid_points = 64; counter_length = 4; sigma_w = 0.12 }
  in
  Format.printf "%-12s %-14s %-14s %-16s@." "drift mean" "slip rate" "MTBF (bits)" "first-slip (bits)";
  List.iter
    (fun mean_steps ->
      let cfg =
        Cdr.Config.create_exn
          { base with Cdr.Config.nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps () }
      in
      let model = Cdr.Model.build cfg in
      let solution = Cdr.Model.solve model in
      let rate = Cdr.Cycle_slip.rate model ~pi:solution.Markov.Solution.pi in
      let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:solution.Markov.Solution.pi in
      let first = Cdr.Cycle_slip.mean_first_slip_time model in
      Format.printf "%-12g %-14.3e %-14.3e %-16.3e@." mean_steps rate mtbf first)
    [ 0.2; 0.4; 0.6; 0.8 ]

(* ---------- EXP-MC: the infeasibility of straightforward simulation ---------- *)

let exp_mc () =
  section "EXP-MC: Monte-Carlo baseline vs the analysis";
  (* a noisy configuration where MC works: cross-validate *)
  let noisy =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 32;
      n_phases = 8;
      counter_length = 3;
      max_run = 4;
      sigma_w = 0.22;
      nw_max_atoms = 33;
    }
  in
  let model = Cdr.Model.build noisy in
  let solution = Cdr.Model.solve model in
  let rho = Cdr.Model.phase_marginal model ~pi:solution.Markov.Solution.pi in
  let predicted = Cdr.Ber.of_convolution noisy ~rho in
  let bits = 300_000 in
  let o, mc_t = time (fun () -> Sim.Transient.run_discretized ~seed:2024L noisy ~bits) in
  let estimate = Sim.Estimate.point_estimate ~errors:o.Sim.Transient.errors ~bits in
  let iv = Sim.Estimate.wilson ~errors:o.Sim.Transient.errors ~bits () in
  Format.printf "high-noise cross-check (sigma_w = %.2f):@." noisy.Cdr.Config.sigma_w;
  Format.printf "  analysis BER  : %.4e@." predicted;
  Format.printf "  simulated BER : %.4e  (95%%: [%.4e, %.4e], %d errors, %.2fs)@." estimate
    iv.Sim.Estimate.lower iv.Sim.Estimate.upper o.Sim.Transient.errors mc_t;
  (* the infeasibility table *)
  Format.printf "@.bits required for a 10%%-accurate MC estimate (95%% confidence):@.";
  Format.printf "  %-10s %-14s %-22s@." "BER" "bits needed" "at 10 Gb/s";
  List.iter
    (fun ber ->
      let n = Sim.Estimate.required_bits ~ber () in
      let seconds = n /. 1e10 in
      let human =
        if seconds < 60.0 then Printf.sprintf "%.1f s" seconds
        else if seconds < 86400.0 then Printf.sprintf "%.1f h" (seconds /. 3600.0)
        else Printf.sprintf "%.1f years" (seconds /. (86400.0 *. 365.25))
      in
      Format.printf "  %-10.0e %-14.2e %-22s@." ber n human)
    [ 1e-4; 1e-7; 1e-10; 1e-12; 1e-14 ];
  let mc_rate = float_of_int bits /. mc_t in
  let analysis_result, analysis_t =
    time (fun () ->
        let r, _ = Cdr.Ber.analyze (Cdr.Model.build Cdr.Config.default) in
        r.Cdr.Ber.ber)
  in
  Format.printf "@.this machine simulates %.2e bits/s; verifying 1e-14 that way would take %.1e years.@."
    mc_rate
    (Sim.Estimate.required_bits ~ber:1e-14 () /. mc_rate /. (86400.0 *. 365.25));
  Format.printf "the analysis computed a BER of %.1e in %.1fs.@." analysis_result analysis_t

(* ---------- EXP-SCALE: the million-state claim ---------- *)

let exp_scale () =
  section "EXP-SCALE: a ~10^6-state chain (the paper: million-state problems < 1 h)";
  let cfg =
    Cdr.Config.create_exn
      {
        Cdr.Config.default with
        Cdr.Config.grid_points = 1024;
        n_phases = 16;
        counter_length = 16;
        max_run = 16;
      }
  in
  let model, build_t = time (fun () -> Cdr.Model.build cfg) in
  Format.printf "states: %d  nnz: %d  matrix formed in %.1fs@." model.Cdr.Model.n_states
    (Sparse.Csr.nnz (Markov.Chain.tpm model.Cdr.Model.chain))
    build_t;
  let (sol, stats), mg_t =
    time (fun () ->
        Markov.Multigrid.solve ~tol:1e-9 ~max_cycles:250 ~pre_smooth:4 ~post_smooth:4
          ~hierarchy:(Cdr.Model.hierarchy model) model.Cdr.Model.chain)
  in
  Format.printf "multigrid: %d cycles, residual %.1e, %.0fs (%d levels, coarsest %d)%s@."
    sol.Markov.Solution.iterations sol.Markov.Solution.residual mg_t
    stats.Markov.Multigrid.levels stats.Markov.Multigrid.coarsest_size
    (if sol.Markov.Solution.converged then "" else "  NOT CONVERGED");
  let rho = Cdr.Model.phase_marginal model ~pi:sol.Markov.Solution.pi in
  Format.printf "BER on the 1024-bin grid: %.3e@." (Cdr.Ber.of_marginal cfg ~rho);
  (* how far a capped one-level method gets in comparable time *)
  let gs, gs_t =
    time (fun () ->
        Markov.Splitting.solve ~method_:Markov.Splitting.Gauss_seidel ~tol:1e-9 ~max_iter:400
          model.Cdr.Model.chain)
  in
  Format.printf "gauss-seidel capped at 400 sweeps: residual %.1e after %.0fs (still > tol)@."
    gs.Markov.Solution.residual gs_t

(* ---------- SOLVER-TELEMETRY: convergence traces as data ---------- *)

let exp_telemetry () =
  section "SOLVER-TELEMETRY: residual-per-second traces (multigrid vs power)";
  let tol = 1e-12 in
  (* asymptotic convergence rate: decades of residual per second over the
     second half of the trace (the first half is transient-dominated) *)
  let tail_rate trace =
    let s = Cdr_obs.Trace.samples trace in
    let n = Array.length s in
    if n < 4 then Cdr_obs.Trace.decades_per_second trace
    else begin
      let a = s.(n / 2) and b = s.(n - 1) in
      let dt = b.Cdr_obs.Trace.elapsed -. a.Cdr_obs.Trace.elapsed in
      if dt <= 0.0 || a.Cdr_obs.Trace.residual <= 0.0 || b.Cdr_obs.Trace.residual <= 0.0 then 0.0
      else (Float.log10 a.Cdr_obs.Trace.residual -. Float.log10 b.Cdr_obs.Trace.residual) /. dt
    end
  in
  Format.printf "(tolerance %g; power capped at 2500 iterations; rates are tail rates)@.@." tol;
  Format.printf "%-6s %-8s | %-30s | %-36s@." "grid" "states" "multigrid" "power";
  let measured =
    List.map
      (fun grid_points ->
        let cfg =
          Cdr.Config.create_exn { Cdr.Config.default with Cdr.Config.grid_points; sigma_w = 0.04 }
        in
        let model = Cdr.Model.build cfg in
        let chain = model.Cdr.Model.chain in
        let mg = Cdr_obs.Trace.create ~name:"multigrid" () in
        let sol_mg, _stats =
          Markov.Multigrid.solve ~tol ~trace:mg ~hierarchy:(Cdr.Model.hierarchy model) chain
        in
        let pw = Cdr_obs.Trace.create ~name:"power" () in
        let sol_pw = Markov.Power.solve ~tol ~max_iter:2_500 ~trace:pw chain in
        let m = Option.get (Cdr_obs.Trace.last mg) in
        let p = Option.get (Cdr_obs.Trace.last pw) in
        let pw_rate = tail_rate pw in
        (* time power still needs, at its measured asymptotic rate, to reach
           the tolerance multigrid already met *)
        let pw_projected =
          if sol_pw.Markov.Solution.converged then p.Cdr_obs.Trace.elapsed
          else if pw_rate > 0.0 then
            p.Cdr_obs.Trace.elapsed
            +. ((Float.log10 sol_pw.Markov.Solution.residual -. Float.log10 tol) /. pw_rate)
          else Float.infinity
        in
        Format.printf "%-6d %-8d | %4d cyc %8.2fs %9.1e | %5d it %8.2fs %9.1e -> ~%.0fs@."
          grid_points model.Cdr.Model.n_states m.Cdr_obs.Trace.iter m.Cdr_obs.Trace.elapsed
          sol_mg.Markov.Solution.residual p.Cdr_obs.Trace.iter p.Cdr_obs.Trace.elapsed
          sol_pw.Markov.Solution.residual pw_projected;
        (grid_points, mg, pw, m.Cdr_obs.Trace.elapsed, pw_projected, pw_rate))
      [ 64; 128; 256 ]
  in
  Format.printf "@.power tail rate (decades/s) by grid:";
  List.iter (fun (g, _, _, _, _, r) -> Format.printf "  %d: %.2f" g r) measured;
  Format.printf "@.";
  (match (measured, List.rev measured) with
  | (g0, _, _, _, _, r0) :: _, (g1, mg1, pw1, mg_t, pw_proj, r1) :: _ when r1 > 0.0 ->
      Format.printf
        "growing the grid %dx (%d -> %d bins) cut power's convergence rate %.0fx while the@."
        (g1 / g0) g0 g1 (r0 /. r1);
      Format.printf
        "multigrid trace stays flat: on the %d-bin chain power needs ~%.0fs vs %.1fs (%.1fx),@."
        g1 pw_proj mg_t (pw_proj /. mg_t);
      Format.printf
        "and the gap widens without bound — on the million-state chain of EXP-SCALE a one-level@.";
      Format.printf "iteration no longer moves the residual at all (see its capped run).@.@.";
      Format.printf "full traces on the stiffest chain:@.%a@.%a@." Cdr_obs.Trace.pp mg1
        Cdr_obs.Trace.pp pw1
  | _ -> ())

(* ---------- ablations: the design choices behind the numbers ---------- *)

let ablation_multigrid () =
  section "ABLATION-MG: multigrid design choices";
  let cfg =
    Cdr.Config.create_exn { Cdr.Config.default with Cdr.Config.grid_points = 256; sigma_w = 0.04 }
  in
  let model = Cdr.Model.build cfg in
  let chain = model.Cdr.Model.chain in
  Format.printf "chain: %d states; tolerance 1e-10@.@." model.Cdr.Model.n_states;
  Format.printf "(a) smoothing sweeps per V-cycle (structured hierarchy):@.";
  List.iter
    (fun (pre, post) ->
      let (sol, stats), dt =
        time (fun () ->
            Markov.Multigrid.solve ~tol:1e-10 ~pre_smooth:pre ~post_smooth:post
              ~hierarchy:(Cdr.Model.hierarchy model) chain)
      in
      Format.printf "  pre=%d post=%d: %3d cycles  %6.2fs  (levels %d, coarsest %d)%s@." pre post
        sol.Markov.Solution.iterations dt stats.Markov.Multigrid.levels
        stats.Markov.Multigrid.coarsest_size
        (if sol.Markov.Solution.converged then "" else "  NOT CONVERGED"))
    [ (1, 1); (2, 2); (4, 4) ];
  Format.printf "@.(b) structured (lump adjacent phase bins) vs generic (pair state indices):@.";
  let generic =
    Markov.Multigrid.default_hierarchy ~n:model.Cdr.Model.n_states
      ~coarsest:Markov.Gth.max_direct_size
  in
  List.iter
    (fun (name, hierarchy) ->
      let (sol, _), dt = time (fun () -> Markov.Multigrid.solve ~tol:1e-10 ~hierarchy chain) in
      Format.printf "  %-12s %4d cycles  %6.2fs%s@." name sol.Markov.Solution.iterations dt
        (if sol.Markov.Solution.converged then "" else "  NOT CONVERGED"))
    [ ("structured", Cdr.Model.hierarchy model); ("generic", generic) ];
  Format.printf
    "@.both hierarchies converge; the structured one (the paper's choice) produces@.";
  Format.printf "sparser, physically meaningful coarse levels and cheaper cycles overall.@."

let ablation_nw_discretization () =
  section "ABLATION-NW: n_w discretization resolution vs BER accuracy";
  let base = { Cdr.Config.default with Cdr.Config.grid_points = 64 } in
  Format.printf "%-10s %-10s %-14s %-12s@." "atoms" "states" "BER" "build+solve(s)";
  let reference = ref None in
  List.iter
    (fun nw_max_atoms ->
      let cfg = Cdr.Config.create_exn { base with Cdr.Config.nw_max_atoms } in
      let (model, result), dt =
        time (fun () ->
            let model = Cdr.Model.build cfg in
            let result, _ = Cdr.Ber.analyze model in
            (model, result))
      in
      if !reference = None then reference := Some result.Cdr.Ber.ber;
      Format.printf "%-10d %-10d %-14.5e %-12.2f@." nw_max_atoms model.Cdr.Model.n_states
        result.Cdr.Ber.ber dt)
    [ 9; 17; 33; 65; 129 ];
  Format.printf
    "@.the BER stabilizes once the lattice resolves the detector decision probabilities;@.";
  Format.printf "the matrix size is unaffected because n_w never enters the Markov state@.";
  Format.printf "(it is integrated out into the detector probabilities), exactly as the paper@.";
  Format.printf "notes: only n_r forces grid resolution.@."

let ablation_dead_zone () =
  section "ABLATION-DZ: ternary detector dead zone (an alternative circuit technique)";
  let base = Cdr.Config.default in
  Format.printf "%-12s %-14s %-16s %-14s@." "dead zone" "BER" "rms jitter (UI)" "MTBF (bits)";
  List.iter
    (fun detector_dead_zone ->
      let cfg = Cdr.Config.create_exn { base with Cdr.Config.detector_dead_zone } in
      let model = Cdr.Model.build cfg in
      let result, solution = Cdr.Ber.analyze model in
      let jitter = Cdr.Clock_jitter.analyze ~lags:0 model ~pi:solution.Markov.Solution.pi in
      let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:solution.Markov.Solution.pi in
      Format.printf "%-12d %-14.3e %-16.5f %-14.3e@." detector_dead_zone result.Cdr.Ber.ber
        jitter.Cdr.Clock_jitter.rms_ui mtbf)
    [ 0; 1; 2; 4; 8 ];
  Format.printf
    "@.a small dead zone suppresses dither (lower rms jitter) but a large one lets the@.";
  Format.printf "n_r drift wander uncorrected before the loop reacts - the same bandwidth@.";
  Format.printf "trade-off as the counter length, evaluated without building silicon.@."

(* ---------- extension: second-order loop ---------- *)

let exp_freq_track () =
  section "EXTENSION-2ND: second-order loop (frequency tracking) vs the paper's first-order";
  let base =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 32;
      n_phases = 8;
      counter_length = 3;
      max_run = 4;
      nw_max_atoms = 17;
      sigma_w = 0.08;
    }
  in
  Format.printf "%-12s %-14s %-14s %-14s %-14s@." "drift mean" "1st-ord BER" "1st-ord slips"
    "2nd-ord BER" "2nd-ord slips";
  List.iter
    (fun mean_steps ->
      let cfg =
        Cdr.Config.create_exn
          { base with Cdr.Config.nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps () }
      in
      let first = Cdr.Model.build cfg in
      let sol1 = Cdr.Model.solve first in
      let rho1 = Cdr.Model.phase_marginal first ~pi:sol1.Markov.Solution.pi in
      let second =
        Cdr.Freq_track.build ~params:{ Cdr.Freq_track.max_f = 1; adapt_length = 3 } cfg
      in
      let sol2 = Cdr.Freq_track.solve ~tol:1e-9 second in
      let pi2 = sol2.Markov.Solution.pi in
      Format.printf "%-12g %-14.3e %-14.3e %-14.3e %-14.3e@." mean_steps
        (Cdr.Ber.of_marginal cfg ~rho:rho1)
        (Cdr.Cycle_slip.rate first ~pi:sol1.Markov.Solution.pi)
        (Cdr.Freq_track.ber second ~pi:pi2)
        (Cdr.Freq_track.slip_rate second ~pi:pi2))
    [ 0.4; 0.8 ]

(* ---------- extension: acquisition & recovered-clock jitter ---------- *)

let exp_extensions () =
  section "EXTENSIONS: lock acquisition, recovered-clock jitter, loop activity";
  (* default grid: the selector step (8 bins) dominates n_r (2 bins), which
     the activity analysis requires to identify corrections *)
  let cfg = Cdr.Config.default in
  let model = Cdr.Model.build cfg in
  let solution = Cdr.Model.solve model in
  let jitter = Cdr.Clock_jitter.analyze model ~pi:solution.Markov.Solution.pi in
  Format.printf "%a@.@." Cdr.Clock_jitter.pp jitter;
  let acq = Cdr.Acquisition.analyze model in
  Format.printf "%a@.@." Cdr.Acquisition.pp acq;
  let activity = Cdr.Activity.analyze model ~pi:solution.Markov.Solution.pi in
  Format.printf "%a@." Cdr.Activity.pp activity

(* ---------- SMOKE: deterministic telemetry counters ---------- *)

(* A tiny configuration exercised so that the metric counter deltas of this
   section are exact integers — builds, solves, rebuilds, cache hits/misses —
   never wall seconds. CI runs just this section (make bench-smoke) and
   asserts the deltas from the BENCH.json it writes. *)
let exp_smoke () =
  section "SMOKE: deterministic telemetry counters on a tiny configuration";
  let cfg =
    Cdr.Config.create_exn
      {
        Cdr.Config.default with
        Cdr.Config.grid_points = 32;
        n_phases = 8;
        counter_length = 3;
        max_run = 4;
        nw_max_atoms = 17;
        sigma_w = 0.0610;
      }
  in
  let cache = Cdr.Solver_cache.create () in
  let model = Cdr.Model.build cfg in
  let _ = Cdr.Model.solve ~cache model in
  let _ = Cdr.Model.solve ~cache model in
  let model2, reused = Cdr.Model.rebuild model { cfg with Cdr.Config.sigma_w = 0.0611 } in
  let _ = Cdr.Model.solve ~cache model2 in
  Format.printf "1 direct build, 3 multigrid solves, 1 in-place rebuild (pattern reused: %b)@."
    reused;
  Format.printf "solver cache: %d hits, %d misses@." (Cdr.Solver_cache.hits cache)
    (Cdr.Solver_cache.misses cache);
  Format.printf
    "expected deltas: model.builds{via=direct}=1  model.solves{solver=multigrid}=3@.";
  Format.printf "  model.rebuilds{pattern=reused}=1  solver_cache.hits=2  solver_cache.misses=1@."

(* ---------- KRON-SCALING: the matrix-free Kronecker backend ---------- *)

(* peak resident set (VmHWM) in MB from /proc/self/status; None when the
   proc filesystem is unavailable (non-Linux hosts) *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" -> (
            match String.split_on_char ' ' (String.trim (String.sub line 6 (String.length line - 6))) with
            | kb :: _ -> ( match float_of_string_opt kb with
              | Some kb -> Some (kb /. 1024.0)
              | None -> scan ())
            | [] -> scan ())
        | _ -> scan ()
      in
      Fun.protect ~finally:(fun () -> close_in ic) scan

let exp_kron () =
  section "KRON-SCALING: matrix-free Kronecker backend vs the CSR memory wall";
  (* the EXP-SCALE family (phases 16 / counter 16 / max-run 16) with the grid
     as the scaling axis; the operator lives on the full product space
     n_data * n_counter * grid. "csr MB" is what materializing would cost at
     12 bytes per stored nonzero (8 value + 4 column) — the bound the
     factorized storage avoids. *)
  let cfg_of grid_points =
    Cdr.Config.create_exn
      {
        Cdr.Config.default with
        Cdr.Config.grid_points;
        n_phases = 16;
        counter_length = 16;
        max_run = 16;
      }
  in
  let applies = 5 in
  Format.printf "%-6s %-9s %-6s %-12s %-9s %-10s %-10s %-8s@." "grid" "states" "terms"
    "nnz bound" "csr MB" "build (s)" "apply (s)" "rss MB";
  let rungs =
    List.map
      (fun grid ->
        let cfg = cfg_of grid in
        let model, build_t = time (fun () -> Cdr.Kron_model.build cfg) in
        let op = Cdr.Kron_model.operator model in
        let n = Cdr.Kron_model.n_states model in
        let x = Array.make n (1.0 /. float_of_int n) in
        let y = Array.make n 0.0 in
        let (), apply_total =
          time (fun () ->
              for _ = 1 to applies do
                Cdr_op.vec_mul_into op x y
              done)
        in
        let apply_t = apply_total /. float_of_int applies in
        let csr_mb = float_of_int (Cdr_op.nnz_estimate op) *. 12.0 /. 1048576.0 in
        let rss = peak_rss_mb () in
        let g = string_of_int grid in
        Cdr_obs.Metrics.set_gauge "bench.kron_states" ~labels:[ ("grid", g) ] (float_of_int n);
        Cdr_obs.Metrics.set_gauge "bench.kron_nnz_bound" ~labels:[ ("grid", g) ]
          (float_of_int (Cdr_op.nnz_estimate op));
        Cdr_obs.Metrics.set_gauge "bench.kron_build_seconds" ~labels:[ ("grid", g) ] build_t;
        Cdr_obs.Metrics.set_gauge "bench.kron_apply_seconds" ~labels:[ ("grid", g) ] apply_t;
        Option.iter
          (Cdr_obs.Metrics.set_gauge "bench.kron_peak_rss_mb" ~labels:[ ("grid", g) ])
          rss;
        Format.printf "%-6d %-9d %-6d %-12d %-9.0f %-10.2f %-10.3f %-8s@." grid n
          (Sparse.Kron_op.n_terms model.Cdr.Kron_model.kron)
          (Cdr_op.nnz_estimate op) csr_mb build_t apply_t
          (match rss with Some mb -> Printf.sprintf "%.0f" mb | None -> "-");
        (grid, cfg, model))
      [ 256; 512; 1024; 2048 ]
  in
  (* a tolerance solve via the IAD cycle (aggregation materializes only the
     half-size coarse chain) at a mid rung: the IAD wall cost is ~1 ms/state
     per run, so a 1e6-state tolerance solve belongs to an overnight table,
     not a bench section — what matters here is the cycle count staying
     near-grid-independent (57 cycles at grid 256 vs 60 at 128), the paper's
     multigrid claim carried over to the matrix-free fine level. *)
  (match rungs with
  | (grid, cfg, model) :: _ ->
      let ctx = Cdr.Context.make ~tol:1e-9 ~backend:`Kron () in
      let mg, mg_t = time (fun () -> Cdr.Kron_model.solve ~solver:`Multigrid ~ctx model) in
      Format.printf
        "@.IAD rung: grid %d, %d states — multigrid %d cycles  residual %.2e  %.1fs%s@."
        grid
        (Cdr.Kron_model.n_states model)
        mg.Markov.Solution.iterations mg.Markov.Solution.residual mg_t
        (if mg.Markov.Solution.converged then "" else "  NOT CONVERGED");
      let rho = Cdr.Kron_model.phase_marginal model ~pi:mg.Markov.Solution.pi in
      let ber = Cdr.Ber.of_marginal cfg ~rho in
      Format.printf "  BER on the %d-bin grid: %.3e@." grid ber;
      Cdr_obs.Metrics.set_gauge "bench.kron_solve_seconds"
        ~labels:[ ("solver", "multigrid") ]
        mg_t;
      Cdr_obs.Metrics.set_gauge "bench.kron_solve_iterations"
        ~labels:[ ("solver", "multigrid") ]
        (float_of_int mg.Markov.Solution.iterations);
      Cdr_obs.Metrics.set_gauge "bench.kron_ber" ber
  | [] -> ());
  (* the headline rung: the first >= 1e6-state model, a capped power run —
     the matrix-free apply is the whole per-iteration cost at this scale,
     on a chain whose CSR was never assembled. *)
  (match List.find_opt (fun (_, _, m) -> Cdr.Kron_model.n_states m >= 1_000_000) rungs with
  | None -> ()
  | Some (grid, _, model) ->
      let n = Cdr.Kron_model.n_states model in
      Format.printf "@.headline rung: grid %d, %d states (>= 1e6), never materialized@." grid n;
      let op = Cdr.Kron_model.operator model in
      let pw, pw_t = time (fun () -> Markov.Power.solve_op ~tol:1e-9 ~max_iter:300 op) in
      Format.printf "  power (capped 300):  %4d iterations  residual %.2e  %.1fs@."
        pw.Markov.Solution.iterations pw.Markov.Solution.residual pw_t;
      Cdr_obs.Metrics.set_gauge "bench.kron_solve_seconds" ~labels:[ ("solver", "power") ] pw_t;
      Cdr_obs.Metrics.set_gauge "bench.kron_solve_iterations"
        ~labels:[ ("solver", "power") ]
        (float_of_int pw.Markov.Solution.iterations));
  Format.printf
    "@.the factor matrices are KBs at every rung; the apply never touches CSR-of-the-product@.";
  Format.printf "storage, so the per-rung footprint is the two iteration vectors.@."

(* the CI-sized matrix-free smoke: a >= 2e5-state power solve (capped
   iteration budget — the assertion is that the full-product operator
   builds, verifies row-stochastic, and iterates at that scale, never wall
   time). make kron-smoke asserts the gauges below from BENCH.json. *)
let exp_kron_smoke () =
  section "KRON-SMOKE: large-state matrix-free power solve (CI-sized)";
  let cfg =
    Cdr.Config.create_exn
      {
        Cdr.Config.default with
        Cdr.Config.grid_points = 2048;
        n_phases = 16;
        counter_length = 9;
        max_run = 3;
      }
  in
  let model = Cdr.Kron_model.build cfg in
  let op = Cdr.Kron_model.operator model in
  let n = Cdr.Kron_model.n_states model in
  Format.printf "operator: %s@." (Cdr_op.label op);
  let sol, dt = time (fun () -> Markov.Power.solve_op ~tol:1e-12 ~max_iter:60 op) in
  let negatives = Array.exists (fun v -> v < 0.0) sol.Markov.Solution.pi in
  Format.printf "power (capped 60): %d iterations in %.2fs, residual %.2e@."
    sol.Markov.Solution.iterations dt sol.Markov.Solution.residual;
  let ok =
    n >= 200_000 && (not negatives)
    && Float.is_finite sol.Markov.Solution.residual
    && sol.Markov.Solution.residual < 0.5
  in
  Cdr_obs.Metrics.set_gauge "bench.kron_smoke_states" (float_of_int n);
  Cdr_obs.Metrics.set_gauge "bench.kron_smoke_ok" (if ok then 1.0 else 0.0);
  Format.printf "%s@."
    (if ok then "kron smoke ok: stochastic matrix-free apply at >= 2e5 states"
     else "KRON SMOKE FAILED")

(* ---------- ENV-SCALING: Markov-modulated jitter environments ---------- *)

(* a 4-regime environment for the scaling rungs: thermal state x aggressor
   activity, mild diagonal-dominant switching *)
let env4 =
  Cdr_env.Env.create_exn ~name:"bursty-thermal"
    ~regimes:
      [|
        Cdr_env.Env.regime "cool";
        Cdr_env.Env.regime ~sigma_scale:1.15 "warm";
        Cdr_env.Env.regime ~sigma_scale:1.6 "cool-burst";
        Cdr_env.Env.regime ~sigma_scale:2.0 ~p01:0.45 ~p10:0.55 "warm-burst";
      |]
    ~switch:
      [|
        [| 0.90; 0.05; 0.04; 0.01 |];
        [| 0.05; 0.90; 0.01; 0.04 |];
        [| 0.20; 0.02; 0.76; 0.02 |];
        [| 0.02; 0.20; 0.02; 0.76 |];
      |]

let exp_env () =
  section "ENV-SCALING: Markov-modulated environments, env (x) CDR composed chains";
  (* default-grid rungs: 2- and 4-regime environments, both backends solved
     to tolerance — the assertion is backend parity of the regime-weighted
     BER, never wall time *)
  let cfg = Cdr.Config.default in
  let rungs = [ ("bursty", Cdr_env.Env.bursty ()); ("bursty-thermal", env4) ] in
  Format.printf "%-16s %-8s %-9s %-6s %-10s %-10s %-12s %-12s@." "env" "backend" "states" "iters"
    "build (s)" "solve (s)" "ber" "slip rate";
  let ok = ref true in
  let solved =
    List.map
      (fun (name, env) ->
        let bers =
          List.map
            (fun backend ->
              let composed = Cdr_env.Composed.build ~backend env cfg in
              let sol, solve_t = time (fun () -> Cdr_env.Composed.solve composed) in
              let pi = sol.Markov.Solution.pi in
              let ber = Cdr_env.Composed.ber composed ~pi in
              let slip = Cdr_env.Composed.slip_rate composed ~pi in
              let b = Cdr_op.kind_string backend in
              Format.printf "%-16s %-8s %-9d %-6d %-10.2f %-10.2f %-12.3e %-12.3e@." name b
                composed.Cdr_env.Composed.n_states sol.Markov.Solution.iterations
                composed.Cdr_env.Composed.build_seconds solve_t ber slip;
              if not sol.Markov.Solution.converged then ok := false;
              let labels = [ ("env", name); ("backend", b) ] in
              Cdr_obs.Metrics.set_gauge "bench.env_states" ~labels
                (float_of_int composed.Cdr_env.Composed.n_states);
              Cdr_obs.Metrics.set_gauge "bench.env_build_seconds" ~labels
                composed.Cdr_env.Composed.build_seconds;
              Cdr_obs.Metrics.set_gauge "bench.env_solve_seconds" ~labels solve_t;
              Cdr_obs.Metrics.set_gauge "bench.env_ber" ~labels ber;
              ber)
            [ `Csr; `Kron ]
        in
        match bers with
        | [ csr; kron ] ->
            let parity = Float.abs (csr -. kron) <= 1e-6 *. Float.max csr kron in
            if not parity then ok := false;
            (name, parity)
        | _ -> (name, false))
      rungs
  in
  List.iter
    (fun (name, parity) ->
      Format.printf "%s backend parity: %s@." name (if parity then "ok" else "DISAGREE"))
    solved;
  (* the headline rung: a >= 1e6-state composed chain through the matrix-free
     backend (2 regimes x the EXP-SCALE 512-bin family = 1,048,576 states) —
     the composed transition matrix is never materialized. Capped power run,
     then the regime-conditional phase-error densities off the iterate. *)
  let big_cfg =
    Cdr.Config.create_exn
      {
        Cdr.Config.default with
        Cdr.Config.grid_points = 512;
        n_phases = 16;
        counter_length = 16;
        max_run = 16;
      }
  in
  let env = Cdr_env.Env.bursty () in
  let composed, build_t = time (fun () -> Cdr_env.Composed.build ~backend:`Kron env big_cfg) in
  let n = composed.Cdr_env.Composed.n_states in
  Format.printf "@.headline rung: bursty (x) 512-bin family, %d composed states, kron backend@." n;
  let sol, solve_t =
    time (fun () ->
        Markov.Power.solve_op ~tol:1e-9 ~max_iter:60 (Cdr_env.Composed.operator composed))
  in
  Format.printf "  build %.1fs; power (capped 60): %d iterations  residual %.2e  %.1fs@." build_t
    sol.Markov.Solution.iterations sol.Markov.Solution.residual solve_t;
  let pi = sol.Markov.Solution.pi in
  let probs = Cdr_env.Composed.regime_probs composed ~pi in
  let densities = Cdr_env.Composed.regime_conditional_densities composed ~pi in
  Array.iteri
    (fun e (g : Cdr_env.Env.regime) ->
      let d = densities.(e) in
      let mass = Array.fold_left ( +. ) 0.0 d in
      (* center-half mass of the conditional density: a regime-resolved
         lock-quality summary that is meaningful even off a capped iterate *)
      let m = Array.length d in
      let center = ref 0.0 in
      for i = m / 4 to (3 * m / 4) - 1 do
        center := !center +. d.(i)
      done;
      Format.printf "  regime %-12s P=%.4f  conditional density mass %.3f (center half %.3f)@."
        g.Cdr_env.Env.name probs.(e) mass !center)
    composed.Cdr_env.Composed.env.Cdr_env.Env.regimes;
  let negatives = Array.exists (fun v -> v < 0.0) pi in
  let big_ok =
    n >= 1_000_000 && (not negatives)
    && Float.is_finite sol.Markov.Solution.residual
    && sol.Markov.Solution.residual < 0.5
  in
  if not big_ok then ok := false;
  Cdr_obs.Metrics.set_gauge "bench.env_headline_states" (float_of_int n);
  Cdr_obs.Metrics.set_gauge "env.ladder_ok" (if !ok then 1.0 else 0.0);
  Format.printf "%s@."
    (if !ok then "env ladder ok: backends agree and the 1e6-state composed rung solves"
     else "ENV LADDER FAILED")

(* ---------- PARALLEL-SCALING: the Cdr_par domain pool ---------- *)

let exp_parallel () =
  section "PARALLEL-SCALING: domain-pool speedup on sweeps and SpMV (Cdr_par)";
  let job_counts = [ 1; 2; 4; 8 ] in
  Format.printf "host: %d recommended domain(s); speedups are relative to jobs=1@.@."
    (Domain.recommended_domain_count ());
  (* (a) the embarrassingly parallel workload: one stationary solve per
     sweep point, one point per pool worker *)
  let base =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = 32;
      n_phases = 8;
      counter_length = 3;
      max_run = 4;
      nw_max_atoms = 17;
      sigma_w = 0.08;
    }
  in
  let lengths = [ 2; 3; 4; 5; 6; 8; 12; 16 ] in
  Format.printf "(a) counter-length sweep, %d points (grid %d):@." (List.length lengths)
    base.Cdr.Config.grid_points;
  Format.printf "  %-6s %-10s %-10s %-14s@." "jobs" "wall (s)" "speedup" "BER bits";
  let reference = ref None in
  List.iter
    (fun jobs ->
      (* one pool per setting, shut down between runs: no leaked domains *)
      let points, dt =
        time (fun () ->
            Cdr_par.Pool.with_pool ~jobs (fun pool -> Cdr.Sweep.counter_lengths ~pool base lengths))
      in
      let bers = List.map (fun p -> Int64.bits_of_float p.Cdr.Sweep.report.Cdr.Report.ber) points in
      let identical, t1 =
        match !reference with
        | None ->
            reference := Some (bers, dt);
            (true, dt)
        | Some (ref_bers, t1) -> (bers = ref_bers, t1)
      in
      Format.printf "  %-6d %-10.2f %-10.2f %-14s@." jobs dt (t1 /. dt)
        (if identical then "identical" else "DIFFER (bug!)"))
    job_counts;
  (* (b) the inner kernel: x * P on a stiff chain, the hot loop of power
     iteration and of every multigrid smoother *)
  let cfg =
    Cdr.Config.create_exn { Cdr.Config.default with Cdr.Config.grid_points = 256; sigma_w = 0.04 }
  in
  let model = Cdr.Model.build cfg in
  let chain = model.Cdr.Model.chain in
  let tpm = Markov.Chain.tpm chain in
  let n = Markov.Chain.n_states chain in
  let reps = 400 in
  Format.printf "@.(b) x*P kernel, %d states / %d nnz, %d products:@." n (Sparse.Csr.nnz tpm) reps;
  Format.printf "  %-6s %-10s %-10s@." "jobs" "wall (s)" "speedup";
  let x = Array.make n (1.0 /. float_of_int n) in
  let y = Array.make n 0.0 in
  let t1 = ref nan in
  List.iter
    (fun jobs ->
      let (), dt =
        time (fun () ->
            Cdr_par.Pool.with_pool ~jobs (fun pool ->
                for _ = 1 to reps do
                  Sparse.Csr.vec_mul_into ~pool x tpm y
                done))
      in
      if Float.is_nan !t1 then t1 := dt;
      Format.printf "  %-6d %-10.2f %-10.2f@." jobs dt (!t1 /. dt))
    job_counts;
  (* (c) the V-cycle interior under the pool: colored smoother (color classes
     split over slots) plus pooled aggregation/restriction/prolongation.
     Determinism here is the strong claim: pi must be bitwise identical for
     every job count. *)
  Format.printf "@.(c) multigrid V-cycles, colored smoother, %d states:@." n;
  Format.printf "  %-6s %-10s %-10s %-14s %-10s@." "jobs" "wall (s)" "speedup" "pi bits"
    "attributed";
  let mg_setup =
    Markov.Multigrid.setup ~smoother:`Colored ~hierarchy:(Cdr.Model.hierarchy model) chain
  in
  let t1 = ref nan in
  let ref_bits = ref None in
  let profiles = ref [] in
  (* the pool profiler answers the ROADMAP question this table raises: when
     jobs > 1 is slower, which phase paid for it — idle slots or the
     caller's barrier wait? *)
  Cdr_par.Pool.set_profiling true;
  List.iter
    (fun jobs ->
      let before = Cdr_obs.Profile.collect () in
      let (sol, _), dt =
        time (fun () ->
            Cdr_par.Pool.with_pool ~jobs (fun pool ->
                Markov.Multigrid.solve_with ~tol:1e-10 ~pool mg_setup chain))
      in
      let prof = Cdr_obs.Profile.sub (Cdr_obs.Profile.collect ()) before in
      profiles := (jobs, (prof, dt)) :: !profiles;
      if Float.is_nan !t1 then t1 := dt;
      let bits = Array.map Int64.bits_of_float sol.Markov.Solution.pi in
      let identical =
        match !ref_bits with
        | None ->
            ref_bits := Some bits;
            true
        | Some r -> r = bits
      in
      let coverage = Cdr_obs.Profile.coverage ~total:dt prof in
      Cdr_obs.Metrics.set_gauge "bench.mg_colored_seconds"
        ~labels:[ ("jobs", string_of_int jobs) ]
        dt;
      Cdr_obs.Metrics.set_gauge "bench.mg_profile_coverage"
        ~labels:[ ("jobs", string_of_int jobs) ]
        coverage;
      Format.printf "  %-6d %-10.2f %-10.2f %-14s %5.1f%%@." jobs dt (!t1 /. dt)
        (if identical then "identical" else "DIFFER (bug!)")
        (100. *. coverage))
    job_counts;
  Cdr_par.Pool.set_profiling false;
  (* phase attribution at the scaling endpoints, and the headline: which
     phase carries the most parallel overhead (idle + barrier) at jobs=8 *)
  let profile_of jobs = List.assoc_opt jobs !profiles in
  let top_overhead jobs =
    match profile_of jobs with
    | Some (prof, _) -> (
        match
          List.stable_sort
            (fun a b -> compare (Cdr_obs.Profile.overhead b) (Cdr_obs.Profile.overhead a))
            prof
        with
        | top :: _ when Cdr_obs.Profile.overhead top > 0.0 ->
            Printf.sprintf "%s (level %s, %.3fs idle+barrier)" (Cdr_obs.Profile.phase top)
              (Option.value ~default:"-" (List.assoc_opt "level" top.Cdr_obs.Profile.labels))
              (Cdr_obs.Profile.overhead top)
        | _ -> "none (zero idle+barrier: every batch ran serially)")
    | None -> "not run"
  in
  (match profile_of (List.fold_left max 1 job_counts) with
  | Some (prof, dt) ->
      let jmax = List.fold_left max 1 job_counts in
      Format.printf "@.per-phase attribution at jobs=%d (%.1f%% of %.2fs wall attributed):@."
        jmax
        (100. *. Cdr_obs.Profile.coverage ~total:dt prof)
        dt;
      Format.printf "%a" Cdr_obs.Profile.pp prof
  | None -> ());
  Format.printf "@.top overhead phase: jobs=1 -> %s@." (top_overhead 1);
  Format.printf "top overhead phase: jobs=%d -> %s@."
    (List.fold_left max 1 job_counts)
    (top_overhead (List.fold_left max 1 job_counts));
  section_smoother := "lex,colored";
  Format.printf
    "@.results are bit-identical across job counts by construction (fixed slot grids,@.";
  Format.printf
    "order-preserving reduction); on a single-core host the pool degrades gracefully@.";
  Format.printf "(expect speedup <= 1 there — the scaling needs real cores).@."

(* ---------- MG-SCALING: the jobs=1 vs jobs=4 dispatch-cost gate ---------- *)

(* The ROADMAP's "positive parallel scaling" question, distilled to one
   number: a colored-multigrid solve on the default grid at jobs=1 and
   jobs=4, through one shared setup, best-of-reps walls. The region
   dispatcher ({!Cdr_par.Pool.run_phases}) enlists the team once per solve
   instead of paying a fan-out per color, which is what moved this gauge
   from ~0.7 (a 1.4x slowdown) toward >= 1.

   [mg.speedup_j4] is the honest measured ratio. [mg.speedup_j4_ok] is the
   CI gate (make bench-smoke greps it): on a multi-core host it demands
   speedup >= 1.0; on a single-core host — where a true speedup is
   physically unavailable and the pool's only achievable win is costing
   nothing — it demands >= 0.9 (dispatch overhead under 10%). Both settings
   also require bitwise-identical stationary vectors. *)
let exp_scaling () =
  section "MG-SCALING: colored multigrid wall, jobs=1 vs jobs=4 (region dispatch)";
  let cfg =
    Cdr.Config.create_exn { Cdr.Config.default with Cdr.Config.sigma_w = 0.04 }
  in
  let model = Cdr.Model.build cfg in
  let chain = model.Cdr.Model.chain in
  let mg_setup =
    Markov.Multigrid.setup ~smoother:`Colored ~hierarchy:(Cdr.Model.hierarchy model) chain
  in
  let reps = 4 in
  Format.printf "chain: %d states; colored smoother; best of %d interleaved solves after warmup@.@."
    model.Cdr.Model.n_states reps;
  (* both pools live for the whole measurement and the reps interleave
     (j1, j4, j1, j4, ...): background load on a shared host drifts over
     seconds, and interleaving keeps it from taxing one side only *)
  let sol1, t1, sol4, t4 =
    Cdr_par.Pool.with_pool ~jobs:1 (fun pool1 ->
        Cdr_par.Pool.with_pool ~jobs:4 (fun pool4 ->
            let solve pool =
              time (fun () -> Markov.Multigrid.solve_with ~tol:1e-10 ~pool mg_setup chain)
            in
            (* warmup solves: fault in the code paths and the setup's packed
               mirrors so the timed reps measure steady state *)
            let sol1 = fst (fst (solve pool1)) in
            let sol4 = fst (fst (solve pool4)) in
            let best1 = ref Float.infinity and best4 = ref Float.infinity in
            for _ = 1 to reps do
              let _, dt1 = solve pool1 in
              if dt1 < !best1 then best1 := dt1;
              let _, dt4 = solve pool4 in
              if dt4 < !best4 then best4 := dt4
            done;
            (sol1, !best1, sol4, !best4)))
  in
  let bits s = Array.map Int64.bits_of_float s.Markov.Solution.pi in
  let identical = bits sol1 = bits sol4 in
  let speedup = t1 /. t4 in
  let single_core = Domain.recommended_domain_count () <= 1 in
  let ok = identical && (speedup >= 1.0 || (single_core && speedup >= 0.9)) in
  Format.printf "  %-6s %-10s %-10s@." "jobs" "wall (s)" "speedup";
  Format.printf "  %-6d %-10.3f %-10.2f@." 1 t1 1.0;
  Format.printf "  %-6d %-10.3f %-10.2f  pi %s@." 4 t4 speedup
    (if identical then "identical" else "DIFFER (bug!)");
  Cdr_obs.Metrics.set_gauge "mg.scaling_seconds" ~labels:[ ("jobs", "1") ] t1;
  Cdr_obs.Metrics.set_gauge "mg.scaling_seconds" ~labels:[ ("jobs", "4") ] t4;
  Cdr_obs.Metrics.set_gauge "mg.speedup_j4" speedup;
  Cdr_obs.Metrics.set_gauge "mg.speedup_j4_ok" (if ok then 1.0 else 0.0);
  section_smoother := "colored";
  Format.printf "@.%s@."
    (if not identical then "SCALING GATE FAILED: results differ across job counts"
     else if ok then
       Printf.sprintf "scaling gate ok: jobs=4 runs %.2fx jobs=1 (%s host, %d domain(s))"
         speedup
         (if single_core then "single-core" else "multi-core")
         (Domain.recommended_domain_count ())
     else
       Printf.sprintf "SCALING GATE FAILED: speedup %.2f below the %s threshold" speedup
         (if single_core then "0.9 single-core" else "1.0"))

(* ---------- MG-LADDER: grid independence up to >= 1e6 states ---------- *)

(* The multigrid claim the paper leans on, measured as a ladder: the
   EXP-SCALE configuration family (phases 16 / counter 16 / max-run 16)
   solved to tolerance at each grid rung, finishing at >= 1e6 reachable
   states. The number under test is the cycle count: a true multilevel
   method holds it near-constant while the state count grows 8x. Plain
   V-cycles do NOT deliver that here — pairwise aggregation with
   piecewise-constant transfers loses per-cycle convergence as the
   hierarchy deepens (13 -> 210 cycles from grid 128 to 1024) — so the
   ladder runs W-cycles with 8/8 smoothing, where the count stays flat.
   The default-grid rung (128 bins) is the baseline; [mg.ladder_ok]
   asserts the top rung reaches >= 1e6 states, converges, and needs at
   most 2x the baseline's cycles. *)
let exp_ladder () =
  section "MG-LADDER: W-cycle counts up the grid ladder to >= 1e6 states";
  let tol = 1e-9 in
  let cfg_of grid_points =
    Cdr.Config.create_exn
      {
        Cdr.Config.default with
        Cdr.Config.grid_points;
        n_phases = 16;
        counter_length = 16;
        max_run = 16;
      }
  in
  Format.printf "(tolerance %g, W-cycles, pre/post smoothing 8/8, structured hierarchy, fused)@.@."
    tol;
  Format.printf "%-6s %-9s %-10s %-8s %-10s %-10s %-10s@." "grid" "states" "build (s)" "cycles"
    "solve (s)" "residual" "cyc/base";
  let baseline_cycles = ref 0 in
  let rungs =
    List.map
      (fun grid ->
        let cfg = cfg_of grid in
        let model, build_t = time (fun () -> Cdr.Model.build cfg) in
        let (sol, _stats), mg_t =
          time (fun () ->
              Markov.Multigrid.solve ~tol ~max_cycles:250 ~pre_smooth:8 ~post_smooth:8
                ~cycle:`W ~hierarchy:(Cdr.Model.hierarchy model) model.Cdr.Model.chain)
        in
        let n = model.Cdr.Model.n_states in
        let cycles = sol.Markov.Solution.iterations in
        if !baseline_cycles = 0 then baseline_cycles := cycles;
        let ratio = float_of_int cycles /. float_of_int (max 1 !baseline_cycles) in
        let g = string_of_int grid in
        Cdr_obs.Metrics.set_gauge "mg.ladder_states" ~labels:[ ("grid", g) ] (float_of_int n);
        Cdr_obs.Metrics.set_gauge "mg.ladder_build_seconds" ~labels:[ ("grid", g) ] build_t;
        Cdr_obs.Metrics.set_gauge "mg.ladder_cycles" ~labels:[ ("grid", g) ]
          (float_of_int cycles);
        Cdr_obs.Metrics.set_gauge "mg.ladder_seconds" ~labels:[ ("grid", g) ] mg_t;
        Format.printf "%-6d %-9d %-10.1f %-8d %-10.1f %-10.1e %-10.2f%s@." grid n build_t cycles
          mg_t sol.Markov.Solution.residual ratio
          (if sol.Markov.Solution.converged then "" else "  NOT CONVERGED");
        (n, cycles, sol.Markov.Solution.converged))
      [ 128; 256; 512; 1056 ]
  in
  let top_n, top_cycles, top_converged =
    List.fold_left (fun (an, ac, av) (n, c, v) -> if n > an then (n, c, v) else (an, ac, av))
      (0, 0, false) rungs
  in
  let ratio = float_of_int top_cycles /. float_of_int (max 1 !baseline_cycles) in
  let ok = top_n >= 1_000_000 && top_converged && ratio <= 2.0 in
  Cdr_obs.Metrics.set_gauge "mg.ladder_top_states" (float_of_int top_n);
  Cdr_obs.Metrics.set_gauge "mg.ladder_cycle_ratio" ratio;
  Cdr_obs.Metrics.set_gauge "mg.ladder_ok" (if ok then 1.0 else 0.0);
  Format.printf "@.%s@."
    (if ok then
       Printf.sprintf
         "ladder ok: %d states solved to tolerance in %d cycles (%.2fx the %d-cycle baseline)"
         top_n top_cycles ratio !baseline_cycles
     else
       Printf.sprintf "LADDER FAILED: top rung %d states, converged=%b, cycle ratio %.2f" top_n
         top_converged ratio)

(* ---------- WARM-VS-COLD: the setup/solve split and continuation sweeps ---------- *)

let exp_warm () =
  section "WARM-VS-COLD: warm-started continuation sweep vs independent cold solves";
  let base = Cdr.Config.default in
  (* a fine continuation sweep: adjacent sigmas close enough that most share
     one n_w lattice support, hence one reachable set and sparsity pattern —
     the regime warm-starting is built for (resolving BER vs sigma finely) *)
  let sigmas = List.init 16 (fun i -> 0.0610 +. (0.0001 *. float_of_int i)) in
  Format.printf "sigma sweep, %d points on the default grid (%d bins):@.@." (List.length sigmas)
    base.Cdr.Config.grid_points;
  let counter_of name =
    List.fold_left
      (fun acc s ->
        match s.Cdr_obs.Metrics.kind with
        | Cdr_obs.Metrics.Counter n when s.Cdr_obs.Metrics.name = name -> acc + n
        | _ -> acc)
      0 (Cdr_obs.Metrics.dump ())
  in
  let cold_points, cold_t = time (fun () -> Cdr.Sweep.sigma_w_values base sigmas) in
  let hits0 = counter_of "solver_cache.hits" and miss0 = counter_of "solver_cache.misses" in
  let warm_points, warm_t =
    time (fun () -> Cdr.Sweep.sigma_w_values ~strategy:Cdr.Sweep.warm base sigmas)
  in
  let hits = counter_of "solver_cache.hits" - hits0
  and misses = counter_of "solver_cache.misses" - miss0 in
  (* same convergence test either way; only the starting point and the
     symbolic setup are reused, so every point must agree to solver accuracy *)
  let worst =
    List.fold_left2
      (fun acc c w ->
        let bc = c.Cdr.Sweep.report.Cdr.Report.ber and bw = w.Cdr.Sweep.report.Cdr.Report.ber in
        Float.max acc (Float.abs (bc -. bw) /. Float.max bc 1e-300))
      0.0 cold_points warm_points
  in
  Format.printf "  cold: %.2fs  warm: %.2fs  speedup: %.2fx@." cold_t warm_t (cold_t /. warm_t);
  Format.printf "  multigrid setup cache: %d hits, %d misses over %d points@." hits misses
    (List.length sigmas);
  Format.printf "  worst relative BER deviation: %.2e (%s)@.@." worst
    (if worst <= 1e-6 then "within solver tolerance" else "EXCEEDS TOLERANCE (bug!)");
  Format.printf "%a@." Cdr.Sweep.pp_points warm_points

(* ---------- Bechamel kernel micro-benchmarks ---------- *)

let kernels () =
  section "KERNELS: Bechamel micro-benchmarks of the computational kernels";
  let open Bechamel in
  let cfg_small = { Cdr.Config.default with Cdr.Config.grid_points = 64; max_run = 4 } in
  let model = Cdr.Model.build cfg_small in
  let chain = model.Cdr.Model.chain in
  let tpm = Markov.Chain.tpm chain in
  let transposed = Sparse.Csr.transpose tpm in
  let n = Markov.Chain.n_states chain in
  let x = Array.make n (1.0 /. float_of_int n) in
  let y = Array.make n 0.0 in
  let hierarchy = Cdr.Model.hierarchy model in
  let tests =
    [
      Test.make ~name:"spmv" (Staged.stage (fun () -> Sparse.Csr.vec_mul_into x tpm y));
      Test.make ~name:"gs-sweep"
        (Staged.stage (fun () ->
             let z = Array.copy x in
             Markov.Splitting.sweeps_gauss_seidel ~transposed z 1));
      Test.make ~name:"coarsen"
        (Staged.stage (fun () ->
             match hierarchy with
             | p :: _ -> ignore (Markov.Aggregation.coarsen chain p ~weights:x)
             | [] -> ()));
      Test.make ~name:"build-direct"
        (Staged.stage (fun () -> ignore (Cdr.Model.build_direct cfg_small)));
      Test.make ~name:"build-direct-ref"
        (Staged.stage (fun () -> ignore (Cdr.Model.build_direct_reference cfg_small)));
      Test.make ~name:"mg-solve"
        (Staged.stage (fun () -> ignore (Cdr.Model.solve ~tol:1e-8 model)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ v ] ->
              Cdr_obs.Metrics.set_gauge "bench.kernel_ns" ~labels:[ ("kernel", name) ] v;
              if v > 1e6 then Format.printf "  %-24s %12.3f ms/run@." name (v /. 1e6)
              else Format.printf "  %-24s %12.0f ns/run@." name v
          | Some _ | None -> Format.printf "  %-24s (no estimate)@." name)
        results)
    tests;
  Format.printf
    "@.(build-direct is the flat-state assembly; build-direct-ref the retired hashtable+COO@.";
  Format.printf "path it is pinned against — same chain bit for bit, kept for the comparison.)@." 

let sections =
  [
    ("f2", exp_f2);
    ("f3", exp_f3);
    ("f4", exp_f4);
    ("f5", exp_f5);
    ("solve", exp_solve);
    ("slip", exp_slip);
    ("mc", exp_mc);
    ("scale", exp_scale);
    ("ablation-mg", ablation_multigrid);
    ("ablation-nw", ablation_nw_discretization);
    ("ablation-dz", ablation_dead_zone);
    ("freq-track", exp_freq_track);
    ("extensions", exp_extensions);
    ("telemetry", exp_telemetry);
    ("smoke", exp_smoke);
    ("kron", exp_kron);
    ("kron-smoke", exp_kron_smoke);
    ("env", exp_env);
    ("parallel", exp_parallel);
    ("scaling", exp_scaling);
    ("ladder", exp_ladder);
    ("warm", exp_warm);
    ("kernels", kernels);
  ]

(* ---------- machine-readable summary: BENCH.json ---------- *)

(* One flat counter snapshot ("name" or "name{k=v,...}" -> value); per-section
   deltas against it make the JSON self-contained without resetting the live
   registry mid-run. *)
let series_key s =
  match s.Cdr_obs.Metrics.labels with
  | [] -> s.Cdr_obs.Metrics.name
  | labels ->
      s.Cdr_obs.Metrics.name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let counters_snapshot () =
  List.filter_map
    (fun s ->
      match s.Cdr_obs.Metrics.kind with
      | Cdr_obs.Metrics.Counter n -> Some (series_key s, n)
      | _ -> None)
    (Cdr_obs.Metrics.dump ())

(* gauges the section set or moved (bench sections use gauges for their own
   measured numbers, e.g. kernel ns/run and colored-multigrid wall times) *)
let gauges_snapshot () =
  List.filter_map
    (fun s ->
      match s.Cdr_obs.Metrics.kind with
      | Cdr_obs.Metrics.Gauge v -> Some (series_key s, v)
      | _ -> None)
    (Cdr_obs.Metrics.dump ())

let gauges_delta before after =
  List.filter_map
    (fun (k, v) ->
      if List.assoc_opt k before = Some v then None else Some (k, Cdr_obs.Jsonl.Num v))
    after

let counters_delta before after =
  List.filter_map
    (fun (k, n) ->
      let d = n - Option.value ~default:0 (List.assoc_opt k before) in
      if d <> 0 then Some (k, Cdr_obs.Jsonl.Num (float_of_int d)) else None)
    after

let bench_json_path =
  match Sys.getenv_opt "CDR_BENCH_JSON" with Some p -> p | None -> "BENCH.json"

(* sections from other tools (cdr_load's serve.load / serve.replica_bench)
   already in the file are preserved; a filtered bench run only overwrites
   the sections it actually ran *)
let previous_sections () =
  if not (Sys.file_exists bench_json_path) then []
  else
    try
      let ic = open_in bench_json_path in
      let contents = In_channel.input_all ic in
      close_in ic;
      match Cdr_obs.Jsonl.of_string (String.trim contents) with
      | Cdr_obs.Jsonl.Obj fields -> (
          match List.assoc_opt "sections" fields with
          | Some (Cdr_obs.Jsonl.Obj secs) -> secs
          | _ -> [])
      | _ -> []
    with Failure _ | Sys_error _ -> []

let write_bench_json per_section total =
  let sections_json =
    List.map
      (fun (name, seconds, counters, gauges, smoother) ->
        ( name,
          Cdr_obs.Jsonl.Obj
            [
              ("seconds", Cdr_obs.Jsonl.Num seconds);
              ("jobs", Cdr_obs.Jsonl.Num (float_of_int (Cdr_par.Pool.default_jobs ())));
              ("smoother", Cdr_obs.Jsonl.Str smoother);
              ("counters", Cdr_obs.Jsonl.Obj counters);
              ("gauges", Cdr_obs.Jsonl.Obj gauges);
            ] ))
      per_section
  in
  let fresh = List.map fst sections_json in
  let kept =
    List.filter (fun (k, _) -> not (List.mem k fresh)) (previous_sections ())
  in
  let json =
    Cdr_obs.Jsonl.Obj
      [
        ("total_seconds", Cdr_obs.Jsonl.Num total);
        ("sections", Cdr_obs.Jsonl.Obj (kept @ sections_json));
      ]
  in
  let oc = open_out bench_json_path in
  output_string oc (Cdr_obs.Jsonl.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "machine-readable summary written to %s@." bench_json_path

let () =
  Cdr_obs.Sink.init_from_env ();
  let filters = List.tl (Array.to_list Sys.argv) in
  let is_prefix p s = String.length p <= String.length s && String.sub s 0 (String.length p) = p in
  let wanted name = filters = [] || List.exists (fun f -> is_prefix f name) filters in
  (match List.filter (fun (name, _) -> wanted name) sections with
  | [] ->
      Format.eprintf "no section matches %s; available: %s@."
        (String.concat " " filters)
        (String.concat " " (List.map fst sections));
      exit 1
  | selected ->
      let per_section =
        List.map
          (fun (name, f) ->
            let before = counters_snapshot () in
            let gauges_before = gauges_snapshot () in
            section_smoother := "lex";
            let (), dt = time f in
            ( name,
              dt,
              counters_delta before (counters_snapshot ()),
              gauges_delta gauges_before (gauges_snapshot ()),
              !section_smoother ))
          selected
      in
      let total = List.fold_left (fun acc (_, dt, _, _, _) -> acc +. dt) 0.0 per_section in
      Format.printf "@.total bench time: %.1fs (%d/%d sections)@." total (List.length selected)
        (List.length sections);
      write_bench_json per_section total);
  section "TELEMETRY SUMMARY: metrics registry after the run";
  Format.printf "%a@." Cdr_obs.Metrics.pp ();
  Cdr_obs.Sink.close_all ()

#!/usr/bin/env bash
# End-to-end smoke test of multi-replica cdr_serve: a mixed session through
# a 2-replica router with a shared result cache, a worker killed -9 mid-
# session (asserting respawn, zero hung requests, and only structured
# internal/overloaded error codes), and a result-cache persistence round
# trip across a server restart. Assertions are structural — ids, counters,
# error codes, byte-identical replays — never wall times.
set -eu

SERVE=${SERVE:-_build/default/bin/cdr_serve.exe}
LOAD=${LOAD:-_build/default/bin/cdr_load.exe}
TMP=$(mktemp -d)
cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT

echo "--- mixed session through 2 replicas with a shared result cache"
"$LOAD" --rate 200 -n 20 --warmup 5 --grid 32 --replicas 2 --result-cache 64 \
  --json "$TMP/load.json" >"$TMP/stdout"
grep -q '"responses":20' "$TMP/load.json"
# the stats aggregate carries the router section and per-replica rows
grep -q '"router":{' "$TMP/load.json"
grep -q '"result_cache":{"hits"' "$TMP/load.json"
grep -q '"replica":0' "$TMP/load.json"
grep -q '"replica":1' "$TMP/load.json"
# ... and cdr_load reported the per-replica request breakdown
grep -q 'replica 0:' "$TMP/stdout"
grep -q 'replica 1:' "$TMP/stdout"

echo "--- kill one worker mid-session: respawn, zero hangs, structured errors"
FIFO="$TMP/in"
mkfifo "$FIFO"
(
  timeout 60 "$SERVE" --replicas 2 <"$FIFO" >"$TMP/out" 2>"$TMP/err"
  echo $? >"$TMP/exit"
) &
SRV=$!
exec 9>"$FIFO"
echo '{"id":"s0","kind":"stats"}' >&9
for _ in $(seq 1 100); do
  grep -q '"id":"s0"' "$TMP/out" 2>/dev/null && break
  sleep 0.1
done
grep -q '"id":"s0"' "$TMP/out"
VICTIM=$(grep -o '"pid":[0-9]*' "$TMP/out" | head -1 | cut -d: -f2)
# put slow requests in flight on both replicas, then kill one of them
echo '{"id":"k1","kind":"analyze","params":{"grid":32},"hold_ms":400}' >&9
echo '{"id":"k2","kind":"analyze","params":{"grid":32,"counter":3},"hold_ms":400}' >&9
sleep 0.1
kill -9 "$VICTIM"
# traffic keeps flowing across the death and respawn
echo '{"id":"a1","kind":"analyze","params":{"grid":32}}' >&9
echo '{"id":"a2","kind":"slip","params":{"grid":32}}' >&9
sleep 1
echo '{"id":"s1","kind":"stats"}' >&9
exec 9>&-
wait "$SRV"
test "$(cat "$TMP/exit")" = 0
# zero hung requests: every id answered exactly once, including the two that
# may have been in flight on the killed worker
for id in s0 k1 k2 a1 a2 s1; do
  test "$(grep -c "\"id\":\"$id\"" "$TMP/out")" = 1
done
# the kill surfaced only as structured internal (or overloaded) errors
if grep -o '"code":"[a-z_]*"' "$TMP/out" | grep -vE '"code":"(internal|overloaded)"'; then
  echo "unexpected error code in responses" >&2
  exit 1
fi
# the killed replica was detected and respawned; the final snapshot sees a
# full fleet again
grep -q '"deaths":1' "$TMP/out"
grep -q '"respawns":1' "$TMP/out"
grep -q '"alive":2' "$TMP/out"

echo "--- result-cache persistence: byte-identical replay across a restart"
REQ='{"id":"p1","kind":"analyze","params":{"grid":32}}'
printf '%s\n' "$REQ" | "$SERVE" --result-cache 64 --persist "$TMP/cache.jsonl" >"$TMP/p1.out"
test -s "$TMP/cache.jsonl"
printf '%s\n%s\n' "$REQ" '{"id":"p2","kind":"stats"}' \
  | "$SERVE" --result-cache 64 --persist "$TMP/cache.jsonl" >"$TMP/p2.out"
# the reloaded cache answered the repeat without solving, byte-identically
cmp <(head -1 "$TMP/p1.out") <(head -1 "$TMP/p2.out")
grep -q '"result_cache":{"hits":1,"misses":0' "$TMP/p2.out"

echo "replica smoke: all checks passed"

#!/usr/bin/env bash
# End-to-end smoke test of cdr_serve's stdio mode: a canned mixed session
# covering every request kind plus malformed input, then deterministic
# deadline-timeout, queue-overload and SIGTERM-drain checks. Assertions are
# structural (response ids, codes, exact counter values) — never wall times.
set -eu

SERVE=${SERVE:-_build/default/bin/cdr_serve.exe}
TMP=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

# tiny config (32-bin grid, 16 phases, counter 2): each analyze solves in
# well under a second, so the whole script stays fast
P='"params":{"grid":32,"phases":16,"counter":2}'
P2='"params":{"grid":32,"phases":16,"counter":2,"p_transition":0.4}'

echo "--- canned session: every kind, a structure-sharing pair, bad input"
{
  echo '{"id":"a1","kind":"analyze",'"$P"'}'
  echo '{"id":"a2","kind":"analyze",'"$P2"'}'
  echo '{"id":"sw","kind":"sweep","lengths":[2,4],'"$P"'}'
  echo '{"id":"sg","kind":"sigma","values":[0.05,0.06],'"$P"'}'
  echo '{"id":"sl","kind":"slip",'"$P"'}'
  echo 'this is not json'
  echo '{"id":"uf","kind":"analyze","paramz":{}}'
  echo '{"id":"st","kind":"stats"}'
} | "$SERVE" --summary >"$TMP/out1" 2>"$TMP/metrics1"

grep -q '"id":"a1","ok":true' "$TMP/out1"
grep -q '"id":"sw","ok":true' "$TMP/out1"
grep -q '"id":"sg","ok":true' "$TMP/out1"
grep -q '"id":"sl","ok":true' "$TMP/out1"
# a2 only differs from a1 in a noise parameter: same structure key, so its
# solve reuses a1's cached multigrid setup and the response says so
grep -q '"id":"a2","ok":true.*"hits":[1-9]' "$TMP/out1"
test "$(grep -c '"code":"bad_request"' "$TMP/out1" || true)" -eq 2
# the stats snapshot, answered last, already counts the five ok solves
grep -q '"id":"st","ok":true.*"uptime_s"' "$TMP/out1"
grep -q '"id":"st".*"kind":"analyze","status":"ok","count":2' "$TMP/out1"
grep -q 'solver_cache.hits = [1-9]' "$TMP/metrics1"
grep -q 'serve.requests{kind=analyze,status=ok} = 2' "$TMP/metrics1"

echo "--- deadline timeout answered, server keeps serving"
{
  echo '{"id":"t1","kind":"analyze","deadline_ms":1,"hold_ms":50,'"$P"'}'
  echo '{"id":"t2","kind":"analyze",'"$P"'}'
} | "$SERVE" >"$TMP/out2"
grep -q '"id":"t1","ok":false.*"code":"timeout"' "$TMP/out2"
grep -q '"id":"t2","ok":true' "$TMP/out2"

echo "--- backpressure: queue bound 2 overflows while the solve loop is held"
mkfifo "$TMP/in3"
"$SERVE" --queue-bound 2 <"$TMP/in3" >"$TMP/out3" &
server_pid=$!
{
  # h1 occupies the single solve loop for ~1s; the next two fill the queue
  # to its bound; the fourth must be refused immediately
  echo '{"id":"h1","kind":"analyze","hold_ms":1000,'"$P"'}'
  sleep 0.4
  echo '{"id":"q1","kind":"analyze",'"$P"'}'
  echo '{"id":"q2","kind":"analyze",'"$P"'}'
  echo '{"id":"ov","kind":"analyze",'"$P"'}'
} >"$TMP/in3"
wait "$server_pid"
server_pid=""
grep -q '"id":"ov","ok":false.*"code":"overloaded"' "$TMP/out3"
grep -q '"id":"h1","ok":true' "$TMP/out3"
grep -q '"id":"q1","ok":true' "$TMP/out3"
grep -q '"id":"q2","ok":true' "$TMP/out3"

echo "--- SIGTERM drains admitted requests and exits 0"
mkfifo "$TMP/in4"
"$SERVE" <"$TMP/in4" >"$TMP/out4" &
server_pid=$!
exec 9>"$TMP/in4" # keep the fifo open so EOF is not what stops the server
echo '{"id":"d1","kind":"analyze","hold_ms":400,'"$P"'}' >&9
echo '{"id":"d2","kind":"analyze",'"$P"'}' >&9
sleep 0.2 # d1 executing, d2 admitted
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
exec 9>&-
test "$status" -eq 0
grep -q '"id":"d1","ok":true' "$TMP/out4"
grep -q '"id":"d2","ok":true' "$TMP/out4"

echo "serve smoke: all checks passed"

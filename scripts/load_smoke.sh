#!/usr/bin/env bash
# End-to-end smoke test of the cdr_load traffic generator: a short open-loop
# mixed session against a spawned cdr_serve, then structural assertions on
# the JSON report — response accounting, per-kind percentile fields, the
# embedded server stats snapshot. Never asserts wall times or rates.
set -eu

LOAD=${LOAD:-_build/default/bin/cdr_load.exe}
TMP=$(mktemp -d)
cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT

echo "--- open-loop session: 15 requests, every kind, 2 structures"
"$LOAD" --rate 200 -n 15 --grid 32 --json "$TMP/load.json" >"$TMP/stdout"

# every request answered (cdr_load exits non-zero otherwise; assert anyway)
grep -q '"tool":"cdr_load"' "$TMP/load.json"
grep -q '"requests_sent":15' "$TMP/load.json"
grep -q '"responses":15' "$TMP/load.json"
# per-kind percentile rows exist for the whole mix
for kind in analyze sweep sigma slip; do
  grep -q "\"$kind\":{\"count\"" "$TMP/load.json"
done
grep -q '"p50_s"' "$TMP/load.json"
grep -q '"p99_s"' "$TMP/load.json"
# the trailing stats request captured the server's own view of the session
grep -q '"server_stats":{"uptime_s"' "$TMP/load.json"
grep -q '"latency_seconds":\[' "$TMP/load.json"
# the human summary reported throughput
grep -q 'rps' "$TMP/stdout"

echo "--- deadline pressure: a 1ms budget at high rate must produce timeouts"
"$LOAD" --rate 500 -n 10 --grid 32 --deadline-ms 1 --json "$TMP/load2.json" >/dev/null
grep -q '"responses":10' "$TMP/load2.json"
grep -q '"timeout"' "$TMP/load2.json"

echo "load smoke: all checks passed"

(* Kronecker factorization of a network's global transition operator.

   Condition on the joint output vector [o] of every component whose output
   other components read ("broadcast" components). Given [o], each
   component's state transition depends only on its own state and its
   private noise — the inputs it reads are either fixed by [o] or private —
   so the conditional one-step operator is a Kronecker product of small
   per-component matrices:

     P = sum over joint outputs o of  (x)_k  A_k^(o)

   where A_k^(o)[s, s'] sums, over the component's private noise, the
   probability of stepping s -> s' *and* (for a broadcast component)
   emitting exactly o_k. Total probability over outputs makes the sum
   row-stochastic on the full product space.

   The factorization requires two structural properties, checked by
   {!supports}:
   - no [From_state] wiring: registered state feedback couples one factor's
     row choice to another factor's state, which no finite sum of products
     over *outputs* can express;
   - every source is read by at most one component: a shared source
     correlates two factors through their noise.

   The operator lives on the FULL product space (Network.n_global_states),
   not the reachable subset [build_chain] explores: matrix-free iteration
   cannot know reachability in advance. Stationary mass still concentrates
   on the recurrent class, so functionals of the stationary vector agree
   with the reachable-space chain. *)

let supports net =
  let wiring = Network.wiring net in
  let comps = Network.components net in
  let n_src = Array.length (Network.sources net) in
  let reader = Array.make n_src (-1) in
  let obstacle = ref None in
  let report msg = if !obstacle = None then obstacle := Some msg in
  if Array.length comps = 0 then report "network has no components";
  Array.iteri
    (fun k wires ->
      Array.iter
        (fun wire ->
          match wire with
          | Network.From_state c ->
              report
                (Printf.sprintf
                   "component %s reads component %d's state (registered feedback)"
                   comps.(k).Component.name c)
          | Network.From_source s ->
              if reader.(s) >= 0 && reader.(s) <> k then
                report
                  (Printf.sprintf "source %s is shared by components %d and %d"
                     (Network.sources net).(s).Network.source_name reader.(s) k)
              else reader.(s) <- k
          | Network.From_component _ -> ())
        wires)
    wiring;
  match !obstacle with None -> Ok () | Some msg -> Error msg

let of_network net =
  (match supports net with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Kron_build.of_network: " ^ msg));
  let comps = Network.components net in
  let wiring = Network.wiring net in
  let sources = Network.sources net in
  let nk = Array.length comps in
  let n_src = Array.length sources in
  (* private sources of each component, in first-read order, deduplicated *)
  let private_srcs = Array.make nk [||] in
  Array.iteri
    (fun k wires ->
      let acc = ref [] in
      Array.iter
        (fun wire ->
          match wire with
          | Network.From_source s -> if not (List.mem s !acc) then acc := s :: !acc
          | _ -> ())
        wires;
      private_srcs.(k) <- Array.of_list (List.rev !acc))
    wiring;
  let broadcast = Array.make nk false in
  Array.iter
    (fun wires ->
      Array.iter
        (fun wire -> match wire with Network.From_component c -> broadcast.(c) <- true | _ -> ())
        wires)
    wiring;
  let bcast =
    Array.of_list (List.filter (fun k -> broadcast.(k)) (List.init nk (fun k -> k)))
  in
  (* outv.(k) is the conditioned output of broadcast component k, -1 when
     unconstrained; sym.(s) the current symbol of private source s *)
  let outv = Array.make nk (-1) in
  let sym = Array.make (max 1 n_src) 0 in
  let factor k =
    let comp = comps.(k) in
    let coo = Sparse.Coo.create ~rows:comp.Component.n_states ~cols:comp.Component.n_states in
    let nonempty = ref false in
    let inputs = Array.make comp.Component.n_inputs 0 in
    let srcs = private_srcs.(k) in
    for s = 0 to comp.Component.n_states - 1 do
      let rec noise i prob =
        if i = Array.length srcs then begin
          Array.iteri
            (fun port wire ->
              inputs.(port) <-
                (match wire with
                | Network.From_source si -> sym.(si)
                | Network.From_component c -> outv.(c)
                | Network.From_state _ -> assert false))
            wiring.(k);
          let s', out = comp.Component.step s inputs in
          if outv.(k) < 0 || out = outv.(k) then begin
            Sparse.Coo.add coo ~row:s ~col:s' prob;
            nonempty := true
          end
        end
        else
          Prob.Pmf.iter sources.(srcs.(i)).Network.pmf (fun label w ->
              sym.(srcs.(i)) <- label;
              noise (i + 1) (prob *. w))
      in
      noise 0 1.0
    done;
    if !nonempty then Some (Sparse.Coo.to_csr coo) else None
  in
  let terms = ref [] in
  (* one term per joint output vector of the broadcast components, in
     lexicographic order; a term with an impossible output (an all-zero
     factor) is dropped entirely *)
  let rec enumerate bl =
    if bl = Array.length bcast then begin
      let rec build k acc =
        if k = nk then Some (List.rev acc)
        else match factor k with None -> None | Some f -> build (k + 1) (f :: acc)
      in
      match build 0 [] with
      | Some factors -> terms := Sparse.Kron_op.term factors :: !terms
      | None -> ()
    end
    else begin
      let k = bcast.(bl) in
      for o = 0 to comps.(k).Component.n_outputs - 1 do
        outv.(k) <- o;
        enumerate (bl + 1)
      done;
      outv.(k) <- -1
    end
  in
  enumerate 0;
  match !terms with
  | [] -> invalid_arg "Kron_build.of_network: network has no possible transitions"
  | ts -> Sparse.Kron_op.sum (List.rev ts)

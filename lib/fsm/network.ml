type source = { source_name : string; pmf : Prob.Pmf.t }

type signal = From_source of int | From_component of int | From_state of int

type t = {
  sources : source array;
  components : Component.t array;
  wiring : signal array array;
  strides : int array; (* mixed-radix strides for state encoding *)
  total_states : int;
}

let create ~sources ~components ~wiring =
  let n_components = Array.length components in
  if Array.length wiring <> n_components then
    invalid_arg "Network.create: wiring must have one entry per component";
  Array.iteri
    (fun k wires ->
      let comp = components.(k) in
      if Array.length wires <> comp.Component.n_inputs then
        invalid_arg
          (Printf.sprintf "Network.create: component %s expects %d inputs, wired %d"
             comp.Component.name comp.Component.n_inputs (Array.length wires));
      Array.iteri
        (fun port wire ->
          let card = comp.Component.input_cards.(port) in
          match wire with
          | From_source s ->
              if s < 0 || s >= Array.length sources then
                invalid_arg "Network.create: source index out of range";
              let pmf = sources.(s).pmf in
              if Prob.Pmf.min_support pmf < 0 || Prob.Pmf.max_support pmf >= card then
                invalid_arg
                  (Printf.sprintf
                     "Network.create: source %s emits symbols outside [0,%d) required by %s port %d"
                     sources.(s).source_name card comp.Component.name port)
          | From_component c ->
              if c < 0 || c >= n_components then
                invalid_arg "Network.create: component index out of range";
              if c >= k then
                invalid_arg
                  (Printf.sprintf
                     "Network.create: wiring is not feed-forward (%s reads component %d)"
                     comp.Component.name c);
              if components.(c).Component.n_outputs > card then
                invalid_arg
                  (Printf.sprintf
                     "Network.create: %s outputs %d symbols but %s port %d accepts %d"
                     components.(c).Component.name components.(c).Component.n_outputs
                     comp.Component.name port card)
          | From_state c ->
              if c < 0 || c >= n_components then
                invalid_arg "Network.create: state-feedback index out of range";
              if components.(c).Component.n_states > card then
                invalid_arg
                  (Printf.sprintf
                     "Network.create: %s has %d states but %s port %d accepts %d"
                     components.(c).Component.name components.(c).Component.n_states
                     comp.Component.name port card))
        wires)
    wiring;
  let strides = Array.make n_components 1 in
  let total = ref 1 in
  for k = n_components - 1 downto 0 do
    strides.(k) <- !total;
    total := !total * components.(k).Component.n_states
  done;
  { sources; components; wiring; strides; total_states = !total }

let n_global_states t = t.total_states

let sources t = t.sources

let components t = t.components

let wiring t = t.wiring

let encode t states =
  if Array.length states <> Array.length t.components then
    invalid_arg "Network.encode: wrong arity";
  let acc = ref 0 in
  Array.iteri
    (fun k s ->
      if s < 0 || s >= t.components.(k).Component.n_states then
        invalid_arg "Network.encode: component state out of range";
      acc := !acc + (s * t.strides.(k)))
    states;
  !acc

let decode t code =
  Array.mapi (fun k comp -> code / t.strides.(k) mod comp.Component.n_states) t.components

(* Resolve one clock cycle given fixed noise symbols: returns next states.
   [outputs] is filled as components evaluate in order. [buffers] holds one
   preallocated input array per component — [advance] runs once per (state,
   joint noise outcome) pair during chain construction, so it must not
   allocate. *)
let advance t ~buffers ~noise ~states ~next ~outputs =
  Array.iteri
    (fun k comp ->
      let wires = t.wiring.(k) in
      let inputs = buffers.(k) in
      Array.iteri
        (fun port wire ->
          inputs.(port) <-
            (match wire with
            | From_source s -> noise.(s)
            | From_component c -> outputs.(c)
            | From_state c -> states.(c)))
        wires;
      let s', out = comp.Component.step states.(k) inputs in
      next.(k) <- s';
      outputs.(k) <- out)
    t.components

let make_buffers t = Array.map (fun c -> Array.make c.Component.n_inputs 0) t.components

(* Enumerate the joint support of all noise sources, calling [f symbols prob]
   for every combination with positive probability. *)
let iter_joint_noise t f =
  let n = Array.length t.sources in
  let symbols = Array.make n 0 in
  let rec go k prob =
    if k = n then f symbols prob
    else
      Prob.Pmf.iter t.sources.(k).pmf (fun label w ->
          symbols.(k) <- label;
          go (k + 1) (prob *. w))
  in
  go 0 1.0

type built = {
  chain : Markov.Chain.t;
  states : int array array;
  index_of : int array -> int option;
}

let build_chain t ~initial =
  if Array.length initial <> Array.length t.components then
    invalid_arg "Network.build_chain: initial state has wrong arity";
  let code0 = encode t initial in
  let index_table : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let state_list = ref [] in
  let n_found = ref 0 in
  let register code =
    match Hashtbl.find_opt index_table code with
    | Some idx -> idx
    | None ->
        let idx = !n_found in
        Hashtbl.add index_table code idx;
        state_list := code :: !state_list;
        incr n_found;
        idx
  in
  ignore (register code0);
  (* BFS; indices are assigned on first discovery so rows come out in BFS
     order. The joint-noise enumeration revisits the same successor many
     times (distinct noise symbols, same propagated state), so each row is
     merged in a small per-row table before entering the global accumulator. *)
  let rows = ref [] in
  let queue = Queue.create () in
  Queue.add code0 queue;
  let visited = Hashtbl.create 1024 in
  Hashtbl.add visited code0 ();
  let next = Array.make (Array.length t.components) 0 in
  let outputs = Array.make (Array.length t.components) 0 in
  let buffers = make_buffers t in
  while not (Queue.is_empty queue) do
    let code = Queue.pop queue in
    let states = decode t code in
    let row = register code in
    let row_acc : (int, float) Hashtbl.t = Hashtbl.create 32 in
    iter_joint_noise t (fun noise prob ->
        advance t ~buffers ~noise ~states ~next ~outputs;
        let code' = encode t next in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt row_acc code') in
        Hashtbl.replace row_acc code' (prev +. prob);
        if not (Hashtbl.mem visited code') then begin
          Hashtbl.add visited code' ();
          Queue.add code' queue
        end);
    let entries = Hashtbl.fold (fun code' p acc -> (register code', p) :: acc) row_acc [] in
    rows := (row, entries) :: !rows
  done;
  let n = !n_found in
  let acc = Sparse.Coo.create ~rows:n ~cols:n in
  List.iter
    (fun (row, entries) -> List.iter (fun (col, p) -> Sparse.Coo.add acc ~row ~col p) entries)
    !rows;
  let chain = Markov.Chain.of_csr ~tol:1e-9 (Sparse.Coo.to_csr acc) in
  let codes = Array.of_list (List.rev !state_list) in
  let states = Array.map (decode t) codes in
  let index_of s =
    match Hashtbl.find_opt index_table (encode t s) with Some idx -> Some idx | None -> None
  in
  { chain; states; index_of }

let simulate t ~rng ~initial ~steps ~on_step =
  if Array.length initial <> Array.length t.components then
    invalid_arg "Network.simulate: initial state has wrong arity";
  let states = Array.copy initial in
  let next = Array.make (Array.length t.components) 0 in
  let outputs = Array.make (Array.length t.components) 0 in
  let noise = Array.make (Array.length t.sources) 0 in
  let buffers = make_buffers t in
  for _ = 1 to steps do
    Array.iteri (fun k src -> noise.(k) <- Prob.Rng.pmf rng src.pmf) t.sources;
    advance t ~buffers ~noise ~states ~next ~outputs;
    on_step states outputs;
    Array.blit next 0 states 0 (Array.length states)
  done

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph fsm_network {\n  rankdir=LR;\n";
  Array.iteri
    (fun s src ->
      Buffer.add_string buf
        (Printf.sprintf "  src%d [label=\"%s\\n%d atoms\", shape=ellipse];\n" s src.source_name
           (Prob.Pmf.cardinal src.pmf)))
    t.sources;
  Array.iteri
    (fun k comp ->
      Buffer.add_string buf
        (Printf.sprintf "  comp%d [label=\"%s\\n%d states\", shape=box];\n" k
           comp.Component.name comp.Component.n_states))
    t.components;
  Array.iteri
    (fun k wires ->
      Array.iteri
        (fun port wire ->
          let edge =
            match wire with
            | From_source s -> Printf.sprintf "  src%d -> comp%d [label=\"p%d\"];\n" s k port
            | From_component c -> Printf.sprintf "  comp%d -> comp%d [label=\"p%d\"];\n" c k port
            | From_state c ->
                Printf.sprintf "  comp%d -> comp%d [label=\"p%d (state)\", style=dashed];\n" c k
                  port
          in
          Buffer.add_string buf edge)
        wires)
    t.wiring;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>network: %d sources, %d components, %d product states@,"
    (Array.length t.sources) (Array.length t.components) t.total_states;
  Array.iter
    (fun s ->
      Format.fprintf ppf "  source %s: %d atoms@," s.source_name (Prob.Pmf.cardinal s.pmf))
    t.sources;
  Array.iter
    (fun c ->
      Format.fprintf ppf "  component %s: %d states, %d inputs, %d outputs@," c.Component.name
        c.Component.n_states c.Component.n_inputs c.Component.n_outputs)
    t.components;
  Format.fprintf ppf "@]"

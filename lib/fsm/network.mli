(** Networks of FSMs with stochastic inputs — the paper's modeling formalism.

    A network wires {!Component.t} machines to each other and to noise
    sources (pmfs over integer symbols). Components are evaluated in listed
    order within each clock cycle, so wiring must be feed-forward: component
    [k] may read only noise sources and outputs of components [0..k-1].
    Under white (time-uncorrelated) noise sources the global state process
    is a Markov chain; {!build_chain} constructs its transition probability
    matrix over the *reachable* part of the product state space by
    breadth-first exploration, enumerating the joint noise support at every
    state. *)

type source = { source_name : string; pmf : Prob.Pmf.t }

type signal =
  | From_source of int (* index into sources; symbol = pmf label *)
  | From_component of int (* index into components; symbol = its output *)
  | From_state of int
      (* index into components; symbol = its *current* (pre-update) state.
         This is registered feedback: it may point at any component, which is
         how the loop data -> PD -> counter -> phase error -> PD closes
         without violating the feed-forward evaluation order. *)

type t

val create : sources:source array -> components:Component.t array -> wiring:signal array array -> t
(** [wiring.(k)] lists, in port order, where component [k]'s inputs come
    from. Raises [Invalid_argument] if a wire is not feed-forward, an index
    is out of range, arities disagree, or a source pmf contains labels
    outside the declared input cardinality of a destination port
    (pmf labels must lie in [0, card)). *)

val n_global_states : t -> int
(** Product-space size (before reachability pruning). *)

val sources : t -> source array

val components : t -> Component.t array

val wiring : t -> signal array array
(** The validated topology, exposed read-only for structural analyses —
    {!Kron_build} walks it to decide whether the network's transition
    operator factorizes into Kronecker terms. [wiring net] aliases internal
    arrays; callers must not mutate them. *)

val encode : t -> int array -> int
(** Mixed-radix packing of per-component states. *)

val decode : t -> int -> int array

type built = {
  chain : Markov.Chain.t;
  states : int array array; (* row index -> per-component states *)
  index_of : int array -> int option; (* inverse lookup *)
}

val build_chain : t -> initial:int array -> built
(** Explore from [initial]. Raises [Invalid_argument] on a malformed initial
    state vector. *)

val simulate :
  t -> rng:Prob.Rng.t -> initial:int array -> steps:int -> on_step:(int array -> int array -> unit) -> unit
(** Direct simulation without building the chain: at each step samples all
    sources, calls [on_step states outputs] (before the state update), then
    advances. The reference semantics that {!build_chain} must agree with —
    property tests exploit this. *)

val pp_summary : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering of the network topology (Figure 2 of the paper):
    sources as ellipses, components as boxes, solid edges for combinational
    output wires, dashed edges for registered state feedback. *)

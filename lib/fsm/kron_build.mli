(** Kronecker factorization of a network's one-step transition operator.

    The structural bridge between the FSM composition formalism and the
    matrix-free solver backend: for networks whose coupling flows only
    through component {e outputs} — no registered state feedback, no noise
    source shared between components — the global transition matrix is a sum
    of Kronecker products of per-component matrices, one term per joint
    output vector of the components that others read. The operator covers
    the {e full} product state space ([Network.n_global_states]), with the
    factor order matching [Network.encode]'s mixed-radix packing (component
    0 slowest), and its rows sum to 1 by total probability over outputs.

    The production CDR chain wires the phase-error state back into the
    phase detector ([From_state]), so it does not pass {!supports}; the CDR
    model builds its factorization directly from its per-block probability
    tables instead ([Cdr.Kron_model]). This generic builder serves the
    property tests (factorized vs. explicitly built chains on randomized
    networks) and any future feed-forward model. *)

val supports : Network.t -> (unit, string) result
(** [Ok ()] when the network's operator factorizes; [Error why] names the
    first obstacle (state feedback, a shared source, or no components). *)

val of_network : Network.t -> Sparse.Kron_op.t
(** Build the factorized operator. One Kronecker term per joint output
    vector of the broadcast components (lexicographic order); terms whose
    conditioned output is impossible are dropped. Raises [Invalid_argument]
    when {!supports} says no. *)

(** Markov-modulated jitter environments (ROADMAP item 4).

    A small Markov chain over named operating regimes whose state modulates
    the CDR's noise parameters per bit interval — the
    Markov-modulated-Markov-chain construction of Foss, Shneer & Tyurlikov
    (arXiv:1105.0270) applied to the paper's CDR model. {!Composed} builds
    the product chain [P((e,s) -> (e',s')) = S[e][e'] * P_e[s][s']]; this
    module owns the environment specification. *)

type regime = {
  name : string;
  sigma_scale : float; (* multiplies [Config.sigma_w]; 1.0 = unchanged *)
  drift_mean : float option; (* rebuild [n_r] with this mean (bins/bit) *)
  drift_max : int option; (* ... and this truncation radius *)
  p01 : float option; (* override the 0->1 transition density *)
  p10 : float option;
}

type t = {
  name : string;
  regimes : regime array;
  switch : float array array; (* row-stochastic regime switching matrix *)
}

val regime :
  ?sigma_scale:float ->
  ?drift_mean:float ->
  ?drift_max:int ->
  ?p01:float ->
  ?p10:float ->
  string ->
  regime
(** A regime with the given modulations; omitted fields leave the base
    config untouched. *)

val validate : t -> (unit, string) result
(** Non-empty unique regime names, positive finite [sigma_scale], overrides
    in range, and a square switching matrix with non-negative rows summing
    to 1 within [1e-9]. *)

val create_exn : name:string -> regimes:regime array -> switch:float array array -> t
(** {!validate} or [Invalid_argument]. *)

val identity : t
(** One regime, no modulation, switch [[1]]: composing with it reproduces
    the base CDR chain bitwise (pinned by the test suite). *)

val n_regimes : t -> int

val regime_config : t -> Cdr.Config.t -> int -> Cdr.Config.t
(** [regime_config t base e] is the effective configuration while the
    environment dwells in regime [e]: [sigma_w] scaled, [n_r] rebuilt when
    drift overrides are present (an absent mean/radius defaults to the
    value recovered from the base pmf), [p01]/[p10] overridden. The
    modulations never touch the state-space parameters (grid, phases,
    counter length, run limit), so all regimes share one product-space
    shape. *)

val stationary : t -> float array
(** Stationary distribution of the switching chain, by GTH elimination —
    exact even for the nearly-uncoupled slow-switching environments the
    mixture limit cares about. Raises [Failure] on a reducible environment
    (an absorbing regime). *)

val bursty : ?p_enter:float -> ?p_exit:float -> ?sigma_boost:float -> unit -> t
(** Two regimes, quiet/burst: aggressor crosstalk widening the eye jitter
    by [sigma_boost] (default 2.0) with geometric burst dwell times
    (enter 0.05, exit 0.25 per bit). *)

val drift_cycle : unit -> t
(** Three-regime slow thermal ring (cool/nominal/hot) with long dwell
    times; the hot phase also speeds the reference drift. *)

val crosstalk : unit -> t
(** Two regimes toggling an aggressor lane that skews the data transition
    densities and widens the eye jitter. *)

val presets : (string * t) list

val find : string -> t option

val to_json : t -> Cdr_obs.Jsonl.t
(** Canonical encoding: fixed field order, absent regime overrides omitted.
    [of_json (to_json t)] returns [t] structurally, and every spelling of
    the same environment re-encodes identically — the property the service
    cache keys rely on. *)

val of_json : Cdr_obs.Jsonl.t -> (t, string) result
(** Parses the {!to_json} shape (unknown fields rejected) or a preset name
    given as a bare JSON string; validates the result. *)

val key : t -> string
(** Compact structural fingerprint (regime count + canonical-JSON hash) for
    [model_key]/[structure_key] extension. The result cache keys on the
    full canonical encoding, never on this digest. *)

val equal : t -> t -> bool
(** Structural equality via the canonical encoding. *)

val pp : Format.formatter -> t -> unit

(* The Context-threaded entry point: build the composed model, solve it,
   and evaluate every environment functional — the env analogue of
   {!Cdr.Report.run}. The CLI (--env/--env-file), the service's [env]
   request kind and the bursty-jitter example all consume this one
   record. *)

type t = {
  env : Env.t;
  backend : Cdr_op.kind;
  n_states : int;
  iterations : int;
  residual : float;
  converged : bool;
  build_seconds : float;
  solve_seconds : float;
  regime_probs : float array;
  regime_ber : float array;
  ber : float;
  slip_rate : float;
  mean_bits_between_slips : float;
  phase_density : Linalg.Vec.t;
  regime_densities : Linalg.Vec.t array;
}

let run ?(backend = `Csr) ?solver ?ctx env cfg =
  let composed = Composed.build ~backend env cfg in
  let t0 = Cdr_obs.Clock.monotonic () in
  let solution = Composed.solve ?solver ?ctx composed in
  let solve_seconds = Cdr_obs.Clock.monotonic () -. t0 in
  let pi = solution.Markov.Solution.pi in
  ( composed,
    {
      env;
      backend;
      n_states = composed.Composed.n_states;
      iterations = solution.Markov.Solution.iterations;
      residual = solution.Markov.Solution.residual;
      converged = solution.Markov.Solution.converged;
      build_seconds = composed.Composed.build_seconds;
      solve_seconds;
      regime_probs = Composed.regime_probs composed ~pi;
      regime_ber = Composed.regime_ber composed ~pi;
      ber = Composed.ber composed ~pi;
      slip_rate = Composed.slip_rate composed ~pi;
      mean_bits_between_slips = Composed.mean_bits_between_slips composed ~pi;
      phase_density = Composed.phase_marginal composed ~pi;
      regime_densities = Composed.regime_conditional_densities composed ~pi;
    } )

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@," Env.pp t.env;
  Format.fprintf ppf "composed states: %d (%s backend), %d iterations%s@," t.n_states
    (Cdr_op.kind_string t.backend) t.iterations
    (if t.converged then "" else " [NOT CONVERGED]");
  Array.iteri
    (fun e name ->
      Format.fprintf ppf "  P(%-12s) = %.6f   conditional BER %.3e@," name t.regime_probs.(e)
        t.regime_ber.(e))
    (Array.map (fun (g : Env.regime) -> g.Env.name) t.env.Env.regimes);
  Format.fprintf ppf "regime-weighted BER: %.6e@," t.ber;
  Format.fprintf ppf "cycle-slip rate: %.6e (mean bits between slips %.4e)@]" t.slip_rate
    t.mean_bits_between_slips

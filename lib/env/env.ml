(* Markov-modulated jitter environments (ROADMAP item 4).

   An environment is a small Markov chain over named operating regimes —
   bursty aggressor crosstalk on/off, slow thermal drift phases — whose
   state modulates the CDR's noise parameters: regime [e] scales [sigma_w],
   may rebuild the drift pmf [n_r], and may override the data transition
   densities [p01]/[p10]. The construction follows the
   Markov-modulated-Markov-chain composition of Foss, Shneer & Tyurlikov
   (arXiv:1105.0270): the environment switches independently once per bit,
   and during a bit interval the CDR evolves under the dwell regime's
   parameters, so

     P((e, s) -> (e', s')) = S[e][e'] * P_e[s][s']

   with [S] the switching matrix and [P_e] the regime-[e] CDR chain.
   {!Composed} assembles that product; this module owns the environment
   spec itself: validation, per-regime config modulation, the stationary
   regime distribution, presets, and the canonical JSON codec the v2
   service schema embeds. *)

type regime = {
  name : string;
  sigma_scale : float;
  drift_mean : float option;
  drift_max : int option;
  p01 : float option;
  p10 : float option;
}

type t = { name : string; regimes : regime array; switch : float array array }

let regime ?(sigma_scale = 1.0) ?drift_mean ?drift_max ?p01 ?p10 name =
  { name; sigma_scale; drift_mean; drift_max; p01; p10 }

let n_regimes t = Array.length t.regimes

let row_sum_tol = 1e-9

let validate t =
  let r = Array.length t.regimes in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  if t.name = "" then err "environment name must be non-empty"
  else if r = 0 then err "environment needs at least one regime"
  else if Array.length t.switch <> r then
    err "switch matrix has %d rows for %d regimes" (Array.length t.switch) r
  else begin
    let problem = ref None in
    let fail fmt = Format.kasprintf (fun m -> if !problem = None then problem := Some m) fmt in
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun (g : regime) ->
        if g.name = "" then fail "regime names must be non-empty";
        if Hashtbl.mem seen g.name then fail "duplicate regime name %S" g.name;
        Hashtbl.replace seen g.name ();
        if not (Float.is_finite g.sigma_scale) || g.sigma_scale <= 0.0 then
          fail "regime %S: sigma_scale must be finite and positive" g.name;
        (match g.drift_mean with
        | Some v when (not (Float.is_finite v)) || v < 0.0 ->
            fail "regime %S: drift_mean must be finite and non-negative" g.name
        | _ -> ());
        (match g.drift_max with
        | Some v when v < 1 -> fail "regime %S: drift_max must be >= 1" g.name
        | _ -> ());
        List.iter
          (fun (label, v) ->
            match v with
            | Some p when (not (Float.is_finite p)) || p < 0.0 || p > 1.0 ->
                fail "regime %S: %s must lie in [0, 1]" g.name label
            | _ -> ())
          [ ("p01", g.p01); ("p10", g.p10) ])
      t.regimes;
    Array.iteri
      (fun i row ->
        if Array.length row <> r then
          fail "switch row %d has %d entries for %d regimes" i (Array.length row) r
        else begin
          let s = ref 0.0 in
          Array.iteri
            (fun j p ->
              if (not (Float.is_finite p)) || p < 0.0 then
                fail "switch entry (%d, %d) must be finite and non-negative" i j;
              s := !s +. p)
            row;
          if abs_float (!s -. 1.0) > row_sum_tol then
            fail "switch row %d sums to %.12g, not 1" i !s
        end)
      t.switch;
    match !problem with None -> Ok () | Some m -> Error m
  end

let create_exn ~name ~regimes ~switch =
  let t = { name; regimes; switch } in
  match validate t with Ok () -> t | Error m -> invalid_arg ("Cdr_env.Env: " ^ m)

let identity =
  {
    name = "identity";
    regimes = [| regime "base" |];
    switch = [| [| 1.0 |] |];
  }

(* Per-regime effective configuration. The identity regime (scale 1,
   no overrides) must reproduce the base config's field values bitwise:
   [sigma_w *. 1.0 = sigma_w] exactly in IEEE arithmetic, and absent
   overrides keep the base pmf/record fields untouched — the identity
   composition test pins this. When only one of the drift parameters is
   overridden, the other defaults to the value recoverable from the base
   pmf (its mean, and its largest support radius). *)
let regime_config t base e =
  let g = t.regimes.(e) in
  let nr =
    match (g.drift_mean, g.drift_max) with
    | None, None -> base.Cdr.Config.nr
    | mean, max_s ->
        let mean_steps =
          match mean with Some v -> v | None -> Prob.Pmf.mean base.Cdr.Config.nr
        in
        let max_steps =
          match max_s with
          | Some v -> v
          | None ->
              max
                (abs (Prob.Pmf.min_support base.Cdr.Config.nr))
                (abs (Prob.Pmf.max_support base.Cdr.Config.nr))
        in
        Prob.Jitter.drift ~max_steps ~mean_steps ()
  in
  Cdr.Config.create_exn
    {
      base with
      Cdr.Config.sigma_w = base.Cdr.Config.sigma_w *. g.sigma_scale;
      nr;
      p01 = Option.value g.p01 ~default:base.Cdr.Config.p01;
      p10 = Option.value g.p10 ~default:base.Cdr.Config.p10;
    }

(* Stationary distribution of the switching chain itself, by GTH
   elimination — exact, subtraction-free, and immune to the slow mixing a
   power iteration would suffer on the nearly-uncoupled slow-switching
   environments the mixture limit cares about. Raises [Failure] when the
   environment is reducible (an absorbing regime). *)
let stationary t =
  let r = n_regimes t in
  if r = 1 then [| 1.0 |]
  else
    Markov.Gth.solve_dense
      (Linalg.Mat.init ~rows:r ~cols:r (fun i j -> t.switch.(i).(j)))

(* ---------- presets ---------- *)

let bursty ?(p_enter = 0.05) ?(p_exit = 0.25) ?(sigma_boost = 2.0) () =
  create_exn ~name:"bursty"
    ~regimes:
      [| regime "quiet"; regime ~sigma_scale:sigma_boost "burst" |]
    ~switch:[| [| 1.0 -. p_enter; p_enter |]; [| p_exit; 1.0 -. p_exit |] |]

let drift_cycle () =
  (* slow thermal ring: cool -> nominal -> hot -> nominal -> cool, with
     long dwell times; the hot phase also speeds the reference drift *)
  create_exn ~name:"drift-cycle"
    ~regimes:
      [|
        regime ~sigma_scale:0.9 "cool";
        regime "nominal";
        regime ~sigma_scale:1.15 ~drift_mean:0.1 "hot";
      |]
    ~switch:
      [|
        [| 0.995; 0.005; 0.0 |];
        [| 0.0025; 0.995; 0.0025 |];
        [| 0.0; 0.005; 0.995 |];
      |]

let crosstalk () =
  (* an aggressor lane toggling: active regime skews the transition
     densities and widens the eye jitter *)
  create_exn ~name:"crosstalk"
    ~regimes:
      [|
        regime "idle";
        regime ~sigma_scale:1.25 ~p01:0.45 ~p10:0.55 "aggressor";
      |]
    ~switch:[| [| 0.9; 0.1 |]; [| 0.3; 0.7 |] |]

let presets = [ ("bursty", bursty ()); ("drift-cycle", drift_cycle ()); ("crosstalk", crosstalk ()) ]

let find name = List.assoc_opt name presets

(* ---------- canonical JSON codec ----------

   The v2 service schema embeds an environment under ["env"]. [to_json] is
   canonical — fixed field order, optional regime fields omitted when
   absent — so [Protocol.cache_key] derived from the re-encoded params is
   identical for every spelling of the same environment, and
   [of_json (to_json t)] returns [t] structurally. *)

module J = Cdr_obs.Jsonl

let regime_to_json (g : regime) =
  let opt_num name v rest =
    match v with None -> rest | Some x -> (name, J.Num x) :: rest
  in
  let opt_int name v rest =
    match v with None -> rest | Some x -> (name, J.Num (float_of_int x)) :: rest
  in
  J.Obj
    (("name", J.Str g.name)
    :: ("sigma_scale", J.Num g.sigma_scale)
    :: opt_num "drift_mean" g.drift_mean
         (opt_int "drift_max" g.drift_max
            (opt_num "p01" g.p01 (opt_num "p10" g.p10 []))))

let to_json t =
  J.Obj
    [
      ("name", J.Str t.name);
      ("regimes", J.List (Array.to_list (Array.map regime_to_json t.regimes)));
      ( "switch",
        J.List
          (Array.to_list
             (Array.map
                (fun row -> J.List (Array.to_list (Array.map (fun p -> J.Num p) row)))
                t.switch)) );
    ]

let ( let* ) = Result.bind

let num_field name = function
  | J.Num v -> Ok v
  | _ -> Error (Printf.sprintf "env field %S must be a number" name)

let regime_of_json = function
  | J.Obj fields ->
      let* g =
        List.fold_left
          (fun acc (key, v) ->
            let* (g : regime) = acc in
            match key with
            | "name" -> (
                match v with
                | J.Str s -> Ok { g with name = s }
                | _ -> Error "regime field \"name\" must be a string")
            | "sigma_scale" ->
                let* x = num_field key v in
                Ok { g with sigma_scale = x }
            | "drift_mean" ->
                let* x = num_field key v in
                Ok { g with drift_mean = Some x }
            | "drift_max" ->
                let* x = num_field key v in
                Ok { g with drift_max = Some (int_of_float x) }
            | "p01" ->
                let* x = num_field key v in
                Ok { g with p01 = Some x }
            | "p10" ->
                let* x = num_field key v in
                Ok { g with p10 = Some x }
            | other -> Error (Printf.sprintf "unknown regime field %S" other))
          (Ok (regime "") : (regime, string) result)
          fields
      in
      if g.name = "" then Error "regime needs a non-empty \"name\"" else Ok g
  | _ -> Error "each regime must be an object"

let switch_of_json = function
  | J.List rows ->
      let* rows =
        List.fold_left
          (fun acc row ->
            let* rows = acc in
            match row with
            | J.List entries ->
                let* row =
                  List.fold_left
                    (fun acc v ->
                      let* row = acc in
                      let* x = num_field "switch" v in
                      Ok (x :: row))
                    (Ok []) entries
                in
                Ok (Array.of_list (List.rev row) :: rows)
            | _ -> Error "each switch row must be a list of numbers")
          (Ok []) rows
      in
      Ok (Array.of_list (List.rev rows))
  | _ -> Error "env field \"switch\" must be a list of rows"

let of_json = function
  | J.Obj fields ->
      let* name, regimes, switch =
        List.fold_left
          (fun acc (key, v) ->
            let* name, regimes, switch = acc in
            match key with
            | "name" -> (
                match v with
                | J.Str s -> Ok (Some s, regimes, switch)
                | _ -> Error "env field \"name\" must be a string")
            | "regimes" -> (
                match v with
                | J.List gs ->
                    let* gs =
                      List.fold_left
                        (fun acc g ->
                          let* gs = acc in
                          let* g = regime_of_json g in
                          Ok (g :: gs))
                        (Ok []) gs
                    in
                    Ok (name, Some (Array.of_list (List.rev gs)), switch)
                | _ -> Error "env field \"regimes\" must be a list")
            | "switch" ->
                let* s = switch_of_json v in
                Ok (name, regimes, Some s)
            | other -> Error (Printf.sprintf "unknown env field %S" other))
          (Ok (None, None, None))
          fields
      in
      let* name = Option.to_result ~none:"env needs a \"name\"" name in
      let* regimes = Option.to_result ~none:"env needs \"regimes\"" regimes in
      let* switch = Option.to_result ~none:"env needs a \"switch\" matrix" switch in
      let t = { name; regimes; switch } in
      let* () = validate t in
      Ok t
  | J.Str preset ->
      Option.to_result ~none:(Printf.sprintf "unknown environment preset %S" preset) (find preset)
  | _ -> Error "env must be an object or a preset name"

(* Compact structural fingerprint for model/structure keys: the regime
   count (the state-space multiplier) plus a hash of the canonical JSON.
   Collisions only blur batching affinity — the result cache keys on the
   full canonical encoding, never on this digest. *)
let key t = Printf.sprintf "env%dx%08x" (n_regimes t) (Hashtbl.hash (J.to_string (to_json t)))

let equal a b = to_json a = to_json b

let pp ppf t =
  Format.fprintf ppf "@[<v>environment %s: %d regimes@," t.name (n_regimes t);
  Array.iteri
    (fun i (g : regime) ->
      Format.fprintf ppf "  %-12s sigma x%.3g%s%s%s%s  switch [%s]@," g.name g.sigma_scale
        (match g.drift_mean with Some v -> Printf.sprintf ", drift mean %.3g" v | None -> "")
        (match g.drift_max with Some v -> Printf.sprintf ", drift max %d" v | None -> "")
        (match g.p01 with Some v -> Printf.sprintf ", p01 %.3g" v | None -> "")
        (match g.p10 with Some v -> Printf.sprintf ", p10 %.3g" v | None -> "")
        (String.concat "; "
           (Array.to_list (Array.map (Printf.sprintf "%.4g") t.switch.(i)))))
    t.regimes;
  Format.fprintf ppf "@]"

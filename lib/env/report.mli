(** One-call environment analysis: build the composed chain, solve it, and
    evaluate every functional — the env analogue of {!Cdr.Report}. *)

type t = {
  env : Env.t;
  backend : Cdr_op.kind;
  n_states : int;
  iterations : int;
  residual : float;
  converged : bool;
  build_seconds : float;
  solve_seconds : float;
  regime_probs : float array;
  regime_ber : float array; (* conditional BER per regime *)
  ber : float; (* regime-weighted composed BER *)
  slip_rate : float;
  mean_bits_between_slips : float;
  phase_density : Linalg.Vec.t; (* composed phase-error marginal *)
  regime_densities : Linalg.Vec.t array; (* conditional densities *)
}

val run :
  ?backend:Cdr_op.kind ->
  ?solver:Composed.solver ->
  ?ctx:Cdr.Context.t ->
  Env.t ->
  Cdr.Config.t ->
  Composed.t * t
(** Build (default [`Csr]) and solve (default [`Multigrid]) under the
    context's pool/trace/cache/tolerance, then aggregate. Returns the
    composed model too so callers can reuse it (warm solves, extra
    functionals). *)

val pp : Format.formatter -> t -> unit

(** The composed environment x CDR chain, env (x) CDR.

    Global state = (regime, data, counter, phase bin), regime slowest:
    [P((e,s) -> (e',s')) = S[e][e'] * P_e[s -> s']]. Built either as a
    materialized CSR chain (reachability BFS reusing
    {!Cdr.Model.iter_successors} per regime) or matrix-free as extra
    Kronecker factors: each regime's [D (x) C (x) G] term sum lifted by a
    leading R x R row-selector factor through {!Sparse.Kron_op.lift}, so
    the existing operator solvers run the composed chain unchanged.

    All functionals aggregate on the composed index — the regime-weighted
    BER is the exact stationary expectation [E[tail(config_E, Phi)]], which
    the naive per-regime {!mixture_ber} only approaches in the
    slow-switching limit. *)

type repr = Chain of Markov.Chain.t | Kron of Sparse.Kron_op.t

type t = {
  env : Env.t;
  base : Cdr.Config.t;
  configs : Cdr.Config.t array; (* per-regime effective configurations *)
  n_states : int;
  n_regimes : int;
  n_data : int;
  n_counter : int;
  m : int; (* phase grid points *)
  op : Cdr_op.t;
  repr : repr;
  regime_code : int -> int; (* composed index -> coordinates *)
  data_code : int -> int;
  counter_code : int -> int;
  phase_code : int -> int;
  build_seconds : float;
  mutable iad : Markov.Op_multigrid.setup option;
      (* memoized IAD solver state for the [`Kron] repr, as in
         {!Cdr.Kron_model}: prepared on the first multigrid solve, reused
         (or transplanted by the service engine) afterwards *)
}

val build : ?backend:Cdr_op.kind -> Env.t -> Cdr.Config.t -> t
(** Validates the environment and the base config, derives the per-regime
    configurations, and assembles the composed representation (default
    [`Csr]). The [`Csr] path composed with {!Env.identity} is bitwise equal
    to {!Cdr.Model.build_direct} on the base config; the [`Kron] path
    verifies row-stochasticity exactly via the factorized row sums. Runs in
    an ["env.build"] span and counts in ["env.builds"]. *)

val backend : t -> Cdr_op.kind

val n_states : t -> int

val operator : t -> Cdr_op.t

val hierarchy : t -> Markov.Partition.t list
(** {!Cdr.Model.hierarchy}'s strategy (halve phases, then the counter) on
    the composed space. Regimes and data are never lumped: the regime
    coordinate carries the modulation — aggregating it away is exactly the
    mixture approximation the composed model exists to avoid. *)

type solver = [ `Multigrid | `Power | `Gauss_seidel | `Jacobi ]

val solver_name : solver -> string

val solve : ?solver:solver -> ?ctx:Cdr.Context.t -> t -> Markov.Solution.t
(** Stationary distribution of the composed chain (default [`Multigrid]).
    The [`Csr] repr dispatches like {!Cdr.Model.solve} (including the
    context's {!Cdr.Solver_cache}); the [`Kron] repr dispatches like
    {!Cdr.Kron_model.solve} with the memoized IAD setup, and rejects
    [`Gauss_seidel] with [Invalid_argument] (no matrix-free sweep). Uses
    the context's tolerance, warm start (dropped on length mismatch),
    smoother, trace, pool and cancellation. *)

val regime_probs : t -> pi:Linalg.Vec.t -> float array
(** Stationary regime marginal [P(E = e)]. *)

val phase_marginal : t -> pi:Linalg.Vec.t -> Linalg.Vec.t
(** Stationary phase-error marginal over the composed law. *)

val regime_conditional_densities : t -> pi:Linalg.Vec.t -> Linalg.Vec.t array
(** Per regime, the conditional phase-error density
    [P(Phi = p | E = e)] (all-zero for a regime with no stationary mass). *)

val regime_ber : t -> pi:Linalg.Vec.t -> float array
(** Per regime, the BER of the conditional density under that regime's
    effective config — the tail weight uses the regime's own [sigma_w]. *)

val ber : t -> pi:Linalg.Vec.t -> float
(** Regime-weighted BER: [sum_e P(E = e) * regime_ber e], the exact
    composed stationary expectation. *)

val slip_rate : t -> pi:Linalg.Vec.t -> float
(** Stationary probability flux through boundary-wrapping phase
    transitions of the composed operator. *)

val mean_bits_between_slips : t -> pi:Linalg.Vec.t -> float

val mixture_ber :
  ?solver:[ `Multigrid | `Power | `Gauss_seidel ] ->
  ?ctx:Cdr.Context.t ->
  t ->
  float array * float
(** The naive approximation: each regime's CDR solved standalone
    ({!Cdr.Model.build} + {!Cdr.Ber.analyze}), BERs weighted by
    {!Env.stationary}. Returns [(per_regime_bers, weighted)]. Exact in the
    slow-switching limit; the bursty-jitter study measures its error under
    fast switching. *)

(* The composed environment x CDR chain.

   Global state = (regime e, data d, counter c, phase bin p), packed with
   the regime slowest: [(((e * n_data) + d) * n_counter + c) * m + p]. One
   step factorizes as

     P((e, d, c, p) -> (e', d', c', p')) = S[e][e'] * P_e[(d,c,p) -> ...]

   — the environment switches independently per bit, and during the bit
   interval the CDR evolves under the dwell regime's parameters. Two
   representations, mirroring {!Cdr.Model} / {!Cdr.Kron_model}:

   - [`Csr]: a reachability BFS over the composite space reusing
     {!Cdr.Model.iter_successors} per regime, assembled row-major exactly
     like [build_direct]. With the identity environment the packing, the
     discovery order and every emitted probability ([1.0 *. p = p])
     coincide with the base build's, so the composed chain is bitwise equal
     to it — the test suite pins this.
   - [`Kron]: each regime's matrix-free factorization
     (sum of D (x) C (x) G terms from {!Cdr.Kron_model}) lifted by a
     leading R x R row-selector factor Row_e(S) (row e of the switching
     matrix, other rows empty) via {!Sparse.Kron_op.lift}:

       P = sum_e Row_e(S) (x) [sum_t D (x) C (x) G]_e

     Row_e(S) reaches only global rows with leading index e, so the terms
     partition the row space by dwell regime; row sums are
     (sum_e' S[e][e']) * 1 = 1. The existing operator solvers
     ({!Markov.Power.solve_op}, {!Markov.Op_multigrid}) run unchanged.

   All analyses (regime marginals, conditional densities, BER, slip flux)
   aggregate over the COMPOSED index — never by collapsing regimes first —
   because the quantities of interest are expectations over the joint
   stationary law: the regime-conditional phase density and the per-regime
   tail weight are coupled, and a naive per-regime mixture is exactly the
   approximation the bursty-jitter study quantifies the error of. *)

type repr = Chain of Markov.Chain.t | Kron of Sparse.Kron_op.t

type t = {
  env : Env.t;
  base : Cdr.Config.t;
  configs : Cdr.Config.t array;
  n_states : int;
  n_regimes : int;
  n_data : int;
  n_counter : int;
  m : int;
  op : Cdr_op.t;
  repr : repr;
  regime_code : int -> int;
  data_code : int -> int;
  counter_code : int -> int;
  phase_code : int -> int;
  build_seconds : float;
  mutable iad : Markov.Op_multigrid.setup option;
}

let backend t = match t.repr with Chain _ -> `Csr | Kron _ -> `Kron

let n_states t = t.n_states

let operator t = t.op

let build_csr env base configs =
  let r = Array.length configs in
  let tables = Array.map Cdr.Model.direct_tables configs in
  let m = base.Cdr.Config.grid_points in
  let n_data = Cdr.Data_source.n_states base in
  let n_counter = Cdr.Counter.n_states base in
  let key_space = r * n_data * n_counter * m in
  let pack ~e ~data ~counter ~phase =
    ((((((e * n_data) + data) * n_counter) + counter) * m) + phase : int)
  in
  let state_of_key = Array.make key_space (-1) in
  let order = Array.make key_space 0 in
  let count = ref 0 in
  let register key =
    if state_of_key.(key) < 0 then begin
      state_of_key.(key) <- !count;
      order.(!count) <- key;
      incr count
    end
  in
  let d0, c0, p0 = Cdr.Model.initial_state base in
  register (pack ~e:0 ~data:d0 ~counter:c0 ~phase:p0);
  let processed = ref 0 in
  while !processed < !count do
    let key = order.(!processed) in
    incr processed;
    let e = key / (n_data * n_counter * m) in
    let row = env.Env.switch.(e) in
    Cdr.Model.iter_successors configs.(e) tables.(e)
      ~data:(key / (n_counter * m) mod n_data)
      ~counter:(key / m mod n_counter) ~phase:(key mod m)
      (fun (d', c', phase') _p ->
        for e' = 0 to r - 1 do
          if row.(e') > 0.0 then register (pack ~e:e' ~data:d' ~counter:c' ~phase:phase')
        done)
  done;
  let n = !count in
  let emit_row i emit =
    let key = order.(i) in
    let e = key / (n_data * n_counter * m) in
    let row = env.Env.switch.(e) in
    Cdr.Model.iter_successors configs.(e) tables.(e)
      ~data:(key / (n_counter * m) mod n_data)
      ~counter:(key / m mod n_counter) ~phase:(key mod m)
      (fun (d', c', phase') p ->
        for e' = 0 to r - 1 do
          let s = row.(e') in
          if s > 0.0 then
            emit state_of_key.(pack ~e:e' ~data:d' ~counter:c' ~phase:phase') (s *. p)
        done)
  in
  let csr = Sparse.Csr.assemble ~rows:n ~cols:n emit_row in
  let chain = Markov.Chain.of_csr ~tol:1e-9 csr in
  ( n,
    Chain chain,
    Cdr_op.Csr_backend.create (Markov.Chain.tpm chain),
    (fun i -> order.(i) / (n_data * n_counter * m)),
    (fun i -> order.(i) / (n_counter * m) mod n_data),
    (fun i -> order.(i) / m mod n_counter),
    fun i -> order.(i) mod m )

let build_kron env base configs =
  let r = Array.length configs in
  let m = base.Cdr.Config.grid_points in
  let n_data = Cdr.Data_source.n_states base in
  let n_counter = Cdr.Counter.n_states base in
  let row_selector e =
    let coo = Sparse.Coo.create ~rows:r ~cols:r in
    Array.iteri
      (fun e' s -> if s > 0.0 then Sparse.Coo.add coo ~row:e ~col:e' s)
      env.Env.switch.(e);
    Sparse.Coo.to_csr coo
  in
  let kron =
    Sparse.Kron_op.sum
      (List.init r (fun e ->
           Sparse.Kron_op.lift (row_selector e)
             (Cdr.Kron_model.build configs.(e)).Cdr.Kron_model.kron))
  in
  let op = Cdr_op.Kron_backend.create ~label:("env:" ^ env.Env.name) kron in
  (match Cdr_op.check_stochastic ~tol:1e-9 op with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cdr_env.Composed: composed operator is not stochastic: " ^ msg));
  let n = r * n_data * n_counter * m in
  ( n,
    Kron kron,
    op,
    (fun i -> i / (n_data * n_counter * m)),
    (fun i -> i / (n_counter * m) mod n_data),
    (fun i -> i / m mod n_counter),
    fun i -> i mod m )

let build ?(backend = `Csr) env base =
  let base = Cdr.Config.create_exn base in
  (match Env.validate env with
  | Ok () -> ()
  | Error m -> invalid_arg ("Cdr_env.Composed.build: " ^ m));
  let r = Env.n_regimes env in
  let configs = Array.init r (Env.regime_config env base) in
  let via = Cdr_op.kind_string backend in
  let built, build_seconds =
    Cdr_obs.Span.timed ~name:"env.build"
      ~attrs:[ ("via", via); ("regimes", string_of_int r) ]
    @@ fun () ->
    let n_states, repr, op, regime_code, data_code, counter_code, phase_code =
      match backend with
      | `Csr -> build_csr env base configs
      | `Kron -> build_kron env base configs
    in
    {
      env;
      base;
      configs;
      n_states;
      n_regimes = r;
      n_data = Cdr.Data_source.n_states base;
      n_counter = Cdr.Counter.n_states base;
      m = base.Cdr.Config.grid_points;
      op;
      repr;
      regime_code;
      data_code;
      counter_code;
      phase_code;
      build_seconds = 0.0;
      iad = None;
    }
  in
  Cdr_obs.Metrics.incr "env.builds" ~labels:[ ("via", via) ];
  { built with build_seconds }

(* {!Cdr.Model.hierarchy}'s coarsening strategy — halve the phase grid,
   then the counter — on the composed space. The regime and data
   coordinates are never lumped: regimes carry the modulation (collapsing
   them is exactly the mixture approximation), and the data dimension is
   small. On the Kron repr every tuple exists so the maps are pure
   arithmetic with leading dimension R * n_data. *)
let hierarchy t =
  match t.repr with
  | Kron _ ->
      let lead = t.n_regimes * t.n_data in
      let rec go ~n_counter ~m acc =
        let n = lead * n_counter * m in
        if n <= Markov.Gth.max_direct_size || (m <= 1 && n_counter <= 1) then List.rev acc
        else if m > 1 then begin
          let mc = (m + 1) / 2 in
          let map =
            Array.init n (fun i ->
                let p = i mod m and dc = i / m in
                (dc * mc) + (p / 2))
          in
          go ~n_counter ~m:mc (Markov.Partition.create map :: acc)
        end
        else begin
          let cc = (n_counter + 1) / 2 in
          let map =
            Array.init n (fun i ->
                let p = i mod m in
                let c = i / m mod n_counter in
                let d = i / (m * n_counter) in
                (((d * cc) + (c / 2)) * m) + p)
          in
          go ~n_counter:cc ~m (Markov.Partition.create map :: acc)
        end
      in
      go ~n_counter:t.n_counter ~m:t.m []
  | Chain _ ->
      let keys =
        Array.init t.n_states (fun i ->
            (t.regime_code i, t.data_code i, t.counter_code i, t.phase_code i))
      in
      let rec go keys acc =
        let n = Array.length keys in
        let max_phase = Array.fold_left (fun acc (_, _, _, p) -> max acc p) 0 keys in
        let max_counter = Array.fold_left (fun acc (_, _, c, _) -> max acc c) 0 keys in
        if n <= Markov.Gth.max_direct_size || (max_phase < 1 && max_counter < 1) then
          List.rev acc
        else begin
          let coarse_key =
            if max_phase >= 1 then fun (e, d, c, p) -> (e, d, c, p / 2)
            else fun (e, d, c, p) -> (e, d, c / 2, p)
          in
          let table = Hashtbl.create (2 * n) in
          let coarse_keys = ref [] in
          let next = ref 0 in
          let map =
            Array.map
              (fun key0 ->
                let key = coarse_key key0 in
                match Hashtbl.find_opt table key with
                | Some b -> b
                | None ->
                    let b = !next in
                    Hashtbl.add table key b;
                    coarse_keys := key :: !coarse_keys;
                    incr next;
                    b)
              keys
          in
          let partition = Markov.Partition.create map in
          go (Array.of_list (List.rev !coarse_keys)) (partition :: acc)
        end
      in
      go keys []

type solver = [ `Multigrid | `Power | `Gauss_seidel | `Jacobi ]

let solver_name = function
  | `Multigrid -> "multigrid"
  | `Power -> "power"
  | `Gauss_seidel -> "gauss-seidel"
  | `Jacobi -> "jacobi"

let solve ?(solver = `Multigrid) ?(ctx = Cdr.Context.default) t =
  let { Cdr.Context.tol; cache; trace; pool; smoother; cancel; _ } = ctx in
  let init =
    match ctx.Cdr.Context.init with
    | Some v when Array.length v = t.n_states -> Some v
    | Some _ | None -> None
  in
  let via = Cdr_op.kind_string (backend t) in
  Cdr_obs.Span.with_ ~name:"env.solve"
    ~attrs:[ ("solver", solver_name solver); ("backend", via) ]
  @@ fun () ->
  Cdr_obs.Metrics.incr "env.solves" ~labels:[ ("solver", solver_name solver); ("backend", via) ];
  match t.repr with
  | Chain chain -> (
      match solver with
      | `Multigrid ->
          let solution, _stats =
            match cache with
            | Some cache ->
                let s =
                  Cdr.Solver_cache.setup cache ~smoother ~hierarchy:(fun () -> hierarchy t) chain
                in
                Markov.Multigrid.solve_with ~tol ?init ?trace ?pool ?cancel s chain
            | None ->
                Markov.Multigrid.solve ~tol ?init ?trace ?pool ?cancel ~smoother
                  ~hierarchy:(hierarchy t) chain
          in
          solution
      | `Power -> Markov.Power.solve ~tol ?init ?trace ?pool chain
      | `Gauss_seidel ->
          Markov.Splitting.solve ~method_:Markov.Splitting.Gauss_seidel ~tol ?init ?trace ?pool
            chain
      | `Jacobi ->
          Markov.Splitting.solve ~method_:Markov.Splitting.Jacobi ~tol ?init ?trace ?pool chain)
  | Kron _ -> (
      match solver with
      | `Power -> Markov.Power.solve_op ~tol ?init ?trace ?pool t.op
      | `Jacobi -> Markov.Splitting.solve_op ~tol ?init ?trace ?pool t.op
      | `Gauss_seidel ->
          invalid_arg "Cdr_env.Composed.solve: no matrix-free Gauss-Seidel sweep"
      | `Multigrid -> (
          match hierarchy t with
          | [] -> Markov.Power.solve_op ~tol ?init ?trace ?pool t.op
          | partition :: coarse_hierarchy ->
              let setup =
                match t.iad with
                | Some s when Markov.Op_multigrid.matches s t.op -> s
                | _ ->
                    let s = Markov.Op_multigrid.prepare ~coarse_hierarchy ~partition t.op in
                    t.iad <- Some s;
                    s
              in
              let solution, _stats =
                Markov.Op_multigrid.solve_with ~tol ?init ?trace ?pool ?cancel setup t.op
              in
              solution))

(* ---------- functionals of the composed stationary vector ----------

   Everything below aggregates on the composed index (e, p): conditional
   densities and regime weights come from the same joint law, so the
   regime-weighted BER is the exact stationary expectation
   E[tail(config_E, Phi)] — not the per-regime mixture. *)

let check_pi t pi ~fn =
  if Array.length pi <> t.n_states then
    invalid_arg (Printf.sprintf "Cdr_env.Composed.%s: dimension mismatch" fn)

let regime_probs t ~pi =
  check_pi t pi ~fn:"regime_probs";
  Markov.Stat.marginal ~pi ~label:t.regime_code ~n_labels:t.n_regimes

let phase_marginal t ~pi =
  check_pi t pi ~fn:"phase_marginal";
  Markov.Stat.marginal ~pi ~label:t.phase_code ~n_labels:t.m

(* joint (regime, phase) mass, the ingredient of both conditionals *)
let joint_regime_phase t ~pi =
  let joint = Array.make_matrix t.n_regimes t.m 0.0 in
  Array.iteri
    (fun i mass ->
      let row = joint.(t.regime_code i) in
      let p = t.phase_code i in
      row.(p) <- row.(p) +. mass)
    pi;
  joint

let regime_conditional_densities t ~pi =
  check_pi t pi ~fn:"regime_conditional_densities";
  let joint = joint_regime_phase t ~pi in
  Array.map
    (fun row ->
      let mass = Array.fold_left ( +. ) 0.0 row in
      if mass > 0.0 then Array.map (fun v -> v /. mass) row else Array.copy row)
    joint

let regime_ber t ~pi =
  let conditionals = regime_conditional_densities t ~pi in
  Array.mapi (fun e rho -> Cdr.Ber.of_marginal t.configs.(e) ~rho) conditionals

let ber t ~pi =
  check_pi t pi ~fn:"ber";
  let probs = regime_probs t ~pi in
  let bers = regime_ber t ~pi in
  let acc = ref 0.0 in
  Array.iteri (fun e w -> if w > 0.0 then acc := !acc +. (w *. bers.(e))) probs;
  !acc

let slip_rate t ~pi =
  check_pi t pi ~fn:"slip_rate";
  let cfg = t.base in
  let acc = ref 0.0 in
  Cdr_op.iter_entries t.op (fun i j v ->
      if Cdr.Phase_error.crosses_boundary cfg ~src:(t.phase_code i) ~dst:(t.phase_code j) then
        acc := !acc +. (pi.(i) *. v));
  !acc

let mean_bits_between_slips t ~pi =
  let r = slip_rate t ~pi in
  if r <= 0.0 then Float.infinity else 1.0 /. r

(* The naive approximation the composed model exists to improve on: solve
   each regime's CDR standalone and weight the BERs by the environment's
   stationary law. Exact in the slow-switching limit (the chain equilibrates
   within each dwell); the bursty-jitter study measures its error under
   fast switching. *)
let mixture_ber ?solver ?ctx t =
  let weights = Env.stationary t.env in
  let bers =
    Array.map
      (fun cfg ->
        let model = Cdr.Model.build cfg in
        let result, _ = Cdr.Ber.analyze ?solver ?ctx model in
        result.Cdr.Ber.ber)
      t.configs
  in
  let acc = ref 0.0 in
  Array.iteri (fun e w -> acc := !acc +. (w *. bers.(e))) weights;
  (bers, !acc)

type term = { coeff : float; factors : Csr.t array; dims : int array }

type t = { n : int; terms : term list }

let term ?(coeff = 1.0) factors =
  if factors = [] then invalid_arg "Kron_op.term: empty factor list";
  List.iter
    (fun f -> if Csr.rows f <> Csr.cols f then invalid_arg "Kron_op.term: factors must be square")
    factors;
  let factors = Array.of_list factors in
  let dims = Array.map Csr.rows factors in
  let n = Array.fold_left ( * ) 1 dims in
  { n; terms = [ { coeff; factors; dims } ] }

(* Flat concatenation of the term lists: O(total terms), unlike the former
   per-operand [acc.terms @ op.terms] left fold that re-walked the growing
   accumulator for every operand. *)
let sum = function
  | [] -> invalid_arg "Kron_op.sum: empty list"
  | first :: _ as ops ->
      List.iter
        (fun op -> if op.n <> first.n then invalid_arg "Kron_op.sum: dimension mismatch")
        ops;
      { n = first.n; terms = List.concat_map (fun op -> op.terms) ops }

(* A (x) (sum_t c_t T_t) = sum_t c_t (A (x) T_t): prepending a leading
   factor distributes over the term list, so lifting an operator into a
   larger product space is O(terms) and shares every factor with the
   original. This is how an environment chain wraps a per-regime CDR
   operator without rebuilding its factors. *)
let lift a op =
  if Csr.rows a <> Csr.cols a then invalid_arg "Kron_op.lift: leading factor must be square";
  let r = Csr.rows a in
  if r = 0 then invalid_arg "Kron_op.lift: empty leading factor";
  {
    n = r * op.n;
    terms =
      List.map
        (fun t ->
          {
            t with
            factors = Array.append [| a |] t.factors;
            dims = Array.append [| r |] t.dims;
          })
        op.terms;
  }

let dim op = op.n

let n_terms op = List.length op.terms

let nnz_bound op =
  List.fold_left
    (fun acc t -> acc + Array.fold_left (fun p f -> p * Csr.nnz f) 1 t.factors)
    0 op.terms

(* Fixed slot grid for one middle contraction, a function of the operand
   shapes only (never of the pool's job count) — the same discipline as
   [Csr.par_slot_count], so pooled and serial runs execute the identical
   slot schedule. Small contractions stay serial; otherwise parallelize the
   outer [l] blocks (disjoint contiguous output segments), falling back to
   chunks of the trailing [r] dimension when the term has no left blocks. *)
let middle_slots ~l ~r a =
  let work = l * r * Csr.nnz a in
  if work < 16384 then 1
  else if l >= 2 then min 16 l
  else min 16 (max 1 (r / 64))

(* x * (I_l (x) A (x) I_r): view x as an (l, n, r) tensor and contract the
   middle index against A's rows. [y] is fully overwritten. Every output
   element accumulates its contributions in the same (row, entry) order on
   every slot layout, so results are bit-identical across job counts. *)
let apply_middle ?pool ~l ~r a x y =
  let n = Csr.rows a in
  (* profiler phase per contraction, so an enabled profiler attributes
     kron-backend time the same way V-cycle legs are attributed; the label
     list is only built when profiling is on (the gate is one atomic load) *)
  let run () =
  Array.fill y 0 (Array.length y) 0.0;
  let slots = middle_slots ~l ~r a in
  if slots = 1 then
    for i = 0 to n - 1 do
      Csr.iter_row a i (fun j v ->
          for blk = 0 to l - 1 do
            let x_base = ((blk * n) + i) * r in
            let y_base = ((blk * n) + j) * r in
            for c = 0 to r - 1 do
              y.(y_base + c) <- y.(y_base + c) +. (x.(x_base + c) *. v)
            done
          done)
    done
  else if l >= 2 then
    (* Slot [s] owns the contiguous block range [blk_lo, blk_hi): its writes
       land in y[blk_lo*n*r .. blk_hi*n*r), disjoint from every other slot. *)
    Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
        let blk_lo = l * s / slots and blk_hi = l * (s + 1) / slots in
        for i = 0 to n - 1 do
          Csr.iter_row a i (fun j v ->
              for blk = blk_lo to blk_hi - 1 do
                let x_base = ((blk * n) + i) * r in
                let y_base = ((blk * n) + j) * r in
                for c = 0 to r - 1 do
                  y.(y_base + c) <- y.(y_base + c) +. (x.(x_base + c) *. v)
                done
              done)
        done)
  else
    (* l = 1: chunk the trailing dimension. Slot [s] owns columns
       [c_lo, c_hi) of every row block — still element-disjoint. *)
    Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
        let c_lo = r * s / slots and c_hi = r * (s + 1) / slots in
        for i = 0 to n - 1 do
          Csr.iter_row a i (fun j v ->
              let x_base = i * r in
              let y_base = j * r in
              for c = c_lo to c_hi - 1 do
                y.(y_base + c) <- y.(y_base + c) +. (x.(x_base + c) *. v)
              done)
        done)
  in
  if not (Cdr_par.Pool.profiling_on ()) then run ()
  else
    Cdr_par.Pool.with_phase "kron-middle"
      ~labels:
        [ ("factor", string_of_int n); ("l", string_of_int l); ("r", string_of_int r) ]
      run

(* Reusable ping-pong buffers for the factor sweep: one [apply_into] needs
   exactly two length-n scratch vectors regardless of the number of factors
   or terms, so callers allocate once per solve, not once per iteration. *)
type workspace = { buf_a : Linalg.Vec.t; buf_b : Linalg.Vec.t }

let workspace op = { buf_a = Array.make op.n 0.0; buf_b = Array.make op.n 0.0 }

(* Applies one term's factor chain, returning whichever workspace buffer
   holds x * (A_1 (x) ... (x) A_k). The coefficient is NOT applied here —
   the caller fuses it into its accumulation pass. *)
let apply_term_into ?pool t ~ws x =
  let total = Array.fold_left ( * ) 1 t.dims in
  Array.blit x 0 ws.buf_a 0 total;
  let cur = ref ws.buf_a and scratch = ref ws.buf_b in
  let left = ref 1 and right = ref total in
  Array.iter
    (fun a ->
      let n = Csr.rows a in
      right := !right / n;
      apply_middle ?pool ~l:!left ~r:!right a !cur !scratch;
      let tmp = !cur in
      cur := !scratch;
      scratch := tmp;
      left := !left * n)
    t.factors;
  !cur

let apply_into ?pool op ~ws x y =
  if Array.length x <> op.n then invalid_arg "Kron_op.apply_into: dimension mismatch";
  if Array.length y <> op.n then invalid_arg "Kron_op.apply_into: output dimension mismatch";
  if Array.length ws.buf_a <> op.n then invalid_arg "Kron_op.apply_into: workspace dimension";
  Array.fill y 0 op.n 0.0;
  List.iter
    (fun t ->
      let res = apply_term_into ?pool t ~ws x in
      let c = t.coeff in
      if c = 1.0 then
        for idx = 0 to op.n - 1 do
          y.(idx) <- y.(idx) +. res.(idx)
        done
      else
        for idx = 0 to op.n - 1 do
          y.(idx) <- y.(idx) +. (c *. res.(idx))
        done)
    op.terms

let apply ?pool op x =
  if op.terms = [] then invalid_arg "Kron_op.apply: empty operator";
  let ws = workspace op in
  let y = Array.make op.n 0.0 in
  apply_into ?pool op ~ws x y;
  y

(* Row sums without an apply: the row sum of coeff * A_1 (x) ... (x) A_k at
   the mixed-radix row (i_1, .., i_k) is coeff * prod_f rowsum_f(i_f), so we
   expand the per-factor row-sum vectors as a rank-1 tensor, term by term. *)
let row_sums op =
  let out = Array.make op.n 0.0 in
  List.iter
    (fun t ->
      let acc = ref [| t.coeff |] in
      Array.iter
        (fun a ->
          let rs = Csr.row_sums a in
          let m = Array.length rs in
          let prev = !acc in
          let np = Array.length prev in
          let next = Array.make (np * m) 0.0 in
          for b = 0 to np - 1 do
            let base = b * m in
            let pv = prev.(b) in
            for i = 0 to m - 1 do
              next.(base + i) <- pv *. rs.(i)
            done
          done;
          acc := next)
        t.factors;
      let tv = !acc in
      for i = 0 to op.n - 1 do
        out.(i) <- out.(i) +. tv.(i)
      done)
    op.terms;
  out

let diag op =
  let out = Array.make op.n 0.0 in
  List.iter
    (fun t ->
      let k = Array.length t.dims in
      let idx = Array.make k 0 in
      for i = 0 to op.n - 1 do
        let rem = ref i in
        for f = k - 1 downto 0 do
          idx.(f) <- !rem mod t.dims.(f);
          rem := !rem / t.dims.(f)
        done;
        let p = ref t.coeff in
        (try
           for f = 0 to k - 1 do
             let v = Csr.get t.factors.(f) idx.(f) idx.(f) in
             if v = 0.0 then raise_notrace Exit;
             p := !p *. v
           done;
           out.(i) <- out.(i) +. !p
         with Exit -> ())
      done)
    op.terms;
  out

(* Entries of one global row, term by term; within a term, the lexicographic
   cross product of the factor-row entries. Duplicate columns (across terms,
   or from coinciding factor products) are emitted separately — consumers
   like [Csr.assemble] sum them in emission order. *)
let iter_row op i emit =
  List.iter
    (fun t ->
      let k = Array.length t.dims in
      let idx = Array.make k 0 in
      let rem = ref i in
      for f = k - 1 downto 0 do
        idx.(f) <- !rem mod t.dims.(f);
        rem := !rem / t.dims.(f)
      done;
      let rec go f col acc =
        if f = k then emit col acc
        else
          Csr.iter_row t.factors.(f) idx.(f) (fun j v ->
              go (f + 1) ((col * t.dims.(f)) + j) (acc *. v))
      in
      go 0 0 t.coeff)
    op.terms

let iter_entries op emit =
  for i = 0 to op.n - 1 do
    iter_row op i (fun j v -> emit i j v)
  done

let to_csr op =
  let materialize_term t =
    let k = Kron.product_list (Array.to_list t.factors) in
    Csr.map (fun v -> t.coeff *. v) k
  in
  match op.terms with
  | [] -> invalid_arg "Kron_op.to_csr: empty operator"
  | first :: rest ->
      List.fold_left (fun acc t -> Csr.add acc (materialize_term t)) (materialize_term first) rest

let stationary ?pool ?(tol = 1e-12) ?(max_iter = 100_000) op =
  let n = dim op in
  if n = 0 then Error "empty operator"
  else begin
    (* Exact row-sum check via the per-factor row-sum tensor: unlike a probe
       application this verifies stochasticity row by row, matrix-free. *)
    let rs = row_sums op in
    let max_dev = ref 0.0 in
    Array.iter
      (fun s ->
        let d = abs_float (s -. 1.0) in
        if d > !max_dev then max_dev := d)
      rs;
    if !max_dev > 1e-6 then Error "operator is not row-stochastic (row sums deviate from 1)"
    else begin
      let ws = workspace op in
      let x = ref (Array.make n (1.0 /. float_of_int n)) in
      let y = ref (Array.make n 0.0) in
      let neg = ref false in
      apply_into ?pool op ~ws !x !y;
      Array.iter (fun v -> if v < -1e-12 then neg := true) !y;
      if !neg then Error "operator has negative entries"
      else begin
        let iterations = ref 0 in
        let residual = ref Float.infinity in
        while !residual > tol && !iterations < max_iter do
          apply_into ?pool op ~ws !x !y;
          Linalg.Vec.normalize_l1 !y;
          residual := Linalg.Vec.dist_l1 !y !x;
          let tmp = !x in
          x := !y;
          y := tmp;
          incr iterations
        done;
        Ok (!x, !iterations, !residual)
      end
    end
  end

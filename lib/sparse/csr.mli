(** Immutable compressed-sparse-row matrices.

    The workhorse representation for Markov-chain transition probability
    matrices: row-major storage matches both the compositional construction
    (one reachable state at a time) and the [x -> x*P] products dominating the
    stationary solvers. *)

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

val unsafe_make :
  rows:int -> cols:int -> row_ptr:int array -> col_idx:int array -> values:float array -> t
(** Validates the structural invariants (monotone [row_ptr], in-range sorted
    column indices) and raises [Invalid_argument] when violated. *)

val of_dense : ?drop_tol:float -> Linalg.Mat.t -> t

val to_dense : t -> Linalg.Mat.t

val identity : int -> t

val rows : t -> int

val cols : t -> int

val nnz : t -> int

val get : t -> int -> int -> float
(** Binary search within the row; absent entries read as [0.]. *)

val row_index : t -> int -> int -> int
(** Position of entry [(i, j)] in the value array, or [-1] when the pattern
    has no such entry. The in-place refill primitive behind
    [Cdr.Model.rebuild]'s flat row-refill path. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit

val iter : t -> (int -> int -> float -> unit) -> unit

val fold : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a

val mul_vec : ?pool:Cdr_par.Pool.t -> t -> Linalg.Vec.t -> Linalg.Vec.t
(** [mul_vec a x = a * x]. With [?pool], rows are computed in parallel over a
    fixed row partition; every output element is an independent dot product,
    so the result is bit-identical to the serial one for any job count. *)

val vec_mul : ?pool:Cdr_par.Pool.t -> Linalg.Vec.t -> t -> Linalg.Vec.t
(** [vec_mul x a = x * a] (row vector times matrix); the kernel of power
    iteration on a row-stochastic matrix. *)

val vec_mul_into : ?pool:Cdr_par.Pool.t -> Linalg.Vec.t -> t -> Linalg.Vec.t -> unit
(** [vec_mul_into x a y] stores [x * a] into [y]; without [?pool] it does not
    allocate. With [?pool], row slots scatter into per-slot partial outputs
    merged by a fixed-shape tree reduction: deterministic across job counts
    (pooled jobs=1 and jobs=N agree bitwise), though the float-summation
    grouping differs from the serial path's by design — see DESIGN.md. *)

val same_pattern : t -> t -> bool
(** Same dimensions and the same sparsity structure ([row_ptr] and [col_idx]
    equal). Physically shared structure arrays (see {!refill}) short-circuit
    to [true] without an element-wise compare. *)

val refill : t -> float array -> t
(** [refill m values] is the matrix with [m]'s sparsity pattern and the given
    stored values: the symbolic work of a fresh construction (sorting,
    merging, index validation) is skipped entirely, and [row_ptr]/[col_idx]
    are physically shared with [m] — so [same_pattern m (refill m v)] is an
    O(1) check and pattern-keyed solver setups (see [Markov.Multigrid.setup])
    can be reused across refills. The array is owned by the result; raises
    [Invalid_argument] on a length mismatch or a non-finite value. *)

val assemble :
  ?pool:Cdr_par.Pool.t -> rows:int -> cols:int -> (int -> (int -> float -> unit) -> unit) -> t
(** [assemble ~rows ~cols row] builds a matrix from a per-row enumerator:
    [row i emit] must call [emit j v] once per (not necessarily distinct)
    entry of row [i]. Assembly is two symbolic passes plus a value pass —
    count distinct columns per row, fill and sort [col_idx], then accumulate
    values directly into the final array. Duplicate columns are summed {e in
    emission order}, exactly as a per-row accumulator would, and no
    intermediate COO/hashtable/list storage exists at any point.

    With [?pool] the value pass runs rows in parallel: rows write disjoint
    segments and each entry's duplicates still sum in emission order, so the
    result is bit-identical for every job count (and to the serial path).
    [row] is then called concurrently from several domains for distinct [i]
    and must be safe under that (pure lookups into immutable tables are).
    The enumerator is invoked exactly three times per row. *)

val transpose : t -> t

val map : (float -> float) -> t -> t
(** Structure-preserving map over stored values. *)

val scale_rows : t -> Linalg.Vec.t -> t
(** [scale_rows a d] multiplies row [i] by [d.(i)]. *)

val row_sums : t -> Linalg.Vec.t

val add : t -> t -> t

val equal : ?tol:float -> t -> t -> bool

val pp_stats : Format.formatter -> t -> unit
(** One-line [rows x cols, nnz, fill, bandwidth] summary. *)

(** A cache-friendly mirror of a matrix's numeric payload: int32 column
    indices and float64 values in Bigarray storage, with [row_ptr] shared
    physically with the source. The kernels mirror {!mul_vec} /
    {!vec_mul_into} loop for loop — same fixed slot grids, same accumulation
    order — so packed products are {e bitwise interchangeable} with the
    float-array reference path (which stays pinned above). The win is memory
    traffic (4-byte instead of 8-byte column indices) and bounds-check-free
    inner loops; long-lived operators pack once and [fill] on refill. *)
module Packed : sig
  type matrix = t

  type t

  val pack : matrix -> t
  (** Copies the source's column indices and values; raises
      [Invalid_argument] beyond int32 column range. *)

  val fill : t -> float array -> unit
  (** Overwrite the packed values in place (the refill counterpart). *)

  val rows : t -> int

  val cols : t -> int

  val nnz : t -> int

  val mul_vec : ?pool:Cdr_par.Pool.t -> t -> float array -> float array

  val vec_mul_into : ?pool:Cdr_par.Pool.t -> float array -> t -> float array -> unit
end

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let validate m =
  let { rows; cols; row_ptr; col_idx; values } = m in
  if rows < 0 || cols < 0 then invalid_arg "Csr: negative dimension";
  if Array.length row_ptr <> rows + 1 then invalid_arg "Csr: row_ptr length";
  if Array.length col_idx <> Array.length values then invalid_arg "Csr: col/values length mismatch";
  if row_ptr.(0) <> 0 || row_ptr.(rows) <> Array.length values then invalid_arg "Csr: row_ptr endpoints";
  for i = 0 to rows - 1 do
    if row_ptr.(i) > row_ptr.(i + 1) then invalid_arg "Csr: row_ptr not monotone";
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      if col_idx.(k) < 0 || col_idx.(k) >= cols then invalid_arg "Csr: column index out of range";
      if k > row_ptr.(i) && col_idx.(k - 1) >= col_idx.(k) then
        invalid_arg "Csr: columns not strictly increasing within a row"
    done
  done

let unsafe_make ~rows ~cols ~row_ptr ~col_idx ~values =
  let m = { rows; cols; row_ptr; col_idx; values } in
  validate m;
  m

let rows m = m.rows
let cols m = m.cols
let nnz m = Array.length m.values

let of_dense ?(drop_tol = 0.0) a =
  let rows = Linalg.Mat.rows a and cols = Linalg.Mat.cols a in
  let row_ptr = Array.make (rows + 1) 0 in
  let count = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if abs_float (Linalg.Mat.get a i j) > drop_tol then incr count
    done;
    row_ptr.(i + 1) <- !count
  done;
  let col_idx = Array.make !count 0 and values = Array.make !count 0.0 in
  let k = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = Linalg.Mat.get a i j in
      if abs_float v > drop_tol then begin
        col_idx.(!k) <- j;
        values.(!k) <- v;
        incr k
      end
    done
  done;
  unsafe_make ~rows ~cols ~row_ptr ~col_idx ~values

let to_dense m =
  let d = Linalg.Mat.create ~rows:m.rows ~cols:m.cols in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Linalg.Mat.set d i m.col_idx.(k) m.values.(k)
    done
  done;
  d

let identity n =
  unsafe_make ~rows:n ~cols:n
    ~row_ptr:(Array.init (n + 1) Fun.id)
    ~col_idx:(Array.init n Fun.id)
    ~values:(Array.make n 1.0)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Csr.get: out of bounds";
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let row_index m i j =
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      result := mid;
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let iter m f =
  for i = 0 to m.rows - 1 do
    iter_row m i (fun j v -> f i j v)
  done

let fold m ~init ~f =
  let acc = ref init in
  iter m (fun i j v -> acc := f !acc i j v);
  !acc

(* Fixed slot grid for the parallel kernels. The slot count (and with it
   every chunk boundary and partial-merge grouping) depends only on the
   matrix, never on the pool's job count, so pooled results are bit-identical
   at jobs=1 and jobs=N. Small matrices collapse to one slot: the overhead of
   a batch exceeds the work. *)
let par_slot_count m =
  if nnz m < 1 lsl 14 then 1 else min 16 (max 1 (m.rows / 64))

let dot_row m x i =
  let acc = ref 0.0 in
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
  done;
  !acc

let mul_vec ?pool m x =
  if Array.length x <> m.cols then invalid_arg "Csr.mul_vec: dimension mismatch";
  let slots = match pool with None -> 1 | Some _ -> par_slot_count m in
  if slots <= 1 then Array.init m.rows (dot_row m x)
  else begin
    (* row partition: every output element is an independent dot product, so
       any schedule reproduces the serial result bit-for-bit *)
    let y = Array.make m.rows 0.0 in
    Cdr_par.Pool.run_slots (Option.get pool) ~slots (fun s ->
        let lo = s * m.rows / slots and hi = ((s + 1) * m.rows / slots) - 1 in
        for i = lo to hi do
          y.(i) <- dot_row m x i
        done);
    y
  end

let scatter_rows m x y ~lo ~hi =
  for i = lo to hi do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        y.(m.col_idx.(k)) <- y.(m.col_idx.(k)) +. (xi *. m.values.(k))
      done
  done

let vec_mul_into ?pool x m y =
  if Array.length x <> m.rows then invalid_arg "Csr.vec_mul: dimension mismatch";
  if Array.length y <> m.cols then invalid_arg "Csr.vec_mul: output dimension mismatch";
  let slots = match pool with None -> 1 | Some _ -> par_slot_count m in
  if slots <= 1 then begin
    Array.fill y 0 (Array.length y) 0.0;
    scatter_rows m x y ~lo:0 ~hi:(m.rows - 1)
  end
  else begin
    (* x*P over CSR rows scatters into shared output, so each slot of rows
       accumulates into its own partial vector; the partials are then merged
       pairwise in a fixed tree. Both the slot grid and the tree shape are
       independent of the job count, hence deterministic (see DESIGN.md). *)
    let partials = Array.init slots (fun _ -> Array.make m.cols 0.0) in
    Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
        scatter_rows m x partials.(s) ~lo:(s * m.rows / slots)
          ~hi:(((s + 1) * m.rows / slots) - 1));
    Cdr_par.Pool.merge_tree ?pool ~slots (fun ~dst ~src ->
        let pa = partials.(dst) and pb = partials.(src) in
        for j = 0 to m.cols - 1 do
          pa.(j) <- pa.(j) +. pb.(j)
        done);
    Array.blit partials.(0) 0 y 0 m.cols
  end

let vec_mul ?pool x m =
  let y = Array.make m.cols 0.0 in
  vec_mul_into ?pool x m y;
  y

let same_pattern a b =
  a.rows = b.rows && a.cols = b.cols
  && (a.row_ptr == b.row_ptr || a.row_ptr = b.row_ptr)
  && (a.col_idx == b.col_idx || a.col_idx = b.col_idx)

let refill m values =
  if Array.length values <> nnz m then invalid_arg "Csr.refill: values length must equal nnz";
  Array.iter
    (fun v -> if not (Float.is_finite v) then invalid_arg "Csr.refill: non-finite value")
    values;
  { m with values }

(* Two-pass assembly from a per-row enumerator: count distinct columns per
   row, fill and sort the column indices, then accumulate values straight
   into the final array — no COO staging, no per-row hash tables, no lists.
   [mark] stamps a column with the identity of the pass+row that last
   touched it, so neither counting pass resets it. *)
let assemble ?pool ~rows ~cols row =
  if rows < 0 || cols < 0 then invalid_arg "Csr.assemble: negative dimension";
  let mark = Array.make (max cols 1) (-1) in
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    let count = ref 0 in
    row i (fun j _ ->
        if j < 0 || j >= cols then invalid_arg "Csr.assemble: column out of range";
        if mark.(j) <> i then begin
          mark.(j) <- i;
          incr count
        end);
    row_ptr.(i + 1) <- row_ptr.(i) + !count
  done;
  let total = row_ptr.(rows) in
  let col_idx = Array.make total 0 in
  for i = 0 to rows - 1 do
    let pos = ref row_ptr.(i) in
    row i (fun j _ ->
        (* stamps offset by [rows] so the counting pass's stamps read as stale *)
        if mark.(j) <> rows + i then begin
          mark.(j) <- rows + i;
          col_idx.(!pos) <- j;
          incr pos
        end);
    (* insertion sort within the row: successor enumerations emit short,
       nearly sorted column runs *)
    for k = row_ptr.(i) + 1 to row_ptr.(i + 1) - 1 do
      let v = col_idx.(k) in
      let p = ref (k - 1) in
      while !p >= row_ptr.(i) && col_idx.(!p) > v do
        col_idx.(!p + 1) <- col_idx.(!p);
        decr p
      done;
      col_idx.(!p + 1) <- v
    done
  done;
  (* value fill: rows own disjoint segments of [values] and duplicates sum
     in emission order, so any slot schedule produces identical bits *)
  let values = Array.make total 0.0 in
  let fill i =
    row i (fun j v ->
        let lo = ref row_ptr.(i) and hi = ref (row_ptr.(i + 1) - 1) in
        let k = ref (-1) in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          let c = col_idx.(mid) in
          if c = j then begin
            k := mid;
            lo := !hi + 1
          end
          else if c < j then lo := mid + 1
          else hi := mid - 1
        done;
        values.(!k) <- values.(!k) +. v)
  in
  let slots =
    match pool with
    | None -> 1
    | Some _ -> if total < 1 lsl 14 then 1 else min 16 (max 1 (rows / 64))
  in
  Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
      for i = s * rows / slots to ((s + 1) * rows / slots) - 1 do
        fill i
      done);
  unsafe_make ~rows ~cols ~row_ptr ~col_idx ~values

let transpose m =
  let tn = Array.make m.cols 0 in
  Array.iter (fun j -> tn.(j) <- tn.(j) + 1) m.col_idx;
  let row_ptr = Array.make (m.cols + 1) 0 in
  for j = 0 to m.cols - 1 do
    row_ptr.(j + 1) <- row_ptr.(j) + tn.(j)
  done;
  let fill_pos = Array.copy row_ptr in
  let col_idx = Array.make (nnz m) 0 and values = Array.make (nnz m) 0.0 in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j = m.col_idx.(k) in
      let pos = fill_pos.(j) in
      col_idx.(pos) <- i;
      values.(pos) <- m.values.(k);
      fill_pos.(j) <- pos + 1
    done
  done;
  unsafe_make ~rows:m.cols ~cols:m.rows ~row_ptr ~col_idx ~values

let map f m = { m with values = Array.map f m.values }

let scale_rows m d =
  if Array.length d <> m.rows then invalid_arg "Csr.scale_rows: dimension mismatch";
  let values = Array.copy m.values in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      values.(k) <- values.(k) *. d.(i)
    done
  done;
  { m with values }

let row_sums m =
  Array.init m.rows (fun i ->
      let acc = ref 0.0 and c = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        let v = m.values.(k) -. !c in
        let t = !acc +. v in
        c := t -. !acc -. v;
        acc := t
      done;
      !acc)

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Csr.add: dimension mismatch";
  let row_ptr = Array.make (a.rows + 1) 0 in
  let cidx = ref [] and vals = ref [] in
  let count = ref 0 in
  for i = 0 to a.rows - 1 do
    (* merge the two sorted rows *)
    let ka = ref a.row_ptr.(i) and kb = ref b.row_ptr.(i) in
    let ea = a.row_ptr.(i + 1) and eb = b.row_ptr.(i + 1) in
    let push j v =
      if v <> 0.0 then begin
        cidx := j :: !cidx;
        vals := v :: !vals;
        incr count
      end
    in
    while !ka < ea || !kb < eb do
      if !kb >= eb || (!ka < ea && a.col_idx.(!ka) < b.col_idx.(!kb)) then begin
        push a.col_idx.(!ka) a.values.(!ka);
        incr ka
      end
      else if !ka >= ea || b.col_idx.(!kb) < a.col_idx.(!ka) then begin
        push b.col_idx.(!kb) b.values.(!kb);
        incr kb
      end
      else begin
        push a.col_idx.(!ka) (a.values.(!ka) +. b.values.(!kb));
        incr ka;
        incr kb
      end
    done;
    row_ptr.(i + 1) <- !count
  done;
  let col_idx = Array.of_list (List.rev !cidx) and values = Array.of_list (List.rev !vals) in
  unsafe_make ~rows:a.rows ~cols:a.cols ~row_ptr ~col_idx ~values

let equal ?(tol = 0.0) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  iter a (fun i j v -> if abs_float (v -. get b i j) > tol then ok := false);
  iter b (fun i j v -> if abs_float (v -. get a i j) > tol then ok := false);
  !ok

(* ---- packed mirrors ---------------------------------------------------
   A cache-friendly copy of the numeric payload: int32 column indices (half
   the index memory traffic of boxed-width OCaml ints) and float64 values in
   Bigarray storage accessed unsafely. The kernels mirror the float-array
   ones loop for loop — same slot grids, same accumulation order — so a
   packed product is bitwise interchangeable with the reference product; the
   float-array path above stays as the pinned reference. *)

module Packed = struct
  open Bigarray

  type matrix = t

  type t = {
    rows : int;
    cols : int;
    row_ptr : int array; (* physically shared with the source matrix *)
    col32 : (int32, int32_elt, c_layout) Array1.t;
    vals : (float, float64_elt, c_layout) Array1.t;
  }

  let rows p = p.rows

  let cols p = p.cols

  let nnz p = Array1.dim p.vals

  let fill p (values : float array) =
    if Array.length values <> nnz p then invalid_arg "Csr.Packed.fill: values length must equal nnz";
    for k = 0 to Array.length values - 1 do
      Array1.unsafe_set p.vals k (Array.unsafe_get values k)
    done

  let pack (m : matrix) =
    if m.cols >= 1 lsl 30 then invalid_arg "Csr.Packed.pack: column count exceeds int32 range";
    let n = Array.length m.values in
    let col32 = Array1.create Int32 C_layout n in
    let vals = Array1.create Float64 C_layout n in
    for k = 0 to n - 1 do
      Array1.unsafe_set col32 k (Int32.of_int (Array.unsafe_get m.col_idx k))
    done;
    let p = { rows = m.rows; cols = m.cols; row_ptr = m.row_ptr; col32; vals } in
    fill p m.values;
    p

  (* the same numbers as [par_slot_count]: the packed kernels must run the
     same slot grids as the reference kernels to stay bitwise interchangeable *)
  let slot_count p = if nnz p < 1 lsl 14 then 1 else min 16 (max 1 (p.rows / 64))

  let dot_row p (x : float array) i =
    let acc = ref 0.0 in
    for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
      let j = Int32.to_int (Array1.unsafe_get p.col32 k) in
      acc := !acc +. (Array1.unsafe_get p.vals k *. Array.unsafe_get x j)
    done;
    !acc

  let mul_vec ?pool p x =
    if Array.length x <> p.cols then invalid_arg "Csr.Packed.mul_vec: dimension mismatch";
    let slots = match pool with None -> 1 | Some _ -> slot_count p in
    if slots <= 1 then Array.init p.rows (dot_row p x)
    else begin
      let y = Array.make p.rows 0.0 in
      Cdr_par.Pool.run_slots (Option.get pool) ~slots (fun s ->
          let lo = s * p.rows / slots and hi = ((s + 1) * p.rows / slots) - 1 in
          for i = lo to hi do
            y.(i) <- dot_row p x i
          done);
      y
    end

  let scatter_rows p (x : float array) (y : float array) ~lo ~hi =
    for i = lo to hi do
      let xi = Array.unsafe_get x i in
      if xi <> 0.0 then
        for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
          let j = Int32.to_int (Array1.unsafe_get p.col32 k) in
          Array.unsafe_set y j (Array.unsafe_get y j +. (xi *. Array1.unsafe_get p.vals k))
        done
    done

  let vec_mul_into ?pool x p y =
    if Array.length x <> p.rows then invalid_arg "Csr.Packed.vec_mul: dimension mismatch";
    if Array.length y <> p.cols then invalid_arg "Csr.Packed.vec_mul: output dimension mismatch";
    let slots = match pool with None -> 1 | Some _ -> slot_count p in
    if slots <= 1 then begin
      Array.fill y 0 (Array.length y) 0.0;
      scatter_rows p x y ~lo:0 ~hi:(p.rows - 1)
    end
    else begin
      let partials = Array.init slots (fun _ -> Array.make p.cols 0.0) in
      Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
          scatter_rows p x partials.(s) ~lo:(s * p.rows / slots)
            ~hi:(((s + 1) * p.rows / slots) - 1));
      Cdr_par.Pool.merge_tree ?pool ~slots (fun ~dst ~src ->
          let pa = partials.(dst) and pb = partials.(src) in
          for j = 0 to p.cols - 1 do
            pa.(j) <- pa.(j) +. pb.(j)
          done);
      Array.blit partials.(0) 0 y 0 p.cols
    end
end

let pp_stats ppf m =
  let bandwidth =
    fold m ~init:0 ~f:(fun acc i j _ -> max acc (abs (i - j)))
  in
  let fill =
    if m.rows = 0 || m.cols = 0 then 0.0
    else float_of_int (nnz m) /. (float_of_int m.rows *. float_of_int m.cols)
  in
  Format.fprintf ppf "%dx%d, nnz=%d, fill=%.4f%%, bandwidth=%d" m.rows m.cols (nnz m)
    (100.0 *. fill) bandwidth

(** Matrix-free Kronecker-structured operators.

    The paper's outlook for "more complex models" is to represent the
    transition matrix with hierarchical generalized Kronecker algebra instead
    of explicit sparse storage. This module provides the core primitive: the
    vector-Kronecker-product ("shuffle") algorithm computing
    [x (A_1 (x) A_2 (x) ... (x) A_k)] without ever forming the product
    matrix — O(n * sum_i nnz_i / n_i) per application instead of
    O(prod_i nnz_i). Sums of such terms model synchronizing events as in
    stochastic automata networks (Plateau). *)

type t
(** A sum of scaled Kronecker terms, all with the same product dimension. *)

val term : ?coeff:float -> Csr.t list -> t
(** One Kronecker term [coeff * A_1 (x) ... (x) A_k]. All factors must be
    square; raises [Invalid_argument] otherwise or on the empty list. *)

val sum : t list -> t
(** Concatenates the operands' term lists in order; O(total terms). Raises
    [Invalid_argument] on dimension mismatch or the empty list. *)

val lift : Csr.t -> t -> t
(** [lift a op] is [a (x) op]: every term gains [a] as a new leading
    (slowest-varying) factor, so the result has dimension
    [rows a * dim op]. Distributing the leading factor over the term list is
    O(terms) and shares all existing factor storage. [a] must be square and
    non-empty; raises [Invalid_argument] otherwise. *)

val dim : t -> int

val n_terms : t -> int

val nnz_bound : t -> int
(** Upper bound on the nonzero count of the materialized matrix:
    [sum over terms of prod_f nnz(A_f)]. Exact when no cancellation or
    column collision occurs; the basis of the "CSR bytes this operator
    avoids" estimate reported by the scaling bench. *)

type workspace
(** Two reusable length-[dim] ping-pong buffers for the factor sweep. One
    workspace serves any number of [apply_into] calls on the operator it was
    built for (sequentially — a workspace is not domain-safe); solvers
    allocate one per solve instead of two vectors per iteration. *)

val workspace : t -> workspace

val apply_into : ?pool:Cdr_par.Pool.t -> t -> ws:workspace -> Linalg.Vec.t -> Linalg.Vec.t -> unit
(** [apply_into op ~ws x y] stores [x * M] into [y], where [M] is the
    represented matrix. Allocation-free: all intermediates live in [ws].
    [x] and [y] must not alias each other or the workspace buffers. With
    [?pool] each middle contraction is parallelized over a fixed slot grid
    (a function of the operand shapes only, never the job count): slots own
    disjoint output segments and every element accumulates its contributions
    in the serial order, so pooled results are bit-identical to serial ones
    for any job count — the same discipline as [Csr.vec_mul_into]. *)

val apply : ?pool:Cdr_par.Pool.t -> t -> Linalg.Vec.t -> Linalg.Vec.t
(** [apply op x = x * M]; allocates a fresh workspace and result (use
    {!apply_into} in iteration loops). *)

val row_sums : t -> Linalg.Vec.t
(** Exact row sums without applying the operator: the Kronecker row sum
    factorizes as the tensor product of per-factor row-sum vectors. *)

val diag : t -> Linalg.Vec.t
(** The main diagonal, [sum over terms of coeff * prod_f A_f.(i_f).(i_f)]. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row op i emit] enumerates the entries of global row [i]: terms in
    order, and within a term the lexicographic cross product of factor-row
    entries. Duplicate columns are emitted separately (consumers such as
    [Csr.assemble] sum them in emission order). Safe to call concurrently
    from several domains. *)

val iter_entries : t -> (int -> int -> float -> unit) -> unit
(** {!iter_row} over every row in ascending order. *)

val to_csr : t -> Csr.t
(** Materialize (for tests and small operators). *)

val stationary :
  ?pool:Cdr_par.Pool.t ->
  ?tol:float ->
  ?max_iter:int ->
  t ->
  (Linalg.Vec.t * int * float, string) result
(** Power iteration directly on the matrix-free operator: the stationary
    distribution of a chain whose TPM is the represented matrix, without
    storing it. Returns [(pi, iterations, residual)], or [Error] when the
    operator is not row-stochastic (checked exactly via {!row_sums}) or has
    negative entries. *)

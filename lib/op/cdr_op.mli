(** First-class transition operators: the abstraction that lets the
    stationary solvers run against either a materialized CSR matrix or a
    matrix-free sum of Kronecker terms.

    An operator is a row-stochastic matrix [M] exposed only through its
    action: [x -> x * M] (the power-iteration and smoothing kernel, via
    {!vec_mul_into}), [x -> M^T x] (the splitting solvers' kernel, via
    {!mul_vec}), row sums, the main diagonal, and per-row entry enumeration
    (for aggregation and flux computations). Backends own their private
    apply state — the {!Csr_backend} a lazily materialized transpose, the
    {!Kron_backend} a reusable two-buffer shuffle workspace — so callers
    never allocate per iteration and never see representation details.

    Backend contract: for the same model, the two backends agree within
    solver tolerance but {e not} bitwise — the Kronecker shuffle sums float
    contributions in a different order than CSR row dots. The CSR backend
    itself is bitwise-identical to the historical direct-CSR solver paths. *)

type kind = [ `Csr | `Kron ]

val kind_string : kind -> string

val kind_of_string : string -> kind option

type t

module Csr_backend : sig
  val create : Sparse.Csr.t -> t
  (** Wraps an existing square matrix; all operations route to the exact
      kernels the solvers used before the abstraction existed, so results
      are bitwise identical to those paths. Raises [Invalid_argument] on a
      non-square matrix. *)
end

module Kron_backend : sig
  val create : ?label:string -> Sparse.Kron_op.t -> t
  (** Matrix-free backend; the product matrix is never formed. The operator
      owns one reusable apply workspace, so a single operator value must
      only be applied from one domain at a time (solvers apply sequentially
      and parallelize inside the apply via [?pool]). *)
end

val dim : t -> int

val kind : t -> kind

val label : t -> string
(** Human-readable description for reports and logs. *)

val nnz_estimate : t -> int
(** Stored nonzeros for a CSR operator; the materialization upper bound
    ([Kron_op.nnz_bound]) for a Kronecker operator. *)

val vec_mul_into : ?pool:Cdr_par.Pool.t -> t -> Linalg.Vec.t -> Linalg.Vec.t -> unit
(** [vec_mul_into op x y] stores [x * M] into [y]. Allocation-free after
    the operator's first apply. With [?pool], parallel over a fixed slot
    grid: bit-identical across job counts for a given backend. [x] and [y]
    must not alias. *)

val mul_vec : ?pool:Cdr_par.Pool.t -> t -> Linalg.Vec.t -> Linalg.Vec.t
(** [mul_vec op x = M^T x] — numerically the same vector as [x * M], routed
    so the CSR backend reproduces the splitting solvers' historical
    transpose-row-dot path bitwise. *)

val diag : t -> Linalg.Vec.t
(** The main diagonal of [M]; materialized lazily, at most once. *)

val row_sums : t -> Linalg.Vec.t
(** Exact row sums, computed without applying the operator; lazy. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row op i emit] enumerates the entries of row [i]. Duplicate
    columns may be emitted (a Kronecker operator emits one entry per term
    contribution); consumers sum them in emission order. Safe to call
    concurrently from several domains. *)

val iter_entries : t -> (int -> int -> float -> unit) -> unit
(** {!iter_row} over every row in ascending order. *)

val to_csr : t -> Sparse.Csr.t
(** The represented matrix as CSR. Free for a CSR operator; materializes
    the full product for a Kronecker operator — tests and small models
    only. *)

val check_stochastic : ?tol:float -> t -> (unit, string) result
(** Verifies every row sums to 1 within [tol] (default [1e-9]) using
    {!row_sums}; the error names the worst row. *)

(* The operator record every backend fills in. A record of closures rather
   than a first-class module: call sites only ever consume the operations,
   and closures let each backend capture exactly the private state it needs
   (a lazily materialized transpose, a reusable Kronecker workspace) without
   leaking it into the interface. *)

type kind = [ `Csr | `Kron ]

let kind_string = function `Csr -> "csr" | `Kron -> "kron"

let kind_of_string = function
  | "csr" -> Some `Csr
  | "kron" -> Some `Kron
  | _ -> None

type t = {
  dim : int;
  kind : kind;
  label : string;
  nnz_estimate : int;
      (* stored nonzeros for CSR; the materialization bound for Kronecker *)
  vec_mul_into : ?pool:Cdr_par.Pool.t -> Linalg.Vec.t -> Linalg.Vec.t -> unit;
      (* y <- x * M, the row-vector kernel of power iteration and smoothing *)
  mul_vec : ?pool:Cdr_par.Pool.t -> Linalg.Vec.t -> Linalg.Vec.t;
      (* M^T x as a column vector — numerically equal to x * M, but routed so
         the CSR backend reproduces the splitting solvers' historical
         transpose-row-dot path bitwise *)
  diag : unit -> Linalg.Vec.t;
  row_sums : unit -> Linalg.Vec.t;
  iter_row : int -> (int -> float -> unit) -> unit;
  to_csr : unit -> Sparse.Csr.t;
}

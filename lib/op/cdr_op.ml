type kind = Backend.kind

let kind_string = Backend.kind_string
let kind_of_string = Backend.kind_of_string

type t = Backend.t

module Csr_backend = Csr_backend
module Kron_backend = Kron_backend

let dim (op : t) = op.Backend.dim
let kind (op : t) = op.Backend.kind
let label (op : t) = op.Backend.label
let nnz_estimate (op : t) = op.Backend.nnz_estimate
let vec_mul_into ?pool (op : t) x y = op.Backend.vec_mul_into ?pool x y
let mul_vec ?pool (op : t) x = op.Backend.mul_vec ?pool x
let diag (op : t) = op.Backend.diag ()
let row_sums (op : t) = op.Backend.row_sums ()
let iter_row (op : t) i emit = op.Backend.iter_row i emit

let iter_entries (op : t) emit =
  for i = 0 to dim op - 1 do
    iter_row op i (fun j v -> emit i j v)
  done

let to_csr (op : t) = op.Backend.to_csr ()

let check_stochastic ?(tol = 1e-9) (op : t) =
  let sums = row_sums op in
  let worst = ref 0.0 and worst_row = ref (-1) in
  Array.iteri
    (fun i s ->
      let d = abs_float (s -. 1.0) in
      if d > !worst then begin
        worst := d;
        worst_row := i
      end)
    sums;
  if !worst > tol then
    Error
      (Printf.sprintf "row %d sums to %.17g (deviation %.3g exceeds %.3g)" !worst_row
         sums.(!worst_row) !worst tol)
  else Ok ()

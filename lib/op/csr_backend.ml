open Sparse

(* Wraps an existing CSR transition matrix as an operator. Every operation
   routes to the exact kernel the solvers called before the abstraction
   existed, so results are bitwise identical to the historical paths:

   - [vec_mul_into] is [Csr.vec_mul_into] on the wrapped matrix;
   - [mul_vec] materializes the transpose lazily (once per operator, the
     way [Splitting.solve] built it once per solve) and row-dots it with
     [Csr.mul_vec];
   - [diag] reads exact stored entries via binary search. *)
let create m =
  if Csr.rows m <> Csr.cols m then invalid_arg "Cdr_op.Csr_backend.create: matrix must be square";
  let n = Csr.rows m in
  let transposed = lazy (Csr.transpose m) in
  let diagonal = lazy (Array.init n (fun i -> Csr.get m i i)) in
  let sums = lazy (Csr.row_sums m) in
  (* operators are long-lived (one per solve loop), so matrices big enough to
     be bandwidth-bound amortize a packed int32/Bigarray mirror; the packed
     kernels are bitwise interchangeable with the Csr reference ones *)
  let pack_worthwhile = Csr.nnz m >= 1 lsl 14 in
  let packed = lazy (Csr.Packed.pack m) in
  let packed_t = lazy (Csr.Packed.pack (Lazy.force transposed)) in
  {
    Backend.dim = n;
    kind = `Csr;
    label = Printf.sprintf "csr[%d states, %d nnz]" n (Csr.nnz m);
    nnz_estimate = Csr.nnz m;
    vec_mul_into =
      (fun ?pool x y ->
        if pack_worthwhile then Csr.Packed.vec_mul_into ?pool x (Lazy.force packed) y
        else Csr.vec_mul_into ?pool x m y);
    mul_vec =
      (fun ?pool x ->
        if pack_worthwhile then Csr.Packed.mul_vec ?pool (Lazy.force packed_t) x
        else Csr.mul_vec ?pool (Lazy.force transposed) x);
    diag = (fun () -> Lazy.force diagonal);
    row_sums = (fun () -> Lazy.force sums);
    iter_row = (fun i emit -> Csr.iter_row m i emit);
    to_csr = (fun () -> m);
  }

(** Kronecker operator backend: matrix-free applies over a sum of Kronecker
    terms, never materializing the product. Internal; consumers use
    [Cdr_op.Kron_backend]. *)

val create : ?label:string -> Sparse.Kron_op.t -> Backend.t
(** The operator owns one reusable apply workspace (two length-[dim]
    buffers), so applications allocate nothing after the first; consequently
    a single operator value must only be applied from one domain at a time.
    [?label] overrides the derived description shown in reports. *)

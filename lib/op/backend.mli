(** The shared operator representation backends fill in.

    Internal to the [cdr_op] library: external consumers go through
    {!Cdr_op}, which re-exports this type abstractly together with its
    accessors. *)

type kind = [ `Csr | `Kron ]

val kind_string : kind -> string

val kind_of_string : string -> kind option

type t = {
  dim : int;
  kind : kind;
  label : string;
  nnz_estimate : int;
  vec_mul_into : ?pool:Cdr_par.Pool.t -> Linalg.Vec.t -> Linalg.Vec.t -> unit;
  mul_vec : ?pool:Cdr_par.Pool.t -> Linalg.Vec.t -> Linalg.Vec.t;
  diag : unit -> Linalg.Vec.t;
  row_sums : unit -> Linalg.Vec.t;
  iter_row : int -> (int -> float -> unit) -> unit;
  to_csr : unit -> Sparse.Csr.t;
}

open Sparse

(* Matrix-free backend over a sum of Kronecker terms. The operator owns one
   reusable [Kron_op.workspace] (two length-n ping-pong buffers, built on
   first apply), so repeated applications — the entire inner loop of a
   stationary solve — allocate nothing. That also means one operator value
   must not be applied from two domains at once; the solvers apply
   sequentially and parallelize *inside* the apply via [?pool].

   [mul_vec] (the splitting solvers' M^T x kernel) reuses x * M: the two are
   the same vector by definition, computed here with the shuffle algorithm's
   float-summation order rather than transpose-row-dot order — backends
   agree to solver tolerance, not bitwise (see DESIGN.md). *)
let create ?label op =
  let n = Kron_op.dim op in
  let ws = lazy (Kron_op.workspace op) in
  let diagonal = lazy (Kron_op.diag op) in
  let sums = lazy (Kron_op.row_sums op) in
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "kron[%d states, %d terms, nnz<=%d]" n (Kron_op.n_terms op)
          (Kron_op.nnz_bound op)
  in
  {
    Backend.dim = n;
    kind = `Kron;
    label;
    nnz_estimate = Kron_op.nnz_bound op;
    vec_mul_into = (fun ?pool x y -> Kron_op.apply_into ?pool op ~ws:(Lazy.force ws) x y);
    mul_vec =
      (fun ?pool x ->
        let y = Array.make n 0.0 in
        Kron_op.apply_into ?pool op ~ws:(Lazy.force ws) x y;
        y);
    diag = (fun () -> Lazy.force diagonal);
    row_sums = (fun () -> Lazy.force sums);
    iter_row = (fun i emit -> Kron_op.iter_row op i emit);
    to_csr = (fun () -> Kron_op.to_csr op);
  }

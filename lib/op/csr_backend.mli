(** CSR operator backend: wraps a materialized matrix, bitwise-identical to
    the pre-abstraction solver paths. Internal; consumers use
    [Cdr_op.Csr_backend]. *)

val create : Sparse.Csr.t -> Backend.t
(** Raises [Invalid_argument] when the matrix is not square. The matrix is
    captured by reference; the transpose (for {!Backend.t.mul_vec}) and the
    diagonal are materialized lazily, at most once per operator. *)

(** Bit-error-rate evaluation from the stationary phase-error distribution.

    A detection error occurs when the sampling instant, offset from the data
    eye center by [Phi + n_w], falls outside half a bit interval:
    [|Phi_k + n_w(k)| > 1/2]. The BER is the stationary probability of that
    event — the "integral of the tails" of the paper's plotted density.

    Two evaluations are provided and cross-checked in tests:
    - {!of_marginal}: exact Gaussian tail integral
      [sum_phi rho(phi) (Q((1/2-phi)/sigma) + Q((1/2+phi)/sigma))], able to
      resolve BERs down to the underflow limit (~1e-300);
    - {!of_convolution}: mass of the discrete convolution [rho * n_w]
      outside [+-1/2] — the quantity read directly off the paper's figures,
      limited by the discretization of [n_w]. *)

type result = {
  ber : float;
  phase_density : Linalg.Vec.t; (* stationary pmf over phase bins *)
  eye_density : (float * float) array;
      (* (phase value, probability) of Phi + n_w on the extended grid *)
}

val tail_probability : Config.t -> phase:float -> float
(** [P(|phi + n_w| > 1/2)] for a fixed phase error. *)

val of_marginal : Config.t -> rho:Linalg.Vec.t -> float
(** BER from a phase-bin marginal (length [grid_points]). *)

val of_convolution : Config.t -> rho:Linalg.Vec.t -> float

val eye_density : Config.t -> rho:Linalg.Vec.t -> (float * float) array
(** The density of [Phi + n_w] the paper plots next to the phase-error
    density (discrete convolution on the [n_w] lattice). *)

val analyze :
  ?solver:[ `Multigrid | `Power | `Gauss_seidel ] ->
  ?init:Linalg.Vec.t ->
  ?cache:Solver_cache.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  ?smoother:Markov.Multigrid.smoother ->
  ?ctx:Context.t ->
  Model.t ->
  result * Markov.Solution.t
(** Solve for the stationary distribution and evaluate everything. [?init],
    [?cache], [?trace], [?pool] and [?smoother] are forwarded to the solver
    (see {!Model.solve}); [?ctx] carries the same knobs (and the tolerance
    and cancellation hook) as one {!Context.t}, with explicit arguments
    overriding matching context fields. *)

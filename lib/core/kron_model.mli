(** The CDR chain as a matrix-free Kronecker operator.

    Built from the same marginalized probability tables as the direct CSR
    construction ({!Model.direct_tables}), but never materializing the
    product: one Kronecker term [D_t (x) C_(o,cmd) (x) G_(t,o,cmd)] per
    surviving (transition flag, detector output, counter command) triple.
    Storage is the factor matrices — O(n_data² + n_counter² + m · |n_r|)
    per term — against the CSR model's O(states · successors); that is what
    lets stationary solves reach the paper's ~1e6-state regimes (ROADMAP
    item 1) on a laptop.

    The operator acts on the {e full} product space
    [n_data * n_counter * grid_points] with the direct path's packing
    [((d * n_counter) + c) * m + p], not the BFS-reachable subset: transient
    never-reached states carry stationary mass 0, so BER and slip
    functionals agree with the CSR model to solver tolerance (the property
    tests pin this). *)

type t = {
  config : Config.t;
  kron : Sparse.Kron_op.t;
  op : Cdr_op.t;
  n_states : int; (* full product space *)
  n_data : int;
  n_counter : int;
  m : int; (* phase grid points *)
  build_seconds : float;
  mutable iad : Markov.Op_multigrid.setup option;
      (* memoized IAD solver state (partition, coarse hierarchy, workspaces,
         aggregated pattern): the first [`Multigrid] solve prepares it, every
         later solve on this model reuses it — repeated service queries pay
         the symbolic cost once. Owned by the model: one solve at a time. *)
}

val build : Config.t -> t
(** Builds the factor matrices and verifies row-stochasticity exactly (via
    the factorized row sums — no apply); raises [Invalid_argument] if the
    factorization fails the check. Runs in a ["model.build"] span with
    [via=kron] and counts in the ["model.builds"] metric. *)

val operator : t -> Cdr_op.t

val n_states : t -> int

val data_code : t -> int -> int

val counter_code : t -> int -> int

val phase_bin : t -> int -> int

val index_of : t -> data:int -> counter:int -> phase:int -> int option
(** Always [Some] for in-range codes — the full space has every triple. *)

type solver = [ `Power | `Jacobi | `Multigrid ]

val solver_name : solver -> string

val solve : ?solver:solver -> ?ctx:Context.t -> t -> Markov.Solution.t
(** Stationary distribution, matrix-free. Default [`Power] (the workhorse at
    scale). [`Jacobi] runs the damped operator splitting; [`Multigrid] runs
    {!Markov.Op_multigrid} with the first {!hierarchy} level as the
    aggregation partition and the rest solving the coarse chain (falling
    back to power when the model is below the direct-solve size).
    [ctx.cancel] is polled by the [`Multigrid] path only, matching
    {!Model.solve}. Uses [ctx]'s tolerance, warm start (ignored on a length
    mismatch), trace and pool. *)

val hierarchy : t -> Markov.Partition.t list
(** {!Model.hierarchy}'s coarsening strategy (halve phase bins, then the
    counter) on the full product space, where the lumping maps are pure
    arithmetic. *)

val phase_marginal : t -> pi:Linalg.Vec.t -> Linalg.Vec.t
(** Stationary marginal over phase bins — feed to {!Ber.of_marginal}. *)

val slip_rate : t -> pi:Linalg.Vec.t -> float
(** Stationary probability flux through boundary-wrapping transitions,
    computed by enumerating the operator's entries matrix-free — the
    {!Cycle_slip.rate} functional without the CSR. *)

val mean_time_between_slips : t -> pi:Linalg.Vec.t -> float

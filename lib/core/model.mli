(** The composed CDR Markov chain (the paper's Figure 2 model).

    Global state = (data-source state, counter state, phase-error bin). Two
    construction paths are provided:

    - {!build_via_network} goes through the generic {!Fsm.Network}
      composition — the paper's formalism, literally: four interacting FSMs
      with stochastic inputs, joint noise enumeration, reachability BFS;
    - {!build_direct} produces the same chain by analytically marginalizing
      each noise source where it acts (coins into the data machine, [n_w]
      into phase-detector decision probabilities, [n_r] into phase moves).
      It is orders of magnitude faster and is the default for large grids.

    Property tests assert both paths agree transition-by-transition. *)

type t = {
  config : Config.t;
  chain : Markov.Chain.t;
  n_states : int;
  data_code : int -> int; (* chain index -> component codes *)
  counter_code : int -> int;
  phase_bin : int -> int;
  index_of : data:int -> counter:int -> phase:int -> int option;
  build_seconds : float;
}

val initial_state : Config.t -> int * int * int
(** Canonical start: data (bit 0, run 1), counter 0, phase bin 0 (phase
    [-1/2])... actually phase centered at 0; see implementation. *)

type direct_tables = {
  data_outcomes : (float * int * bool) list array;
      (* per data state: (prob, next data, transition?) *)
  pd_probs : (float * float * float) array; (* per phase bin: lead/null/lag *)
  counter_table : (int * Counter.command) array array;
  nr_atoms : (int * float) list;
}
(** The per-block marginalized probability tables the direct construction
    enumerates successors from. Exposed because they are also exactly the
    ingredients of the Kronecker factorization ({!Kron_model} builds its
    factor matrices from them) — one source of truth for both
    representations. *)

val direct_tables : Config.t -> direct_tables

val iter_successors :
  Config.t ->
  direct_tables ->
  data:int ->
  counter:int ->
  phase:int ->
  (int * int * int -> float -> unit) ->
  unit
(** Enumerates the successors of one global state [(data, counter, phase)]
    under the marginalized tables: calls [f (data', counter', phase') p] for
    every outcome atom, in the fixed deterministic order the direct
    construction uses (data outcome, then detector outcome, then random-walk
    atom). Duplicate successor triples are emitted separately; consumers sum
    them. Exposed so composed chains (environment x CDR, {!Cdr_env}) can
    reuse the per-regime successor enumeration verbatim. *)

val build_via_network : Config.t -> t

val build_direct : ?pool:Cdr_par.Pool.t -> Config.t -> t
(** Flat-state direct construction: global states pack into dense int keys
    ([((data * n_counter) + counter) * grid_points + phase]), the
    reachability BFS runs on flat int arrays, and the CSR is assembled in
    two symbolic passes plus a value pass ({!Sparse.Csr.assemble}) — no
    hashtables, COO staging or per-row lists anywhere on the path. [?pool]
    parallelizes the value pass over rows; results are bit-identical for
    every job count, and to {!build_direct_reference}. *)

val build_direct_reference : Config.t -> t
(** The original hashtable-and-COO construction, kept as the reference the
    flat path is pinned against (the test suite asserts both produce
    bitwise-identical chains). Not used on any production path. *)

val build : ?via:[ `Network | `Direct ] -> ?pool:Cdr_par.Pool.t -> Config.t -> t
(** Default [`Direct]. [?pool] applies to the direct path only. *)

val rebuild : ?pool:Cdr_par.Pool.t -> t -> Config.t -> t * bool
(** [rebuild t cfg] builds the model for [cfg] reusing [t]'s reachable-state
    enumeration and CSR sparsity pattern when only noise parameters
    ([sigma_w], [p01]/[p10], the [n_r] pmf, the dead zone, the [n_w]
    discretization) changed: successors are re-enumerated per state straight
    into the cached pattern — no reachability BFS, no state registration, no
    COO sort, no per-row hashtables (entry positions come from a binary
    search in the cached row, {!Sparse.Csr.row_index}) — and the new TPM
    shares structure arrays with the old one ({!Sparse.Csr.refill}), so a
    multigrid setup keyed on the old pattern still matches in O(1). [?pool]
    splits the rows over slots (rows own disjoint value segments; results
    are bit-identical for every job count).

    Returns [(model, true)] on the fast path. Whenever the fast path is not
    provably equivalent to a fresh build — a state-space parameter changed,
    or the new noise parameters move the set of nonzeros — it falls back to
    {!build_direct} and returns [(model, false)]. Counted in the
    ["model.rebuilds"] metric with a [pattern=reused|fresh] label. *)

val operator : t -> Cdr_op.t
(** The chain's TPM wrapped as a {!Cdr_op.t} CSR backend — the materialized
    counterpart of {!Kron_model.operator}, so backend-generic code (solvers,
    benches, tests) can treat both representations uniformly. *)

val phase_marginal : t -> pi:Linalg.Vec.t -> Linalg.Vec.t
(** Stationary marginal over phase bins (the density the paper plots). *)

val hierarchy : t -> Markov.Partition.t list
(** Structured multigrid coarsening: each level lumps pairs of consecutive
    phase bins while keeping the FSM coordinates — the paper's coarsening
    strategy. Halving stops once the level fits {!Markov.Gth.max_direct_size}
    or the phase grid cannot be halved further. *)

val solve :
  ?solver:
    [ `Multigrid | `Power | `Gauss_seidel | `Jacobi | `Sor of float | `Aggregation | `Arnoldi ] ->
  ?tol:float ->
  ?init:Linalg.Vec.t ->
  ?cache:Solver_cache.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  ?smoother:Markov.Multigrid.smoother ->
  ?ctx:Context.t ->
  t ->
  Markov.Solution.t
(** Stationary distribution; default [`Multigrid] with the structured
    {!hierarchy} (and tolerance [1e-12]). [?init] warm-starts the iterative
    solvers (multigrid, power, the splittings) from a given vector instead of
    the uniform one — the continuation device for sweeps, where the previous
    point's stationary density is an excellent guess for the next; an [init]
    of the wrong length is ignored. [?cache] (multigrid only) looks the
    symbolic setup up by the chain's sparsity structure instead of rebuilding
    it (see {!Solver_cache}). [?trace] is forwarded to the
    selected solver's convergence recorder ([`Aggregation] does not record
    one). [?pool] is forwarded to the solvers that have deterministic
    parallel kernels (multigrid, power, the splittings); [`Aggregation] and
    [`Arnoldi] ignore it. [?smoother] (multigrid only, default [`Lex])
    selects the Gauss-Seidel variant — see {!Markov.Multigrid.smoother} —
    and participates in the [?cache] key. The whole solve runs inside a
    ["model.solve"] span.

    [?ctx] bundles every one of these knobs (plus a cooperative-cancellation
    hook polled between multigrid V-cycles) into one {!Context.t}; the
    per-call arguments are thin wrappers that override the matching context
    field, and omitting both yields {!Context.default} — the historical
    behavior, bitwise. A firing [ctx.cancel] aborts a multigrid solve with
    {!Markov.Multigrid.Cancelled}; the other solvers do not poll it. *)

val solver_name :
  [ `Multigrid | `Power | `Gauss_seidel | `Jacobi | `Sor of float | `Aggregation | `Arnoldi ] ->
  string
(** Stable lower-case names used in span attributes and telemetry labels. *)

val network : Config.t -> Fsm.Network.t * int array
(** The underlying FSM network and its initial state vector (exposed for
    inspection, simulation, and the Figure-2 style summary dump). *)

(** Paper-style experiment reports.

    The figures in the paper carry two annotation lines around each density
    plot; {!header_line} and {!footer_line} reproduce them:

    {v
    COUNTER: 8  STDnw: 5.0e-02  MAXnr: 1.6e-02  BER: 2.9e-17
    Size: 30198  Iter: 12  Matrixformtime: 0.15 mins  Solvetime: 0.42 mins
    v} *)

type t = {
  config : Config.t;
  ber : float;
  size : int;
  iterations : int; (* outer solver iterations, from the convergence trace *)
  matrix_form_seconds : float;
  solve_seconds : float;
  phase_density : Linalg.Vec.t;
  eye_density : (float * float) array;
  trace : Cdr_obs.Trace.t; (* per-iteration residual trace of the solve *)
}

val run :
  ?solver:[ `Multigrid | `Power | `Gauss_seidel ] ->
  ?pool:Cdr_par.Pool.t ->
  ?smoother:Markov.Multigrid.smoother ->
  ?ctx:Context.t ->
  Config.t ->
  t
(** Build, solve, analyze, and time everything. The solve runs with a fresh
    {!Cdr_obs.Trace.t} (returned in [trace]); [iterations] is populated from
    that trace uniformly for all three solver choices, so V-cycles, power
    steps and Gauss-Seidel sweeps are counted the same way. [?pool] and
    [?smoother] are forwarded to the solver kernels (see {!Model.solve});
    [?ctx] carries the same knobs plus tolerance and cancellation as one
    {!Context.t} (explicit arguments win; the report's own fresh trace
    always replaces [ctx.trace]). *)

val run_model :
  ?solver:[ `Multigrid | `Power | `Gauss_seidel ] ->
  ?pool:Cdr_par.Pool.t ->
  ?init:Linalg.Vec.t ->
  ?cache:Solver_cache.t ->
  ?smoother:Markov.Multigrid.smoother ->
  ?ctx:Context.t ->
  Model.t ->
  t * Markov.Solution.t
(** {!run} on an already built model, also returning the full stationary
    solution — the warm-sweep entry point: [?init] threads the previous
    sweep point's stationary vector into the solver and [?cache] reuses the
    multigrid setup across points with one sparsity structure (see
    {!Model.solve}). [matrix_form_seconds] reports the model's own build
    time, as recorded by {!Model.build} or {!Model.rebuild}. *)

val header_line : t -> string

val footer_line : t -> string

val density_table : ?max_rows:int -> t -> string
(** The plotted series as text: phase, stationary density of [Phi], density
    of [Phi + n_w]. Down-sampled to [max_rows] rows (default 33). *)

val pp : Format.formatter -> t -> unit
(** Header, ASCII density sketch, footer. *)

val to_csv : t -> string
(** The full (non-down-sampled) density series as CSV with a header row:
    [phase,rho_phi,rho_phi_plus_nw] — for external plotting. *)

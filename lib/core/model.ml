type t = {
  config : Config.t;
  chain : Markov.Chain.t;
  n_states : int;
  data_code : int -> int;
  counter_code : int -> int;
  phase_bin : int -> int;
  index_of : data:int -> counter:int -> phase:int -> int option;
  build_seconds : float;
}

let initial_state cfg =
  ( Data_source.encode cfg { Data_source.bit = 0; run = 1 },
    Counter.encode cfg 0,
    (* phase bin representing 0 phase error *)
    cfg.Config.grid_points / 2 )

let network cfg =
  let cfg = Config.create_exn cfg in
  let data = Data_source.component cfg in
  let pd = Phase_detector.component cfg in
  let counter = Counter.component cfg in
  let phase = Phase_error.component cfg in
  let coin01, coin10 = Data_source.coin_sources cfg in
  let nw, _, _ = Phase_detector.nw_source cfg in
  let nr, _ = Phase_error.nr_source cfg in
  let open Fsm.Network in
  (* component order: data(0), pd(1), counter(2), phase(3); pd reads the
     phase through registered feedback *)
  let net =
    create
      ~sources:[| coin01; coin10; nw; nr |]
      ~components:[| data; pd; counter; phase |]
      ~wiring:
        [|
          [| From_source 0; From_source 1 |];
          [| From_component 0; From_source 2; From_state 3 |];
          [| From_component 1 |];
          [| From_component 2; From_source 3 |];
        |]
  in
  let d0, c0, p0 = initial_state cfg in
  (net, [| d0; 0; c0; p0 |])

let of_indexed ~config ~chain ~states ~build_seconds =
  (* [states] maps chain index -> (data, counter, phase) *)
  let n = Array.length states in
  let table = Hashtbl.create (2 * n) in
  Array.iteri (fun i key -> Hashtbl.replace table key i) states;
  {
    config;
    chain;
    n_states = n;
    data_code = (fun i -> let d, _, _ = states.(i) in d);
    counter_code = (fun i -> let _, c, _ = states.(i) in c);
    phase_bin = (fun i -> let _, _, p = states.(i) in p);
    index_of = (fun ~data ~counter ~phase -> Hashtbl.find_opt table (data, counter, phase));
    build_seconds;
  }

let build_via_network cfg =
  let cfg = Config.create_exn cfg in
  let model, build_seconds =
    Cdr_obs.Span.timed ~name:"model.build" ~attrs:[ ("via", "network") ] (fun () ->
        let net, initial = network cfg in
        let built = Fsm.Network.build_chain net ~initial in
        let states = Array.map (fun s -> (s.(0), s.(2), s.(3))) built.Fsm.Network.states in
        of_indexed ~config:cfg ~chain:built.Fsm.Network.chain ~states ~build_seconds:0.0)
  in
  Cdr_obs.Metrics.incr "model.builds" ~labels:[ ("via", "network") ];
  { model with build_seconds }

(* Precomputed successor-enumeration tables for the direct construction:
   each noise source marginalized where it acts. They depend only on the
   configuration, and recomputing them is cheap relative to the reachability
   BFS — [rebuild] recomputes the tables but skips the BFS. *)
type direct_tables = {
  data_outcomes : (float * int * bool) list array;
      (* per data state: (prob, next data, transition?) *)
  pd_probs : (float * float * float) array; (* per phase bin: lead/null/lag *)
  counter_table : (int * Counter.command) array array;
  nr_atoms : (int * float) list;
}

let direct_tables cfg =
  let m = cfg.Config.grid_points in
  let n_data = Data_source.n_states cfg in
  let n_counter = Counter.n_states cfg in
  (* data outcomes per data state: (prob, next data, transition?) via the
     component's own step function on the four coin combinations *)
  let data_comp = Data_source.component cfg in
  let data_outcomes =
    Array.init n_data (fun d ->
        let acc = Hashtbl.create 4 in
        List.iter
          (fun (c01, c10, p) ->
            if p > 0.0 then begin
              let d', out = data_comp.Fsm.Component.step d [| c01; c10 |] in
              let t = out = Data_source.output_transition in
              let key = (d', t) in
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc key) in
              Hashtbl.replace acc key (prev +. p)
            end)
          (let p01 = cfg.Config.p01 and p10 = cfg.Config.p10 in
           [
             (1, 1, p01 *. p10);
             (1, 0, p01 *. (1.0 -. p10));
             (0, 1, (1.0 -. p01) *. p10);
             (0, 0, (1.0 -. p01) *. (1.0 -. p10));
           ]);
        Hashtbl.fold (fun (d', t) p l -> (p, d', t) :: l) acc [])
  in
  (* phase-detector decision probabilities per phase bin, from the same
     discretized n_w the network path uses *)
  let nw, scale = Config.nw_pmf cfg in
  let dead_zone = cfg.Config.detector_dead_zone in
  let pd_probs =
    Array.init m (fun bin ->
        let phase_bins = bin - (m / 2) in
        let lead = ref 0.0 and lag = ref 0.0 and null = ref 0.0 in
        Prob.Pmf.iter nw (fun k w ->
            let s = phase_bins + (k * scale) in
            if s > dead_zone then lead := !lead +. w
            else if s < -dead_zone then lag := !lag +. w
            else null := !null +. w);
        (!lead, !null, !lag))
  in
  (* counter transitions per (state, detector output) *)
  let counter_comp = Counter.component cfg in
  let counter_table =
    Array.init n_counter (fun c ->
        Array.init Phase_detector.n_outputs (fun o ->
            let c', cmd = counter_comp.Fsm.Component.step c [| o |] in
            (c', Counter.command_of_int cmd)))
  in
  let nr_atoms = Prob.Pmf.fold cfg.Config.nr ~init:[] ~f:(fun acc k w -> (k, w) :: acc) in
  { data_outcomes; pd_probs; counter_table; nr_atoms }

(* Enumerate the successors of one (data, counter, phase) state: calls
   [f (d', c', phase') p] once per (not necessarily distinct) outcome.
   Successor enumeration per state is O(data outcomes * detector outcomes *
   |n_r| support). *)
let iter_successors cfg tables ~data:d ~counter:c ~phase f =
  let p_lead, p_null_tie, p_lag = tables.pd_probs.(phase) in
  List.iter
    (fun (p_data, d', t) ->
      let detector_outcomes =
        if t then
          [
            (p_lead, Phase_detector.Lead);
            (p_null_tie, Phase_detector.Null);
            (p_lag, Phase_detector.Lag);
          ]
        else [ (1.0, Phase_detector.Null) ]
      in
      List.iter
        (fun (p_pd, o) ->
          if p_pd > 0.0 then begin
            let c', cmd = tables.counter_table.(c).(Phase_detector.output_to_int o) in
            List.iter
              (fun (r, p_r) ->
                let phase' = Phase_error.next_bin cfg ~bin:phase ~command:cmd ~nr_bins:r in
                f (d', c', phase') (p_data *. p_pd *. p_r))
              tables.nr_atoms
          end)
        detector_outcomes)
    tables.data_outcomes.(d)

(* The original hashtable-and-COO direct construction, kept verbatim as the
   reference the flat-state path ({!build_direct}) is pinned against: the
   test suite asserts both produce bitwise-identical chains. Not used on any
   production path. *)
let build_direct_reference cfg =
  let cfg = Config.create_exn cfg in
  let model, build_seconds =
    Cdr_obs.Span.timed ~name:"model.build" ~attrs:[ ("via", "direct-ref") ] @@ fun () ->
  let tables = direct_tables cfg in
  (* BFS over reachable (data, counter, phase) states *)
  let index = Hashtbl.create 4096 in
  let order = ref [] in
  let count = ref 0 in
  let register key =
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
        let i = !count in
        Hashtbl.add index key i;
        order := key :: !order;
        incr count;
        i
  in
  let d0, c0, p0 = initial_state cfg in
  let start_key = (d0, c0, p0) in
  ignore (register start_key);
  let queue = Queue.create () in
  Queue.add start_key queue;
  let rows = ref [] in
  while not (Queue.is_empty queue) do
    let ((d, c, phase) as key) = Queue.pop queue in
    let row = register key in
    let row_acc = Hashtbl.create 32 in
    let add key' p =
      let fresh = not (Hashtbl.mem index key') in
      let col = register key' in
      if fresh then Queue.add key' queue;
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt row_acc col) in
      Hashtbl.replace row_acc col (prev +. p)
    in
    iter_successors cfg tables ~data:d ~counter:c ~phase add;
    rows := (row, Hashtbl.fold (fun col p acc -> (col, p) :: acc) row_acc []) :: !rows
  done;
  let n = !count in
  let acc = Sparse.Coo.create ~rows:n ~cols:n in
  List.iter
    (fun (row, entries) -> List.iter (fun (col, p) -> Sparse.Coo.add acc ~row ~col p) entries)
    !rows;
  let chain = Markov.Chain.of_csr ~tol:1e-9 (Sparse.Coo.to_csr acc) in
  let states = Array.of_list (List.rev !order) in
  of_indexed ~config:cfg ~chain ~states ~build_seconds:0.0
  in
  Cdr_obs.Metrics.incr "model.builds" ~labels:[ ("via", "direct-ref") ];
  { model with build_seconds }

(* Direct compositional construction, flat-state edition.

   A global state (data, counter, phase) packs into the int
   [((data * n_counter) + counter) * m + phase], so the whole construction
   runs on dense int arrays: [state_of_key] maps packed key -> chain index
   (-1 when unvisited), [order] is both the BFS worklist and the final
   index -> key enumeration (FIFO discovery order, identical to the
   reference path's registration order). The CSR is assembled row-major in
   two symbolic passes plus a value pass ({!Sparse.Csr.assemble}) — no
   hashtables, no COO staging, no per-row lists anywhere. Emission order per
   row equals the reference path's, and duplicates sum in that order, so the
   resulting chain is bitwise identical to {!build_direct_reference}'s.

   [?pool] parallelizes the value pass over rows (bit-identical for every
   job count; the enumerator only reads the precomputed tables). *)
let build_direct ?pool cfg =
  let cfg = Config.create_exn cfg in
  let model, build_seconds =
    Cdr_obs.Span.timed ~name:"model.build" ~attrs:[ ("via", "direct") ] @@ fun () ->
  let tables = direct_tables cfg in
  let m = cfg.Config.grid_points in
  let n_data = Data_source.n_states cfg in
  let n_counter = Counter.n_states cfg in
  let key_space = n_data * n_counter * m in
  let pack ~data ~counter ~phase = (((data * n_counter) + counter) * m) + phase in
  let state_of_key = Array.make key_space (-1) in
  let order = Array.make key_space 0 in
  let count = ref 0 in
  let register key =
    if state_of_key.(key) < 0 then begin
      state_of_key.(key) <- !count;
      order.(!count) <- key;
      incr count
    end
  in
  let d0, c0, p0 = initial_state cfg in
  register (pack ~data:d0 ~counter:c0 ~phase:p0);
  let processed = ref 0 in
  while !processed < !count do
    let key = order.(!processed) in
    incr processed;
    iter_successors cfg tables ~data:(key / (n_counter * m)) ~counter:(key / m mod n_counter)
      ~phase:(key mod m)
      (fun (d', c', phase') _p -> register (pack ~data:d' ~counter:c' ~phase:phase'))
  done;
  let n = !count in
  let emit_row i emit =
    let key = order.(i) in
    iter_successors cfg tables ~data:(key / (n_counter * m)) ~counter:(key / m mod n_counter)
      ~phase:(key mod m)
      (fun (d', c', phase') p -> emit state_of_key.(pack ~data:d' ~counter:c' ~phase:phase') p)
  in
  let csr = Sparse.Csr.assemble ?pool ~rows:n ~cols:n emit_row in
  let chain = Markov.Chain.of_csr ~tol:1e-9 csr in
  {
    config = cfg;
    chain;
    n_states = n;
    data_code = (fun i -> order.(i) / (n_counter * m));
    counter_code = (fun i -> order.(i) / m mod n_counter);
    phase_bin = (fun i -> order.(i) mod m);
    index_of =
      (fun ~data ~counter ~phase ->
        if
          data < 0 || data >= n_data || counter < 0 || counter >= n_counter || phase < 0
          || phase >= m
        then None
        else
          let s = state_of_key.(pack ~data ~counter ~phase) in
          if s >= 0 then Some s else None);
    build_seconds = 0.0;
  }
  in
  Cdr_obs.Metrics.incr "model.builds" ~labels:[ ("via", "direct") ];
  { model with build_seconds }

let build ?(via = `Direct) ?pool cfg =
  match via with `Direct -> build_direct ?pool cfg | `Network -> build_via_network cfg

(* The state space (and with it the reachability BFS) is determined by these
   parameters alone; the noise parameters only move transition values and,
   occasionally, the set of nonzeros. *)
let same_state_space a b =
  a.Config.grid_points = b.Config.grid_points
  && a.Config.n_phases = b.Config.n_phases
  && a.Config.counter_length = b.Config.counter_length
  && a.Config.max_run = b.Config.max_run

exception Pattern_mismatch

let rebuild ?pool t cfg =
  let cfg = Config.create_exn cfg in
  let attempt () =
    if not (same_state_space t.config cfg) then None
    else begin
      let tables = direct_tables cfg in
      let tpm = Markov.Chain.tpm t.chain in
      let row_ptr = tpm.Sparse.Csr.row_ptr in
      let values = Array.make (Sparse.Csr.nnz tpm) 0.0 in
      let n = t.n_states in
      try
        (* re-enumerate each row's successors under the new noise parameters
           straight into the cached sparsity pattern: no BFS, no state
           registration, no per-row hashtable — entry positions come from a
           binary search in the cached row ([Csr.row_index]) and duplicates
           accumulate in emission order, exactly as a fresh build would sum
           them. Rows own disjoint value segments, so [?pool] splits them
           over slots with bit-identical results for every job count. *)
        let slots = if n < 4096 then 1 else min 16 (n / 2048) in
        Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
            for i = s * n / slots to (((s + 1) * n / slots) - 1) do
              iter_successors cfg tables ~data:(t.data_code i) ~counter:(t.counter_code i)
                ~phase:(t.phase_bin i)
                (fun (data, counter, phase) p ->
                  match t.index_of ~data ~counter ~phase with
                  | None -> raise Pattern_mismatch
                  | Some col -> (
                      match Sparse.Csr.row_index tpm i col with
                      | -1 ->
                          (* a nonzero outside the cached pattern means the
                             pattern moved; a zero contribution outside it
                             was invisible to the reference path's
                             mismatch check too, so it is dropped *)
                          if p > 0.0 then raise Pattern_mismatch
                      | k -> values.(k) <- values.(k) +. p));
              (* every cached nonzero must stay live: a vanished entry means
                 a fresh build would produce a different CSR *)
              for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
                if not (values.(k) > 0.0) then raise Pattern_mismatch
              done
            done);
        (* [refill] shares the structure arrays, so a multigrid setup built
           on the old chain matches the new one in O(1) *)
        let chain = Markov.Chain.of_csr ~tol:1e-9 (Sparse.Csr.refill tpm values) in
        Some { t with config = cfg; chain }
      with Pattern_mismatch | Markov.Chain.Not_stochastic _ -> None
    end
  in
  match Cdr_obs.Span.timed ~name:"model.build" ~attrs:[ ("via", "rebuild") ] attempt with
  | Some model, build_seconds ->
      Cdr_obs.Metrics.incr "model.rebuilds" ~labels:[ ("pattern", "reused") ];
      ({ model with build_seconds }, true)
  | None, _ ->
      Cdr_obs.Metrics.incr "model.rebuilds" ~labels:[ ("pattern", "fresh") ];
      (build_direct ?pool cfg, false)

let operator t = Cdr_op.Csr_backend.create (Markov.Chain.tpm t.chain)

let phase_marginal t ~pi =
  Markov.Stat.marginal ~pi ~label:t.phase_bin ~n_labels:t.config.Config.grid_points

let hierarchy t =
  (* keys of the current level; level 0 = chain states. Coarsening lumps
     pairs of consecutive phase bins (the paper's strategy); once the phase
     grid cannot be halved any further but the level is still too large for a
     direct solve, counter pairs are lumped as well (the counter is the other
     slow coordinate on long-filter designs). *)
  let keys = Array.init t.n_states (fun i -> (t.data_code i, t.counter_code i, t.phase_bin i)) in
  let rec go keys acc =
    let n = Array.length keys in
    let max_phase = Array.fold_left (fun m (_, _, p) -> max m p) 0 keys in
    let max_counter = Array.fold_left (fun m (_, c, _) -> max m c) 0 keys in
    if n <= Markov.Gth.max_direct_size || (max_phase < 1 && max_counter < 1) then List.rev acc
    else begin
      let coarse_key =
        if max_phase >= 1 then fun (d, c, p) -> (d, c, p / 2) else fun (d, c, p) -> (d, c / 2, p)
      in
      let table = Hashtbl.create (2 * n) in
      let coarse_keys = ref [] in
      let next = ref 0 in
      let map =
        Array.map
          (fun key0 ->
            let key = coarse_key key0 in
            match Hashtbl.find_opt table key with
            | Some b -> b
            | None ->
                let b = !next in
                Hashtbl.add table key b;
                coarse_keys := key :: !coarse_keys;
                incr next;
                b)
          keys
      in
      let partition = Markov.Partition.create map in
      go (Array.of_list (List.rev !coarse_keys)) (partition :: acc)
    end
  in
  go keys []

let solver_name = function
  | `Multigrid -> "multigrid"
  | `Power -> "power"
  | `Gauss_seidel -> "gauss-seidel"
  | `Jacobi -> "jacobi"
  | `Sor _ -> "sor"
  | `Arnoldi -> "arnoldi"
  | `Aggregation -> "aggregation"

let solve ?(solver = `Multigrid) ?tol ?init ?cache ?trace ?pool ?smoother ?(ctx = Context.default)
    t =
  (* the per-call optional arguments are wrappers over the context: an
     explicit argument wins, an omitted one falls back to the context field,
     and the default context reproduces the historical defaults bitwise *)
  let ctx = Context.override ?tol ?init ?cache ?trace ?pool ?smoother ctx in
  let { Context.tol; cache; trace; pool; smoother; cancel; _ } = ctx in
  Cdr_obs.Span.with_ ~name:"model.solve" ~attrs:[ ("solver", solver_name solver) ] @@ fun () ->
  Cdr_obs.Metrics.incr "model.solves" ~labels:[ ("solver", solver_name solver) ];
  (* an init of the wrong length (e.g. threaded across a counter sweep whose
     state count moved) is dropped, not an error: warm-starting is an
     optimization, never a constraint *)
  let init =
    match ctx.Context.init with
    | Some v when Array.length v = t.n_states -> Some v
    | Some _ | None -> None
  in
  match solver with
  | `Multigrid ->
      let solution, _stats =
        match cache with
        | Some cache ->
            let s =
              Solver_cache.setup cache ~smoother ~hierarchy:(fun () -> hierarchy t) t.chain
            in
            Markov.Multigrid.solve_with ~tol ?init ?trace ?pool ?cancel s t.chain
        | None ->
            Markov.Multigrid.solve ~tol ?init ?trace ?pool ?cancel ~smoother
              ~hierarchy:(hierarchy t) t.chain
      in
      solution
  | `Power -> Markov.Power.solve ~tol ?init ?trace ?pool t.chain
  | `Gauss_seidel ->
      Markov.Splitting.solve ~method_:Markov.Splitting.Gauss_seidel ~tol ?init ?trace ?pool
        t.chain
  | `Jacobi ->
      Markov.Splitting.solve ~method_:Markov.Splitting.Jacobi ~tol ?init ?trace ?pool t.chain
  | `Sor omega ->
      Markov.Splitting.solve ~method_:(Markov.Splitting.Sor omega) ~tol ?init ?trace ?pool
        t.chain
  | `Arnoldi -> Markov.Arnoldi.solve ~tol ?trace t.chain
  | `Aggregation ->
      let partition =
        match hierarchy t with
        | first :: _ -> first
        | [] -> Markov.Partition.identity t.n_states
      in
      Markov.Aggregation.solve ~tol ~partition t.chain

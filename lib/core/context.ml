type strategy = { warm_start : bool; reuse_setup : bool }

let cold = { warm_start = false; reuse_setup = false }
let warm = { warm_start = true; reuse_setup = true }

type t = {
  pool : Cdr_par.Pool.t option;
  trace : Cdr_obs.Trace.t option;
  cache : Solver_cache.t option;
  init : Linalg.Vec.t option;
  smoother : Markov.Multigrid.smoother;
  strategy : strategy;
  tol : float;
  cancel : (unit -> bool) option;
  backend : Cdr_op.kind;
}

(* these literals are the historical per-call defaults; changing any of them
   changes the behavior of every call site that passes no arguments *)
let default =
  {
    pool = None;
    trace = None;
    cache = None;
    init = None;
    smoother = `Lex;
    strategy = cold;
    tol = 1e-12;
    cancel = None;
    backend = `Csr;
  }

let make ?pool ?trace ?cache ?init ?(smoother = `Lex) ?(strategy = cold) ?(tol = 1e-12) ?cancel
    ?(backend = `Csr) () =
  { pool; trace; cache; init; smoother; strategy; tol; cancel; backend }

let override ?pool ?trace ?cache ?init ?smoother ?strategy ?tol ?cancel ?backend t =
  let keep opt field = match opt with Some _ -> opt | None -> field in
  {
    pool = keep pool t.pool;
    trace = keep trace t.trace;
    cache = keep cache t.cache;
    init = keep init t.init;
    smoother = Option.value smoother ~default:t.smoother;
    strategy = Option.value strategy ~default:t.strategy;
    tol = Option.value tol ~default:t.tol;
    cancel = keep cancel t.cancel;
    backend = Option.value backend ~default:t.backend;
  }

(** One bundle for everything a stationary analysis threads through its
    solver stack.

    Before this module, every entry point ({!Model.solve}, {!Ber.analyze},
    {!Report.run_model}, the {!Sweep} runners) grew its own copy of the same
    optional-argument list — pool, trace, cache, warm-start vector, smoother,
    tolerance — and adding one knob meant touching every layer. A [Context.t]
    is that list as a value: build it once, hand it to any entry point with
    [?ctx], and the layers below forward it unchanged.

    The per-call optional arguments are kept on every entry point as thin
    wrappers: an explicit argument overrides the corresponding context field
    ({!override}), and a call that passes neither gets {!default} — which
    reproduces the historical defaults exactly, so existing call sites are
    bitwise unchanged.

    The long-running analysis service is the motivating consumer: it builds
    one context per request (process-wide cache, shared pool, per-request
    deadline hook) instead of spelling seven arguments at four call sites. *)

type strategy = {
  warm_start : bool;
      (** sweeps: start each solve from a secant extrapolation of the
          previous points' stationary vectors *)
  reuse_setup : bool;
      (** sweeps: rebuild models in place and cache multigrid setups per
          structure *)
}
(** Sweep continuation strategy. Defined here (not in [Sweep]) so a context
    can carry it below the [Sweep] layer; [Sweep.strategy] re-exports it. *)

val cold : strategy
(** Independent cold solves — the historical default. *)

val warm : strategy
(** Warm-started, structure-cached continuation (both fields true). *)

type t = {
  pool : Cdr_par.Pool.t option;  (** domain pool for the parallel kernels *)
  trace : Cdr_obs.Trace.t option;  (** solver convergence recorder *)
  cache : Solver_cache.t option;  (** structure-keyed multigrid setup cache *)
  init : Linalg.Vec.t option;  (** warm-start iterate *)
  smoother : Markov.Multigrid.smoother;  (** Gauss-Seidel variant, [`Lex] *)
  strategy : strategy;  (** sweep continuation mode, {!cold} *)
  tol : float;  (** solver convergence tolerance, [1e-12] *)
  cancel : (unit -> bool) option;
      (** cooperative-cancellation hook, polled between multigrid V-cycles
          (see {!Markov.Multigrid.solve_with}); [true] aborts the solve with
          {!Markov.Multigrid.Cancelled}. The serving layer points this at a
          deadline check. Only the multigrid solver polls it — the other
          solvers complete normally. *)
  backend : Cdr_op.kind;
      (** operator representation the solve runs on, [`Csr]. [`Kron] routes
          the entry points that support it through the matrix-free Kronecker
          operator ({!Kron_model}) instead of the materialized chain; entry
          points with no matrix-free path reject it rather than silently
          falling back. *)
}

val default : t
(** No pool, no trace, no cache, no warm start, [`Lex] smoother, {!cold}
    strategy, tolerance [1e-12], no cancellation, [`Csr] backend — exactly
    the defaults the per-call optional arguments have always had. *)

val make :
  ?pool:Cdr_par.Pool.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?cache:Solver_cache.t ->
  ?init:Linalg.Vec.t ->
  ?smoother:Markov.Multigrid.smoother ->
  ?strategy:strategy ->
  ?tol:float ->
  ?cancel:(unit -> bool) ->
  ?backend:Cdr_op.kind ->
  unit ->
  t
(** {!default} with the given fields replaced. *)

val override :
  ?pool:Cdr_par.Pool.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?cache:Solver_cache.t ->
  ?init:Linalg.Vec.t ->
  ?smoother:Markov.Multigrid.smoother ->
  ?strategy:strategy ->
  ?tol:float ->
  ?cancel:(unit -> bool) ->
  ?backend:Cdr_op.kind ->
  t ->
  t
(** [t] with every {e explicitly passed} argument replacing the matching
    field — the wrapper the entry points use to keep their historical
    optional arguments: [Model.solve ?tol ?pool ?ctx] is
    [solve_ctx (override ?tol ?pool ctx)]. An argument that is not passed
    leaves the field alone (there is no way to {e clear} a field through
    [override]; build a fresh context for that). *)

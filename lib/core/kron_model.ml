(* The CDR chain as a sum of Kronecker terms, built from the same
   marginalized probability tables ({!Model.direct_tables}) the direct CSR
   construction enumerates — one source of truth, two representations.

   Global state (data d, counter c, phase bin p) packs exactly like the
   direct path's key, [((d * n_counter) + c) * m + p], which is the
   mixed-radix order of a three-factor Kronecker product with the data
   factor slowest. Conditioning one step on the triple

     (t   : did the data transition,
      o   : the detector output,
      cmd : the counter's command)

   makes the three blocks independent, so

     P = sum over (t, o, cmd) of   D_t  (x)  C_(o,cmd)  (x)  G_(t,o,cmd)

   with
     D_t[d,d']       = P(data d -> d' with transition flag t),
     C_(o,cmd)[c,c'] = 1 when the counter at c under output o moves to c'
                       emitting cmd (a 0/1 selector row per c),
     G_(t,o,cmd)[p,p'] = w_o(p,t) * sum of P(n_r = r) over r moving
                       p -> p' under cmd, where w_o(p,t) is the detector
                       decision probability (pd_probs for t = 1; output
                       forced to Null for t = 0).

   Of the 2*3*3 combinations at most a handful survive (t = 0 only pairs
   with Null, and each (c, o) determines one command); the rest have an
   all-zero factor and are dropped. Row sums are 1 by total probability:
   sum_t q_t(d) * sum_o w_o(p,t) * [one cmd matches] * sum_r P(r) = 1.

   The operator lives on the FULL product space n_data * n_counter * m —
   matrix-free iteration cannot know reachability in advance. The
   stationary distribution puts its mass on the recurrent class (the states
   the direct path's BFS reaches), so phase marginals, BER and slip flux
   agree with the CSR model to solver tolerance; transient unreached states
   carry mass 0 in the limit. *)

type t = {
  config : Config.t;
  kron : Sparse.Kron_op.t;
  op : Cdr_op.t;
  n_states : int;
  n_data : int;
  n_counter : int;
  m : int;
  build_seconds : float;
  mutable iad : Markov.Op_multigrid.setup option;
}

let detector_outputs = [ Phase_detector.Lead; Phase_detector.Null; Phase_detector.Lag ]

let commands = [ Counter.Hold; Counter.Advance; Counter.Retard ]

let build_kron cfg tables =
  let m = cfg.Config.grid_points in
  let n_data = Data_source.n_states cfg in
  let n_counter = Counter.n_states cfg in
  let d_factor t_flag =
    let coo = Sparse.Coo.create ~rows:n_data ~cols:n_data in
    let nonempty = ref false in
    Array.iteri
      (fun d outcomes ->
        List.iter
          (fun (p, d', t) ->
            if t = t_flag && p > 0.0 then begin
              Sparse.Coo.add coo ~row:d ~col:d' p;
              nonempty := true
            end)
          outcomes)
      tables.Model.data_outcomes;
    if !nonempty then Some (Sparse.Coo.to_csr coo) else None
  in
  let c_factor o cmd =
    let coo = Sparse.Coo.create ~rows:n_counter ~cols:n_counter in
    let nonempty = ref false in
    let oi = Phase_detector.output_to_int o in
    for c = 0 to n_counter - 1 do
      let c', cmd' = tables.Model.counter_table.(c).(oi) in
      if cmd' = cmd then begin
        Sparse.Coo.add coo ~row:c ~col:c' 1.0;
        nonempty := true
      end
    done;
    if !nonempty then Some (Sparse.Coo.to_csr coo) else None
  in
  let g_factor t_flag o cmd =
    let coo = Sparse.Coo.create ~rows:m ~cols:m in
    let nonempty = ref false in
    for p = 0 to m - 1 do
      let lead, null, lag = tables.Model.pd_probs.(p) in
      let w =
        if t_flag then
          match o with
          | Phase_detector.Lead -> lead
          | Phase_detector.Null -> null
          | Phase_detector.Lag -> lag
        else match o with Phase_detector.Null -> 1.0 | _ -> 0.0
      in
      if w > 0.0 then
        List.iter
          (fun (r, p_r) ->
            if p_r > 0.0 then begin
              let p' = Phase_error.next_bin cfg ~bin:p ~command:cmd ~nr_bins:r in
              Sparse.Coo.add coo ~row:p ~col:p' (w *. p_r);
              nonempty := true
            end)
          tables.Model.nr_atoms
    done;
    if !nonempty then Some (Sparse.Coo.to_csr coo) else None
  in
  let terms = ref [] in
  List.iter
    (fun t_flag ->
      match d_factor t_flag with
      | None -> ()
      | Some d ->
          List.iter
            (fun o ->
              List.iter
                (fun cmd ->
                  match c_factor o cmd with
                  | None -> ()
                  | Some c -> (
                      match g_factor t_flag o cmd with
                      | None -> ()
                      | Some g -> terms := Sparse.Kron_op.term [ d; c; g ] :: !terms))
                commands)
            detector_outputs)
    [ false; true ];
  Sparse.Kron_op.sum (List.rev !terms)

let build cfg =
  let cfg = Config.create_exn cfg in
  let model, build_seconds =
    Cdr_obs.Span.timed ~name:"model.build" ~attrs:[ ("via", "kron") ] @@ fun () ->
    let tables = Model.direct_tables cfg in
    let m = cfg.Config.grid_points in
    let n_data = Data_source.n_states cfg in
    let n_counter = Counter.n_states cfg in
    let kron = build_kron cfg tables in
    let op = Cdr_op.Kron_backend.create kron in
    (match Cdr_op.check_stochastic ~tol:1e-9 op with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Kron_model.build: factorization is not stochastic: " ^ msg));
    {
      config = cfg;
      kron;
      op;
      n_states = n_data * n_counter * m;
      n_data;
      n_counter;
      m;
      build_seconds = 0.0;
      iad = None;
    }
  in
  Cdr_obs.Metrics.incr "model.builds" ~labels:[ ("via", "kron") ];
  { model with build_seconds }

let operator t = t.op

let n_states t = t.n_states

let data_code t i = i / (t.n_counter * t.m)

let counter_code t i = i / t.m mod t.n_counter

let phase_bin t i = i mod t.m

let index_of t ~data ~counter ~phase =
  if
    data < 0 || data >= t.n_data || counter < 0 || counter >= t.n_counter || phase < 0
    || phase >= t.m
  then None
  else Some ((((data * t.n_counter) + counter) * t.m) + phase)

(* Same coarsening strategy as {!Model.hierarchy} — halve the phase grid,
   then the counter — but on the full product space, where every (d, c, p)
   triple exists and the lumping maps are pure arithmetic. *)
let hierarchy t =
  let rec go ~n_counter ~m acc =
    let n = t.n_data * n_counter * m in
    if n <= Markov.Gth.max_direct_size || (m <= 1 && n_counter <= 1) then List.rev acc
    else if m > 1 then begin
      let mc = (m + 1) / 2 in
      let map =
        Array.init n (fun i ->
            let p = i mod m and dc = i / m in
            (dc * mc) + (p / 2))
      in
      go ~n_counter ~m:mc (Markov.Partition.create map :: acc)
    end
    else begin
      let cc = (n_counter + 1) / 2 in
      let map =
        Array.init n (fun i ->
            let p = i mod m in
            let c = i / m mod n_counter in
            let d = i / (m * n_counter) in
            (((d * cc) + (c / 2)) * m) + p)
      in
      go ~n_counter:cc ~m (Markov.Partition.create map :: acc)
    end
  in
  go ~n_counter:t.n_counter ~m:t.m []

type solver = [ `Power | `Jacobi | `Multigrid ]

let solver_name = function `Power -> "power" | `Jacobi -> "jacobi" | `Multigrid -> "multigrid"

let solve ?(solver = `Power) ?(ctx = Context.default) t =
  let { Context.tol; trace; pool; cancel; _ } = ctx in
  let init =
    match ctx.Context.init with
    | Some v when Array.length v = t.n_states -> Some v
    | Some _ | None -> None
  in
  Cdr_obs.Span.with_ ~name:"model.solve"
    ~attrs:[ ("solver", solver_name solver); ("backend", "kron") ]
  @@ fun () ->
  Cdr_obs.Metrics.incr "model.solves"
    ~labels:[ ("solver", solver_name solver); ("backend", "kron") ];
  match solver with
  | `Power -> Markov.Power.solve_op ~tol ?init ?trace ?pool t.op
  | `Jacobi -> Markov.Splitting.solve_op ~tol ?init ?trace ?pool t.op
  | `Multigrid -> (
      match hierarchy t with
      | [] ->
          (* the whole model fits a direct solve; no aggregation level to
             run the IAD cycle through *)
          Markov.Power.solve_op ~tol ?init ?trace ?pool t.op
      | partition :: coarse_hierarchy ->
          (* the IAD setup (partition arrays, workspaces, aggregated coarse
             pattern) depends only on the model's structure: prepare once,
             reuse for every solve against this model *)
          let setup =
            match t.iad with
            | Some s when Markov.Op_multigrid.matches s t.op -> s
            | _ ->
                let s = Markov.Op_multigrid.prepare ~coarse_hierarchy ~partition t.op in
                t.iad <- Some s;
                s
          in
          let solution, _stats =
            Markov.Op_multigrid.solve_with ~tol ?init ?trace ?pool ?cancel setup t.op
          in
          solution)

let phase_marginal t ~pi =
  Markov.Stat.marginal ~pi ~label:(fun i -> i mod t.m) ~n_labels:t.m

let slip_rate t ~pi =
  if Array.length pi <> t.n_states then invalid_arg "Kron_model.slip_rate: dimension mismatch";
  let cfg = t.config in
  let m = t.m in
  let acc = ref 0.0 in
  Cdr_op.iter_entries t.op (fun i j v ->
      if Phase_error.crosses_boundary cfg ~src:(i mod m) ~dst:(j mod m) then
        acc := !acc +. (pi.(i) *. v));
  !acc

let mean_time_between_slips t ~pi =
  let r = slip_rate t ~pi in
  if r <= 0.0 then Float.infinity else 1.0 /. r

(* Structure-keyed cache of multigrid setups (see Markov.Multigrid.setup).

   A sweep's points solve chains whose sparsity patterns are identical
   (sigma continuation) or drawn from a tiny set of shapes (counter sweeps),
   so the symbolic phase — patterns, transposes, levels, workspaces — is
   paid once per shape and looked up afterwards. Lookup delegates to
   [Multigrid.matches]: O(1) for refilled chains whose structure arrays are
   physically shared, O(nnz) for structurally equal strangers.

   A cache is deliberately not thread-safe: setups own mutable workspaces,
   so each sweep worker threads its own cache through its own chunk of
   points (see Sweep). The registry metrics are global and domain-safe. *)

type t = {
  max_entries : int;
  mutable entries : Markov.Multigrid.setup list; (* most recently used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable request_key : string option; (* label for the next lookups' metrics *)
}

let create ?(max_entries = 8) () =
  if max_entries < 1 then invalid_arg "Solver_cache.create: max_entries must be >= 1";
  { max_entries; entries = []; hits = 0; misses = 0; evictions = 0; request_key = None }

let set_request_key t key = t.request_key <- key

(* The labeled counter series must stay bounded no matter what keys callers
   produce (a load generator can invent thousands of structures): the first
   [max_label_keys] distinct keys get their own series, everything after
   collapses into "other". Global across caches, because the registry is. *)
let max_label_keys = 16

let key_mutex = Mutex.create ()

let seen_keys : (string, unit) Hashtbl.t = Hashtbl.create 16

let label_of_key k =
  Mutex.lock key_mutex;
  let v =
    if Hashtbl.mem seen_keys k then k
    else if Hashtbl.length seen_keys < max_label_keys then begin
      Hashtbl.add seen_keys k ();
      k
    end
    else "other"
  in
  Mutex.unlock key_mutex;
  v

(* unlabeled series always recorded (dashboards and the bench greps key on
   them); the keyed series is additional, only when a request key is set *)
let record t name n =
  Cdr_obs.Metrics.add name n;
  match t.request_key with
  | Some k -> Cdr_obs.Metrics.add ~labels:[ ("key", label_of_key k) ] name n
  | None -> ()

let take_first p l =
  let rec go acc = function
    | [] -> None
    | x :: rest when p x -> Some (x, List.rev_append acc rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] l

let truncate n l = List.filteri (fun i _ -> i < n) l

let setup t ?(smoother = `Lex) ~hierarchy chain =
  (* the smoother is part of the key: a [`Lex] setup carries no colorings,
     so handing it to a colored solve (or vice versa) would silently change
     the algorithm *)
  let matches s =
    Markov.Multigrid.smoother s = smoother && Markov.Multigrid.matches s chain
  in
  match take_first matches t.entries with
  | Some (s, rest) ->
      t.hits <- t.hits + 1;
      record t "solver_cache.hits" 1;
      t.entries <- s :: rest;
      s
  | None ->
      t.misses <- t.misses + 1;
      record t "solver_cache.misses" 1;
      let s = Markov.Multigrid.setup ~smoother ~hierarchy:(hierarchy ()) chain in
      let entries = s :: t.entries in
      let dropped = List.length entries - t.max_entries in
      if dropped > 0 then begin
        t.evictions <- t.evictions + dropped;
        record t "solver_cache.evictions" dropped
      end;
      t.entries <- truncate t.max_entries entries;
      (* a long-running server watches this gauge for cache pressure: size
         pinned at max_entries plus a climbing eviction counter means the
         working set of structures no longer fits *)
      Cdr_obs.Metrics.set_gauge "solver_cache.size" (float_of_int (List.length t.entries));
      s

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let length t = List.length t.entries

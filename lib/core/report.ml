type t = {
  config : Config.t;
  ber : float;
  size : int;
  iterations : int;
  matrix_form_seconds : float;
  solve_seconds : float;
  phase_density : Linalg.Vec.t;
  eye_density : (float * float) array;
  trace : Cdr_obs.Trace.t;
}

let run_model ?(solver = `Multigrid) ?pool ?init ?cache ?smoother ?(ctx = Context.default) model
    =
  let ctx = Context.override ?pool ?init ?cache ?smoother ctx in
  Cdr_obs.Span.with_ ~name:"report.run" @@ fun () ->
  let trace =
    Cdr_obs.Trace.create
      ~name:
        (Model.solver_name
           (solver
             :> [ `Multigrid | `Power | `Gauss_seidel | `Jacobi | `Sor of float | `Aggregation
                | `Arnoldi ]))
      ()
  in
  (* the report owns the convergence trace it returns, so it overrides any
     trace the caller's context carries *)
  let ctx = Context.override ~trace ctx in
  let (result, solution), solve_seconds =
    Cdr_obs.Span.timed ~name:"report.solve" (fun () -> Ber.analyze ~solver ~ctx model)
  in
  (* every solver records its outer-iteration count in the trace; the
     Solution count is the fallback for an instantly-converged (empty) trace *)
  let iterations =
    match Cdr_obs.Trace.last_iter trace with
    | 0 -> solution.Markov.Solution.iterations
    | n -> n
  in
  Cdr_obs.Metrics.observe "report.solve_seconds" solve_seconds;
  ( {
      config = model.Model.config;
      ber = result.Ber.ber;
      size = model.Model.n_states;
      iterations;
      matrix_form_seconds = model.Model.build_seconds;
      solve_seconds;
      phase_density = result.Ber.phase_density;
      eye_density = result.Ber.eye_density;
      trace;
    },
    solution )

let run ?solver ?pool ?smoother ?ctx cfg =
  fst (run_model ?solver ?pool ?smoother ?ctx (Model.build cfg))

let header_line t =
  Printf.sprintf "COUNTER: %d  STDnw: %.1e  MAXnr: %.1e  BER: %.1e" t.config.Config.counter_length
    t.config.Config.sigma_w (Config.max_nr t.config) t.ber

let footer_line t =
  Printf.sprintf "Size: %d  Iter: %d  Matrixformtime: %.2f mins  Solvetime: %.2f mins" t.size
    t.iterations
    (t.matrix_form_seconds /. 60.0)
    (t.solve_seconds /. 60.0)

(* The eye density lives on a different (n_w) lattice than the phase grid;
   the tables index it by nearest phase. Both lattices are sorted and the
   leftmost-nearest index is non-decreasing in the phase, so one linear merge
   aligns every bin — not a per-row scan over the whole lattice. *)
let eye_by_bin t =
  let m = Array.length t.phase_density in
  let ne = Array.length t.eye_density in
  let out = Array.make m 0.0 in
  if ne > 0 then begin
    let j = ref 0 in
    for i = 0 to m - 1 do
      let phi = Config.phase_of_bin t.config i in
      while
        !j + 1 < ne
        && abs_float (fst t.eye_density.(!j + 1) -. phi)
           < abs_float (fst t.eye_density.(!j) -. phi)
      do
        incr j
      done;
      out.(i) <- snd t.eye_density.(!j)
    done
  end;
  out

let density_table ?(max_rows = 33) t =
  let m = Array.length t.phase_density in
  let stride = max 1 (m / max_rows) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "    phase     rho(Phi)      rho(Phi+n_w)\n";
  let eye = eye_by_bin t in
  let i = ref 0 in
  while !i < m do
    let phi = Config.phase_of_bin t.config !i in
    Buffer.add_string buf
      (Printf.sprintf "  %+8.4f  %12.5e  %12.5e\n" phi t.phase_density.(!i) eye.(!i));
    i := !i + stride
  done;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "phase,rho_phi,rho_phi_plus_nw\n";
  let eye = eye_by_bin t in
  Array.iteri
    (fun i p ->
      let phi = Config.phase_of_bin t.config i in
      Buffer.add_string buf (Printf.sprintf "%.9f,%.9e,%.9e\n" phi p eye.(i)))
    t.phase_density;
  Buffer.contents buf

let sketch density =
  let m = Array.length density in
  let width = 61 in
  let peak = Array.fold_left Float.max 0.0 density in
  if peak <= 0.0 then "(empty density)\n"
  else begin
    let heights = 12 in
    let buf = Buffer.create ((heights + 1) * (width + 1)) in
    let column c =
      (* max density over the bins mapping to this column *)
      let lo = c * m / width and hi = max (c * m / width) (((c + 1) * m / width) - 1) in
      let v = ref 0.0 in
      for i = lo to min hi (m - 1) do
        v := Float.max !v density.(i)
      done;
      !v
    in
    for row = heights downto 1 do
      let threshold = float_of_int row /. float_of_int heights *. peak in
      for c = 0 to width - 1 do
        Buffer.add_char buf (if column c >= threshold then '*' else ' ')
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make (width / 2) '-');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make (width - (width / 2) - 1) '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf "-1/2                           0                           +1/2\n";
    Buffer.contents buf
  end

let pp ppf t =
  Format.fprintf ppf "%s@\n%s%s@\n" (header_line t) (sketch t.phase_density) (footer_line t)

(** Parameter sweeps over the CDR design space — the experiments of the
    paper's Figures 4 and 5 and the "evaluation of a number of alternative
    ... architectures ... in a short time" motivation.

    Each sweep point is an independent stationary solve, so the sweeps are
    embarrassingly parallel: pass a [Cdr_par.Pool.t] to run one {!Report.run}
    per pool worker. The point list is order-preserving and bit-identical for
    any job count (apart from the wall-clock timing fields, which measure the
    run they came from).

    Adjacent points are also nearly the same problem: their chains share one
    sparsity structure (sigma sweeps) or a tiny set of structures (counter
    sweeps), and their stationary densities nearly coincide. The {!warm}
    strategy exploits both — a continuation: points are processed in
    parameter order, each worker's chunk reuses the previous point's state
    enumeration and CSR pattern ({!Model.rebuild}), caches multigrid setups
    per structure ({!Solver_cache}), and starts each solve from a secant
    extrapolation of the previous points' stationary vectors. Results agree
    with the cold path within the solver tolerance (the convergence test is
    unchanged; only the starting point and the symbolic setup are reused).

    [?smoother] (multigrid only, default [`Lex]) selects the Gauss-Seidel
    variant inside each point's V-cycles; see {!Markov.Multigrid.smoother}. *)

type point = { config : Config.t; report : Report.t }

type strategy = Context.strategy = {
  warm_start : bool;
      (** start each solve from a secant extrapolation of the previous
          points' stationary vectors *)
  reuse_setup : bool;
      (** rebuild models in place and cache multigrid setups per structure *)
}
(** Re-export of {!Context.strategy}, so a {!Context.t} can carry the sweep
    mode and existing [{ Sweep.warm_start; reuse_setup }] literals keep
    working. *)

val cold : strategy
(** Independent cold solves — the default, bit-identical for any job count. *)

val warm : strategy
(** Warm-started, structure-cached continuation (both fields true). *)

val counter_lengths :
  ?solver:[ `Multigrid | `Power | `Gauss_seidel ] ->
  ?smoother:Markov.Multigrid.smoother ->
  ?pool:Cdr_par.Pool.t ->
  ?strategy:strategy ->
  ?ctx:Context.t ->
  Config.t ->
  int list ->
  point list
(** BER for each counter length, all other parameters fixed (Figure 5).

    [?ctx] supplies the pool, strategy, smoother, tolerance and cancellation
    hook as one {!Context.t} (explicit arguments win). A context's [init],
    [cache] and [trace] do {e not} flow into the points: every point owns its
    warm-start state (the continuation computes per-point inits and one setup
    cache per worker chunk) and its own convergence trace. *)

val sigma_w_values :
  ?solver:[ `Multigrid | `Power | `Gauss_seidel ] ->
  ?smoother:Markov.Multigrid.smoother ->
  ?pool:Cdr_par.Pool.t ->
  ?strategy:strategy ->
  ?ctx:Context.t ->
  Config.t ->
  float list ->
  point list
(** BER for each eye-opening jitter level (Figure 4's two panels as the
    endpoints of a continuum). With {!warm} this is the headline fast path:
    every point shares the sigma-independent state space, so rebuilds reuse
    the pattern and the multigrid setup cache hits on all but the first
    point of each structure group. *)

val optimal_of_points : point list -> int * float
(** The counter length and BER of the lowest-BER point in an already
    computed sweep — share one point list between the table and the optimum
    instead of re-running every solve. Raises [Invalid_argument] on []. *)

val optimal_counter :
  ?solver:[ `Multigrid | `Power | `Gauss_seidel ] ->
  ?smoother:Markov.Multigrid.smoother ->
  ?pool:Cdr_par.Pool.t ->
  ?strategy:strategy ->
  ?ctx:Context.t ->
  Config.t ->
  int list ->
  int * float
(** [optimal_of_points] of a fresh {!counter_lengths} sweep (the design
    answer the paper derives: an interior optimum where both noise sources
    contribute). *)

val pp_points : Format.formatter -> point list -> unit
(** One table row per point: the swept value, BER, state count, iterations. *)

type result = {
  ber : float;
  phase_density : Linalg.Vec.t;
  eye_density : (float * float) array;
}

let tail_probability cfg ~phase =
  let sigma = cfg.Config.sigma_w in
  if sigma = 0.0 then if abs_float phase >= 0.5 then 1.0 else 0.0
  else Prob.Gaussian.q ((0.5 -. phase) /. sigma) +. Prob.Gaussian.q ((0.5 +. phase) /. sigma)

let check_rho cfg rho =
  if Array.length rho <> cfg.Config.grid_points then
    invalid_arg "Ber: marginal length must equal grid_points"

let of_marginal cfg ~rho =
  check_rho cfg rho;
  let acc = ref 0.0 and c = ref 0.0 in
  Array.iteri
    (fun i p ->
      let v = (p *. tail_probability cfg ~phase:(Config.phase_of_bin cfg i)) -. !c in
      let t = !acc +. v in
      c := t -. !acc -. v;
      acc := t)
    rho;
  !acc

(* Express rho on the n_w lattice (step = scale * delta) and convolve the two
   pmfs. rho bins whose phase is not on the n_w lattice are snapped to the
   nearest lattice point, which is why this estimate is discretization
   limited while [of_marginal] is not. *)
let convolved cfg ~rho =
  check_rho cfg rho;
  let m = cfg.Config.grid_points in
  let nw, scale = Config.nw_pmf cfg in
  let rho_entries = ref [] in
  Array.iteri
    (fun i p ->
      if p > 0.0 then begin
        let offset_bins = i - (m / 2) in
        let lattice = int_of_float (Float.round (float_of_int offset_bins /. float_of_int scale)) in
        rho_entries := (lattice, p) :: !rho_entries
      end)
    rho;
  let rho_pmf = Prob.Pmf.create !rho_entries in
  (Prob.Pmf.convolve rho_pmf nw, scale)

let eye_density cfg ~rho =
  let pmf, scale = convolved cfg ~rho in
  let step = float_of_int scale *. Config.delta cfg in
  let out = ref [] in
  Prob.Pmf.iter pmf (fun k p -> out := (float_of_int k *. step, p) :: !out);
  Array.of_list (List.rev !out)

let of_convolution cfg ~rho =
  let pmf, scale = convolved cfg ~rho in
  let step = float_of_int scale *. Config.delta cfg in
  Prob.Pmf.fold pmf ~init:0.0 ~f:(fun acc k p ->
      if abs_float (float_of_int k *. step) > 0.5 then acc +. p else acc)

let analyze ?(solver = `Multigrid) ?init ?cache ?trace ?pool ?smoother ?(ctx = Context.default)
    model =
  let ctx = Context.override ?init ?cache ?trace ?pool ?smoother ctx in
  let solver =
    match solver with
    | `Multigrid -> `Multigrid
    | `Power -> `Power
    | `Gauss_seidel -> `Gauss_seidel
  in
  let solution = Model.solve ~solver ~ctx model in
  let rho = Model.phase_marginal model ~pi:solution.Markov.Solution.pi in
  let cfg = model.Model.config in
  ( { ber = of_marginal cfg ~rho; phase_density = rho; eye_density = eye_density cfg ~rho },
    solution )

(** Named operating scenarios.

    The paper's running example is a SONET-type multiplexer ("the
    specification for a multiplexer chip required a BER of [1e-10]"); data
    characteristics come from SONET system specifications (scrambled data,
    bounded run lengths, eye-opening and wander masks). These presets bundle
    representative parameter sets so examples and regression baselines speak
    the same language. Numbers are representative of the *class* of link,
    not of any specific product. *)

type t = {
  name : string;
  description : string;
  config : Config.t;
  drift_mean : float;
      (* mean drift steps/bit of [config.nr] — kept alongside the pmf so
         parameterized surfaces (service schema, CLI flags) can seed their
         scalar drift fields from a preset and rebuild the identical pmf *)
  drift_max : int; (* drift truncation radius matching [config.nr] *)
  ber_specification : float; (* the pass/fail line for this link class *)
}

val sonet_multiplexer : t
(** The paper's motivating case: 1e-10 specification, scrambled data,
    moderate eye closure — the design whose prototype missed the spec "by
    more than an order of magnitude" due to interference noise. *)

val sonet_multiplexer_noisy : t
(** The same design with the interference-degraded eye the paper describes
    (larger effective [n_w]): fails the specification. *)

val burst_mode_retimer : t
(** Burst-mode data (long runs allowed, asymmetric transition densities, a
    short counter for fast acquisition) after the Sonntag–Leonowich DPLL
    use-case of reference [1]. *)

val low_jitter_interpolator : t
(** Fine phase resolution (32 phases) and small noise, after the Larsson
    phase-selection/interpolation architecture of reference [2]. *)

val all : t list

val find : string -> t option
(** Lookup by [name]. *)

val meets_specification : t -> bool * float
(** Run the analysis: [(passes, ber)]. *)

val pp : Format.formatter -> t -> unit

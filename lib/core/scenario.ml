type t = {
  name : string;
  description : string;
  config : Config.t;
  drift_mean : float;
  drift_max : int;
  ber_specification : float;
}

let sonet_multiplexer =
  {
    name = "sonet-multiplexer";
    description =
      "SONET-type multiplexer link: scrambled data (p = 1/2, run limit 8), 16-phase \
       selector, counter length 8, nominal eye";
    config = Config.default;
    drift_mean = 0.05;
    drift_max = 2;
    ber_specification = 1e-10;
  }

let sonet_multiplexer_noisy =
  {
    name = "sonet-multiplexer-noisy";
    description =
      "the same multiplexer with supply/substrate interference widening the effective \
       eye-opening jitter 25% - the paper's failing prototype, delivering a BER more than \
       an order of magnitude below the specification";
    config = { Config.default with Config.sigma_w = 0.075 };
    drift_mean = 0.05;
    drift_max = 2;
    ber_specification = 1e-10;
  }

let burst_mode_retimer =
  {
    name = "burst-mode-retimer";
    description =
      "burst-mode data retimer (Sonntag-Leonowich style): long runs (up to 16), asymmetric \
       transition densities, short counter for fast acquisition";
    config =
      Config.create_exn
        {
          Config.default with
          Config.counter_length = 3;
          max_run = 16;
          p01 = 0.4;
          p10 = 0.6;
          sigma_w = 0.05;
        };
    drift_mean = 0.05;
    drift_max = 2;
    ber_specification = 1e-9;
  }

let low_jitter_interpolator =
  {
    name = "low-jitter-interpolator";
    description =
      "fine phase interpolation (Larsson style): 32 selectable phases on a 256-bin grid, \
       small eye jitter, slow drift";
    config =
      Config.create_exn
        {
          Config.default with
          Config.grid_points = 256;
          n_phases = 32;
          sigma_w = 0.04;
          nr = Prob.Jitter.drift ~max_steps:2 ~mean_steps:0.05 ();
        };
    drift_mean = 0.05;
    drift_max = 2;
    ber_specification = 1e-12;
  }

let all = [ sonet_multiplexer; sonet_multiplexer_noisy; burst_mode_retimer; low_jitter_interpolator ]

let find name = List.find_opt (fun s -> s.name = name) all

let meets_specification t =
  let model = Model.build t.config in
  let result, _ = Ber.analyze model in
  (result.Ber.ber <= t.ber_specification, result.Ber.ber)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %s@,BER specification: %.0e@,%a@]" t.name t.description
    t.ber_specification Config.pp t.config

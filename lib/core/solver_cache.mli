(** Structure-keyed cache of multigrid solver setups.

    The sweeps of the paper's headline experiments solve many chains that
    share one sparsity structure (a [sigma_w] continuation) or a handful of
    structures (a counter sweep). {!Markov.Multigrid.setup} is pure symbolic
    work — patterns, transpose maps, levels, workspaces — so it is cached per
    structure and only the numeric {!Markov.Multigrid.solve_with} phase runs
    per point.

    Hit/miss/eviction counts are exposed both per cache (for assertions) and
    through the global [Cdr_obs] metrics registry as the
    ["solver_cache.hits"] / ["solver_cache.misses"] /
    ["solver_cache.evictions"] counters, with the current entry count in the
    ["solver_cache.size"] gauge (the gauge reflects the most recently mutated
    cache — in the analysis service there is exactly one, process-wide). *)

(** Setups own mutable workspaces, so a cache must not be shared across
    concurrently solving workers: give each sweep worker its own (the warm
    sweep runner threads one per chunk). *)

type t

val create : ?max_entries:int -> unit -> t
(** LRU cache holding at most [max_entries] setups (default 8). Raises
    [Invalid_argument] when [max_entries < 1]. *)

val setup :
  t ->
  ?smoother:Markov.Multigrid.smoother ->
  hierarchy:(unit -> Markov.Partition.t list) ->
  Markov.Chain.t ->
  Markov.Multigrid.setup
(** The cached setup matching the chain's sparsity pattern {e and} the
    requested smoother (default [`Lex]; a [`Lex] setup carries no colorings,
    so the smoother is part of the cache key), or a fresh one built from
    [hierarchy ()] (only evaluated on a miss) and inserted. The returned
    setup is moved to the front of the LRU order. *)

val set_request_key : t -> string option -> unit
(** Attach a request-attribution key to subsequent {!setup} calls: while set,
    every hit/miss/eviction is {e additionally} recorded under the labeled
    series [solver_cache.*{key=K}] (the unlabeled totals are always kept).
    Label cardinality is bounded process-wide: after 16 distinct keys, new
    ones collapse into [key=other] so a hostile or long-tailed workload
    cannot grow the registry without bound. [None] turns attribution off. *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Setups dropped off the LRU tail because the cache was full. *)

val length : t -> int
(** Number of cached setups. *)

type point = { config : Config.t; report : Report.t }

let point ~attr_name ~attr_value config solver =
  Cdr_obs.Span.with_ ~name:"sweep.point" ~attrs:[ (attr_name, attr_value) ] @@ fun () ->
  Cdr_obs.Metrics.incr "sweep.points";
  { config; report = Report.run ?solver config }

(* One Report.run per pool slot: the sweep point is the parallel unit, so the
   solver inside each point runs serially (handing the pool down as well
   would only contend with the point-level batch). Order is preserved and
   every point is a self-contained solve, so the point list is identical for
   any job count. *)
let map_points ?pool f values =
  match pool with
  | None -> List.map f values
  | Some pool -> Cdr_par.Pool.map_list pool f values

let counter_lengths ?solver ?pool base lengths =
  map_points ?pool
    (fun k ->
      let config = Config.create_exn { base with Config.counter_length = k } in
      point ~attr_name:"counter" ~attr_value:(string_of_int k) config solver)
    lengths

let sigma_w_values ?solver ?pool base sigmas =
  map_points ?pool
    (fun sigma ->
      let config = Config.create_exn { base with Config.sigma_w = sigma } in
      point ~attr_name:"sigma_w" ~attr_value:(string_of_float sigma) config solver)
    sigmas

let optimal_of_points = function
  | [] -> invalid_arg "Sweep.optimal_of_points: no points"
  | first :: rest ->
      let best =
        List.fold_left
          (fun acc p -> if p.report.Report.ber < acc.report.Report.ber then p else acc)
          first rest
      in
      (best.config.Config.counter_length, best.report.Report.ber)

let optimal_counter ?solver ?pool base lengths =
  match lengths with
  | [] -> invalid_arg "Sweep.optimal_counter: no candidate lengths"
  | _ -> optimal_of_points (counter_lengths ?solver ?pool base lengths)

let pp_points ppf points =
  Format.fprintf ppf "@[<v>%-8s %-8s %-12s %-10s %-8s %s@,"
    "counter" "sigma_w" "BER" "size" "iter" "solve(s)";
  List.iter
    (fun { config; report } ->
      Format.fprintf ppf "%-8d %-8.3g %-12.3e %-10d %-8d %.2f@," config.Config.counter_length
        config.Config.sigma_w report.Report.ber report.Report.size report.Report.iterations
        report.Report.solve_seconds)
    points;
  Format.fprintf ppf "@]"

type point = { config : Config.t; report : Report.t }

type strategy = Context.strategy = { warm_start : bool; reuse_setup : bool }

let cold = Context.cold
let warm = Context.warm

(* A sweep point's solve is always serial (the point is the parallel unit)
   and owns its own warm-start state, so only the scalar knobs of the
   caller's context — smoother, tolerance, cancellation — flow into it. *)
let point_ctx ctx =
  { ctx with Context.pool = None; trace = None; init = None; cache = None }

let point ~ctx ~attr_name ~attr_value config solver =
  Cdr_obs.Span.with_ ~name:"sweep.point" ~attrs:[ (attr_name, attr_value) ] @@ fun () ->
  Cdr_obs.Metrics.incr "sweep.points";
  { config; report = Report.run ?solver ~ctx:(point_ctx ctx) config }

(* One Report.run per pool slot: the sweep point is the parallel unit, so the
   solver inside each point runs serially (handing the pool down as well
   would only contend with the point-level batch). Order is preserved and
   every point is a self-contained solve, so the point list is identical for
   any job count. *)
let map_points ?pool f values =
  match pool with
  | None -> List.map f values
  | Some pool -> Cdr_par.Pool.map_list pool f values

(* Split into at most [k] contiguous chunks over the same fixed grid the
   sparse kernels use, so the chunk boundaries depend on the job count only
   through [k]. *)
let chunk_list k l =
  let n = List.length l in
  if n = 0 then []
  else begin
    let k = max 1 (min k n) in
    let arr = Array.of_list l in
    List.init k (fun c ->
        let lo = c * n / k and hi = (((c + 1) * n / k) - 1) in
        Array.to_list (Array.sub arr lo (hi - lo + 1)))
  end

(* Secant predictor for the continuation: extrapolate the next stationary
   vector linearly from the last two along the sweep parameter. Negative
   extrapolated entries are clamped to zero (the solvers expect a density);
   the prediction only sets the starting point, never the convergence test. *)
let predict ~v ~v1 ~pi1 ~v2 ~pi2 =
  let n = Array.length pi1 in
  if Array.length pi2 <> n || v1 = v2 then pi1
  else begin
    let t = (v -. v1) /. (v1 -. v2) in
    Array.init n (fun i -> Float.max 0.0 (pi1.(i) +. (t *. (pi1.(i) -. pi2.(i)))))
  end

(* Continuation mode: points are processed in parameter order so that
   adjacent points — whose stationary densities nearly coincide — are
   neighbors in the schedule. Each worker takes one contiguous chunk and
   threads through it (a) the previous point's model, so [Model.rebuild] can
   renumber the cached sparsity pattern in place, (b) a secant extrapolation
   of the previous points' stationary vectors as the next solve's initial
   iterate, and (c) a structure-keyed [Solver_cache] of multigrid setups.
   Under [?pool] the chunks run in parallel and warm-starting happens within
   each worker's chunk; results return in the caller's original order. *)
let map_points_continuation ?solver ~ctx ~compare ~attr_name ~attr_of ~param_of ~config_of
    values =
  let strategy = ctx.Context.strategy and pool = ctx.Context.pool in
  let indexed = List.mapi (fun i v -> (i, v)) values in
  let sorted = List.stable_sort (fun (_, a) (_, b) -> compare a b) indexed in
  let jobs = match pool with None -> 1 | Some p -> Cdr_par.Pool.jobs p in
  let run_chunk chunk =
    let cache = if strategy.reuse_setup then Some (Solver_cache.create ()) else None in
    let prev = ref None and prev2 = ref None in
    List.map
      (fun (idx, v) ->
        let config = Config.create_exn (config_of v) in
        Cdr_obs.Span.with_ ~name:"sweep.point" ~attrs:[ (attr_name, attr_of v) ] @@ fun () ->
        Cdr_obs.Metrics.incr "sweep.points";
        let model =
          match !prev with
          | Some (prev_model, _, _) when strategy.reuse_setup ->
              fst (Model.rebuild prev_model config)
          | Some _ | None -> Model.build config
        in
        let init =
          if not strategy.warm_start then None
          else
            match (!prev, !prev2) with
            | Some (_, pi1, v1), Some (pi2, v2) ->
                Some (predict ~v:(param_of v) ~v1 ~pi1 ~v2 ~pi2)
            | Some (_, pi1, _), None -> Some pi1
            | None, _ -> None
        in
        (* the chunk owns its warm-start state: the per-point init and the
           per-chunk setup cache replace whatever the caller's context holds
           (a cache shared across chunks would race — setups own mutable
           workspaces) *)
        let pctx = { (point_ctx ctx) with Context.init; cache } in
        let report, solution = Report.run_model ?solver ~ctx:pctx model in
        (match !prev with Some (_, pi1, v1) -> prev2 := Some (pi1, v1) | None -> ());
        prev := Some (model, solution.Markov.Solution.pi, param_of v);
        (idx, { config; report }))
      chunk
  in
  let chunks = chunk_list jobs sorted in
  let chunk_results =
    match pool with
    | None -> List.map run_chunk chunks
    | Some pool -> Cdr_par.Pool.map_list pool run_chunk chunks
  in
  List.concat chunk_results
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  |> List.map snd

let counter_lengths ?solver ?smoother ?pool ?strategy ?(ctx = Context.default) base lengths =
  let ctx = Context.override ?smoother ?pool ?strategy ctx in
  let strategy = ctx.Context.strategy in
  if (not strategy.warm_start) && not strategy.reuse_setup then
    map_points ?pool:ctx.Context.pool
      (fun k ->
        let config = Config.create_exn { base with Config.counter_length = k } in
        point ~ctx ~attr_name:"counter" ~attr_value:(string_of_int k) config solver)
      lengths
  else
    map_points_continuation ?solver ~ctx ~compare:Stdlib.compare ~attr_name:"counter"
      ~attr_of:string_of_int ~param_of:float_of_int
      ~config_of:(fun k -> { base with Config.counter_length = k })
      lengths

let sigma_w_values ?solver ?smoother ?pool ?strategy ?(ctx = Context.default) base sigmas =
  let ctx = Context.override ?smoother ?pool ?strategy ctx in
  let strategy = ctx.Context.strategy in
  if (not strategy.warm_start) && not strategy.reuse_setup then
    map_points ?pool:ctx.Context.pool
      (fun sigma ->
        let config = Config.create_exn { base with Config.sigma_w = sigma } in
        point ~ctx ~attr_name:"sigma_w" ~attr_value:(string_of_float sigma) config solver)
      sigmas
  else
    map_points_continuation ?solver ~ctx ~compare:Stdlib.compare ~attr_name:"sigma_w"
      ~attr_of:string_of_float ~param_of:Fun.id
      ~config_of:(fun sigma -> { base with Config.sigma_w = sigma })
      sigmas

let optimal_of_points = function
  | [] -> invalid_arg "Sweep.optimal_of_points: no points"
  | first :: rest ->
      let best =
        List.fold_left
          (fun acc p -> if p.report.Report.ber < acc.report.Report.ber then p else acc)
          first rest
      in
      (best.config.Config.counter_length, best.report.Report.ber)

let optimal_counter ?solver ?smoother ?pool ?strategy ?ctx base lengths =
  match lengths with
  | [] -> invalid_arg "Sweep.optimal_counter: no candidate lengths"
  | _ -> optimal_of_points (counter_lengths ?solver ?smoother ?pool ?strategy ?ctx base lengths)

let pp_points ppf points =
  Format.fprintf ppf "@[<v>%-8s %-8s %-12s %-10s %-8s %s@,"
    "counter" "sigma_w" "BER" "size" "iter" "solve(s)";
  List.iter
    (fun { config; report } ->
      Format.fprintf ppf "%-8d %-8.3g %-12.3e %-10d %-8d %.2f@," config.Config.counter_length
        config.Config.sigma_w report.Report.ber report.Report.size report.Report.iterations
        report.Report.solve_seconds)
    points;
  Format.fprintf ppf "@]"

let max_direct_size = 512

(* Standard GTH: eliminate states n-1 .. 1, folding each eliminated state's
   transition mass onto the remaining states, then back-substitute. Division
   is by the *off-diagonal row mass* (never by 1 - p_ii), which keeps the
   computation subtraction-free. *)
let solve_dense p0 =
  let n = Linalg.Mat.rows p0 in
  if Linalg.Mat.cols p0 <> n then invalid_arg "Gth.solve_dense: matrix not square";
  if n = 0 then [||]
  else begin
    let p = Linalg.Mat.to_arrays p0 in
    (* exit.(k) is the off-diagonal mass of row k in the chain censored on
       {0..k}; the balance equation pi_k * exit_k = inflow_k drives the
       back-substitution *)
    let exit = Array.make n 1.0 in
    for k = n - 1 downto 1 do
      let s = ref 0.0 in
      for j = 0 to k - 1 do
        s := !s +. p.(k).(j)
      done;
      if !s <= 0.0 then failwith "Gth.solve_dense: reducible chain (no exit from eliminated block)";
      exit.(k) <- !s;
      for j = 0 to k - 1 do
        p.(k).(j) <- p.(k).(j) /. !s
      done;
      for i = 0 to k - 1 do
        let pik = p.(i).(k) in
        if pik > 0.0 then
          for j = 0 to k - 1 do
            p.(i).(j) <- p.(i).(j) +. (pik *. p.(k).(j))
          done
      done
    done;
    let pi = Array.make n 0.0 in
    pi.(0) <- 1.0;
    for k = 1 to n - 1 do
      let acc = ref 0.0 in
      for i = 0 to k - 1 do
        acc := !acc +. (pi.(i) *. p.(i).(k))
      done;
      pi.(k) <- !acc /. exit.(k)
    done;
    let total = Linalg.Vec.sum pi in
    Linalg.Vec.scale_in_place (1.0 /. total) pi;
    pi
  end

let solve ?trace chain =
  let pi = solve_dense (Sparse.Csr.to_dense (Chain.tpm chain)) in
  (match trace with
  | Some t -> Cdr_obs.Trace.record t ~iter:1 ~residual:(Chain.residual chain pi)
  | None -> ());
  pi

(** Grassmann–Taksar–Heyman (GTH) elimination: a direct, subtraction-free
    stationary-distribution solver.

    GTH is the numerically safe way to solve small chains exactly — all
    operations are additions/multiplications/divisions of non-negative
    quantities, so no cancellation occurs even for nearly-uncoupled chains.
    O(n^3) dense; used for the coarsest multigrid level and as the reference
    oracle in tests. *)

val solve_dense : Linalg.Mat.t -> Linalg.Vec.t
(** Stationary distribution of a row-stochastic dense matrix. Requires the
    chain to be irreducible; raises [Invalid_argument] on a non-square input
    and [Failure] when elimination encounters an isolated state (reducible
    chain). *)

val solve : ?trace:Cdr_obs.Trace.t -> Chain.t -> Linalg.Vec.t
(** Sparse front end to {!solve_dense}. GTH is direct, so with [?trace] it
    records exactly one sample ([iter = 1]) carrying the achieved l1
    stationarity residual (the residual is only measured when a trace is
    supplied). *)

val max_direct_size : int
(** Advisory size bound (number of states) under which the dense O(n^3) solve
    is considered cheap; multigrid coarsens down to this. *)

type t = { pi : Linalg.Vec.t; iterations : int; residual : float; converged : bool }

let make_residual ~residual ~pi ~iterations ~tol =
  Linalg.Vec.normalize_l1 pi;
  let r = residual pi in
  { pi; iterations; residual = r; converged = r <= tol }

let make ~chain ~pi ~iterations ~tol =
  make_residual ~residual:(fun pi -> Chain.residual chain pi) ~pi ~iterations ~tol

let pp ppf t =
  Format.fprintf ppf "iterations=%d residual=%.3e converged=%b" t.iterations t.residual t.converged

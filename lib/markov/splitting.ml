type method_ = Jacobi | Gauss_seidel | Sor of float

(* diagonal of P extracted from its transpose's rows *)
let diagonal pt =
  Array.init (Sparse.Csr.rows pt) (fun i -> Sparse.Csr.get pt i i)

let denominators diag =
  Array.map
    (fun d ->
      let denom = 1.0 -. d in
      (* a self-loop probability of 1 means an absorbing state; clamp to keep
         the sweep finite, irreducibility checks catch the modeling error *)
      if denom < 1e-300 then 1e-300 else denom)
    diag

(* Damped Jacobi over any operator. The method needs only the diagonal and
   the P^T x product, both of which every backend supplies; with the CSR
   backend this is the historical transpose-then-row-dot path, bitwise. *)
let solve_op ?(tol = 1e-12) ?(max_iter = 100_000) ?init ?trace ?pool op =
  let n = Cdr_op.dim op in
  let diag = Cdr_op.diag op in
  let denom = denominators diag in
  let x =
    match init with
    | Some v -> Linalg.Vec.copy v
    | None -> Array.make n (1.0 /. float_of_int n)
  in
  Linalg.Vec.normalize_l1 x;
  let prev = Linalg.Vec.create n in
  let iterations = ref 0 in
  let continue_ = ref (n > 0) in
  while !continue_ && !iterations < max_iter do
    Array.blit x 0 prev 0 n;
    (* y = P^T x computed against the frozen previous iterate; the sweep
       is damped by 1/2 because pure Jacobi has iteration-matrix spectrum
       touching -1 on periodic chains (it oscillates instead of
       converging); damping maps the spectrum into the unit disk *)
    let y = Cdr_op.mul_vec ?pool op prev in
    for i = 0 to n - 1 do
      let jacobi_value = (y.(i) -. (diag.(i) *. prev.(i))) /. denom.(i) in
      x.(i) <- 0.5 *. (prev.(i) +. jacobi_value)
    done;
    Linalg.Vec.normalize_l1 x;
    incr iterations;
    let diff = Linalg.Vec.dist_l1 x prev in
    (match trace with
    | Some t -> Cdr_obs.Trace.record t ~iter:!iterations ~residual:diff
    | None -> ());
    if diff <= tol then continue_ := false
  done;
  let residual pi =
    let y = Linalg.Vec.create n in
    Cdr_op.vec_mul_into op pi y;
    Linalg.Vec.dist_l1 y pi
  in
  Solution.make_residual ~residual ~pi:x ~iterations:!iterations ~tol

let solve ~method_ ?(tol = 1e-12) ?(max_iter = 100_000) ?init ?trace ?pool chain =
  match method_ with
  | Sor omega when omega <= 0.0 || omega >= 2.0 ->
      invalid_arg "Splitting.solve: SOR omega must lie in (0, 2)"
  | Jacobi ->
      solve_op ~tol ~max_iter ?init ?trace ?pool (Cdr_op.Csr_backend.create (Chain.tpm chain))
  | Gauss_seidel | Sor _ ->
      let pt = Sparse.Csr.transpose (Chain.tpm chain) in
      let diag = diagonal pt in
      let denom = denominators diag in
      let n = Chain.n_states chain in
      let x = match init with Some v -> Linalg.Vec.copy v | None -> Chain.uniform chain in
      Linalg.Vec.normalize_l1 x;
      let prev = Linalg.Vec.create n in
      let iterations = ref 0 in
      let continue_ = ref (n > 0) in
      while !continue_ && !iterations < max_iter do
        Array.blit x 0 prev 0 n;
        (match method_ with
        | Jacobi -> assert false
        | Gauss_seidel ->
            for i = 0 to n - 1 do
              let acc = ref 0.0 in
              Sparse.Csr.iter_row pt i (fun j v -> if j <> i then acc := !acc +. (v *. x.(j)));
              x.(i) <- !acc /. denom.(i)
            done
        | Sor omega ->
            for i = 0 to n - 1 do
              let acc = ref 0.0 in
              Sparse.Csr.iter_row pt i (fun j v -> if j <> i then acc := !acc +. (v *. x.(j)));
              x.(i) <- ((1.0 -. omega) *. x.(i)) +. (omega *. !acc /. denom.(i))
            done);
        Linalg.Vec.normalize_l1 x;
        incr iterations;
        let diff = Linalg.Vec.dist_l1 x prev in
        (match trace with
        | Some t -> Cdr_obs.Trace.record t ~iter:!iterations ~residual:diff
        | None -> ());
        if diff <= tol then continue_ := false
      done;
      Solution.make ~chain ~pi:x ~iterations:!iterations ~tol

let sweeps_gauss_seidel ~transposed x n_sweeps =
  let n = Linalg.Vec.dim x in
  let diag = diagonal transposed in
  let denom = denominators diag in
  for _ = 1 to n_sweeps do
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      Sparse.Csr.iter_row transposed i (fun j v -> if j <> i then acc := !acc +. (v *. x.(j)));
      x.(i) <- !acc /. denom.(i)
    done;
    Linalg.Vec.normalize_l1 x
  done

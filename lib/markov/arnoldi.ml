(* Arnoldi iteration for the dominant left eigenvector of P, i.e. the
   dominant (eigenvalue-1) right eigenvector of A = P^T.

   One restart:
     1. build V = [v_1 .. v_m] orthonormal, H upper Hessenberg with
        A V_m = V_m H_m + h_{m+1,m} v_{m+1} e_m^T  (modified Gram-Schmidt);
     2. find the eigenvector y of H_m for the eigenvalue nearest 1 by
        inverse iteration on (H_m - theta I) with theta = 1 - epsilon;
     3. lift x = V_m y, clip negatives (the stationary vector is
        non-negative; clipping acts as a cheap projection), normalize,
        restart from x. *)

let hessenberg_eigvec h m =
  (* inverse iteration for the eigenvalue of the m x m Hessenberg block
     closest to 1 *)
  let shift = 1.0 -. 1e-8 in
  let a = Linalg.Mat.init ~rows:m ~cols:m (fun i j -> h.(i).(j) -. if i = j then shift else 0.0) in
  let y = ref (Array.make m (1.0 /. sqrt (float_of_int m))) in
  (try
     let lu = Linalg.Lu.factorize a in
     for _ = 1 to 8 do
       let z = Linalg.Lu.solve lu !y in
       let norm = Linalg.Vec.nrm2 z in
       if norm > 0.0 && Float.is_finite norm then begin
         Linalg.Vec.scale_in_place (1.0 /. norm) z;
         y := z
       end
     done
   with Linalg.Lu.Singular _ ->
     (* shift hit an eigenvalue exactly: the current iterate is fine *)
     ());
  !y

let solve ?(tol = 1e-12) ?(max_restarts = 200) ?(subspace = 20) ?init ?trace chain =
  let n = Chain.n_states chain in
  let m = max 2 (min subspace n) in
  let pt = Sparse.Csr.transpose (Chain.tpm chain) in
  let apply x = Sparse.Csr.mul_vec pt x in
  let x = match init with Some v -> Linalg.Vec.copy v | None -> Chain.uniform chain in
  Linalg.Vec.normalize_l1 x;
  let applications = ref 0 in
  let restarts = ref 0 in
  let continue_ = ref (n > 0) in
  while !continue_ && !restarts < max_restarts do
    (* Arnoldi factorization from the current iterate *)
    let v = Array.make (m + 1) [||] in
    let h = Array.make_matrix m m 0.0 in
    let x2 = Linalg.Vec.nrm2 x in
    v.(0) <- Linalg.Vec.scale (1.0 /. x2) x;
    let breakdown = ref None in
    let k = ref 0 in
    while !breakdown = None && !k < m do
      let j = !k in
      let w = apply v.(j) in
      incr applications;
      (* modified Gram-Schmidt *)
      for i = 0 to j do
        let hij = Linalg.Vec.dot v.(i) w in
        h.(i).(j) <- hij;
        Linalg.Vec.axpy ~alpha:(-.hij) ~x:v.(i) ~y:w
      done;
      let norm = Linalg.Vec.nrm2 w in
      if j + 1 < m then h.(j + 1).(j) <- norm;
      if norm < 1e-14 then breakdown := Some (j + 1)
      else begin
        Linalg.Vec.scale_in_place (1.0 /. norm) w;
        v.(j + 1) <- w
      end;
      incr k
    done;
    let dim = match !breakdown with Some d -> d | None -> m in
    let y = hessenberg_eigvec h dim in
    (* lift back: x = V y, kept *signed* across restarts — clipping inside
       the loop would project out the correction directions Krylov needs *)
    Linalg.Vec.fill x 0.0;
    for i = 0 to dim - 1 do
      Linalg.Vec.axpy ~alpha:y.(i) ~x:v.(i) ~y:x
    done;
    let pos = ref 0.0 and neg = ref 0.0 in
    Array.iter (fun c -> if c >= 0.0 then pos := !pos +. c else neg := !neg -. c) x;
    if !neg > !pos then Linalg.Vec.scale_in_place (-1.0) x;
    let norm = Linalg.Vec.nrm2 x in
    if norm > 0.0 && Float.is_finite norm then Linalg.Vec.scale_in_place (1.0 /. norm) x
    else Array.iteri (fun i _ -> x.(i) <- 1.0 /. float_of_int n) x;
    incr restarts;
    (* convergence is judged on the cleaned (non-negative, l1-normalized)
       candidate *)
    let cleaned = Array.map (fun c -> Float.max c 0.0) x in
    (match Linalg.Vec.normalize_l1 cleaned with
    | () ->
        let residual = Chain.residual chain cleaned in
        (match trace with
        | Some t -> Cdr_obs.Trace.record t ~iter:!applications ~residual
        | None -> ());
        if residual <= tol then continue_ := false
    | exception Invalid_argument _ -> ())
  done;
  let cleaned = Array.map (fun c -> Float.max c 0.0) x in
  (try Linalg.Vec.normalize_l1 cleaned
   with Invalid_argument _ -> Array.iteri (fun i _ -> cleaned.(i) <- 1.0 /. float_of_int n) cleaned);
  Solution.make ~chain ~pi:cleaned ~iterations:!applications ~tol

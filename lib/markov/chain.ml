type t = { tpm : Sparse.Csr.t }

exception Not_stochastic of string

let of_csr ?(tol = 1e-9) m =
  if Sparse.Csr.rows m <> Sparse.Csr.cols m then
    raise (Not_stochastic (Printf.sprintf "matrix is %dx%d, not square" (Sparse.Csr.rows m) (Sparse.Csr.cols m)));
  Sparse.Csr.iter m (fun i j v ->
      if v < 0.0 || not (Float.is_finite v) then
        raise (Not_stochastic (Printf.sprintf "entry (%d,%d) = %g is not a probability" i j v)));
  let sums = Sparse.Csr.row_sums m in
  Array.iteri
    (fun i s ->
      if abs_float (s -. 1.0) > tol then
        raise (Not_stochastic (Printf.sprintf "row %d sums to %.12g" i s)))
    sums;
  (* exact renormalization: iterative solvers assume row sums of exactly 1 *)
  let inv = Array.map (fun s -> 1.0 /. s) sums in
  { tpm = Sparse.Csr.scale_rows m inv }

let of_dense ?tol m = of_csr ?tol (Sparse.Csr.of_dense m)

let n_states c = Sparse.Csr.rows c.tpm

let tpm c = c.tpm

let step ?pool c pi = Sparse.Csr.vec_mul ?pool pi c.tpm

let step_into ?pool c pi out = Sparse.Csr.vec_mul_into ?pool pi c.tpm out

let residual ?pool c pi =
  let next = step ?pool c pi in
  Linalg.Vec.dist_l1 next pi

let uniform c =
  let n = n_states c in
  Array.make n (1.0 /. float_of_int n)

let transition_prob c i j = Sparse.Csr.get c.tpm i j

let reachable_all m start =
  let n = Sparse.Csr.rows m in
  let seen = Array.make n false in
  let stack = ref [ start ] in
  seen.(start) <- true;
  let count = ref 1 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        Sparse.Csr.iter_row m i (fun j _ ->
            if not seen.(j) then begin
              seen.(j) <- true;
              incr count;
              stack := j :: !stack
            end)
  done;
  !count = n

let is_irreducible c =
  n_states c > 0 && reachable_all c.tpm 0 && reachable_all (Sparse.Csr.transpose c.tpm) 0

let pp_stats ppf c = Format.fprintf ppf "chain: %a" Sparse.Csr.pp_stats c.tpm

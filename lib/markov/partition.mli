(** State-space partitions (lumping maps) for aggregation and multigrid.

    A partition of [n] fine states into [m] blocks is stored as a surjective
    map [fine -> block]. *)

type t = private { map : int array; n_fine : int; n_coarse : int }

val create : int array -> t
(** [create map] validates that block labels are exactly [0 .. max]
    (surjective, non-negative). Raises [Invalid_argument] otherwise. *)

val identity : int -> t

val pair_consecutive : int -> t
(** [pair_consecutive n] lumps states [2k] and [2k+1] (the last state stays
    alone when [n] is odd) — the generic version of the paper's "lump the two
    states corresponding to consecutive discretized phase error values". *)

val block : t -> int -> int
(** Block of a fine state. *)

val block_size : t -> int -> int

val blocks : t -> int list array
(** Members of each block, ascending. *)

val color : n:int -> (int -> (int -> unit) -> unit) -> t
(** [color ~n neighbors] greedily colors the [n]-vertex graph whose
    adjacency is enumerated by [neighbors i f] (calling [f j] per neighbor;
    self-loops are ignored) and returns the coloring as a partition whose
    blocks are the color classes: vertices sharing a block are pairwise
    non-adjacent. Vertices are colored in index order with the smallest
    available color, so the result is deterministic and the block labels are
    contiguous from 0. The multicolor Gauss–Seidel smoother
    ({!Multigrid.setup} with [`Colored]) colors each level's symmetrized
    sparsity graph this way, once, symbolically. Raises [Invalid_argument]
    on an out-of-range neighbor. *)

val compose : t -> t -> t
(** [compose fine coarse] first applies [fine] (n -> m) then [coarse]
    (m -> k), yielding an n -> k partition. *)

val restrict : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Sum fine entries within each block (the aggregation operator). *)

val prolong : t -> coarse:Linalg.Vec.t -> weights:Linalg.Vec.t -> Linalg.Vec.t
(** Disaggregation: distribute each block's coarse mass over its members
    proportionally to [weights] (uniformly within a block whose weight
    vanishes). *)

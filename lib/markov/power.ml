(* The operator-generic iteration. [Chain]-based [solve] routes through this
   with a CSR backend whose step kernel is the exact [Csr.vec_mul_into] call
   [Chain.step_into] made before the abstraction existed — same init, same
   per-iteration arithmetic, same final residual measurement, so the refactor
   changes no result bits. *)
let solve_op ?(tol = 1e-12) ?(max_iter = 100_000) ?init ?trace ?pool op =
  let n = Cdr_op.dim op in
  let pi =
    ref
      (match init with
      | Some v -> Linalg.Vec.copy v
      | None -> Array.make n (1.0 /. float_of_int n))
  in
  Linalg.Vec.normalize_l1 !pi;
  let next = Linalg.Vec.create n in
  let scratch = ref next in
  let iterations = ref 0 in
  let continue_ = ref (n > 0) in
  while !continue_ && !iterations < max_iter do
    Cdr_op.vec_mul_into ?pool op !pi !scratch;
    Linalg.Vec.normalize_l1 !scratch;
    let diff = Linalg.Vec.dist_l1 !scratch !pi in
    let tmp = !pi in
    pi := !scratch;
    scratch := tmp;
    incr iterations;
    (match trace with
    | Some t -> Cdr_obs.Trace.record t ~iter:!iterations ~residual:diff
    | None -> ());
    if diff <= tol then continue_ := false
  done;
  let residual pi =
    let y = Linalg.Vec.create n in
    Cdr_op.vec_mul_into op pi y;
    Linalg.Vec.dist_l1 y pi
  in
  Solution.make_residual ~residual ~pi:!pi ~iterations:!iterations ~tol

let solve ?tol ?max_iter ?init ?trace ?pool chain =
  solve_op ?tol ?max_iter ?init ?trace ?pool (Cdr_op.Csr_backend.create (Chain.tpm chain))

let sweeps chain pi n =
  let cur = ref (Linalg.Vec.copy pi) in
  let other = ref (Linalg.Vec.create (Linalg.Vec.dim pi)) in
  for _ = 1 to n do
    Chain.step_into chain !cur !other;
    Linalg.Vec.normalize_l1 !other;
    let tmp = !cur in
    cur := !other;
    other := tmp
  done;
  !cur

let solve ?(tol = 1e-12) ?(max_iter = 100_000) ?init ?trace ?pool chain =
  let pi = ref (match init with Some v -> Linalg.Vec.copy v | None -> Chain.uniform chain) in
  Linalg.Vec.normalize_l1 !pi;
  let next = Linalg.Vec.create (Chain.n_states chain) in
  let scratch = ref next in
  let iterations = ref 0 in
  let continue_ = ref (Chain.n_states chain > 0) in
  while !continue_ && !iterations < max_iter do
    Chain.step_into ?pool chain !pi !scratch;
    Linalg.Vec.normalize_l1 !scratch;
    let diff = Linalg.Vec.dist_l1 !scratch !pi in
    let tmp = !pi in
    pi := !scratch;
    scratch := tmp;
    incr iterations;
    (match trace with
    | Some t -> Cdr_obs.Trace.record t ~iter:!iterations ~residual:diff
    | None -> ());
    if diff <= tol then continue_ := false
  done;
  Solution.make ~chain ~pi:!pi ~iterations:!iterations ~tol

let sweeps chain pi n =
  let cur = ref (Linalg.Vec.copy pi) in
  let other = ref (Linalg.Vec.create (Linalg.Vec.dim pi)) in
  for _ = 1 to n do
    Chain.step_into chain !cur !other;
    Linalg.Vec.normalize_l1 !other;
    let tmp = !cur in
    cur := !other;
    other := tmp
  done;
  !cur

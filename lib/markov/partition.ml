type t = { map : int array; n_fine : int; n_coarse : int }

let create map =
  let n_fine = Array.length map in
  if n_fine = 0 then { map; n_fine = 0; n_coarse = 0 }
  else begin
    let max_label = Array.fold_left max 0 map in
    Array.iter (fun b -> if b < 0 then invalid_arg "Partition.create: negative block label") map;
    let seen = Array.make (max_label + 1) false in
    Array.iter (fun b -> seen.(b) <- true) map;
    if not (Array.for_all Fun.id seen) then
      invalid_arg "Partition.create: block labels are not contiguous from 0";
    { map = Array.copy map; n_fine; n_coarse = max_label + 1 }
  end

let identity n = create (Array.init n Fun.id)

let pair_consecutive n = create (Array.init n (fun i -> i / 2))

let block t i = t.map.(i)

let block_size t b =
  let count = ref 0 in
  Array.iter (fun b' -> if b = b' then incr count) t.map;
  !count

let blocks t =
  let members = Array.make t.n_coarse [] in
  for i = t.n_fine - 1 downto 0 do
    members.(t.map.(i)) <- i :: members.(t.map.(i))
  done;
  members

(* Greedy vertex coloring in vertex order: each vertex takes the smallest
   color absent from its already-seen neighborhood. Deterministic (the order
   is 0..n-1, not degree- or hash-driven) and contiguous (color c is only
   introduced when 0..c-1 are all taken by neighbors), so the result is a
   valid partition whose blocks are the color classes. *)
let color ~n neighbors =
  if n = 0 then create [||]
  else begin
    let colors = Array.make n (-1) in
    (* [taken.(c) = i] marks color c as used by a neighbor of vertex i *)
    let taken = Array.make n (-1) in
    for i = 0 to n - 1 do
      neighbors i (fun j ->
          if j < 0 || j >= n then invalid_arg "Partition.color: neighbor out of range";
          if j <> i && colors.(j) >= 0 then taken.(colors.(j)) <- i);
      let c = ref 0 in
      while taken.(!c) = i do
        incr c
      done;
      colors.(i) <- !c
    done;
    create colors
  end

let compose fine coarse =
  if fine.n_coarse <> coarse.n_fine then invalid_arg "Partition.compose: size mismatch";
  create (Array.map (fun b -> coarse.map.(b)) fine.map)

let restrict t x =
  if Array.length x <> t.n_fine then invalid_arg "Partition.restrict: dimension mismatch";
  let out = Array.make t.n_coarse 0.0 in
  Array.iteri (fun i v -> out.(t.map.(i)) <- out.(t.map.(i)) +. v) x;
  out

let prolong t ~coarse ~weights =
  if Array.length coarse <> t.n_coarse then invalid_arg "Partition.prolong: coarse dimension";
  if Array.length weights <> t.n_fine then invalid_arg "Partition.prolong: weights dimension";
  let block_weight = restrict t weights in
  let sizes = Array.make t.n_coarse 0 in
  Array.iter (fun b -> sizes.(b) <- sizes.(b) + 1) t.map;
  Array.init t.n_fine (fun i ->
      let b = t.map.(i) in
      if block_weight.(b) > 0.0 then coarse.(b) *. weights.(i) /. block_weight.(b)
      else coarse.(b) /. float_of_int sizes.(b))

(** Krylov-subspace stationary solver (the "Krylov subspace methods" the
    paper lists alongside the classical iterations).

    Builds an Arnoldi factorization of the column-stochastic operator [P^T]
    and extracts the Ritz vector for the eigenvalue closest to 1. Restarted:
    the Ritz vector seeds the next factorization until the stationarity
    residual meets the tolerance. The small [m x m] Hessenberg eigenproblem
    is solved by inverse iteration with the hand-built LU. *)

val solve :
  ?tol:float ->
  ?max_restarts:int ->
  ?subspace:int ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  Chain.t ->
  Solution.t
(** Defaults: [tol = 1e-12], [max_restarts = 200], [subspace = 20] (Krylov
    dimension per restart). [Solution.iterations] counts operator
    applications. With [?trace], one sample per restart: [iter] is the
    cumulative operator-application count and the residual is the l1
    stationarity residual of the cleaned Ritz candidate. *)

(** Classical matrix splittings for the singular system [pi (I - P) = 0].

    Working on the transposed system [(I - P^T) x = 0], the Jacobi,
    Gauss-Seidel and SOR sweeps all compute, for each state [i],

    [x_i <- ( sum_{j<>i} P_ji x_j ) / (1 - P_ii)]

    differing only in which iterate supplies the [x_j] (previous for Jacobi,
    freshest available for Gauss-Seidel) and in the relaxation blend (SOR).
    See W. J. Stewart, "Introduction to the Numerical Solution of Markov
    Chains" (the paper's reference [4]). *)

type method_ = Jacobi | Gauss_seidel | Sor of float
(** [Jacobi] is damped by 1/2 (pure Jacobi oscillates on periodic chains);
    [Sor omega] requires [0 < omega < 2]. *)

val solve_op :
  ?tol:float ->
  ?max_iter:int ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  Cdr_op.t ->
  Solution.t
(** Damped Jacobi against any {!Cdr_op.t}: the only splitting that needs no
    per-row access to the transpose, just the diagonal and the [P^T x]
    product — so it works matrix-free. With a CSR backend this reproduces
    [solve ~method_:Jacobi] bitwise (same lazily-built transpose, same row
    dots); [solve ~method_:Jacobi] is routed through here. Gauss-Seidel and
    SOR read individual transpose rows mid-sweep and stay CSR-only. *)

val solve :
  method_:method_ ->
  ?tol:float ->
  ?max_iter:int ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  Chain.t ->
  Solution.t
(** Defaults: [tol = 1e-12], [max_iter = 100_000], [init = uniform].
    Raises [Invalid_argument] for an out-of-range SOR parameter. With
    [?trace], one sample per sweep recording the l1 step difference the
    convergence test uses as the residual. [?pool] parallelizes the Jacobi
    sweep's [P^T x] product (deterministically); Gauss-Seidel and SOR keep
    their loop-carried dependency and run serially regardless. *)

val sweeps_gauss_seidel : transposed:Sparse.Csr.t -> Linalg.Vec.t -> int -> unit
(** In-place Gauss-Seidel smoothing given the pre-transposed TPM; used by the
    multigrid cycle where the transpose is computed once per level. *)

(* Two-stage iterative aggregation/disaggregation (IAD, Takahashi-style)
   with a matrix-free fine level.

   {!Multigrid} wants the fine TPM as CSR: its setup transposes every level
   and colors sparsity graphs — exactly the materialization the Kronecker
   backend exists to avoid. Instead of teaching the V-cycle interior about
   operators, this module runs the classical outer IAD loop with the fine
   level represented only by its action and entry enumerator:

     smooth (normalized power sweeps on the operator)
     -> aggregate: A_c(I,J) = sum_{i in I} w_i * sum_{j in J} M(i,j),
        w the within-block normalization of the smoothed iterate
     -> solve the coarse chain exactly, with {!Multigrid} and the remaining
        hierarchy (coarse levels are materialized CSR — at most half the
        fine dimension, and the only CSR this solver ever builds)
     -> disaggregate ({!Partition.prolong} with the smoothed weights)
     -> smooth, measure the fine residual, repeat.

   The aggregated pattern is a function of the operator's structure and the
   partition only, so the first cycle's [Csr.assemble] result is refilled in
   place on every later cycle: the coarse chain keeps physically shared
   structure arrays, [Multigrid.matches] stays O(1), and one coarse setup
   serves the whole solve.

   All of that state — iterate/weight vectors, the assembled pattern, the
   refill buffer, the coarse Multigrid setup — lives in a reusable [setup]
   ([prepare] + [solve_with]), so a service answering repeated queries
   against one operator structure reallocates nothing per request. *)

type stats = {
  cycles : int;
  coarse_states : int;
  coarse_nnz : int;
  smoothing_sweeps : int;
}

let default_hierarchy ~n_coarse =
  Multigrid.default_hierarchy ~n:n_coarse ~coarsest:Gth.max_direct_size

(* Fixed slot grid over coarse rows for the aggregation value pass; rows
   write disjoint [values] segments and each entry accumulates in emission
   order, so pooled refills are bit-identical to serial ones. *)
let coarse_slots n_coarse = min 16 (max 1 (n_coarse / 64))

(* Everything a solve needs beyond the operator values: the partition and
   coarse hierarchy, preallocated iterate/weight vectors, and — once the
   first cycle has run — the aggregated pattern, its refill buffer and the
   coarse {!Multigrid.setup}. Owns mutable workspaces: one solve at a time. *)
type setup = {
  s_n : int;
  s_partition : Partition.t;
  s_hierarchy : Partition.t list;
  s_blocks : int list array;
  s_x : Linalg.Vec.t;
  s_y : Linalg.Vec.t;
  s_weights : Linalg.Vec.t;
  s_block_mass : Linalg.Vec.t;
  mutable s_pattern : Sparse.Csr.t option;
  mutable s_values : Linalg.Vec.t; (* refill buffer, reused across cycles *)
  mutable s_coarse_setup : Multigrid.setup option;
}

let prepare ?coarse_hierarchy ~partition op =
  let n = Cdr_op.dim op in
  if partition.Partition.n_fine <> n then
    invalid_arg "Op_multigrid.prepare: partition does not match the operator dimension";
  let n_coarse = partition.Partition.n_coarse in
  let hierarchy =
    match coarse_hierarchy with Some h -> h | None -> default_hierarchy ~n_coarse
  in
  {
    s_n = n;
    s_partition = partition;
    s_hierarchy = hierarchy;
    s_blocks = Partition.blocks partition;
    s_x = Linalg.Vec.create n;
    s_y = Linalg.Vec.create n;
    s_weights = Linalg.Vec.create n;
    s_block_mass = Linalg.Vec.create n_coarse;
    s_pattern = None;
    s_values = [||];
    s_coarse_setup = None;
  }

let matches s op = Cdr_op.dim op = s.s_n

let solve_with ?(tol = 1e-12) ?(max_cycles = 200) ?(pre_smooth = 2) ?(post_smooth = 2)
    ?(fuse = true) ?init ?trace ?pool ?cancel s op =
  if not (matches s op) then
    invalid_arg "Op_multigrid.solve_with: operator dimension does not match the setup";
  let n = s.s_n in
  let partition = s.s_partition in
  let n_coarse = partition.Partition.n_coarse in
  let map = partition.Partition.map in
  let blocks = s.s_blocks in
  (match init with
  | Some v -> Array.blit v 0 s.s_x 0 n
  | None -> Array.fill s.s_x 0 n (1.0 /. float_of_int n));
  Linalg.Vec.normalize_l1 s.s_x;
  let x = ref s.s_x in
  let y = ref s.s_y in
  let sweeps = ref 0 in
  let phase name f = Cdr_par.Pool.with_phase ~labels:[ ("solver", "iad") ] name f in
  let smooth count =
    phase "smooth" (fun () ->
        for _ = 1 to count do
          Cdr_op.vec_mul_into ?pool op !x !y;
          Linalg.Vec.normalize_l1 !y;
          let tmp = !x in
          x := !y;
          y := tmp;
          incr sweeps
        done)
  in
  (* within-block normalized aggregation weights of the current iterate *)
  let weights = s.s_weights in
  let block_mass = s.s_block_mass in
  let compute_weights () =
    Array.fill block_mass 0 n_coarse 0.0;
    let xv = !x in
    for i = 0 to n - 1 do
      block_mass.(map.(i)) <- block_mass.(map.(i)) +. xv.(i)
    done;
    for bi = 0 to n_coarse - 1 do
      let mass = block_mass.(bi) in
      if mass > 0.0 && Float.is_finite mass then
        List.iter (fun i -> weights.(i) <- xv.(i) /. mass) blocks.(bi)
      else begin
        (* a block the iterate has not reached yet: aggregate uniformly so
           the coarse row stays stochastic *)
        let u = 1.0 /. float_of_int (List.length blocks.(bi)) in
        List.iter (fun i -> weights.(i) <- u) blocks.(bi)
      end
    done
  in
  let coarse_row bi emit =
    List.iter
      (fun i ->
        let w = weights.(i) in
        Cdr_op.iter_row op i (fun j v -> emit map.(j) (w *. v)))
      blocks.(bi)
  in
  (* the first cycle of the first solve assembles the pattern; every later
     cycle refills the hoisted value buffer in place — no per-cycle (or
     per-request) allocation *)
  let build_coarse () =
    compute_weights ();
    match s.s_pattern with
    | None ->
        let m0 = Sparse.Csr.assemble ?pool ~rows:n_coarse ~cols:n_coarse coarse_row in
        s.s_pattern <- Some m0;
        s.s_values <- Array.make (Sparse.Csr.nnz m0) 0.0;
        m0
    | Some m0 ->
        let values = s.s_values in
        Array.fill values 0 (Array.length values) 0.0;
        let slots = coarse_slots n_coarse in
        Cdr_par.Pool.run_slots_opt pool ~slots (fun sl ->
            let lo = n_coarse * sl / slots and hi = (n_coarse * (sl + 1) / slots) - 1 in
            for bi = lo to hi do
              coarse_row bi (fun cj v ->
                  let k = Sparse.Csr.row_index m0 bi cj in
                  values.(k) <- values.(k) +. v)
            done);
        Sparse.Csr.refill m0 values
  in
  let solve_coarse () =
    let chain = Chain.of_csr (phase "aggregate" build_coarse) in
    let setup =
      match s.s_coarse_setup with
      | Some cs when Multigrid.matches cs chain -> cs
      | _ ->
          let cs = Multigrid.setup ~hierarchy:s.s_hierarchy chain in
          s.s_coarse_setup <- Some cs;
          cs
    in
    let coarse_init = Partition.restrict partition !x in
    Linalg.Vec.normalize_l1 coarse_init;
    let sol, _ = Multigrid.solve_with ~tol ~fuse ~init:coarse_init ?pool ?cancel setup chain in
    (sol.Solution.pi, chain)
  in
  let cycles = ref 0 in
  let coarse_nnz = ref 0 in
  let residual_now () =
    phase "residual" (fun () ->
        Cdr_op.vec_mul_into ?pool op !x !y;
        Linalg.Vec.dist_l1 !y !x)
  in
  let continue_ = ref (n > 0) in
  let run_cycles () =
    while !continue_ && !cycles < max_cycles do
      (match cancel with
      | Some f when f () -> raise Multigrid.Cancelled
      | _ -> ());
      smooth pre_smooth;
      let coarse_pi, coarse_chain = solve_coarse () in
      coarse_nnz := Sparse.Csr.nnz (Chain.tpm coarse_chain);
      phase "prolong" (fun () ->
          let lifted = Partition.prolong partition ~coarse:coarse_pi ~weights:!x in
          Linalg.Vec.normalize_l1 lifted;
          Array.blit lifted 0 !x 0 n);
      smooth post_smooth;
      incr cycles;
      let r = residual_now () in
      (match trace with
      | Some t -> Cdr_obs.Trace.record t ~iter:!cycles ~residual:r
      | None -> ());
      if r <= tol then continue_ := false
    done
  in
  (* one phase region for the whole outer loop: fine applies, aggregation
     refills and the nested coarse V-cycles all dispatch into one team *)
  if fuse then Cdr_par.Pool.run_phases pool run_cycles else run_cycles ();
  let residual pi =
    let out = Linalg.Vec.create n in
    Cdr_op.vec_mul_into op pi out;
    Linalg.Vec.dist_l1 out pi
  in
  (* the solution owns its iterate; the setup's workspaces stay reusable *)
  let solution = Solution.make_residual ~residual ~pi:(Array.copy !x) ~iterations:!cycles ~tol in
  ( solution,
    {
      cycles = !cycles;
      coarse_states = n_coarse;
      coarse_nnz = !coarse_nnz;
      smoothing_sweeps = !sweeps;
    } )

let solve ?tol ?max_cycles ?pre_smooth ?post_smooth ?fuse ?init ?trace ?pool ?cancel
    ?coarse_hierarchy ~partition op =
  solve_with ?tol ?max_cycles ?pre_smooth ?post_smooth ?fuse ?init ?trace ?pool ?cancel
    (prepare ?coarse_hierarchy ~partition op)
    op

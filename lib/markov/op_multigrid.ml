(* Two-stage iterative aggregation/disaggregation (IAD, Takahashi-style)
   with a matrix-free fine level.

   {!Multigrid} wants the fine TPM as CSR: its setup transposes every level
   and colors sparsity graphs — exactly the materialization the Kronecker
   backend exists to avoid. Instead of teaching the V-cycle interior about
   operators, this module runs the classical outer IAD loop with the fine
   level represented only by its action and entry enumerator:

     smooth (normalized power sweeps on the operator)
     -> aggregate: A_c(I,J) = sum_{i in I} w_i * sum_{j in J} M(i,j),
        w the within-block normalization of the smoothed iterate
     -> solve the coarse chain exactly, with {!Multigrid} and the remaining
        hierarchy (coarse levels are materialized CSR — at most half the
        fine dimension, and the only CSR this solver ever builds)
     -> disaggregate ({!Partition.prolong} with the smoothed weights)
     -> smooth, measure the fine residual, repeat.

   The aggregated pattern is a function of the operator's structure and the
   partition only, so the first cycle's [Csr.assemble] result is refilled in
   place on every later cycle: the coarse chain keeps physically shared
   structure arrays, [Multigrid.matches] stays O(1), and one coarse setup
   serves the whole solve. *)

type stats = {
  cycles : int;
  coarse_states : int;
  coarse_nnz : int;
  smoothing_sweeps : int;
}

let default_hierarchy ~n_coarse =
  Multigrid.default_hierarchy ~n:n_coarse ~coarsest:Gth.max_direct_size

(* Fixed slot grid over coarse rows for the aggregation value pass; rows
   write disjoint [values] segments and each entry accumulates in emission
   order, so pooled refills are bit-identical to serial ones. *)
let coarse_slots n_coarse = min 16 (max 1 (n_coarse / 64))

let solve ?(tol = 1e-12) ?(max_cycles = 200) ?(pre_smooth = 2) ?(post_smooth = 2) ?init ?trace
    ?pool ?cancel ?coarse_hierarchy ~partition op =
  let n = Cdr_op.dim op in
  if partition.Partition.n_fine <> n then
    invalid_arg "Op_multigrid.solve: partition does not match the operator dimension";
  let n_coarse = partition.Partition.n_coarse in
  let hierarchy =
    match coarse_hierarchy with Some h -> h | None -> default_hierarchy ~n_coarse
  in
  let map = partition.Partition.map in
  let blocks = Partition.blocks partition in
  let x = ref (match init with Some v -> Linalg.Vec.copy v | None -> Array.make n (1.0 /. float_of_int n)) in
  Linalg.Vec.normalize_l1 !x;
  let y = ref (Linalg.Vec.create n) in
  let sweeps = ref 0 in
  let smooth count =
    for _ = 1 to count do
      Cdr_op.vec_mul_into ?pool op !x !y;
      Linalg.Vec.normalize_l1 !y;
      let tmp = !x in
      x := !y;
      y := tmp;
      incr sweeps
    done
  in
  (* within-block normalized aggregation weights of the current iterate *)
  let weights = Linalg.Vec.create n in
  let block_mass = Linalg.Vec.create n_coarse in
  let compute_weights () =
    Array.fill block_mass 0 n_coarse 0.0;
    let xv = !x in
    for i = 0 to n - 1 do
      block_mass.(map.(i)) <- block_mass.(map.(i)) +. xv.(i)
    done;
    for bi = 0 to n_coarse - 1 do
      let mass = block_mass.(bi) in
      if mass > 0.0 && Float.is_finite mass then
        List.iter (fun i -> weights.(i) <- xv.(i) /. mass) blocks.(bi)
      else begin
        (* a block the iterate has not reached yet: aggregate uniformly so
           the coarse row stays stochastic *)
        let u = 1.0 /. float_of_int (List.length blocks.(bi)) in
        List.iter (fun i -> weights.(i) <- u) blocks.(bi)
      end
    done
  in
  let coarse_row bi emit =
    List.iter
      (fun i ->
        let w = weights.(i) in
        Cdr_op.iter_row op i (fun j v -> emit map.(j) (w *. v)))
      blocks.(bi)
  in
  (* first cycle assembles the pattern; later cycles refill it in place *)
  let pattern = ref None in
  let build_coarse () =
    compute_weights ();
    match !pattern with
    | None ->
        let m0 = Sparse.Csr.assemble ?pool ~rows:n_coarse ~cols:n_coarse coarse_row in
        pattern := Some m0;
        m0
    | Some m0 ->
        let values = Array.make (Sparse.Csr.nnz m0) 0.0 in
        let slots = coarse_slots n_coarse in
        Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
            let lo = n_coarse * s / slots and hi = (n_coarse * (s + 1) / slots) - 1 in
            for bi = lo to hi do
              coarse_row bi (fun cj v ->
                  let k = Sparse.Csr.row_index m0 bi cj in
                  values.(k) <- values.(k) +. v)
            done);
        Sparse.Csr.refill m0 values
  in
  let coarse_setup = ref None in
  let solve_coarse () =
    let chain = Chain.of_csr (build_coarse ()) in
    let setup =
      match !coarse_setup with
      | Some s when Multigrid.matches s chain -> s
      | _ ->
          let s = Multigrid.setup ~hierarchy chain in
          coarse_setup := Some s;
          s
    in
    let coarse_init = Partition.restrict partition !x in
    Linalg.Vec.normalize_l1 coarse_init;
    let sol, _ = Multigrid.solve_with ~tol ~init:coarse_init ?pool ?cancel setup chain in
    (sol.Solution.pi, chain)
  in
  let cycles = ref 0 in
  let coarse_nnz = ref 0 in
  let residual_now () =
    Cdr_op.vec_mul_into ?pool op !x !y;
    Linalg.Vec.dist_l1 !y !x
  in
  let continue_ = ref (n > 0) in
  while !continue_ && !cycles < max_cycles do
    (match cancel with
    | Some f when f () -> raise Multigrid.Cancelled
    | _ -> ());
    smooth pre_smooth;
    let coarse_pi, coarse_chain = solve_coarse () in
    coarse_nnz := Sparse.Csr.nnz (Chain.tpm coarse_chain);
    let lifted = Partition.prolong partition ~coarse:coarse_pi ~weights:!x in
    Linalg.Vec.normalize_l1 lifted;
    Array.blit lifted 0 !x 0 n;
    smooth post_smooth;
    incr cycles;
    let r = residual_now () in
    (match trace with
    | Some t -> Cdr_obs.Trace.record t ~iter:!cycles ~residual:r
    | None -> ());
    if r <= tol then continue_ := false
  done;
  let residual pi =
    let out = Linalg.Vec.create n in
    Cdr_op.vec_mul_into op pi out;
    Linalg.Vec.dist_l1 out pi
  in
  let solution = Solution.make_residual ~residual ~pi:!x ~iterations:!cycles ~tol in
  ( solution,
    {
      cycles = !cycles;
      coarse_states = n_coarse;
      coarse_nnz = !coarse_nnz;
      smoothing_sweeps = !sweeps;
    } )

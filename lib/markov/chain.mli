(** Finite discrete-time Markov chains.

    A chain is its row-stochastic transition probability matrix (TPM) [P]:
    [P.(i).(j) = Prob(X_{k+1} = j | X_k = i)]. Construction validates
    stochasticity; a private row re-normalization absorbs the rounding dust
    that compositional construction inevitably produces. *)

type t = private { tpm : Sparse.Csr.t }

exception Not_stochastic of string

val of_csr : ?tol:float -> Sparse.Csr.t -> t
(** Checks squareness, non-negative entries and row sums within [tol]
    (default [1e-9]) of one, then re-normalizes each row exactly.
    Raises {!Not_stochastic} otherwise. *)

val of_dense : ?tol:float -> Linalg.Mat.t -> t

val n_states : t -> int

val tpm : t -> Sparse.Csr.t

val step : ?pool:Cdr_par.Pool.t -> t -> Linalg.Vec.t -> Linalg.Vec.t
(** [step c pi] is the distribution after one transition, [pi * P]. [?pool]
    parallelizes the underlying {!Sparse.Csr.vec_mul} (deterministically:
    same bits for any job count). *)

val step_into : ?pool:Cdr_par.Pool.t -> t -> Linalg.Vec.t -> Linalg.Vec.t -> unit

val residual : ?pool:Cdr_par.Pool.t -> t -> Linalg.Vec.t -> float
(** [residual c pi = ||pi P - pi||_1], the stationarity defect. *)

val uniform : t -> Linalg.Vec.t

val transition_prob : t -> int -> int -> float

val is_irreducible : t -> bool
(** True when the directed graph of positive transitions is strongly
    connected (forward and backward reachability from state 0 cover all
    states). *)

val pp_stats : Format.formatter -> t -> unit

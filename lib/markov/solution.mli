(** Common result type for the stationary-distribution solvers. *)

type t = {
  pi : Linalg.Vec.t; (* l1-normalized stationary iterate *)
  iterations : int; (* sweeps / cycles performed *)
  residual : float; (* ||pi P - pi||_1 at exit *)
  converged : bool;
}

val make : chain:Chain.t -> pi:Linalg.Vec.t -> iterations:int -> tol:float -> t
(** Normalizes [pi], measures the residual against [chain] and fills in the
    convergence flag. *)

val make_residual :
  residual:(Linalg.Vec.t -> float) -> pi:Linalg.Vec.t -> iterations:int -> tol:float -> t
(** {!make} generalized over the residual measurement: normalizes [pi], then
    calls [residual] on the normalized iterate. The hook the operator-backed
    solvers use — they have no [Chain.t], only the operator's action.
    [make ~chain] is [make_residual ~residual:(Chain.residual chain)]. *)

val pp : Format.formatter -> t -> unit

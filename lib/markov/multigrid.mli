(** Multilevel aggregation ("algebraic multigrid for Markov chains",
    Horton–Leutenegger) — the paper's dedicated solver for the very large
    CDR chains.

    The caller supplies a coarsening hierarchy: a list of {!Partition.t}
    where the first partitions the fine chain, the second partitions the
    result of the first, and so on. The CDR model supplies the structured
    hierarchy that halves the phase-error grid at every level; a generic
    {!default_hierarchy} (pairing consecutive states) is available for
    arbitrary chains.

    Each V-cycle: pre-smooth (Gauss-Seidel), coarsen with the smoothed
    iterate as weights, recurse, multiplicative disaggregation, post-smooth.
    The coarsest level — first level at or below {!Gth.max_direct_size}
    states, or the end of the hierarchy — is solved exactly with GTH. *)

type stats = {
  cycles : int; (* V-cycles performed *)
  levels : int; (* levels including the finest and the coarsest *)
  coarsest_size : int;
  smoothing_sweeps : int; (* total Gauss-Seidel sweeps across all levels *)
}

exception Cancelled
(** Raised by {!solve} / {!solve_with} when the [?cancel] hook fires. The
    check runs between V-cycles only (never inside one), so the setup's
    workspaces are not mid-update when the exception propagates; the setup
    stays valid for the next solve. *)

type smoother = [ `Lex | `Colored ]
(** The Gauss-Seidel update order inside V-cycles.

    [`Lex] (the default) sweeps rows [0 .. n-1] in order — the serial
    reference; its results are bitwise identical to every previous release.

    [`Colored] is the multicolor (red/black-generalized) variant: {!setup}
    greedily colors each level's symmetrized sparsity graph once,
    symbolically ({!Partition.color}), and sweeps color class by color class.
    Rows within a class are pairwise non-adjacent, so a class's updates read
    only iterate entries frozen before the class began — the class can be
    split over pool slots with results bit-identical for {e every} job count
    (jobs=1 and jobs=N agree exactly). The color-major update order differs
    from the lex order, so colored fixed points agree with lex ones to
    solver tolerance, not bitwise. *)

val default_hierarchy : n:int -> coarsest:int -> Partition.t list
(** Pair consecutive states until [coarsest] (or fewer) states remain. *)

type setup
(** The symbolic phase of the solver, separated from the numeric phase:
    per-level sparsity patterns, transpose maps, aggregation targets and
    preallocated workspaces — everything that depends on the chain's
    {e structure} but not its {e values}. A sweep whose points share one
    sparsity pattern (e.g. a [sigma_w] continuation, where only transition
    probabilities move) pays this cost once and runs every solve through
    {!solve_with}.

    A setup owns mutable workspaces: at most one [solve_with] may run
    against it at a time (use one setup per worker for parallel sweeps). *)

val setup : ?smoother:smoother -> hierarchy:Partition.t list -> Chain.t -> setup
(** Build the symbolic setup from the chain's sparsity pattern: per-level
    patterns, transpose maps, aggregation groupings and (for [`Colored])
    the per-level row colorings. Default smoother: [`Lex]. Raises
    [Invalid_argument] when the hierarchy sizes do not chain up with the
    fine chain. *)

val smoother : setup -> smoother
(** The smoother the setup was built for (cache keys must include it:
    a [`Lex] setup carries no colorings). *)

val matches : setup -> Chain.t -> bool
(** Whether the chain's TPM has the sparsity pattern the setup was built
    from. O(1) when the structure arrays are physically shared (the
    [Sparse.Csr.refill] path), O(nnz) otherwise. *)

val levels : setup -> int
(** Number of levels including the finest and the coarsest. *)

val solve_with :
  ?tol:float ->
  ?max_cycles:int ->
  ?pre_smooth:int ->
  ?post_smooth:int ->
  ?cycle:[ `V | `W ] ->
  ?fuse:bool ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  ?cancel:(unit -> bool) ->
  setup ->
  Chain.t ->
  Solution.t * stats
(** Run V-cycles against an existing setup and the chain's current values
    (the numeric phase only: one value blit, no pattern, transpose or level
    construction). Raises [Invalid_argument] when [matches setup chain] is
    false. Numerically identical to {!solve} on the same chain — reusing a
    setup across refills changes no result bits.

    [?cancel] is polled before every V-cycle (including the first, so an
    already-expired deadline costs no cycle at all); when it returns [true]
    the solve raises {!Cancelled}. This is the cooperative-cancellation
    device of the serving layer: a deadline check costs one closure call per
    cycle and can never observe a half-updated workspace.

    [?cycle] (default [`V]) selects the recursion shape. [`V] visits each
    coarse level once per cycle — the pinned reference, bit-identical to
    every previous release. [`W] visits the hierarchy below the finest level
    twice per cycle (the second recursion re-aggregates with the coarse
    iterate the first improved; the exactly-solved coarsest level is never
    revisited). Pairwise aggregation with piecewise-constant transfers loses
    per-cycle convergence speed as the hierarchy deepens, so [`V] cycle
    counts grow with the grid; [`W] restores near-grid-independent counts at
    roughly [levels/2]x the per-cycle cost — the right trade on the very
    large ladder chains (see the MG-LADDER bench section).

    [?fuse] (default [true]) selects the fused/packed execution of the
    cycle interior: the whole cycle loop runs inside one
    {!Cdr_par.Pool.run_phases} region (the pool's team is enlisted once per
    solve instead of one fan-out per sweep/color), smoothing reads
    int32/Bigarray mirrors of the transposed values, aggregation computes
    block weights and coarse rows in a single pooled batch, and iterate
    restriction becomes a copy of those block weights (it is the same
    ascending per-block sum over the same iterate). Every transformation
    preserves the float operations and their order, so [fuse:true] and
    [fuse:false] produce bit-identical results at every job count;
    [fuse:false] is the pinned reference path. *)

val solve :
  ?tol:float ->
  ?max_cycles:int ->
  ?pre_smooth:int ->
  ?post_smooth:int ->
  ?cycle:[ `V | `W ] ->
  ?fuse:bool ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  ?cancel:(unit -> bool) ->
  ?smoother:smoother ->
  hierarchy:Partition.t list ->
  Chain.t ->
  Solution.t * stats
(** [setup] followed by [solve_with] on a fresh setup. Defaults:
    [tol = 1e-12], [max_cycles = 200], [pre_smooth = 2],
    [post_smooth = 2], [smoother = `Lex]. Raises [Invalid_argument] when the
    hierarchy sizes do not chain up with the fine chain.

    [?pool] parallelizes the whole V-cycle interior: the per-cycle
    stationarity-residual SpMV, the transpose scatter, aggregation,
    iterate restriction and prolongation (all over fixed slot grids whose
    per-slot accumulation order equals the serial one, so pooled results
    are bitwise identical to serial ones), plus — with [`Colored] only —
    the smoother itself, within each color class. The [`Lex] smoother has a
    loop-carried dependency across all rows and stays serial.

    With [?trace], one sample per V-cycle (the l1 stationarity residual the
    convergence test uses — computed per cycle regardless, so tracing adds no
    numerical work) and a per-level smoothing-sweep breakdown via
    {!Cdr_obs.Trace.record_sweeps} (level 0 = finest; the coarsest level is
    solved directly and performs no sweeps). Every smoothing call also
    observes wall seconds into the [multigrid.sweep_seconds] metric,
    labelled by level and color ([color="lex"] for the lex smoother). *)

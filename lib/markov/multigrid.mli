(** Multilevel aggregation ("algebraic multigrid for Markov chains",
    Horton–Leutenegger) — the paper's dedicated solver for the very large
    CDR chains.

    The caller supplies a coarsening hierarchy: a list of {!Partition.t}
    where the first partitions the fine chain, the second partitions the
    result of the first, and so on. The CDR model supplies the structured
    hierarchy that halves the phase-error grid at every level; a generic
    {!default_hierarchy} (pairing consecutive states) is available for
    arbitrary chains.

    Each V-cycle: pre-smooth (Gauss-Seidel), coarsen with the smoothed
    iterate as weights, recurse, multiplicative disaggregation, post-smooth.
    The coarsest level — first level at or below {!Gth.max_direct_size}
    states, or the end of the hierarchy — is solved exactly with GTH. *)

type stats = {
  cycles : int; (* V-cycles performed *)
  levels : int; (* levels including the finest and the coarsest *)
  coarsest_size : int;
  smoothing_sweeps : int; (* total Gauss-Seidel sweeps across all levels *)
}

val default_hierarchy : n:int -> coarsest:int -> Partition.t list
(** Pair consecutive states until [coarsest] (or fewer) states remain. *)

val solve :
  ?tol:float ->
  ?max_cycles:int ->
  ?pre_smooth:int ->
  ?post_smooth:int ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  hierarchy:Partition.t list ->
  Chain.t ->
  Solution.t * stats
(** Defaults: [tol = 1e-12], [max_cycles = 200], [pre_smooth = 2],
    [post_smooth = 2]. Raises [Invalid_argument] when the hierarchy sizes do
    not chain up with the fine chain. [?pool] parallelizes the per-cycle
    stationarity-residual SpMV on the fine level (the Gauss-Seidel smoother
    itself has a loop-carried dependency and stays serial so cycles remain
    deterministic).

    With [?trace], one sample per V-cycle (the l1 stationarity residual the
    convergence test uses — computed per cycle regardless, so tracing adds no
    numerical work) and a per-level smoothing-sweep breakdown via
    {!Cdr_obs.Trace.record_sweeps} (level 0 = finest; the coarsest level is
    solved directly and performs no sweeps). *)

(** Power iteration: [pi <- pi P] until stationary.

    Converges at the rate of the subdominant eigenvalue modulus; slow on the
    stiff CDR chains (that is the point of the multigrid method) but simple,
    robust, and the smoother used inside the multilevel cycles. *)

val solve_op :
  ?tol:float ->
  ?max_iter:int ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  Cdr_op.t ->
  Solution.t
(** Power iteration against any {!Cdr_op.t} — the path that solves chains
    whose TPM is never materialized (the Kronecker backend). Defaults:
    [tol = 1e-12], [max_iter = 100_000], [init = uniform]. With [?trace],
    one sample per iteration: the l1 step difference
    [||pi_{k+1} - pi_k||_1] (which for a normalized power step is the l1
    stationarity residual) is recorded as the residual. [?pool] parallelizes
    the operator apply of every step; pooled runs are bit-identical for any
    job count on a given backend. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  Chain.t ->
  Solution.t
(** {!solve_op} through a CSR backend on the chain's TPM; every kernel call
    equals the pre-abstraction chain path, so results are bitwise identical
    to earlier releases. *)

val sweeps : Chain.t -> Linalg.Vec.t -> int -> Linalg.Vec.t
(** [sweeps c pi n] applies [n] normalized power steps (used as multigrid
    smoothing); returns a fresh vector. *)

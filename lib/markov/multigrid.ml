type stats = { cycles : int; levels : int; coarsest_size : int; smoothing_sweeps : int }

type smoother = [ `Lex | `Colored ]

exception Cancelled

(* Fixed slot grid for the pooled V-cycle kernels: a pure function of the
   problem size, never of the job count, so the slot schedule (and therefore
   every float-accumulation order) is identical with and without a pool. *)
let slot_count len = if len < 4096 then 1 else min 16 (len / 2048)

let default_hierarchy ~n ~coarsest =
  if coarsest < 1 then invalid_arg "Multigrid.default_hierarchy: coarsest must be >= 1";
  let rec build n acc =
    if n <= coarsest then List.rev acc
    else
      let p = Partition.pair_consecutive n in
      build p.Partition.n_coarse (p :: acc)
  in
  build n []

let validate_hierarchy ~n hierarchy =
  let rec check n = function
    | [] -> ()
    | p :: rest ->
        if p.Partition.n_fine <> n then
          invalid_arg
            (Printf.sprintf "Multigrid.solve: hierarchy level expects %d states, chain has %d"
               p.Partition.n_fine n);
        check p.Partition.n_coarse rest
  in
  check n hierarchy

(* Sparse pattern of one level's matrix, stored as raw arrays so cycles touch
   no hash tables or allocation. *)
type pattern = {
  n : int;
  row_ptr : int array;
  col_idx : int array;
  (* transpose of the same pattern, with [trans_perm.(k)] the position in the
     transposed value array of entry [k] *)
  trans_row_ptr : int array;
  trans_col_idx : int array;
  trans_perm : int array;
}

let pattern_of_csr (m : Sparse.Csr.t) =
  let n = Sparse.Csr.rows m in
  let nnz = Sparse.Csr.nnz m in
  let row_ptr = Array.copy m.Sparse.Csr.row_ptr in
  let col_idx = Array.copy m.Sparse.Csr.col_idx in
  (* transpose mapping by counting sort *)
  let counts = Array.make n 0 in
  Array.iter (fun j -> counts.(j) <- counts.(j) + 1) col_idx;
  let trans_row_ptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    trans_row_ptr.(j + 1) <- trans_row_ptr.(j) + counts.(j)
  done;
  let pos = Array.copy trans_row_ptr in
  let trans_col_idx = Array.make nnz 0 in
  let trans_perm = Array.make nnz 0 in
  for i = 0 to n - 1 do
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let j = col_idx.(k) in
      trans_col_idx.(pos.(j)) <- i;
      trans_perm.(k) <- pos.(j);
      pos.(j) <- pos.(j) + 1
    done
  done;
  { n; row_ptr; col_idx; trans_row_ptr; trans_col_idx; trans_perm }

(* One coarsening step's precomputed structure. *)
type level = {
  partition : Partition.t;
  fine : pattern;
  coarse : pattern;
  target : int array; (* fine entry k -> index in the coarse value array *)
  fine_row : int array; (* fine entry k -> its row *)
  block_sizes : int array;
  (* fine entries grouped by their coarse row (ascending k within a group):
     coarse row [i] owns entries [agg_entries.(agg_ptr.(i)) ..
     agg_entries.(agg_ptr.(i+1) - 1)]. The parallel aggregation kernel walks
     one group per coarse row, so coarse value slots are write-disjoint
     across rows and each slot accumulates its contributions in the same
     ascending-k order as the serial pass over all entries. *)
  agg_ptr : int array;
  agg_entries : int array;
  (* fine states grouped by block (ascending state within a group): the same
     write-disjoint trick for block-weight and iterate restriction. *)
  bw_ptr : int array;
  bw_states : int array;
}

(* Symbolic aggregation: the coarse pattern is the image of the fine pattern
   under the partition. Computed once; hash tables allowed here. *)
let make_level fine partition =
  let nc = partition.Partition.n_coarse in
  let nnz_f = Array.length fine.col_idx in
  let fine_row = Array.make nnz_f 0 in
  for i = 0 to fine.n - 1 do
    for k = fine.row_ptr.(i) to fine.row_ptr.(i + 1) - 1 do
      fine_row.(k) <- i
    done
  done;
  (* collect coarse (I, J) pairs per coarse row *)
  let row_tables = Array.init nc (fun _ -> Hashtbl.create 8) in
  for k = 0 to nnz_f - 1 do
    let bi = Partition.block partition fine_row.(k) in
    let bj = Partition.block partition fine.col_idx.(k) in
    if not (Hashtbl.mem row_tables.(bi) bj) then Hashtbl.add row_tables.(bi) bj ()
  done;
  let row_ptr = Array.make (nc + 1) 0 in
  for i = 0 to nc - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Hashtbl.length row_tables.(i)
  done;
  let nnz_c = row_ptr.(nc) in
  let col_idx = Array.make nnz_c 0 in
  let index_of = Array.init nc (fun _ -> Hashtbl.create 8) in
  for i = 0 to nc - 1 do
    let cols = Hashtbl.fold (fun j () acc -> j :: acc) row_tables.(i) [] in
    let cols = List.sort compare cols in
    List.iteri
      (fun offset j ->
        col_idx.(row_ptr.(i) + offset) <- j;
        Hashtbl.add index_of.(i) j (row_ptr.(i) + offset))
      cols
  done;
  let target = Array.make nnz_f 0 in
  for k = 0 to nnz_f - 1 do
    let bi = Partition.block partition fine_row.(k) in
    let bj = Partition.block partition fine.col_idx.(k) in
    target.(k) <- Hashtbl.find index_of.(bi) bj
  done;
  let coarse =
    pattern_of_csr
      (Sparse.Csr.unsafe_make ~rows:nc ~cols:nc ~row_ptr ~col_idx
         ~values:(Array.make nnz_c 0.0))
  in
  (* pattern_of_csr copies row_ptr/col_idx; fine to reuse *)
  let block_sizes = Array.make nc 0 in
  Array.iter (fun b -> block_sizes.(b) <- block_sizes.(b) + 1) partition.Partition.map;
  (* counting sorts grouping fine entries by coarse row and fine states by
     block, both ascending within a group *)
  let agg_ptr = Array.make (nc + 1) 0 in
  for k = 0 to nnz_f - 1 do
    let bi = Partition.block partition fine_row.(k) in
    agg_ptr.(bi + 1) <- agg_ptr.(bi + 1) + 1
  done;
  for b = 0 to nc - 1 do
    agg_ptr.(b + 1) <- agg_ptr.(b + 1) + agg_ptr.(b)
  done;
  let agg_entries = Array.make nnz_f 0 in
  let pos = Array.sub agg_ptr 0 nc in
  for k = 0 to nnz_f - 1 do
    let bi = Partition.block partition fine_row.(k) in
    agg_entries.(pos.(bi)) <- k;
    pos.(bi) <- pos.(bi) + 1
  done;
  let bw_ptr = Array.make (nc + 1) 0 in
  Array.iter (fun b -> bw_ptr.(b + 1) <- bw_ptr.(b + 1) + 1) partition.Partition.map;
  for b = 0 to nc - 1 do
    bw_ptr.(b + 1) <- bw_ptr.(b + 1) + bw_ptr.(b)
  done;
  let bw_states = Array.make partition.Partition.n_fine 0 in
  let pos = Array.sub bw_ptr 0 nc in
  for i = 0 to partition.Partition.n_fine - 1 do
    let b = partition.Partition.map.(i) in
    bw_states.(pos.(b)) <- i;
    pos.(b) <- pos.(b) + 1
  done;
  { partition; fine; coarse; target; fine_row; block_sizes; agg_ptr; agg_entries; bw_ptr; bw_states }

(* Rows of one level grouped by color: within a color no two rows are
   adjacent in the symmetrized sparsity graph, so a Gauss-Seidel update of
   all rows of one color reads only values fixed before the color started —
   rows of a color can run in any order (or in parallel) without changing a
   single bit. Computed symbolically once per setup level. *)
type coloring = {
  n_colors : int;
  color_ptr : int array; (* length n_colors + 1 *)
  color_rows : int array; (* rows grouped by color, ascending within one *)
}

let make_coloring pat =
  let neighbors i f =
    for k = pat.trans_row_ptr.(i) to pat.trans_row_ptr.(i + 1) - 1 do
      f pat.trans_col_idx.(k)
    done;
    for k = pat.row_ptr.(i) to pat.row_ptr.(i + 1) - 1 do
      f pat.col_idx.(k)
    done
  in
  let p = Partition.color ~n:pat.n neighbors in
  let n_colors = p.Partition.n_coarse in
  let color_ptr = Array.make (n_colors + 1) 0 in
  Array.iter (fun c -> color_ptr.(c + 1) <- color_ptr.(c + 1) + 1) p.Partition.map;
  for c = 0 to n_colors - 1 do
    color_ptr.(c + 1) <- color_ptr.(c + 1) + color_ptr.(c)
  done;
  let color_rows = Array.make pat.n 0 in
  let pos = Array.sub color_ptr 0 (max n_colors 1) in
  for i = 0 to pat.n - 1 do
    let c = p.Partition.map.(i) in
    color_rows.(pos.(c)) <- i;
    pos.(c) <- pos.(c) + 1
  done;
  { n_colors; color_ptr; color_rows }

(* Numeric aggregation into preallocated arrays: coarse values from fine
   values and the current iterate weights, rows renormalized to sum 1.

   Parallelized over coarse rows via the symbolic by-row groupings: each
   coarse row owns a disjoint slice of [coarse_values] (its entries) and of
   [block_weight] (its block), and within a row the by-group walks visit fine
   contributions in the same ascending order as the serial scan over all
   entries — so the pooled result is bitwise identical to the serial one for
   any job count, pool or no pool. *)
let aggregate ?pool level ~fine_values ~weights ~coarse_values ~block_weight =
  let partition = level.partition in
  let nc = partition.Partition.n_coarse in
  let slots = slot_count nc in
  Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
      for b = s * nc / slots to (((s + 1) * nc / slots) - 1) do
        let acc = ref 0.0 in
        for idx = level.bw_ptr.(b) to level.bw_ptr.(b + 1) - 1 do
          acc := !acc +. weights.(level.bw_states.(idx))
        done;
        block_weight.(b) <- !acc
      done);
  Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
      for i = s * nc / slots to (((s + 1) * nc / slots) - 1) do
        let k_lo = level.coarse.row_ptr.(i) and k_hi = level.coarse.row_ptr.(i + 1) - 1 in
        for k = k_lo to k_hi do
          coarse_values.(k) <- 0.0
        done;
        let w_uniform = 1.0 /. float_of_int level.block_sizes.(i) in
        let bw = block_weight.(i) in
        for idx = level.agg_ptr.(i) to level.agg_ptr.(i + 1) - 1 do
          let k = level.agg_entries.(idx) in
          let fi = level.fine_row.(k) in
          let w = if bw > 0.0 then weights.(fi) /. bw else w_uniform in
          coarse_values.(level.target.(k)) <- coarse_values.(level.target.(k)) +. (w *. fine_values.(k))
        done;
        (* renormalize the row: rounding dust accumulates across levels *)
        let sum = ref 0.0 in
        for k = k_lo to k_hi do
          sum := !sum +. coarse_values.(k)
        done;
        if !sum > 0.0 then
          for k = k_lo to k_hi do
            coarse_values.(k) <- coarse_values.(k) /. !sum
          done
      done)

(* Iterate restriction: per-block sums of the fine iterate, again grouped so
   blocks are write-disjoint and each block sums ascending fine states —
   bitwise equal to the serial scatter for any job count. *)
let restrict_iterate ?pool level ~fine ~coarse =
  let nc = level.partition.Partition.n_coarse in
  let slots = slot_count nc in
  Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
      for b = s * nc / slots to (((s + 1) * nc / slots) - 1) do
        let acc = ref 0.0 in
        for idx = level.bw_ptr.(b) to level.bw_ptr.(b + 1) - 1 do
          acc := !acc +. fine.(level.bw_states.(idx))
        done;
        coarse.(b) <- !acc
      done)

(* Multiplicative prolongation: element-wise over fine states, trivially
   write-disjoint. *)
let prolong_iterate ?pool level ~coarse ~block_weight ~x =
  let n = level.partition.Partition.n_fine in
  let slots = slot_count n in
  Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
      for i = s * n / slots to (((s + 1) * n / slots) - 1) do
        let b = level.partition.Partition.map.(i) in
        let bw = block_weight.(b) in
        x.(i) <-
          (if bw > 0.0 then coarse.(b) *. x.(i) /. bw
           else coarse.(b) /. float_of_int level.block_sizes.(b))
      done)

(* Gauss-Seidel sweeps for pi(I - P) = 0 on raw transposed-pattern arrays. *)
let gauss_seidel_sweeps pat trans_values x sweeps =
  let n = pat.n in
  for _ = 1 to sweeps do
    for i = 0 to n - 1 do
      let acc = ref 0.0 and self = ref 0.0 in
      for k = pat.trans_row_ptr.(i) to pat.trans_row_ptr.(i + 1) - 1 do
        let j = pat.trans_col_idx.(k) in
        if j = i then self := trans_values.(k) else acc := !acc +. (trans_values.(k) *. x.(j))
      done;
      let denom = 1.0 -. !self in
      x.(i) <- (if denom < 1e-300 then x.(i) else !acc /. denom)
    done;
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. x.(i)
    done;
    if !s > 0.0 then
      for i = 0 to n - 1 do
        x.(i) <- x.(i) /. !s
      done
  done

(* Multicolor Gauss-Seidel: sweep the rows color class by color class. Rows
   within a class are pairwise non-adjacent, so each update reads only
   iterate entries frozen before the class began — the class's rows can be
   split over pool slots with bit-identical results for every job count.
   The update order (color-major) differs from the lex sweep, so colored
   fixed points agree with lex ones to solver tolerance, not bitwise; that
   is why [`Lex] remains the default. [color_seconds.(c)] accumulates wall
   seconds spent in color [c] across the sweeps. *)
let colored_gauss_seidel_sweeps ?pool pat coloring trans_values x sweeps ~color_seconds =
  let n = pat.n in
  for _ = 1 to sweeps do
    for c = 0 to coloring.n_colors - 1 do
      let t0 = Cdr_obs.Clock.monotonic () in
      let lo = coloring.color_ptr.(c) in
      let count = coloring.color_ptr.(c + 1) - lo in
      let slots = slot_count count in
      Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
          for idx = lo + (s * count / slots) to lo + (((s + 1) * count / slots) - 1) do
            let i = coloring.color_rows.(idx) in
            let acc = ref 0.0 and self = ref 0.0 in
            for k = pat.trans_row_ptr.(i) to pat.trans_row_ptr.(i + 1) - 1 do
              let j = pat.trans_col_idx.(k) in
              if j = i then self := trans_values.(k)
              else acc := !acc +. (trans_values.(k) *. x.(j))
            done;
            let denom = 1.0 -. !self in
            x.(i) <- (if denom < 1e-300 then x.(i) else !acc /. denom)
          done);
      color_seconds.(c) <- color_seconds.(c) +. (Cdr_obs.Clock.monotonic () -. t0)
    done;
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. x.(i)
    done;
    if !s > 0.0 then
      for i = 0 to n - 1 do
        x.(i) <- x.(i) /. !s
      done
  done

let scatter_transpose ?pool pat values trans_values =
  let nnz = Array.length values in
  let slots = slot_count nnz in
  Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
      for k = s * nnz / slots to (((s + 1) * nnz / slots) - 1) do
        trans_values.(pat.trans_perm.(k)) <- values.(k)
      done)

(* ---- fused/packed cycle kernels ---------------------------------------
   The default ([fuse = true]) execution of the V-cycle interior. Three
   transformations, each bitwise-neutral by construction, with the unfused
   functions above kept as the pinned reference:

   - {e packed storage}: each smoothing level mirrors its transposed pattern
     into int32 Bigarray columns and float64 Bigarray values. The sweeps
     read the same entries in the same order (only the load width and the
     bounds checks change), so every float operation is unchanged.
   - {e aggregate+restrict fusion}: [restrict_iterate] recomputes exactly
     the per-block sums [aggregate] already stored in [block_weight] — both
     walk [bw_states] ascending over the same iterate — so under fusion the
     restriction is a copy of [block_weight] and one pooled leg disappears.
   - {e block-weight+row fusion}: aggregate's two batches become one. Coarse
     row [i] reads only [block_weight.(i)], which its own slot computes
     first, so per-row fusion preserves the serial accumulation order.

   Scatter-into-smooth is deliberately NOT fused: inverting the permutation
   would turn each sweep's sequential value reads into gathers repeated
   [pre+post] times per cycle, costing more than the one barrier it saves
   (see DESIGN.md on the dispatch-cost model). *)

type packed_level = {
  tcol32 : (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t;
  tvals : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
}

let pack_trans pat =
  let nnz = Array.length pat.trans_col_idx in
  let tcol32 = Bigarray.Array1.create Bigarray.Int32 Bigarray.C_layout nnz in
  for k = 0 to nnz - 1 do
    Bigarray.Array1.unsafe_set tcol32 k (Int32.of_int pat.trans_col_idx.(k))
  done;
  { tcol32; tvals = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout nnz }

let scatter_transpose_packed ?pool pat values pk =
  let nnz = Array.length values in
  let slots = slot_count nnz in
  Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
      let tvals = pk.tvals in
      for k = s * nnz / slots to (((s + 1) * nnz / slots) - 1) do
        Bigarray.Array1.unsafe_set tvals
          (Array.unsafe_get pat.trans_perm k)
          (Array.unsafe_get values k)
      done)

let gauss_seidel_sweeps_packed pat pk x sweeps =
  let n = pat.n in
  let tcol32 = pk.tcol32 and tvals = pk.tvals in
  let trp = pat.trans_row_ptr in
  for _ = 1 to sweeps do
    for i = 0 to n - 1 do
      let acc = ref 0.0 and self = ref 0.0 in
      for k = trp.(i) to trp.(i + 1) - 1 do
        let j = Int32.to_int (Bigarray.Array1.unsafe_get tcol32 k) in
        let v = Bigarray.Array1.unsafe_get tvals k in
        if j = i then self := v else acc := !acc +. (v *. Array.unsafe_get x j)
      done;
      let denom = 1.0 -. !self in
      Array.unsafe_set x i (if denom < 1e-300 then Array.unsafe_get x i else !acc /. denom)
    done;
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. Array.unsafe_get x i
    done;
    if !s > 0.0 then
      for i = 0 to n - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i /. !s)
      done
  done

let colored_gauss_seidel_sweeps_packed ?pool pat coloring pk x sweeps ~color_seconds =
  let n = pat.n in
  let tcol32 = pk.tcol32 and tvals = pk.tvals in
  let trp = pat.trans_row_ptr in
  for _ = 1 to sweeps do
    for c = 0 to coloring.n_colors - 1 do
      let t0 = Cdr_obs.Clock.monotonic () in
      let lo = coloring.color_ptr.(c) in
      let count = coloring.color_ptr.(c + 1) - lo in
      let slots = slot_count count in
      Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
          for idx = lo + (s * count / slots) to lo + (((s + 1) * count / slots) - 1) do
            let i = Array.unsafe_get coloring.color_rows idx in
            let acc = ref 0.0 and self = ref 0.0 in
            for k = trp.(i) to trp.(i + 1) - 1 do
              let j = Int32.to_int (Bigarray.Array1.unsafe_get tcol32 k) in
              let v = Bigarray.Array1.unsafe_get tvals k in
              if j = i then self := v else acc := !acc +. (v *. Array.unsafe_get x j)
            done;
            let denom = 1.0 -. !self in
            Array.unsafe_set x i (if denom < 1e-300 then Array.unsafe_get x i else !acc /. denom)
          done);
      color_seconds.(c) <- color_seconds.(c) +. (Cdr_obs.Clock.monotonic () -. t0)
    done;
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. Array.unsafe_get x i
    done;
    if !s > 0.0 then
      for i = 0 to n - 1 do
        Array.unsafe_set x i (Array.unsafe_get x i /. !s)
      done
  done

(* [aggregate] with the block-weight pass fused into the per-row pass: one
   pooled batch instead of two. Row [i]'s weight is computed by the same
   ascending [bw_states] walk immediately before the row's entries, so the
   stored bits match the two-pass version exactly. *)
let aggregate_fused ?pool level ~fine_values ~weights ~coarse_values ~block_weight =
  let partition = level.partition in
  let nc = partition.Partition.n_coarse in
  let slots = slot_count nc in
  Cdr_par.Pool.run_slots_opt pool ~slots (fun s ->
      for i = s * nc / slots to (((s + 1) * nc / slots) - 1) do
        let acc = ref 0.0 in
        for idx = level.bw_ptr.(i) to level.bw_ptr.(i + 1) - 1 do
          acc := !acc +. weights.(level.bw_states.(idx))
        done;
        let bw = !acc in
        block_weight.(i) <- bw;
        let k_lo = level.coarse.row_ptr.(i) and k_hi = level.coarse.row_ptr.(i + 1) - 1 in
        for k = k_lo to k_hi do
          coarse_values.(k) <- 0.0
        done;
        let w_uniform = 1.0 /. float_of_int level.block_sizes.(i) in
        for idx = level.agg_ptr.(i) to level.agg_ptr.(i + 1) - 1 do
          let k = level.agg_entries.(idx) in
          let fi = level.fine_row.(k) in
          let w = if bw > 0.0 then weights.(fi) /. bw else w_uniform in
          coarse_values.(level.target.(k)) <- coarse_values.(level.target.(k)) +. (w *. fine_values.(k))
        done;
        let sum = ref 0.0 in
        for k = k_lo to k_hi do
          sum := !sum +. coarse_values.(k)
        done;
        if !sum > 0.0 then
          for k = k_lo to k_hi do
            coarse_values.(k) <- coarse_values.(k) /. !sum
          done
      done)

(* Per-level workspace allocated once. *)
type workspace = {
  level : level option; (* None at the coarsest *)
  values : Linalg.Vec.t; (* this level's matrix values *)
  trans_values : Linalg.Vec.t;
  x : Linalg.Vec.t; (* this level's iterate *)
  block_weight : Linalg.Vec.t; (* |coarse| scratch, when level present *)
  pat : pattern;
  coloring : coloring option; (* Some iff the setup smoother is [`Colored] *)
  color_seconds : float array; (* |colors| scratch for the sweep metric *)
  packed : packed_level option; (* Some on smoothing levels; fused-path mirror *)
}

(* Everything a V-cycle needs that depends on the sparsity structure alone:
   the per-level patterns, transpose maps, aggregation targets and the
   preallocated workspaces. Computed once per structure by [setup]; every
   [solve_with] against it only touches values. *)
type setup = {
  setup_n : int;
  (* the structure arrays of the CSR the setup was built from, kept so
     [matches] can accept refilled matrices (physically shared pattern) in
     O(1) and structurally equal ones in O(nnz) *)
  ref_row_ptr : int array;
  ref_col_idx : int array;
  workspaces : workspace array;
  setup_smoother : smoother;
}

let setup ?(smoother = `Lex) ~hierarchy chain =
  let n = Chain.n_states chain in
  validate_hierarchy ~n hierarchy;
  let fine_csr = Chain.tpm chain in
  let fine_pattern = pattern_of_csr fine_csr in
  (* build levels until the size drops under the direct-solve bound or the
     hierarchy ends *)
  let rec build_levels pat hierarchy_rest acc =
    match hierarchy_rest with
    | [] -> List.rev acc
    | _ when pat.n <= Gth.max_direct_size -> List.rev acc
    | partition :: rest ->
        let level = make_level pat partition in
        build_levels level.coarse rest (level :: acc)
  in
  let levels = build_levels fine_pattern hierarchy [] in
  (* workspaces: one per level plus the coarsest; the finest value array is
     filled from the chain at the start of each [solve_with] *)
  let workspaces =
    (* the coarsest level is solved directly (GTH), so it never smooths and
       needs no coloring *)
    let smoothing_coloring pat =
      match smoother with `Lex -> None | `Colored -> Some (make_coloring pat)
    in
    let rec build pat values = function
      | [] ->
          [
            {
              level = None;
              values;
              trans_values = Array.make (Array.length values) 0.0;
              x = Array.make pat.n 0.0;
              block_weight = [||];
              pat;
              coloring = None;
              color_seconds = [||];
              packed = None; (* the coarsest level never smooths *)
            };
          ]
      | (level : level) :: rest ->
          let coarse_values = Array.make (Array.length level.coarse.col_idx) 0.0 in
          let coloring = smoothing_coloring pat in
          {
            level = Some level;
            values;
            trans_values = Array.make (Array.length values) 0.0;
            x = Array.make pat.n 0.0;
            block_weight = Array.make level.partition.Partition.n_coarse 0.0;
            pat;
            coloring;
            color_seconds =
              (match coloring with
              | Some c -> Array.make (max c.n_colors 1) 0.0
              | None -> [||]);
            packed = Some (pack_trans pat);
          }
          :: build level.coarse coarse_values rest
    in
    Array.of_list
      (build fine_pattern (Array.make (Sparse.Csr.nnz fine_csr) 0.0) levels)
  in
  {
    setup_n = n;
    ref_row_ptr = fine_csr.Sparse.Csr.row_ptr;
    ref_col_idx = fine_csr.Sparse.Csr.col_idx;
    workspaces;
    setup_smoother = smoother;
  }

let levels s = Array.length s.workspaces

let smoother s = s.setup_smoother

let matches s chain =
  let m = Chain.tpm chain in
  Chain.n_states chain = s.setup_n
  && (m.Sparse.Csr.row_ptr == s.ref_row_ptr || m.Sparse.Csr.row_ptr = s.ref_row_ptr)
  && (m.Sparse.Csr.col_idx == s.ref_col_idx || m.Sparse.Csr.col_idx = s.ref_col_idx)

let solve_with ?(tol = 1e-12) ?(max_cycles = 200) ?(pre_smooth = 2) ?(post_smooth = 2)
    ?(cycle = `V) ?(fuse = true) ?init ?trace ?pool ?cancel s chain =
  if not (matches s chain) then
    invalid_arg "Multigrid.solve_with: chain sparsity pattern does not match the setup";
  let gamma = match cycle with `V -> 1 | `W -> 2 in
  let n = s.setup_n in
  let workspaces = s.workspaces in
  let fine_csr = Chain.tpm chain in
  Array.blit fine_csr.Sparse.Csr.values 0 workspaces.(0).values 0
    (Array.length fine_csr.Sparse.Csr.values);
  let n_levels = Array.length workspaces in
  let coarsest = workspaces.(n_levels - 1) in
  let smoothing_sweeps = ref 0 in
  let note_sweeps level sweeps =
    smoothing_sweeps := !smoothing_sweeps + sweeps;
    match trace with
    | Some t -> Cdr_obs.Trace.record_sweeps t ~level ~sweeps
    | None -> ()
  in
  (* one smoothing call: lex or colored per the setup, timed per level (and
     per color for the colored smoother) into multigrid.sweep_seconds *)
  let smooth ws l sweeps =
    let pk = if fuse then ws.packed else None in
    (match (ws.coloring, pk) with
    | None, None ->
        let t0 = Cdr_obs.Clock.monotonic () in
        gauss_seidel_sweeps ws.pat ws.trans_values ws.x sweeps;
        Cdr_obs.Metrics.observe "multigrid.sweep_seconds"
          ~labels:[ ("level", string_of_int l); ("color", "lex") ]
          (Cdr_obs.Clock.monotonic () -. t0)
    | None, Some pk ->
        let t0 = Cdr_obs.Clock.monotonic () in
        gauss_seidel_sweeps_packed ws.pat pk ws.x sweeps;
        Cdr_obs.Metrics.observe "multigrid.sweep_seconds"
          ~labels:[ ("level", string_of_int l); ("color", "lex") ]
          (Cdr_obs.Clock.monotonic () -. t0)
    | Some coloring, pk ->
        Array.fill ws.color_seconds 0 (Array.length ws.color_seconds) 0.0;
        (match pk with
        | Some pk ->
            colored_gauss_seidel_sweeps_packed ?pool ws.pat coloring pk ws.x sweeps
              ~color_seconds:ws.color_seconds
        | None ->
            colored_gauss_seidel_sweeps ?pool ws.pat coloring ws.trans_values ws.x sweeps
              ~color_seconds:ws.color_seconds);
        for c = 0 to coloring.n_colors - 1 do
          Cdr_obs.Metrics.observe "multigrid.sweep_seconds"
            ~labels:[ ("level", string_of_int l); ("color", string_of_int c) ]
            ws.color_seconds.(c)
        done);
    note_sweeps l sweeps
  in
  (* dense GTH on the coarsest level *)
  let solve_coarsest () =
    let ws = coarsest in
    let nc = ws.pat.n in
    let dense = Linalg.Mat.create ~rows:nc ~cols:nc in
    for i = 0 to nc - 1 do
      for k = ws.pat.row_ptr.(i) to ws.pat.row_ptr.(i + 1) - 1 do
        Linalg.Mat.set dense i ws.pat.col_idx.(k) ws.values.(k)
      done
    done;
    let pi = Gth.solve_dense dense in
    Array.blit pi 0 ws.x 0 nc
  in
  (* each leaf stage of the cycle runs under a pool profiling phase labeled
     with its level, so an enabled profiler ([Pool.set_profiling true])
     attributes the cycle's wall time stage by stage (Cdr_obs.Profile);
     phases wrap the leaves only, never the recursion, so the per-phase
     walls are disjoint and sum to (almost all of) the cycle wall *)
  let rec cycle l =
    let ws = workspaces.(l) in
    let phase name f = Cdr_par.Pool.with_phase ~labels:[ ("level", string_of_int l) ] name f in
    if l = n_levels - 1 then phase "coarsest" solve_coarsest
    else begin
      let level = Option.get ws.level in
      (match (if fuse then ws.packed else None) with
      | Some pk -> phase "scatter" (fun () -> scatter_transpose_packed ?pool ws.pat ws.values pk)
      | None -> phase "scatter" (fun () -> scatter_transpose ?pool ws.pat ws.values ws.trans_values));
      phase "smooth" (fun () -> smooth ws l pre_smooth);
      let next = workspaces.(l + 1) in
      if fuse then begin
        phase "aggregate" (fun () ->
            aggregate_fused ?pool level ~fine_values:ws.values ~weights:ws.x
              ~coarse_values:next.values ~block_weight:ws.block_weight);
        (* restriction = the block weights aggregate just computed (same
           ascending sums over the same iterate): a copy, not a pooled leg *)
        phase "restrict" (fun () ->
            Array.blit ws.block_weight 0 next.x 0 level.partition.Partition.n_coarse)
      end
      else begin
        phase "aggregate" (fun () ->
            aggregate ?pool level ~fine_values:ws.values ~weights:ws.x ~coarse_values:next.values
              ~block_weight:ws.block_weight);
        phase "restrict" (fun () -> restrict_iterate ?pool level ~fine:ws.x ~coarse:next.x)
      end;
      cycle (l + 1);
      (* W-cycles ([gamma = 2]) revisit the coarse hierarchy below the finest
         level: the second recursion re-aggregates level l+1 with the coarse
         iterate the first one improved, which is what keeps the cycle count
         near-constant as pairwise aggregation deepens the hierarchy (plain
         V-cycles with piecewise-constant transfers degrade with depth). The
         coarsest level is exact — revisiting it would recompute the same GTH
         solution — so the extra visit stops one level above it. *)
      if gamma > 1 && l > 0 && l + 1 < n_levels - 1 then cycle (l + 1);
      (* multiplicative prolongation using the pre-recursion block weights *)
      phase "prolong" (fun () ->
          prolong_iterate ?pool level ~coarse:next.x ~block_weight:ws.block_weight ~x:ws.x;
          let s = Linalg.Vec.sum ws.x in
          if s > 0.0 then Linalg.Vec.scale_in_place (1.0 /. s) ws.x);
      phase "smooth" (fun () -> smooth ws l post_smooth)
    end
  in
  let x0 = workspaces.(0).x in
  (match init with
  | Some v ->
      Array.blit v 0 x0 0 n;
      Linalg.Vec.normalize_l1 x0
  | None -> Array.fill x0 0 n (1.0 /. float_of_int n));
  let cycles = ref 0 in
  let continue_ = ref (n > 0) in
  (* the cooperative-cancellation point: between V-cycles only, so a firing
     hook never interrupts a half-updated workspace mid-cycle (the next
     [solve_with] against this setup overwrites every workspace anyway) *)
  let cancelled () = match cancel with Some f -> f () | None -> false in
  let run_cycles () =
    while !continue_ && !cycles < max_cycles do
      if cancelled () then raise Cancelled;
      cycle 0;
      incr cycles;
      let residual =
        Cdr_par.Pool.with_phase "residual" (fun () -> Chain.residual ?pool chain x0)
      in
      (match trace with
      | Some t -> Cdr_obs.Trace.record t ~iter:!cycles ~residual
      | None -> ());
      if residual <= tol then continue_ := false
    done
  in
  (* under fusion the whole cycle loop runs inside one phase region: the
     pool's team is assembled once per solve, and every batch a leg issues
     (per color, per sweep, per level) is an epoch dispatch instead of a
     mutex fan-out — the fix for one-fan-out-per-sweep negative scaling *)
  if fuse then Cdr_par.Pool.run_phases pool run_cycles else run_cycles ();
  let solution = Solution.make ~chain ~pi:(Array.copy x0) ~iterations:!cycles ~tol in
  ( solution,
    {
      cycles = !cycles;
      levels = n_levels;
      coarsest_size = coarsest.pat.n;
      smoothing_sweeps = !smoothing_sweeps;
    } )

let solve ?tol ?max_cycles ?pre_smooth ?post_smooth ?cycle ?fuse ?init ?trace ?pool ?cancel
    ?smoother ~hierarchy chain =
  solve_with ?tol ?max_cycles ?pre_smooth ?post_smooth ?cycle ?fuse ?init ?trace ?pool ?cancel
    (setup ?smoother ~hierarchy chain) chain

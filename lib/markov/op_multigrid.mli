(** Iterative aggregation/disaggregation with a matrix-free finest level.

    The multilevel solver for operators that are never materialized: the
    fine level is any {!Cdr_op.t} touched only through its action ([x * M])
    and per-row entry enumerator, while the aggregated coarse chain — at
    most half the fine dimension, the only CSR this solver builds — is
    solved exactly by {!Multigrid} with the remaining hierarchy. Each outer
    cycle: power-sweep pre-smoothing, weighted aggregation (block weights
    from the smoothed iterate), coarse solve, {!Partition.prolong}
    disaggregation, post-smoothing, fine residual test.

    The aggregated sparsity pattern depends only on the operator structure
    and the partition, so cycles after the first refill it in place
    ([Sparse.Csr.refill]): the coarse chain keeps physically shared
    structure arrays and one {!Multigrid.setup} serves the whole solve. *)

type stats = {
  cycles : int; (* outer IAD cycles performed *)
  coarse_states : int;
  coarse_nnz : int; (* nonzeros of the aggregated coarse TPM *)
  smoothing_sweeps : int; (* fine-level power sweeps, pre + post *)
}

val default_hierarchy : n_coarse:int -> Partition.t list
(** {!Multigrid.default_hierarchy} from the coarse dimension down to the
    direct-solve size. *)

val solve :
  ?tol:float ->
  ?max_cycles:int ->
  ?pre_smooth:int ->
  ?post_smooth:int ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  ?cancel:(unit -> bool) ->
  ?coarse_hierarchy:Partition.t list ->
  partition:Partition.t ->
  Cdr_op.t ->
  Solution.t * stats
(** Defaults: [tol = 1e-12], [max_cycles = 200], [pre_smooth = 2],
    [post_smooth = 2], [init = uniform], and
    [coarse_hierarchy = default_hierarchy] (a hierarchy for the {e coarse}
    chain: its first partition must cover [partition.n_coarse] states).
    [partition] aggregates the fine operator. Raises [Invalid_argument]
    when the partition does not cover the operator dimension.

    [?pool] parallelizes the fine applies, the aggregation value pass (a
    fixed coarse-row slot grid; rows write disjoint segments, entries
    accumulate in emission order, so pooled and serial refills agree
    bitwise) and the coarse V-cycles. [?cancel] is polled before every
    outer cycle and inside the coarse solve; when it fires the solve
    raises {!Multigrid.Cancelled} with all workspaces intact. With
    [?trace], one sample per outer cycle recording the fine l1
    stationarity residual the convergence test uses. *)

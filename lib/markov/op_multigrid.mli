(** Iterative aggregation/disaggregation with a matrix-free finest level.

    The multilevel solver for operators that are never materialized: the
    fine level is any {!Cdr_op.t} touched only through its action ([x * M])
    and per-row entry enumerator, while the aggregated coarse chain — at
    most half the fine dimension, the only CSR this solver builds — is
    solved exactly by {!Multigrid} with the remaining hierarchy. Each outer
    cycle: power-sweep pre-smoothing, weighted aggregation (block weights
    from the smoothed iterate), coarse solve, {!Partition.prolong}
    disaggregation, post-smoothing, fine residual test.

    The aggregated sparsity pattern depends only on the operator structure
    and the partition, so cycles after the first refill it in place
    ([Sparse.Csr.refill]): the coarse chain keeps physically shared
    structure arrays and one {!Multigrid.setup} serves the whole solve. *)

type stats = {
  cycles : int; (* outer IAD cycles performed *)
  coarse_states : int;
  coarse_nnz : int; (* nonzeros of the aggregated coarse TPM *)
  smoothing_sweeps : int; (* fine-level power sweeps, pre + post *)
}

val default_hierarchy : n_coarse:int -> Partition.t list
(** {!Multigrid.default_hierarchy} from the coarse dimension down to the
    direct-solve size. *)

type setup
(** The reusable state of the solver: the partition and coarse hierarchy,
    preallocated iterate/weight/aggregation vectors, and — after the first
    cycle has run — the assembled coarse pattern, its in-place refill
    buffer, and the coarse {!Multigrid.setup}. A service answering repeated
    queries against one operator structure pays these allocations once and
    runs every request through {!solve_with}. Owns mutable workspaces: at
    most one solve may run against a setup at a time. *)

val prepare : ?coarse_hierarchy:Partition.t list -> partition:Partition.t -> Cdr_op.t -> setup
(** Allocate a setup for operators of this dimension/structure. Cheap (the
    coarse pattern and Multigrid setup materialize lazily on the first
    {!solve_with}). Raises [Invalid_argument] when the partition does not
    cover the operator dimension. *)

val matches : setup -> Cdr_op.t -> bool
(** Whether the operator has the dimension the setup was prepared for.
    (Structure beyond the dimension is the caller's contract, exactly as
    one {!Multigrid.setup} serves refilled matrices.) *)

val solve_with :
  ?tol:float ->
  ?max_cycles:int ->
  ?pre_smooth:int ->
  ?post_smooth:int ->
  ?fuse:bool ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  ?cancel:(unit -> bool) ->
  setup ->
  Cdr_op.t ->
  Solution.t * stats
(** Run outer IAD cycles against an existing setup: no vector, pattern,
    buffer or coarse-setup allocation beyond the lazily-built first-cycle
    structures. Numerically identical to {!solve} with the same arguments.
    [?fuse] (default [true]) runs the whole outer loop inside one
    {!Cdr_par.Pool.run_phases} region — fine applies, aggregation refills
    and nested coarse V-cycles all dispatch into one persistent team — and
    selects the fused coarse-cycle kernels ({!Multigrid.solve_with}'s
    [?fuse]); both settings produce bit-identical results. *)

val solve :
  ?tol:float ->
  ?max_cycles:int ->
  ?pre_smooth:int ->
  ?post_smooth:int ->
  ?fuse:bool ->
  ?init:Linalg.Vec.t ->
  ?trace:Cdr_obs.Trace.t ->
  ?pool:Cdr_par.Pool.t ->
  ?cancel:(unit -> bool) ->
  ?coarse_hierarchy:Partition.t list ->
  partition:Partition.t ->
  Cdr_op.t ->
  Solution.t * stats
(** [prepare] followed by [solve_with] on a fresh setup. Defaults:
    [tol = 1e-12], [max_cycles = 200], [pre_smooth = 2],
    [post_smooth = 2], [init = uniform], and
    [coarse_hierarchy = default_hierarchy] (a hierarchy for the {e coarse}
    chain: its first partition must cover [partition.n_coarse] states).
    [partition] aggregates the fine operator. Raises [Invalid_argument]
    when the partition does not cover the operator dimension.

    [?pool] parallelizes the fine applies, the aggregation value pass (a
    fixed coarse-row slot grid; rows write disjoint segments, entries
    accumulate in emission order, so pooled and serial refills agree
    bitwise) and the coarse V-cycles. [?cancel] is polled before every
    outer cycle and inside the coarse solve; when it fires the solve
    raises {!Multigrid.Cancelled} with all workspaces intact. With
    [?trace], one sample per outer cycle recording the fine l1
    stationarity residual the convergence test uses. *)

(* A work queue drained by [jobs - 1] persistent domains plus the caller.

   Batches are the unit of coordination: [run_slots] enqueues one task per
   slot, the caller helps drain the queue, then waits on a condition for the
   stragglers other domains picked up. Which domain runs which slot is
   scheduling-dependent, but every combinator built on top writes results
   into slot-indexed storage and combines slots in a fixed order, so the
   values computed are independent of the schedule. *)

(* A phase region ([run_phases]) enlists worker domains once and then
   dispatches every batch the region body issues over lock-free tickets: the
   owner publishes the job, bumps an epoch, and workers claim slots by CAS on
   a combined [epoch | next-slot] word. The slot grid and the slot-indexed
   result layout are exactly those of the queue path, so the determinism
   contract is untouched — only the per-batch mutex/condvar round trips go
   away. *)
type region = {
  r_owner : Domain.id; (* only this domain may dispatch into the region *)
  r_members : int; (* helper domains enlisted (the owner is extra) *)
  r_epoch : int Atomic.t; (* batch sequence number, bumped per dispatch *)
  r_stop : bool Atomic.t;
  mutable r_job : int -> unit; (* published before the epoch bump *)
  mutable r_slots : int; (* ditto *)
  r_next : int Atomic.t; (* ticket word: (epoch lsl slot_bits) lor next *)
  r_done : int Atomic.t; (* slots completed in the current batch *)
  r_failure : exn option Atomic.t;
  r_sleepers : int Atomic.t; (* helpers blocked on [r_wake] *)
  r_waiting : bool Atomic.t; (* owner blocked waiting for the batch end *)
  r_exited : int Atomic.t; (* helpers that left the region loop *)
  r_mutex : Mutex.t;
  r_wake : Condition.t;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* new tasks or shutdown *)
  batch_done : Condition.t; (* a batch's last task finished *)
  pending : (unit -> unit) Queue.t; (* guarded by [mutex] *)
  mutable workers : unit Domain.t list;
  mutable spawned : bool; (* guarded by [mutex] *)
  mutable stopped : bool; (* guarded by [mutex] *)
  busy : bool Atomic.t; (* a batch is in flight; nested batches run serially *)
  region : region option Atomic.t; (* active [run_phases] region, if any *)
}

let max_jobs = 64 (* OCaml caps live domains at 128; stay well under *)

(* ---- profiler --------------------------------------------------------
   Off by default and gated on one [Atomic.get] per batch, so instrumented
   call sites cost nothing in production runs. When on, every pooled batch
   attributes wall time to the caller's current phase (a domain-local label
   stack installed by [with_phase]) in four ways:

     busy     sum of per-slot task execution time, measured on the worker
     idle     jobs * batch wall minus busy: capacity the batch left unused
     barrier  time the caller spent waiting for straggler slots after it
              drained the queue itself
     merge    wall time of [merge_tree] reductions

   Per-slot busy times go into a write-disjoint array (slot [s] is written
   only by the domain that ran slot [s]); the existing [remaining] atomic
   orders those writes before the caller's read, so no extra synchronisation
   is needed. *)

let profiling = Atomic.make false

let set_profiling b = Atomic.set profiling b

let profiling_on () = Atomic.get profiling

let phase_key : (string * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [ ("phase", "unattributed") ])

let current_phase () = !(Domain.DLS.get phase_key)

let with_phase ?(labels = []) name f =
  if not (Atomic.get profiling) then f ()
  else begin
    let cell = Domain.DLS.get phase_key in
    let saved = !cell in
    let phase_labels = ("phase", name) :: labels in
    cell := phase_labels;
    let t0 = Cdr_obs.Clock.monotonic () in
    Fun.protect
      ~finally:(fun () ->
        cell := saved;
        Cdr_obs.Metrics.observe ~labels:phase_labels ~base:2.0 "pool.phase_seconds"
          (Cdr_obs.Clock.monotonic () -. t0))
      f
  end

let default_jobs () =
  match Sys.getenv_opt "CDR_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_jobs
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Cdr_par.Pool.create: jobs must be >= 1";
  {
    jobs = min jobs max_jobs;
    mutex = Mutex.create ();
    work = Condition.create ();
    batch_done = Condition.create ();
    pending = Queue.create ();
    workers = [];
    spawned = false;
    stopped = false;
    busy = Atomic.make false;
    region = Atomic.make None;
  }

let jobs t = t.jobs

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.pending && not t.stopped do
    Condition.wait t.work t.mutex
  done;
  match Queue.take_opt t.pending with
  | None ->
      (* stopped with an empty queue *)
      Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let ensure_workers t =
  Mutex.lock t.mutex;
  let spawn = (not t.spawned) && not t.stopped in
  if spawn then t.spawned <- true;
  Mutex.unlock t.mutex;
  if spawn then
    t.workers <- List.init (t.jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_serial slots f =
  for s = 0 to slots - 1 do
    f s
  done

(* ---- phase regions ---------------------------------------------------
   Dispatch over the queue costs two mutex sections and two condvar
   round trips per batch; a V-cycle issues one batch per smoothing sweep and
   per color, so at small grids that fixed cost dominates the kernels it
   fans out (ROADMAP-1's negative scaling). Inside a region the same batches
   ride an epoch/ticket protocol that costs one atomic store and a handful
   of CAS claims, with helpers spinning briefly before blocking. *)

let spin_budget = 4096 (* [Domain.cpu_relax] iterations before blocking *)

let slot_bits = 20 (* ticket word layout; batches this large skip the region *)

let slot_mask = (1 lsl slot_bits) - 1

(* Claim and run slots of epoch [e]. The ticket word carries the epoch so a
   helper that slept through a batch boundary can never claim (or even
   observe a consistent slot index for) a batch it did not enter: the CAS
   fails the moment the embedded epoch moves on. *)
let region_claim r e =
  let job = r.r_job and slots = r.r_slots in
  let base = e lsl slot_bits in
  let continue_ = ref true in
  while !continue_ do
    let cur = Atomic.get r.r_next in
    let s = cur land slot_mask in
    if cur lsr slot_bits <> e || s >= slots then continue_ := false
    else if Atomic.compare_and_set r.r_next cur (base lor (s + 1)) then begin
      (try job s with exn -> ignore (Atomic.compare_and_set r.r_failure None (Some exn)));
      if Atomic.fetch_and_add r.r_done 1 = slots - 1 && Atomic.get r.r_waiting then begin
        Mutex.lock r.r_mutex;
        Condition.broadcast r.r_wake;
        Mutex.unlock r.r_mutex
      end
    end
  done

(* Helper loop: spin for a new epoch, block when the region goes quiet,
   leave on [r_stop]. Runs on a pool worker domain, entered once per region
   through the ordinary task queue. *)
let region_worker r () =
  let seen = ref (Atomic.get r.r_epoch) in
  let spins = ref 0 in
  let running = ref true in
  while !running do
    if Atomic.get r.r_stop then running := false
    else begin
      let e = Atomic.get r.r_epoch in
      if e <> !seen then begin
        seen := e;
        spins := 0;
        region_claim r e
      end
      else if !spins < spin_budget then begin
        incr spins;
        Domain.cpu_relax ()
      end
      else begin
        Mutex.lock r.r_mutex;
        Atomic.incr r.r_sleepers;
        while (not (Atomic.get r.r_stop)) && Atomic.get r.r_epoch = !seen do
          Condition.wait r.r_wake r.r_mutex
        done;
        Atomic.decr r.r_sleepers;
        Mutex.unlock r.r_mutex;
        spins := 0
      end
    end
  done;
  ignore (Atomic.fetch_and_add r.r_exited 1);
  Mutex.lock r.r_mutex;
  Condition.broadcast r.r_wake;
  Mutex.unlock r.r_mutex

(* One batch inside a region, owner side: publish the job, bump the epoch,
   help claim, then spin-then-block for stragglers. Mirrors [run_slots]'s
   profiler accounting with the region's team size. *)
let region_dispatch r ~slots f =
  let prof = Atomic.get profiling in
  let labels = if prof then current_phase () else [] in
  let busy_s = if prof then Array.make slots 0.0 else [||] in
  let wall0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
  let job =
    if not prof then f
    else fun s ->
      let b0 = Cdr_obs.Clock.monotonic () in
      Fun.protect
        ~finally:(fun () -> busy_s.(s) <- Cdr_obs.Clock.monotonic () -. b0)
        (fun () -> f s)
  in
  Atomic.set r.r_failure None;
  r.r_job <- job;
  r.r_slots <- slots;
  Atomic.set r.r_done 0;
  let e = Atomic.get r.r_epoch + 1 in
  (* ticket base first: a helper that observes the new epoch must find a
     ticket word already carrying it *)
  Atomic.set r.r_next (e lsl slot_bits);
  Atomic.set r.r_epoch e;
  if Atomic.get r.r_sleepers > 0 then begin
    Mutex.lock r.r_mutex;
    Condition.broadcast r.r_wake;
    Mutex.unlock r.r_mutex
  end;
  region_claim r e;
  let bar0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
  if Atomic.get r.r_done < slots then begin
    let spins = ref 0 in
    while Atomic.get r.r_done < slots && !spins < spin_budget do
      incr spins;
      Domain.cpu_relax ()
    done;
    if Atomic.get r.r_done < slots then begin
      Mutex.lock r.r_mutex;
      Atomic.set r.r_waiting true;
      while Atomic.get r.r_done < slots do
        Condition.wait r.r_wake r.r_mutex
      done;
      Atomic.set r.r_waiting false;
      Mutex.unlock r.r_mutex
    end
  end;
  if prof then begin
    let now = Cdr_obs.Clock.monotonic () in
    let wall = now -. wall0 in
    let busy = Array.fold_left ( +. ) 0.0 busy_s in
    let team = float_of_int (r.r_members + 1) in
    let idle = Float.max 0.0 ((team *. wall) -. busy) in
    Cdr_obs.Metrics.incr ~labels "pool.dispatches";
    Cdr_obs.Metrics.add ~labels "pool.tasks" slots;
    Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.busy_seconds" busy;
    Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.idle_seconds" idle;
    Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.barrier_seconds" (now -. bar0)
  end;
  match Atomic.get r.r_failure with Some exn -> raise exn | None -> ()

(* Helpers beyond the machine's core count cannot overlap with the owner;
   they only add context switches (acute on a single-core host, where any
   cross-domain protocol is pure overhead). [CDR_REGION_MEMBERS] overrides
   the cap so tests can force the cross-domain protocol regardless. *)
let region_members t =
  let cap = min (t.jobs - 1) (max 0 (Domain.recommended_domain_count () - 1)) in
  match Sys.getenv_opt "CDR_REGION_MEMBERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> min n (t.jobs - 1)
      | Some _ | None -> cap)
  | None -> cap

let run_slots t ~slots f =
  if slots > 0 then
    match Atomic.get t.region with
    | Some r when slots > 1 && slots < slot_mask && Domain.self () = r.r_owner ->
        region_dispatch r ~slots f
    | Some _ | None ->
    if t.jobs = 1 || slots = 1 || t.stopped || not (Atomic.compare_and_set t.busy false true)
    then
      if not (Atomic.get profiling) then run_serial slots f
      else begin
        let labels = current_phase () in
        let t0 = Cdr_obs.Clock.monotonic () in
        Fun.protect
          ~finally:(fun () ->
            let dt = Cdr_obs.Clock.monotonic () -. t0 in
            Cdr_obs.Metrics.incr ~labels "pool.serial_batches";
            Cdr_obs.Metrics.add ~labels "pool.tasks" slots;
            Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.busy_seconds" dt)
          (fun () -> run_serial slots f)
      end
    else begin
      ensure_workers t;
      let prof = Atomic.get profiling in
      let labels = if prof then current_phase () else [] in
      let busy_s = if prof then Array.make slots 0.0 else [||] in
      let wall0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
      let remaining = Atomic.make slots in
      let failure = Atomic.make None in
      let task s () =
        let b0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
        (try f s
         with e -> ignore (Atomic.compare_and_set failure None (Some e)));
        (* slot [s] is this domain's alone; the [remaining] decrement below
           publishes the write to the caller waiting on zero *)
        if prof then busy_s.(s) <- Cdr_obs.Clock.monotonic () -. b0;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.mutex
        end
      in
      Mutex.lock t.mutex;
      for s = 0 to slots - 1 do
        Queue.push (task s) t.pending
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* the caller is a worker too: help drain this batch's queue *)
      let continue_ = ref true in
      while !continue_ do
        Mutex.lock t.mutex;
        match Queue.take_opt t.pending with
        | Some task ->
            Mutex.unlock t.mutex;
            task ()
        | None ->
            Mutex.unlock t.mutex;
            continue_ := false
      done;
      (* wait for slots other domains are still executing *)
      let bar0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
      Mutex.lock t.mutex;
      while Atomic.get remaining > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      Mutex.unlock t.mutex;
      if prof then begin
        let now = Cdr_obs.Clock.monotonic () in
        let wall = now -. wall0 in
        let busy = Array.fold_left ( +. ) 0.0 busy_s in
        let idle = Float.max 0.0 ((float_of_int t.jobs *. wall) -. busy) in
        Cdr_obs.Metrics.incr ~labels "pool.dispatches";
        Cdr_obs.Metrics.add ~labels "pool.tasks" slots;
        Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.busy_seconds" busy;
        Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.idle_seconds" idle;
        Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.barrier_seconds" (now -. bar0)
      end;
      Atomic.set t.busy false;
      match Atomic.get failure with Some e -> raise e | None -> ()
    end

(* The optional-pool variant the fixed-slot-grid kernels are written
   against: a caller that computed a slot grid from its data structure alone
   runs the same slots in the same order with or without a pool, so the
   serial fallback is the parallel schedule with one worker — not a separate
   code path that could drift numerically. *)
let run_slots_opt pool ~slots f =
  match pool with
  | Some t when slots > 1 -> run_slots t ~slots f
  | Some _ | None -> run_serial slots f

(* Enter a phase region: while [body] runs on this domain, every batch it
   issues through this pool rides the epoch/ticket protocol above instead of
   the queue. Helpers are enlisted once (through the ordinary queue, so they
   are just pool workers for the duration) and released when [body] returns.
   With no spare cores the region degenerates to holding [busy], which sends
   every nested batch down the zero-dispatch serial fast path — the same
   slot schedule either way, so results are bitwise unchanged. *)
let run_phases pool body =
  match pool with
  | None -> body ()
  | Some t ->
      if t.jobs = 1 || t.stopped || not (Atomic.compare_and_set t.busy false true) then body ()
      else begin
        let members = region_members t in
        if members = 0 then Fun.protect ~finally:(fun () -> Atomic.set t.busy false) body
        else begin
          ensure_workers t;
          let r =
            {
              r_owner = Domain.self ();
              r_members = members;
              r_epoch = Atomic.make 0;
              r_stop = Atomic.make false;
              r_job = ignore;
              r_slots = 0;
              r_next = Atomic.make 0;
              r_done = Atomic.make 0;
              r_failure = Atomic.make None;
              r_sleepers = Atomic.make 0;
              r_waiting = Atomic.make false;
              r_exited = Atomic.make 0;
              r_mutex = Mutex.create ();
              r_wake = Condition.create ();
            }
          in
          Atomic.set t.region (Some r);
          Mutex.lock t.mutex;
          for _ = 1 to members do
            Queue.push (region_worker r) t.pending
          done;
          Condition.broadcast t.work;
          Mutex.unlock t.mutex;
          Fun.protect
            ~finally:(fun () ->
              Atomic.set t.region None;
              Atomic.set r.r_stop true;
              Mutex.lock r.r_mutex;
              Condition.broadcast r.r_wake;
              Mutex.unlock r.r_mutex;
              (* helpers must leave the region loop before the pool's queue
                 (and [busy]) are handed back *)
              let spins = ref 0 in
              while Atomic.get r.r_exited < members && !spins < spin_budget do
                incr spins;
                Domain.cpu_relax ()
              done;
              Mutex.lock r.r_mutex;
              while Atomic.get r.r_exited < members do
                Condition.wait r.r_wake r.r_mutex
              done;
              Mutex.unlock r.r_mutex;
              Atomic.set t.busy false)
            body
        end
      end

(* Fixed-shape pairwise reduction over slot indices: merge [src] into [dst]
   for the pair grid (1,0), (3,2), ... then (2,0), (6,4), ... doubling the
   stride each round. The merge tree's shape depends only on [slots], and
   each destination accumulates its sources in a fixed order, so a
   non-associative [merge] (float accumulation) gives identical results for
   any job count — and for no pool at all. *)
let merge_tree ?pool ~slots merge =
  let prof = Atomic.get profiling in
  let t0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
  let height = ref 1 in
  while !height < slots do
    let stride = 2 * !height in
    let pairs = (slots + stride - 1) / stride in
    let h = !height in
    run_slots_opt pool ~slots:pairs (fun p ->
        let dst = p * stride in
        let src = dst + h in
        if src < slots then merge ~dst ~src);
    height := stride
  done;
  if prof && slots > 1 then
    Cdr_obs.Metrics.observe ~labels:(current_phase ()) ~base:2.0 "pool.merge_seconds"
      (Cdr_obs.Clock.monotonic () -. t0)

let parallel_for t ?chunk n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Cdr_par.Pool.parallel_for: chunk must be >= 1"
      | None -> max 1 ((n + (4 * t.jobs) - 1) / (4 * t.jobs))
    in
    let chunks = (n + chunk - 1) / chunk in
    run_slots t ~slots:chunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) - 1 in
        for i = lo to hi do
          f i
        done)
  end

let parallel_map t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* seed the result array from index 0 (computed by the caller), then
       fill the rest in parallel: no Obj tricks, still one [f] per index *)
    let out = Array.make n (f a.(0)) in
    parallel_for t (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end

let map_list t f l = Array.to_list (parallel_map t f (Array.of_list l))

let parallel_reduce t ~map ~combine ~init n =
  if n <= 0 then init
  else begin
    let results = Array.make n None in
    parallel_for t n (fun i -> results.(i) <- Some (map i));
    (* combine strictly in index order: deterministic for any job count *)
    Array.fold_left
      (fun acc r -> match r with Some v -> combine acc v | None -> acc)
      init results
  end

(* A work queue drained by [jobs - 1] persistent domains plus the caller.

   Batches are the unit of coordination: [run_slots] enqueues one task per
   slot, the caller helps drain the queue, then waits on a condition for the
   stragglers other domains picked up. Which domain runs which slot is
   scheduling-dependent, but every combinator built on top writes results
   into slot-indexed storage and combines slots in a fixed order, so the
   values computed are independent of the schedule. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* new tasks or shutdown *)
  batch_done : Condition.t; (* a batch's last task finished *)
  pending : (unit -> unit) Queue.t; (* guarded by [mutex] *)
  mutable workers : unit Domain.t list;
  mutable spawned : bool; (* guarded by [mutex] *)
  mutable stopped : bool; (* guarded by [mutex] *)
  busy : bool Atomic.t; (* a batch is in flight; nested batches run serially *)
}

let max_jobs = 64 (* OCaml caps live domains at 128; stay well under *)

(* ---- profiler --------------------------------------------------------
   Off by default and gated on one [Atomic.get] per batch, so instrumented
   call sites cost nothing in production runs. When on, every pooled batch
   attributes wall time to the caller's current phase (a domain-local label
   stack installed by [with_phase]) in four ways:

     busy     sum of per-slot task execution time, measured on the worker
     idle     jobs * batch wall minus busy: capacity the batch left unused
     barrier  time the caller spent waiting for straggler slots after it
              drained the queue itself
     merge    wall time of [merge_tree] reductions

   Per-slot busy times go into a write-disjoint array (slot [s] is written
   only by the domain that ran slot [s]); the existing [remaining] atomic
   orders those writes before the caller's read, so no extra synchronisation
   is needed. *)

let profiling = Atomic.make false

let set_profiling b = Atomic.set profiling b

let profiling_on () = Atomic.get profiling

let phase_key : (string * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [ ("phase", "unattributed") ])

let current_phase () = !(Domain.DLS.get phase_key)

let with_phase ?(labels = []) name f =
  if not (Atomic.get profiling) then f ()
  else begin
    let cell = Domain.DLS.get phase_key in
    let saved = !cell in
    let phase_labels = ("phase", name) :: labels in
    cell := phase_labels;
    let t0 = Cdr_obs.Clock.monotonic () in
    Fun.protect
      ~finally:(fun () ->
        cell := saved;
        Cdr_obs.Metrics.observe ~labels:phase_labels ~base:2.0 "pool.phase_seconds"
          (Cdr_obs.Clock.monotonic () -. t0))
      f
  end

let default_jobs () =
  match Sys.getenv_opt "CDR_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_jobs
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Cdr_par.Pool.create: jobs must be >= 1";
  {
    jobs = min jobs max_jobs;
    mutex = Mutex.create ();
    work = Condition.create ();
    batch_done = Condition.create ();
    pending = Queue.create ();
    workers = [];
    spawned = false;
    stopped = false;
    busy = Atomic.make false;
  }

let jobs t = t.jobs

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.pending && not t.stopped do
    Condition.wait t.work t.mutex
  done;
  match Queue.take_opt t.pending with
  | None ->
      (* stopped with an empty queue *)
      Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let ensure_workers t =
  Mutex.lock t.mutex;
  let spawn = (not t.spawned) && not t.stopped in
  if spawn then t.spawned <- true;
  Mutex.unlock t.mutex;
  if spawn then
    t.workers <- List.init (t.jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_serial slots f =
  for s = 0 to slots - 1 do
    f s
  done

let run_slots t ~slots f =
  if slots > 0 then
    if t.jobs = 1 || slots = 1 || t.stopped || not (Atomic.compare_and_set t.busy false true)
    then
      if not (Atomic.get profiling) then run_serial slots f
      else begin
        let labels = current_phase () in
        let t0 = Cdr_obs.Clock.monotonic () in
        Fun.protect
          ~finally:(fun () ->
            let dt = Cdr_obs.Clock.monotonic () -. t0 in
            Cdr_obs.Metrics.incr ~labels "pool.serial_batches";
            Cdr_obs.Metrics.add ~labels "pool.tasks" slots;
            Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.busy_seconds" dt)
          (fun () -> run_serial slots f)
      end
    else begin
      ensure_workers t;
      let prof = Atomic.get profiling in
      let labels = if prof then current_phase () else [] in
      let busy_s = if prof then Array.make slots 0.0 else [||] in
      let wall0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
      let remaining = Atomic.make slots in
      let failure = Atomic.make None in
      let task s () =
        let b0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
        (try f s
         with e -> ignore (Atomic.compare_and_set failure None (Some e)));
        (* slot [s] is this domain's alone; the [remaining] decrement below
           publishes the write to the caller waiting on zero *)
        if prof then busy_s.(s) <- Cdr_obs.Clock.monotonic () -. b0;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.mutex
        end
      in
      Mutex.lock t.mutex;
      for s = 0 to slots - 1 do
        Queue.push (task s) t.pending
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* the caller is a worker too: help drain this batch's queue *)
      let continue_ = ref true in
      while !continue_ do
        Mutex.lock t.mutex;
        match Queue.take_opt t.pending with
        | Some task ->
            Mutex.unlock t.mutex;
            task ()
        | None ->
            Mutex.unlock t.mutex;
            continue_ := false
      done;
      (* wait for slots other domains are still executing *)
      let bar0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
      Mutex.lock t.mutex;
      while Atomic.get remaining > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      Mutex.unlock t.mutex;
      if prof then begin
        let now = Cdr_obs.Clock.monotonic () in
        let wall = now -. wall0 in
        let busy = Array.fold_left ( +. ) 0.0 busy_s in
        let idle = Float.max 0.0 ((float_of_int t.jobs *. wall) -. busy) in
        Cdr_obs.Metrics.incr ~labels "pool.dispatches";
        Cdr_obs.Metrics.add ~labels "pool.tasks" slots;
        Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.busy_seconds" busy;
        Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.idle_seconds" idle;
        Cdr_obs.Metrics.observe ~labels ~base:2.0 "pool.barrier_seconds" (now -. bar0)
      end;
      Atomic.set t.busy false;
      match Atomic.get failure with Some e -> raise e | None -> ()
    end

(* The optional-pool variant the fixed-slot-grid kernels are written
   against: a caller that computed a slot grid from its data structure alone
   runs the same slots in the same order with or without a pool, so the
   serial fallback is the parallel schedule with one worker — not a separate
   code path that could drift numerically. *)
let run_slots_opt pool ~slots f =
  match pool with
  | Some t when slots > 1 -> run_slots t ~slots f
  | Some _ | None -> run_serial slots f

(* Fixed-shape pairwise reduction over slot indices: merge [src] into [dst]
   for the pair grid (1,0), (3,2), ... then (2,0), (6,4), ... doubling the
   stride each round. The merge tree's shape depends only on [slots], and
   each destination accumulates its sources in a fixed order, so a
   non-associative [merge] (float accumulation) gives identical results for
   any job count — and for no pool at all. *)
let merge_tree ?pool ~slots merge =
  let prof = Atomic.get profiling in
  let t0 = if prof then Cdr_obs.Clock.monotonic () else 0.0 in
  let height = ref 1 in
  while !height < slots do
    let stride = 2 * !height in
    let pairs = (slots + stride - 1) / stride in
    let h = !height in
    run_slots_opt pool ~slots:pairs (fun p ->
        let dst = p * stride in
        let src = dst + h in
        if src < slots then merge ~dst ~src);
    height := stride
  done;
  if prof && slots > 1 then
    Cdr_obs.Metrics.observe ~labels:(current_phase ()) ~base:2.0 "pool.merge_seconds"
      (Cdr_obs.Clock.monotonic () -. t0)

let parallel_for t ?chunk n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Cdr_par.Pool.parallel_for: chunk must be >= 1"
      | None -> max 1 ((n + (4 * t.jobs) - 1) / (4 * t.jobs))
    in
    let chunks = (n + chunk - 1) / chunk in
    run_slots t ~slots:chunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) - 1 in
        for i = lo to hi do
          f i
        done)
  end

let parallel_map t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* seed the result array from index 0 (computed by the caller), then
       fill the rest in parallel: no Obj tricks, still one [f] per index *)
    let out = Array.make n (f a.(0)) in
    parallel_for t (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end

let map_list t f l = Array.to_list (parallel_map t f (Array.of_list l))

let parallel_reduce t ~map ~combine ~init n =
  if n <= 0 then init
  else begin
    let results = Array.make n None in
    parallel_for t n (fun i -> results.(i) <- Some (map i));
    (* combine strictly in index order: deterministic for any job count *)
    Array.fold_left
      (fun acc r -> match r with Some v -> combine acc v | None -> acc)
      init results
  end

(** A fixed pool of worker domains for data-parallel execution.

    The pool exists so the embarrassingly parallel workloads of the analysis
    — sweep points (one stationary solve each) and the row blocks of sparse
    kernels — can use every core without each call site reinventing domain
    management.

    Design rules, chosen so parallel results are trustworthy:

    - {b Determinism.} Every combinator assigns work to fixed slots and
      combines slot results in a fixed order, both independent of the job
      count. A run with [jobs = 1] and a run with [jobs = 8] produce
      bit-identical results (provided the user function is itself
      deterministic and indexes are independent).
    - {b Lazy, bounded domains.} Worker domains ([jobs - 1] of them; the
      caller is the remaining worker) are spawned on first use and only when
      [jobs > 1], so a [jobs = 1] pool adds no threads and no allocation to
      the serial path.
    - {b No re-entrancy surprises.} A pool executes one batch at a time. A
      batch submitted while another is in flight (e.g. a parallel sweep point
      that itself calls a parallel kernel with the same pool) runs serially
      on the calling domain instead of deadlocking. *)

type t

val default_jobs : unit -> int
(** The [CDR_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** A pool of [jobs] total workers (the calling domain counts as one; the
    pool spawns [jobs - 1] domains lazily). Default: {!default_jobs}.
    Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool afterwards runs
    every batch serially on the caller. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] (also on exception). *)

val run_slots : t -> slots:int -> (int -> unit) -> unit
(** [run_slots t ~slots f] runs [f 0 .. f (slots - 1)], distributing slots
    over the workers. Blocks until all slots finish; the first slot exception
    (if any) is re-raised in the caller. This is the primitive the other
    combinators (and the sparse kernels' fixed slot grids) are built on. *)

val run_slots_opt : t option -> slots:int -> (int -> unit) -> unit
(** {!run_slots} against an optional pool: with [None] (or a single slot)
    the slots run serially in index order on the caller. Kernels that
    compute a fixed slot grid from their data structure use this so the
    serial path executes the {e same} slot schedule as the pooled one —
    one code path, bit-identical results with or without a pool. *)

val run_phases : t option -> (unit -> 'a) -> 'a
(** [run_phases pool body] enters a {e phase region} for the extent of
    [body]: worker domains are enlisted once, and every {!run_slots} /
    {!run_slots_opt} batch [body] issues from the calling domain is
    dispatched over a lock-free epoch/ticket protocol (one atomic store to
    publish, CAS claims per slot, spin-then-block waiting) instead of the
    mutex-and-condvar queue. A V-cycle that issues one batch per smoothing
    sweep and per color pays the team start-up once per solve instead of
    one fan-out per batch.

    The slot grids and the slot-indexed result layout are exactly those of
    the queue path, so results are bit-identical to [run_slots] with or
    without a region. Active helpers are capped at the machine's core count
    ([CDR_REGION_MEMBERS] overrides, for tests); with no spare cores the
    region instead pins the pool's nested-batch serial fast path, making
    every batch zero-dispatch-cost on the caller. Identity when [pool] is
    [None], [jobs = 1], or a region/batch is already active (nested regions
    compose with the existing one batch-at-a-time contract). Exceptions
    from a batch re-raise in the caller at that batch's barrier, and
    [body]'s own exceptions release the region. *)

val merge_tree : ?pool:t -> slots:int -> (dst:int -> src:int -> unit) -> unit
(** Pairwise tree reduction over slot indices [0 .. slots-1]: calls
    [merge ~dst ~src] for the fixed pair grid (stride 2, then 4, 8, …),
    leaving the combined result in slot 0. The tree's shape depends only on
    [slots] and every destination accumulates its sources in a fixed order,
    so non-associative merges (float accumulation into per-slot partials)
    are deterministic for any job count, pool or no pool. Pairs within one
    stride run as a pooled batch when [?pool] is given. *)

val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for t n f] runs [f 0 .. f (n - 1)] in chunks of [chunk]
    consecutive indexes (default: an even split into at most [4 * jobs]
    chunks). [f] must only write state owned by its own index. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving map: result index [i] is [f a.(i)]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} over a list, preserving order. *)

val parallel_reduce : t -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> init:'a -> int -> 'a
(** [parallel_reduce t ~map ~combine ~init n] folds
    [combine (... (combine init (map 0)) ...) (map (n-1))] with the [map]
    calls evaluated in parallel but combined strictly in index order, so the
    reduction is deterministic for any job count (even when [combine] is not
    associative, e.g. float addition). *)

(** {1 Profiling}

    An opt-in accounting layer for the "where does the wall time go when
    jobs > 1" question (negative parallel scaling, ROADMAP-1). When enabled,
    every batch records into {!Cdr_obs.Metrics} under the caller's current
    phase labels:

    - ["pool.busy_seconds"] — per-slot task execution time, summed;
    - ["pool.idle_seconds"] — [jobs * wall - busy] for the batch: worker
      capacity the batch could not use (stragglers, too few slots);
    - ["pool.barrier_seconds"] — time the caller waited for slots other
      domains were still running after it had drained the queue;
    - ["pool.merge_seconds"] — {!merge_tree} wall time;
    - ["pool.dispatches"] / ["pool.serial_batches"] / ["pool.tasks"] —
      batch and slot counters (a batch that ran on the calling domain
      because the pool was busy or [jobs = 1] counts as serial).

    Phases are attributed via a domain-local label stack, so a nested batch
    inherits the phase of the code that submitted it. Work not under any
    {!with_phase} reports as [phase=unattributed]. When profiling is off
    (the default) the entire layer is one [Atomic.get] per batch.
    {!Cdr_obs.Profile} aggregates these series into a per-phase report. *)

val set_profiling : bool -> unit
(** Turn batch accounting on or off, process-wide. *)

val profiling_on : unit -> bool

val with_phase : ?labels:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_phase ~labels name f] runs [f] with the current domain's phase set
    to [("phase", name) :: labels] and additionally records [f]'s wall time
    into ["pool.phase_seconds"] under those labels. Nested phases shadow the
    outer one for their extent (instrument leaf phases if the sums are to be
    disjoint). Identity when profiling is off. *)

type t = { id : int; write : Jsonl.t -> unit; flush : unit -> unit; close : unit -> unit }

let next_id = ref 0

let sinks : t list ref = ref []

let enabled () = !sinks <> []

let emit event =
  match !sinks with
  | [] -> ()
  | live -> List.iter (fun s -> s.write event) live

let install sink =
  sinks := sink :: !sinks;
  sink

let install_jsonl ?(close_channel = false) oc =
  incr next_id;
  install
    {
      id = !next_id;
      write = (fun event -> output_string oc (Jsonl.to_string event); output_char oc '\n');
      flush = (fun () -> flush oc);
      close = (fun () -> flush oc; if close_channel then close_out_noerr oc);
    }

let install_file path = install_jsonl ~close_channel:true (open_out path)

let remove sink =
  if List.exists (fun s -> s.id = sink.id) !sinks then begin
    sinks := List.filter (fun s -> s.id <> sink.id) !sinks;
    sink.close ()
  end

let close_all () =
  let live = !sinks in
  sinks := [];
  List.iter (fun s -> s.close ()) live

let init_from_env () =
  match Sys.getenv_opt "CDR_OBS" with
  | None | Some "" | Some "off" | Some "0" -> ()
  | Some "stderr" -> ignore (install_jsonl stderr)
  | Some spec ->
      let path =
        match String.index_opt spec ':' with
        | Some i when String.sub spec 0 i = "jsonl" ->
            Some (String.sub spec (i + 1) (String.length spec - i - 1))
        | Some _ -> None (* unknown scheme: ignore *)
        | None -> Some spec
      in
      Option.iter
        (fun path -> match install_file path with _ -> () | exception Sys_error _ -> ())
        path

type t = { id : int; write : Jsonl.t -> unit; flush : unit -> unit; close : unit -> unit }

let next_id = Atomic.make 0

(* The live list is an atomic so [enabled]/[emit] on hot paths never block;
   the mutex serializes writes (JSONL lines from concurrent domains must not
   interleave mid-line) and list mutations. *)
let sinks : t list Atomic.t = Atomic.make []

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let enabled () = Atomic.get sinks <> []

let emit event =
  match Atomic.get sinks with
  | [] -> ()
  | _ ->
      (* re-read under the lock: a concurrent [close_all] must not race a
         write into a closed channel *)
      locked (fun () -> List.iter (fun s -> s.write event) (Atomic.get sinks))

let install sink =
  locked (fun () -> Atomic.set sinks (sink :: Atomic.get sinks));
  sink

let install_jsonl ?(close_channel = false) oc =
  let id = 1 + Atomic.fetch_and_add next_id 1 in
  install
    {
      id;
      write = (fun event -> output_string oc (Jsonl.to_string event); output_char oc '\n');
      flush = (fun () -> flush oc);
      close = (fun () -> flush oc; if close_channel then close_out_noerr oc);
    }

let install_file path = install_jsonl ~close_channel:true (open_out path)

let remove sink =
  let removed =
    locked (fun () ->
        let live = Atomic.get sinks in
        if List.exists (fun s -> s.id = sink.id) live then begin
          Atomic.set sinks (List.filter (fun s -> s.id <> sink.id) live);
          true
        end
        else false)
  in
  if removed then sink.close ()

let flush_all () = locked (fun () -> List.iter (fun s -> s.flush ()) (Atomic.get sinks))

let close_all () =
  let live =
    locked (fun () ->
        let live = Atomic.get sinks in
        Atomic.set sinks [];
        live)
  in
  List.iter (fun s -> s.close ()) live

let init_from_env () =
  match Sys.getenv_opt "CDR_OBS" with
  | None | Some "" | Some "off" | Some "0" -> ()
  | Some "stderr" -> ignore (install_jsonl stderr)
  | Some spec ->
      let path =
        match String.index_opt spec ':' with
        | Some i when String.sub spec 0 i = "jsonl" ->
            Some (String.sub spec (i + 1) (String.length spec - i - 1))
        | Some _ -> None (* unknown scheme: ignore *)
        | None -> Some spec
      in
      Option.iter
        (fun path -> match install_file path with _ -> () | exception Sys_error _ -> ())
        path

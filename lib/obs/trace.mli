(** Solver convergence telemetry.

    A [Trace.t] is handed to a stationary solver via its [?trace] argument;
    the solver appends one {!sample} per outer iteration (V-cycle, sweep,
    restart …) carrying the iteration number, the convergence residual it
    judged, and wall-clock seconds since the trace was created. Multigrid
    additionally accumulates its per-level smoothing-sweep counts here.

    Each recorded sample is also forwarded to the installed sinks as a JSONL
    event (type ["sample"]), so a `--trace` run captures the full residual
    history with no extra plumbing at the call sites. *)

type sample = { iter : int; residual : float; elapsed : float }

type t

val create : ?name:string -> unit -> t
(** [name] labels the emitted events (conventionally the solver name). The
    creation instant is the origin of every sample's [elapsed]. *)

val name : t -> string

val record : t -> iter:int -> residual:float -> unit

val record_sweeps : t -> level:int -> sweeps:int -> unit
(** Accumulate smoothing work at a multigrid level (0 = finest). *)

val length : t -> int

val samples : t -> sample array
(** Chronological. *)

val last : t -> sample option

val last_iter : t -> int
(** Iteration number of the newest sample; 0 when empty. *)

val sweeps_by_level : t -> (int * int) list
(** [(level, total sweeps)] sorted by level; empty unless the solver called
    {!record_sweeps}. *)

val total_sweeps : t -> int

val decades_per_second : t -> float
(** Convergence rate: orders of magnitude of residual reduction per second
    between the first and last sample. 0 when fewer than two samples or no
    elapsed time. *)

val to_csv : t -> string
(** ["iter,residual,elapsed_s\n"] header plus one row per sample. *)

val pp : Format.formatter -> t -> unit
(** Down-sampled human table (at most ~12 rows) plus the rate and, when
    present, the per-level sweep breakdown. *)

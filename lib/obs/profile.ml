type row = {
  labels : (string * string) list;
  wall : float;
  busy : float;
  idle : float;
  barrier : float;
  merge : float;
  dispatches : int;
  serial : int;
  tasks : int;
}

type t = row list

let zero labels =
  {
    labels;
    wall = 0.0;
    busy = 0.0;
    idle = 0.0;
    barrier = 0.0;
    merge = 0.0;
    dispatches = 0;
    serial = 0;
    tasks = 0;
  }

let phase r = Option.value ~default:"unattributed" (List.assoc_opt "phase" r.labels)

let overhead r = r.idle +. r.barrier

let collect () =
  let table : ((string * string) list, row ref) Hashtbl.t = Hashtbl.create 16 in
  let row labels =
    match Hashtbl.find_opt table labels with
    | Some r -> r
    | None ->
        let r = ref (zero labels) in
        Hashtbl.add table labels r;
        r
  in
  List.iter
    (fun (s : Metrics.series) ->
      let hsum () = match s.kind with Metrics.Histogram h -> h.sum | _ -> 0.0 in
      let cval () = match s.kind with Metrics.Counter n -> n | _ -> 0 in
      match s.name with
      | "pool.phase_seconds" ->
          let r = row s.labels in
          r := { !r with wall = hsum () }
      | "pool.busy_seconds" ->
          let r = row s.labels in
          r := { !r with busy = hsum () }
      | "pool.idle_seconds" ->
          let r = row s.labels in
          r := { !r with idle = hsum () }
      | "pool.barrier_seconds" ->
          let r = row s.labels in
          r := { !r with barrier = hsum () }
      | "pool.merge_seconds" ->
          let r = row s.labels in
          r := { !r with merge = hsum () }
      | "pool.dispatches" ->
          let r = row s.labels in
          r := { !r with dispatches = cval () }
      | "pool.serial_batches" ->
          let r = row s.labels in
          r := { !r with serial = cval () }
      | "pool.tasks" ->
          let r = row s.labels in
          r := { !r with tasks = cval () }
      | _ -> ())
    (Metrics.dump ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) table []
  |> List.sort (fun a b -> compare a.labels b.labels)

(* [sub later earlier] — the registry only ever accumulates, so a bench
   section brackets its work with two [collect]s and diffs them instead of
   resetting the registry (which would corrupt other sections' deltas). *)
let sub later earlier =
  let base = List.map (fun r -> (r.labels, r)) earlier in
  List.filter_map
    (fun r ->
      let b = Option.value ~default:(zero r.labels) (List.assoc_opt r.labels base) in
      let d =
        {
          labels = r.labels;
          wall = r.wall -. b.wall;
          busy = r.busy -. b.busy;
          idle = r.idle -. b.idle;
          barrier = r.barrier -. b.barrier;
          merge = r.merge -. b.merge;
          dispatches = r.dispatches - b.dispatches;
          serial = r.serial - b.serial;
          tasks = r.tasks - b.tasks;
        }
      in
      if
        d.wall = 0.0 && d.busy = 0.0 && d.idle = 0.0 && d.barrier = 0.0 && d.merge = 0.0
        && d.dispatches = 0 && d.serial = 0 && d.tasks = 0
      then None
      else Some d)
    later

let total_wall t =
  List.fold_left (fun acc r -> if phase r = "unattributed" then acc else acc +. r.wall) 0.0 t

let coverage ~total t = if total <= 0.0 then 0.0 else total_wall t /. total

let pp ppf t =
  if t = [] then Format.fprintf ppf "(no pool profile recorded)@."
  else begin
    Format.fprintf ppf "%-28s %9s %9s %9s %9s %9s %6s %6s %7s@." "phase" "wall(s)"
      "busy(s)" "idle(s)" "barr(s)" "merge(s)" "batch" "serial" "tasks";
    List.stable_sort (fun a b -> compare b.wall a.wall) t
    |> List.iter (fun r ->
           let name =
             phase r
             ^ String.concat ""
                 (List.filter_map
                    (fun (k, v) -> if k = "phase" then None else Some ("/" ^ k ^ "=" ^ v))
                    r.labels)
           in
           Format.fprintf ppf "%-28s %9.4f %9.4f %9.4f %9.4f %9.4f %6d %6d %7d@." name r.wall
             r.busy r.idle r.barrier r.merge r.dispatches r.serial r.tasks)
  end

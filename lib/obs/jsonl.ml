type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- encoding ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> add_num buf v
  | Str s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add buf v;
  Buffer.contents buf

(* ---------- parsing (recursive descent) ---------- *)

type cursor = { s : string; mutable pos : int }

let fail c msg = failwith (Printf.sprintf "Jsonl.of_string: %s at offset %d" msg c.pos)

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with Failure _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* telemetry payloads are ASCII; encode BMP code points as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> numeric ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail c "expected a number";
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some v -> v
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some _ -> Num (parse_number c)

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_str = function Str s -> Some s | _ -> None

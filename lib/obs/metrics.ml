type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  base : float;
  buckets : (int, int) Hashtbl.t;
}

type kind = Counter of int | Gauge of float | Histogram of histogram

type series = { name : string; labels : (string * string) list; kind : kind }

(* internal mutable cells behind the snapshot types above *)
type cell = C of int ref | G of float ref | H of histogram

let registry : (string * (string * string) list, cell) Hashtbl.t = Hashtbl.create 64

(* One mutex guards the registry table and every cell mutation, so parallel
   sweep points can record without torn updates or lost increments. The
   sections are a few instructions; contention is negligible next to the
   solves being instrumented. *)
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let key name labels = (name, List.sort compare labels)

(* call only with [mutex] held *)
let find_or_create name labels create =
  let k = key name labels in
  match Hashtbl.find_opt registry k with
  | Some cell -> cell
  | None ->
      let cell = create () in
      Hashtbl.add registry k cell;
      cell

let wrong_kind name = invalid_arg (Printf.sprintf "Metrics: %s already registered with another kind" name)

let incr ?(labels = []) name =
  locked (fun () ->
      match find_or_create name labels (fun () -> C (ref 0)) with
      | C r -> r := !r + 1
      | G _ | H _ -> wrong_kind name)

let add ?(labels = []) name n =
  locked (fun () ->
      match find_or_create name labels (fun () -> C (ref 0)) with
      | C r -> r := !r + n
      | G _ | H _ -> wrong_kind name)

let set_gauge ?(labels = []) name v =
  locked (fun () ->
      match find_or_create name labels (fun () -> G (ref 0.0)) with
      | G r -> r := v
      | C _ | H _ -> wrong_kind name)

let bucket_of ~base v =
  if (not (Float.is_finite v)) || v <= 0.0 then min_int
  else begin
    (* seed with log, then correct: floating log is off by one at exact
       powers (log10 1000 can land just under 3) *)
    let e = ref (int_of_float (Float.floor (Float.log v /. Float.log base))) in
    while base ** float_of_int (!e + 1) <= v do
      e := !e + 1
    done;
    while base ** float_of_int !e > v do
      e := !e - 1
    done;
    !e
  end

let bucket_bounds ~base e = (base ** float_of_int e, base ** float_of_int (e + 1))

let observe ?(labels = []) ?(base = 10.0) name v =
  if base <= 1.0 then invalid_arg "Metrics.observe: base must exceed 1";
  locked (fun () ->
      let h =
        match
          find_or_create name labels (fun () ->
              H
                {
                  count = 0;
                  sum = 0.0;
                  min_v = Float.infinity;
                  max_v = Float.neg_infinity;
                  base;
                  buckets = Hashtbl.create 16;
                })
        with
        | H h -> h
        | C _ | G _ -> wrong_kind name
      in
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let b = bucket_of ~base:h.base v in
      Hashtbl.replace h.buckets b (1 + Option.value ~default:0 (Hashtbl.find_opt h.buckets b)))

(* exclusive-upper quantile positions by log-bucket interpolation: find the
   bucket holding the [q * count]-th observation, then interpolate
   geometrically inside it (the buckets are log-scale, so the geometric
   midpoint is the unbiased guess), clamped to the observed [min, max].
   Observations in the underflow bucket (v <= 0 or non-finite) are treated
   as sitting at [min_v]. *)
let quantile h q =
  if h.count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.count in
    let buckets =
      Hashtbl.fold (fun e n acc -> (e, n) :: acc) h.buckets [] |> List.sort compare
    in
    let clamp v = Float.max h.min_v (Float.min h.max_v v) in
    let rec walk cum = function
      | [] -> h.max_v
      | (e, n) :: rest ->
          let cum' = cum +. float_of_int n in
          if target <= cum' || rest = [] then
            if e = min_int then h.min_v
            else begin
              let lo, hi = bucket_bounds ~base:h.base e in
              let f = Float.max 0.0 (Float.min 1.0 ((target -. cum) /. float_of_int n)) in
              clamp (lo *. ((hi /. lo) ** f))
            end
          else walk cum' rest
    in
    walk 0.0 buckets
  end

(* call only with [mutex] held: a snapshot the caller can read lock-free *)
let copy_histogram h = { h with buckets = Hashtbl.copy h.buckets }

let quantile_of ?(labels = []) name q =
  let h =
    locked (fun () ->
        match Hashtbl.find_opt registry (key name labels) with
        | Some (H h) -> Some (copy_histogram h)
        | Some (C _ | G _) | None -> None)
  in
  Option.map (fun h -> quantile h q) h

let dump () =
  locked (fun () ->
      Hashtbl.fold
        (fun (name, labels) cell acc ->
          let kind =
            match cell with
            | C r -> Counter !r
            | G r -> Gauge !r
            | H h -> Histogram (copy_histogram h)
          in
          { name; labels; kind } :: acc)
        registry [])
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let label_events labels = List.map (fun (k, v) -> (k, Jsonl.Str v)) labels

let to_events () =
  List.map
    (fun s ->
      let base =
        [ ("type", Jsonl.Str "metric"); ("name", Jsonl.Str s.name) ]
        @ (if s.labels = [] then [] else [ ("labels", Jsonl.Obj (label_events s.labels)) ])
      in
      match s.kind with
      | Counter n -> Jsonl.Obj (base @ [ ("kind", Jsonl.Str "counter"); ("value", Jsonl.Num (float_of_int n)) ])
      | Gauge v -> Jsonl.Obj (base @ [ ("kind", Jsonl.Str "gauge"); ("value", Jsonl.Num v) ])
      | Histogram h ->
          let buckets =
            Hashtbl.fold (fun e n acc -> (e, n) :: acc) h.buckets []
            |> List.sort compare
            |> List.map (fun (e, n) ->
                   Jsonl.Obj
                     [
                       ("exponent", Jsonl.Num (float_of_int e));
                       ("count", Jsonl.Num (float_of_int n));
                     ])
          in
          Jsonl.Obj
            (base
            @ [
                ("kind", Jsonl.Str "histogram");
                ("count", Jsonl.Num (float_of_int h.count));
                ("sum", Jsonl.Num h.sum);
                ("min", Jsonl.Num h.min_v);
                ("max", Jsonl.Num h.max_v);
                ("base", Jsonl.Num h.base);
                ("buckets", Jsonl.List buckets);
              ]))
    (dump ())

let pp_labels ppf labels =
  if labels <> [] then
    Format.fprintf ppf "{%s}"
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let pp ppf () =
  let series = dump () in
  if series = [] then Format.fprintf ppf "(no metrics recorded)@."
  else
    List.iter
      (fun s ->
        match s.kind with
        | Counter n -> Format.fprintf ppf "%s%a = %d@." s.name pp_labels s.labels n
        | Gauge v -> Format.fprintf ppf "%s%a = %g@." s.name pp_labels s.labels v
        | Histogram h ->
            Format.fprintf ppf "%s%a : n=%d sum=%g min=%g max=%g@." s.name pp_labels s.labels
              h.count h.sum h.min_v h.max_v;
            Hashtbl.fold (fun e n acc -> (e, n) :: acc) h.buckets []
            |> List.sort compare
            |> List.iter (fun (e, n) ->
                   if e = min_int then Format.fprintf ppf "    (<= 0)          : %d@." n
                   else
                     let lo, hi = bucket_bounds ~base:h.base e in
                     Format.fprintf ppf "    [%.3g, %.3g) : %d@." lo hi n))
      series

let reset () = locked (fun () -> Hashtbl.reset registry)

let now = Unix.gettimeofday

let started = now ()

let elapsed () = now () -. started

let minor_words () = Gc.minor_words ()

let now = Unix.gettimeofday

(* CLOCK_MONOTONIC via bechamel's noalloc stub: nanoseconds since an
   arbitrary origin, immune to NTP steps and manual clock changes. All
   duration math in the instruments is built on this; [now] remains the
   wall-clock source for event timestamps only. *)
let monotonic () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let started = monotonic ()

let elapsed () = monotonic () -. started

let minor_words () = Gc.minor_words ()

(** Nestable timing scopes.

    [with_ ~name f] runs [f] inside a span; spans opened during [f] become
    children, so a run produces a trace tree with per-span wall-clock and
    minor-heap allocation deltas. Each completed span is also emitted as a
    JSONL event (children before parents, as they finish).

    Recording only happens while {!recording} is true — a sink is installed
    ({!Sink.enabled}) or recording was forced with {!set_forced} (tests, the
    bench harness). Otherwise [with_ ~name f] is [f ()] plus one flag test:
    instrumented code pays nothing when telemetry is off.

    Domain safety: the open-span stack is domain-local, so spans opened on a
    [Cdr_par.Pool] worker nest among that worker's spans only; completed
    top-level spans from every domain are collected into one shared list
    ({!roots}), and each emitted span event carries a ["domain"] field with
    the recording domain's id. *)

type t = {
  name : string;
  attrs : (string * string) list;
  start : float; (* Clock.monotonic at entry: duration math must not see wall-clock jumps *)
  mutable dur : float; (* seconds; set at exit *)
  mutable minor_words : float; (* allocation delta over the span *)
  mutable children : t list; (* in start order *)
}

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run [f] inside a span named [name]. Exceptions propagate; the span is
    closed either way. *)

val timed : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a * float
(** [with_], but also return the elapsed seconds — the replacement for the
    ad-hoc [Unix.gettimeofday] deltas that used to be scattered around the
    callers. Times even when recording is off. *)

val recording : unit -> bool

val set_forced : bool -> unit
(** Force recording on (or back to sink-driven) regardless of sinks; roots
    are then retrievable with {!roots}. *)

val roots : unit -> t list
(** Completed top-level spans, oldest first. Children lists are likewise in
    start order. *)

val reset : unit -> unit
(** Drop retained roots (and any unbalanced open spans). *)

val pp_summary : Format.formatter -> unit -> unit
(** Aggregate retained spans by path: call count, total seconds, total
    allocation. *)

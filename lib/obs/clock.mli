(** The single time/allocation source for every instrument in [Cdr_obs].

    Two clocks, two jobs: {!now} is the wall clock, used only to timestamp
    events for correlation with the outside world; {!monotonic} is
    [CLOCK_MONOTONIC], used for every duration (span lengths, deadlines,
    latency histograms), so measured intervals are immune to NTP steps and
    other wall-clock jumps. *)

val now : unit -> float
(** Wall-clock seconds since the epoch. Timestamps only — never subtract
    two of these to time something; use {!monotonic}. *)

val monotonic : unit -> float
(** Monotonic seconds since an arbitrary origin (boot, typically). Only
    differences are meaningful. *)

val elapsed : unit -> float
(** Monotonic seconds since the process started (first load of this
    module). *)

val minor_words : unit -> float
(** Cumulative minor-heap allocation in words ([Gc.minor_words]); span
    instrumentation reports deltas of this. *)

(** The single time/allocation source for every instrument in [Cdr_obs].

    Centralizing the clock keeps ad-hoc [Unix.gettimeofday] calls out of the
    analysis code and gives one place to swap in a monotonic source. *)

val now : unit -> float
(** Wall-clock seconds since the epoch. *)

val elapsed : unit -> float
(** Seconds since the process started (first load of this module). *)

val minor_words : unit -> float
(** Cumulative minor-heap allocation in words ([Gc.minor_words]); span
    instrumentation reports deltas of this. *)

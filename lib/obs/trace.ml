type sample = { iter : int; residual : float; elapsed : float }

type t = {
  trace_name : string;
  created : float;
  mutable rev_samples : sample list;
  mutable count : int;
  mutable sweeps : (int * int) list; (* level -> accumulated sweeps *)
}

let create ?(name = "solver") () =
  { trace_name = name; created = Clock.monotonic (); rev_samples = []; count = 0; sweeps = [] }

let name t = t.trace_name

let record t ~iter ~residual =
  let s = { iter; residual; elapsed = Clock.monotonic () -. t.created } in
  t.rev_samples <- s :: t.rev_samples;
  t.count <- t.count + 1;
  if Sink.enabled () then
    Sink.emit
      (Jsonl.Obj
         [
           ("type", Jsonl.Str "sample");
           ("trace", Jsonl.Str t.trace_name);
           ("iter", Jsonl.Num (float_of_int s.iter));
           ("residual", Jsonl.Num s.residual);
           ("elapsed_s", Jsonl.Num s.elapsed);
         ])

let record_sweeps t ~level ~sweeps =
  let prev = Option.value ~default:0 (List.assoc_opt level t.sweeps) in
  t.sweeps <- (level, prev + sweeps) :: List.remove_assoc level t.sweeps

let length t = t.count

let samples t = Array.of_list (List.rev t.rev_samples)

let last t = match t.rev_samples with [] -> None | s :: _ -> Some s

let last_iter t = match t.rev_samples with [] -> 0 | s :: _ -> s.iter

let sweeps_by_level t = List.sort compare t.sweeps

let total_sweeps t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.sweeps

let decades_per_second t =
  match (List.rev t.rev_samples, t.rev_samples) with
  | first :: _, newest :: _ when newest != first ->
      let dt = newest.elapsed -. first.elapsed in
      if dt <= 0.0 || first.residual <= 0.0 || newest.residual <= 0.0 then 0.0
      else (Float.log10 first.residual -. Float.log10 newest.residual) /. dt
  | _ -> 0.0

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "iter,residual,elapsed_s\n";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "%d,%.9e,%.6f\n" s.iter s.residual s.elapsed))
    (List.rev t.rev_samples);
  Buffer.contents buf

let pp ppf t =
  let all = samples t in
  let n = Array.length all in
  Format.fprintf ppf "@[<v>trace %s: %d samples@," t.trace_name n;
  if n > 0 then begin
    Format.fprintf ppf "%8s %14s %12s@," "iter" "residual" "elapsed(s)";
    let max_rows = 12 in
    let stride = max 1 ((n + max_rows - 1) / max_rows) in
    Array.iteri
      (fun i s ->
        if i mod stride = 0 || i = n - 1 then
          Format.fprintf ppf "%8d %14.3e %12.4f@," s.iter s.residual s.elapsed)
      all;
    let rate = decades_per_second t in
    if rate <> 0.0 then Format.fprintf ppf "rate: %.2f decades/s@," rate
  end;
  (match sweeps_by_level t with
  | [] -> ()
  | per_level ->
      Format.fprintf ppf "smoothing sweeps by level:@,";
      List.iter (fun (l, s) -> Format.fprintf ppf "  level %d: %d@," l s) per_level);
  Format.fprintf ppf "@]"

(** Telemetry event sinks.

    A sink consumes {!Jsonl.t} events — one per completed span, convergence
    sample, or metrics snapshot. Sinks are installed process-wide;
    instrumentation is free (a single flag test) while none is installed,
    which is what keeps the [?trace]/span hooks zero-cost in production runs.

    Selection matrix (the [CDR_OBS] environment variable, parsed by
    {!init_from_env}):

    {v
    CDR_OBS unset / "" / "off"   no telemetry (default)
    CDR_OBS=stderr               JSONL events on standard error
    CDR_OBS=jsonl:PATH           JSONL events written to PATH (truncated)
    CDR_OBS=PATH                 shorthand for jsonl:PATH
    v} *)

type t
(** An installed sink handle (used to uninstall/close it). *)

val install_jsonl : ?close_channel:bool -> out_channel -> t
(** Route events to a channel, one JSON object per line. The channel is
    flushed on {!close_all}; it is closed there too when [close_channel]
    (default [false]). *)

val install_file : string -> t
(** [install_jsonl] on a freshly truncated file; closed by {!close_all}. *)

val enabled : unit -> bool
(** True when at least one sink is installed — the fast path checked by every
    instrument before it allocates anything. *)

val emit : Jsonl.t -> unit
(** Send an event to every installed sink. No-op when none is installed. *)

val remove : t -> unit
(** Uninstall one sink (flushing it); closes its channel if owned. *)

val flush_all : unit -> unit
(** Flush every installed sink's buffered output without uninstalling —
    what a serving process calls at drain points so a [SIGTERM] never
    truncates the last JSONL lines. *)

val close_all : unit -> unit
(** Flush and uninstall every sink; telemetry reverts to disabled. *)

val init_from_env : unit -> unit
(** Install sinks according to [CDR_OBS] (see the matrix above). Called once
    by the binaries at startup; malformed values are ignored (telemetry must
    never take the analysis down). *)

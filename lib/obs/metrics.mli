(** Process-wide metrics registry: counters, gauges, and log-scale
    histograms, each keyed by a name plus an optional label set.

    The registry exists so the analysis pipeline can record machine-readable
    facts ("chains built", "V-cycles run", "solve seconds" …) without every
    call site inventing its own plumbing. Series are created lazily on first
    use; the same [(name, labels)] pair always resolves to the same series
    regardless of label order.

    The registry is domain-safe: every mutation and snapshot runs under one
    internal mutex, so parallel sweep points (see [Cdr_par.Pool]) can record
    concurrently without lost increments or torn histogram updates. *)

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float; (* +inf when empty *)
  mutable max_v : float; (* -inf when empty *)
  base : float; (* bucket ratio; bucket e spans [base^e, base^{e+1}) *)
  buckets : (int, int) Hashtbl.t; (* exponent -> observation count *)
}

type kind = Counter of int | Gauge of float | Histogram of histogram

type series = { name : string; labels : (string * string) list; kind : kind }

val incr : ?labels:(string * string) list -> string -> unit
(** Counter [name] += 1. *)

val add : ?labels:(string * string) list -> string -> int -> unit
(** Counter [name] += n. *)

val set_gauge : ?labels:(string * string) list -> string -> float -> unit

val observe : ?labels:(string * string) list -> ?base:float -> string -> float -> unit
(** Record one observation into a log-scale histogram (default [base = 10.0]:
    decade buckets). Non-positive and non-finite observations land in a
    dedicated underflow bucket but still update count/sum/min/max. *)

val bucket_of : base:float -> float -> int
(** The bucket exponent [e] with [base^e <= v < base^{e+1}], computed exactly
    at the boundaries (no log round-off: [bucket_of ~base:10. 1000.] is [3]).
    [min_int] for [v <= 0] or non-finite [v]. *)

val bucket_bounds : base:float -> int -> float * float
(** Inclusive lower / exclusive upper edge of a bucket. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.], clamped) of
    the observations by log-bucket interpolation: the bucket holding the
    [q * count]-th observation is located from the per-exponent counts and
    the value interpolated geometrically inside it, clamped to the observed
    [[min_v, max_v]]. The estimate therefore always lands inside the bucket
    that contains the exact sorted-sample quantile — resolution is one
    bucket ratio ([base]), so latency histograms wanting tight p99s use a
    small base (e.g. [~base:2.]). Underflow-bucket observations count as
    [min_v]; [nan] on an empty histogram. *)

val quantile_of : ?labels:(string * string) list -> string -> float -> float option
(** {!quantile} against the live registry series [(name, labels)] — the
    histogram is snapshotted under the registry lock, so this is safe
    against concurrent {!observe}s. [None] if no such histogram exists. *)

val dump : unit -> series list
(** Snapshot of every live series, sorted by name then labels. Histograms
    are deep-copied, so the returned buckets can be read (e.g. by
    {!quantile}) without racing concurrent {!observe}s. *)

val to_events : unit -> Jsonl.t list
(** One JSONL event per series (type ["metric"]), for the sinks. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable registry dump. *)

val reset : unit -> unit
(** Drop every series (tests and bench sections). *)

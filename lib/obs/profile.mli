(** Per-phase aggregation of the pool profiler's metric series.

    [Cdr_par.Pool] (with profiling enabled) records batch accounting into
    the {!Metrics} registry under the ["pool.*"] names, labeled with the
    phase installed by [Pool.with_phase] — e.g. the V-cycle wraps each of
    its stages (smooth / aggregate / restrict / prolong / …) per level.
    This module folds those series into one report row per label set, which
    is how the ROADMAP-1 question ("where does the wall time go when
    jobs > 1?") gets a quantitative answer: compare [busy] against
    [idle + barrier] per phase across job counts. *)

type row = {
  labels : (string * string) list; (* sorted; includes ("phase", _) *)
  wall : float; (* with_phase scope wall time, seconds *)
  busy : float; (* sum of per-slot task execution time *)
  idle : float; (* jobs * batch wall - busy, accumulated over batches *)
  barrier : float; (* caller's straggler wait after draining the queue *)
  merge : float; (* merge_tree wall (overlaps busy/idle of its batches) *)
  dispatches : int; (* pooled batches *)
  serial : int; (* batches that ran on the calling domain *)
  tasks : int; (* total slots executed *)
}

type t = row list

val collect : unit -> t
(** Snapshot the ["pool.*"] series into rows, sorted by labels. Values are
    cumulative since process start (or the last [Metrics.reset]). *)

val sub : t -> t -> t
(** [sub later earlier]: per-label deltas, dropping all-zero rows. Bracket a
    measured region with two {!collect}s and diff — the registry only
    accumulates, and resetting it mid-run would corrupt other consumers. *)

val phase : row -> string
(** The ["phase"] label, or ["unattributed"]. *)

val overhead : row -> float
(** [idle + barrier]: the time this phase paid for parallelism without
    getting work done. The top-overhead phase is the scaling bottleneck. *)

val total_wall : t -> float
(** Sum of [wall] over attributed rows (phases other than
    ["unattributed"]). *)

val coverage : total:float -> t -> float
(** [coverage ~total t]: fraction of an externally measured wall time
    [total] that the attributed phase walls account for. The acceptance
    bar for the V-cycle instrumentation is [>= 0.9]. *)

val pp : Format.formatter -> t -> unit
(** Table sorted by descending wall time. *)

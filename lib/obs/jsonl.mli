(** Minimal JSON values for the JSONL event sinks.

    Self-contained (no external JSON dependency): enough of RFC 8259 to
    encode telemetry events one-per-line and to parse them back in tests.
    Not a general-purpose JSON library — numbers are all [float], and
    encoding never emits newlines, so one value is always one line. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line encoding. Integral floats print without a fractional part;
    non-finite numbers encode as [null] (JSON has no representation). *)

val of_string : string -> t
(** Parse one JSON value. Raises [Failure] with a position message on
    malformed input or trailing garbage. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up a field; [None] on missing key or
    non-object. *)

val to_float : t -> float option
(** [Num] payload, if any. *)

val to_str : t -> string option
(** [Str] payload, if any. *)

type t = {
  name : string;
  attrs : (string * string) list;
  start : float;
  mutable dur : float;
  mutable minor_words : float;
  mutable children : t list; (* reversed while open; start order once closed *)
}

let forced = Atomic.make false

let recording () = Atomic.get forced || Sink.enabled ()

let set_forced b = Atomic.set forced b

(* The open-span stack is per-domain (domain-local storage): spans started on
   a worker domain nest among themselves and never corrupt another domain's
   tree. Finished roots from every domain land in one mutex-guarded list so
   summaries aggregate the whole process. *)
let stack_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let finished_mutex = Mutex.create ()

let finished : t list ref = ref [] (* reversed; guarded by [finished_mutex] *)

let roots () =
  Mutex.lock finished_mutex;
  let r = List.rev !finished in
  Mutex.unlock finished_mutex;
  r

let reset () =
  stack () := [];
  Mutex.lock finished_mutex;
  finished := [];
  Mutex.unlock finished_mutex

let emit_event sp ~depth ~path =
  if Sink.enabled () then
    Sink.emit
      (Jsonl.Obj
         ([
            ("type", Jsonl.Str "span");
            ("name", Jsonl.Str sp.name);
            ("path", Jsonl.Str path);
            ("depth", Jsonl.Num (float_of_int depth));
            ("domain", Jsonl.Num (float_of_int (Domain.self () :> int)));
            ("start_s", Jsonl.Num sp.start);
            ("dur_s", Jsonl.Num sp.dur);
            ("minor_words", Jsonl.Num sp.minor_words);
          ]
         @ List.map (fun (k, v) -> ("attr_" ^ k, Jsonl.Str v)) sp.attrs))

let close sp start_minor =
  sp.dur <- Clock.monotonic () -. sp.start;
  sp.minor_words <- Clock.minor_words () -. start_minor;
  sp.children <- List.rev sp.children;
  let stack = stack () in
  (* pop this span; on an unbalanced stack (an instrument leaked an open
     span), drop the strays above it rather than corrupting the tree *)
  let rec pop = function
    | s :: rest when s == sp -> rest
    | _ :: rest -> pop rest
    | [] -> []
  in
  stack := pop !stack;
  let depth = List.length !stack in
  let path = String.concat "/" (List.rev_map (fun s -> s.name) !stack) in
  let path = if path = "" then sp.name else path ^ "/" ^ sp.name in
  (match !stack with
  | parent :: _ -> parent.children <- sp :: parent.children
  | [] ->
      Mutex.lock finished_mutex;
      finished := sp :: !finished;
      Mutex.unlock finished_mutex);
  emit_event sp ~depth ~path

let with_ ?(attrs = []) ~name f =
  if not (recording ()) then f ()
  else begin
    let sp =
      { name; attrs; start = Clock.monotonic (); dur = 0.0; minor_words = 0.0; children = [] }
    in
    let start_minor = Clock.minor_words () in
    let stack = stack () in
    stack := sp :: !stack;
    match f () with
    | v ->
        close sp start_minor;
        v
    | exception e ->
        close sp start_minor;
        raise e
  end

let timed ?attrs ~name f =
  let t0 = Clock.monotonic () in
  let v = with_ ?attrs ~name f in
  (v, Clock.monotonic () -. t0)

let pp_summary ppf () =
  let table : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  let rec visit prefix sp =
    let path = if prefix = "" then sp.name else prefix ^ "/" ^ sp.name in
    let count, dur, words =
      match Hashtbl.find_opt table path with
      | Some row -> row
      | None ->
          let row = (ref 0, ref 0.0, ref 0.0) in
          Hashtbl.add table path row;
          row
    in
    count := !count + 1;
    dur := !dur +. sp.dur;
    words := !words +. sp.minor_words;
    List.iter (visit path) sp.children
  in
  List.iter (visit "") (roots ());
  if Hashtbl.length table = 0 then Format.fprintf ppf "(no spans recorded)@."
  else begin
    Format.fprintf ppf "%-44s %6s %12s %14s@." "span" "calls" "seconds" "minor words";
    Hashtbl.fold (fun path row acc -> (path, row) :: acc) table []
    |> List.sort compare
    |> List.iter (fun (path, (count, dur, words)) ->
           Format.fprintf ppf "%-44s %6d %12.4f %14.3e@." path !count !dur !words)
  end

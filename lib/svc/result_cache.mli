(** Params-keyed memoization of finished responses (full-response LRU).

    Repeated identical queries are the common case for the serving
    workload, and a response is a pure function of the canonical request
    encoding (see {!Protocol.cache_key}) — so finished responses are
    cached whole and replayed on a hit, short-circuiting admission,
    batching and solving entirely. Entries hold the response with its
    ["id"] stripped; callers re-attach the requesting id, making a hit
    byte-identical to the cold solve that populated the entry (the stored
    envelope — [elapsed_ms], setup-cache deltas — is replayed verbatim).

    In single-process mode the engine consults the cache per request; in
    multi-replica mode one cache lives in the router, in front of the
    rendezvous forwarding, and is fed by the response pumps — so a hit
    never crosses a process boundary.

    All operations are thread-safe. Traffic lands on the
    ["serve.result_cache"{result=hit|miss|evict}] counters and the
    ["serve.result_cache_entries"] gauge. *)

type t

val create : ?capacity:int -> unit -> t
(** LRU capacity (default 512 entries). Raises [Invalid_argument] when
    [capacity < 1]. *)

val capacity : t -> int

val find : t -> string -> Cdr_obs.Jsonl.t option
(** Lookup by canonical request key; a hit refreshes the entry's recency.
    Counts a hit or a miss — only call on the serving path. *)

val store : t -> string -> Cdr_obs.Jsonl.t -> unit
(** Insert (or refresh) an entry; evicts least-recently-used entries
    beyond capacity. The response should be stored id-stripped
    ({!Protocol.response_sans_id}). *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val length : t -> int

val save : t -> string -> unit
(** Write every entry to [path] as JSONL, least recently used first (so
    {!load} rebuilds the same recency order). Atomic: written to a temp
    file and renamed. *)

val load : ?capacity:int -> string -> t
(** Rebuild a cache from a {!save} snapshot. A missing file yields an
    empty cache; malformed lines are skipped (a torn snapshot loses
    entries, never the server). Counts nothing. *)

(** The worker side of multi-replica serving.

    A replica is this same binary re-executed with [--replica-worker <i>]:
    a plain stdio {!Server} over its own {!Engine} (own solver cache, own
    model memo), reading requests from stdin and answering on stdout —
    both ends of the socketpair the {!Router} holds. Result memoization is
    deliberately {e not} enabled here: the params-keyed cache lives in the
    router so one replica's solve is a hit for every client, whatever
    replica its key routes to.

    Shutdown follows the stdio server's contract: when the router
    half-closes its end the worker sees EOF, drains every admitted
    request, answers each, and exits 0 — which is what lets the router
    distinguish a drain (EOF after shutdown) from a crash (EOF with
    requests still pending). *)

val argv : bin:string -> replica:int -> Server.config -> string array
(** The exec vector the router spawns worker [replica] with: [bin
    --replica-worker <i>] plus the subset of [config] a worker inherits
    ([--queue-bound], [--jobs], [--default-deadline-ms]). *)

val run : replica:int -> Server.config -> unit
(** Entry point for the [--replica-worker] mode: {!Server.run_stdio} with
    [replica] set (labels every metric series) and [results] forced off. *)

(** The long-running analysis server behind [cdr_serve].

    Two transports over one core:

    - {!run_stdio}: one request per stdin line, one response per stdout
      line — the mode the smoke tests and shell pipelines use;
    - {!run_socket}: the same protocol over a Unix-domain stream socket,
      every connection multiplexed onto the single solve loop.

    Threading model: protocol readers are lightweight systhreads (they
    block in [input_line]/[accept], which releases the runtime lock), the
    solve loop runs on the main thread, and solve parallelism comes from
    the engine's domain pool — so OCaml domains are spent on numeric
    kernels, not on connection plumbing. A ticker thread wakes every 50 ms
    purely to guarantee signal delivery while everything else is parked in
    blocking C calls.

    Shutdown: SIGTERM (or stdin EOF in stdio mode) stops admission, the
    loop drains every already accepted request, replies to each, and both
    entry points return normally — the caller exits 0. Requests arriving
    during the drain are refused with an ["overloaded"] error. *)

type config = {
  queue_bound : int;
      (** max queued (admitted, not yet executing) requests; pushes beyond
          it are answered ["overloaded"] immediately *)
  jobs : int option;
      (** worker-domain count for the engine pool; [None] or [Some 1]
          solves serially (no domains spawned) *)
  default_deadline_ms : float option;
      (** applied to requests that carry no ["deadline_ms"] *)
}

val run_stdio : config -> unit

val run_socket : path:string -> config -> unit
(** Binds (and on exit unlinks) the socket at [path]; an existing file at
    [path] is removed first. Responses for one connection go back on that
    connection; SIGPIPE is ignored so a vanished client only loses its own
    replies. *)

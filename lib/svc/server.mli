(** The long-running analysis server behind [cdr_serve].

    Two transports over one core:

    - {!run_stdio}: one request per stdin line, one response per stdout
      line — the mode the smoke tests and shell pipelines use;
    - {!run_socket}: the same protocol over a Unix-domain stream socket,
      every connection multiplexed onto the single solve loop.

    Threading model: protocol readers are lightweight systhreads (they
    block in [input_line]/[accept], which releases the runtime lock), the
    solve loop runs on the main thread, and solve parallelism comes from
    the engine's domain pool — so OCaml domains are spent on numeric
    kernels, not on connection plumbing. A ticker thread wakes every 50 ms
    purely to guarantee signal delivery while everything else is parked in
    blocking C calls.

    Shutdown: SIGTERM (or stdin EOF in stdio mode) stops admission, the
    loop drains every already accepted request, replies to each, and both
    entry points return normally — the caller exits 0. Requests arriving
    during the drain are refused with an ["overloaded"] error.

    The transports are also exposed generically ({!run_stdio_service} /
    {!run_socket_service}) over the {!service} record, so the
    multi-replica {!Router} reuses the exact same connection plumbing,
    shutdown ticker, and drain semantics as the single-process engine. *)

type config = {
  queue_bound : int;
      (** max queued (admitted, not yet executing) requests; pushes beyond
          it are answered ["overloaded"] immediately *)
  jobs : int option;
      (** worker-domain count for the engine pool; [None] or [Some 1]
          solves serially (no domains spawned) *)
  default_deadline_ms : float option;
      (** applied to requests that carry no ["deadline_ms"] *)
  replica : int option;
      (** when this process is worker replica [i] under a router: labels
          the queue-depth gauge and per-request series with [replica=i] *)
  results : Result_cache.t option;
      (** params-keyed full-response memoization cache, consulted before
          solving (see {!Engine.create}); [None] disables memoization *)
}

(** A transport-independent request sink. [submit_line] is called from a
    reader thread with one raw request line and must eventually call
    [write] exactly once with the response (immediately for a rejection);
    [run] executes on the main thread until shutdown {e and} drain
    complete; [shutdown] (idempotent, any thread) stops admission. *)
type service = {
  submit_line : write:(Cdr_obs.Jsonl.t -> unit) -> string -> unit;
  run : unit -> unit;
  shutdown : unit -> unit;
}

val local_service : config -> service
(** The single-process implementation: an {!Engine} over an {!Admission}
    queue, refusing with ["overloaded"] beyond [queue_bound]. *)

val run_stdio_service : service -> unit

val run_socket_service : path:string -> service -> unit

val run_stdio : config -> unit
(** [run_stdio cfg = run_stdio_service (local_service cfg)] *)

val run_socket : path:string -> config -> unit
(** Binds (and on exit unlinks) the socket at [path]; an existing file at
    [path] is removed first. Responses for one connection go back on that
    connection; SIGPIPE is ignored so a vanished client only loses its own
    replies. *)

type config = {
  queue_bound : int;
  jobs : int option;
  default_deadline_ms : float option;
  replica : int option;
  results : Result_cache.t option;
}

(* A transport-independent request sink: the stdio and socket front ends
   feed lines into [submit_line] and run [run] on the main thread;
   [shutdown] (SIGTERM, stdin EOF) stops admission and makes [run] return
   once everything admitted has been answered. The local single-process
   engine and the multi-replica router both implement this. *)
type service = {
  submit_line : write:(Cdr_obs.Jsonl.t -> unit) -> string -> unit;
  run : unit -> unit;
  shutdown : unit -> unit;
}

(* ---------- the local (single-process) service ---------- *)

let replica_labels cfg =
  match cfg.replica with Some r -> [ ("replica", string_of_int r) ] | None -> []

(* deadlines are absolute monotonic times: producers stamp them here and the
   engine compares against the same clock, so an NTP step while a request is
   queued can neither spuriously expire it nor extend it *)
let absolute_deadline cfg req =
  let rel =
    match req.Protocol.deadline_ms with Some _ as d -> d | None -> cfg.default_deadline_ms
  in
  Option.map (fun ms -> Cdr_obs.Clock.monotonic () +. (ms /. 1000.)) rel

(* parse + admit one line; [write] delivers both the rejection (now) and the
   response (later, from the solve loop) for this request's origin *)
let submit cfg queue ~write line =
  match Protocol.parse_request line with
  | Error (id, message) -> write (Protocol.error_response ?id ~code:`Bad_request ~message ())
  | Ok req -> (
      let job =
        {
          Engine.request = req;
          deadline = absolute_deadline cfg req;
          admitted = Cdr_obs.Clock.monotonic ();
          reply = write;
        }
      in
      let refuse message =
        Cdr_obs.Metrics.incr "serve.requests"
          ~labels:
            (("kind", Protocol.kind_name req.Protocol.kind)
            :: ("status", "overloaded") :: replica_labels cfg);
        write (Protocol.error_response ~id:req.Protocol.id ~code:`Overloaded ~message ())
      in
      match Admission.push queue job with
      | `Ok -> ()
      | `Overloaded -> refuse (Printf.sprintf "admission queue full (bound %d)" cfg.queue_bound)
      | `Closed -> refuse "server is shutting down")

(* the single consumer: block for one job, then let whatever else queued up
   meanwhile ride along as a batch so the engine can group it by structure *)
let serve_loop engine queue =
  let rec loop () =
    match Admission.pop queue with
    | None -> ()
    | Some job ->
        Engine.process engine (job :: Admission.drain queue);
        loop ()
  in
  loop ()

let make_engine cfg =
  let pool =
    match cfg.jobs with
    | Some j when j > 1 -> Some (Cdr_par.Pool.create ~jobs:j ())
    | _ -> None
  in
  Engine.create ?pool ?results:cfg.results ?replica:cfg.replica ()

let local_service cfg =
  let engine = make_engine cfg in
  let queue = Admission.create ~labels:(replica_labels cfg) ~bound:cfg.queue_bound () in
  {
    submit_line = (fun ~write line -> submit cfg queue ~write line);
    run = (fun () -> serve_loop engine queue);
    shutdown = (fun () -> Admission.close queue);
  }

(* ---------- pieces shared by both transports ---------- *)

(* Condition.wait / input_line / accept block in C, where signal handlers
   cannot run; this thread's Thread.delay wakeups are the guaranteed
   safepoints that let a pending SIGTERM actually execute its handler, after
   which it triggers the service shutdown. [finished] terminates the ticker
   on a normal (EOF-driven) shutdown. *)
let shutdown_ticker ~stop ~finished svc =
  Thread.create
    (fun () ->
      while not (Atomic.get stop || Atomic.get finished) do
        Thread.delay 0.05
      done;
      if Atomic.get stop then svc.shutdown ())
    ()

let install_sigterm stop =
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true)))

(* ---------- stdio transport ---------- *)

let run_stdio_service svc =
  let stop = Atomic.make false and finished = Atomic.make false in
  install_sigterm stop;
  let out_mu = Mutex.create () in
  let write json =
    Mutex.lock out_mu;
    print_string (Cdr_obs.Jsonl.to_string json);
    print_newline ();
    flush stdout;
    Mutex.unlock out_mu
  in
  let _reader =
    Thread.create
      (fun () ->
        (try
           while not (Atomic.get stop) do
             let line = input_line stdin in
             if String.trim line <> "" then svc.submit_line ~write line
           done
         with End_of_file -> ());
        svc.shutdown ())
      ()
  in
  let _ticker = shutdown_ticker ~stop ~finished svc in
  svc.run ();
  Atomic.set finished true;
  (* drain complete: every admitted request has been answered; push the
     tail of the telemetry stream out before the process is torn down *)
  Cdr_obs.Sink.flush_all ()

(* ---------- unix-domain-socket transport ---------- *)

(* per-connection reply path: responses drain through the shared solve loop
   after the connection's reader can already have hit EOF, so the socket is
   only closed once every admitted request has been answered *)
type conn = {
  oc : out_channel;
  mu : Mutex.t;
  mutable pending : int;
  mutable eof : bool;
}

let conn_write c json =
  Mutex.lock c.mu;
  (try
     output_string c.oc (Cdr_obs.Jsonl.to_string json);
     output_char c.oc '\n';
     flush c.oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.unlock c.mu

let conn_close_if_done c =
  Mutex.lock c.mu;
  let close_now = c.eof && c.pending = 0 in
  Mutex.unlock c.mu;
  if close_now then try close_out c.oc with Sys_error _ | Unix.Unix_error _ -> ()

let run_socket_service ~path svc =
  let stop = Atomic.make false and finished = Atomic.make false in
  install_sigterm stop;
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* connection fds must not leak into worker replicas respawned later: a
     worker holding a duped client fd would keep that client's EOF from
     ever arriving *)
  Unix.set_close_on_exec sock;
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  let handle_conn fd =
    Unix.set_close_on_exec fd;
    let ic = Unix.in_channel_of_descr fd in
    let c =
      { oc = Unix.out_channel_of_descr fd; mu = Mutex.create (); pending = 0; eof = false }
    in
    (* [submit_line] writes exactly one response per line — synchronously
       for a rejection, later otherwise — so one pending count per
       non-empty line balances either way *)
    let reply json =
      conn_write c json;
      Mutex.lock c.mu;
      c.pending <- c.pending - 1;
      Mutex.unlock c.mu;
      conn_close_if_done c
    in
    (try
       while not (Atomic.get stop) do
         let line = input_line ic in
         if String.trim line <> "" then begin
           Mutex.lock c.mu;
           c.pending <- c.pending + 1;
           Mutex.unlock c.mu;
           svc.submit_line ~write:reply line
         end
       done
     with End_of_file | Sys_error _ -> ());
    Mutex.lock c.mu;
    c.eof <- true;
    Mutex.unlock c.mu;
    conn_close_if_done c
  in
  let _acceptor =
    Thread.create
      (fun () ->
        try
          while not (Atomic.get stop) do
            let fd, _ = Unix.accept sock in
            ignore (Thread.create handle_conn fd)
          done
        with Unix.Unix_error _ | Sys_error _ -> ())
      ()
  in
  let _ticker = shutdown_ticker ~stop ~finished svc in
  svc.run ();
  Atomic.set finished true;
  Cdr_obs.Sink.flush_all ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ()

let run_stdio cfg = run_stdio_service (local_service cfg)

let run_socket ~path cfg = run_socket_service ~path (local_service cfg)

(** The acceptor/router side of multi-replica serving.

    One router process owns the listening transport and forks [replicas]
    worker processes ({!Replica}), each the same binary re-executed with
    [--replica-worker <i>] over a socketpair. Every parsed request is
    routed by rendezvous hash of its {!Params.structure_key}, so requests
    sharing a structure always land on the same replica and that replica's
    solver-setup cache and model memo stay hot — the process-level
    analogue of the engine's same-structure batching.

    In front of routing sits the optional params-keyed result cache
    ([config.results]): a hit is answered by the router itself,
    byte-identically to the cold solve and without touching any worker,
    and every ok response flowing back is stored. The cache lives here —
    not in the workers — so one replica's solve is a hit for all clients.

    {b Failure model.} A worker death is detected as EOF on its
    socketpair. The router then (1) answers every request in flight on
    that worker with an ["internal"] error — in-flight work is never
    silently retried, because a solve is not known to be idempotent from
    out here, and never left hanging; (2) reaps the child; (3) respawns
    it, unless it has crash-looped (3 deaths within 0.5 s of spawning:
    the replica is marked down and traffic re-routes to survivors — each
    orphaned key falls to its second-highest rendezvous scorer, all other
    keys keep their home). Requests arriving while a replica is down are
    re-routed the same way; if {e no} replica is live they are refused
    with ["internal"].

    Backpressure: at most [config.queue_bound] requests are in flight per
    worker (one executing, the rest inside the worker's admission queue),
    so workers never refuse a forwarded request; beyond the cap the router
    itself answers ["overloaded"], exactly like the single-process server.
    [Stats] requests bypass the cap, fan out to every live replica, and
    come back as one aggregated payload: router counters
    (alive/down/deaths/respawns, result-cache traffic) plus one row per
    replica with that worker's full stats snapshot ([replica] and [pid]
    included, see {!Engine.create}).

    Shutdown half-closes every socketpair: workers see stdin EOF, drain
    all admitted requests, answer each, and exit; the router's
    {!Server.service.run} returns once every pending request is answered
    and every worker is reaped. *)

val route : ?dead:(int -> bool) -> replicas:int -> string -> int option
(** [route ~dead ~replicas key] is the rendezvous (highest-random-weight)
    choice among live replicas: the [i] maximizing the 64-bit FNV-1a score
    of ["replica=" ^ i ^ "|" ^ key] over all [i] with [not (dead i)]. Pure and
    platform-stable — the same key always routes identically. [None] iff
    every replica is dead. [dead] defaults to all-live. *)

val create : ?bin:string -> replicas:int -> Server.config -> Server.service
(** Spawn the worker fleet and return the router as a {!Server.service}
    for {!Server.run_stdio_service} / {!Server.run_socket_service}.
    [bin] (default [Sys.executable_name]) is the executable re-run with
    [--replica-worker]. [config.results] enables the shared result cache;
    [config.jobs]/[config.queue_bound]/[config.default_deadline_ms] are
    inherited per worker. *)

(* ---------- rendezvous hashing ---------- *)

(* FNV-1a, 64-bit: platform-stable (no dependence on OCaml's seeded
   Hashtbl.hash), so a key routes to the same replica across runs and
   across machines — which is what makes routing decisions reproducible
   in tests and keeps disk-persisted affinity meaningful *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* the replica salt goes in FRONT of the key: a trailing salt only passes
   through FNV's final multiply once and barely perturbs the score ordering
   across replicas (empirically, 4 replicas with a suffix salt leave half
   of them owning nothing); a leading salt diffuses through every
   subsequent byte *)
let score ~key i = fnv1a64 ("replica=" ^ string_of_int i ^ "|" ^ key)

(* Highest-random-weight: every (key, replica) pair gets a deterministic
   score and the key goes to the live replica with the highest one. Losing
   a replica re-routes only the keys it owned (each falls to its
   second-highest scorer); every other key keeps its cache-hot home. *)
let route ?(dead = fun _ -> false) ~replicas key =
  let best = ref (-1) and best_score = ref 0L in
  for i = 0 to replicas - 1 do
    if not (dead i) then begin
      let s = score ~key i in
      if !best < 0 || Int64.unsigned_compare s !best_score > 0 then begin
        best := i;
        best_score := s
      end
    end
  done;
  if !best < 0 then None else Some !best

(* ---------- worker bookkeeping ---------- *)

type worker = {
  index : int;
  mutable fd : Unix.file_descr;
  mutable oc : out_channel;
  mutable pid : int;
  mutable alive : bool;
  mutable gen : int;  (* bumped per spawn; stale reader threads no-op *)
  mutable inflight : int;
  mutable spawned_at : float;
  mutable fast_crashes : int;
  mutable down : bool;  (* crash-looping: gave up respawning *)
}

(* what a worker response (or the worker's death) resolves to *)
type target =
  | Reply of {
      orig_id : string;
      write : Cdr_obs.Jsonl.t -> unit;
      cache_key : string option;
    }
  | Stat of stats_agg

and stats_agg = {
  s_id : string;
  s_write : Cdr_obs.Jsonl.t -> unit;
  mutable s_waiting : int;
  mutable s_rows : Cdr_obs.Jsonl.t list;  (* newest first; reversed on emit *)
}

type t = {
  cfg : Server.config;
  replicas : int;
  worker_argv : int -> string array;
  workers : worker array;
  pending : (string, int * target) Hashtbl.t;  (* internal id -> (worker, target) *)
  mu : Mutex.t;
  cond : Condition.t;
  mutable seq : int;
  mutable shutting_down : bool;
  mutable deaths : int;
  mutable respawns : int;
}

let set_inflight_gauge w =
  Cdr_obs.Metrics.set_gauge
    ~labels:[ ("replica", string_of_int w.index) ]
    "serve.router_inflight"
    (float_of_int w.inflight)

(* a worker that died 3 times within 0.5 s of spawning is crash-looping
   (bad flags, missing binary, instant segfault): stop respawning it so the
   router degrades to the surviving replicas instead of forking in a loop *)
let fast_crash_window = 0.5
let fast_crash_limit = 3

let router_result t =
  let alive = Array.fold_left (fun n w -> if w.alive then n + 1 else n) 0 t.workers in
  let int_num i = Cdr_obs.Jsonl.Num (float_of_int i) in
  let down = Array.fold_left (fun n w -> if w.down then n + 1 else n) 0 t.workers in
  Cdr_obs.Jsonl.Obj
    ([
       ("replicas", int_num t.replicas);
       ("alive", int_num alive);
       ("down", int_num down);
       ("deaths", int_num t.deaths);
       ("respawns", int_num t.respawns);
     ]
    @
    match t.cfg.Server.results with
    | Some rc ->
        [
          ( "result_cache",
            Cdr_obs.Jsonl.Obj
              [
                ("hits", int_num (Result_cache.hits rc));
                ("misses", int_num (Result_cache.misses rc));
                ("evictions", int_num (Result_cache.evictions rc));
                ("entries", int_num (Result_cache.length rc));
              ] );
        ]
    | None -> [])

(* call with t.mu held; emits nothing itself — returns the response to
   write after unlocking (client writes can block on a slow consumer and
   must not hold the router lock) *)
let stats_response t agg =
  Cdr_obs.Jsonl.Obj
    [
      ("id", Str agg.s_id);
      ("ok", Bool true);
      ("kind", Str "stats");
      ( "result",
        Obj
          [
            ("uptime_s", Num (Cdr_obs.Clock.elapsed ()));
            ("router", router_result t);
            ("replicas", List (List.rev agg.s_rows));
          ] );
    ]

(* ---------- spawning and the per-worker reader ---------- *)

let send_locked w json =
  try
    output_string w.oc (Cdr_obs.Jsonl.to_string json);
    output_char w.oc '\n';
    flush w.oc
  with Sys_error _ | Unix.Unix_error _ ->
    (* the worker just died mid-write; its reader thread is about to see
       EOF and will fail everything pending on it — nothing hangs *)
    ()

let resolve_stat_locked t agg =
  agg.s_waiting <- agg.s_waiting - 1;
  if agg.s_waiting = 0 then Some (agg.s_write, stats_response t agg) else None

let rec spawn_locked t w =
  let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* every router-held fd is CLOEXEC so a replica spawned later does not
     inherit its siblings' socketpairs — a worker holding a copy of
     another's fd would keep that worker's EOF from ever arriving *)
  Unix.set_close_on_exec parent;
  let argv = t.worker_argv w.index in
  let pid = Unix.create_process argv.(0) argv child child Unix.stderr in
  Unix.close child;
  w.fd <- parent;
  w.oc <- Unix.out_channel_of_descr parent;
  w.pid <- pid;
  w.alive <- true;
  w.gen <- w.gen + 1;
  w.inflight <- 0;
  w.spawned_at <- Cdr_obs.Clock.monotonic ();
  set_inflight_gauge w;
  let gen = w.gen and ic = Unix.in_channel_of_descr parent in
  ignore (Thread.create (fun () -> reader t w gen ic) ())

and reader t w gen ic =
  match input_line ic with
  | line ->
      on_response t w gen line;
      reader t w gen ic
  | exception (End_of_file | Sys_error _) -> on_death t w gen

and on_response t w gen line =
  let json = try Some (Cdr_obs.Jsonl.of_string line) with Failure _ -> None in
  match Option.bind json Protocol.response_id with
  | None -> ()  (* not a correlatable frame; drop *)
  | Some iid -> (
      let json = Option.get json in
      Mutex.lock t.mu;
      if w.gen <> gen then Mutex.unlock t.mu
      else
        match Hashtbl.find_opt t.pending iid with
        | None -> Mutex.unlock t.mu
        | Some (_, target) ->
            Hashtbl.remove t.pending iid;
            w.inflight <- w.inflight - 1;
            set_inflight_gauge w;
            let action =
              match target with
              | Reply { orig_id; write; cache_key } ->
                  Some (write, Protocol.response_with_id json orig_id, cache_key)
              | Stat agg -> (
                  agg.s_rows <-
                    Option.value
                      (Cdr_obs.Jsonl.member "result" json)
                      ~default:(Protocol.response_sans_id json)
                    :: agg.s_rows;
                  match resolve_stat_locked t agg with
                  | Some (write, resp) -> Some (write, resp, None)
                  | None -> None)
            in
            Condition.broadcast t.cond;
            Mutex.unlock t.mu;
            (match action with
            | Some (write, resp, cache_key) ->
                (match (cache_key, t.cfg.Server.results) with
                | Some key, Some rc when Protocol.response_ok resp ->
                    Result_cache.store rc key (Protocol.response_sans_id resp)
                | _ -> ());
                write resp
            | None -> ()))

and on_death t w gen =
  Mutex.lock t.mu;
  if w.gen <> gen then Mutex.unlock t.mu
  else begin
    w.alive <- false;
    let pid = w.pid in
    (* everything still pending on this worker dies with it *)
    let orphans =
      Hashtbl.fold
        (fun iid (wi, target) acc -> if wi = w.index then (iid, target) :: acc else acc)
        t.pending []
    in
    List.iter (fun (iid, _) -> Hashtbl.remove t.pending iid) orphans;
    w.inflight <- 0;
    set_inflight_gauge w;
    let crashed = not t.shutting_down in
    if crashed then begin
      t.deaths <- t.deaths + 1;
      Cdr_obs.Metrics.incr "serve.replica_deaths"
        ~labels:[ ("replica", string_of_int w.index) ]
    end;
    (* resolve orphans while still holding the lock (stat aggregation
       mutates shared state), collect the client writes for after *)
    let writes =
      List.filter_map
        (fun (_, target) ->
          match target with
          | Reply { orig_id; write; _ } ->
              Some
                ( write,
                  Protocol.error_response ~id:orig_id ~code:`Internal
                    ~message:
                      (Printf.sprintf "worker replica %d died mid-request" w.index)
                    () )
          | Stat agg -> (
              match resolve_stat_locked t agg with
              | Some (write, resp) -> Some (write, resp)
              | None -> None))
        orphans
    in
    (try Unix.close w.fd with Unix.Unix_error _ -> ());
    if crashed then begin
      let lived = Cdr_obs.Clock.monotonic () -. w.spawned_at in
      if lived < fast_crash_window then w.fast_crashes <- w.fast_crashes + 1
      else w.fast_crashes <- 0;
      if w.fast_crashes >= fast_crash_limit then w.down <- true
      else begin
        t.respawns <- t.respawns + 1;
        Cdr_obs.Metrics.incr "serve.replica_respawns"
          ~labels:[ ("replica", string_of_int w.index) ];
        spawn_locked t w
      end
    end;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    List.iter (fun (write, resp) -> write resp) writes
  end

(* ---------- the service ---------- *)

let fresh_id t =
  t.seq <- t.seq + 1;
  Printf.sprintf "r%08d" t.seq

let refuse_shutting_down ~write req =
  Cdr_obs.Metrics.incr "serve.requests"
    ~labels:
      [
        ("kind", Protocol.kind_name req.Protocol.kind);
        ("status", "overloaded");
        ("replica", "router");
      ];
  write
    (Protocol.error_response ~id:req.Protocol.id ~code:`Overloaded
       ~message:"server is shutting down" ())

let submit_stats t ~write req =
  Mutex.lock t.mu;
  if t.shutting_down then begin
    Mutex.unlock t.mu;
    refuse_shutting_down ~write req
  end
  else begin
  let live = Array.to_list t.workers |> List.filter (fun w -> w.alive) in
  let agg = { s_id = req.Protocol.id; s_write = write; s_waiting = List.length live; s_rows = [] } in
  if live = [] then begin
    (* all replicas crash-looped away: answer from the router alone *)
    let resp = stats_response t { agg with s_waiting = 0 } in
    Mutex.unlock t.mu;
    write resp
  end
  else begin
    (* stats fan out to every live replica (they bypass the per-worker
       inflight cap: a snapshot must stay available under saturation) and
       the responses aggregate into one per-replica breakdown *)
    List.iter
      (fun w ->
        let iid = fresh_id t in
        Hashtbl.replace t.pending iid (w.index, Stat agg);
        w.inflight <- w.inflight + 1;
        set_inflight_gauge w;
        send_locked w (Protocol.request_json { req with Protocol.id = iid }))
      live;
    Mutex.unlock t.mu
  end
  end

let submit_solve t ~write req =
  let cache_key =
    match t.cfg.Server.results with Some _ -> Protocol.cache_key req | None -> None
  in
  let memo_hit =
    match (cache_key, t.cfg.Server.results) with
    | Some key, Some rc -> Result_cache.find rc key
    | _ -> None
  in
  match memo_hit with
  | Some stored ->
      Cdr_obs.Metrics.incr "serve.requests"
        ~labels:
          [
            ("kind", Protocol.kind_name req.Protocol.kind);
            ("status", "ok");
            ("replica", "router");
          ];
      write (Protocol.response_with_id stored req.Protocol.id)
  | None -> (
      Mutex.lock t.mu;
      if t.shutting_down then begin
        Mutex.unlock t.mu;
        refuse_shutting_down ~write req
      end
      else
      let dead i = not t.workers.(i).alive in
      match route ~dead ~replicas:t.replicas (Params.structure_key req.Protocol.params) with
      | None ->
          Mutex.unlock t.mu;
          write
            (Protocol.error_response ~id:req.Protocol.id ~code:`Internal
               ~message:"no live worker replica" ())
      | Some i ->
          let w = t.workers.(i) in
          (* cap inflight at the worker's own queue bound: the worker holds
             one executing request plus bound-1 queued, so a forwarded
             request is never refused downstream — backpressure surfaces
             here, as the same "overloaded" the single-process server emits *)
          if w.inflight >= t.cfg.Server.queue_bound then begin
            Cdr_obs.Metrics.incr "serve.requests"
              ~labels:
                [
                  ("kind", Protocol.kind_name req.Protocol.kind);
                  ("status", "overloaded");
                  ("replica", string_of_int i);
                ];
            Mutex.unlock t.mu;
            write
              (Protocol.error_response ~id:req.Protocol.id ~code:`Overloaded
                 ~message:
                   (Printf.sprintf "replica %d inflight limit reached (bound %d)" i
                      t.cfg.Server.queue_bound)
                 ())
          end
          else begin
            let iid = fresh_id t in
            Hashtbl.replace t.pending iid
              (i, Reply { orig_id = req.Protocol.id; write; cache_key });
            w.inflight <- w.inflight + 1;
            set_inflight_gauge w;
            send_locked w (Protocol.request_json { req with Protocol.id = iid });
            Mutex.unlock t.mu
          end)

let submit_line t ~write line =
  match Protocol.parse_request line with
  | Error (id, message) ->
      write (Protocol.error_response ?id ~code:`Bad_request ~message ())
  | Ok req -> (
      match req.Protocol.kind with
      | Protocol.Stats -> submit_stats t ~write req
      | _ -> submit_solve t ~write req)

let shutdown t =
  Mutex.lock t.mu;
  if not t.shutting_down then begin
    t.shutting_down <- true;
    (* half-close: workers see stdin EOF, drain everything admitted,
       answer each request, and exit; their responses still flow back on
       the other half of the socketpair *)
    Array.iter
      (fun w ->
        if w.alive then try Unix.shutdown w.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
      t.workers;
    Condition.broadcast t.cond
  end;
  Mutex.unlock t.mu

let run t =
  Mutex.lock t.mu;
  while
    not
      (t.shutting_down
      && Hashtbl.length t.pending = 0
      && Array.for_all (fun w -> not w.alive) t.workers)
  do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu

let create ?(bin = Sys.executable_name) ~replicas cfg =
  if replicas < 1 then invalid_arg "Router.create: replicas must be >= 1";
  (* a worker death must surface as EOF on its reader, not as a fatal
     signal when the router writes into the dead socketpair *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let t =
    {
      cfg;
      replicas;
      worker_argv = (fun i -> Replica.argv ~bin ~replica:i cfg);
      workers =
        Array.init replicas (fun index ->
            {
              index;
              fd = Unix.stdin;
              oc = stdout;
              pid = -1;
              alive = false;
              gen = 0;
              inflight = 0;
              spawned_at = 0.;
              fast_crashes = 0;
              down = false;
            });
      pending = Hashtbl.create 64;
      mu = Mutex.create ();
      cond = Condition.create ();
      seq = 0;
      shutting_down = false;
      deaths = 0;
      respawns = 0;
    }
  in
  Mutex.lock t.mu;
  Array.iter (fun w -> spawn_locked t w) t.workers;
  Mutex.unlock t.mu;
  {
    Server.submit_line = (fun ~write line -> submit_line t ~write line);
    run = (fun () -> run t);
    shutdown = (fun () -> shutdown t);
  }

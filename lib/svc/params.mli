(** The one request/parameter schema every front end consumes.

    Before this module, the analysis parameters — grid size, counter length,
    noise levels, solver and smoother choice — existed as three hand-rolled
    copies of default handling inside the [cdr_analyze] subcommands, and the
    serving layer would have added a fourth. This module is the single
    definition: the field set, the defaults, the [Config.t] conversion, and
    the JSON codec the JSONL protocol uses. [cdr_analyze] builds a [t] from
    its command-line flags; [cdr_serve] builds one from a request's
    ["params"] object; both then call {!to_config}. *)

type solver = [ `Multigrid | `Power | `Gauss_seidel ]

type t = {
  grid : int;  (** phase-error grid bins over [[-1/2, 1/2)] *)
  phases : int;  (** VCO clock phases (selector step [G = 1/phases] UI) *)
  counter : int;  (** up/down counter overflow length [K] *)
  sigma_w : float;  (** std of the white Gaussian eye-opening jitter, UI *)
  drift_mean : float;  (** mean of the [n_r] drift jitter, grid bins/bit *)
  drift_max : int;  (** support bound of the [n_r] drift jitter, grid bins *)
  max_run : int;  (** longest run of identical data bits *)
  p_transition : float;  (** per-bit data transition probability *)
  solver : solver;
  smoother : Markov.Multigrid.smoother;
  backend : Cdr_op.kind;
      (** operator representation the solve runs on: [`Csr] (default) or the
          matrix-free [`Kron]. Request kinds with no matrix-free path reject
          [`Kron] with [bad_request] instead of falling back. *)
}

val default : t
(** The paper's running example plus the historical CLI defaults
    (multigrid, lex smoother, the SONET-flavoured drift of the examples). *)

val to_config : t -> (Cdr.Config.t, string) result
(** Validated {!Cdr.Config.t} (the drift pmf is built from
    [drift_mean]/[drift_max]); [Error] carries the validation message. *)

val solver_of_string : string -> solver option
val string_of_solver : solver -> string

val smoother_of_string : string -> Markov.Multigrid.smoother option
val string_of_smoother : Markov.Multigrid.smoother -> string

val backend_of_string : string -> Cdr_op.kind option
val string_of_backend : Cdr_op.kind -> string

val of_json : ?defaults:t -> Cdr_obs.Jsonl.t -> (t, string) result
(** Decode a ["params"] object: every field optional (missing fields come
    from [defaults], default {!default}), [Null] meaning "all defaults".
    Rejects unknown fields, wrong-typed values and non-objects with a
    descriptive [Error] — a service must fail loudly on a typo'd field name,
    not silently analyze the default circuit. *)

val to_json : t -> Cdr_obs.Jsonl.t
(** Full object with every field populated ([of_json] round-trips it). *)

val structure_key : t -> string
(** Batching key: equal for two parameter sets exactly when their chains
    share state space and solver machinery — the state-space fields ([grid],
    [phases], [counter], [drift_max], [max_run]) plus [solver], [smoother]
    (a multigrid setup is keyed on the smoother too) and [backend]. The noise
    fields ([sigma_w], [drift_mean], [p_transition]) are deliberately
    excluded: those are the deltas {!Cdr.Model.rebuild} turns into in-place
    refills. *)

val model_key : t -> string
(** {!structure_key} without the solver/smoother suffix: equal exactly when
    {!Cdr.Model.rebuild} can reuse the state enumeration and sparsity
    pattern, whatever solver runs on top. *)

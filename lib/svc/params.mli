(** The one request/parameter schema every front end consumes.

    Before this module, the analysis parameters — grid size, counter length,
    noise levels, solver and smoother choice — existed as three hand-rolled
    copies of default handling inside the [cdr_analyze] subcommands, and the
    serving layer would have added a fourth. This module is the single
    definition: the field set, the defaults, the [Config.t] conversion, and
    the JSON codec the JSONL protocol uses. [cdr_analyze] builds a [t] from
    its command-line flags; [cdr_serve] builds one from a request's
    ["params"] object; both then call {!to_config}.

    The wire codec is versioned. Schema version 2 (canonical, emitted by
    {!to_json}) nests the noise fields under ["noise"], the loop geometry
    under ["loop"], splits the data transition density into [p01]/[p10],
    and may carry an ["env"] Markov-modulated environment spec
    ({!Cdr_env.Env}). The original flat version-1 shape — including the
    collapsed ["p_transition"] alias — is still accepted field for field,
    but counts in the ["serve.deprecated_params"] metric and warns once per
    process. Both versions accept a ["scenario"] field naming a
    {!Cdr.Scenario} preset that seeds the defaults before explicit fields
    apply. *)

type solver = [ `Multigrid | `Power | `Gauss_seidel ]

type t = {
  grid : int;  (** phase-error grid bins over [[-1/2, 1/2)] *)
  phases : int;  (** VCO clock phases (selector step [G = 1/phases] UI) *)
  counter : int;  (** up/down counter overflow length [K] *)
  sigma_w : float;  (** std of the white Gaussian eye-opening jitter, UI *)
  drift_mean : float;  (** mean of the [n_r] drift jitter, grid bins/bit *)
  drift_max : int;  (** support bound of the [n_r] drift jitter, grid bins *)
  max_run : int;  (** longest run of identical data bits *)
  p01 : float;  (** per-bit data transition probability 0 -> 1 *)
  p10 : float;  (** per-bit data transition probability 1 -> 0 *)
  solver : solver;
  smoother : Markov.Multigrid.smoother;
  backend : Cdr_op.kind;
      (** operator representation the solve runs on: [`Csr] (default) or the
          matrix-free [`Kron]. Request kinds with no matrix-free path reject
          [`Kron] with [bad_request] instead of falling back. *)
  env : Cdr_env.Env.t option;
      (** Markov-modulated jitter environment composed with the CDR chain.
          Only the ["env"] request kind consumes it; the protocol rejects it
          on any other kind. *)
}

val default : t
(** The paper's running example plus the historical CLI defaults
    (multigrid, lex smoother, the SONET-flavoured drift of the examples);
    [p01 = p10 = 0.5], no environment. *)

val to_config : t -> (Cdr.Config.t, string) result
(** Validated {!Cdr.Config.t} (the drift pmf is built from
    [drift_mean]/[drift_max]); [Error] carries the validation message. *)

val of_scenario : Cdr.Scenario.t -> t
(** The parameter record equivalent to a scenario preset: config-derived
    fields from the scenario, solver machinery at the schema defaults. *)

val solver_of_string : string -> solver option
val string_of_solver : solver -> string

val smoother_of_string : string -> Markov.Multigrid.smoother option
val string_of_smoother : Markov.Multigrid.smoother -> string

val backend_of_string : string -> Cdr_op.kind option
val string_of_backend : Cdr_op.kind -> string

val of_json : ?defaults:t -> Cdr_obs.Jsonl.t -> (t, string) result
(** Decode a ["params"] object: every field optional (missing fields come
    from [defaults], default {!default}), [Null] meaning "all defaults".
    Accepts schema version 1 (flat, deprecated) and 2 (nested); a
    ["scenario"] field seeds the decoding defaults from the named preset
    before any explicit field applies, whatever its position. Rejects
    unknown fields, wrong-typed values, v2 nested objects in a v1 request
    (and vice versa) and non-objects with a descriptive [Error] — a service
    must fail loudly on a typo'd field name, not silently analyze the
    default circuit. *)

val to_json : t -> Cdr_obs.Jsonl.t
(** Canonical schema-version-2 object in fixed field order ([env] omitted
    when absent). [of_json] round-trips it exactly, so equivalent v1/v2
    requests re-encode to identical bytes and share cache keys. *)

val structure_key : t -> string
(** Batching key: equal for two parameter sets exactly when their chains
    share state space and solver machinery — the state-space fields ([grid],
    [phases], [counter], [drift_max], [max_run], the environment spec) plus
    [solver], [smoother] (a multigrid setup is keyed on the smoother too)
    and [backend]. The noise fields ([sigma_w], [drift_mean], [p01], [p10])
    are deliberately excluded: those are the deltas {!Cdr.Model.rebuild}
    turns into in-place refills. *)

val model_key : t -> string
(** {!structure_key} without the solver/smoother suffix: equal exactly when
    {!Cdr.Model.rebuild} can reuse the state enumeration and sparsity
    pattern, whatever solver runs on top. Parameter sets with an
    environment carry its {!Cdr_env.Env.key} suffix and never collide with
    plain CDR models. *)

(* Params-keyed memoization of finished responses.

   The serving workload (many small parameter-point queries from a
   config-exploration UI) repeats identical requests constantly, and a
   response is a pure function of the canonical request encoding — so a
   finished response can be replayed byte-for-byte without touching the
   model layer. Entries store the response with its "id" field stripped;
   the hit path re-attaches the requesting id, so a hit is byte-identical
   to the cold solve that populated it (including its recorded elapsed_ms
   and setup-cache deltas — the envelope is replayed verbatim, not
   re-measured).

   Thread-safe under one internal mutex: in router mode the cache is
   shared between the transport reader threads (lookups) and the
   per-replica response pumps (stores). *)

type entry = { key : string; response : Cdr_obs.Jsonl.t }

type t = {
  capacity : int;
  mu : Mutex.t;
  mutable entries : entry list; (* most recently used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Result_cache.create: capacity must be >= 1";
  { capacity; mu = Mutex.create (); entries = []; hits = 0; misses = 0; evictions = 0 }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let record result n = Cdr_obs.Metrics.add ~labels:[ ("result", result) ] "serve.result_cache" n

let set_size n = Cdr_obs.Metrics.set_gauge "serve.result_cache_entries" (float_of_int n)

let take_first p l =
  let rec go acc = function
    | [] -> None
    | x :: rest when p x -> Some (x, List.rev_append acc rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] l

let find t key =
  with_lock t (fun () ->
      match take_first (fun e -> e.key = key) t.entries with
      | Some (e, rest) ->
          t.hits <- t.hits + 1;
          record "hit" 1;
          t.entries <- e :: rest;
          Some e.response
      | None ->
          t.misses <- t.misses + 1;
          record "miss" 1;
          None)

(* insert without counting a miss (load and re-store paths) *)
let push t key response =
  let keep = List.filter (fun e -> e.key <> key) t.entries in
  let entries = { key; response } :: keep in
  let dropped = List.length entries - t.capacity in
  if dropped > 0 then begin
    t.evictions <- t.evictions + dropped;
    record "evict" dropped
  end;
  t.entries <- List.filteri (fun i _ -> i < t.capacity) entries;
  set_size (List.length t.entries)

let store t key response = with_lock t (fun () -> push t key response)

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let length t = with_lock t (fun () -> List.length t.entries)

(* ---------- disk persistence ---------- *)

(* One JSONL line per entry, least recently used first, so a sequential
   reload rebuilds the same recency order (the last line pushed lands in
   front). Written to a temp file and renamed, so a crash mid-save leaves
   the previous snapshot intact. *)

let save t path =
  let lines =
    with_lock t (fun () ->
        List.rev_map
          (fun e ->
            Cdr_obs.Jsonl.to_string
              (Cdr_obs.Jsonl.Obj [ ("key", Str e.key); ("response", e.response) ]))
          t.entries)
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc;
  Sys.rename tmp path

let load ?capacity path =
  let t = create ?capacity () in
  (if Sys.file_exists path then
     let ic = open_in path in
     (try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            match Cdr_obs.Jsonl.of_string line with
            | exception Failure _ -> () (* a torn line loses one entry, not the cache *)
            | json -> (
                match
                  ( Option.bind (Cdr_obs.Jsonl.member "key" json) Cdr_obs.Jsonl.to_str,
                    Cdr_obs.Jsonl.member "response" json )
                with
                | Some key, Some response -> push t key response
                | _ -> ())
        done
      with End_of_file -> ());
     close_in ic);
  t

type 'a t = {
  bound : int;
  labels : (string * string) list;
  q : 'a Queue.t;
  mu : Mutex.t;
  cond : Condition.t;
  mutable closed : bool;
}

let create ?(labels = []) ~bound () =
  if bound < 1 then invalid_arg "Admission.create: bound must be >= 1";
  {
    bound;
    labels;
    q = Queue.create ();
    mu = Mutex.create ();
    cond = Condition.create ();
    closed = false;
  }

let set_depth t =
  Cdr_obs.Metrics.set_gauge ~labels:t.labels "serve.queue_depth"
    (float_of_int (Queue.length t.q))

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.q >= t.bound then `Overloaded
      else begin
        Queue.push x t.q;
        set_depth t;
        Condition.signal t.cond;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then begin
          let x = Queue.pop t.q in
          set_depth t;
          Some x
        end
        else if t.closed then None
        else begin
          Condition.wait t.cond t.mu;
          wait ()
        end
      in
      wait ())

let drain t =
  with_lock t (fun () ->
      let xs = List.of_seq (Queue.to_seq t.q) in
      Queue.clear t.q;
      set_depth t;
      xs)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond)

let kick t = with_lock t (fun () -> Condition.broadcast t.cond)

let length t = with_lock t (fun () -> Queue.length t.q)

(** Request execution: one engine owns the process-wide solver state.

    The engine is single-consumer by design — multigrid setups own mutable
    workspaces, so requests execute one at a time and parallelism lives
    {e inside} a request (the domain pool is handed to the solver kernels
    via a {!Cdr.Context.t}). What {e is} shared across requests:

    - one {!Cdr.Solver_cache.t}, so same-structure requests reuse the
      symbolic multigrid setup;
    - the most recent model, so a request whose {!Params.model_key} matches
      goes through {!Cdr.Model.rebuild}'s in-place refill instead of a full
      build. The most recent composed environment model
      ({!Cdr_env.Composed.t}) is memoized the same way for ["env"]
      requests, IAD setup included.

    {!process} exploits both by grouping a batch of jobs by
    {!Params.structure_key} (first-arrival order preserved between groups
    and within a group), so interleaved request streams still amortize. *)

type t

val create :
  ?pool:Cdr_par.Pool.t ->
  ?cache:Cdr.Solver_cache.t ->
  ?results:Result_cache.t ->
  ?replica:int ->
  unit ->
  t
(** [?cache] defaults to a fresh {!Cdr.Solver_cache.create} (exposed so
    tests can assert on hit counts). [?results] plugs in a result
    memoization cache: cacheable requests (see {!Protocol.cache_key}) are
    looked up before config validation and solving, a hit replays the
    stored response byte-identically under the request's id, and every ok
    response is stored back — traffic lands on
    ["serve.result_cache"{result=hit|miss|evict}]. [?replica] stamps a
    [replica=<i>] label on the per-request series
    (["serve.requests"]/["serve.latency_seconds"]/["serve.stage_seconds"])
    and adds [replica]/[pid] fields to the stats payload, so a router
    aggregating several workers can attribute latency per replica. *)

val cache : t -> Cdr.Solver_cache.t

val results : t -> Result_cache.t option

type job = {
  request : Protocol.request;
  deadline : float option;
      (** absolute {!Cdr_obs.Clock.monotonic} time; queue wait counts
          against it *)
  admitted : float;
      (** {!Cdr_obs.Clock.monotonic} at admission — the anchor of the
          request's stage chain (its queue wait is [start - admitted]) *)
  reply : Cdr_obs.Jsonl.t -> unit;  (** called exactly once per job *)
}

val handle : t -> job -> unit
(** Execute one job and reply. Never raises: config validation errors
    become ["bad_request"], an expired deadline or a solve aborted by the
    cancellation hook becomes ["timeout"], anything else ["internal"]. A
    single-solve request that fails to converge is retried once with a
    1000x relaxed tolerance, warm-started from the failed iterate, and
    flagged ["degraded"] on success. Emits the ["serve.request"] span (with
    ["serve.hold"]/["serve.solve"] children) plus, per request, one
    ["serve.latency_seconds"] observation and the per-stage chain
    ["serve.stage_seconds{stage=queue_wait|hold|solve|serialize}"] — all
    labeled with the request kind and its outcome code — the
    ["serve.setup_cache{kind,result}"] hit/miss deltas, and the
    ["serve.requests"] counter. A [Stats] request is answered inline with a
    snapshot payload (uptime, queue depth, request counts, latency
    p50/p95/p99 per kind and status, solver-cache counters) and never
    touches the model layer. *)

val process : t -> job list -> unit
(** {!handle} a batch, grouped by {!Params.structure_key}; each group's
    size lands in the ["serve.batch_size"] histogram. *)

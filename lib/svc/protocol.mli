(** The JSON-lines request/response protocol of [cdr_serve].

    One request per line, one response object per request. Requests:

    {v
    {"id":"r1","kind":"analyze","params":{"grid":128,"sigma_w":0.05}}
    {"id":"r2","kind":"sweep","lengths":[2,4,8],"params":{...}}
    {"id":"r3","kind":"sigma","values":[0.04,0.05,0.0625],"params":{...}}
    {"id":"r4","kind":"slip","params":{...}}
    v}

    Optional request fields: ["deadline_ms"] (relative time budget; when it
    expires the request is answered with a ["timeout"] error and the server
    keeps serving) and ["hold_ms"] (an artificial pre-solve delay — the
    fault-injection knob the load tests use to fill the admission queue
    deterministically). Unknown top-level or parameter fields are rejected
    with a ["bad_request"] error: a service must not silently ignore a
    typo'd field.

    Responses (single line each; [id] echoes the request):

    {v
    {"id":"r1","ok":true,"kind":"analyze","degraded":false,
     "cache":{"hits":1,"misses":0},"elapsed_ms":12.3,"result":{...}}
    {"id":"r9","ok":false,"error":{"code":"overloaded","message":"..."}}
    v}

    Error codes: ["bad_request"], ["overloaded"], ["timeout"],
    ["internal"]. Responses are emitted in completion order, which for
    batched execution can differ from arrival order — clients correlate by
    [id]. *)

type kind =
  | Analyze  (** stationary density, BER, mean time between cycle slips *)
  | Sweep of int list  (** BER vs counter length (the paper's Figure 5) *)
  | Sigma of float list  (** BER vs eye-opening jitter (Figure 4's axis) *)
  | Slip  (** cycle-slip rate and first-passage times *)
  | Env
      (** Markov-modulated jitter environment composed with the CDR chain:
          regime-weighted BER, slip rate and per-regime conditional
          statistics. Requires [params.env] (schema version 2); every other
          kind rejects that field. *)
  | Scenarios
      (** list the built-in {!Cdr.Scenario} presets, each with the
          parameter record a ["scenario"]-seeded request would start from.
          [params] are accepted and ignored (template reuse, as [Stats]). *)
  | Stats
      (** introspection: a metrics / uptime / queue snapshot of the serving
          process itself. Answered from the worker like any other request
          (so it observes the same queue the solves do), but never touches
          the model layer; [params] are accepted and ignored, so a client
          can reuse its request template. *)

type request = {
  id : string;
  kind : kind;
  params : Params.t;
  deadline_ms : float option;  (** relative budget, from arrival *)
  hold_ms : float option;  (** artificial pre-solve delay (load tests) *)
}

type error_code = [ `Bad_request | `Overloaded | `Timeout | `Internal ]

val code_string : error_code -> string

val default_lengths : int list
(** Counter lengths a ["sweep"] request without ["lengths"] gets — also the
    historical default of the [cdr_analyze sweep] subcommand, which now
    shares it. *)

val default_sigmas : float list
(** Jitter levels a ["sigma"] request without ["values"] gets (same sharing
    with [cdr_analyze sigma]). *)

val kind_name : kind -> string
(** ["analyze"], ["sweep"], ["sigma"], ["slip"], ["env"], ["scenarios"] —
    used in responses, span attributes and metric labels. *)

val parse_request : string -> (request, string option * string) result
(** Parse one request line. [Error (id, message)] carries the request id
    when the line parsed far enough to contain one, so the rejection can
    still be correlated. Rejects: malformed JSON, non-objects, a missing or
    non-string ["id"], an unknown ["kind"], unknown top-level fields,
    kind/field mismatches (["lengths"] outside [sweep], ["values"] outside
    [sigma], ["params.env"] outside [env] — and [env] without it) and
    parameter errors (see {!Params.of_json}). *)

val request_json : request -> Cdr_obs.Jsonl.t
(** Canonical re-encoding: id, kind (plus its [lengths]/[values] payload),
    any deadline/hold fields, and the {e full} {!Params.to_json} object.
    [parse_request (to_string (request_json r))] returns [r] exactly — the
    forwarding frame the router sends to a worker replica after rewriting
    the id to its internal correlation id. *)

val cache_key : request -> string option
(** Result-memoization key: canonical over kind, kind payload and the full
    params encoding; equal keys guarantee an identical response payload.
    [None] for [Stats] (a live snapshot) and for requests carrying
    [hold_ms] (fault injection must burn real wall time); [deadline_ms]
    never enters the key — it decides whether a response arrives in time,
    not what it contains. *)

val response_sans_id : Cdr_obs.Jsonl.t -> Cdr_obs.Jsonl.t
(** The response with its ["id"] field removed — the form the result cache
    stores. *)

val response_with_id : Cdr_obs.Jsonl.t -> string -> Cdr_obs.Jsonl.t
(** Re-attach an id (replacing any present) in first position — the byte
    layout both response constructors produce, so a cached response
    replayed under the original id is byte-identical to the cold one. *)

val response_id : Cdr_obs.Jsonl.t -> string option

val response_ok : Cdr_obs.Jsonl.t -> bool

val ok_response :
  id:string ->
  kind:kind ->
  degraded:bool ->
  cache_hits:int ->
  cache_misses:int ->
  elapsed_ms:float ->
  Cdr_obs.Jsonl.t ->
  Cdr_obs.Jsonl.t
(** Success envelope around a result payload. [degraded] marks a solve that
    only converged after the relaxed-tolerance retry; [cache_hits]/[misses]
    are this request's deltas against the shared solver cache. *)

val error_response : ?id:string -> code:error_code -> message:string -> unit -> Cdr_obs.Jsonl.t

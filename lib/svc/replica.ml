let argv ~bin ~replica (cfg : Server.config) =
  let base =
    [ bin; "--replica-worker"; string_of_int replica; "--queue-bound";
      string_of_int cfg.queue_bound ]
  in
  let jobs = match cfg.jobs with Some j -> [ "--jobs"; string_of_int j ] | None -> [] in
  let deadline =
    match cfg.default_deadline_ms with
    | Some ms -> [ "--default-deadline-ms"; Printf.sprintf "%g" ms ]
    | None -> []
  in
  Array.of_list (base @ jobs @ deadline)

let run ~replica (cfg : Server.config) =
  (* the worker is a plain stdio server over its own engine and solver
     cache; result memoization stays in the router so all replicas share
     one params-keyed cache *)
  Server.run_stdio { cfg with replica = Some replica; results = None }

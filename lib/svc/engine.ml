type t = {
  pool : Cdr_par.Pool.t option;
  cache : Cdr.Solver_cache.t;
  results : Result_cache.t option;
  replica : int option;
  (* extra labels stamped on every per-request series ([serve.requests],
     [serve.latency_seconds], [serve.stage_seconds]): a worker replica
     carries [replica=<i>] so the quantile machinery attributes latency
     per replica once several workers' stats are aggregated *)
  labels : (string * string) list;
  mutable last_model : (string * Cdr.Model.t) option;
  mutable last_kron : (string * Cdr.Kron_model.t) option;
  mutable last_env : (string * Cdr_env.Composed.t) option;
}

let create ?pool ?cache ?results ?replica () =
  let cache = match cache with Some c -> c | None -> Cdr.Solver_cache.create () in
  let labels =
    match replica with Some r -> [ ("replica", string_of_int r) ] | None -> []
  in
  { pool; cache; results; replica; labels; last_model = None; last_kron = None; last_env = None }

let cache t = t.cache

let results t = t.results

type job = {
  request : Protocol.request;
  deadline : float option;
  admitted : float;
  reply : Cdr_obs.Jsonl.t -> unit;
}

(* a request whose parameters are well-formed but name a combination this
   engine cannot serve (matrix-free backend on a CSR-only kind or solver);
   caught in [handle] and mapped to [`Bad_request] — the client mistake
   channel, never [`Internal] *)
exception Unsupported of string

let get_model t params config =
  let key = Params.model_key params in
  let model =
    match t.last_model with
    | Some (k, m) when k = key -> fst (Cdr.Model.rebuild ?pool:t.pool m config)
    | _ -> Cdr.Model.build ?pool:t.pool config
  in
  t.last_model <- Some (key, model);
  model

(* single solves retry once on non-convergence: 1000x looser tolerance,
   warm-started from the failed iterate, and the response is flagged *)
let with_degraded_retry ctx solve =
  let first = solve ctx in
  if (snd first).Markov.Solution.converged then (first, false)
  else begin
    Cdr_obs.Metrics.incr "serve.degraded_retries";
    let ctx =
      Cdr.Context.override
        ~tol:(ctx.Cdr.Context.tol *. 1e3)
        ~init:(snd first).Markov.Solution.pi ctx
    in
    (solve ctx, true)
  end

let num f = Cdr_obs.Jsonl.Num f
let int_num i = Cdr_obs.Jsonl.Num (float_of_int i)

let point_json ~key ~value (pt : Cdr.Sweep.point) =
  Cdr_obs.Jsonl.Obj
    [
      (key, value);
      ("ber", num pt.Cdr.Sweep.report.Cdr.Report.ber);
      ("iterations", int_num pt.Cdr.Sweep.report.Cdr.Report.iterations);
    ]

let full_solver p =
  (p.Params.solver
    :> [ `Multigrid | `Power | `Gauss_seidel | `Jacobi | `Sor of float | `Aggregation | `Arnoldi ])

(* the "stats" payload: a self-describing snapshot of the serving process,
   assembled from the metrics registry and the engine's own cache. Served
   from the worker like any solve, so it also measures the queue. *)
let quantile_fields (h : Cdr_obs.Metrics.histogram) =
  [
    ("count", int_num h.Cdr_obs.Metrics.count);
    ("mean", num (h.Cdr_obs.Metrics.sum /. float_of_int h.Cdr_obs.Metrics.count));
    ("p50", num (Cdr_obs.Metrics.quantile h 0.5));
    ("p95", num (Cdr_obs.Metrics.quantile h 0.95));
    ("p99", num (Cdr_obs.Metrics.quantile h 0.99));
  ]

let stats_payload t =
  let series = Cdr_obs.Metrics.dump () in
  let label (s : Cdr_obs.Metrics.series) k =
    Option.value ~default:"" (List.assoc_opt k s.Cdr_obs.Metrics.labels)
  in
  let requests =
    List.filter_map
      (fun (s : Cdr_obs.Metrics.series) ->
        match s.Cdr_obs.Metrics.kind with
        | Cdr_obs.Metrics.Counter n when s.Cdr_obs.Metrics.name = "serve.requests" ->
            Some
              (Cdr_obs.Jsonl.Obj
                 [
                   ("kind", Str (label s "kind"));
                   ("status", Str (label s "status"));
                   ("count", int_num n);
                 ])
        | _ -> None)
      series
  in
  let latency =
    List.filter_map
      (fun (s : Cdr_obs.Metrics.series) ->
        match s.Cdr_obs.Metrics.kind with
        | Cdr_obs.Metrics.Histogram h
          when s.Cdr_obs.Metrics.name = "serve.latency_seconds"
               && h.Cdr_obs.Metrics.count > 0 ->
            Some
              (Cdr_obs.Jsonl.Obj
                 (("kind", Cdr_obs.Jsonl.Str (label s "kind"))
                 :: ("status", Str (label s "status"))
                 :: quantile_fields h))
        | _ -> None)
      series
  in
  let queue_depth =
    List.fold_left
      (fun acc (s : Cdr_obs.Metrics.series) ->
        match s.Cdr_obs.Metrics.kind with
        | Cdr_obs.Metrics.Gauge v when s.Cdr_obs.Metrics.name = "serve.queue_depth" -> v
        | _ -> acc)
      0.0 series
  in
  Cdr_obs.Jsonl.Obj
    ([
       ("uptime_s", num (Cdr_obs.Clock.elapsed ()));
       ("queue_depth", num queue_depth);
       ("requests", List requests);
       ("latency_seconds", List latency);
       ( "cache",
         Obj
           [
             ("hits", int_num (Cdr.Solver_cache.hits t.cache));
             ("misses", int_num (Cdr.Solver_cache.misses t.cache));
             ("evictions", int_num (Cdr.Solver_cache.evictions t.cache));
             ("entries", int_num (Cdr.Solver_cache.length t.cache));
           ] );
     ]
    @ (match t.results with
      | Some rc ->
          [
            ( "result_cache",
              Cdr_obs.Jsonl.Obj
                [
                  ("hits", int_num (Result_cache.hits rc));
                  ("misses", int_num (Result_cache.misses rc));
                  ("evictions", int_num (Result_cache.evictions rc));
                  ("entries", int_num (Result_cache.length rc));
                ] );
          ]
      | None -> [])
    @ (match t.replica with Some r -> [ ("replica", int_num r) ] | None -> [])
    @ [ ("pid", int_num (Unix.getpid ())) ])

(* The kron model itself is rebuilt per request — factor matrices are a few
   KB, the build is O(grid) table work — but the IAD solver setup it memoizes
   (partition maps, iterate/weight workspaces, the aggregated coarse pattern
   and its Multigrid setup) is O(states) and structure-only. When the
   structural key repeats, transplant the previous model's setup into the
   fresh build so repeated kron queries reallocate none of it. *)
let get_kron_model t params config =
  let key = Params.model_key params in
  let model = Cdr.Kron_model.build config in
  (match t.last_kron with
  | Some (k, prev) when k = key -> (
      match prev.Cdr.Kron_model.iad with
      | Some s when Markov.Op_multigrid.matches s model.Cdr.Kron_model.op ->
          model.Cdr.Kron_model.iad <- Some s
      | _ -> ())
  | _ -> ());
  t.last_kron <- Some (key, model);
  model

(* Composed environment models are keyed on the model key (which already
   carries the env-spec hash) plus the noise fields and backend: the
   per-regime configurations depend on sigma_w/drift/p01/p10, and there is
   no [rebuild]-style refill for the composed chain, so a key hit reuses
   the model outright — including its memoized IAD setup — and a miss
   builds fresh, transplanting the previous setup when the operator shape
   matches. The env JSON rides in the key verbatim so two specs hashing
   alike can never serve each other's model. *)
let get_env_model t params config env =
  let key =
    Printf.sprintf "%s|%h|%h|%h|%h|%s|%s" (Params.model_key params) params.Params.sigma_w
      params.Params.drift_mean params.Params.p01 params.Params.p10
      (Params.string_of_backend params.Params.backend)
      (Cdr_obs.Jsonl.to_string (Cdr_env.Env.to_json env))
  in
  let model =
    match t.last_env with
    | Some (k, m) when k = key -> m
    | prev ->
        let m = Cdr_env.Composed.build ~backend:params.Params.backend env config in
        (match prev with
        | Some (_, old) -> (
            match old.Cdr_env.Composed.iad with
            | Some s when Markov.Op_multigrid.matches s m.Cdr_env.Composed.op ->
                m.Cdr_env.Composed.iad <- Some s
            | _ -> ())
        | None -> ());
        m
  in
  t.last_env <- Some (key, model);
  model

let run_env t ~ctx p config =
  let env =
    match p.Params.env with
    | Some e -> e
    | None -> raise (Unsupported "\"env\" requests require a params field \"env\"")
  in
  (match (p.Params.backend, p.Params.solver) with
  | `Kron, `Gauss_seidel ->
      raise (Unsupported "solver \"gauss-seidel\" has no matrix-free path; use backend=csr")
  | _ -> ());
  let model = get_env_model t p config env in
  let solver = (p.Params.solver :> Cdr_env.Composed.solver) in
  let (sol, degraded), solve_seconds =
    Cdr_obs.Span.timed ~name:"report.solve" (fun () ->
        with_degraded_retry ctx (fun ctx -> ((), Cdr_env.Composed.solve ~solver ~ctx model))
        |> fun (((), sol), degraded) -> (sol, degraded))
  in
  let pi = sol.Markov.Solution.pi in
  let probs = Cdr_env.Composed.regime_probs model ~pi in
  let regime_ber = Cdr_env.Composed.regime_ber model ~pi in
  ( Cdr_obs.Jsonl.Obj
      [
        ("ber", num (Cdr_env.Composed.ber model ~pi));
        ("size", int_num model.Cdr_env.Composed.n_states);
        ("iterations", int_num sol.Markov.Solution.iterations);
        ("solve_seconds", num solve_seconds);
        ("slip_rate", num (Cdr_env.Composed.slip_rate model ~pi));
        ("mean_bits_between_slips", num (Cdr_env.Composed.mean_bits_between_slips model ~pi));
        ( "regimes",
          List
            (Array.to_list
               (Array.mapi
                  (fun e (g : Cdr_env.Env.regime) ->
                    Cdr_obs.Jsonl.Obj
                      [
                        ("name", Str g.Cdr_env.Env.name);
                        ("prob", num probs.(e));
                        ("ber", num regime_ber.(e));
                      ])
                  model.Cdr_env.Composed.env.Cdr_env.Env.regimes)) );
      ],
    degraded )

(* the "scenarios" payload: every built-in preset with the parameter record
   a ["scenario"]-seeded request would start from, so a client can list,
   pick and replay without hardcoding preset contents *)
let scenarios_payload () =
  Cdr_obs.Jsonl.Obj
    [
      ( "scenarios",
        List
          (List.map
             (fun (s : Cdr.Scenario.t) ->
               Cdr_obs.Jsonl.Obj
                 [
                   ("name", Str s.Cdr.Scenario.name);
                   ("description", Str s.Cdr.Scenario.description);
                   ("ber_specification", Num s.Cdr.Scenario.ber_specification);
                   ("params", Params.to_json (Params.of_scenario s));
                 ])
             Cdr.Scenario.all) );
    ]

(* Analyze on the matrix-free backend: same response shape as the CSR path,
   solved through {!Cdr.Kron_model} (full product space, never
   materialized). *)
let run_analyze_kron t ~ctx p config =
  let solver =
    match p.Params.solver with
    | `Multigrid -> `Multigrid
    | `Power -> `Power
    | `Gauss_seidel ->
        raise (Unsupported "solver \"gauss-seidel\" has no matrix-free path; use backend=csr")
  in
  let model = get_kron_model t p config in
  let (sol, degraded), solve_seconds =
    Cdr_obs.Span.timed ~name:"report.solve" (fun () ->
        with_degraded_retry ctx (fun ctx -> ((), Cdr.Kron_model.solve ~solver ~ctx model))
        |> fun (((), sol), degraded) -> (sol, degraded))
  in
  let pi = sol.Markov.Solution.pi in
  let rho = Cdr.Kron_model.phase_marginal model ~pi in
  let ber = Cdr.Ber.of_marginal config ~rho in
  let mtbf = Cdr.Kron_model.mean_time_between_slips model ~pi in
  ( Cdr_obs.Jsonl.Obj
      [
        ("ber", num ber);
        ("size", int_num (Cdr.Kron_model.n_states model));
        ("iterations", int_num sol.Markov.Solution.iterations);
        ("solve_seconds", num solve_seconds);
        ("mean_bits_between_slips", num mtbf);
      ],
    degraded )

let reject_kron kind =
  raise
    (Unsupported
       (Printf.sprintf
          "request kind %S requires the csr backend (first-passage/sweep machinery runs on the \
           materialized chain); use backend=csr"
          kind))

let run_kind t ~ctx req config =
  let p = req.Protocol.params in
  match req.Protocol.kind with
  | Protocol.Analyze when p.Params.backend = `Kron -> run_analyze_kron t ~ctx p config
  | Protocol.Slip when p.Params.backend = `Kron -> reject_kron "slip"
  | Protocol.Sweep _ when p.Params.backend = `Kron -> reject_kron "sweep"
  | Protocol.Sigma _ when p.Params.backend = `Kron -> reject_kron "sigma"
  | Protocol.Analyze ->
      let model = get_model t p config in
      let (report, sol), degraded =
        with_degraded_retry ctx (fun ctx ->
            Cdr.Report.run_model ~solver:p.Params.solver ~ctx model)
      in
      let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:sol.Markov.Solution.pi in
      ( Cdr_obs.Jsonl.Obj
          [
            ("ber", num report.Cdr.Report.ber);
            ("size", int_num report.Cdr.Report.size);
            ("iterations", int_num report.Cdr.Report.iterations);
            ("solve_seconds", num report.Cdr.Report.solve_seconds);
            ("mean_bits_between_slips", num mtbf);
          ],
        degraded )
  | Protocol.Slip ->
      let model = get_model t p config in
      let ((_, sol), degraded) =
        with_degraded_retry ctx (fun ctx ->
            ((), Cdr.Model.solve ~solver:(full_solver p) ~ctx model))
      in
      let pi = sol.Markov.Solution.pi in
      ( Cdr_obs.Jsonl.Obj
          [
            ("slip_rate", num (Cdr.Cycle_slip.rate model ~pi));
            ("mean_bits_between_slips", num (Cdr.Cycle_slip.mean_time_between model ~pi));
            ("mean_bits_to_first_slip", num (Cdr.Cycle_slip.mean_first_slip_time model));
          ],
        degraded )
  | Protocol.Sweep lengths ->
      let ctx = Cdr.Context.override ~strategy:Cdr.Context.warm ctx in
      let points = Cdr.Sweep.counter_lengths ~solver:p.Params.solver ~ctx config lengths in
      let best_k, best_ber = Cdr.Sweep.optimal_of_points points in
      ( Cdr_obs.Jsonl.Obj
          [
            ( "points",
              List
                (List.map
                   (fun pt ->
                     point_json ~key:"counter"
                       ~value:(int_num pt.Cdr.Sweep.config.Cdr.Config.counter_length)
                       pt)
                   points) );
            ("optimal", Obj [ ("counter", int_num best_k); ("ber", num best_ber) ]);
          ],
        false )
  | Protocol.Sigma values ->
      let ctx = Cdr.Context.override ~strategy:Cdr.Context.warm ctx in
      let points = Cdr.Sweep.sigma_w_values ~solver:p.Params.solver ~ctx config values in
      ( Cdr_obs.Jsonl.Obj
          [
            ( "points",
              List
                (List.map
                   (fun pt ->
                     point_json ~key:"sigma_w" ~value:(num pt.Cdr.Sweep.config.Cdr.Config.sigma_w)
                       pt)
                   points) );
          ],
        false )
  | Protocol.Env -> run_env t ~ctx p config
  | Protocol.Scenarios -> (scenarios_payload (), false)
  | Protocol.Stats -> (stats_payload t, false)

let handle t job =
  let req = job.request in
  let kname = Protocol.kind_name req.Protocol.kind in
  let started = Cdr_obs.Clock.monotonic () in
  let hits0 = Cdr.Solver_cache.hits t.cache and misses0 = Cdr.Solver_cache.misses t.cache in
  (* per-stage durations accumulate here and flush at [finish], once the
     outcome is known, so every serve.stage_seconds series carries the same
     (kind, status) labels as the request counter — the end-to-end chain
     queue_wait -> [hold] -> solve -> serialize of one request always lands
     under one outcome code *)
  let stages = ref [ ("queue_wait", started -. job.admitted) ] in
  let stage name seconds = stages := (name, seconds) :: !stages in
  let finish status response =
    let t0 = Cdr_obs.Clock.monotonic () in
    job.reply response;
    let now = Cdr_obs.Clock.monotonic () in
    stage "serialize" (now -. t0);
    let labels = ("kind", kname) :: ("status", status) :: t.labels in
    List.iter
      (fun (s, dt) ->
        Cdr_obs.Metrics.observe
          ~labels:(("stage", s) :: labels)
          ~base:2.0 "serve.stage_seconds" dt)
      (List.rev !stages);
    Cdr_obs.Metrics.observe ~labels ~base:2.0 "serve.latency_seconds" (now -. started);
    let dh = Cdr.Solver_cache.hits t.cache - hits0 in
    let dm = Cdr.Solver_cache.misses t.cache - misses0 in
    if dh > 0 then
      Cdr_obs.Metrics.add ~labels:[ ("kind", kname); ("result", "hit") ] "serve.setup_cache" dh;
    if dm > 0 then
      Cdr_obs.Metrics.add ~labels:[ ("kind", kname); ("result", "miss") ] "serve.setup_cache" dm;
    Cdr_obs.Metrics.incr "serve.requests" ~labels
  in
  let fail code message =
    finish (Protocol.code_string code)
      (Protocol.error_response ~id:req.Protocol.id ~code ~message ())
  in
  Cdr_obs.Span.with_ ~name:"serve.request"
    ~attrs:[ ("id", req.Protocol.id); ("kind", kname) ]
    (fun () ->
      (* hold_ms simulates a slow request (load tests); it burns deadline *)
      (match req.Protocol.hold_ms with
      | Some ms ->
          let (), dt = Cdr_obs.Span.timed ~name:"serve.hold" (fun () -> Unix.sleepf (ms /. 1000.)) in
          stage "hold" dt
      | None -> ());
      let expired () =
        match job.deadline with Some d -> Cdr_obs.Clock.monotonic () >= d | None -> false
      in
      if expired () then fail `Timeout "deadline exceeded before solve"
      else
        (* result memoization, in front of config validation and solving:
           a repeated identical request replays the stored response under
           its own id (byte-identical to the cold solve, see
           {!Result_cache}) and never touches the model layer *)
        let memo_key =
          match t.results with Some _ -> Protocol.cache_key req | None -> None
        in
        let memo_hit =
          match (memo_key, t.results) with
          | Some key, Some rc -> Result_cache.find rc key
          | _ -> None
        in
        match memo_hit with
        | Some stored -> finish "ok" (Protocol.response_with_id stored req.Protocol.id)
        | None -> (
        match Params.to_config req.Protocol.params with
        | Error msg -> fail `Bad_request msg
        | Ok config -> (
            let cancel =
              Option.map (fun d () -> Cdr_obs.Clock.monotonic () >= d) job.deadline
            in
            let ctx =
              Cdr.Context.make ?pool:t.pool ~cache:t.cache
                ~smoother:req.Protocol.params.Params.smoother
                ~backend:req.Protocol.params.Params.backend ?cancel ()
            in
            (* attribute this request's setup-cache traffic to its structure
               key for the labeled solver_cache.* series *)
            Cdr.Solver_cache.set_request_key t.cache
              (Some (Params.structure_key req.Protocol.params));
            let run () =
              Fun.protect
                ~finally:(fun () -> Cdr.Solver_cache.set_request_key t.cache None)
                (fun () ->
                  Cdr_obs.Span.timed ~name:"serve.solve" (fun () -> run_kind t ~ctx req config))
            in
            match run () with
            | (payload, degraded), dt ->
                stage "solve" dt;
                let response =
                  Protocol.ok_response ~id:req.Protocol.id ~kind:req.Protocol.kind ~degraded
                    ~cache_hits:(Cdr.Solver_cache.hits t.cache - hits0)
                    ~cache_misses:(Cdr.Solver_cache.misses t.cache - misses0)
                    ~elapsed_ms:((Cdr_obs.Clock.monotonic () -. started) *. 1e3)
                    payload
                in
                (match (memo_key, t.results) with
                | Some key, Some rc ->
                    Result_cache.store rc key (Protocol.response_sans_id response)
                | _ -> ());
                finish "ok" response
            | exception Unsupported msg -> fail `Bad_request msg
            | exception Markov.Multigrid.Cancelled ->
                fail `Timeout "deadline exceeded during solve"
            | exception exn -> fail `Internal (Printexc.to_string exn))))

let process t jobs =
  (* group by structure key so same-structure requests run back to back and
     amortize the shared setup cache / model refill; first-arrival order is
     kept between groups and within each group *)
  let t0 = Cdr_obs.Clock.monotonic () in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun j ->
      let key = Params.structure_key j.request.Protocol.params in
      match Hashtbl.find_opt tbl key with
      | Some group -> group := j :: !group
      | None ->
          Hashtbl.add tbl key (ref [ j ]);
          order := key :: !order)
    jobs;
  Cdr_obs.Metrics.observe
    ~labels:[ ("stage", "batch_formation") ]
    ~base:2.0 "serve.stage_seconds"
    (Cdr_obs.Clock.monotonic () -. t0);
  List.iter
    (fun key ->
      let group = List.rev !(Hashtbl.find tbl key) in
      Cdr_obs.Metrics.observe "serve.batch_size" (float_of_int (List.length group));
      List.iter (handle t) group)
    (List.rev !order)

type t = {
  pool : Cdr_par.Pool.t option;
  cache : Cdr.Solver_cache.t;
  mutable last_model : (string * Cdr.Model.t) option;
}

let create ?pool ?cache () =
  let cache = match cache with Some c -> c | None -> Cdr.Solver_cache.create () in
  { pool; cache; last_model = None }

let cache t = t.cache

type job = {
  request : Protocol.request;
  deadline : float option;
  reply : Cdr_obs.Jsonl.t -> unit;
}

let get_model t params config =
  let key = Params.model_key params in
  let model =
    match t.last_model with
    | Some (k, m) when k = key -> fst (Cdr.Model.rebuild ?pool:t.pool m config)
    | _ -> Cdr.Model.build ?pool:t.pool config
  in
  t.last_model <- Some (key, model);
  model

(* single solves retry once on non-convergence: 1000x looser tolerance,
   warm-started from the failed iterate, and the response is flagged *)
let with_degraded_retry ctx solve =
  let first = solve ctx in
  if (snd first).Markov.Solution.converged then (first, false)
  else begin
    Cdr_obs.Metrics.incr "serve.degraded_retries";
    let ctx =
      Cdr.Context.override
        ~tol:(ctx.Cdr.Context.tol *. 1e3)
        ~init:(snd first).Markov.Solution.pi ctx
    in
    (solve ctx, true)
  end

let num f = Cdr_obs.Jsonl.Num f
let int_num i = Cdr_obs.Jsonl.Num (float_of_int i)

let point_json ~key ~value (pt : Cdr.Sweep.point) =
  Cdr_obs.Jsonl.Obj
    [
      (key, value);
      ("ber", num pt.Cdr.Sweep.report.Cdr.Report.ber);
      ("iterations", int_num pt.Cdr.Sweep.report.Cdr.Report.iterations);
    ]

let full_solver p =
  (p.Params.solver
    :> [ `Multigrid | `Power | `Gauss_seidel | `Jacobi | `Sor of float | `Aggregation | `Arnoldi ])

let run_kind t ~ctx req config =
  let p = req.Protocol.params in
  match req.Protocol.kind with
  | Protocol.Analyze ->
      let model = get_model t p config in
      let (report, sol), degraded =
        with_degraded_retry ctx (fun ctx ->
            Cdr.Report.run_model ~solver:p.Params.solver ~ctx model)
      in
      let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:sol.Markov.Solution.pi in
      ( Cdr_obs.Jsonl.Obj
          [
            ("ber", num report.Cdr.Report.ber);
            ("size", int_num report.Cdr.Report.size);
            ("iterations", int_num report.Cdr.Report.iterations);
            ("solve_seconds", num report.Cdr.Report.solve_seconds);
            ("mean_bits_between_slips", num mtbf);
          ],
        degraded )
  | Protocol.Slip ->
      let model = get_model t p config in
      let ((_, sol), degraded) =
        with_degraded_retry ctx (fun ctx ->
            ((), Cdr.Model.solve ~solver:(full_solver p) ~ctx model))
      in
      let pi = sol.Markov.Solution.pi in
      ( Cdr_obs.Jsonl.Obj
          [
            ("slip_rate", num (Cdr.Cycle_slip.rate model ~pi));
            ("mean_bits_between_slips", num (Cdr.Cycle_slip.mean_time_between model ~pi));
            ("mean_bits_to_first_slip", num (Cdr.Cycle_slip.mean_first_slip_time model));
          ],
        degraded )
  | Protocol.Sweep lengths ->
      let ctx = Cdr.Context.override ~strategy:Cdr.Context.warm ctx in
      let points = Cdr.Sweep.counter_lengths ~solver:p.Params.solver ~ctx config lengths in
      let best_k, best_ber = Cdr.Sweep.optimal_of_points points in
      ( Cdr_obs.Jsonl.Obj
          [
            ( "points",
              List
                (List.map
                   (fun pt ->
                     point_json ~key:"counter"
                       ~value:(int_num pt.Cdr.Sweep.config.Cdr.Config.counter_length)
                       pt)
                   points) );
            ("optimal", Obj [ ("counter", int_num best_k); ("ber", num best_ber) ]);
          ],
        false )
  | Protocol.Sigma values ->
      let ctx = Cdr.Context.override ~strategy:Cdr.Context.warm ctx in
      let points = Cdr.Sweep.sigma_w_values ~solver:p.Params.solver ~ctx config values in
      ( Cdr_obs.Jsonl.Obj
          [
            ( "points",
              List
                (List.map
                   (fun pt ->
                     point_json ~key:"sigma_w" ~value:(num pt.Cdr.Sweep.config.Cdr.Config.sigma_w)
                       pt)
                   points) );
          ],
        false )

let handle t job =
  let req = job.request in
  let kname = Protocol.kind_name req.Protocol.kind in
  let started = Cdr_obs.Clock.now () in
  let hits0 = Cdr.Solver_cache.hits t.cache and misses0 = Cdr.Solver_cache.misses t.cache in
  let finish status response =
    Cdr_obs.Metrics.observe
      ~labels:[ ("kind", kname) ]
      "serve.latency_seconds"
      (Cdr_obs.Clock.now () -. started);
    Cdr_obs.Metrics.incr "serve.requests" ~labels:[ ("kind", kname); ("status", status) ];
    job.reply response
  in
  let fail code message =
    finish (Protocol.code_string code)
      (Protocol.error_response ~id:req.Protocol.id ~code ~message ())
  in
  Cdr_obs.Span.with_ ~name:"serve.request"
    ~attrs:[ ("id", req.Protocol.id); ("kind", kname) ]
    (fun () ->
      (* hold_ms simulates a slow request (load tests); it burns deadline *)
      (match req.Protocol.hold_ms with Some ms -> Unix.sleepf (ms /. 1000.) | None -> ());
      let expired () =
        match job.deadline with Some d -> Cdr_obs.Clock.now () >= d | None -> false
      in
      if expired () then fail `Timeout "deadline exceeded before solve"
      else
        match Params.to_config req.Protocol.params with
        | Error msg -> fail `Bad_request msg
        | Ok config -> (
            let cancel = Option.map (fun d () -> Cdr_obs.Clock.now () >= d) job.deadline in
            let ctx =
              Cdr.Context.make ?pool:t.pool ~cache:t.cache
                ~smoother:req.Protocol.params.Params.smoother ?cancel ()
            in
            match run_kind t ~ctx req config with
            | payload, degraded ->
                finish "ok"
                  (Protocol.ok_response ~id:req.Protocol.id ~kind:req.Protocol.kind ~degraded
                     ~cache_hits:(Cdr.Solver_cache.hits t.cache - hits0)
                     ~cache_misses:(Cdr.Solver_cache.misses t.cache - misses0)
                     ~elapsed_ms:((Cdr_obs.Clock.now () -. started) *. 1e3)
                     payload)
            | exception Markov.Multigrid.Cancelled ->
                fail `Timeout "deadline exceeded during solve"
            | exception exn -> fail `Internal (Printexc.to_string exn)))

let process t jobs =
  (* group by structure key so same-structure requests run back to back and
     amortize the shared setup cache / model refill; first-arrival order is
     kept between groups and within each group *)
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun j ->
      let key = Params.structure_key j.request.Protocol.params in
      match Hashtbl.find_opt tbl key with
      | Some group -> group := j :: !group
      | None ->
          Hashtbl.add tbl key (ref [ j ]);
          order := key :: !order)
    jobs;
  List.iter
    (fun key ->
      let group = List.rev !(Hashtbl.find tbl key) in
      Cdr_obs.Metrics.observe "serve.batch_size" (float_of_int (List.length group));
      List.iter (handle t) group)
    (List.rev !order)

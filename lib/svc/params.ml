type solver = [ `Multigrid | `Power | `Gauss_seidel ]

type t = {
  grid : int;
  phases : int;
  counter : int;
  sigma_w : float;
  drift_mean : float;
  drift_max : int;
  max_run : int;
  p01 : float;
  p10 : float;
  solver : solver;
  smoother : Markov.Multigrid.smoother;
  backend : Cdr_op.kind;
  env : Cdr_env.Env.t option;
}

(* the grid/phases/counter/sigma/max_run defaults are Config.default's (the
   paper's running example); drift and transition probabilities match what
   the cdr_analyze flags have always defaulted to *)
let default =
  {
    grid = Cdr.Config.default.Cdr.Config.grid_points;
    phases = Cdr.Config.default.Cdr.Config.n_phases;
    counter = Cdr.Config.default.Cdr.Config.counter_length;
    sigma_w = Cdr.Config.default.Cdr.Config.sigma_w;
    drift_mean = 0.1;
    drift_max = 2;
    max_run = Cdr.Config.default.Cdr.Config.max_run;
    p01 = 0.5;
    p10 = 0.5;
    solver = `Multigrid;
    smoother = `Lex;
    backend = `Csr;
    env = None;
  }

let to_config p =
  let cfg =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = p.grid;
      n_phases = p.phases;
      counter_length = p.counter;
      sigma_w = p.sigma_w;
      nr = Prob.Jitter.drift ~max_steps:p.drift_max ~mean_steps:p.drift_mean ();
      max_run = p.max_run;
      p01 = p.p01;
      p10 = p.p10;
    }
  in
  match Cdr.Config.validate cfg with Ok () -> Ok cfg | Error msg -> Error msg

(* A preset's parameter record: the config-derived fields come from the
   scenario (the drift scalars are carried by {!Cdr.Scenario.t} exactly so
   this rebuilds the identical pmf); solver machinery stays at the schema
   defaults. *)
let of_scenario (s : Cdr.Scenario.t) =
  let c = s.Cdr.Scenario.config in
  {
    default with
    grid = c.Cdr.Config.grid_points;
    phases = c.Cdr.Config.n_phases;
    counter = c.Cdr.Config.counter_length;
    sigma_w = c.Cdr.Config.sigma_w;
    drift_mean = s.Cdr.Scenario.drift_mean;
    drift_max = s.Cdr.Scenario.drift_max;
    max_run = c.Cdr.Config.max_run;
    p01 = c.Cdr.Config.p01;
    p10 = c.Cdr.Config.p10;
  }

let solver_of_string = function
  | "multigrid" -> Some `Multigrid
  | "power" -> Some `Power
  | "gauss-seidel" -> Some `Gauss_seidel
  | _ -> None

let string_of_solver = function
  | `Multigrid -> "multigrid"
  | `Power -> "power"
  | `Gauss_seidel -> "gauss-seidel"

let smoother_of_string = function "lex" -> Some `Lex | "colored" -> Some `Colored | _ -> None

let string_of_smoother = function `Lex -> "lex" | `Colored -> "colored"

let backend_of_string = Cdr_op.kind_of_string

let string_of_backend = Cdr_op.kind_string

(* ---------- JSON codec ----------

   Two accepted wire shapes:

   - version 2 (canonical, what {!to_json} emits): noise fields nested
     under ["noise"], loop geometry under ["loop"], an optional ["env"]
     environment spec, [p01]/[p10] split;
   - version 1 (the original flat record), still accepted field for field —
     including ["p_transition"], the collapsed alias setting both
     transition densities — but counted in the ["serve.deprecated_params"]
     metric and warned about once per process.

   Both shapes may carry ["scenario"]: it seeds the decoding defaults from
   the named {!Cdr.Scenario} preset BEFORE any explicit field applies,
   whatever its position in the object. Because decoding normalizes every
   spelling into the same record and {!to_json} re-encodes canonically,
   equivalent v1/v2/scenario-seeded requests produce identical
   [Protocol.cache_key]s and share result-cache entries. *)

let int_field name v =
  match v with
  | Cdr_obs.Jsonl.Num f when Float.is_integer f && Float.abs f < 1e9 -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "field %S must be an integer" name)

let float_field name v =
  match v with
  | Cdr_obs.Jsonl.Num f -> Ok f
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let enum_field name of_string v =
  match v with
  | Cdr_obs.Jsonl.Str s -> (
      match of_string s with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: unknown value %S" name s))
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let deprecation_warned = ref false

let note_deprecated field =
  Cdr_obs.Metrics.incr "serve.deprecated_params";
  if not !deprecation_warned then begin
    deprecation_warned := true;
    Printf.eprintf
      "cdr_svc: params field %S uses the deprecated flat v1 schema; migrate to \
       {\"version\":2,\"noise\":{...},\"loop\":{...}} (v1 keeps working, this warning prints \
       once)\n\
       %!"
      field
  end

let ( let* ) = Result.bind

(* fields meaningful in both schema versions, at the top level *)
let common_field p key v =
  match key with
  | "grid" ->
      let* x = int_field key v in
      Ok (Some { p with grid = x })
  | "max_run" ->
      let* x = int_field key v in
      Ok (Some { p with max_run = x })
  | "p01" ->
      let* x = float_field key v in
      Ok (Some { p with p01 = x })
  | "p10" ->
      let* x = float_field key v in
      Ok (Some { p with p10 = x })
  | "solver" ->
      let* x = enum_field key solver_of_string v in
      Ok (Some { p with solver = x })
  | "smoother" ->
      let* x = enum_field key smoother_of_string v in
      Ok (Some { p with smoother = x })
  | "backend" ->
      let* x = enum_field key backend_of_string v in
      Ok (Some { p with backend = x })
  | "p_transition" ->
      (* the historical collapsed alias: one density for both directions *)
      let* x = float_field key v in
      Ok (Some { p with p01 = x; p10 = x })
  | _ -> Ok None

let v1_field p key v =
  match key with
  | "phases" ->
      let* x = int_field key v in
      Ok (Some { p with phases = x })
  | "counter" ->
      let* x = int_field key v in
      Ok (Some { p with counter = x })
  | "sigma_w" ->
      let* x = float_field key v in
      Ok (Some { p with sigma_w = x })
  | "drift_mean" ->
      let* x = float_field key v in
      Ok (Some { p with drift_mean = x })
  | "drift_max" ->
      let* x = int_field key v in
      Ok (Some { p with drift_max = x })
  | _ -> Ok None

let nested_obj name v =
  match v with
  | Cdr_obs.Jsonl.Obj fields -> Ok fields
  | _ -> Error (Printf.sprintf "field %S must be an object" name)

let fold_fields init fields f = List.fold_left (fun acc (k, v) -> Result.bind acc (fun p -> f p k v)) (Ok init) fields

let noise_of_json p v =
  let* fields = nested_obj "noise" v in
  fold_fields p fields (fun p key v ->
      match key with
      | "sigma_w" ->
          let* x = float_field "noise.sigma_w" v in
          Ok { p with sigma_w = x }
      | "drift_mean" ->
          let* x = float_field "noise.drift_mean" v in
          Ok { p with drift_mean = x }
      | "drift_max" ->
          let* x = int_field "noise.drift_max" v in
          Ok { p with drift_max = x }
      | other -> Error (Printf.sprintf "unknown noise field %S" other))

let loop_of_json p v =
  let* fields = nested_obj "loop" v in
  fold_fields p fields (fun p key v ->
      match key with
      | "phases" ->
          let* x = int_field "loop.phases" v in
          Ok { p with phases = x }
      | "counter" ->
          let* x = int_field "loop.counter" v in
          Ok { p with counter = x }
      | other -> Error (Printf.sprintf "unknown loop field %S" other))

let of_json ?(defaults = default) json =
  match json with
  | Cdr_obs.Jsonl.Null -> Ok defaults
  | Cdr_obs.Jsonl.Obj fields ->
      let* version =
        match List.assoc_opt "version" fields with
        | None -> Ok 1
        | Some v -> (
            let* x = int_field "version" v in
            match x with
            | 1 | 2 -> Ok x
            | other -> Error (Printf.sprintf "unsupported params schema version %d" other))
      in
      (* the scenario seeds the config-derived defaults first, wherever the
         field sits in the object; solver machinery and env stay from the
         caller's defaults so a scenario never changes how a request runs *)
      let* seeded =
        match List.assoc_opt "scenario" fields with
        | None -> Ok defaults
        | Some (Cdr_obs.Jsonl.Str name) -> (
            match Cdr.Scenario.find name with
            | Some s ->
                let p = of_scenario s in
                Ok
                  {
                    p with
                    solver = defaults.solver;
                    smoother = defaults.smoother;
                    backend = defaults.backend;
                    env = defaults.env;
                  }
            | None -> Error (Printf.sprintf "unknown scenario %S" name))
        | Some _ -> Error "field \"scenario\" must be a string (a scenario name)"
      in
      let deprecated = ref None in
      let* parsed =
        fold_fields seeded fields (fun p key v ->
            match key with
            | "version" | "scenario" -> Ok p
            | _ -> (
                let* common = common_field p key v in
                match common with
                | Some p ->
                    if key = "p_transition" && !deprecated = None then deprecated := Some key;
                    Ok p
                | None ->
                    if version = 1 then
                      let* flat = v1_field p key v in
                      match flat with
                      | Some p ->
                          if !deprecated = None then deprecated := Some key;
                          Ok p
                      | None -> (
                          match key with
                          | "noise" | "loop" | "env" ->
                              Error
                                (Printf.sprintf
                                   "field %S requires schema version 2 (add \"version\": 2)" key)
                          | other -> Error (Printf.sprintf "unknown parameter field %S" other))
                    else
                      match key with
                      | "noise" -> noise_of_json p v
                      | "loop" -> loop_of_json p v
                      | "env" -> (
                          match Cdr_env.Env.of_json v with
                          | Ok e -> Ok { p with env = Some e }
                          | Error msg -> Error msg)
                      | "phases" | "counter" | "sigma_w" | "drift_mean" | "drift_max" ->
                          Error
                            (Printf.sprintf
                               "field %S is nested in schema version 2 (under \"noise\" or \
                                \"loop\")"
                               key)
                      | other -> Error (Printf.sprintf "unknown parameter field %S" other)))
      in
      (match !deprecated with Some field -> note_deprecated field | None -> ());
      Ok parsed
  | _ -> Error "\"params\" must be a JSON object"

(* canonical v2 encoding: fixed field order, [env] omitted when absent.
   {!of_json} round-trips this exactly, so the router's re-encode and the
   result-cache key normalize every accepted spelling to these bytes. *)
let to_json p =
  Cdr_obs.Jsonl.Obj
    ([
       ("version", Cdr_obs.Jsonl.Num 2.0);
       ("grid", Num (float_of_int p.grid));
       ("max_run", Num (float_of_int p.max_run));
       ( "noise",
         Obj
           [
             ("sigma_w", Num p.sigma_w);
             ("drift_mean", Num p.drift_mean);
             ("drift_max", Num (float_of_int p.drift_max));
           ] );
       ( "loop",
         Obj [ ("phases", Num (float_of_int p.phases)); ("counter", Num (float_of_int p.counter)) ]
       );
       ("p01", Num p.p01);
       ("p10", Num p.p10);
       ("solver", Str (string_of_solver p.solver));
       ("smoother", Str (string_of_smoother p.smoother));
       ("backend", Str (string_of_backend p.backend));
     ]
    @ match p.env with None -> [] | Some e -> [ ("env", Cdr_env.Env.to_json e) ])

let model_key p =
  let base =
    Printf.sprintf "g%d.ph%d.k%d.dr%d.run%d" p.grid p.phases p.counter p.drift_max p.max_run
  in
  match p.env with None -> base | Some e -> base ^ "." ^ Cdr_env.Env.key e

let structure_key p =
  Printf.sprintf "%s.%s.%s.%s" (model_key p) (string_of_solver p.solver)
    (string_of_smoother p.smoother) (string_of_backend p.backend)
